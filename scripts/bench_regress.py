#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on throughput regressions.

The bench binaries (bench_serving, bench_serving_mt, bench_cluster,
bench_remap_throughput, bench_lookup, bench_movement, ...) all emit the
standardized `BenchJson` schema:

    {"experiment": "...",
     "tiers": [{"ops": N, ..., "paths": {"<path>": {"<metric>": v, ...}}}]}

This script compares a baseline document against a candidate and exits
non-zero when any *throughput* metric (a key ending in `_per_second`, or
`rps`) regresses by more than the threshold (default 15%). Non-throughput
metrics are reported for context but never fail the run — latency and CoV
figures are noisy on shared hosts; throughput is the tracked contract.

Usage:
    bench_regress.py BASELINE.json CANDIDATE.json [--threshold 0.15]
                     [--verbose]

Tiers are matched by their position-independent identity: the `ops` value
plus every string-valued label in the tier (e.g. `scenario`). Tiers, paths
or metric keys present on only one side are warned about but never fail
the diff — a new PR may add paths or whole documents (BENCH_cluster.json's
migration tiers, for instance, carry no throughput metrics at all), and
the driver compares like against like. Having *zero* throughput metrics
in common is likewise a warning, not an error.
"""

import argparse
import json
import sys


def tier_key(tier):
    """Identity of a tier: ops plus all string labels, order-insensitive."""
    labels = tuple(sorted(
        (k, v) for k, v in tier.items() if isinstance(v, str)))
    return (tier.get("ops"), labels)


def is_throughput_metric(name):
    return name.endswith("_per_second") or name.endswith("rps")


def iter_metrics(tier):
    """Yields (path, metric, value) for every numeric path metric."""
    for path, metrics in tier.get("paths", {}).items():
        for name, value in metrics.items():
            if isinstance(value, (int, float)):
                yield path, name, float(value)


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a candidate BENCH_*.json regresses "
                    "throughput vs. a baseline.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional throughput drop "
                             "(default: 0.15 = 15%%)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared metric, not just "
                             "regressions")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.candidate) as f:
        candidate = json.load(f)

    if baseline.get("experiment") != candidate.get("experiment"):
        print(f"warning: comparing different experiments "
              f"({baseline.get('experiment')!r} vs. "
              f"{candidate.get('experiment')!r})", file=sys.stderr)

    base_tiers = {tier_key(t): t for t in baseline.get("tiers", [])}
    cand_tiers = {tier_key(t): t for t in candidate.get("tiers", [])}

    regressions = []
    compared = 0
    for key, base_tier in base_tiers.items():
        cand_tier = cand_tiers.get(key)
        tier_name = f"ops={key[0]}" + "".join(
            f" {k}={v}" for k, v in key[1])
        if cand_tier is None:
            print(f"note: tier [{tier_name}] missing from candidate",
                  file=sys.stderr)
            continue
        cand_metrics = {(p, m): v for p, m, v in iter_metrics(cand_tier)}
        for path, metric, base_value in iter_metrics(base_tier):
            cand_value = cand_metrics.get((path, metric))
            if cand_value is None:
                if is_throughput_metric(metric):
                    print(f"warning: [{tier_name}] {path}.{metric} present "
                          f"only in the baseline", file=sys.stderr)
                continue
            throughput = is_throughput_metric(metric)
            if throughput and base_value > 0:
                compared += 1
                drop = (base_value - cand_value) / base_value
                status = "REGRESSION" if drop > args.threshold else "ok"
                if drop > args.threshold:
                    regressions.append(
                        (tier_name, path, metric, base_value, cand_value,
                         drop))
                if args.verbose or drop > args.threshold:
                    print(f"[{tier_name}] {path}.{metric}: "
                          f"{base_value:.0f} -> {cand_value:.0f} "
                          f"({-drop:+.1%}) {status}")
            elif args.verbose:
                delta = cand_value - base_value
                print(f"[{tier_name}] {path}.{metric}: "
                      f"{base_value:g} -> {cand_value:g} ({delta:+g}) "
                      f"(informational)")
        base_keys = {(p, m) for p, m, _ in iter_metrics(base_tier)}
        for path, metric in cand_metrics:
            if (path, metric) not in base_keys and \
                    is_throughput_metric(metric):
                print(f"warning: [{tier_name}] {path}.{metric} present "
                      f"only in the candidate", file=sys.stderr)
    for key in cand_tiers:
        if key not in base_tiers:
            tier_name = f"ops={key[0]}" + "".join(
                f" {k}={v}" for k, v in key[1])
            print(f"note: tier [{tier_name}] missing from baseline",
                  file=sys.stderr)

    if compared == 0:
        # Not a failure: some documents (e.g. BENCH_cluster.json's
        # migration-cost tiers) track movement or latency figures with no
        # throughput key, and a brand-new bench has no overlap yet.
        print("warning: no throughput metrics (*_per_second, *rps) in "
              "common between the two documents; nothing to gate on",
              file=sys.stderr)
        return 0
    if regressions:
        print(f"\nFAIL: {len(regressions)} throughput metric(s) regressed "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for tier_name, path, metric, base_value, cand_value, drop in \
                regressions:
            print(f"  [{tier_name}] {path}.{metric}: {base_value:.0f} -> "
                  f"{cand_value:.0f} ({-drop:+.1%})", file=sys.stderr)
        return 1
    print(f"OK: {compared} throughput metric(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
