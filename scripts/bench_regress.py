#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on throughput regressions.

The bench binaries (bench_serving, bench_serving_mt, bench_cluster,
bench_remap_throughput, bench_lookup, bench_movement, ...) all emit the
standardized `BenchJson` schema:

    {"experiment": "...",
     "tiers": [{"ops": N, ..., "paths": {"<path>": {"<metric>": v, ...}}}]}

This script compares a baseline document against a candidate and exits
non-zero when any *throughput* metric (a key ending in `_per_second`, or
`rps`) regresses by more than the threshold (default 15%). Non-throughput
metrics are reported for context but never fail the run — latency and CoV
figures are noisy on shared hosts; throughput is the tracked contract.

Usage:
    bench_regress.py BASELINE.json CANDIDATE.json [--threshold 0.15]
                     [--verbose] [--require BENCH_x.json ...]
    bench_regress.py --require BENCH_x.json [--require BENCH_y.json ...]

`--require PATH` (repeatable) asserts that PATH exists and parses as a
BenchJson document — the CI guard against a bench silently not running,
which would otherwise make a perf regression look like a clean diff. With
only `--require` flags the positional pair may be omitted; requirements
are checked first and any miss fails the run before the diff.

Documents carry a `"host"` object (CPU model, core count, cpufreq
governor, kernel). A baseline and candidate from different hosts or
governor settings are compared anyway — but with a warning, since the
numbers are not really comparable.

Tiers are matched by their position-independent identity: the `ops` value
plus every string-valued label in the tier (e.g. `scenario`). Tiers, paths
or metric keys present on only one side are warned about but never fail
the diff — a new PR may add paths or whole documents (BENCH_cluster.json's
migration tiers, for instance, carry no throughput metrics at all), and
the driver compares like against like. Having *zero* throughput metrics
in common is likewise a warning, not an error.
"""

import argparse
import json
import os
import sys


def tier_key(tier):
    """Identity of a tier: ops plus all string labels, order-insensitive."""
    labels = tuple(sorted(
        (k, v) for k, v in tier.items() if isinstance(v, str)))
    return (tier.get("ops"), labels)


def is_throughput_metric(name):
    return name.endswith("_per_second") or name.endswith("rps")


def iter_metrics(tier):
    """Yields (path, metric, value) for every numeric path metric."""
    for path, metrics in tier.get("paths", {}).items():
        for name, value in metrics.items():
            if isinstance(value, (int, float)):
                yield path, name, float(value)


def check_required(paths):
    """Returns the list of problems with the required documents."""
    problems = []
    for path in paths:
        if not os.path.exists(path):
            problems.append(f"{path}: missing (bench did not run?)")
            continue
        try:
            with open(path) as f:
                document = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            problems.append(f"{path}: unreadable ({error})")
            continue
        if "experiment" not in document or "tiers" not in document:
            problems.append(
                f"{path}: not a BenchJson document "
                f"(no experiment/tiers keys)")
    return problems


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a candidate BENCH_*.json regresses "
                    "throughput vs. a baseline, or when a required "
                    "document is missing.")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", default=None,
                        help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional throughput drop "
                             "(default: 0.15 = 15%%)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PATH",
                        help="fail unless PATH exists and parses as a "
                             "BenchJson document (repeatable)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared metric, not just "
                             "regressions")
    args = parser.parse_args()

    problems = check_required(args.require)
    if problems:
        print(f"FAIL: {len(problems)} required bench document(s) not "
              f"usable:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.require:
        print(f"required: all {len(args.require)} bench document(s) "
              f"present")

    if args.baseline is None and args.candidate is None:
        if not args.require:
            parser.error("nothing to do: give BASELINE CANDIDATE, "
                         "--require, or both")
        return 0
    if args.baseline is None or args.candidate is None:
        parser.error("BASELINE and CANDIDATE must be given together")

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.candidate) as f:
        candidate = json.load(f)

    if baseline.get("experiment") != candidate.get("experiment"):
        print(f"warning: comparing different experiments "
              f"({baseline.get('experiment')!r} vs. "
              f"{candidate.get('experiment')!r})", file=sys.stderr)

    base_host = baseline.get("host", {})
    cand_host = candidate.get("host", {})
    if base_host and cand_host:
        for field in ("cpu", "governor", "kernel"):
            if base_host.get(field) != cand_host.get(field):
                print(f"warning: host {field} differs "
                      f"({base_host.get(field)!r} vs. "
                      f"{cand_host.get(field)!r}); numbers may not be "
                      f"comparable", file=sys.stderr)

    base_tiers = {tier_key(t): t for t in baseline.get("tiers", [])}
    cand_tiers = {tier_key(t): t for t in candidate.get("tiers", [])}

    regressions = []
    compared = 0
    for key, base_tier in base_tiers.items():
        cand_tier = cand_tiers.get(key)
        tier_name = f"ops={key[0]}" + "".join(
            f" {k}={v}" for k, v in key[1])
        if cand_tier is None:
            print(f"note: tier [{tier_name}] missing from candidate",
                  file=sys.stderr)
            continue
        cand_metrics = {(p, m): v for p, m, v in iter_metrics(cand_tier)}
        for path, metric, base_value in iter_metrics(base_tier):
            cand_value = cand_metrics.get((path, metric))
            if cand_value is None:
                if is_throughput_metric(metric):
                    print(f"warning: [{tier_name}] {path}.{metric} present "
                          f"only in the baseline", file=sys.stderr)
                continue
            throughput = is_throughput_metric(metric)
            if throughput and base_value > 0:
                compared += 1
                drop = (base_value - cand_value) / base_value
                status = "REGRESSION" if drop > args.threshold else "ok"
                if drop > args.threshold:
                    regressions.append(
                        (tier_name, path, metric, base_value, cand_value,
                         drop))
                if args.verbose or drop > args.threshold:
                    print(f"[{tier_name}] {path}.{metric}: "
                          f"{base_value:.0f} -> {cand_value:.0f} "
                          f"({-drop:+.1%}) {status}")
            elif args.verbose:
                delta = cand_value - base_value
                print(f"[{tier_name}] {path}.{metric}: "
                      f"{base_value:g} -> {cand_value:g} ({delta:+g}) "
                      f"(informational)")
        base_keys = {(p, m) for p, m, _ in iter_metrics(base_tier)}
        for path, metric in cand_metrics:
            if (path, metric) not in base_keys and \
                    is_throughput_metric(metric):
                print(f"warning: [{tier_name}] {path}.{metric} present "
                      f"only in the candidate", file=sys.stderr)
    for key in cand_tiers:
        if key not in base_tiers:
            tier_name = f"ops={key[0]}" + "".join(
                f" {k}={v}" for k, v in key[1])
            print(f"note: tier [{tier_name}] missing from baseline",
                  file=sys.stderr)

    if compared == 0:
        # Not a failure: some documents (e.g. BENCH_cluster.json's
        # migration-cost tiers) track movement or latency figures with no
        # throughput key, and a brand-new bench has no overlap yet.
        print("warning: no throughput metrics (*_per_second, *rps) in "
              "common between the two documents; nothing to gate on",
              file=sys.stderr)
        return 0
    if regressions:
        print(f"\nFAIL: {len(regressions)} throughput metric(s) regressed "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for tier_name, path, metric, base_value, cand_value, drop in \
                regressions:
            print(f"  [{tier_name}] {path}.{metric}: {base_value:.0f} -> "
                  f"{cand_value:.0f} ({-drop:+.1%})", file=sys.stderr)
        return 1
    print(f"OK: {compared} throughput metric(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
