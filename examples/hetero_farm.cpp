// Heterogeneous disk farm: the Section 6 evolution path in practice. A
// server built from three drive generations carries load proportional to
// each drive's capability, and hardware refresh (add a new generation,
// retire the oldest) is just logical disk-group scaling underneath.
//
// Run: ./build/examples/hetero_farm

#include <cstdio>

#include "hetero/hetero_array.h"
#include "random/sequence.h"
#include "storage/disk_model.h"

using scaddar::BlocksPerRound;
using scaddar::HeteroDisk;
using scaddar::HeteroPlacement;
using scaddar::PhysicalDiskId;
using scaddar::PrngKind;
using scaddar::RoundParameters;
using scaddar::X0Sequence;

namespace {

// Weight = how many logical disks the drive hosts; derive it from the
// drive's physical service rate so load tracks real bandwidth.
int64_t WeightFor(const scaddar::DiskParameters& drive,
                  const RoundParameters& round, int64_t unit) {
  return std::max<int64_t>(1, *BlocksPerRound(drive, round) / unit);
}

void PrintLoad(const HeteroPlacement& farm, const char* caption) {
  std::printf("%s\n", caption);
  const auto load = farm.PhysicalLoad();
  int64_t total = 0;
  for (const auto& [id, blocks] : load) {
    total += blocks;
  }
  for (const HeteroDisk& disk : farm.physical_disks()) {
    const double share = static_cast<double>(load.at(disk.id)) /
                         static_cast<double>(total);
    std::printf("  disk %lld (weight %lld): %6.2f%% of blocks\n",
                static_cast<long long>(disk.id),
                static_cast<long long>(disk.weight), share * 100.0);
  }
}

}  // namespace

int main() {
  const RoundParameters round{.round_seconds = 1.0, .block_kb = 512};
  // Normalize weights to the slowest drive's service rate.
  const int64_t unit = *BlocksPerRound(scaddar::VintageDisk(), round);
  const int64_t w_vintage = WeightFor(scaddar::VintageDisk(), round, unit);
  const int64_t w_2001 = WeightFor(scaddar::Year2001Disk(), round, unit);
  const int64_t w_modern = WeightFor(scaddar::ModernDisk(), round, unit);
  std::printf("drive weights (blocks/round, normalized): vintage=%lld, "
              "2001=%lld, modern=%lld\n\n",
              static_cast<long long>(w_vintage),
              static_cast<long long>(w_2001),
              static_cast<long long>(w_modern));

  // A farm of two vintage and two 2001-era drives.
  HeteroPlacement farm = HeteroPlacement::Create({{0, w_vintage},
                                                  {1, w_vintage},
                                                  {2, w_2001},
                                                  {3, w_2001}})
                             .value();
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, 0xfa3aull, 64)
          .value()
          .Materialize(120000);
  SCADDAR_CHECK(farm.AddObject(1, x0).ok());
  PrintLoad(farm, "initial farm {vintage, vintage, 2001, 2001}:");

  // Hardware refresh, step 1: plug in a modern drive.
  SCADDAR_CHECK(farm.AddPhysicalDisk({4, w_modern}).ok());
  PrintLoad(farm, "\nafter adding one modern drive:");

  // Step 2: retire the vintage drives one at a time.
  SCADDAR_CHECK(farm.RemovePhysicalDisk(0).ok());
  SCADDAR_CHECK(farm.RemovePhysicalDisk(1).ok());
  PrintLoad(farm, "\nafter retiring both vintage drives:");

  std::printf("\nunderlying logical array: %lld logical disks, op log "
              "\"%s\"\n",
              static_cast<long long>(farm.policy().current_disks()),
              farm.policy().log().Serialize().c_str());
  std::printf("(each physical step was one logical disk-GROUP operation —\n"
              " SCADDAR's minimal movement and the Lemma 4.3 budget apply\n"
              " unchanged; see docs/operations.md)\n");
  return 0;
}
