// Disk-retirement scenario: planned removal of an aging disk group —
// "disk removal is known a priori", so the server drains the group online
// and retires it only after the last block left. Also shows the Lemma 4.3
// tolerance gate and the full-redistribution fallback when a 32-bit
// generator runs out of randomness.
//
// Run: ./build/examples/disk_retirement

#include <cstdio>

#include "server/server.h"

using scaddar::CmServer;
using scaddar::ObjectId;
using scaddar::PrngKind;
using scaddar::ScalingOp;
using scaddar::ServerConfig;

int main() {
  ServerConfig config;
  config.initial_disks = 10;
  config.bits = 32;            // Paper-era generator: range is precious.
  config.prng_kind = PrngKind::kPcg32;
  config.tolerance_eps = 0.05;
  config.master_seed = 77;
  auto server = std::move(CmServer::Create(config)).value();
  for (ObjectId id = 1; id <= 6; ++id) {
    SCADDAR_CHECK(server->AddObject(id, 3000).ok());
  }

  // Retire the two oldest disks (slots 0 and 1).
  std::printf("retiring disk group {slot 0, slot 1}...\n");
  SCADDAR_CHECK(server->ScaleRemove({0, 1}).ok());
  std::printf("  placement now targets %lld disks; physical disks live "
              "(incl. draining): %lld\n",
              static_cast<long long>(server->policy().current_disks()),
              static_cast<long long>(server->disks().num_live()));

  int64_t rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ++rounds;
  }
  server->Tick();  // Retirement check.
  std::printf("  drained in %lld rounds; live disks now: %lld; blocks on "
              "retired disk 0: %lld\n",
              static_cast<long long>(rounds),
              static_cast<long long>(server->disks().num_live()),
              static_cast<long long>(server->store().CountOn(0)));
  SCADDAR_CHECK(server->VerifyIntegrity().ok());

  // Keep scaling until the 32-bit random range is exhausted, then rebase.
  std::printf("\nscaling until the Lemma 4.3 gate trips (b=32, eps=5%%):\n");
  int performed = 0;
  while (true) {
    const ScalingOp op = ScalingOp::Add(1).value();
    if (server->WouldExceedTolerance(op)) {
      std::printf("  gate tripped after %d further ops -> full "
                  "redistribution (fresh seeds, empty op log)\n",
                  performed);
      SCADDAR_CHECK(server->FullRedistribution().ok());
      break;
    }
    SCADDAR_CHECK(server->ScaleAdd(1).ok());
    ++performed;
  }
  while (!server->migration().idle()) {
    server->Tick();
  }
  SCADDAR_CHECK(server->VerifyIntegrity().ok());
  std::printf("  rebased placement verified on %lld disks; op log: \"%s\"\n",
              static_cast<long long>(server->policy().current_disks()),
              server->policy().log().Serialize().c_str());
  std::printf("  object 1 seed generation is now %lld\n",
              static_cast<long long>(
                  server->catalog().GetObject(1)->seed_generation));
  return 0;
}
