// Video-on-demand scenario: a CM server keeps serving hundreds of
// streams while a 2-disk group is added online. This is the paper's
// motivating use case — no downtime, no broken streams, background
// migration paid for with leftover bandwidth.
//
// Run: ./build/examples/vod_server

#include <cstdio>

#include "server/server.h"
#include "server/workload.h"
#include "storage/disk_model.h"

using scaddar::CmServer;
using scaddar::ObjectId;
using scaddar::RoundMetrics;
using scaddar::ServerConfig;
using scaddar::WorkloadGenerator;

int main() {
  // Hardware: an array of 2001-era 10k-rpm drives; the round length is one
  // block's playback time, so bandwidth-in-blocks/round comes from drive
  // physics (seek + half rotation + transfer), not from a magic number.
  const scaddar::DiskParameters drive = scaddar::Year2001Disk();
  const scaddar::RoundParameters round{.round_seconds = 1.0,
                                       .block_kb = 512};
  ServerConfig config;
  config.initial_disks = 8;
  config.disk_spec = scaddar::MakeDiskSpec(drive, round).value();
  config.master_seed = 20260704;
  config.admission_utilization_cap = 0.8;
  std::printf("drive model: %.0f rpm, %.1f ms seek, %.0f MB/s -> "
              "%lld blocks/round, %lld blocks capacity\n",
              drive.rpm, drive.avg_seek_ms, drive.transfer_mb_per_s,
              static_cast<long long>(
                  config.disk_spec.bandwidth_blocks_per_round),
              static_cast<long long>(config.disk_spec.capacity_blocks));
  auto server = std::move(CmServer::Create(config)).value();

  // A small library of movies: 2-hour titles at one block per round.
  for (ObjectId id = 1; id <= 12; ++id) {
    SCADDAR_CHECK(server->AddObject(id, 1500).ok());
  }
  std::printf("catalog: 12 objects, %lld blocks total on %lld disks\n",
              static_cast<long long>(server->store().total_blocks()),
              static_cast<long long>(server->disks().num_live()));

  // Zipf-popular arrivals, Poisson at 1.2 clients/round.
  WorkloadGenerator workload(/*seed=*/99, /*arrivals_per_round=*/1.2,
                             /*zipf_theta=*/0.729);
  workload.SetObjects({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});

  int64_t rejected = 0;
  for (int round = 0; round < 1200; ++round) {
    for (const ObjectId id : workload.NextArrivals()) {
      if (!server->StartStream(id).ok()) {
        ++rejected;
      }
    }
    if (round == 400) {
      std::printf("\n>>> round 400: adding a 2-disk group ONLINE\n\n");
      SCADDAR_CHECK(server->ScaleAdd(2).ok());
    }
    const RoundMetrics metrics = server->Tick();
    if (round % 100 == 0) {
      std::printf(
          "round %4lld: streams=%3lld served=%3lld hiccups=%lld "
          "migrating=%lld\n",
          static_cast<long long>(metrics.round),
          static_cast<long long>(metrics.active_streams),
          static_cast<long long>(metrics.served),
          static_cast<long long>(metrics.hiccups),
          static_cast<long long>(metrics.pending_migration));
    }
  }

  std::printf("\nsummary after 1200 rounds:\n");
  std::printf("  completed streams : %lld\n",
              static_cast<long long>(server->completed_streams()));
  std::printf("  blocks served     : %lld\n",
              static_cast<long long>(server->total_served()));
  std::printf("  hiccups           : %lld\n",
              static_cast<long long>(server->total_hiccups()));
  std::printf("  admission rejects : %lld\n",
              static_cast<long long>(rejected));
  std::printf("  blocks migrated   : %lld\n",
              static_cast<long long>(server->migration().total_moved()));
  std::printf("  migration pending : %lld\n",
              static_cast<long long>(server->migration().pending()));
  if (server->migration().idle()) {
    SCADDAR_CHECK(server->VerifyIntegrity().ok());
    std::printf("  integrity         : store matches AF() exactly\n");
  }
  return 0;
}
