// Capacity-planning helper: given a generator width b, a tolerance eps and
// an expected disk-count trajectory, report how many scaling operations a
// SCADDAR deployment can absorb before a full redistribution, both by the
// paper's rule of thumb and by exact Lemma 4.3 simulation of the plan.
//
// Run: ./build/examples/capacity_planner [bits] [eps] [n0]
// e.g. ./build/examples/capacity_planner 64 0.01 16

#include <cstdio>
#include <cstdlib>

#include "core/bounds.h"
#include "core/op_log.h"
#include "util/intmath.h"

using scaddar::ExactMaxOpsForConstantDisks;
using scaddar::MaxRandomForBits;
using scaddar::OpLog;
using scaddar::RuleOfThumbMaxOps;
using scaddar::ScalingOp;

int main(int argc, char** argv) {
  const int bits = argc > 1 ? std::atoi(argv[1]) : 64;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.01;
  const int64_t n0 = argc > 3 ? std::atoll(argv[3]) : 16;
  if (bits < 1 || bits > 64 || eps <= 0.0 || n0 < 2) {
    std::fprintf(stderr,
                 "usage: capacity_planner [bits 1..64] [eps > 0] [n0 >= 2]\n");
    return 1;
  }
  const uint64_t r0 = MaxRandomForBits(bits);

  std::printf("configuration: b=%d (R0=%llu), eps=%.3f%%, N0=%lld\n\n", bits,
              static_cast<unsigned long long>(r0), eps * 100.0,
              static_cast<long long>(n0));
  std::printf("rule of thumb (constant ~%lld disks): %lld operations\n",
              static_cast<long long>(n0),
              static_cast<long long>(
                  RuleOfThumbMaxOps(bits, eps, static_cast<double>(n0))));
  std::printf("exact Lemma 4.3 (constant %lld disks): %lld operations\n\n",
              static_cast<long long>(n0),
              static_cast<long long>(
                  ExactMaxOpsForConstantDisks(r0, n0, eps)));

  // Simulate a concrete growth plan: +1 disk per quarter.
  std::printf("growth plan simulation (+1 disk per operation):\n");
  std::printf("%-6s %-8s %-14s %-8s\n", "op", "disks", "Pi_k", "gate");
  OpLog log = OpLog::Create(n0).value();
  for (int op = 0;; ++op) {
    const bool ok = log.SatisfiesTolerance(r0, eps);
    std::printf("%-6d %-8lld %-14.4g %-8s\n", op,
                static_cast<long long>(log.current_disks()),
                static_cast<double>(log.pi().value()), ok ? "ok" : "STOP");
    if (!ok || op > 64) {
      std::printf("\n-> schedule a full redistribution before operation %d\n",
                  op);
      break;
    }
    SCADDAR_CHECK(log.Append(ScalingOp::Add(1).value()).ok());
  }
  return 0;
}
