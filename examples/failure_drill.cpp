// Failure drill: a mirrored SCADDAR array loses a disk without warning.
// The operator models the failure as a removal operation, asks the
// recovery planner for the exact transfer list that restores full 2-way
// redundancy, and audits that no transfer reads the dead disk.
//
// Run: ./build/examples/failure_drill

#include <cstdio>
#include <unordered_set>

#include "faults/mirror.h"
#include "faults/recovery.h"
#include "random/sequence.h"

using scaddar::BlockIndex;
using scaddar::MirroredPlacement;
using scaddar::PhysicalDiskId;
using scaddar::PlanMirrorRecovery;
using scaddar::PrngKind;
using scaddar::RecoveryPlan;
using scaddar::ScaddarPolicy;
using scaddar::ScalingOp;
using scaddar::X0Sequence;

int main() {
  constexpr int64_t kDisks = 10;
  constexpr int64_t kBlocks = 50000;
  constexpr scaddar::DiskSlot kFailedSlot = 6;

  ScaddarPolicy policy(kDisks);
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, 0xfee1u, 64)
          .value()
          .Materialize(kBlocks);
  SCADDAR_CHECK(policy.AddObject(1, x0).ok());

  // Before the failure: every block has a primary and a mirror at offset
  // f(N) = N/2, always on distinct disks.
  const PhysicalDiskId failed_disk =
      policy.log().physical_disks()[kFailedSlot];
  std::printf("array: %lld disks, %lld blocks, mirrored at offset %lld\n",
              static_cast<long long>(kDisks),
              static_cast<long long>(kBlocks),
              static_cast<long long>(MirroredPlacement::MirrorOffset(kDisks)));
  std::printf("disk %lld fails unexpectedly...\n\n",
              static_cast<long long>(failed_disk));

  // 1. Reads keep working immediately: the mirror serves the dead disk's
  //    share. (No remap needed for availability — only for re-protection.)
  {
    const MirroredPlacement mirror(&policy);
    const std::unordered_set<PhysicalDiskId> failures = {failed_disk};
    int64_t served_by_mirror = 0;
    for (BlockIndex i = 0; i < kBlocks; ++i) {
      const auto read = mirror.LocateForRead(1, i, failures);
      SCADDAR_CHECK(read.ok());
      served_by_mirror += mirror.PrimaryOf(1, i) == failed_disk ? 1 : 0;
    }
    std::printf("phase 1 — degraded service: all %lld blocks readable; "
                "%lld served from mirrors\n",
                static_cast<long long>(kBlocks),
                static_cast<long long>(served_by_mirror));
  }

  // 2. Re-protect: apply the failure as a removal op and plan recovery.
  SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Remove({kFailedSlot}).value()).ok());
  const RecoveryPlan plan = PlanMirrorRecovery(policy).value();
  std::printf("\nphase 2 — recovery plan (failure = removal op, now %lld "
              "disks):\n",
              static_cast<long long>(policy.current_disks()));
  std::printf("  lost copies      : %lld primaries, %lld mirrors\n",
              static_cast<long long>(plan.lost_primaries),
              static_cast<long long>(plan.lost_mirrors));
  std::printf("  transfers needed : %lld (incl. %lld offset-induced "
              "relocations)\n",
              static_cast<long long>(plan.num_actions()),
              static_cast<long long>(plan.relocations));

  // 3. Audit the plan.
  int64_t reads_from_dead_disk = 0;
  for (const auto& action : plan.actions) {
    reads_from_dead_disk += action.read_from == failed_disk ? 1 : 0;
  }
  std::printf("  audit            : %lld transfers read the dead disk "
              "(must be 0)\n",
              static_cast<long long>(reads_from_dead_disk));

  // 4. After executing the plan, redundancy is full again under the new
  //    layout; the op log alone records what happened:
  std::printf("\nop log after the drill: \"%s\"\n",
              policy.log().Serialize().c_str());
  return 0;
}
