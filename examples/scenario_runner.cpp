// scenario_runner — executes a scenario script against a fresh CM server.
// Scripts make experiments repeatable and reviewable: the same file drives
// tests, demos and capacity studies.
//
//   ./build/examples/scenario_runner path/to/script.scn
//   ./build/examples/scenario_runner            # runs the built-in demo
//
// `--sharded[=N]` serves through the thread-per-core sharded runtime
// (N shards, default 4) instead of the serial batch-cursor path; every
// summary number must come out identical either way — the sharded round
// is byte-identical to the serial one by contract.
//
// `--cluster[=N]` runs the script against an N-server-shard ClusterServer
// (default 2) through the cluster interpreter, which adds the `addshard`,
// `removeshard` and `scaledisks` commands (see src/cluster/
// cluster_scenario.h). With N=1 the summary is identical to the bare run
// for any shared-command script — the cluster equivalence contract.
//
// See src/server/scenario.h for the command reference.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cluster/cluster_scenario.h"
#include "server/scenario.h"

namespace {

constexpr const char* kDemoScript = R"(# Built-in demo: grow, churn, rebase.
addobject 1 2000
addobject 2 1000 2
stream 1
stream 2
tick 100
scale add 2          # grow the array online
tick 200
scale remove 1       # retire a disk online
drain
verify
rebase               # fresh seeds, empty op log
drain
verify
)";

void PrintSummary(const scaddar::ScenarioResult& result) {
  std::printf("\nscenario complete:\n");
  std::printf("  commands executed : %lld\n",
              static_cast<long long>(result.lines_executed));
  std::printf("  rounds simulated  : %lld\n",
              static_cast<long long>(result.rounds));
  std::printf("  streams started   : %lld (rejected %lld)\n",
              static_cast<long long>(result.streams_started),
              static_cast<long long>(result.streams_rejected));
  std::printf("  blocks served     : %lld (hiccups %lld)\n",
              static_cast<long long>(result.served),
              static_cast<long long>(result.hiccups));
  std::printf("  blocks migrated   : %lld\n",
              static_cast<long long>(result.migrated));
  std::printf("  startup p50/p99/p999 : %lld/%lld/%lld rounds\n",
              static_cast<long long>(result.startup_p50),
              static_cast<long long>(result.startup_p99),
              static_cast<long long>(result.startup_p999));
  if (result.auto_reorg_triggers > 0) {
    std::printf("  auto reorgs       : %lld\n",
                static_cast<long long>(result.auto_reorg_triggers));
  }
  if (result.crashes > 0) {
    std::printf("  crashes survived  : %lld\n",
                static_cast<long long>(result.crashes));
  }
  if (result.kill_restarts > 0) {
    std::printf("  checkpoint restarts : %lld\n",
                static_cast<long long>(result.kill_restarts));
  }
}

}  // namespace

int main(int argc, char** argv) {
  int sharded = 0;
  int cluster_shards = 0;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = 4;
    } else if (std::strncmp(argv[i], "--sharded=", 10) == 0) {
      sharded = std::atoi(argv[i] + 10);
      if (sharded < 1) {
        std::fprintf(stderr, "bad shard count in %s\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster_shards = 2;
    } else if (std::strncmp(argv[i], "--cluster=", 10) == 0) {
      cluster_shards = std::atoi(argv[i] + 10);
      if (cluster_shards < 1) {
        std::fprintf(stderr, "bad cluster shard count in %s\n", argv[i]);
        return 1;
      }
    } else {
      path = argv[i];
    }
  }
  std::string script;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    script = buffer.str();
    std::printf("running scenario %s\n", path);
  } else {
    script = kDemoScript;
    std::printf("running the built-in demo scenario:\n%s\n", kDemoScript);
  }

  scaddar::ServerConfig config;
  config.initial_disks = 8;
  config.master_seed = 0x5ce11ull;
  // Journaled migration so scripts may use the `crash` command.
  config.journal_migration = true;
  if (sharded > 0) {
    config.serving_path = scaddar::ServingPath::kShardedCursor;
    config.serving_shards = sharded;
    std::printf("serving path: sharded cursor, %d shards\n", sharded);
  }

  if (cluster_shards > 0) {
    scaddar::ClusterConfig cluster_config;
    cluster_config.shard = config;
    cluster_config.shard.journal_migration = false;  // No `crash` command.
    cluster_config.initial_shards = cluster_shards;
    std::printf("cluster mode: %d server shards\n", cluster_shards);
    auto cluster =
        std::move(scaddar::ClusterServer::Create(cluster_config)).value();
    const scaddar::StatusOr<scaddar::ScenarioResult> result =
        scaddar::RunClusterScenario(*cluster, script);
    if (!result.ok()) {
      std::fprintf(stderr, "scenario failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintSummary(result.value());
    std::printf("  final shards      : %d (", cluster->num_shards());
    bool first = true;
    for (const int member : cluster->members()) {
      std::printf("%s%d:%lld disks", first ? "" : ", ", member,
                  static_cast<long long>(
                      cluster->shard(member)->disks().num_live()));
      first = false;
    }
    std::printf(")\n");
    return 0;
  }

  auto server = std::move(scaddar::CmServer::Create(config)).value();
  const scaddar::StatusOr<scaddar::ScenarioResult> result =
      scaddar::RunScenario(*server, script);
  if (!result.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintSummary(result.value());
  std::printf("  final disks       : %lld, op log \"%s\"\n",
              static_cast<long long>(server->policy().current_disks()),
              server->policy().log().Serialize().c_str());
  return 0;
}
