// A guided tour of the paper's Figure 1 and Section 4.2 worked examples,
// printing every intermediate X_j of the REMAP chain so the algebra can be
// followed by hand.
//
// Run: ./build/examples/figure1_walkthrough

#include <cstdio>

#include "core/mapper.h"

using scaddar::Epoch;
using scaddar::Mapper;
using scaddar::OpLog;
using scaddar::ScalingOp;

namespace {

void TraceBlock(const Mapper& mapper, uint64_t x0) {
  const Mapper::Trace trace = mapper.TraceChain(x0);
  std::printf("X0=%-4llu:", static_cast<unsigned long long>(x0));
  for (size_t j = 0; j < trace.x.size(); ++j) {
    std::printf("  X%zu=%-5llu D%zu=%lld(phys %lld)", j,
                static_cast<unsigned long long>(trace.x[j]), j,
                static_cast<long long>(trace.slot[j]),
                static_cast<long long>(trace.physical[j]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // --- Section 4.2.1's removal example: disks 0..5, disk 4 removed. ---
  std::printf("Section 4.2.1 example: N=6, remove disk 4\n");
  OpLog removal_log = OpLog::Create(6).value();
  SCADDAR_CHECK(removal_log.Append(ScalingOp::Remove({4}).value()).ok());
  const Mapper removal_mapper(&removal_log);
  std::printf("  block with X=28 (on removed disk 4):\n    ");
  TraceBlock(removal_mapper, 28);
  std::printf("    -> paper: X_j = q = 4, D_j = 4th survivor = Disk 5\n");
  std::printf("  block with X=41 (on surviving disk 5):\n    ");
  TraceBlock(removal_mapper, 41);
  std::printf("    -> paper: X_j = 6*5 + new(5) = 34, stays on Disk 5\n\n");

  // --- Figure 1's setting under SCADDAR: 4 disks, two 1-disk adds. ---
  std::printf("Figure 1's scenario under SCADDAR (N0=4, two 1-disk adds):\n");
  OpLog add_log = OpLog::Create(4).value();
  SCADDAR_CHECK(add_log.Append(ScalingOp::Add(1).value()).ok());
  SCADDAR_CHECK(add_log.Append(ScalingOp::Add(1).value()).ok());
  const Mapper add_mapper(&add_log);
  for (uint64_t x0 = 0; x0 < 12; ++x0) {
    std::printf("  ");
    TraceBlock(add_mapper, x0);
  }
  std::printf(
      "\nNote how a block's X_j keeps shrinking: each operation consumes\n"
      "the quotient q = X div N as its fresh randomness (Definition 4.1).\n"
      "That shrinkage is why Section 4.3 bounds the number of operations\n"
      "before a full redistribution is advisable.\n");

  // --- Layout comparison for the full 44 blocks of Figure 1. ---
  std::printf("\nSCADDAR layout for X0 = 0..43 after both additions:\n");
  for (int64_t disk = 0; disk < 6; ++disk) {
    std::printf("  Disk %lld:", static_cast<long long>(disk));
    for (uint64_t x0 = 0; x0 < 44; ++x0) {
      if (add_mapper.LocateSlot(x0) == disk) {
        std::printf(" %2llu", static_cast<unsigned long long>(x0));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "(contrast with bench_figure1, which prints the naive Eq. 2 layout\n"
      "that feeds the second new disk from disks 1, 3, 4 only)\n");
  return 0;
}
