// scaddar_tool — a small operator CLI over the library, the kind of
// utility a storage admin would keep next to a SCADDAR deployment.
//
//   scaddar_tool locate <oplog> <x0>            where is this block now?
//   scaddar_tool trace  <oplog> <x0>            full X_j / D_j chain
//   scaddar_tool plan   <oplog> <seed> <blocks> move plan for the last op
//   scaddar_tool gate   <oplog> <bits> <eps>    Lemma 4.3 tolerance check
//   scaddar_tool budget <oplog> <bits> <eps> <disks>  range fuel gauge
//   scaddar_tool layout <oplog> <seed> <blocks> per-disk load summary
//
// <oplog> uses OpLog text form, e.g. "8;A2;R1,4" (quote it in a shell).

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/bounds.h"
#include "core/compiled_log.h"
#include "core/governor.h"
#include "core/mapper.h"
#include "core/redistribution.h"
#include "random/sequence.h"
#include "stats/load_metrics.h"
#include "util/intmath.h"

namespace {

using scaddar::BlockIndex;
using scaddar::CompiledLog;
using scaddar::Epoch;
using scaddar::LoadMetrics;
using scaddar::Mapper;
using scaddar::MovePlan;
using scaddar::OpLog;
using scaddar::PrngKind;
using scaddar::StatusOr;
using scaddar::X0Sequence;

int Usage() {
  std::fprintf(stderr,
               "usage: scaddar_tool locate <oplog> <x0>\n"
               "       scaddar_tool trace  <oplog> <x0>\n"
               "       scaddar_tool plan   <oplog> <seed> <blocks>\n"
               "       scaddar_tool gate   <oplog> <bits> <eps>\n"
               "       scaddar_tool layout <oplog> <seed> <blocks>\n");
  return 1;
}

StatusOr<OpLog> LoadLog(const char* text) { return OpLog::Deserialize(text); }

int Locate(const OpLog& log, uint64_t x0) {
  const CompiledLog compiled(log);
  std::printf("slot %lld, physical disk %lld (of %lld disks)\n",
              static_cast<long long>(compiled.LocateSlot(x0)),
              static_cast<long long>(compiled.LocatePhysical(x0)),
              static_cast<long long>(log.current_disks()));
  return 0;
}

int Trace(const OpLog& log, uint64_t x0) {
  const Mapper mapper(&log);
  const Mapper::Trace trace = mapper.TraceChain(x0);
  std::printf("%-6s %-8s %-22s %-8s %-10s\n", "epoch", "op", "X_j", "D_j",
              "physical");
  for (size_t j = 0; j < trace.x.size(); ++j) {
    std::printf("%-6zu %-8s %-22llu %-8lld %-10lld\n", j,
                j == 0 ? "-" : log.op(static_cast<Epoch>(j)).ToString().c_str(),
                static_cast<unsigned long long>(trace.x[j]),
                static_cast<long long>(trace.slot[j]),
                static_cast<long long>(trace.physical[j]));
  }
  return 0;
}

int Plan(const OpLog& log, uint64_t seed, int64_t blocks) {
  if (log.num_ops() == 0) {
    std::fprintf(stderr, "op log has no operations to plan\n");
    return 1;
  }
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
          .value()
          .Materialize(blocks);
  const MovePlan plan =
      PlanOperation(log, log.num_ops(), {{/*object=*/1, &x0}});
  const auto stats = plan.ToMovementStats(
      log.disks_after(log.num_ops() - 1), log.current_disks());
  std::printf("last op %s: %lld of %lld blocks move "
              "(%.4f; theoretical minimum %.4f, overhead %.2fx)\n",
              log.op(log.num_ops()).ToString().c_str(),
              static_cast<long long>(plan.num_moves()),
              static_cast<long long>(blocks), stats.moved_fraction,
              stats.theoretical_fraction, stats.overhead_ratio);
  int shown = 0;
  for (const auto& move : plan.moves()) {
    if (++shown > 10) {
      std::printf("  ... %lld more\n",
                  static_cast<long long>(plan.num_moves() - 10));
      break;
    }
    std::printf("  block %-8lld disk %lld -> %lld\n",
                static_cast<long long>(move.block.block),
                static_cast<long long>(move.from_physical),
                static_cast<long long>(move.to_physical));
  }
  return 0;
}

int Gate(const OpLog& log, int bits, double eps) {
  const uint64_t r0 = scaddar::MaxRandomForBits(bits);
  const bool ok = log.SatisfiesTolerance(r0, eps);
  std::printf("Pi_k = %.6g, limit = %.6g -> %s\n",
              static_cast<double>(log.pi().value()),
              static_cast<double>(r0) * (eps / (1.0 + eps)),
              ok ? "within tolerance"
                 : "EXCEEDED: schedule a full redistribution");
  std::printf("guaranteed range R_k = %llu, unfairness bound f = %.6g "
              "(eps = %.4g)\n",
              static_cast<unsigned long long>(
                  scaddar::RangeAfter(r0, log, log.num_ops())),
              scaddar::UnfairnessAfter(r0, log), eps);
  const auto probe = scaddar::ScalingOp::Add(1).value();
  std::printf("one more +1-disk op would %s\n",
              log.WouldExceedTolerance(probe, r0, eps) ? "EXCEED the gate"
                                                       : "still fit");
  return ok ? 0 : 2;
}

int Budget(const OpLog& log, int bits, double eps, int64_t disks) {
  const scaddar::ToleranceGovernor governor(bits, eps);
  std::printf("budget consumed : %5.1f%%\n",
              governor.BudgetConsumed(log) * 100.0);
  std::printf("within budget   : %s\n",
              governor.WithinBudget(log) ? "yes" : "NO — rebase now");
  std::printf("ops left (~%lld disks): %lld\n",
              static_cast<long long>(disks),
              static_cast<long long>(governor.EstimatedOpsLeft(log, disks)));
  return governor.WithinBudget(log) ? 0 : 2;
}

int Layout(const OpLog& log, uint64_t seed, int64_t blocks) {
  const CompiledLog compiled(log);
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
          .value()
          .Materialize(blocks);
  std::vector<int64_t> counts(static_cast<size_t>(log.current_disks()), 0);
  for (const uint64_t x : x0) {
    ++counts[static_cast<size_t>(compiled.LocateSlot(x))];
  }
  const std::vector<scaddar::PhysicalDiskId>& physical =
      log.physical_disks();
  for (size_t slot = 0; slot < counts.size(); ++slot) {
    std::printf("slot %2zu (physical %3lld): %lld blocks\n", slot,
                static_cast<long long>(physical[slot]),
                static_cast<long long>(counts[slot]));
  }
  const LoadMetrics metrics = scaddar::ComputeLoadMetrics(counts);
  std::printf("mean %.1f, CoV %.5f, unfairness %.5f\n", metrics.mean,
              metrics.coefficient_of_variation, metrics.unfairness);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  const std::string_view command = argv[1];
  const StatusOr<OpLog> log = LoadLog(argv[2]);
  if (!log.ok()) {
    std::fprintf(stderr, "bad op log: %s\n", log.status().ToString().c_str());
    return 1;
  }
  if (command == "locate" && argc == 4) {
    return Locate(*log, std::strtoull(argv[3], nullptr, 0));
  }
  if (command == "trace" && argc == 4) {
    return Trace(*log, std::strtoull(argv[3], nullptr, 0));
  }
  if (command == "plan" && argc == 5) {
    return Plan(*log, std::strtoull(argv[3], nullptr, 0),
                std::atoll(argv[4]));
  }
  if (command == "gate" && argc == 5) {
    return Gate(*log, std::atoi(argv[3]), std::atof(argv[4]));
  }
  if (command == "budget" && argc == 6) {
    return Budget(*log, std::atoi(argv[3]), std::atof(argv[4]),
                  std::atoll(argv[5]));
  }
  if (command == "layout" && argc == 5) {
    return Layout(*log, std::strtoull(argv[3], nullptr, 0),
                  std::atoll(argv[4]));
  }
  return Usage();
}
