// Quickstart: place a media object's blocks with SCADDAR, scale the disk
// array up and down, and locate blocks after every operation — all from
// one seed and a tiny op log, no per-block directory.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/bounds.h"
#include "placement/scaddar_policy.h"
#include "random/sequence.h"
#include "stats/load_metrics.h"

using scaddar::BlockIndex;
using scaddar::ComputeLoadMetrics;
using scaddar::LoadMetrics;
using scaddar::PrngKind;
using scaddar::ScaddarPolicy;
using scaddar::ScalingOp;
using scaddar::X0Sequence;

namespace {

void Report(const ScaddarPolicy& policy, const char* caption) {
  const LoadMetrics metrics = ComputeLoadMetrics(policy.PerDiskCounts());
  std::printf("%-34s disks=%-3lld  mean=%8.1f  CoV=%.4f\n", caption,
              static_cast<long long>(policy.current_disks()), metrics.mean,
              metrics.coefficient_of_variation);
}

}  // namespace

int main() {
  // 1. A CM object is identified by a seed; its block locations are
  //    derived, never stored (Definition 3.1: pseudo-random placement).
  constexpr uint64_t kMovieSeed = 0x5caddau;
  constexpr int64_t kBlocks = 100000;
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, kMovieSeed, /*bits=*/64)
          .value()
          .Materialize(kBlocks);

  // 2. Start a SCADDAR placement over 8 disks and register the object.
  ScaddarPolicy policy(/*n0=*/8);
  SCADDAR_CHECK(policy.AddObject(/*id=*/1, x0).ok());
  Report(policy, "initial placement (N0 = 8):");

  // 3. The server grows: add a group of 2 disks. Only ~2/10 of blocks
  //    move, all onto the new disks (RO1), and balance is preserved (RO2).
  SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  Report(policy, "after adding a 2-disk group:");

  // 4. A disk dies of old age: remove slot 3. Only its blocks move.
  SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Remove({3}).value()).ok());
  Report(policy, "after removing one disk:");

  // 5. Locate any block in O(#ops) divs/mods — this is AF() (AO1).
  std::printf("\nblock 0 is on physical disk %lld; block 99999 on %lld\n",
              static_cast<long long>(policy.Locate(1, 0)),
              static_cast<long long>(policy.Locate(1, 99999)));

  // 6. The whole placement state is just the op log:
  std::printf("op log: \"%s\"  (vs. a %lld-entry directory)\n",
              policy.log().Serialize().c_str(),
              static_cast<long long>(kBlocks));

  // 7. How many more operations can this configuration absorb before a
  //    full redistribution is recommended (Lemma 4.3 / rule of thumb)?
  std::printf("rule of thumb (b=64, eps=1%%, ~9 disks): up to %lld ops\n",
              static_cast<long long>(
                  scaddar::RuleOfThumbMaxOps(64, 0.01, 9.0)));
  return 0;
}
