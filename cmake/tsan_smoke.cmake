# Configures, builds and runs the concurrency tests under ThreadSanitizer in
# a nested build tree. Driven by the `tsan_smoke` ctest entry so the thread
# pool and the parallel planners are race-checked as part of tier-1; also
# runnable directly:
#   cmake -DSOURCE_DIR=. -DBINARY_DIR=build/tsan-smoke -P cmake/tsan_smoke.cmake
foreach(var SOURCE_DIR BINARY_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "tsan_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DSCADDAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug
  RESULT_VARIABLE configure_result)
if(configure_result)
  message(FATAL_ERROR "TSan configure failed: ${configure_result}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR}
          --target thread_pool_test parallel_plan_test fault_injection_test
                   seqlock_test sharded_serving_test cluster_test
                   storage_backend_test governor_property_test
  RESULT_VARIABLE build_result)
if(build_result)
  message(FATAL_ERROR "TSan build failed: ${build_result}")
endif()

execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${BINARY_DIR}
          -R "thread_pool_test|parallel_plan_test|^fault_injection_test$|seqlock_test|sharded_serving_test|^cluster_test$|storage_backend_test|governor_property_test"
          --output-on-failure
  RESULT_VARIABLE test_result)
if(test_result)
  message(FATAL_ERROR "TSan smoke tests failed: ${test_result}")
endif()
