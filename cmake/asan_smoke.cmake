# Configures, builds and runs the serving-path tests under AddressSanitizer
# in a nested build tree. Driven by the `asan_smoke` ctest entry so the
# cursor windows, span-based store rows and batched migration rounds are
# memory-checked as part of tier-1; also runnable directly:
#   cmake -DSOURCE_DIR=. -DBINARY_DIR=build/asan-smoke -P cmake/asan_smoke.cmake
foreach(var SOURCE_DIR BINARY_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "asan_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DSCADDAR_SANITIZE=address -DCMAKE_BUILD_TYPE=Debug
  RESULT_VARIABLE configure_result)
if(configure_result)
  message(FATAL_ERROR "ASan configure failed: ${configure_result}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR}
          --target location_cursor_test serving_equivalence_test
                   fault_injection_test sharded_serving_test
                   traffic_engine_test cluster_test storage_backend_test
                   governor_property_test
  RESULT_VARIABLE build_result)
if(build_result)
  message(FATAL_ERROR "ASan build failed: ${build_result}")
endif()

execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${BINARY_DIR}
          -R "location_cursor_test|serving_equivalence_test|^fault_injection_test$|sharded_serving_test|traffic_engine_test|^cluster_test$|storage_backend_test|governor_property_test"
          --output-on-failure
  RESULT_VARIABLE test_result)
if(test_result)
  message(FATAL_ERROR "ASan smoke tests failed: ${test_result}")
endif()
