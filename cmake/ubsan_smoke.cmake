# Configures, builds and runs the kernel tests under UndefinedBehaviorSanitizer
# in a nested build tree. UBSan is the right sanitizer for the SIMD backends:
# the kernels are intrinsics plus shift/overflow-heavy integer math, exactly
# the class of bug (bad shift widths, signed overflow, misaligned access)
# that TSan/ASan cannot see. Driven by the `ubsan_smoke` ctest entry; also
# runnable directly:
#   cmake -DSOURCE_DIR=. -DBINARY_DIR=build/ubsan-smoke -P cmake/ubsan_smoke.cmake
foreach(var SOURCE_DIR BINARY_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ubsan_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DSCADDAR_SANITIZE=undefined -DCMAKE_BUILD_TYPE=Debug
  RESULT_VARIABLE configure_result)
if(configure_result)
  message(FATAL_ERROR "UBSan configure failed: ${configure_result}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR}
          --target simd_kernel_test batch_equivalence_test intmath_test
                   fault_injection_test cluster_test storage_backend_test
                   governor_property_test
  RESULT_VARIABLE build_result)
if(build_result)
  message(FATAL_ERROR "UBSan build failed: ${build_result}")
endif()

execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${BINARY_DIR}
          -R "simd_kernel_test|batch_equivalence_test|intmath_test|^fault_injection_test$|^cluster_test$|storage_backend_test|governor_property_test"
          --output-on-failure
  RESULT_VARIABLE test_result)
if(test_result)
  message(FATAL_ERROR "UBSan smoke tests failed: ${test_result}")
endif()
