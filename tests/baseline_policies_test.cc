#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "placement/directory_policy.h"
#include "placement/mod_policy.h"
#include "placement/naive_policy.h"
#include "placement/round_robin_policy.h"
#include "random/sequence.h"
#include "stats/chi_square.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

std::vector<uint64_t> Iota44() {
  std::vector<uint64_t> x0(44);
  std::iota(x0.begin(), x0.end(), 0);
  return x0;
}

// ---------------------------------------------------------------------
// NaivePolicy: Figure 1, end to end through the policy interface.
// ---------------------------------------------------------------------

TEST(NaivePolicyTest, FigureOneLayoutAfterFirstAdd) {
  NaivePolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, Iota44()).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  // Figure 1b.
  const std::vector<std::vector<uint64_t>> expected = {
      {0, 8, 12, 16, 20, 28, 32, 36, 40},
      {1, 5, 13, 17, 21, 25, 33, 37, 41},
      {2, 6, 10, 18, 22, 26, 30, 38, 42},
      {3, 7, 11, 15, 23, 27, 31, 35, 43},
      {4, 9, 14, 19, 24, 29, 34, 39},
  };
  for (DiskSlot disk = 0; disk < 5; ++disk) {
    std::vector<uint64_t> actual;
    for (uint64_t x0 = 0; x0 < 44; ++x0) {
      if (policy.LocateSlot(1, static_cast<BlockIndex>(x0)) == disk) {
        actual.push_back(x0);
      }
    }
    EXPECT_EQ(actual, expected[static_cast<size_t>(disk)])
        << "disk " << disk;
  }
}

TEST(NaivePolicyTest, FigureOneSecondAddSkipsDisksZeroAndTwo) {
  NaivePolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, Iota44()).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  std::vector<DiskSlot> before(44);
  for (uint64_t i = 0; i < 44; ++i) {
    before[i] = policy.LocateSlot(1, static_cast<BlockIndex>(i));
  }
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  std::set<DiskSlot> sources;
  std::vector<uint64_t> landed;
  for (uint64_t i = 0; i < 44; ++i) {
    if (policy.LocateSlot(1, static_cast<BlockIndex>(i)) == 5) {
      sources.insert(before[i]);
      landed.push_back(i);
    }
  }
  // Figure 1c: disk 5 holds {5, 11, 17, 23, 29, 35, 41}, drawn only from
  // disks 1, 3 and 4 — disks 0 and 2 never contribute.
  EXPECT_EQ(landed, (std::vector<uint64_t>{5, 11, 17, 23, 29, 35, 41}));
  EXPECT_EQ(sources, (std::set<DiskSlot>{1, 3, 4}));
}

TEST(NaivePolicyTest, SatisfiesRO1OnEachOp) {
  NaivePolicy policy(6);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 30000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 6, 7);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
}

TEST(NaivePolicyTest, SecondOpViolatesRO2) {
  // The headline defect: after two additions the *new* disk's load is fed
  // from a biased subset, so the per-disk distribution of blocks that
  // moved in op 2 is skewed. We detect it exactly as Figure 1 shows it:
  // blocks landing on the op-2 disk can come only from odd old slots.
  NaivePolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(2, 60000)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  std::vector<DiskSlot> mid(60000);
  for (int64_t i = 0; i < 60000; ++i) {
    mid[static_cast<size_t>(i)] = policy.LocateSlot(1, i);
  }
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  std::vector<int64_t> source_counts(5, 0);
  for (int64_t i = 0; i < 60000; ++i) {
    if (policy.LocateSlot(1, i) == 5) {
      ++source_counts[static_cast<size_t>(mid[static_cast<size_t>(i)])];
    }
  }
  EXPECT_EQ(source_counts[0], 0);  // Disk 0 never contributes.
  EXPECT_EQ(source_counts[2], 0);  // Disk 2 never contributes.
  EXPECT_GT(source_counts[1], 0);
  EXPECT_GT(source_counts[3], 0);
  EXPECT_GT(source_counts[4], 0);
}

// ---------------------------------------------------------------------
// ModPolicy (complete redistribution).
// ---------------------------------------------------------------------

TEST(ModPolicyTest, LocateIsX0ModN) {
  ModPolicy policy(6);
  const std::vector<uint64_t> x0 = MakeX0(3, 100);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(policy.Locate(1, static_cast<BlockIndex>(i)),
              static_cast<PhysicalDiskId>(x0[i] % 6));
  }
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(policy.Locate(1, static_cast<BlockIndex>(i)),
              static_cast<PhysicalDiskId>(x0[i] % 7));
  }
}

TEST(ModPolicyTest, PerfectUniformityEveryEpoch) {
  ModPolicy policy(9);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(4, 90000)).ok());
  EXPECT_TRUE(ChiSquareUniform(policy.PerDiskCounts()).IsUniform(0.001));
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({4}).value()).ok());
  EXPECT_TRUE(ChiSquareUniform(policy.PerDiskCounts()).IsUniform(0.001));
}

TEST(ModPolicyTest, ViolatesRO1Badly) {
  ModPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(5, 20000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 9);
  // Mod-placement moves ~(1 - 1/9) of all blocks; minimum is 1/9.
  EXPECT_GT(stats.moved_fraction, 0.8);
  EXPECT_GT(stats.overhead_ratio, 6.0);
}

// ---------------------------------------------------------------------
// DirectoryPolicy (Appendix A bookkeeping baseline).
// ---------------------------------------------------------------------

TEST(DirectoryPolicyTest, InitialPlacementMatchesModN) {
  DirectoryPolicy policy(5, /*seed=*/77);
  const std::vector<uint64_t> x0 = MakeX0(6, 100);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(policy.Locate(1, static_cast<BlockIndex>(i)),
              static_cast<PhysicalDiskId>(x0[i] % 5));
  }
}

TEST(DirectoryPolicyTest, MinimalMovementOnAdd) {
  DirectoryPolicy policy(8, 77);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(7, 40000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 10);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      EXPECT_GE(after[i], 8);  // Only onto the new disks.
    }
  }
}

TEST(DirectoryPolicyTest, RemovalEvictsExactlyTheVictims) {
  DirectoryPolicy policy(6, 78);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(8, 30000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i] != after[i], before[i] == 2);
    EXPECT_NE(after[i], 2);
  }
}

TEST(DirectoryPolicyTest, UniformityNeverDegrades) {
  // The gold standard: even after MANY operations (way beyond SCADDAR's
  // k bound for small b) the directory stays perfectly uniform.
  DirectoryPolicy policy(8, 79);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(9, 80000)).ok());
  for (int i = 0; i < 20; ++i) {
    const ScalingOp op = (i % 3 == 2) ? ScalingOp::Remove({0}).value()
                                      : ScalingOp::Add(1).value();
    ASSERT_TRUE(policy.ApplyOp(op).ok());
  }
  EXPECT_TRUE(ChiSquareUniform(policy.PerDiskCounts()).IsUniform(0.001));
}

TEST(DirectoryPolicyTest, DirectoryCostIsPerBlock) {
  DirectoryPolicy policy(4, 80);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(10, 123)).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(11, 77)).ok());
  EXPECT_EQ(policy.directory_entries(), 200);
}

// ---------------------------------------------------------------------
// RoundRobinPolicy (constrained placement baseline).
// ---------------------------------------------------------------------

TEST(RoundRobinPolicyTest, StripesSequentially) {
  RoundRobinPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(12, 10)).ok());
  const PhysicalDiskId first = policy.Locate(1, 0);
  for (BlockIndex i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.Locate(1, i),
              static_cast<PhysicalDiskId>((first + i) % 4));
  }
}

TEST(RoundRobinPolicyTest, PerfectBalanceForLongObjects) {
  RoundRobinPolicy policy(5);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(13, 5000)).ok());
  const std::vector<int64_t> counts = policy.PerDiskCounts();
  for (const int64_t count : counts) {
    EXPECT_EQ(count, 1000);
  }
}

TEST(RoundRobinPolicyTest, ScalingMovesAlmostEverything) {
  RoundRobinPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(14, 20000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 4, 5);
  EXPECT_GT(stats.moved_fraction, 0.75);  // "almost all the data blocks".
}

TEST(RoundRobinPolicyTest, RemovalAlsoReshufflesEverything) {
  RoundRobinPolicy policy(5);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(17, 20000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 5, 4);
  EXPECT_GT(stats.moved_fraction, 0.7);
  // And nothing may live on the removed physical disk.
  for (const PhysicalDiskId disk : after) {
    EXPECT_NE(disk, 2);
  }
}

TEST(DirectoryPolicyTest, GroupRemovalEvictsAllVictims) {
  DirectoryPolicy policy(8, 81);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(18, 20000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({1, 4, 6}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  for (size_t i = 0; i < before.size(); ++i) {
    const bool was_victim =
        before[i] == 1 || before[i] == 4 || before[i] == 6;
    EXPECT_EQ(before[i] != after[i], was_victim);
    EXPECT_NE(after[i], 1);
    EXPECT_NE(after[i], 4);
    EXPECT_NE(after[i], 6);
  }
}

TEST(RoundRobinPolicyTest, DistinctObjectsGetStaggeredOffsets) {
  RoundRobinPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(15, 4)).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(16, 4)).ok());
  EXPECT_NE(policy.Locate(1, 0), policy.Locate(2, 0));
}

}  // namespace
}  // namespace scaddar
