#include "placement/consistent_hash_policy.h"

#include <gtest/gtest.h>

#include "random/sequence.h"
#include "stats/load_metrics.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(ConsistentHashPolicyTest, RingSizeTracksDisksAndVnodes) {
  ConsistentHashPolicy policy(4, 32);
  EXPECT_EQ(policy.ring_size(), 4 * 32);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  EXPECT_EQ(policy.ring_size(), 6 * 32);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({0, 1}).value()).ok());
  EXPECT_EQ(policy.ring_size(), 4 * 32);
}

TEST(ConsistentHashPolicyTest, LocateIsDeterministic) {
  ConsistentHashPolicy a(5, 16);
  ConsistentHashPolicy b(5, 16);
  const std::vector<uint64_t> x0 = MakeX0(1, 500);
  ASSERT_TRUE(a.AddObject(1, x0).ok());
  ASSERT_TRUE(b.AddObject(1, x0).ok());
  for (BlockIndex i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Locate(1, i), b.Locate(1, i));
  }
}

TEST(ConsistentHashPolicyTest, AdditionMovesOnlyToNewDisk) {
  ConsistentHashPolicy policy(6, 64);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(2, 30000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      EXPECT_EQ(after[i], 6);  // The freshly added physical id.
    }
  }
  const MovementStats stats = CompareAssignments(before, after, 6, 7);
  // Expected movement is 1/7; ring variance makes it noisy, so allow a
  // generous band while still ruling out mod-style mass movement.
  EXPECT_LT(stats.moved_fraction, 0.35);
  EXPECT_GT(stats.moved_fraction, 0.02);
}

TEST(ConsistentHashPolicyTest, RemovalMovesOnlyVictims) {
  ConsistentHashPolicy policy(6, 64);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 30000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i] != after[i], before[i] == 2);
    EXPECT_NE(after[i], 2);
  }
}

TEST(ConsistentHashPolicyTest, MoreVnodesMeanBetterBalance) {
  const auto cov_for = [](int64_t vnodes) {
    ConsistentHashPolicy policy(8, vnodes);
    SCADDAR_CHECK(policy.AddObject(1, MakeX0(4, 80000)).ok());
    return ComputeLoadMetrics(policy.PerDiskCounts())
        .coefficient_of_variation;
  };
  const double cov_few = cov_for(4);
  const double cov_many = cov_for(256);
  EXPECT_LT(cov_many, cov_few);
  EXPECT_LT(cov_many, 0.15);
}

TEST(ConsistentHashPolicyTest, BalanceIsNoisierThanScaddar) {
  // The ablation claim behind EXP-G: ring imbalance at practical vnode
  // counts is visibly worse than SCADDAR's near-perfect modular split.
  ConsistentHashPolicy policy(8, 64);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(5, 80000)).ok());
  const double cov = ComputeLoadMetrics(policy.PerDiskCounts())
                         .coefficient_of_variation;
  EXPECT_GT(cov, 0.01);
}

TEST(ConsistentHashPolicyTest, VnodeCountAccessor) {
  const ConsistentHashPolicy policy(2, 7);
  EXPECT_EQ(policy.vnodes(), 7);
  EXPECT_EQ(policy.name(), "chash");
}

}  // namespace
}  // namespace scaddar
