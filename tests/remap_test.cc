#include "core/remap.h"

#include <vector>

#include <gtest/gtest.h>

#include "random/sequence.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

// ---------------------------------------------------------------------
// Worked examples straight out of Section 4.2.1 of the paper.
// ---------------------------------------------------------------------

TEST(RemapRemoveTest, PaperExampleMovedBlock) {
  // Disks 0..5 (N_{j-1}=6, N_j=5), disk 4 removed. A block with X_{j-1}=28
  // sits on slot 4 (28 mod 6) and must move: X_j = q = 28 div 6 = 4, so
  // D_j = 4, which is the 4th surviving disk = physical Disk 5.
  const ScalingOp op = ScalingOp::Remove({4}).value();
  const uint64_t x_j = RemapRemove(28, 6, 5, op);
  EXPECT_EQ(x_j, 4u);
  EXPECT_EQ(x_j % 5, 4u);
  const std::vector<int64_t> survivors = {0, 1, 2, 3, 5};
  EXPECT_EQ(survivors[x_j % 5], 5);  // Physical Disk 5, as in the paper.
}

TEST(RemapRemoveTest, PaperExampleStayingBlock) {
  // Same operation; a block with X_{j-1}=41 sits on slot 5 (41 mod 6 = 5)
  // and stays: q = 6, new(5) = 4, X_j = 6*5 + 4 = 34; D_j = 34 mod 5 = 4,
  // the 4th surviving disk = original physical Disk 5.
  const ScalingOp op = ScalingOp::Remove({4}).value();
  const uint64_t x_j = RemapRemove(41, 6, 5, op);
  EXPECT_EQ(x_j, 34u);
  EXPECT_EQ(x_j % 5, 4u);
  EXPECT_EQ(x_j / 5, 6u);  // Fresh randomness q stashed in the quotient.
}

// ---------------------------------------------------------------------
// Algebraic invariants of Eq. 5 (addition).
// ---------------------------------------------------------------------

struct AddCase {
  int64_t n_prev;
  int64_t n_cur;
};

class RemapAddPropertyTest : public ::testing::TestWithParam<AddCase> {};

TEST_P(RemapAddPropertyTest, StayersKeepSlotMoversHitNewDisks) {
  const auto [n_prev, n_cur] = GetParam();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x_prev = seq.Next();
    const uint64_t x_cur = RemapAdd(x_prev, n_prev, n_cur);
    const auto slot_prev =
        static_cast<int64_t>(x_prev % static_cast<uint64_t>(n_prev));
    const auto slot_cur =
        static_cast<int64_t>(x_cur % static_cast<uint64_t>(n_cur));
    if (slot_cur != slot_prev) {
      // RO1: a block that changes slots must land on an *added* disk.
      EXPECT_GE(slot_cur, n_prev);
      EXPECT_LT(slot_cur, n_cur);
    }
  }
}

TEST_P(RemapAddPropertyTest, QuotientBecomesFreshRandomSource) {
  const auto [n_prev, n_cur] = GetParam();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value();
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x_prev = seq.Next();
    const uint64_t q_prev = x_prev / static_cast<uint64_t>(n_prev);
    const uint64_t x_cur = RemapAdd(x_prev, n_prev, n_cur);
    // Eq. 5: X_j div N_j == q_{j-1} div N_j in both branches.
    EXPECT_EQ(x_cur / static_cast<uint64_t>(n_cur),
              q_prev / static_cast<uint64_t>(n_cur));
  }
}

TEST_P(RemapAddPropertyTest, MoveProbabilityMatchesRO1) {
  const auto [n_prev, n_cur] = GetParam();
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 3, 64).value();
  constexpr int kSamples = 100000;
  int moved = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t x_prev = seq.Next();
    const uint64_t x_cur = RemapAdd(x_prev, n_prev, n_cur);
    if (x_cur % static_cast<uint64_t>(n_cur) !=
        x_prev % static_cast<uint64_t>(n_prev)) {
      ++moved;
    }
  }
  const double expected =
      static_cast<double>(n_cur - n_prev) / static_cast<double>(n_cur);
  EXPECT_NEAR(static_cast<double>(moved) / kSamples, expected, 0.01);
}

TEST_P(RemapAddPropertyTest, MoversSpreadUniformlyOverAddedDisks) {
  const auto [n_prev, n_cur] = GetParam();
  if (n_cur - n_prev < 2) {
    GTEST_SKIP() << "needs >= 2 added disks for a spread test";
  }
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 4, 64).value();
  std::vector<int64_t> counts(static_cast<size_t>(n_cur - n_prev), 0);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t x_prev = seq.Next();
    const uint64_t x_cur = RemapAdd(x_prev, n_prev, n_cur);
    const auto slot_cur =
        static_cast<int64_t>(x_cur % static_cast<uint64_t>(n_cur));
    if (slot_cur != static_cast<int64_t>(
                        x_prev % static_cast<uint64_t>(n_prev))) {
      ++counts[static_cast<size_t>(slot_cur - n_prev)];
    }
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

INSTANTIATE_TEST_SUITE_P(
    AddShapes, RemapAddPropertyTest,
    ::testing::Values(AddCase{4, 5}, AddCase{5, 6}, AddCase{4, 8},
                      AddCase{1, 2}, AddCase{16, 20}, AddCase{7, 13},
                      AddCase{100, 101}),
    [](const auto& info) {
      return std::to_string(info.param.n_prev) + "to" +
             std::to_string(info.param.n_cur);
    });

// ---------------------------------------------------------------------
// Algebraic invariants of Eq. 3 (removal).
// ---------------------------------------------------------------------

struct RemoveCase {
  int64_t n_prev;
  std::vector<DiskSlot> removed;
};

class RemapRemovePropertyTest : public ::testing::TestWithParam<RemoveCase> {
};

TEST_P(RemapRemovePropertyTest, SurvivorsKeepCompactedSlot) {
  const auto& [n_prev, removed] = GetParam();
  const ScalingOp op = ScalingOp::Remove(removed).value();
  const int64_t n_cur = n_prev - static_cast<int64_t>(removed.size());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 5, 64).value();
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x_prev = seq.Next();
    const auto slot_prev =
        static_cast<DiskSlot>(x_prev % static_cast<uint64_t>(n_prev));
    const uint64_t x_cur = RemapRemove(x_prev, n_prev, n_cur, op);
    const auto slot_cur =
        static_cast<DiskSlot>(x_cur % static_cast<uint64_t>(n_cur));
    if (!op.Removes(slot_prev)) {
      EXPECT_EQ(slot_cur, op.NewSlot(slot_prev));
      EXPECT_EQ(x_cur / static_cast<uint64_t>(n_cur),
                x_prev / static_cast<uint64_t>(n_prev));
    } else {
      EXPECT_EQ(x_cur, x_prev / static_cast<uint64_t>(n_prev));
    }
  }
}

TEST_P(RemapRemovePropertyTest, EvictedBlocksSpreadUniformly) {
  const auto& [n_prev, removed] = GetParam();
  const ScalingOp op = ScalingOp::Remove(removed).value();
  const int64_t n_cur = n_prev - static_cast<int64_t>(removed.size());
  if (n_cur < 2) {
    GTEST_SKIP() << "needs >= 2 survivors";
  }
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 6, 64).value();
  std::vector<int64_t> counts(static_cast<size_t>(n_cur), 0);
  for (int i = 0; i < 300000; ++i) {
    const uint64_t x_prev = seq.Next();
    const auto slot_prev =
        static_cast<DiskSlot>(x_prev % static_cast<uint64_t>(n_prev));
    if (!op.Removes(slot_prev)) {
      continue;
    }
    const uint64_t x_cur = RemapRemove(x_prev, n_prev, n_cur, op);
    ++counts[static_cast<size_t>(x_cur % static_cast<uint64_t>(n_cur))];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

INSTANTIATE_TEST_SUITE_P(
    RemoveShapes, RemapRemovePropertyTest,
    ::testing::Values(RemoveCase{6, {4}}, RemoveCase{6, {0}},
                      RemoveCase{6, {5}}, RemoveCase{8, {1, 6}},
                      RemoveCase{10, {0, 1, 2}}, RemoveCase{5, {2}},
                      RemoveCase{32, {7, 15, 23, 31}}),
    [](const auto& info) {
      std::string name = std::to_string(info.param.n_prev) + "minus";
      for (const DiskSlot slot : info.param.removed) {
        name += "_" + std::to_string(slot);
      }
      return name;
    });

// ---------------------------------------------------------------------
// Naive scheme (Eq. 2) — exact Figure 1 reproduction at function level.
// ---------------------------------------------------------------------

TEST(NaiveRemapTest, FigureOneFirstAddition) {
  // 44 blocks with X0 = 0..43 over N0 = 4, then one disk added (N = 5).
  // Figure 1b: disk 4 receives exactly {4, 9, 14, 19, 24, 29, 34, 39}.
  std::vector<uint64_t> moved_to_new;
  for (uint64_t x0 = 0; x0 < 44; ++x0) {
    const int64_t slot0 = static_cast<int64_t>(x0 % 4);
    const int64_t slot1 = NaiveAddSlot(x0, slot0, 4, 5);
    if (slot1 == 4) {
      moved_to_new.push_back(x0);
    } else {
      EXPECT_EQ(slot1, slot0);  // Everyone else stays put.
    }
  }
  EXPECT_EQ(moved_to_new,
            (std::vector<uint64_t>{4, 9, 14, 19, 24, 29, 34, 39}));
}

TEST(NaiveRemapTest, FigureOneSecondAdditionIsSkewed) {
  // Figure 1c: after the second addition (N = 6), disk 5 receives
  // {5, 11, 17, 23, 29, 35, 41}, all drawn from disks 1, 3 and 4 only —
  // disks 0 and 2 are ignored, which is the RO2 violation.
  std::vector<uint64_t> moved;
  std::vector<int64_t> source_disks;
  for (uint64_t x0 = 0; x0 < 44; ++x0) {
    const int64_t slot0 = static_cast<int64_t>(x0 % 4);
    const int64_t slot1 = NaiveAddSlot(x0, slot0, 4, 5);
    const int64_t slot2 = NaiveAddSlot(x0, slot1, 5, 6);
    if (slot2 == 5) {
      moved.push_back(x0);
      source_disks.push_back(slot1);
    }
  }
  EXPECT_EQ(moved, (std::vector<uint64_t>{5, 11, 17, 23, 29, 35, 41}));
  for (const int64_t source : source_disks) {
    EXPECT_TRUE(source == 1 || source == 3 || source == 4)
        << "block came from disk " << source;
  }
}

TEST(NaiveRemapTest, SecondAdditionNeverDrawsFromEveryDisk) {
  // The structural reason for Figure 1's skew: a block reaches disk 5 only
  // if X0 mod 6 == 5, which forces X0 mod 2 == 1, so blocks on even slots
  // of the *original* placement can never move — with large random X0 too.
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 9, 64).value();
  for (int i = 0; i < 50000; ++i) {
    const uint64_t x0 = seq.Next();
    const int64_t slot0 = static_cast<int64_t>(x0 % 4);
    const int64_t slot1 = NaiveAddSlot(x0, slot0, 4, 5);
    const int64_t slot2 = NaiveAddSlot(x0, slot1, 5, 6);
    if (slot2 == 5 && slot1 != 4) {
      // Mover that was not already on the op-1 disk: must come from an odd
      // original slot (x0 mod 6 == 5 implies x0 odd; slot1 == x0 mod 4).
      EXPECT_EQ(slot1 % 2, 1);
    }
  }
}

TEST(NaiveRemoveSlotTest, EvictedRehashesByX0) {
  const ScalingOp op = ScalingOp::Remove({1}).value();
  // Block on removed slot 1 rehashes to x0 mod 3 among survivors.
  EXPECT_EQ(NaiveRemoveSlot(7, 1, 4, 3, op), static_cast<int64_t>(7 % 3));
  // Survivor keeps compacted slot: old slot 2 -> new slot 1.
  EXPECT_EQ(NaiveRemoveSlot(2, 2, 4, 3, op), 1);
}

}  // namespace
}  // namespace scaddar
