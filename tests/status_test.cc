#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace scaddar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactoryEqualsDefault) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(Status::Ok(), OkStatus());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad block index");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad block index");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad block index");
}

TEST(StatusTest, OkCodeDropsMessage) {
  const Status status(StatusCode::kOk, "ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_NE(NotFoundError("x"), NotFoundError("y"));
  EXPECT_NE(NotFoundError("x"), InternalError("x"));
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

Status FailsThrough() {
  SCADDAR_RETURN_IF_ERROR(OutOfRangeError("inner"));
  return InternalError("unreachable");
}

Status SucceedsThrough() {
  SCADDAR_RETURN_IF_ERROR(OkStatus());
  return AlreadyExistsError("reached");
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough(), OutOfRangeError("inner"));
}

TEST(StatusMacrosTest, ReturnIfErrorPassesOk) {
  EXPECT_EQ(SucceedsThrough(), AlreadyExistsError("reached"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status(), NotFoundError("missing"));
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  const std::string extracted = std::move(result).value();
  EXPECT_EQ(extracted, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

StatusOr<int> Doubler(StatusOr<int> input) {
  SCADDAR_ASSIGN_OR_RETURN(const int value, input);
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  const StatusOr<int> result = Doubler(InternalError("boom"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status(), InternalError("boom"));
}

TEST(StatusOrTest, AssignOrReturnExtractsValue) {
  const StatusOr<int> result = Doubler(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SCADDAR_CHECK(1 == 2), "SCADDAR_CHECK failed");
}

TEST(StatusDeathTest, StatusOrValueOnErrorAborts) {
  StatusOr<int> result = InternalError("no value");
  EXPECT_DEATH(result.value(), "StatusOr accessed without value");
}

}  // namespace
}  // namespace scaddar
