#include "storage/disk_array.h"

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace scaddar {
namespace {

DiskSpec SmallSpec() {
  return DiskSpec{.capacity_blocks = 100, .bandwidth_blocks_per_round = 4};
}

TEST(SimDiskTest, OccupancyBounds) {
  SimDisk disk(1, SmallSpec());
  EXPECT_EQ(disk.num_blocks(), 0);
  EXPECT_FALSE(disk.IsFull());
  disk.AddBlocks(100);
  EXPECT_TRUE(disk.IsFull());
  disk.RemoveBlocks(40);
  EXPECT_EQ(disk.num_blocks(), 60);
}

TEST(SimDiskDeathTest, OverflowAborts) {
  SimDisk disk(1, SmallSpec());
  EXPECT_DEATH(disk.AddBlocks(101), "SCADDAR_CHECK");
  EXPECT_DEATH(disk.RemoveBlocks(1), "SCADDAR_CHECK");
}

TEST(SimDiskTest, ServiceCounters) {
  SimDisk disk(1, SmallSpec());
  disk.RecordServedRequests(3);
  disk.RecordServedRequests(2);
  disk.RecordMigrationTransfers(7);
  EXPECT_EQ(disk.served_requests(), 5);
  EXPECT_EQ(disk.migration_transfers(), 7);
}

TEST(DiskArrayTest, SyncCreatesMissingDisks) {
  DiskArray array(SmallSpec());
  ASSERT_TRUE(array.SyncLiveSet({0, 1, 2}).ok());
  EXPECT_EQ(array.num_live(), 3);
  EXPECT_TRUE(array.IsLive(1));
  EXPECT_FALSE(array.IsLive(5));
  EXPECT_EQ(array.live_ids(), (std::vector<PhysicalDiskId>{0, 1, 2}));
  EXPECT_EQ(array.TotalBandwidth(), 12);
  EXPECT_EQ(array.TotalFreeCapacity(), 300);
}

TEST(DiskArrayTest, SyncRetiresEmptyDisks) {
  DiskArray array(SmallSpec());
  ASSERT_TRUE(array.SyncLiveSet({0, 1, 2}).ok());
  ASSERT_TRUE(array.SyncLiveSet({0, 2}).ok());
  EXPECT_EQ(array.num_live(), 2);
  EXPECT_FALSE(array.IsLive(1));
  // The retired disk's object still exists for post-mortem stats.
  EXPECT_TRUE(array.GetDisk(1).ok());
}

TEST(DiskArrayTest, SyncRefusesToRetireLoadedDisk) {
  DiskArray array(SmallSpec());
  ASSERT_TRUE(array.SyncLiveSet({0, 1}).ok());
  (*array.GetDisk(1))->AddBlocks(5);
  const Status status = array.SyncLiveSet({0});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(array.IsLive(1));  // Unchanged on failure.
}

TEST(DiskArrayTest, RetiredDiskCanComeBack) {
  DiskArray array(SmallSpec());
  ASSERT_TRUE(array.SyncLiveSet({0, 1}).ok());
  ASSERT_TRUE(array.SyncLiveSet({0}).ok());
  ASSERT_TRUE(array.SyncLiveSet({0, 1}).ok());
  EXPECT_TRUE(array.IsLive(1));
}

TEST(DiskArrayTest, AddDiskWithCustomSpec) {
  DiskArray array(SmallSpec());
  const DiskSpec big{.capacity_blocks = 1000,
                     .bandwidth_blocks_per_round = 16};
  ASSERT_TRUE(array.AddDisk(9, big).ok());
  EXPECT_EQ(array.AddDisk(9, big).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ((*array.GetDisk(9))->spec().bandwidth_blocks_per_round, 16);
  EXPECT_EQ(array.TotalBandwidth(), 16);
}

TEST(DiskArrayTest, UnknownDiskIsNotFound) {
  DiskArray array(SmallSpec());
  EXPECT_EQ(array.GetDisk(3).status().code(), StatusCode::kNotFound);
}

TEST(DiskArrayTest, LiveOccupancyOrdering) {
  DiskArray array(SmallSpec());
  ASSERT_TRUE(array.SyncLiveSet({2, 0, 1}).ok());
  (*array.GetDisk(0))->AddBlocks(5);
  (*array.GetDisk(2))->AddBlocks(9);
  EXPECT_EQ(array.LiveOccupancy(), (std::vector<int64_t>{5, 0, 9}));
}

}  // namespace
}  // namespace scaddar
