// Tests for object registration epochs: objects ingested after scaling
// operations start their REMAP chain at the current epoch.

#include <gtest/gtest.h>

#include "core/mapper.h"
#include "core/redistribution.h"
#include "placement/naive_policy.h"
#include "placement/scaddar_policy.h"
#include "random/sequence.h"
#include "stats/chi_square.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(EpochTest, PolicyRecordsRegistrationEpoch) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 10)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(2, 10)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({0}).value()).ok());
  ASSERT_TRUE(policy.AddObject(3, MakeX0(3, 10)).ok());
  EXPECT_EQ(policy.epoch_added(1), 0);
  EXPECT_EQ(policy.epoch_added(2), 1);
  EXPECT_EQ(policy.epoch_added(3), 2);
}

TEST(EpochTest, LateObjectInitialPlacementIsModCurrentN) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(3).value()).ok());  // N = 7.
  const std::vector<uint64_t> x0 = MakeX0(4, 500);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(policy.LocateSlot(1, static_cast<BlockIndex>(i)),
              static_cast<DiskSlot>(x0[i] % 7));
  }
}

TEST(EpochTest, LateObjectUnaffectedByEarlierHistoryShape) {
  // A late object's SLOT placement depends only on the disk count at its
  // registration epoch — not on how the array got there. Two arrays with
  // different histories but equal N place it on identical slots.
  ScaddarPolicy grew(4);
  ASSERT_TRUE(grew.ApplyOp(ScalingOp::Add(2).value()).ok());  // N = 6.
  ScaddarPolicy shrank(8);
  ASSERT_TRUE(shrank.ApplyOp(ScalingOp::Remove({0, 3}).value()).ok());  // 6.
  const std::vector<uint64_t> x0 = MakeX0(5, 400);
  ASSERT_TRUE(grew.AddObject(1, x0).ok());
  ASSERT_TRUE(shrank.AddObject(1, x0).ok());
  for (BlockIndex i = 0; i < 400; ++i) {
    EXPECT_EQ(grew.LocateSlot(1, i), shrank.LocateSlot(1, i));
  }
}

TEST(EpochTest, LateObjectMovesMinimallyOnNextOp) {
  ScaddarPolicy policy(6);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(policy.AddObject(1, MakeX0(6, 30000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 10);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
}

TEST(EpochTest, MixedEpochObjectsStayJointlyBalanced) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(7, 40000)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(8, 40000)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({3}).value()).ok());
  ASSERT_TRUE(policy.AddObject(3, MakeX0(9, 40000)).ok());
  EXPECT_TRUE(ChiSquareUniform(policy.PerDiskCounts()).IsUniform(0.001));
}

TEST(EpochTest, NaivePolicyIsEpochAwareToo) {
  NaivePolicy policy(4);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());  // N = 5.
  const std::vector<uint64_t> x0 = MakeX0(10, 300);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(policy.LocateSlot(1, static_cast<BlockIndex>(i)),
              static_cast<DiskSlot>(x0[i] % 5));
  }
}

TEST(EpochTest, PlanOperationSkipsNotYetWrittenObjects) {
  OpLog log = OpLog::Create(4).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  const std::vector<uint64_t> early = MakeX0(11, 1000);
  const std::vector<uint64_t> late = MakeX0(12, 1000);
  // `late` was written at epoch 1; op 1 cannot move it.
  const MovePlan plan_op1 = PlanOperation(
      log, 1, {{1, &early, 0}, {2, &late, 1}});
  EXPECT_EQ(plan_op1.blocks_considered(), 1000);
  for (const BlockMove& move : plan_op1.moves()) {
    EXPECT_EQ(move.block.object, 1);
  }
  // Op 2 can move both.
  const MovePlan plan_op2 = PlanOperation(
      log, 2, {{1, &early, 0}, {2, &late, 1}});
  EXPECT_EQ(plan_op2.blocks_considered(), 2000);
}

TEST(EpochTest, XBetweenComposes) {
  OpLog log = OpLog::Create(5).value();
  for (const char* text : {"A2", "R1", "A1"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  const Mapper mapper(&log);
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 13, 64).value();
  for (int i = 0; i < 2000; ++i) {
    const uint64_t x0 = seq.Next();
    // Chaining through an intermediate epoch equals the direct replay.
    const uint64_t mid = mapper.XBetween(x0, 0, 2);
    EXPECT_EQ(mapper.XBetween(mid, 2, 3), mapper.XBetween(x0, 0, 3));
  }
}

TEST(EpochDeathTest, UnknownObjectEpochAborts) {
  ScaddarPolicy policy(4);
  EXPECT_DEATH(policy.epoch_added(42), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
