// Differential proofs for the SIMD kernel backends: on AVX2 hardware the
// vector and scalar backends must be byte-identical for every op-log shape
// — randomized logs (mixed add/remove, varied N, varied epochs), batch
// sizes that are not multiples of the lane width, and nonzero `from`
// epochs — and the dispatch plumbing (runtime detection, env override,
// test pin) must behave. On non-AVX2 hosts the differential tests skip;
// the dispatch tests still run.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_log.h"
#include "core/mapper.h"
#include "random/distributions.h"
#include "random/sequence.h"
#include "random/splitmix64.h"
#include "util/simd.h"

namespace scaddar {
namespace {

/// The vector levels that can both execute on this CPU and were compiled
/// into this binary — each is differentially tested against scalar.
std::vector<SimdLevel> UsableVectorLevels() {
  std::vector<SimdLevel> levels;
  if (DetectedSimdLevel() >= SimdLevel::kAvx2 &&
      internal::Avx2Backend() != nullptr) {
    levels.push_back(SimdLevel::kAvx2);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAvx512 &&
      internal::Avx512Backend() != nullptr) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

/// Pins the dispatched level for one scope; restores default dispatch on
/// exit so test order cannot leak a pin.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { SetActiveSimdLevel(level); }
  ~ScopedSimdLevel() { ResetActiveSimdLevel(); }
};

/// A random op log: `ops` operations over an initial array of `n0` disks,
/// ~60% adds of 1-3 disks, otherwise removals of 1-2 random slots (never
/// below 2 disks).
OpLog RandomLog(Prng& prng, int64_t n0, int ops) {
  OpLog log = OpLog::Create(n0).value();
  for (int step = 0; step < ops; ++step) {
    const int64_t n = log.current_disks();
    if (n <= 2 || Bernoulli(prng, 0.6)) {
      const int64_t group = 1 + static_cast<int64_t>(UniformUint64(prng, 3));
      EXPECT_TRUE(log.Append(ScalingOp::Add(group).value()).ok());
    } else {
      const int64_t count = 1 + static_cast<int64_t>(UniformUint64(
                                    prng, n - 1 >= 2 ? 2 : 1));
      const std::vector<int64_t> slots =
          SampleWithoutReplacement(prng, n, count);
      EXPECT_TRUE(log.Append(ScalingOp::Remove(slots).value()).ok());
    }
  }
  return log;
}

// The heart of the PR's acceptance bar: ~200 random op logs, and for each
// one the three batch entry points evaluated once per backend. Batch sizes
// deliberately hit every lane-tail residue (count mod lane width)
// including the sub-lane sizes, and every log is probed at `from = 0`, a
// random interior epoch, and the no-op tail `from = num_ops`.
TEST(SimdKernelDifferentialTest, RandomLogsByteIdenticalAcrossBackends) {
  const std::vector<SimdLevel> levels = UsableVectorLevels();
  if (levels.empty()) {
    GTEST_SKIP() << "no vector backend on this host";
  }
  auto meta = MakePrng(PrngKind::kSplitMix64, 0x51dd1ffull);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t n0 = 2 + static_cast<int64_t>(UniformUint64(*meta, 39));
    const int ops = static_cast<int>(UniformUint64(*meta, 25));
    OpLog log = RandomLog(*meta, n0, ops);
    const CompiledLog compiled(log);
    // 1..515 blocks: small spans exercise the pure-scalar tail, larger
    // ones the vector body plus every residue.
    const int64_t blocks =
        1 + static_cast<int64_t>(UniformUint64(*meta, 515));
    auto seq = X0Sequence::Create(PrngKind::kXoshiro256,
                                  0xabcd00ull + static_cast<uint64_t>(trial),
                                  64)
                   .value();
    const std::vector<uint64_t> x0 = seq.Materialize(blocks);
    const Epoch interior =
        log.num_ops() == 0
            ? 0
            : static_cast<Epoch>(UniformUint64(
                  *meta, static_cast<uint64_t>(log.num_ops()) + 1));
    for (const Epoch from : {Epoch{0}, interior, log.num_ops()}) {
      std::vector<uint64_t> x_scalar = x0;
      std::vector<DiskSlot> slots_scalar(x0.size());
      std::vector<PhysicalDiskId> phys_scalar(x0.size());
      {
        ScopedSimdLevel pin(SimdLevel::kScalar);
        compiled.FinalXBatch(std::span<uint64_t>(x_scalar), from);
        compiled.LocateSlotBatch(std::span<const uint64_t>(x0),
                                 std::span<DiskSlot>(slots_scalar), from);
        compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                     std::span<PhysicalDiskId>(phys_scalar),
                                     from);
      }
      for (const SimdLevel level : levels) {
        std::vector<uint64_t> x_simd = x0;
        std::vector<DiskSlot> slots_simd(x0.size());
        std::vector<PhysicalDiskId> phys_simd(x0.size());
        {
          ScopedSimdLevel pin(level);
          compiled.FinalXBatch(std::span<uint64_t>(x_simd), from);
          compiled.LocateSlotBatch(std::span<const uint64_t>(x0),
                                   std::span<DiskSlot>(slots_simd), from);
          compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                       std::span<PhysicalDiskId>(phys_simd),
                                       from);
        }
        ASSERT_EQ(x_simd, x_scalar)
            << "level=" << SimdLevelName(level) << " trial=" << trial
            << " from=" << from << " blocks=" << blocks;
        ASSERT_EQ(slots_simd, slots_scalar)
            << "level=" << SimdLevelName(level) << " trial=" << trial;
        ASSERT_EQ(phys_simd, phys_scalar)
            << "level=" << SimdLevelName(level) << " trial=" << trial;
        // Spot-check the shared answer against the per-element scalar
        // path, so a bug common to all batch backends cannot hide.
        for (const size_t i : {size_t{0}, x0.size() / 2, x0.size() - 1}) {
          ASSERT_EQ(x_simd[i], compiled.FinalX(x0[i], from));
          ASSERT_EQ(phys_simd[i], compiled.LocatePhysical(x0[i], from));
        }
      }
    }
  }
}

// Every lane-tail residue at a fixed, removal-heavy log: counts 0..19 cover
// count mod 4 == 0..3 and count mod 8 == 0..7 several times, against the
// Mapper oracle.
TEST(SimdKernelDifferentialTest, LaneTailsMatchMapperOracle) {
  const std::vector<SimdLevel> levels = UsableVectorLevels();
  if (levels.empty()) {
    GTEST_SKIP() << "no vector backend on this host";
  }
  OpLog log = OpLog::Create(9).value();
  for (const char* text : {"A2", "R1,4", "R0", "A3", "R2,5", "A1"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 42, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(19);
  for (const SimdLevel level : levels) {
    ScopedSimdLevel pin(level);
    for (size_t count = 0; count <= x0.size(); ++count) {
      for (Epoch from = 0; from <= log.num_ops(); ++from) {
        std::vector<uint64_t> xs(x0.begin(), x0.begin() + count);
        compiled.FinalXBatch(std::span<uint64_t>(xs), from);
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(xs[i], mapper.XBetween(x0[i], from, log.num_ops()))
              << "level=" << SimdLevelName(level) << " count=" << count
              << " from=" << from << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelDifferentialTest, MaterializeOnceByteIdenticalAcrossBackends) {
  const std::vector<SimdLevel> levels = UsableVectorLevels();
  if (levels.empty()) {
    GTEST_SKIP() << "no vector backend on this host";
  }
  for (const int64_t n : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{4},
                          int64_t{257}, int64_t{4098}}) {
    for (const int bits : {32, 64}) {
      std::vector<uint64_t> simd;
      std::vector<uint64_t> scalar;
      {
        // The X0 fill is an AVX2 kernel; any level >= kAvx2 routes to it.
        ScopedSimdLevel pin(levels.back());
        simd = X0Sequence::MaterializeOnce(PrngKind::kSplitMix64, 0xfeedull,
                                           bits, n)
                   .value();
      }
      {
        ScopedSimdLevel pin(SimdLevel::kScalar);
        scalar = X0Sequence::MaterializeOnce(PrngKind::kSplitMix64, 0xfeedull,
                                             bits, n)
                     .value();
      }
      ASSERT_EQ(simd, scalar) << "n=" << n << " bits=" << bits;
      // Oracle: the sequential generator itself, independent of any fill
      // or dispatch code path.
      SplitMix64 prng(0xfeedull);
      const uint64_t mask = MaxRandomForBits(bits);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(simd[static_cast<size_t>(i)], prng.Next() & mask)
            << "n=" << n << " bits=" << bits << " i=" << i;
      }
    }
  }
}

// --- Dispatch plumbing. ---

TEST(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_EQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_EQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
}

TEST(SimdDispatchTest, PinOverridesAndResetRestores) {
  {
    ScopedSimdLevel pin(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    EXPECT_STREQ(internal::ActiveBackend().name, "scalar");
  }
  // Unpinned: the env override forces scalar, otherwise detection rules.
  if (ScalarKernelsForced()) {
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  } else {
    EXPECT_EQ(ActiveSimdLevel(), DetectedSimdLevel());
  }
}

TEST(SimdDispatchTest, ActiveBackendMatchesActiveLevel) {
  const internal::KernelBackend& backend = internal::ActiveBackend();
  if (ActiveSimdLevel() >= SimdLevel::kAvx512 &&
      internal::Avx512Backend() != nullptr) {
    EXPECT_STREQ(backend.name, "avx512");
  } else if (ActiveSimdLevel() >= SimdLevel::kAvx2 &&
             internal::Avx2Backend() != nullptr) {
    EXPECT_STREQ(backend.name, "avx2");
  } else {
    EXPECT_STREQ(backend.name, "scalar");
  }
  ASSERT_NE(backend.advance, nullptr);
  ASSERT_NE(backend.mod, nullptr);
}

TEST(SimdDispatchTest, EmptySpansAreNoOpsOnEveryBackend) {
  OpLog log = OpLog::Create(4).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());
  const CompiledLog compiled(log);
  std::vector<uint64_t> empty;
  std::vector<DiskSlot> no_slots;
  std::vector<PhysicalDiskId> no_disks;
  for (const SimdLevel level : {SimdLevel::kScalar, DetectedSimdLevel()}) {
    ScopedSimdLevel pin(level);
    compiled.FinalXBatch(std::span<uint64_t>(empty));
    compiled.AdvanceXBatch(std::span<uint64_t>(empty), 0, 1);
    compiled.LocateSlotBatch(std::span<const uint64_t>(empty),
                             std::span<DiskSlot>(no_slots));
    compiled.LocatePhysicalBatch(std::span<const uint64_t>(empty),
                                 std::span<PhysicalDiskId>(no_disks));
  }
}

}  // namespace
}  // namespace scaddar
