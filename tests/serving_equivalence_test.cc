#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "placement/scaddar_policy.h"
#include "random/sequence.h"
#include "server/migration.h"
#include "server/server.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

/// Policy/store/disks triple that can be cloned by construction: two
/// instances built with the same arguments are bit-identical.
struct Fixture {
  explicit Fixture(int64_t n0, const std::vector<int64_t>& object_blocks)
      : policy(n0),
        disks(DiskSpec{.capacity_blocks = 1'000'000,
                       .bandwidth_blocks_per_round = 8}),
        store(&disks) {
    ObjectId id = 1;
    for (const int64_t blocks : object_blocks) {
      SCADDAR_CHECK(
          policy.AddObject(id, MakeX0(static_cast<uint64_t>(id), blocks))
              .ok());
      ++id;
    }
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    id = 1;
    for (const int64_t blocks : object_blocks) {
      std::vector<PhysicalDiskId> locations;
      for (BlockIndex i = 0; i < blocks; ++i) {
        locations.push_back(policy.Locate(id, i));
      }
      SCADDAR_CHECK(store.PlaceObject(id, locations).ok());
      ++id;
    }
  }

  void Apply(const ScalingOp& op) {
    SCADDAR_CHECK(policy.ApplyOp(op).ok());
    std::vector<PhysicalDiskId> live = policy.log().physical_disks();
    for (const PhysicalDiskId id : disks.live_ids()) {
      if (store.CountOn(id) > 0) {
        live.push_back(id);  // Retiring disks keep serving until drained.
      }
    }
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    SCADDAR_CHECK(disks.SyncLiveSet(live).ok());
  }

  std::unordered_map<PhysicalDiskId, int64_t> Budget(int64_t per_disk) {
    std::unordered_map<PhysicalDiskId, int64_t> budget;
    for (const PhysicalDiskId id : disks.live_ids()) {
      budget[id] = per_disk;
    }
    return budget;
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
};

const std::vector<int64_t> kObjects = {1500, 700, 2300};

/// The batched RunRound must move the exact same block set, in the same
/// rounds, as the scalar oracle — tight per-disk budgets force starvation
/// and requeues, so the requeue discipline is exercised too.
TEST(ServingEquivalenceTest, RunRoundMovesIdenticalToScalar) {
  Fixture batched(4, kObjects);
  Fixture scalar(4, kObjects);
  const ScalingOp op = ScalingOp::Add(2).value();
  batched.Apply(op);
  scalar.Apply(op);
  batched.migration.EnqueueReconciliation(batched.store, batched.policy);
  scalar.migration.EnqueueReconciliation(scalar.store, scalar.policy);
  ASSERT_EQ(batched.migration.QueueSnapshot(),
            scalar.migration.QueueSnapshot());
  int rounds = 0;
  while (!batched.migration.idle() || !scalar.migration.idle()) {
    auto batched_budget = batched.Budget(3);
    auto scalar_budget = scalar.Budget(3);
    const int64_t moved_batched = batched.migration.RunRound(
        batched_budget, batched.store, batched.disks, batched.policy);
    const int64_t moved_scalar = scalar.migration.RunRoundScalar(
        scalar_budget, scalar.store, scalar.disks, scalar.policy);
    ASSERT_EQ(moved_batched, moved_scalar) << "round " << rounds;
    ASSERT_EQ(batched.migration.QueueSnapshot(),
              scalar.migration.QueueSnapshot())
        << "round " << rounds;
    ASSERT_EQ(batched_budget, scalar_budget) << "round " << rounds;
    ASSERT_LT(++rounds, 2000) << "migration failed to converge";
  }
  // Same final store state, block by block.
  for (ObjectId id = 1; id <= static_cast<ObjectId>(kObjects.size()); ++id) {
    const auto row_batched = batched.store.LocationsOf(id);
    const auto row_scalar = scalar.store.LocationsOf(id);
    ASSERT_TRUE(row_batched.ok() && row_scalar.ok());
    ASSERT_TRUE(std::equal(row_batched->begin(), row_batched->end(),
                           row_scalar->begin(), row_scalar->end()))
        << "object " << id;
  }
  EXPECT_EQ(batched.migration.total_moved(), scalar.migration.total_moved());
  EXPECT_TRUE(batched.store.VerifyAgainstPolicy(batched.policy).ok());
}

/// Same check across a remove op (retiring disks drain through the batched
/// path too).
TEST(ServingEquivalenceTest, RunRoundIdenticalAcrossRemove) {
  Fixture batched(6, kObjects);
  Fixture scalar(6, kObjects);
  const ScalingOp op = ScalingOp::Remove({1, 4}).value();
  batched.Apply(op);
  scalar.Apply(op);
  batched.migration.EnqueueReconciliation(batched.store, batched.policy);
  scalar.migration.EnqueueReconciliation(scalar.store, scalar.policy);
  int rounds = 0;
  while (!batched.migration.idle() || !scalar.migration.idle()) {
    auto batched_budget = batched.Budget(5);
    auto scalar_budget = scalar.Budget(5);
    batched.migration.RunRound(batched_budget, batched.store, batched.disks,
                               batched.policy);
    scalar.migration.RunRoundScalar(scalar_budget, scalar.store, scalar.disks,
                                    scalar.policy);
    ASSERT_EQ(batched.migration.QueueSnapshot(),
              scalar.migration.QueueSnapshot())
        << "round " << rounds;
    ASSERT_LT(++rounds, 2000);
  }
  EXPECT_EQ(batched.migration.total_moved(), scalar.migration.total_moved());
}

/// The sharded reconciliation scan queues a byte-identical block list for
/// any thread count (the PR-1 planner determinism discipline).
TEST(ServingEquivalenceTest, ReconciliationShardingByteIdentical) {
  std::vector<std::vector<BlockRef>> queues;
  for (const int threads : {1, 2, 8}) {
    Fixture fx(4, kObjects);
    fx.Apply(ScalingOp::Add(3).value());
    ParallelPlanOptions options;
    options.num_threads = threads;
    options.min_blocks_to_shard = 1;  // Force sharding even at this size.
    fx.migration.EnqueueReconciliation(fx.store, fx.policy, options);
    queues.push_back(fx.migration.QueueSnapshot());
  }
  ASSERT_GT(queues[0].size(), 0u);
  EXPECT_EQ(queues[0], queues[1]);
  EXPECT_EQ(queues[0], queues[2]);
}

ServerConfig BaseConfig(ServingPath path) {
  ServerConfig config;
  config.initial_disks = 6;
  config.disk_spec = {.capacity_blocks = 100'000,
                      .bandwidth_blocks_per_round = 6};
  config.serving_path = path;
  return config;
}

std::unique_ptr<CmServer> MakeServer(const ServerConfig& config) {
  auto server = CmServer::Create(config);
  SCADDAR_CHECK(server.ok());
  return std::move(server).value();
}

/// Full-server equivalence: a batched-cursor server and a store-oracle
/// server fed the same script (streams + scaling ops mid-playback) report
/// identical metrics every round.
TEST(ServingEquivalenceTest, BatchedServerMatchesStoreOracleThroughScaling) {
  auto batched = MakeServer(BaseConfig(ServingPath::kBatchCursor));
  auto oracle = MakeServer(BaseConfig(ServingPath::kStoreScalar));
  for (CmServer* server : {batched.get(), oracle.get()}) {
    ASSERT_TRUE(server->AddObject(1, 400).ok());
    ASSERT_TRUE(server->AddObject(2, 250).ok());
    for (int s = 0; s < 6; ++s) {
      ASSERT_TRUE(server->StartStream(1 + (s % 2)).ok());
    }
  }
  for (int round = 0; round < 300; ++round) {
    if (round == 20) {
      ASSERT_TRUE(batched->ScaleAdd(2).ok());
      ASSERT_TRUE(oracle->ScaleAdd(2).ok());
    }
    if (round == 60) {
      ASSERT_TRUE(batched->ScaleRemove({3}).ok());
      ASSERT_TRUE(oracle->ScaleRemove({3}).ok());
    }
    const RoundMetrics a = batched->Tick();
    const RoundMetrics b = oracle->Tick();
    ASSERT_EQ(a.requests, b.requests) << "round " << round;
    ASSERT_EQ(a.served, b.served) << "round " << round;
    ASSERT_EQ(a.hiccups, b.hiccups) << "round " << round;
    ASSERT_EQ(a.migrated, b.migrated) << "round " << round;
    ASSERT_EQ(a.pending_migration, b.pending_migration) << "round " << round;
  }
  EXPECT_EQ(batched->total_served(), oracle->total_served());
  EXPECT_EQ(batched->total_hiccups(), oracle->total_hiccups());
  EXPECT_GT(batched->total_served(), 0);
}

/// Satellite: repeated X0 materialization is byte-identical, and the
/// single-allocation path matches the reusable-sequence path.
TEST(ServingEquivalenceTest, MaterializeOnceByteIdentical) {
  const auto once_a =
      X0Sequence::MaterializeOnce(PrngKind::kSplitMix64, 77, 32, 5000);
  const auto once_b =
      X0Sequence::MaterializeOnce(PrngKind::kSplitMix64, 77, 32, 5000);
  ASSERT_TRUE(once_a.ok() && once_b.ok());
  EXPECT_EQ(*once_a, *once_b);
  const auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 77, 32);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*once_a, seq->Materialize(5000));
}

/// Satellite: the active-stream refcount makes RemoveObject refuse exactly
/// while streams play and allow removal the moment the last one ends.
TEST(ServingEquivalenceTest, RemoveObjectRefcountTracksStreamLifecycle) {
  auto server = MakeServer(BaseConfig(ServingPath::kBatchCursor));
  ASSERT_TRUE(server->AddObject(1, 30).ok());
  ASSERT_TRUE(server->AddObject(2, 500).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  ASSERT_TRUE(server->StartStream(2).ok());
  EXPECT_EQ(server->ActiveStreamsFor(1), 2);
  EXPECT_EQ(server->ActiveStreamsFor(2), 1);
  EXPECT_FALSE(server->RemoveObject(1).ok());
  // Object 1's streams (30 blocks) finish well before object 2's.
  for (int round = 0; round < 40; ++round) {
    server->Tick();
  }
  EXPECT_EQ(server->ActiveStreamsFor(1), 0);
  EXPECT_EQ(server->ActiveStreamsFor(2), 1);
  EXPECT_TRUE(server->RemoveObject(1).ok());
  EXPECT_FALSE(server->RemoveObject(2).ok());
}

}  // namespace
}  // namespace scaddar
