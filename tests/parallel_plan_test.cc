// Determinism proofs for parallel redistribution planning: for any thread
// count (1, 2, 8), with or without a shared pool, `PlanOperation` and
// `PlanFullRedistribution` must produce a `MovePlan` identical to the
// serial planner — same moves, same order, same accounting. This test is
// also the TSan smoke payload (`tsan_smoke` rebuilds and runs it with
// `-fsanitize=thread`), so it deliberately drives the pool hard.

#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "core/redistribution.h"
#include "random/sequence.h"
#include "util/thread_pool.h"

namespace scaddar {
namespace {

OpLog MixedLog() {
  OpLog log = OpLog::Create(10).value();
  for (const char* text : {"A2", "R1,4", "A1", "R0", "A3", "R2,5"}) {
    EXPECT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  return log;
}

struct Corpus {
  std::vector<std::vector<uint64_t>> storage;
  std::vector<ObjectBlocksView> views;
};

// Several objects of uneven sizes and different start epochs, so shard
// boundaries land mid-object and across object boundaries.
Corpus MakeCorpus(uint64_t seed_base, int64_t scale) {
  Corpus corpus;
  const struct {
    int64_t blocks;
    Epoch epoch;
  } shapes[] = {{37 * scale, 0}, {101 * scale, 2}, {1 * scale, 3},
                {53 * scale, 0}, {89 * scale, 1}};
  corpus.storage.reserve(std::size(shapes));
  ObjectId next_id = 1;
  for (const auto& shape : shapes) {
    auto seq = X0Sequence::Create(PrngKind::kSplitMix64,
                                  seed_base + static_cast<uint64_t>(next_id),
                                  64)
                   .value();
    corpus.storage.push_back(seq.Materialize(shape.blocks));
    corpus.views.push_back(
        {next_id++, &corpus.storage.back(), shape.epoch});
  }
  return corpus;
}

void ExpectPlansIdentical(const MovePlan& actual, const MovePlan& expected) {
  ASSERT_EQ(actual.num_moves(), expected.num_moves());
  ASSERT_EQ(actual.blocks_considered(), expected.blocks_considered());
  for (int64_t i = 0; i < actual.num_moves(); ++i) {
    ASSERT_EQ(actual.moves()[static_cast<size_t>(i)],
              expected.moves()[static_cast<size_t>(i)])
        << "move " << i;
  }
}

class ParallelPlanTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelPlanTest, PlanOperationIdenticalToSerialAtAnyThreadCount) {
  const int threads = GetParam();
  const OpLog log = MixedLog();
  const Corpus corpus = MakeCorpus(/*seed_base=*/40, /*scale=*/97);
  ParallelPlanOptions options;
  options.num_threads = threads;
  options.min_blocks_to_shard = 1;  // Force sharding even on small inputs.
  for (Epoch j = 1; j <= log.num_ops(); ++j) {
    const MovePlan serial = PlanOperation(log, j, corpus.views);
    const MovePlan parallel = PlanOperation(log, j, corpus.views, options);
    ExpectPlansIdentical(parallel, serial);
  }
}

TEST_P(ParallelPlanTest, PlanFullRedistributionIdenticalToSerial) {
  const int threads = GetParam();
  const OpLog from_log = MixedLog();
  const OpLog to_log = OpLog::Create(14).value();
  const Corpus from = MakeCorpus(/*seed_base=*/60, /*scale=*/61);
  Corpus to = MakeCorpus(/*seed_base=*/80, /*scale=*/61);
  for (ObjectBlocksView& view : to.views) {
    view.start_epoch = 0;  // Fresh seed generation: chains start at epoch 0.
  }
  ParallelPlanOptions options;
  options.num_threads = threads;
  options.min_blocks_to_shard = 1;
  const MovePlan serial =
      PlanFullRedistribution(from_log, from.views, to_log, to.views);
  const MovePlan parallel =
      PlanFullRedistribution(from_log, from.views, to_log, to.views, options);
  ExpectPlansIdentical(parallel, serial);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelPlanTest,
                         ::testing::Values(1, 2, 8));

TEST(ParallelPlanTest, SharedPoolMatchesTransientPool) {
  const OpLog log = MixedLog();
  const Corpus corpus = MakeCorpus(/*seed_base=*/100, /*scale=*/53);
  ThreadPool pool(4);
  ParallelPlanOptions shared;
  shared.pool = &pool;
  shared.min_blocks_to_shard = 1;
  ParallelPlanOptions transient;
  transient.num_threads = 4;
  transient.min_blocks_to_shard = 1;
  for (Epoch j = 1; j <= log.num_ops(); ++j) {
    ExpectPlansIdentical(PlanOperation(log, j, corpus.views, shared),
                         PlanOperation(log, j, corpus.views, transient));
  }
}

TEST(ParallelPlanTest, PoolIsReusableAcrossManyPlans) {
  // Stresses pool reuse (and, under TSan, the ParallelFor join protocol).
  const OpLog log = MixedLog();
  const Corpus corpus = MakeCorpus(/*seed_base=*/120, /*scale=*/11);
  ThreadPool pool(8);
  ParallelPlanOptions options;
  options.pool = &pool;
  options.min_blocks_to_shard = 1;
  const MovePlan expected = PlanOperation(log, 2, corpus.views);
  for (int round = 0; round < 25; ++round) {
    ExpectPlansIdentical(PlanOperation(log, 2, corpus.views, options),
                         expected);
  }
}

TEST(ParallelPlanTest, SmallInputsStayOnCallingThread) {
  const OpLog log = MixedLog();
  const Corpus corpus = MakeCorpus(/*seed_base=*/140, /*scale=*/1);
  ParallelPlanOptions options;
  options.num_threads = 8;  // Default min_blocks_to_shard exceeds input.
  const MovePlan serial = PlanOperation(log, 1, corpus.views);
  const MovePlan parallel = PlanOperation(log, 1, corpus.views, options);
  ExpectPlansIdentical(parallel, serial);
}

}  // namespace
}  // namespace scaddar
