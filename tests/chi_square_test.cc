#include "stats/chi_square.h"

#include <gtest/gtest.h>

#include "random/distributions.h"
#include "random/prng.h"

namespace scaddar {
namespace {

TEST(ChiSquareSurvivalTest, ZeroStatisticIsCertain) {
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 5), 1.0);
}

TEST(ChiSquareSurvivalTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double stat = 1.0; stat < 50.0; stat += 5.0) {
    const double p = ChiSquareSurvival(stat, 10);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(ChiSquareSurvivalTest, KnownCriticalValues) {
  // Chi-square 95th percentile with df=10 is 18.307.
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10), 0.05, 0.005);
  // 99th percentile with df=5 is 15.086.
  EXPECT_NEAR(ChiSquareSurvival(15.086, 5), 0.01, 0.003);
  // The chi-square median is below the mean: for df=30 it is ~29.34
  // (Wilson-Hilferty: df*(1 - 2/(9 df))^3), where the survival is 0.5.
  EXPECT_NEAR(ChiSquareSurvival(29.34, 30), 0.5, 0.01);
  // And P(X >= df) for df=30 is ~0.466, not 0.5.
  EXPECT_NEAR(ChiSquareSurvival(30.0, 30), 0.466, 0.01);
}

TEST(ChiSquareUniformTest, PerfectlyUniformAccepted) {
  const std::vector<int64_t> counts(8, 1000);
  const ChiSquareResult result = ChiSquareUniform(counts);
  EXPECT_EQ(result.statistic, 0.0);
  EXPECT_EQ(result.degrees_of_freedom, 7);
  EXPECT_TRUE(result.IsUniform(0.05));
}

TEST(ChiSquareUniformTest, GrossSkewRejected) {
  std::vector<int64_t> counts(8, 100);
  counts[0] = 2000;
  const ChiSquareResult result = ChiSquareUniform(counts);
  EXPECT_FALSE(result.IsUniform(0.05));
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquareUniformTest, SamplingNoiseAccepted) {
  auto prng = MakePrng(PrngKind::kSplitMix64, 5);
  std::vector<int64_t> counts(20, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[UniformUint64(*prng, 20)];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(ChiSquareAgainstTest, WeightedExpectation) {
  // Observed exactly proportional to weights -> statistic 0.
  const std::vector<int64_t> observed = {100, 200, 300};
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  const ChiSquareResult result = ChiSquareAgainst(observed, weights);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_TRUE(result.IsUniform(0.05));
}

TEST(ChiSquareAgainstTest, MisproportionRejected) {
  const std::vector<int64_t> observed = {300, 200, 100};
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  EXPECT_FALSE(ChiSquareAgainst(observed, weights).IsUniform(0.05));
}

TEST(ChiSquareDeathTest, MismatchedSizesAbort) {
  const std::vector<int64_t> observed = {1, 2};
  const std::vector<double> weights = {1.0};
  EXPECT_DEATH(ChiSquareAgainst(observed, weights), "SCADDAR_CHECK");
}

TEST(ChiSquareDeathTest, SingleCellAborts) {
  EXPECT_DEATH(ChiSquareUniform({5}), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
