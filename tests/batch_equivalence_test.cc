// Equivalence proofs for the batch REMAP engine: the step-major
// `CompiledLog` kernels and the batch planners must be bit-exact against
// element-wise `Mapper` replay across add / remove / mixed histories and
// nonzero start epochs.

#include <algorithm>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_log.h"
#include "core/mapper.h"
#include "core/redistribution.h"
#include "random/distributions.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

OpLog LogFromOps(int64_t n0, const std::vector<const char*>& ops) {
  OpLog log = OpLog::Create(n0).value();
  for (const char* text : ops) {
    EXPECT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  return log;
}

// The three history shapes the kernels specialize on: adds only (no
// renumber tables), removals only (renumber path everywhere), and mixed.
const std::vector<const char*> kAddHistory = {"A2", "A1", "A4", "A1", "A3"};
const std::vector<const char*> kRemoveHistory = {"R1,4", "R0", "R2,3", "R1"};
const std::vector<const char*> kMixedHistory = {"A2", "R1,4", "A1",
                                                "R0",  "A3",  "R2,5"};

class BatchKernelTest
    : public ::testing::TestWithParam<std::vector<const char*>> {};

TEST_P(BatchKernelTest, FinalXBatchMatchesMapperElementwise) {
  const OpLog log = LogFromOps(10, GetParam());
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 7, 64).value();
  // Deliberately awkward size: not a multiple of any internal tile.
  std::vector<uint64_t> x0 = seq.Materialize(10007);
  for (Epoch from = 0; from <= log.num_ops(); ++from) {
    std::vector<uint64_t> batch = x0;
    compiled.FinalXBatch(std::span<uint64_t>(batch), from);
    for (size_t i = 0; i < x0.size(); ++i) {
      ASSERT_EQ(batch[i], mapper.XBetween(x0[i], from, log.num_ops()))
          << "from=" << from << " i=" << i;
    }
  }
}

TEST_P(BatchKernelTest, AdvanceXBatchMatchesMapperAtEveryEpochPair) {
  const OpLog log = LogFromOps(10, GetParam());
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(257);
  for (Epoch from = 0; from <= log.num_ops(); ++from) {
    for (Epoch to = from; to <= log.num_ops(); ++to) {
      std::vector<uint64_t> batch = x0;
      compiled.AdvanceXBatch(std::span<uint64_t>(batch), from, to);
      for (size_t i = 0; i < x0.size(); ++i) {
        ASSERT_EQ(batch[i], mapper.XBetween(x0[i], from, to))
            << "from=" << from << " to=" << to << " i=" << i;
      }
    }
  }
}

TEST_P(BatchKernelTest, LocateBatchesMatchScalarLookups) {
  const OpLog log = LogFromOps(10, GetParam());
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kPcg32, 5, 32).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4099);
  for (Epoch from = 0; from <= log.num_ops(); ++from) {
    std::vector<DiskSlot> slots(x0.size());
    std::vector<PhysicalDiskId> physical(x0.size());
    compiled.LocateSlotBatch(std::span<const uint64_t>(x0),
                             std::span<DiskSlot>(slots), from);
    compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                 std::span<PhysicalDiskId>(physical), from);
    for (size_t i = 0; i < x0.size(); ++i) {
      ASSERT_EQ(slots[i], mapper.SlotBetween(x0[i], from, log.num_ops()));
      ASSERT_EQ(physical[i],
                mapper.PhysicalBetween(x0[i], from, log.num_ops()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Histories, BatchKernelTest,
                         ::testing::Values(kAddHistory, kRemoveHistory,
                                           kMixedHistory));

TEST(BatchKernelTest, EmptySpanIsANoOp) {
  const OpLog log = LogFromOps(4, {"A2"});
  const CompiledLog compiled(log);
  std::vector<uint64_t> empty;
  compiled.FinalXBatch(std::span<uint64_t>(empty));
  std::vector<DiskSlot> slots;
  compiled.LocateSlotBatch(std::span<const uint64_t>(empty),
                           std::span<DiskSlot>(slots));
}

TEST(BatchKernelTest, DisksAfterMirrorsOpLog) {
  const OpLog log = LogFromOps(10, kMixedHistory);
  const CompiledLog compiled(log);
  for (Epoch j = 0; j <= log.num_ops(); ++j) {
    EXPECT_EQ(compiled.disks_after(j), log.disks_after(j));
  }
}

TEST(BatchKernelTest, RandomChurnEquivalence) {
  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    auto prng = MakePrng(PrngKind::kSplitMix64, seed);
    OpLog log = OpLog::Create(8).value();
    for (int step = 0; step < 20; ++step) {
      const int64_t n = log.current_disks();
      if (n <= 2 || Bernoulli(*prng, 0.6)) {
        ASSERT_TRUE(
            log.Append(
                   ScalingOp::Add(1 + static_cast<int64_t>(
                                          UniformUint64(*prng, 3)))
                       .value())
                .ok());
      } else {
        const std::vector<int64_t> slots = SampleWithoutReplacement(
            *prng, n,
            1 + static_cast<int64_t>(UniformUint64(
                    *prng,
                    static_cast<uint64_t>(std::min<int64_t>(n - 1, 2)))));
        ASSERT_TRUE(log.Append(ScalingOp::Remove(slots).value()).ok());
      }
    }
    const Mapper mapper(&log);
    const CompiledLog compiled(log);
    auto seq =
        X0Sequence::Create(PrngKind::kSplitMix64, seed + 100, 64).value();
    std::vector<uint64_t> x0 = seq.Materialize(3001);
    std::vector<PhysicalDiskId> physical(x0.size());
    compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                 std::span<PhysicalDiskId>(physical));
    for (size_t i = 0; i < x0.size(); ++i) {
      ASSERT_EQ(physical[i], mapper.LocatePhysical(x0[i]));
    }
  }
}

// --- Planner equivalence: batch serial vs. scalar Mapper reference. ---

void ExpectPlansIdentical(const MovePlan& a, const MovePlan& b) {
  ASSERT_EQ(a.num_moves(), b.num_moves());
  ASSERT_EQ(a.blocks_considered(), b.blocks_considered());
  for (int64_t i = 0; i < a.num_moves(); ++i) {
    ASSERT_EQ(a.moves()[static_cast<size_t>(i)],
              b.moves()[static_cast<size_t>(i)])
        << "move " << i;
  }
}

TEST(BatchPlannerTest, PlanOperationMatchesScalarAcrossHistories) {
  for (const auto& history : {kAddHistory, kRemoveHistory, kMixedHistory}) {
    const OpLog log = LogFromOps(10, history);
    auto seq_a = X0Sequence::Create(PrngKind::kSplitMix64, 11, 64).value();
    auto seq_b = X0Sequence::Create(PrngKind::kSplitMix64, 12, 64).value();
    auto seq_c = X0Sequence::Create(PrngKind::kSplitMix64, 13, 64).value();
    const std::vector<uint64_t> x0_a = seq_a.Materialize(5000);
    const std::vector<uint64_t> x0_b = seq_b.Materialize(777);
    const std::vector<uint64_t> x0_c = seq_c.Materialize(1234);
    // Objects written at different epochs, including one mid-history and
    // one whose epoch makes it ineligible for early operations.
    const std::vector<ObjectBlocksView> objects = {
        {/*object=*/1, &x0_a, /*start_epoch=*/0},
        {/*object=*/2, &x0_b, /*start_epoch=*/2},
        {/*object=*/3, &x0_c, /*start_epoch=*/3},
    };
    for (Epoch j = 1; j <= log.num_ops(); ++j) {
      ExpectPlansIdentical(PlanOperation(log, j, objects),
                           PlanOperationScalar(log, j, objects));
    }
  }
}

TEST(BatchPlannerTest, PlanFullRedistributionMatchesScalar) {
  const OpLog from_log = LogFromOps(10, kMixedHistory);
  const OpLog to_log = OpLog::Create(12).value();
  auto seq_old = X0Sequence::Create(PrngKind::kSplitMix64, 21, 64).value();
  auto seq_new = X0Sequence::Create(PrngKind::kSplitMix64, 22, 64).value();
  auto seq_old2 = X0Sequence::Create(PrngKind::kSplitMix64, 23, 64).value();
  auto seq_new2 = X0Sequence::Create(PrngKind::kSplitMix64, 24, 64).value();
  const std::vector<uint64_t> old_a = seq_old.Materialize(4001);
  const std::vector<uint64_t> new_a = seq_new.Materialize(4001);
  const std::vector<uint64_t> old_b = seq_old2.Materialize(555);
  const std::vector<uint64_t> new_b = seq_new2.Materialize(555);
  const std::vector<ObjectBlocksView> from = {{1, &old_a, 2}, {2, &old_b, 0}};
  const std::vector<ObjectBlocksView> to = {{1, &new_a, 0}, {2, &new_b, 0}};
  ExpectPlansIdentical(
      PlanFullRedistribution(from_log, from, to_log, to),
      PlanFullRedistributionScalar(from_log, from, to_log, to));
}

TEST(BatchPlannerTest, MovePlanReserveAndAppend) {
  MovePlan a;
  a.Reserve(10);
  a.Add(BlockMove{.block = {1, 0}});
  a.set_blocks_considered(5);
  MovePlan b;
  b.Add(BlockMove{.block = {2, 3}});
  b.set_blocks_considered(7);
  a.Append(std::move(b));
  EXPECT_EQ(a.num_moves(), 2);
  EXPECT_EQ(a.blocks_considered(), 12);
  EXPECT_EQ(a.moves()[0].block, (BlockRef{1, 0}));
  EXPECT_EQ(a.moves()[1].block, (BlockRef{2, 3}));
}

}  // namespace
}  // namespace scaddar
