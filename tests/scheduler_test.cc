#include "server/scheduler.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

DiskSpec Spec(int64_t bandwidth) {
  return DiskSpec{.capacity_blocks = 1000,
                  .bandwidth_blocks_per_round = bandwidth};
}

TEST(RoundSchedulerTest, ServesWithinBandwidth) {
  DiskArray disks(Spec(2));
  ASSERT_TRUE(disks.SyncLiveSet({0}).ok());
  BlockStore store(&disks);
  ASSERT_TRUE(store.PlaceObject(1, {0, 0, 0, 0}).ok());
  std::vector<Stream> streams;
  streams.emplace_back(0, 1, 4, 0);
  streams.emplace_back(1, 1, 4, 0);
  RoundScheduler scheduler;
  const RoundServiceResult result =
      scheduler.Run(streams, store, disks, nullptr);
  EXPECT_EQ(result.requests, 2);
  EXPECT_EQ(result.served, 2);
  EXPECT_EQ(result.hiccups, 0);
  EXPECT_EQ(streams[0].next_block(), 1);
  EXPECT_EQ(streams[1].next_block(), 1);
}

TEST(RoundSchedulerTest, OverloadCausesHiccups) {
  DiskArray disks(Spec(1));
  ASSERT_TRUE(disks.SyncLiveSet({0}).ok());
  BlockStore store(&disks);
  ASSERT_TRUE(store.PlaceObject(1, {0, 0}).ok());
  std::vector<Stream> streams;
  streams.emplace_back(0, 1, 2, 0);
  streams.emplace_back(1, 1, 2, 0);
  streams.emplace_back(2, 1, 2, 0);
  RoundScheduler scheduler;
  const RoundServiceResult result =
      scheduler.Run(streams, store, disks, nullptr);
  EXPECT_EQ(result.requests, 3);
  EXPECT_EQ(result.served, 1);
  EXPECT_EQ(result.hiccups, 2);
  // FIFO: stream 0 got the block; the others stalled in place.
  EXPECT_EQ(streams[0].next_block(), 1);
  EXPECT_EQ(streams[1].next_block(), 0);
  EXPECT_EQ(streams[1].hiccups(), 1);
  EXPECT_EQ(streams[2].hiccups(), 1);
}

TEST(RoundSchedulerTest, LeftoverBandwidthReported) {
  DiskArray disks(Spec(4));
  ASSERT_TRUE(disks.SyncLiveSet({0, 1}).ok());
  BlockStore store(&disks);
  ASSERT_TRUE(store.PlaceObject(1, {0, 0}).ok());
  std::vector<Stream> streams;
  streams.emplace_back(0, 1, 2, 0);
  RoundScheduler scheduler;
  std::unordered_map<PhysicalDiskId, int64_t> leftover;
  scheduler.Run(streams, store, disks, &leftover);
  EXPECT_EQ(leftover[0], 3);  // One of four units spent on disk 0.
  EXPECT_EQ(leftover[1], 4);  // Disk 1 untouched.
}

TEST(RoundSchedulerTest, FinishedStreamsAreSkipped) {
  DiskArray disks(Spec(4));
  ASSERT_TRUE(disks.SyncLiveSet({0}).ok());
  BlockStore store(&disks);
  ASSERT_TRUE(store.PlaceObject(1, {0}).ok());
  std::vector<Stream> streams;
  streams.emplace_back(0, 1, 1, 0);
  RoundScheduler scheduler;
  scheduler.Run(streams, store, disks, nullptr);
  ASSERT_TRUE(streams[0].finished());
  const RoundServiceResult result =
      scheduler.Run(streams, store, disks, nullptr);
  EXPECT_EQ(result.requests, 0);
  EXPECT_EQ(result.served, 0);
}

TEST(RoundSchedulerTest, ReadsRouteToMaterializedLocation) {
  // The block sits on disk 1 even if some placement would prefer disk 0:
  // the scheduler must consult the store.
  DiskArray disks(Spec(1));
  ASSERT_TRUE(disks.SyncLiveSet({0, 1}).ok());
  BlockStore store(&disks);
  ASSERT_TRUE(store.PlaceObject(1, {1}).ok());
  std::vector<Stream> streams;
  streams.emplace_back(0, 1, 1, 0);
  RoundScheduler scheduler;
  scheduler.Run(streams, store, disks, nullptr);
  EXPECT_EQ((*disks.GetDisk(1))->served_requests(), 1);
  EXPECT_EQ((*disks.GetDisk(0))->served_requests(), 0);
}

TEST(StreamTest, LifecycleAndHiccups) {
  Stream stream(7, 3, 2, 10);
  EXPECT_EQ(stream.id(), 7);
  EXPECT_EQ(stream.object(), 3);
  EXPECT_EQ(stream.start_round(), 10);
  EXPECT_FALSE(stream.finished());
  EXPECT_EQ(stream.NextBlockRef(), (BlockRef{3, 0}));
  stream.RecordHiccup();
  EXPECT_EQ(stream.hiccups(), 1);
  EXPECT_EQ(stream.next_block(), 0);
  stream.DeliverBlock();
  stream.DeliverBlock();
  EXPECT_TRUE(stream.finished());
}

}  // namespace
}  // namespace scaddar
