// Backend-seam coverage: the factory's spec grammar, the batched
// submit/drain token contract every backend implements, file persistence
// across close/reopen, the O_DIRECT fallback, and the fault hook's
// EIO/short-write surface. Backends under test: "mem", "file:<dir>", and
// "uring:<dir>" when the kernel accepts io_uring_setup (otherwise the
// uring spec's sync fallback is what gets exercised — also a contract).

#include "storage/storage_backend.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"

namespace scaddar {
namespace {

constexpr int64_t kBlock = 4096;

std::string TempDir() {
  std::string templ = ::testing::TempDir() + "scaddar_backend_XXXXXX";
  char* made = ::mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

std::vector<std::byte> Pattern(uint8_t tag) {
  std::vector<std::byte> buf(static_cast<size_t>(kBlock));
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(
        static_cast<uint8_t>(tag + i * 131 + (i >> 8)));
  }
  return buf;
}

/// Drains and indexes completions by token.
std::unordered_map<int64_t, IoCompletion> Drain(StorageBackend& backend) {
  std::vector<IoCompletion> done;
  EXPECT_TRUE(backend.DrainCompletions(done).ok());
  std::unordered_map<int64_t, IoCompletion> by_token;
  for (const IoCompletion& completion : done) {
    by_token[completion.token] = completion;
  }
  EXPECT_EQ(by_token.size(), done.size()) << "duplicate completion tokens";
  return by_token;
}

TEST(StorageBackendFactory, ParsesSpecs) {
  BackendOptions options;
  EXPECT_EQ(MakeStorageBackend("mem", options).value()->name(), "mem");
  const std::string dir = TempDir();
  EXPECT_EQ(MakeStorageBackend("file:" + dir, options).value()->name(),
            "file");
  const auto uring = MakeStorageBackend("uring:" + dir, options);
  ASSERT_TRUE(uring.ok());
  if (UringAvailable()) {
    EXPECT_EQ((*uring)->name(), "uring");
  } else {
    EXPECT_EQ((*uring)->name(), "file");  // Documented fallback.
  }
  EXPECT_EQ(MakeStorageBackend("file:", options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStorageBackend("uring:", options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStorageBackend("nvme:/dev/nvme0", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StorageBackendFactory, RejectsUnalignedBlockBytes) {
  const std::string dir = TempDir();
  BackendOptions options;
  options.block_bytes = 4000;  // Not a multiple of 4096.
  EXPECT_EQ(MakeStorageBackend("file:" + dir, options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStorageBackend("uring:" + dir, options).status().code(),
            StatusCode::kInvalidArgument);
  // The in-memory backend has no sector constraint.
  EXPECT_TRUE(MakeStorageBackend("mem", options).ok());
}

class BackendContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<StorageBackend> Make(int queue_depth = 32) {
    BackendOptions options;
    options.block_bytes = kBlock;
    options.queue_depth = queue_depth;
    std::string spec = GetParam();
    if (spec != "mem") {
      dir_ = TempDir();
      spec += ":" + dir_;
    }
    return MakeStorageBackend(spec, options).value();
  }

  std::string dir_;
};

TEST_P(BackendContractTest, WriteReadRoundTrip) {
  auto backend = Make();
  ASSERT_TRUE(backend->OpenDisk(0).ok());
  ASSERT_TRUE(backend->OpenDisk(7).ok());

  // Aligned buffers keep the test valid under O_DIRECT.
  constexpr int kSlots = 9;
  std::vector<std::vector<std::byte>> images;
  std::vector<std::byte*> write_bufs;
  for (int slot = 0; slot < kSlots; ++slot) {
    images.push_back(Pattern(static_cast<uint8_t>(slot * 17 + 3)));
    void* aligned = std::aligned_alloc(4096, static_cast<size_t>(kBlock));
    ASSERT_NE(aligned, nullptr);
    std::memcpy(aligned, images.back().data(), static_cast<size_t>(kBlock));
    write_bufs.push_back(static_cast<std::byte*>(aligned));
  }
  std::vector<int64_t> tokens;
  for (int slot = 0; slot < kSlots; ++slot) {
    const PhysicalDiskId disk = slot % 2 == 0 ? 0 : 7;
    tokens.push_back(
        backend->EnqueueWrite(disk, slot, write_bufs[slot]).value());
  }
  auto done = Drain(*backend);
  ASSERT_EQ(done.size(), static_cast<size_t>(kSlots));
  for (const int64_t token : tokens) {
    ASSERT_TRUE(done.at(token).status.ok());
    EXPECT_EQ(done.at(token).bytes, kBlock);
  }
  ASSERT_TRUE(backend->Flush(0).ok());
  ASSERT_TRUE(backend->Flush(7).ok());

  std::vector<std::byte*> read_bufs;
  std::vector<int64_t> read_tokens;
  for (int slot = 0; slot < kSlots; ++slot) {
    void* aligned = std::aligned_alloc(4096, static_cast<size_t>(kBlock));
    ASSERT_NE(aligned, nullptr);
    read_bufs.push_back(static_cast<std::byte*>(aligned));
    const PhysicalDiskId disk = slot % 2 == 0 ? 0 : 7;
    read_tokens.push_back(
        backend->EnqueueRead(disk, slot, read_bufs[slot]).value());
  }
  done = Drain(*backend);
  ASSERT_EQ(done.size(), static_cast<size_t>(kSlots));
  for (int slot = 0; slot < kSlots; ++slot) {
    ASSERT_TRUE(done.at(read_tokens[slot]).status.ok());
    EXPECT_EQ(done.at(read_tokens[slot]).bytes, kBlock);
    EXPECT_EQ(std::memcmp(read_bufs[slot], images[slot].data(),
                          static_cast<size_t>(kBlock)),
              0)
        << "slot " << slot << " bytes differ after round trip";
  }
  const IoStats& stats = backend->stats();
  EXPECT_EQ(stats.reads, kSlots);
  EXPECT_EQ(stats.writes, kSlots);
  EXPECT_EQ(stats.flushes, 2);
  // The batching win this layer exists for: many ops, few submissions.
  EXPECT_GT(stats.submit_batches, 0);
  EXPECT_LT(stats.submit_batches, 2 * kSlots);
  for (std::byte* buf : write_bufs) std::free(buf);
  for (std::byte* buf : read_bufs) std::free(buf);
}

TEST_P(BackendContractTest, PersistsAcrossCloseAndReopen) {
  if (std::string_view(GetParam()) == "mem") {
    GTEST_SKIP() << "the in-memory backend persists only per process";
  }
  auto backend = Make();
  ASSERT_TRUE(backend->OpenDisk(3).ok());
  const std::vector<std::byte> image = Pattern(0xAB);
  void* aligned = std::aligned_alloc(4096, static_cast<size_t>(kBlock));
  std::memcpy(aligned, image.data(), static_cast<size_t>(kBlock));
  ASSERT_TRUE(
      backend->EnqueueWrite(3, 5, static_cast<std::byte*>(aligned)).ok());
  auto done = Drain(*backend);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(backend->Flush(3).ok());
  ASSERT_TRUE(backend->CloseDisk(3).ok());

  // Reopen — the crash-restart path — and read the image back.
  ASSERT_TRUE(backend->OpenDisk(3).ok());
  std::memset(aligned, 0, static_cast<size_t>(kBlock));
  ASSERT_TRUE(
      backend->EnqueueRead(3, 5, static_cast<std::byte*>(aligned)).ok());
  done = Drain(*backend);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done.begin()->second.status.ok());
  EXPECT_EQ(
      std::memcmp(aligned, image.data(), static_cast<size_t>(kBlock)), 0);
  std::free(aligned);
}

TEST_P(BackendContractTest, FaultHookInjectsEioAndShortWrites) {
  auto backend = Make();
  ASSERT_TRUE(backend->OpenDisk(0).ok());
  // Deterministic script: first op EIO, second short, rest clean.
  int op_index = 0;
  backend->set_fault_hook([&op_index](PhysicalDiskId, IoOp) {
    const int index = op_index++;
    if (index == 0) return IoFault::kEio;
    if (index == 1) return IoFault::kShort;
    return IoFault::kNone;
  });
  std::vector<std::byte*> bufs;
  std::vector<int64_t> tokens;
  for (int slot = 0; slot < 3; ++slot) {
    void* aligned = std::aligned_alloc(4096, static_cast<size_t>(kBlock));
    std::memcpy(aligned, Pattern(static_cast<uint8_t>(slot)).data(),
                static_cast<size_t>(kBlock));
    bufs.push_back(static_cast<std::byte*>(aligned));
    tokens.push_back(
        backend->EnqueueWrite(0, slot, bufs.back()).value());
  }
  auto done = Drain(*backend);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done.at(tokens[0]).status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(done.at(tokens[1]).status.ok());
  EXPECT_LT(done.at(tokens[1]).bytes, kBlock) << "short write not short";
  EXPECT_TRUE(done.at(tokens[2]).status.ok());
  EXPECT_EQ(done.at(tokens[2]).bytes, kBlock);
  EXPECT_EQ(backend->stats().injected_eio, 1);
  EXPECT_EQ(backend->stats().injected_short, 1);
  backend->set_fault_hook(nullptr);
  for (std::byte* buf : bufs) std::free(buf);
}

TEST_P(BackendContractTest, QueueDepthOneStillCompletesEverything) {
  auto backend = Make(/*queue_depth=*/1);
  ASSERT_TRUE(backend->OpenDisk(0).ok());
  constexpr int kOps = 12;
  std::vector<std::byte*> bufs;
  for (int slot = 0; slot < kOps; ++slot) {
    void* aligned = std::aligned_alloc(4096, static_cast<size_t>(kBlock));
    std::memcpy(aligned, Pattern(static_cast<uint8_t>(slot)).data(),
                static_cast<size_t>(kBlock));
    bufs.push_back(static_cast<std::byte*>(aligned));
    ASSERT_TRUE(backend->EnqueueWrite(0, slot, bufs.back()).ok());
  }
  const auto done = Drain(*backend);
  EXPECT_EQ(done.size(), static_cast<size_t>(kOps));
  for (const auto& [token, completion] : done) {
    EXPECT_TRUE(completion.status.ok());
  }
  EXPECT_EQ(backend->stats().writes, kOps);
  for (std::byte* buf : bufs) std::free(buf);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContractTest,
                         ::testing::Values("mem", "file", "uring"));

TEST(SyncFileBackend, BatchesSubmissions) {
  // One drain of 8 queued ops on one disk must go down as one worker
  // batch, not 8 — the submission amortization the seam promises.
  const std::string dir = TempDir();
  BackendOptions options;
  options.block_bytes = kBlock;
  options.queue_depth = 32;
  auto backend = MakeStorageBackend("file:" + dir, options).value();
  ASSERT_TRUE(backend->OpenDisk(0).ok());
  std::vector<std::byte*> bufs;
  for (int slot = 0; slot < 8; ++slot) {
    void* aligned = std::aligned_alloc(4096, static_cast<size_t>(kBlock));
    std::memcpy(aligned, Pattern(static_cast<uint8_t>(slot)).data(),
                static_cast<size_t>(kBlock));
    bufs.push_back(static_cast<std::byte*>(aligned));
    ASSERT_TRUE(backend->EnqueueWrite(0, slot, bufs.back()).ok());
  }
  std::vector<IoCompletion> done;
  ASSERT_TRUE(backend->DrainCompletions(done).ok());
  EXPECT_EQ(done.size(), 8u);
  EXPECT_EQ(backend->stats().submit_batches, 1);
  for (std::byte* buf : bufs) std::free(buf);
}

TEST(UringBackend, AvailabilityProbeIsStable) {
  const bool first = UringAvailable();
  EXPECT_EQ(UringAvailable(), first);  // Cached, not re-probed.
}

}  // namespace
}  // namespace scaddar
