#include "server/ha_server.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

HaServerConfig Config(int64_t disks = 8, int64_t replicas = 2) {
  HaServerConfig config;
  config.base.initial_disks = disks;
  config.base.disk_spec = {.capacity_blocks = 100'000,
                           .bandwidth_blocks_per_round = 16};
  config.base.master_seed = 1234;
  config.replicas = replicas;
  return config;
}

std::unique_ptr<HaCmServer> Make(const HaServerConfig& config) {
  return std::move(HaCmServer::Create(config)).value();
}

void DrainRepairs(HaCmServer& server, int limit = 100000) {
  int rounds = 0;
  while (!server.repairs_idle()) {
    server.Tick();
    SCADDAR_CHECK(++rounds < limit);
  }
}

TEST(HaServerTest, CreateValidation) {
  HaServerConfig bad = Config();
  bad.replicas = 1;
  EXPECT_FALSE(HaCmServer::Create(bad).ok());
  bad = Config(2, 3);  // Fewer disks than replicas.
  EXPECT_FALSE(HaCmServer::Create(bad).ok());
}

TEST(HaServerTest, AddObjectMaterializesAllReplicas) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 500).ok());
  EXPECT_TRUE(server->VerifyRedundancy().ok());
  for (BlockIndex i = 0; i < 500; ++i) {
    const PhysicalDiskId primary = *server->CopyLocation({1, i}, 0);
    const PhysicalDiskId mirror = *server->CopyLocation({1, i}, 1);
    EXPECT_NE(primary, mirror);
  }
}

TEST(HaServerTest, StreamsPlayCleanlyWhenHealthy) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 60).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  for (int round = 0; round < 60; ++round) {
    server->Tick();
  }
  EXPECT_EQ(server->active_streams(), 0);
  EXPECT_EQ(server->total_hiccups(), 0);
  EXPECT_EQ(server->total_served(), 60);
}

TEST(HaServerTest, FailDiskValidation) {
  auto server = Make(Config(4, 3));
  ASSERT_TRUE(server->AddObject(1, 100).ok());
  EXPECT_EQ(server->FailDisk(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(server->FailDisk(2).ok());
  EXPECT_EQ(server->FailDisk(2).code(), StatusCode::kFailedPrecondition);
  // 3 live disks left == replicas; another failure would break R-way.
  EXPECT_EQ(server->FailDisk(0).code(), StatusCode::kFailedPrecondition);
}

TEST(HaServerTest, NoDataLossOnSingleFailure) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 3000).ok());
  ASSERT_TRUE(server->FailDisk(3).ok());
  EXPECT_EQ(server->UnreadableBlocks(), 0);
  EXPECT_GT(server->pending_repairs(), 0);
}

TEST(HaServerTest, RepairsRestoreFullRedundancy) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 3000).ok());
  ASSERT_TRUE(server->FailDisk(5).ok());
  DrainRepairs(*server);
  EXPECT_TRUE(server->VerifyRedundancy().ok());
  EXPECT_GT(server->total_repaired(), 0);
  // No copy may reference the dead disk anymore.
  for (BlockIndex i = 0; i < 3000; ++i) {
    EXPECT_NE(*server->CopyLocation({1, i}, 0), 5);
    EXPECT_NE(*server->CopyLocation({1, i}, 1), 5);
  }
}

TEST(HaServerTest, StreamsSurviveTheFailureWindow) {
  // Slow disks + a big object keep the repair backlog alive for hundreds
  // of rounds, so the playing stream must cross blocks whose primary is
  // still dead — and get them from the mirror without a hiccup.
  HaServerConfig config = Config();
  config.base.disk_spec.bandwidth_blocks_per_round = 4;
  auto server = Make(config);
  ASSERT_TRUE(server->AddObject(1, 20000).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  for (int round = 0; round < 50; ++round) {
    server->Tick();
  }
  ASSERT_TRUE(server->FailDisk(2).ok());
  int64_t degraded = 0;
  for (int round = 0; round < 350; ++round) {
    degraded += server->Tick().served_degraded;
  }
  EXPECT_EQ(server->total_served(), 400);  // 400 rounds x 1 block.
  // The repair frontier overtakes a 1-block/round stream within a couple
  // of rounds (it fixes ~100 block-indices per round), so only the first
  // post-failure reads can be degraded — but at least one must be, and
  // none may hiccup: the mirror covers the dead disk seamlessly.
  EXPECT_GE(degraded, 1);
  EXPECT_EQ(server->total_hiccups(), 0);
}

TEST(HaServerTest, TripleReplicationSurvivesTwoOverlappingFailures) {
  auto server = Make(Config(9, 3));
  ASSERT_TRUE(server->AddObject(1, 2000).ok());
  ASSERT_TRUE(server->FailDisk(1).ok());
  // Second failure before the first repair finishes.
  ASSERT_TRUE(server->FailDisk(4).ok());
  EXPECT_EQ(server->UnreadableBlocks(), 0);
  DrainRepairs(*server);
  EXPECT_TRUE(server->VerifyRedundancy().ok());
}

TEST(HaServerTest, DoubleFailureOnTwoWayLosesSomeBlocksHonestly) {
  auto server = Make(Config(8, 2));
  ASSERT_TRUE(server->AddObject(1, 4000).ok());
  ASSERT_TRUE(server->FailDisk(0).ok());
  // Immediately fail the offset partner before any repair round runs:
  // blocks whose two copies sat on {0, 4} are gone.
  ASSERT_TRUE(server->FailDisk(4).ok());
  EXPECT_GT(server->UnreadableBlocks(), 0);
  EXPECT_LT(server->UnreadableBlocks(), 4000 / 2);
}

TEST(HaServerTest, RepairBeforeSecondFailurePreventsLoss) {
  auto server = Make(Config(8, 2));
  ASSERT_TRUE(server->AddObject(1, 4000).ok());
  ASSERT_TRUE(server->FailDisk(0).ok());
  DrainRepairs(*server);
  ASSERT_TRUE(server->FailDisk(4).ok());
  EXPECT_EQ(server->UnreadableBlocks(), 0);
  DrainRepairs(*server);
  EXPECT_TRUE(server->VerifyRedundancy().ok());
}

TEST(HaServerTest, ScaleAddRebalancesReplicas) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 2000).ok());
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  DrainRepairs(*server);
  EXPECT_TRUE(server->VerifyRedundancy().ok());
  // The new disks hold copies now.
  int64_t on_new = 0;
  for (BlockIndex i = 0; i < 2000; ++i) {
    for (int64_t r = 0; r < 2; ++r) {
      const PhysicalDiskId disk = *server->CopyLocation({1, i}, r);
      on_new += disk >= 8 ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(on_new) / 4000.0, 2.0 / 10.0, 0.07);
}

TEST(HaServerTest, PerObjectReplicaCounts) {
  auto server = Make(Config(8, 2));
  ASSERT_TRUE(server->AddObject(1, 100).ok());                    // Default 2.
  ASSERT_TRUE(server->AddObject(2, 100, 1, /*replicas=*/1).ok()); // Cold.
  ASSERT_TRUE(server->AddObject(3, 100, 1, /*replicas=*/3).ok()); // Hot.
  EXPECT_EQ(*server->ReplicasOf(1), 2);
  EXPECT_EQ(*server->ReplicasOf(2), 1);
  EXPECT_EQ(*server->ReplicasOf(3), 3);
  EXPECT_FALSE(server->AddObject(4, 10, 1, /*replicas=*/9).ok());
  EXPECT_FALSE(server->AddObject(4, 10, 1, /*replicas=*/-1).ok());
  EXPECT_TRUE(server->VerifyRedundancy().ok());
}

TEST(HaServerTest, PartialReplicationLosesOnlyColdBlocks) {
  auto server = Make(Config(8, 2));
  ASSERT_TRUE(server->AddObject(1, 2000, 1, /*replicas=*/2).ok());
  ASSERT_TRUE(server->AddObject(2, 2000, 1, /*replicas=*/1).ok());
  ASSERT_TRUE(server->FailDisk(3).ok());
  const int64_t unreadable = server->UnreadableBlocks();
  // Only the unreplicated object can lose blocks: ~1/8 of its 2000.
  EXPECT_GT(unreadable, 0);
  EXPECT_NEAR(static_cast<double>(unreadable), 2000.0 / 8.0, 60.0);
  // The replicated object remains fully readable.
  for (BlockIndex i = 0; i < 2000; ++i) {
    bool healthy = false;
    for (int64_t r = 0; r < 2; ++r) {
      if (*server->CopyLocation({1, i}, r) != 3) {
        healthy = true;
      }
    }
    EXPECT_TRUE(healthy) << "replicated block " << i << " lost";
  }
  // Repairs drain even though some copies are unrecoverable.
  DrainRepairs(*server);
}

TEST(HaServerTest, TripleReplicaObjectSurvivesDoubleFailure) {
  auto server = Make(Config(9, 2));
  ASSERT_TRUE(server->AddObject(1, 1500, 1, /*replicas=*/3).ok());
  ASSERT_TRUE(server->FailDisk(0).ok());
  ASSERT_TRUE(server->FailDisk(3).ok());  // Before any repair.
  EXPECT_EQ(server->UnreadableBlocks(), 0);
}

TEST(HaServerTest, FailureDuringScalingConverges) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 2000).ok());
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  for (int round = 0; round < 3; ++round) {
    server->Tick();  // Mid-migration...
  }
  ASSERT_TRUE(server->FailDisk(6).ok());  // ...a disk dies.
  EXPECT_EQ(server->UnreadableBlocks(), 0);
  DrainRepairs(*server);
  EXPECT_TRUE(server->VerifyRedundancy().ok());
}

}  // namespace
}  // namespace scaddar
