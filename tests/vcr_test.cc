#include <gtest/gtest.h>

#include "server/server.h"

namespace scaddar {
namespace {

std::unique_ptr<CmServer> MakeServer() {
  ServerConfig config;
  config.initial_disks = 4;
  config.master_seed = 77;
  return std::move(CmServer::Create(config)).value();
}

TEST(StreamVcrTest, SeekClampsToObjectRange) {
  Stream stream(0, 1, 10, 0);
  stream.SeekTo(5);
  EXPECT_EQ(stream.next_block(), 5);
  stream.SeekTo(-3);
  EXPECT_EQ(stream.next_block(), 0);
  stream.SeekTo(99);
  EXPECT_EQ(stream.next_block(), 10);
  EXPECT_TRUE(stream.finished());
}

TEST(StreamVcrTest, PauseResume) {
  Stream stream(0, 1, 10, 0);
  EXPECT_FALSE(stream.paused());
  stream.Pause();
  EXPECT_TRUE(stream.paused());
  stream.Resume();
  EXPECT_FALSE(stream.paused());
}

TEST(ServerVcrTest, PausedStreamConsumesNothing) {
  auto server = MakeServer();
  ASSERT_TRUE(server->AddObject(1, 100).ok());
  const int64_t id = *server->StartStream(1);
  server->Tick();
  ASSERT_TRUE(server->PauseStream(id).ok());
  const RoundMetrics paused_round = server->Tick();
  EXPECT_EQ(paused_round.requests, 0);
  EXPECT_EQ(paused_round.served, 0);
  EXPECT_EQ(server->streams()[0].next_block(), 1);  // Frozen.
  ASSERT_TRUE(server->ResumeStream(id).ok());
  const RoundMetrics resumed_round = server->Tick();
  EXPECT_EQ(resumed_round.served, 1);
  EXPECT_EQ(server->streams()[0].next_block(), 2);
}

TEST(ServerVcrTest, SeekJumpsPlayback) {
  auto server = MakeServer();
  ASSERT_TRUE(server->AddObject(1, 100).ok());
  const int64_t id = *server->StartStream(1);
  for (int round = 0; round < 10; ++round) {
    server->Tick();
  }
  EXPECT_EQ(server->streams()[0].next_block(), 10);
  ASSERT_TRUE(server->SeekStream(id, 90).ok());  // Fast-forward.
  for (int round = 0; round < 10; ++round) {
    server->Tick();
  }
  // 90..99 played, stream finished and was reaped.
  EXPECT_EQ(server->completed_streams(), 1);
  EXPECT_EQ(server->active_streams(), 0);
  EXPECT_EQ(server->total_hiccups(), 0);
}

TEST(ServerVcrTest, RewindReplaysBlocks) {
  auto server = MakeServer();
  ASSERT_TRUE(server->AddObject(1, 50).ok());
  const int64_t id = *server->StartStream(1);
  for (int round = 0; round < 20; ++round) {
    server->Tick();
  }
  ASSERT_TRUE(server->SeekStream(id, 0).ok());  // Rewind to the start.
  EXPECT_EQ(server->streams()[0].next_block(), 0);
  server->Tick();
  EXPECT_EQ(server->streams()[0].next_block(), 1);
}

TEST(ServerVcrTest, SeekToEndFinishesStream) {
  auto server = MakeServer();
  ASSERT_TRUE(server->AddObject(1, 30).ok());
  const int64_t id = *server->StartStream(1);
  ASSERT_TRUE(server->SeekStream(id, 30).ok());
  server->Tick();
  EXPECT_EQ(server->completed_streams(), 1);
  EXPECT_EQ(server->active_streams(), 0);
}

TEST(ServerVcrTest, ControlsRequireActiveStream) {
  auto server = MakeServer();
  ASSERT_TRUE(server->AddObject(1, 10).ok());
  EXPECT_EQ(server->PauseStream(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(server->ResumeStream(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(server->SeekStream(9, 0).code(), StatusCode::kNotFound);
}

TEST(ServerVcrTest, VcrDuringOnlineScaling) {
  auto server = MakeServer();
  ASSERT_TRUE(server->AddObject(1, 200).ok());
  const int64_t id = *server->StartStream(1);
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  ASSERT_TRUE(server->SeekStream(id, 150).ok());
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 10000);
  }
  for (int round = 0; round < 60; ++round) {
    server->Tick();
  }
  EXPECT_EQ(server->completed_streams(), 1);
  EXPECT_EQ(server->total_hiccups(), 0);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace scaddar
