// The cluster façade's equivalence oracle: a 1-shard ClusterServer is
// byte-identical to a bare CmServer fed the same call sequence — stream
// ids, per-round metrics, startup latencies, stream positions and the
// materialized store — through object ingest, disk scale-up/down and a full
// seeded traffic history. Plus the DSL-level face of the same contract and
// the N-shard conservation invariants under traffic.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_scenario.h"
#include "cluster/cluster_server.h"
#include "server/scenario.h"
#include "server/server.h"
#include "server/workload/traffic_engine.h"

namespace scaddar {
namespace {

ServerConfig SmallServer() {
  ServerConfig config;
  config.initial_disks = 4;
  config.disk_spec = {.capacity_blocks = 100'000,
                      .bandwidth_blocks_per_round = 8};
  return config;
}

TrafficConfig BusyTraffic() {
  TrafficConfig config;
  config.arrivals_per_round = 3.0;
  config.zipf_theta = 0.729;
  config.pause_probability = 0.02;
  config.resume_probability = 0.3;
  config.seek_probability = 0.02;
  config.flash_crowds.push_back(
      FlashCrowd{.start_round = 20, .duration = 10, .rank = 0, .boost = 4});
  return config;
}

void ExpectSameMetrics(const RoundMetrics& bare,
                       const ClusterRoundMetrics& cluster) {
  EXPECT_EQ(bare.round, cluster.round);
  EXPECT_EQ(bare.active_streams, cluster.active_streams);
  EXPECT_EQ(bare.requests, cluster.requests);
  EXPECT_EQ(bare.served, cluster.served);
  EXPECT_EQ(bare.hiccups, cluster.hiccups);
  EXPECT_EQ(bare.migrated, cluster.migrated);
  EXPECT_EQ(bare.pending_migration, cluster.pending_migration);
  EXPECT_EQ(bare.retiring_disks, cluster.retiring_disks);
  EXPECT_EQ(cluster.cross_shard_blocks, 0);
  EXPECT_EQ(cluster.pending_transfers, 0);
}

void ExpectSameStreams(const CmServer& bare, const CmServer& shard) {
  ASSERT_EQ(bare.streams().size(), shard.streams().size());
  for (size_t i = 0; i < bare.streams().size(); ++i) {
    const Stream& a = bare.streams()[i];
    const Stream& b = shard.streams()[i];
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.object(), b.object());
    EXPECT_EQ(a.next_block(), b.next_block());
    EXPECT_EQ(a.paused(), b.paused());
    EXPECT_EQ(a.hiccups(), b.hiccups());
  }
}

TEST(ClusterEquivalenceTest, OneShardClusterIsByteIdenticalToBareServer) {
  auto bare = CmServer::Create(SmallServer()).value();
  ClusterConfig cluster_config;
  cluster_config.shard = SmallServer();
  cluster_config.initial_shards = 1;
  auto cluster = ClusterServer::Create(cluster_config).value();

  for (ObjectId id = 1; id <= 12; ++id) {
    ASSERT_TRUE(bare->AddObject(id, 300).ok());
    ASSERT_TRUE(cluster->AddObject(id, 300).ok());
  }
  // Stream ids must match call for call (member 0 owns the bare id range).
  for (ObjectId id = 1; id <= 12; id += 3) {
    const auto bare_id = bare->StartStream(id);
    const auto cluster_id = cluster->StartStream(id);
    ASSERT_TRUE(bare_id.ok());
    ASSERT_TRUE(cluster_id.ok());
    EXPECT_EQ(bare_id.value(), cluster_id.value());
  }

  // Twin seeded engines over identically-evolving servers emit identical
  // traces; interleave disk scaling mid-history.
  TrafficEngine bare_traffic(BusyTraffic());
  TrafficEngine cluster_traffic(BusyTraffic());
  std::vector<ObjectId> objects;
  for (ObjectId id = 1; id <= 12; ++id) {
    objects.push_back(id);
  }
  bare_traffic.SetObjects(objects);
  cluster_traffic.SetObjects(objects);

  for (int round = 0; round < 120; ++round) {
    if (round == 30) {
      ASSERT_TRUE(bare->ScaleAdd(2).ok());
      ASSERT_TRUE(cluster->ScaleAddDisks(0, 2).ok());
    }
    if (round == 70) {
      ASSERT_TRUE(bare->ScaleRemove({0, 1}).ok());
      ASSERT_TRUE(cluster->ScaleRemoveDisks(0, {0, 1}).ok());
    }
    const RoundMetrics bare_metrics = bare_traffic.DriveRound(*bare);
    const ClusterRoundMetrics cluster_metrics =
        cluster->DriveRound(cluster_traffic);
    ExpectSameMetrics(bare_metrics, cluster_metrics);
  }

  EXPECT_EQ(bare_traffic.rejected_arrivals(),
            cluster_traffic.rejected_arrivals());
  EXPECT_EQ(bare->total_served(), cluster->total_served());
  EXPECT_EQ(bare->total_hiccups(), cluster->total_hiccups());
  EXPECT_EQ(bare->completed_streams(), cluster->completed_streams());
  EXPECT_EQ(bare->startup_latencies(), cluster->StartupLatencies());
  ExpectSameStreams(*bare, *cluster->shard(0));

  // Byte-identical materialized placement: every object's blocks sit on the
  // same disks in both stores.
  int64_t guard = 0;
  while (!bare->migration().idle() || !cluster->MigrationIdle()) {
    bare->Tick();
    cluster->Tick();
    ASSERT_LT(++guard, 100'000);
  }
  ASSERT_TRUE(bare->VerifyIntegrity().ok());
  ASSERT_TRUE(cluster->VerifyIntegrity().ok());
  const BlockStore& bare_store = bare->store();
  const BlockStore& shard_store = cluster->shard(0)->store();
  for (ObjectId id = 1; id <= 12; ++id) {
    for (BlockIndex block = 0; block < 300; ++block) {
      const auto bare_disk = bare_store.LocationOf(BlockRef{id, block});
      const auto shard_disk = shard_store.LocationOf(BlockRef{id, block});
      ASSERT_TRUE(bare_disk.ok());
      ASSERT_TRUE(shard_disk.ok());
      EXPECT_EQ(bare_disk.value(), shard_disk.value());
    }
  }
}

TEST(ClusterEquivalenceTest, DslRunsIdenticallyThroughBothInterpreters) {
  // Same script body; only the disk-scaling command differs in spelling
  // (`scale add` vs `scaledisks 0 add`).
  const std::string common_head =
      "addobject 1 300\n"
      "addobject 2 300\n"
      "addobject 3 300\n"
      "stream 1\n"
      "stream 2\n"
      "traffic seed 42\n"
      "traffic arrivals 2.5\n"
      "traffic vcr 0.05 0.4 0.05\n"
      "ticktraffic 40\n";
  const std::string common_tail =
      "ticktraffic 40\n"
      "drain\n"
      "verify\n";
  const std::string bare_script = common_head + "scale add 2\n" + common_tail;
  const std::string cluster_script =
      common_head + "scaledisks 0 add 2\n" + common_tail;

  auto bare = CmServer::Create(SmallServer()).value();
  ClusterConfig cluster_config;
  cluster_config.shard = SmallServer();
  cluster_config.initial_shards = 1;
  auto cluster = ClusterServer::Create(cluster_config).value();

  const auto bare_result = RunScenario(*bare, bare_script);
  const auto cluster_result = RunClusterScenario(*cluster, cluster_script);
  ASSERT_TRUE(bare_result.ok()) << bare_result.status().ToString();
  ASSERT_TRUE(cluster_result.ok()) << cluster_result.status().ToString();

  EXPECT_EQ(bare_result.value().lines_executed,
            cluster_result.value().lines_executed);
  EXPECT_EQ(bare_result.value().rounds, cluster_result.value().rounds);
  EXPECT_EQ(bare_result.value().served, cluster_result.value().served);
  EXPECT_EQ(bare_result.value().hiccups, cluster_result.value().hiccups);
  EXPECT_EQ(bare_result.value().migrated, cluster_result.value().migrated);
  EXPECT_EQ(bare_result.value().streams_started,
            cluster_result.value().streams_started);
  EXPECT_EQ(bare_result.value().streams_rejected,
            cluster_result.value().streams_rejected);
  EXPECT_EQ(bare_result.value().startup_p50,
            cluster_result.value().startup_p50);
  EXPECT_EQ(bare_result.value().startup_p99,
            cluster_result.value().startup_p99);
  EXPECT_EQ(bare_result.value().startup_p999,
            cluster_result.value().startup_p999);
}

TEST(ClusterEquivalenceTest, ScaleUpAndDownUnderTrafficConservesSessions) {
  ClusterConfig config;
  config.shard = SmallServer();
  config.initial_shards = 2;
  config.cross_shard_budget = 64;
  auto cluster = ClusterServer::Create(config).value();
  for (ObjectId id = 1; id <= 24; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 300).ok());
  }
  TrafficEngine traffic(BusyTraffic());
  traffic.SetObjects(cluster->objects());

  int added_member = -1;
  for (int round = 0; round < 160; ++round) {
    if (round == 30) {
      const auto member = cluster->AddServerShard();
      ASSERT_TRUE(member.ok());
      added_member = member.value();
    }
    if (round == 90) {
      ASSERT_TRUE(cluster->RemoveServerShard(added_member).ok());
    }
    cluster->DriveRound(traffic);
  }
  int64_t guard = 0;
  while (!cluster->MigrationIdle()) {
    cluster->Tick();
    ASSERT_LT(++guard, 100'000);
  }
  EXPECT_EQ(cluster->shard(added_member), nullptr);
  EXPECT_EQ(cluster->num_shards(), 2);
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());

  // Conservation: the catalog survives the scale-up/down cycle intact.
  // (This workload deliberately saturates admission, so some handed-off
  // sessions may be rejected at their destination — that is the documented
  // drop-of-last-resort, not a leak.)
  int64_t catalog_across = 0;
  for (const int member : cluster->members()) {
    catalog_across += cluster->shard(member)->catalog().num_objects();
  }
  EXPECT_EQ(catalog_across, 24);
  EXPECT_GT(cluster->total_served(), 0);
}

}  // namespace
}  // namespace scaddar
