#include "server/scenario.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "storage/block_io.h"

namespace scaddar {
namespace {

std::unique_ptr<CmServer> MakeServer() {
  ServerConfig config;
  config.initial_disks = 4;
  config.master_seed = 555;
  return std::move(CmServer::Create(config)).value();
}

TEST(ScenarioTest, EndToEndScript) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
# A full lifecycle.
addobject 1 200
addobject 2 100 2
stream 1
tick 50
scale add 2
drain
verify
stream 2
tick 110
removeobject 2
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->streams_started, 2);
  EXPECT_GT(result->served, 0);
  EXPECT_GT(result->migrated, 0);
  EXPECT_EQ(server->policy().current_disks(), 6);
}

TEST(ScenarioTest, CommentsAndBlanksIgnored) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
# comment only

addobject 1 10   # trailing comment
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lines_executed, 1);
}

TEST(ScenarioTest, ErrorsNameTheLine) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 10
bogus command
)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(ScenarioTest, FailingCommandStopsExecution) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 10
addobject 1 10
addobject 2 10
)");
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(server->catalog().Contains(2));
}

TEST(ScenarioTest, StreamRejectionIsCountedNotFatal) {
  ServerConfig config;
  config.initial_disks = 1;
  config.disk_spec.bandwidth_blocks_per_round = 2;
  config.admission_utilization_cap = 1.0;
  config.master_seed = 9;
  auto server = std::move(CmServer::Create(config)).value();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 50
stream 1
stream 1
stream 1
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->streams_started, 2);
  EXPECT_EQ(result->streams_rejected, 1);
}

TEST(ScenarioTest, VcrCommands) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 100
stream 1
tick 5
pause 0
tick 5
resume 0
seek 0 90
tick 15
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(server->completed_streams(), 1);
}

TEST(ScenarioTest, RebaseCommand) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 300
scale add 1
drain
rebase
drain
verify
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(server->catalog().GetObject(1)->seed_generation, 1);
}

TEST(ScenarioTest, MalformedArgumentsRejected) {
  auto server = MakeServer();
  EXPECT_FALSE(RunScenario(*server, "addobject one 10\n").ok());
  EXPECT_FALSE(RunScenario(*server, "tick -3\n").ok());
  EXPECT_FALSE(RunScenario(*server, "scale sideways 2\n").ok());
  EXPECT_FALSE(RunScenario(*server, "scale remove 1,,2\n").ok());
}

TEST(ScenarioTest, GovernorDeclarationDrivesAutoReorg) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
governor 12 0.05
autoreorg on
addobject 1 300
stream 1
scale add 2
tick 5
scale add 2
tick 5
scale add 2
tick 5
scale add 2
drain
verify
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->auto_reorg_triggers, 0);
  EXPECT_EQ(server->reorg_driver().governor().bits(), 12);
  EXPECT_TRUE(server->reorg_driver().enabled());
}

TEST(ScenarioTest, GovernorRejectsMalformedDeclarations) {
  auto server = MakeServer();
  // Wrong arity falls out of the command match entirely.
  EXPECT_FALSE(RunScenario(*server, "governor\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12 0.05 0.2 7\n").ok());
  // Unparseable and out-of-range arguments.
  EXPECT_FALSE(RunScenario(*server, "governor twelve 0.05\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 0 0.05\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 65 0.05\n").ok());
  // An int64 that wraps to a small int must not sneak past validation.
  EXPECT_FALSE(RunScenario(*server, "governor 4294967301 0.05\n").ok());
  // eps must be a finite positive number (from_chars accepts nan/inf).
  EXPECT_FALSE(RunScenario(*server, "governor 12 0\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12 -0.5\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12 nan\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12 inf\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12 0.05 nan\n").ok());
  EXPECT_FALSE(RunScenario(*server, "governor 12 0.05 -1\n").ok());
  // None of the rejected declarations reconfigured the server.
  EXPECT_EQ(server->config().governor_bits, 0);
  // One declaration per scenario: the duplicate errors after the first
  // line already configured, so probe it on a fresh server.
  auto fresh = MakeServer();
  EXPECT_FALSE(
      RunScenario(*fresh, "governor 12 0.05\ngovernor 14 0.1\n").ok());
  EXPECT_EQ(fresh->config().governor_bits, 12);
  EXPECT_FALSE(RunScenario(*server, "autoreorg maybe\n").ok());
  EXPECT_FALSE(RunScenario(*server, "autoreorg\n").ok());
}

TEST(ScenarioTest, AutoReorgTogglesWithoutGovernor) {
  auto server = MakeServer();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 50
autoreorg on
tick 3
autoreorg off
tick 3
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->auto_reorg_triggers, 0);
  EXPECT_FALSE(server->reorg_driver().enabled());
}

TEST(ScenarioTest, BackendCommand) {
  auto server = MakeServer();
  std::string dir = ::testing::TempDir() + "scaddar_scn_XXXXXX";
  ASSERT_NE(::mkdtemp(dir.data()), nullptr);
  const StatusOr<ScenarioResult> result =
      RunScenario(*server, "backend file:" + dir + " 8\n"
                           "addobject 1 50\n"
                           "stream 1\n"
                           "tick 60\n"
                           "verify\n");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(server->io_engine(), nullptr);
  EXPECT_EQ(server->io_engine()->backend().queue_depth(), 8);
  EXPECT_GT(server->io_engine()->stats().serve_reads, 0);
  // Selecting a backend is only legal on an empty store, and an unknown
  // spec is a line error.
  EXPECT_FALSE(RunScenario(*server, "backend mem\n").ok());
  auto fresh = MakeServer();
  EXPECT_FALSE(RunScenario(*fresh, "backend nvme:/dev/nvme0\n").ok());
}

}  // namespace
}  // namespace scaddar
