#include "core/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/intmath.h"

namespace scaddar {
namespace {

TEST(UnfairnessCoefficientTest, Definition) {
  // f(R, N) = 1 / (R div N).
  EXPECT_DOUBLE_EQ(UnfairnessCoefficient(100, 10), 0.1);
  EXPECT_DOUBLE_EQ(UnfairnessCoefficient(1000, 10), 0.01);
  EXPECT_DOUBLE_EQ(UnfairnessCoefficient(19, 10), 1.0);  // 19 div 10 == 1.
}

TEST(UnfairnessCoefficientTest, TooSmallRangeIsInfinite) {
  EXPECT_TRUE(std::isinf(UnfairnessCoefficient(5, 10)));
}

TEST(UnfairnessCoefficientTest, LargerRangeIsFairer) {
  double prev = UnfairnessCoefficient(16, 4);
  for (uint64_t r = 32; r <= (uint64_t{1} << 20); r *= 2) {
    const double current = UnfairnessCoefficient(r, 4);
    EXPECT_LE(current, prev);
    prev = current;
  }
}

TEST(RangeAfterTest, SequentialDivision) {
  OpLog log = OpLog::Create(4).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());   // N1 = 5.
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());   // N2 = 6.
  const uint64_t r0 = 1000;
  EXPECT_EQ(RangeAfter(r0, log, 0), 1000u);
  EXPECT_EQ(RangeAfter(r0, log, 1), 250u);        // 1000 div 4.
  EXPECT_EQ(RangeAfter(r0, log, 2), 50u);         // 250 div 5.
}

TEST(RangeAfterTest, Lemma42LowerBound) {
  // R_k div N_k >= R_0 div (N0 * N1 * ... * Nk) for several logs.
  OpLog log = OpLog::Create(8).value();
  const uint64_t r0 = MaxRandomForBits(32);
  for (const char* text : {"A1", "A2", "R3", "A1", "R0,1"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
    const Epoch k = log.num_ops();
    uint64_t pi = 1;
    for (Epoch j = 0; j <= k; ++j) {
      pi *= static_cast<uint64_t>(log.disks_after(j));
    }
    const uint64_t lhs = RangeAfter(r0, log, k) /
                         static_cast<uint64_t>(log.disks_after(k));
    EXPECT_GE(lhs, r0 / pi) << "after " << text;
  }
}

TEST(RuleOfThumbTest, PaperExampleSixteenDisks) {
  // Section 4.3: "an average of sixteen disks, eps = 1%, 64-bit generator:
  // k + 1 <= (64 - log 100) / 4, i.e. k + 1 <= 57/4, i.e. k <= 13."
  EXPECT_EQ(RuleOfThumbMaxOps(64, 0.01, 16.0), 13);
}

TEST(RuleOfThumbTest, PaperSectionFiveSetting) {
  // Section 5: "we find k <= 8 where eps = 5%, avg disks = 8 and b = 32."
  EXPECT_EQ(RuleOfThumbMaxOps(32, 0.05, 8.0), 8);
}

TEST(RuleOfThumbTest, MoreBitsAllowMoreOps) {
  const int64_t k32 = RuleOfThumbMaxOps(32, 0.01, 8.0);
  const int64_t k48 = RuleOfThumbMaxOps(48, 0.01, 8.0);
  const int64_t k64 = RuleOfThumbMaxOps(64, 0.01, 8.0);
  EXPECT_LT(k32, k48);
  EXPECT_LT(k48, k64);
}

TEST(RuleOfThumbTest, TighterToleranceAllowsFewerOps) {
  EXPECT_GE(RuleOfThumbMaxOps(64, 0.05, 16.0),
            RuleOfThumbMaxOps(64, 0.001, 16.0));
}

TEST(RuleOfThumbTest, MoreDisksAllowFewerOps) {
  EXPECT_GT(RuleOfThumbMaxOps(64, 0.01, 4.0),
            RuleOfThumbMaxOps(64, 0.01, 64.0));
}

TEST(RuleOfThumbTest, DegenerateBudgetIsZero) {
  // 8 bits cannot pay for log2(1/0.0001) ~ 13.3 bits of tolerance.
  EXPECT_EQ(RuleOfThumbMaxOps(8, 0.0001, 16.0), 0);
}

TEST(ExactMaxOpsTest, AgreesWithRuleOfThumbForConstantDisks) {
  // For constant N the rule of thumb and the exact Lemma 4.3 bound should
  // agree within one operation (the rule drops constant factors).
  for (const int bits : {32, 48, 64}) {
    for (const double eps : {0.05, 0.01}) {
      for (const int64_t n : {4, 8, 16, 32}) {
        const int64_t exact =
            ExactMaxOpsForConstantDisks(MaxRandomForBits(bits), n, eps);
        const int64_t thumb =
            RuleOfThumbMaxOps(bits, eps, static_cast<double>(n));
        EXPECT_LE(std::abs(exact - thumb), 2)
            << "bits=" << bits << " eps=" << eps << " n=" << n
            << " exact=" << exact << " thumb=" << thumb;
      }
    }
  }
}

TEST(ExactMaxOpsTest, MatchesOpLogToleranceGate) {
  // Walk an op log with constant disk count (add 1, remove 1, ...) and
  // compare against the closed-form count.
  const uint64_t r0 = MaxRandomForBits(32);
  const double eps = 0.05;
  const int64_t n = 8;
  const int64_t exact = ExactMaxOpsForConstantDisks(r0, n, eps);
  OpLog log = OpLog::Create(n).value();
  int64_t supported = 0;
  // Alternate add/remove so N oscillates n, n+1, n, n+1, ... The product
  // grows slightly faster than n^k, so supported <= exact always holds.
  while (true) {
    const ScalingOp op = (supported % 2 == 0)
                             ? ScalingOp::Add(1).value()
                             : ScalingOp::Remove({0}).value();
    if (log.WouldExceedTolerance(op, r0, eps)) {
      break;
    }
    ASSERT_TRUE(log.Append(op).ok());
    ++supported;
  }
  EXPECT_LE(supported, exact);
  EXPECT_GE(supported, exact - 2);
}

TEST(UnfairnessAfterTest, GrowsWithOperations) {
  OpLog log = OpLog::Create(8).value();
  const uint64_t r0 = MaxRandomForBits(32);
  double prev = UnfairnessAfter(r0, log);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
    const double current = UnfairnessAfter(r0, log);
    EXPECT_GE(current, prev);
    prev = current;
  }
  // After ~10 ops on 8..17 disks with b=32 the range is nearly exhausted.
  EXPECT_GT(prev, 1e-4);
}

TEST(UnfairnessAfterTest, ExhaustedRangeIsInfinite) {
  OpLog log = OpLog::Create(1000).value();
  const uint64_t r0 = MaxRandomForBits(16);
  ASSERT_TRUE(log.Append(ScalingOp::Add(1000).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Add(1000).value()).ok());
  EXPECT_TRUE(std::isinf(UnfairnessAfter(r0, log)));
}

}  // namespace
}  // namespace scaddar
