#include "stats/accumulator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.coefficient_of_variation(), 0.0);
}

TEST(AccumulatorTest, SingleValue) {
  Accumulator acc;
  acc.Add(5.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.sum(), 5.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // Classic textbook data set.
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.coefficient_of_variation(), 0.4);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, MergeMatchesDirectAccumulation) {
  Accumulator direct;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double v = std::sin(i) * 100.0;
    direct.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), direct.count());
  EXPECT_NEAR(left.mean(), direct.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), direct.variance(), 1e-9);
  EXPECT_EQ(left.min(), direct.min());
  EXPECT_EQ(left.max(), direct.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator acc;
  acc.Add(1.0);
  acc.Add(3.0);
  Accumulator empty;
  acc.Merge(empty);
  EXPECT_EQ(acc.count(), 2);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);

  Accumulator target;
  target.Merge(acc);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(AccumulatorTest, NumericalStabilityOnLargeOffsets) {
  Accumulator acc;
  constexpr double kOffset = 1e12;
  for (int i = 0; i < 1000; ++i) {
    acc.Add(kOffset + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(acc.mean(), kOffset, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(AccumulatorTest, SampleVarianceUndefinedBelowTwo) {
  Accumulator acc;
  EXPECT_EQ(acc.sample_variance(), 0.0);
  acc.Add(9.0);
  EXPECT_EQ(acc.sample_variance(), 0.0);
}

TEST(AccumulatorTest, CoefficientOfVariationZeroMean) {
  Accumulator acc;
  acc.Add(-1.0);
  acc.Add(1.0);
  EXPECT_EQ(acc.coefficient_of_variation(), 0.0);
}

}  // namespace
}  // namespace scaddar
