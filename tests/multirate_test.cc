// Multi-rate stream tests: objects with bitrate_weight > 1 consume that
// many blocks per round, and admission control budgets by load, not by
// stream count.

#include <gtest/gtest.h>

#include "server/server.h"

namespace scaddar {
namespace {

std::unique_ptr<CmServer> MakeServer(int64_t disks, int64_t bandwidth,
                                     double cap = 1.0) {
  ServerConfig config;
  config.initial_disks = disks;
  config.disk_spec = {.capacity_blocks = 100'000,
                      .bandwidth_blocks_per_round = bandwidth};
  config.admission_utilization_cap = cap;
  config.master_seed = 31337;
  return std::move(CmServer::Create(config)).value();
}

TEST(MultiRateTest, HighRateStreamFinishesProportionallyFaster) {
  auto server = MakeServer(4, 16);
  ASSERT_TRUE(server->AddObject(1, 120, /*bitrate_weight=*/1).ok());
  ASSERT_TRUE(server->AddObject(2, 120, /*bitrate_weight=*/4).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  ASSERT_TRUE(server->StartStream(2).ok());
  int rounds_for_fast = 0;
  for (int round = 0; round < 200 && server->completed_streams() < 1;
       ++round) {
    server->Tick();
    ++rounds_for_fast;
  }
  // The 4x stream plays 120 blocks in ~30 rounds; the 1x needs 120.
  EXPECT_NEAR(rounds_for_fast, 30, 2);
  EXPECT_EQ(server->active_streams(), 1);
  EXPECT_EQ(server->total_hiccups(), 0);
}

TEST(MultiRateTest, ActiveLoadSumsRates) {
  auto server = MakeServer(4, 16);
  ASSERT_TRUE(server->AddObject(1, 100, 1).ok());
  ASSERT_TRUE(server->AddObject(2, 100, 5).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  ASSERT_TRUE(server->StartStream(2).ok());
  ASSERT_TRUE(server->StartStream(2).ok());
  EXPECT_EQ(server->ActiveLoad(), 11);
  EXPECT_EQ(server->active_streams(), 3);
}

TEST(MultiRateTest, AdmissionBudgetsByLoadNotStreams) {
  // Capacity = 4 disks * 4 bw * 1.0 = 16 blocks/round.
  auto server = MakeServer(4, 4);
  ASSERT_TRUE(server->AddObject(1, 100, /*bitrate_weight=*/8).ok());
  EXPECT_TRUE(server->StartStream(1).ok());   // Load 8.
  EXPECT_TRUE(server->StartStream(1).ok());   // Load 16.
  EXPECT_FALSE(server->StartStream(1).ok());  // Would exceed 16.
  ASSERT_TRUE(server->AddObject(2, 100, 1).ok());
  EXPECT_FALSE(server->StartStream(2).ok());  // Even 1 more is too much.
}

TEST(MultiRateTest, RequestsCountBlocksNotStreams) {
  auto server = MakeServer(4, 16);
  ASSERT_TRUE(server->AddObject(1, 100, 3).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  const RoundMetrics metrics = server->Tick();
  EXPECT_EQ(metrics.requests, 3);
  EXPECT_EQ(metrics.served, 3);
}

TEST(MultiRateTest, AdmissionRejectsRateBeyondHardware) {
  // One disk with bandwidth 2 cannot feed a rate-4 stream; admission must
  // reject it outright rather than let it hiccup forever.
  auto server = MakeServer(1, 2);
  ASSERT_TRUE(server->AddObject(1, 40, 4).ok());
  EXPECT_EQ(server->StartStream(1).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(server->active_streams(), 0);
}

TEST(MultiRateTest, MixedRatesShareBandwidthWithoutHiccups) {
  auto server = MakeServer(8, 8, /*cap=*/0.5);  // Capacity 32.
  ASSERT_TRUE(server->AddObject(1, 400, 1).ok());
  ASSERT_TRUE(server->AddObject(2, 400, 2).ok());
  ASSERT_TRUE(server->AddObject(3, 400, 4).ok());
  int64_t admitted = 0;
  for (const ObjectId id : {1, 2, 3, 1, 2, 3, 1, 2, 3}) {
    admitted += server->StartStream(id).ok() ? 1 : 0;
  }
  EXPECT_GT(admitted, 4);
  for (int round = 0; round < 100; ++round) {
    server->Tick();
  }
  // 50% utilization: hiccups stay in the far statistical tail.
  EXPECT_LT(server->total_hiccups(), server->total_served() / 50 + 3);
}

}  // namespace
}  // namespace scaddar
