#include "placement/registry.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "random/sequence.h"

namespace scaddar {
namespace {

TEST(RegistryTest, AllKnownNamesConstruct) {
  for (const std::string_view name : KnownPolicyNames()) {
    const auto policy = MakePolicy(name, 8);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->name(), name);
    EXPECT_EQ((*policy)->current_disks(), 8);
  }
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_EQ(MakePolicy("crush", 8).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(MakePolicy("", 8).status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, RejectsBadDiskCount) {
  EXPECT_FALSE(MakePolicy("scaddar", 0).ok());
  EXPECT_FALSE(MakePolicy("scaddar", -4).ok());
}

TEST(RegistryTest, OptionsReachDirectoryPolicy) {
  PolicyOptions options_a;
  options_a.seed = 1;
  PolicyOptions options_b;
  options_b.seed = 2;
  auto a = MakePolicy("directory", 8, options_a);
  auto b = MakePolicy("directory", 8, options_b);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value().Materialize(
          5000);
  ASSERT_TRUE((*a)->AddObject(1, x0).ok());
  ASSERT_TRUE((*b)->AddObject(1, x0).ok());
  ASSERT_TRUE((*a)->ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE((*b)->ApplyOp(ScalingOp::Add(2).value()).ok());
  // Different relocation seeds must produce different directories.
  EXPECT_NE((*a)->AssignmentSnapshot(), (*b)->AssignmentSnapshot());
}

TEST(RegistryTest, MakePolicyWithDisksPreservesIds) {
  for (const std::string_view name : KnownPolicyNames()) {
    const auto policy = MakePolicyWithDisks(name, {10, 20, 30});
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->log().physical_disks(),
              (std::vector<PhysicalDiskId>{10, 20, 30}))
        << name;
  }
}

TEST(RegistryTest, MakePolicyWithDisksValidates) {
  EXPECT_FALSE(MakePolicyWithDisks("scaddar", {}).ok());
  EXPECT_FALSE(MakePolicyWithDisks("scaddar", {1, 1}).ok());
  EXPECT_FALSE(MakePolicyWithDisks("nope", {1, 2}).ok());
}

TEST(RegistryTest, EveryPolicyPlacesEveryBlockOnALiveDisk) {
  const std::vector<uint64_t> x0 =
      X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value().Materialize(
          2000);
  for (const std::string_view name : KnownPolicyNames()) {
    auto policy = MakePolicy(name, 5);
    ASSERT_TRUE(policy.ok());
    ASSERT_TRUE((*policy)->AddObject(1, x0).ok());
    ASSERT_TRUE((*policy)->ApplyOp(ScalingOp::Add(2).value()).ok());
    ASSERT_TRUE((*policy)->ApplyOp(ScalingOp::Remove({1}).value()).ok());
    const std::vector<PhysicalDiskId>& live =
        (*policy)->log().physical_disks();
    for (BlockIndex i = 0; i < 2000; ++i) {
      const PhysicalDiskId disk = (*policy)->Locate(1, i);
      EXPECT_NE(std::find(live.begin(), live.end(), disk), live.end())
          << name << " block " << i;
    }
  }
}

}  // namespace
}  // namespace scaddar
