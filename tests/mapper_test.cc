#include "core/mapper.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "random/distributions.h"
#include "random/sequence.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

TEST(MapperTest, EpochZeroIsIdentity) {
  const OpLog log = OpLog::Create(4).value();
  const Mapper mapper(&log);
  for (uint64_t x0 = 0; x0 < 100; ++x0) {
    EXPECT_EQ(mapper.XAfter(x0, 0), x0);
    EXPECT_EQ(mapper.SlotAfter(x0, 0), static_cast<DiskSlot>(x0 % 4));
    EXPECT_EQ(mapper.LocatePhysical(x0), static_cast<PhysicalDiskId>(x0 % 4));
  }
}

TEST(MapperTest, TraceIsConsistentWithPointQueries) {
  OpLog log = OpLog::Create(4).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Remove({1, 3}).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  const Mapper mapper(&log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 11, 64).value();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x0 = seq.Next();
    const Mapper::Trace trace = mapper.TraceChain(x0);
    ASSERT_EQ(trace.x.size(), 4u);
    ASSERT_EQ(trace.slot.size(), 4u);
    ASSERT_EQ(trace.physical.size(), 4u);
    for (Epoch j = 0; j <= 3; ++j) {
      EXPECT_EQ(trace.x[static_cast<size_t>(j)], mapper.XAfter(x0, j));
      EXPECT_EQ(trace.slot[static_cast<size_t>(j)], mapper.SlotAfter(x0, j));
      EXPECT_EQ(trace.physical[static_cast<size_t>(j)],
                mapper.PhysicalAfter(x0, j));
    }
  }
}

TEST(MapperTest, SlotAlwaysWithinEpochRange) {
  OpLog log = OpLog::Create(3).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(5).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Remove({0, 2, 4, 6}).value()).ok());
  const Mapper mapper(&log);
  auto seq = X0Sequence::Create(PrngKind::kPcg32, 13, 32).value();
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x0 = seq.Next();
    for (Epoch j = 0; j <= log.num_ops(); ++j) {
      const DiskSlot slot = mapper.SlotAfter(x0, j);
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, log.disks_after(j));
    }
  }
}

// The paper's RO1 as an *exact* invariant, not a statistical one: across
// any single operation, a block changes physical disks only if the op
// forces it (additions pull blocks only onto new disks; removals push
// blocks only off removed disks).
struct OpSequenceCase {
  int64_t n0;
  std::vector<const char*> ops;
};

class MapperInvariantTest : public ::testing::TestWithParam<OpSequenceCase> {
};

TEST_P(MapperInvariantTest, RO1MoversAreExactlyTheForcedOnes) {
  const auto& param = GetParam();
  OpLog log = OpLog::Create(param.n0).value();
  for (const char* text : param.ops) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok()) << text;
  }
  const Mapper mapper(&log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 17, 64).value();
  for (int i = 0; i < 3000; ++i) {
    const uint64_t x0 = seq.Next();
    for (Epoch j = 1; j <= log.num_ops(); ++j) {
      const ScalingOp& op = log.op(j);
      const PhysicalDiskId before = mapper.PhysicalAfter(x0, j - 1);
      const PhysicalDiskId after = mapper.PhysicalAfter(x0, j);
      if (op.is_add()) {
        if (before != after) {
          // Mover must land on a disk added by THIS operation.
          const std::vector<PhysicalDiskId>& now = log.physical_disks_at(j);
          const int64_t n_prev = log.disks_after(j - 1);
          const std::set<PhysicalDiskId> added(now.begin() + n_prev,
                                               now.end());
          EXPECT_TRUE(added.contains(after))
              << "op " << j << ": moved to old disk " << after;
        }
      } else {
        // Removal: a block moves iff its disk was removed.
        const std::vector<PhysicalDiskId>& prev =
            log.physical_disks_at(j - 1);
        std::set<PhysicalDiskId> removed;
        for (const DiskSlot slot : op.removed_slots()) {
          removed.insert(prev[static_cast<size_t>(slot)]);
        }
        if (removed.contains(before)) {
          EXPECT_NE(before, after);
          EXPECT_FALSE(removed.contains(after));
        } else {
          EXPECT_EQ(before, after)
              << "op " << j << " moved a block off a surviving disk";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpSequences, MapperInvariantTest,
    ::testing::Values(
        OpSequenceCase{4, {"A1"}},
        OpSequenceCase{4, {"A1", "A1", "A1"}},
        OpSequenceCase{6, {"R4"}},
        OpSequenceCase{6, {"R0", "R0", "R0"}},
        OpSequenceCase{4, {"A2", "R1", "A3", "R0,2"}},
        OpSequenceCase{10, {"R1,3,5", "A4", "R0", "A1", "A1"}},
        OpSequenceCase{2, {"A1", "R0", "A2", "R1", "A1"}},
        OpSequenceCase{16, {"A16", "R0,1,2,3,4,5,6,7", "A8"}}));

TEST(MapperTest, UniformityHoldsAfterManyOps) {
  // RO2, statistically: after a mixed op sequence the slot distribution is
  // still uniform (64-bit range, far from exhaustion).
  OpLog log = OpLog::Create(8).value();
  for (const char* text : {"A2", "R3", "A1", "R0,5", "A3"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  const Mapper mapper(&log);
  std::vector<int64_t> counts(static_cast<size_t>(log.current_disks()), 0);
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 19, 64).value();
  for (int i = 0; i < 110000; ++i) {
    ++counts[static_cast<size_t>(mapper.LocateSlot(seq.Next()))];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(MapperTest, DeterministicAcrossIdenticalLogs) {
  const auto build = [] {
    OpLog log = OpLog::Create(5).value();
    SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
    SCADDAR_CHECK(log.Append(ScalingOp::Remove({1}).value()).ok());
    return log;
  };
  const OpLog log_a = build();
  const OpLog log_b = build();
  const Mapper a(&log_a);
  const Mapper b(&log_b);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 23, 64).value();
  for (int i = 0; i < 2000; ++i) {
    const uint64_t x0 = seq.Next();
    EXPECT_EQ(a.LocatePhysical(x0), b.LocatePhysical(x0));
  }
}

TEST(MapperTest, SerializedLogYieldsIdenticalPlacement) {
  OpLog log = OpLog::Create(7).value();
  for (const char* text : {"A3", "R2,8", "A1"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  const OpLog restored = OpLog::Deserialize(log.Serialize()).value();
  const Mapper original(&log);
  const Mapper roundtrip(&restored);
  auto seq = X0Sequence::Create(PrngKind::kLcg48, 29, 48).value();
  for (int i = 0; i < 2000; ++i) {
    const uint64_t x0 = seq.Next();
    EXPECT_EQ(original.LocatePhysical(x0), roundtrip.LocatePhysical(x0));
  }
}

TEST(MapperDeathTest, EpochOutOfRangeAborts) {
  const OpLog log = OpLog::Create(4).value();
  const Mapper mapper(&log);
  EXPECT_DEATH(mapper.XAfter(0, 1), "SCADDAR_CHECK");
  EXPECT_DEATH(mapper.XAfter(0, -1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
