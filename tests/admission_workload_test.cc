#include <set>

#include <gtest/gtest.h>

#include "server/admission.h"
#include "server/workload.h"
#include "stats/accumulator.h"

namespace scaddar {
namespace {

TEST(AdmissionTest, CapacityComputation) {
  const AdmissionController admission(0.85);
  EXPECT_EQ(admission.CapacityFor(100), 85);
  EXPECT_EQ(admission.CapacityFor(0), 0);
  EXPECT_EQ(admission.CapacityFor(7), 5);  // floor(5.95).
}

TEST(AdmissionTest, AdmitsBelowCapRejectsAbove) {
  AdmissionController admission(0.5);
  EXPECT_TRUE(admission.Admit(/*active_load=*/0, /*rate=*/1,
                              /*bandwidth=*/10));
  EXPECT_TRUE(admission.Admit(4, 1, 10));
  EXPECT_FALSE(admission.Admit(5, 1, 10));
  EXPECT_FALSE(admission.Admit(100, 1, 10));
  EXPECT_EQ(admission.admitted(), 2);
  EXPECT_EQ(admission.rejected(), 2);
}

TEST(AdmissionTest, FullUtilizationCap) {
  AdmissionController admission(1.0);
  EXPECT_TRUE(admission.Admit(9, 1, 10));
  EXPECT_FALSE(admission.Admit(10, 1, 10));
}

TEST(AdmissionTest, HighRateStreamsConsumeMoreBudget) {
  AdmissionController admission(1.0);
  // A rate-4 stream needs 4 free units: fits at load 6, not at load 7.
  EXPECT_TRUE(admission.Admit(6, 4, 10));
  EXPECT_FALSE(admission.Admit(7, 4, 10));
  // A rate-1 stream still fits at load 7.
  EXPECT_TRUE(admission.Admit(7, 1, 10));
}

TEST(AdmissionDeathTest, InvalidCapAborts) {
  EXPECT_DEATH(AdmissionController(0.0), "SCADDAR_CHECK");
  EXPECT_DEATH(AdmissionController(1.5), "SCADDAR_CHECK");
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  WorkloadGenerator a(7, 3.0, 0.729);
  WorkloadGenerator b(7, 3.0, 0.729);
  a.SetObjects({10, 20, 30});
  b.SetObjects({10, 20, 30});
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(a.NextArrivals(), b.NextArrivals());
  }
}

TEST(WorkloadTest, ArrivalRateMatchesPoissonMean) {
  WorkloadGenerator generator(11, 2.5, 0.0);
  generator.SetObjects({1, 2, 3, 4});
  Accumulator acc;
  for (int round = 0; round < 20000; ++round) {
    acc.Add(static_cast<double>(generator.NextArrivals().size()));
  }
  EXPECT_NEAR(acc.mean(), 2.5, 0.05);
}

TEST(WorkloadTest, OnlyRegisteredObjectsRequested) {
  WorkloadGenerator generator(13, 5.0, 1.0);
  generator.SetObjects({100, 200, 300});
  const std::set<ObjectId> valid = {100, 200, 300};
  for (int round = 0; round < 200; ++round) {
    for (const ObjectId id : generator.NextArrivals()) {
      EXPECT_TRUE(valid.contains(id));
    }
  }
}

TEST(WorkloadTest, ZipfSkewsTowardFirstObject) {
  WorkloadGenerator generator(17, 10.0, 1.2);
  generator.SetObjects({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  int64_t first = 0;
  int64_t last = 0;
  for (int round = 0; round < 5000; ++round) {
    for (const ObjectId id : generator.NextArrivals()) {
      first += id == 1 ? 1 : 0;
      last += id == 10 ? 1 : 0;
    }
  }
  EXPECT_GT(first, 4 * last);
}

TEST(WorkloadTest, ZeroArrivalRateProducesNothing) {
  WorkloadGenerator generator(19, 0.0, 0.5);
  generator.SetObjects({1});
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(generator.NextArrivals().empty());
  }
}

}  // namespace
}  // namespace scaddar
