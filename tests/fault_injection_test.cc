// Deterministic fault-injection coverage: the schedule engine itself, the
// write-ahead move journal, and the headline guarantee — a crash at ANY
// phase boundary of ANY journaled move recovers to a placement byte-
// identical to the uninterrupted run, on every serving path.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "faults/injector.h"
#include "server/scenario.h"
#include "server/server.h"
#include "storage/move_journal.h"

namespace scaddar {
namespace {

// ---------------------------------------------------------------------------
// FaultSchedule: serialization + determinism.

TEST(FaultScheduleTest, SerializationRoundTrips) {
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kCrash,
                          .round = -1,
                          .move = 7,
                          .phase = MovePhase::kCopyLogged});
  schedule.Add(FaultEvent{.kind = FaultKind::kDiskFail, .round = 12,
                          .disk = 3});
  schedule.Add(FaultEvent{.kind = FaultKind::kTransientError,
                          .round = -1,
                          .disk = -1,
                          .probability = 0.125});
  schedule.Add(FaultEvent{.kind = FaultKind::kHook, .round = 4, .move = 2});
  const StatusOr<FaultSchedule> parsed =
      FaultSchedule::Deserialize(schedule.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, schedule);
}

TEST(FaultScheduleTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FaultSchedule::Deserialize("").ok());
  EXPECT_FALSE(FaultSchedule::Deserialize("wrong-header\n").ok());
  EXPECT_FALSE(FaultSchedule::Deserialize("faults-v1\ncrash 1 2 9\n").ok());
  EXPECT_FALSE(
      FaultSchedule::Deserialize("faults-v1\ntransient 1 0 1.5\n").ok());
  EXPECT_FALSE(FaultSchedule::Deserialize("faults-v1\nbogus 1\n").ok());
  // Comments and blank lines are fine.
  EXPECT_TRUE(FaultSchedule::Deserialize("# note\nfaults-v1\n\nhook 1 0\n")
                  .ok());
}

TEST(FaultScheduleTest, BackendLinesRoundTripAndRejectMalformedFields) {
  // Round trip both backend fault kinds through the text form.
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kBackendError,
                          .round = -1,
                          .disk = 2,
                          .probability = 0.25,
                          .backend = BackendFaultKind::kEio});
  schedule.Add(FaultEvent{.kind = FaultKind::kBackendError,
                          .round = 9,
                          .disk = -1,
                          .probability = 1.0,
                          .backend = BackendFaultKind::kShort});
  const StatusOr<FaultSchedule> parsed =
      FaultSchedule::Deserialize(schedule.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, schedule);

  // Malformed fields must be rejected with a clear error, never silently
  // ignored: bad kind token, out-of-range/NaN probability, non-numeric
  // disk or round, wrong arity.
  const auto reject = [](std::string_view line) {
    const StatusOr<FaultSchedule> bad = FaultSchedule::Deserialize(
        "faults-v1\n" + std::string(line) + "\n");
    EXPECT_FALSE(bad.ok()) << "accepted: " << line;
    if (!bad.ok()) {
      EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(bad.status().message().empty());
    }
  };
  reject("backend -1 0 eio 1.5");     // Probability above 1.
  reject("backend -1 0 eio -0.25");   // Probability below 0.
  reject("backend -1 0 eio nan");     // NaN fails the range check too.
  reject("backend -1 0 torn 0.5");    // Unknown fault kind token.
  reject("backend -1 disk3 eio 0.5"); // Non-numeric disk.
  reject("backend oops 0 eio 0.5");   // Non-numeric round.
  reject("backend -1 0 eio");         // Missing probability.
  reject("backend -1 0 eio 0.5 9");   // Trailing junk.
  // The transient line shares the probability validation.
  reject("transient -1 0 nan");
}

TEST(FaultScheduleTest, SnapshotLinesRoundTrip) {
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kSnapshotCrash,
                          .move = 3,
                          .snapshot_phase = SnapshotPhase::kPrimaryWritten});
  schedule.Add(FaultEvent{.kind = FaultKind::kSnapshotCorrupt,
                          .move = 5,
                          .disk = 1});
  const StatusOr<FaultSchedule> parsed =
      FaultSchedule::Deserialize(schedule.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, schedule);
  EXPECT_FALSE(
      FaultSchedule::Deserialize("faults-v1\nsnapcrash 0 3\n").ok());
  EXPECT_FALSE(
      FaultSchedule::Deserialize("faults-v1\nsnapcorrupt 0\n").ok());
}

TEST(FaultScheduleTest, RandomSchedulesAreSeedDeterministic) {
  RandomScheduleOptions options;
  options.crashes = 3;
  options.disk_failures = 2;
  options.transient_probability = 0.05;
  const FaultSchedule a = FaultSchedule::Random(42, options);
  const FaultSchedule b = FaultSchedule::Random(42, options);
  const FaultSchedule c = FaultSchedule::Random(43, options);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.num_events(), 6);
  // Disk failures respect the spacing floor.
  int64_t last_round = -1;
  for (const FaultEvent& event : a.events()) {
    if (event.kind != FaultKind::kDiskFail) {
      continue;
    }
    if (last_round >= 0) {
      EXPECT_GE(event.round, last_round + options.failure_spacing);
    }
    last_round = event.round;
  }
}

TEST(FaultInjectorTest, CrashAndHookEventsAreOneShot) {
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kCrash,
                          .round = -1,
                          .move = 1,
                          .phase = MovePhase::kIntentLogged});
  schedule.Add(FaultEvent{.kind = FaultKind::kHook, .round = -1, .move = 0});
  FaultInjector injector(schedule);
  int hook_calls = 0;
  injector.SetHook([&] { ++hook_calls; });
  injector.BeginRound(0);
  injector.BeginMove();  // Ordinal 0: hook fires.
  EXPECT_EQ(hook_calls, 1);
  EXPECT_FALSE(injector.CrashAt(MovePhase::kIntentLogged));
  injector.BeginMove();  // Ordinal 1: crash arms here.
  EXPECT_FALSE(injector.CrashAt(MovePhase::kCopyStaged));  // Wrong phase.
  EXPECT_TRUE(injector.CrashAt(MovePhase::kIntentLogged));
  // Disarmed: the same (move, phase) never fires again, even after a
  // post-recovery ordinal reset replays the same sequence.
  injector.ResetMoveCount();
  injector.BeginMove();
  injector.BeginMove();
  EXPECT_FALSE(injector.CrashAt(MovePhase::kIntentLogged));
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(injector.crashes_fired(), 1);
  EXPECT_EQ(injector.hooks_fired(), 1);
}

TEST(FaultInjectorTest, DiskFailuresFireOnlyInTheirRound) {
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kDiskFail, .round = 5,
                          .disk = 2});
  schedule.Add(FaultEvent{.kind = FaultKind::kDiskFail, .round = 5,
                          .disk = 4});
  FaultInjector injector(schedule);
  injector.BeginRound(4);
  EXPECT_TRUE(injector.TakeDiskFailures().empty());
  injector.BeginRound(5);
  EXPECT_EQ(injector.TakeDiskFailures(),
            (std::vector<PhysicalDiskId>{2, 4}));
  EXPECT_TRUE(injector.TakeDiskFailures().empty());  // Consumed.
}

TEST(FaultInjectorTest, TransientErrorsAreSeedDeterministic) {
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kTransientError,
                          .round = -1,
                          .disk = -1,
                          .probability = 0.5});
  const auto draw = [&](uint64_t seed) {
    FaultInjector injector(schedule, seed);
    injector.BeginRound(0);
    std::vector<bool> hits;
    for (int i = 0; i < 64; ++i) {
      hits.push_back(injector.FailTransfer(0, 1));
    }
    return hits;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

// ---------------------------------------------------------------------------
// MoveJournal: WAL mechanics and recovery semantics.

TEST(MoveJournalTest, PhasesAdvanceAndCompactDropsCommittedPrefix) {
  MoveJournal journal;
  const int64_t a = journal.Begin(BlockRef{1, 0}, 0, 2);
  const int64_t b = journal.Begin(BlockRef{1, 1}, 1, 3);
  EXPECT_EQ(journal.pending(), 2);
  journal.MarkCopied(a);
  journal.MarkCommitted(a);
  EXPECT_EQ(journal.pending(), 1);
  journal.Compact();
  ASSERT_EQ(journal.size(), 1);
  EXPECT_EQ(journal.entries().front().id, b);
  // Ids keep increasing after compaction.
  EXPECT_GT(journal.Begin(BlockRef{2, 0}, 0, 1), b);
}

TEST(MoveJournalTest, SerializationRoundTrips) {
  MoveJournal journal;
  const int64_t a = journal.Begin(BlockRef{9, 3}, 1, 4);
  journal.Begin(BlockRef{9, 4}, 2, 5);
  journal.MarkCopied(a);
  const StatusOr<MoveJournal> parsed =
      MoveJournal::Deserialize(journal.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->entries(), journal.entries());
  EXPECT_EQ(parsed->pending(), journal.pending());
  EXPECT_FALSE(MoveJournal::Deserialize("").ok());
  EXPECT_FALSE(MoveJournal::Deserialize("moves-v1\nmove 0 1 0 0 2 7\n").ok());
}

// A tiny store with one 4-block object spread over disks 0..3.
BlockStore MakeStore() {
  BlockStore store;
  SCADDAR_CHECK(store.PlaceObject(7, {0, 1, 2, 3}).ok());
  return store;
}

TEST(MoveJournalTest, RecoverDiscardsBareIntents) {
  BlockStore store = MakeStore();
  MoveJournal journal;
  journal.Begin(BlockRef{7, 0}, 0, 2);  // Crash before any durable copy.
  const StatusOr<JournalRecoveryStats> stats = journal.Recover(store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->discarded_intents, 1);
  EXPECT_EQ(journal.pending(), 0);
  EXPECT_EQ(store.LocationOf(BlockRef{7, 0}).value(), 0);  // Untouched.
}

TEST(MoveJournalTest, RecoverReleasesOrphanStagedCopies) {
  BlockStore store = MakeStore();
  MoveJournal journal;
  journal.Begin(BlockRef{7, 0}, 0, 2);
  // Crash landed between StageCopy and the copied record: durable stage,
  // journal still says kIntent.
  ASSERT_TRUE(store.StageCopy(BlockRef{7, 0}, 2).ok());
  const StatusOr<JournalRecoveryStats> stats = journal.Recover(store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->discarded_intents, 1);
  EXPECT_EQ(stats->orphan_stages_released, 1);
  EXPECT_EQ(store.staged_blocks(), 0);
  EXPECT_EQ(store.LocationOf(BlockRef{7, 0}).value(), 0);
}

TEST(MoveJournalTest, RecoverRollsCopiedEntriesForward) {
  BlockStore store = MakeStore();
  MoveJournal journal;
  const int64_t id = journal.Begin(BlockRef{7, 1}, 1, 3);
  ASSERT_TRUE(store.StageCopy(BlockRef{7, 1}, 3).ok());
  journal.MarkCopied(id);
  // Crash after the copied record, before the flip.
  const StatusOr<JournalRecoveryStats> stats = journal.Recover(store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rolled_forward, 1);
  EXPECT_EQ(store.LocationOf(BlockRef{7, 1}).value(), 3);
  EXPECT_EQ(store.staged_blocks(), 0);
  // Idempotent: a second recovery finds nothing to do.
  const StatusOr<JournalRecoveryStats> again = journal.Recover(store);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->scanned, 0);
}

TEST(MoveJournalTest, RecoverRecognizesDurableFlips) {
  BlockStore store = MakeStore();
  MoveJournal journal;
  const int64_t id = journal.Begin(BlockRef{7, 2}, 2, 0);
  ASSERT_TRUE(store.StageCopy(BlockRef{7, 2}, 0).ok());
  journal.MarkCopied(id);
  ASSERT_TRUE(store.CommitStagedMove(BlockRef{7, 2}, 2, 0).ok());
  // Crash after the flip, before the commit record.
  const StatusOr<JournalRecoveryStats> stats = journal.Recover(store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->already_applied, 1);
  EXPECT_EQ(store.LocationOf(BlockRef{7, 2}).value(), 0);
  EXPECT_EQ(journal.pending(), 0);
}

TEST(MoveJournalTest, StagedCopiesFailPolicyVerification) {
  BlockStore store = MakeStore();
  ASSERT_TRUE(store.StageCopy(BlockRef{7, 0}, 2).ok());
  EXPECT_EQ(store.staged_blocks(), 1);
  EXPECT_EQ(store.StagedTarget(BlockRef{7, 0}).value(), 2);
  // Double-stage and commit-from-wrong-source are refused.
  EXPECT_FALSE(store.StageCopy(BlockRef{7, 0}, 3).ok());
  EXPECT_FALSE(store.CommitStagedMove(BlockRef{7, 0}, 1, 2).ok());
  ASSERT_TRUE(store.AbortStagedCopy(BlockRef{7, 0}).ok());
  EXPECT_EQ(store.staged_blocks(), 0);
}

// ---------------------------------------------------------------------------
// The crash-point matrix: ~100 seeded schedules x {scale-up, scale-down,
// failure-removal}, killed at every journal phase, restarted, and required
// to land byte-identical to the uninterrupted twin — per serving path.

enum class MatrixOp { kScaleUp, kScaleDown, kFailureRemoval };

std::unique_ptr<CmServer> MakeMatrixServer(ServingPath path, uint64_t seed) {
  ServerConfig config;
  config.initial_disks = 5;
  config.master_seed = seed;
  config.serving_path = path;
  config.journal_migration = true;
  auto server = std::move(CmServer::Create(config)).value();
  SCADDAR_CHECK(server->AddObject(1, 150).ok());
  SCADDAR_CHECK(server->AddObject(2, 90).ok());
  SCADDAR_CHECK(server->AddObject(3, 60).ok());
  return server;
}

void ApplyMatrixOp(CmServer& server, MatrixOp op) {
  switch (op) {
    case MatrixOp::kScaleUp:
      ASSERT_TRUE(server.ScaleAdd(2).ok());
      break;
    case MatrixOp::kScaleDown:
      ASSERT_TRUE(server.ScaleRemove({1, 3}).ok());
      break;
    case MatrixOp::kFailureRemoval:
      // An unplanned failure enters the op log as a single-slot removal
      // (Section 5's failure handling); the drain then rebuilds from the
      // survivors.
      ASSERT_TRUE(server.ScaleRemove({2}).ok());
      break;
  }
}

// Placement fingerprint: every object's full materialized row.
std::map<ObjectId, std::vector<PhysicalDiskId>> Placement(
    const CmServer& server) {
  std::map<ObjectId, std::vector<PhysicalDiskId>> out;
  for (const ObjectId id : server.catalog().object_ids()) {
    const auto row = server.store().LocationsOf(id).value();
    out[id] = std::vector<PhysicalDiskId>(row.begin(), row.end());
  }
  return out;
}

// Ticks until the migration drains, restarting the server whenever an
// injected crash kills it.
void DrainWithRestarts(CmServer& server) {
  int64_t guard = 0;
  while (!server.migration().idle() || server.crashed()) {
    if (server.crashed()) {
      const StatusOr<JournalRecoveryStats> stats =
          server.SimulateCrashRestart();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    server.Tick();
    ASSERT_LT(++guard, 100000) << "drain did not converge";
  }
}

class CrashMatrixTest : public ::testing::TestWithParam<ServingPath> {};

TEST_P(CrashMatrixTest, EveryCrashPointRecoversToIdenticalPlacement) {
  const ServingPath path = GetParam();
  constexpr uint64_t kSeeds[] = {0xc0a1, 0xc0a2, 0xc0a3, 0xc0a4,
                                 0xc0a5, 0xc0a6, 0xc0a7};
  constexpr MatrixOp kOps[] = {MatrixOp::kScaleUp, MatrixOp::kScaleDown,
                               MatrixOp::kFailureRemoval};
  int64_t crashes_exercised = 0;
  for (const uint64_t seed : kSeeds) {
    for (const MatrixOp op : kOps) {
      // The uninterrupted twin defines the expected final placement.
      auto twin = MakeMatrixServer(path, seed);
      ApplyMatrixOp(*twin, op);
      DrainWithRestarts(*twin);
      const auto expected = Placement(*twin);
      const auto expected_counts = twin->store().per_disk_counts();

      for (int phase = 0; phase < kNumMovePhases; ++phase) {
        auto server = MakeMatrixServer(path, seed);
        FaultSchedule schedule;
        schedule.Add(FaultEvent{
            .kind = FaultKind::kCrash,
            .round = -1,
            // Spread crash ordinals over the migration's lifetime; every
            // (seed, op, phase) triple is a distinct schedule.
            .move = static_cast<int64_t>((seed + 5 * phase) % 37),
            .phase = static_cast<MovePhase>(phase)});
        FaultInjector injector(schedule, seed);
        server->AttachFaultInjector(&injector);
        ApplyMatrixOp(*server, op);
        DrainWithRestarts(*server);
        crashes_exercised += injector.crashes_fired();

        EXPECT_EQ(Placement(*server), expected)
            << "seed " << seed << " op " << static_cast<int>(op)
            << " phase " << phase;
        EXPECT_EQ(server->store().per_disk_counts(), expected_counts);
        EXPECT_EQ(server->store().staged_blocks(), 0);
        EXPECT_EQ(server->journal().pending(), 0);
        EXPECT_TRUE(server->VerifyIntegrity().ok());
      }
    }
  }
  // The matrix must actually exercise crashes, not schedules that never
  // fire (the ordinal formula keeps most within the migration's length).
  EXPECT_GT(crashes_exercised, 50);
}

INSTANTIATE_TEST_SUITE_P(ServingPaths, CrashMatrixTest,
                         ::testing::Values(ServingPath::kBatchCursor,
                                           ServingPath::kStoreScalar,
                                           ServingPath::kPolicyScalar));

// ---------------------------------------------------------------------------
// Crash-during-streaming: the recovery contract holds with live streams
// (which die with the process) and the serving path running each round.

TEST(CrashRecoveryTest, StreamsDieButPlacementConverges) {
  ServerConfig config;
  config.initial_disks = 6;
  config.master_seed = 0xbeef;
  config.journal_migration = true;
  auto server = std::move(CmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 400).ok());
  ASSERT_TRUE(server->StartStream(1).ok());

  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kCrash,
                          .round = -1,
                          .move = 9,
                          .phase = MovePhase::kCopyLogged});
  FaultInjector injector(schedule, 0xbeef);
  server->AttachFaultInjector(&injector);

  ASSERT_TRUE(server->ScaleAdd(2).ok());
  while (!server->crashed()) {
    server->Tick();
  }
  EXPECT_EQ(injector.crashes_fired(), 1);
  // The crashed process ignores ticks.
  const int64_t round_before = server->round();
  server->Tick();
  EXPECT_EQ(server->round(), round_before);

  const StatusOr<JournalRecoveryStats> stats = server->SimulateCrashRestart();
  ASSERT_TRUE(stats.ok());
  // The interrupted move was either rolled forward or discarded; either
  // way exactly one entry was in flight.
  EXPECT_EQ(stats->scanned, 1);
  EXPECT_EQ(server->active_streams(), 0);  // Streams are volatile.
  DrainWithRestarts(*server);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

// ---------------------------------------------------------------------------
// Epoch guard: a scaling operation racing a migration round (injected via a
// hook at a move boundary) forces the remaining moves to re-plan; no move
// may target the superseded epoch's AF().

TEST(EpochGuardTest, MidRoundScalingOpRetargetsRemainingMoves) {
  ServerConfig config;
  config.initial_disks = 4;
  config.master_seed = 0x39a2;
  config.journal_migration = true;
  auto server = std::move(CmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 300).ok());

  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kHook, .round = -1, .move = 3});
  FaultInjector injector(schedule, 0x39a2);
  server->AttachFaultInjector(&injector);
  int64_t journal_size_at_hook = -1;
  injector.SetHook([&] {
    journal_size_at_hook = server->journal().size();
    // A second scaling operation lands while round moves are executing.
    ASSERT_TRUE(server->ScaleAdd(1).ok());
  });

  ASSERT_TRUE(server->ScaleAdd(1).ok());
  DrainWithRestarts(*server);
  ASSERT_EQ(injector.hooks_fired(), 1);
  ASSERT_GE(journal_size_at_hook, 0);
  EXPECT_TRUE(server->VerifyIntegrity().ok());

  // Every move journaled after the racing op committed must have targeted
  // the new epoch's AF() — re-planned, not executed against stale targets.
  const auto& entries = server->journal().entries();
  int64_t checked = 0;
  for (const JournalEntry& entry : entries) {
    if (entry.id < journal_size_at_hook) {
      continue;
    }
    EXPECT_EQ(entry.to,
              server->policy().Locate(entry.block.object, entry.block.block))
        << "move " << entry.id << " targeted a stale epoch";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// ---------------------------------------------------------------------------
// Transient migration errors: refused transfers burn bandwidth, re-queue,
// and the migration still converges exactly.

TEST(TransientErrorTest, MigrationConvergesThroughInjectedErrors) {
  ServerConfig config;
  config.initial_disks = 5;
  config.master_seed = 0x7e57;
  config.journal_migration = true;
  auto server = std::move(CmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 350).ok());

  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kTransientError,
                          .round = -1,
                          .disk = -1,
                          .probability = 0.3});
  FaultInjector injector(schedule, 0x7e57);
  server->AttachFaultInjector(&injector);

  ASSERT_TRUE(server->ScaleAdd(2).ok());
  DrainWithRestarts(*server);
  EXPECT_GT(server->migration().transient_errors(), 0);
  EXPECT_EQ(server->migration().transient_errors(),
            injector.transient_errors_fired());
  // Both endpoint disks record each refused transfer.
  int64_t recorded = 0;
  for (const PhysicalDiskId id : server->disks().live_ids()) {
    recorded += server->disks().GetDisk(id).value()->transient_errors();
  }
  EXPECT_EQ(recorded, 2 * server->migration().transient_errors());
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

// ---------------------------------------------------------------------------
// The chaos-soak scenario script (scenarios/chaos_soak.scn mirrors this
// flow) driven through the scenario interpreter's `crash` command.

TEST(ScenarioCrashTest, CrashCommandRecoversMidScript) {
  ServerConfig config;
  config.initial_disks = 6;
  config.master_seed = 0x50a7;
  config.journal_migration = true;
  auto server = std::move(CmServer::Create(config)).value();
  const StatusOr<ScenarioResult> result = RunScenario(*server, R"(
addobject 1 500
stream 1
scale add 2
tick 2
crash
drain
verify
scale remove 1
tick 1
crash
crash
drain
verify
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->crashes, 3);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace scaddar
