#include "faults/mirror.h"

#include <gtest/gtest.h>

#include "random/sequence.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(MirrorOffsetTest, PaperFormula) {
  EXPECT_EQ(MirroredPlacement::MirrorOffset(2), 1);
  EXPECT_EQ(MirroredPlacement::MirrorOffset(3), 1);
  EXPECT_EQ(MirroredPlacement::MirrorOffset(8), 4);   // f(N) = N/2.
  EXPECT_EQ(MirroredPlacement::MirrorOffset(9), 4);
  EXPECT_EQ(MirroredPlacement::MirrorOffset(100), 50);
}

TEST(MirrorTest, MirrorIsAlwaysOnDifferentDisk) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 2000)).ok());
  const MirroredPlacement mirror(&policy);
  for (BlockIndex i = 0; i < 2000; ++i) {
    EXPECT_NE(mirror.PrimaryOf(1, i), mirror.MirrorOf(1, i)) << i;
  }
}

TEST(MirrorTest, MirrorDistinctEvenWithTwoDisks) {
  ScaddarPolicy policy(2);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(2, 200)).ok());
  const MirroredPlacement mirror(&policy);
  for (BlockIndex i = 0; i < 200; ++i) {
    EXPECT_NE(mirror.PrimaryOf(1, i), mirror.MirrorOf(1, i));
  }
}

TEST(MirrorTest, MirrorSlotFollowsOffsetFormula) {
  ScaddarPolicy policy(9);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 500)).ok());
  const MirroredPlacement mirror(&policy);
  for (BlockIndex i = 0; i < 500; ++i) {
    EXPECT_EQ(mirror.MirrorSlot(1, i),
              (mirror.PrimarySlot(1, i) + 4) % 9);
  }
}

TEST(MirrorTest, ReadPrefersHealthyPrimary) {
  ScaddarPolicy policy(6);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(4, 100)).ok());
  const MirroredPlacement mirror(&policy);
  const std::unordered_set<PhysicalDiskId> no_failures;
  for (BlockIndex i = 0; i < 100; ++i) {
    EXPECT_EQ(*mirror.LocateForRead(1, i, no_failures),
              mirror.PrimaryOf(1, i));
  }
}

TEST(MirrorTest, SingleDiskFailureIsFullyMasked) {
  ScaddarPolicy policy(6);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(5, 3000)).ok());
  const MirroredPlacement mirror(&policy);
  for (PhysicalDiskId failed = 0; failed < 6; ++failed) {
    const std::unordered_set<PhysicalDiskId> failures = {failed};
    for (BlockIndex i = 0; i < 3000; ++i) {
      const StatusOr<PhysicalDiskId> read = mirror.LocateForRead(1, i, failures);
      ASSERT_TRUE(read.ok()) << "disk " << failed << " block " << i;
      EXPECT_NE(*read, failed);
    }
  }
}

TEST(MirrorTest, OppositeFailurePairLosesBlocks) {
  // Failing a disk AND its mirror offset partner must lose exactly the
  // blocks whose two copies sat on that pair.
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(6, 4000)).ok());
  const MirroredPlacement mirror(&policy);
  const std::unordered_set<PhysicalDiskId> failures = {0, 4};  // Offset 4.
  int64_t lost = 0;
  for (BlockIndex i = 0; i < 4000; ++i) {
    if (!mirror.LocateForRead(1, i, failures).ok()) {
      ++lost;
    }
  }
  // Blocks with primary on 0 (mirror 4) or primary on 4 (mirror 0):
  // expected 2/8 of all blocks.
  EXPECT_NEAR(static_cast<double>(lost) / 4000.0, 0.25, 0.03);
}

TEST(MirrorTest, MirroredLoadIsStillBalanced) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(7, 40000)).ok());
  const MirroredPlacement mirror(&policy);
  const std::vector<int64_t> counts = mirror.PerDiskCountsWithMirrors();
  int64_t total = 0;
  for (const int64_t count : counts) {
    total += count;
  }
  EXPECT_EQ(total, 80000);  // Exactly 2x storage.
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(MirrorTest, SurvivesScalingOperations) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(8, 2000)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(3).value()).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2}).value()).ok());
  const MirroredPlacement mirror(&policy);
  for (BlockIndex i = 0; i < 2000; ++i) {
    EXPECT_NE(mirror.PrimaryOf(1, i), mirror.MirrorOf(1, i));
  }
}

}  // namespace
}  // namespace scaddar
