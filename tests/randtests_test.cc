#include "stats/randtests.h"

#include <gtest/gtest.h>

#include "random/prng.h"

namespace scaddar {
namespace {

std::vector<uint64_t> Draw(PrngKind kind, uint64_t seed, int64_t n) {
  auto prng = MakePrng(kind, seed);
  std::vector<uint64_t> words;
  words.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    words.push_back(prng->Next());
  }
  return words;
}

class RandTestsPrngTest : public ::testing::TestWithParam<PrngKind> {};

TEST_P(RandTestsPrngTest, PassesMonobit) {
  auto prng = MakePrng(GetParam(), 0x5eedull);
  const std::vector<uint64_t> words = Draw(GetParam(), 0x5eed, 20000);
  const RandTestResult result = MonobitTest(words, prng->bits());
  EXPECT_TRUE(result.Passes(0.001)) << "p=" << result.p_value;
}

TEST_P(RandTestsPrngTest, PassesRunsTest) {
  auto prng = MakePrng(GetParam(), 0xabcdull);
  const std::vector<uint64_t> words = Draw(GetParam(), 0xabcd, 20000);
  const RandTestResult result = RunsTest(words, prng->bits());
  EXPECT_TRUE(result.Passes(0.001)) << "p=" << result.p_value;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, RandTestsPrngTest,
                         ::testing::Values(PrngKind::kSplitMix64,
                                           PrngKind::kXoshiro256,
                                           PrngKind::kLcg48,
                                           PrngKind::kPcg32),
                         [](const auto& info) {
                           return std::string(PrngKindName(info.param));
                         });

TEST(RandTestsPrngTest, SerialCorrelationOfFullWidthGenerators) {
  // Serial correlation of whole-word values: meaningful for 64-bit
  // generators (an LCG's raw consecutive states are famously correlated;
  // its 48-bit variant passes at word level but we only claim the test
  // for the mixers we default to).
  for (const PrngKind kind :
       {PrngKind::kSplitMix64, PrngKind::kXoshiro256}) {
    const std::vector<uint64_t> words = Draw(kind, 0x1122, 50000);
    const RandTestResult result = SerialCorrelationTest(words);
    EXPECT_TRUE(result.Passes(0.001))
        << PrngKindName(kind) << " p=" << result.p_value;
  }
}

TEST(RandTestsTest, AllOnesFailsMonobit) {
  const std::vector<uint64_t> words(1000, ~uint64_t{0});
  EXPECT_FALSE(MonobitTest(words, 64).Passes(0.01));
}

TEST(RandTestsTest, AlternatingBitsFailRunsTest) {
  // 0b0101... has a perfect monobit score but far too many runs.
  const std::vector<uint64_t> words(1000, 0x5555555555555555ull);
  EXPECT_TRUE(MonobitTest(words, 64).Passes(0.01));
  EXPECT_FALSE(RunsTest(words, 64).Passes(0.01));
}

TEST(RandTestsTest, MonotoneSequenceFailsSerialCorrelation) {
  std::vector<uint64_t> words;
  for (uint64_t i = 0; i < 5000; ++i) {
    words.push_back(i << 40);
  }
  EXPECT_FALSE(SerialCorrelationTest(words).Passes(0.01));
}

TEST(RandTestsTest, ConstantSequenceHandledGracefully) {
  const std::vector<uint64_t> words(100, 42);
  const RandTestResult result = SerialCorrelationTest(words);
  EXPECT_FALSE(result.Passes(0.01));  // Degenerate variance -> reject.
}

}  // namespace
}  // namespace scaddar
