// Multi-level checkpoint/restart coverage: the checksummed snapshot
// format, the CheckpointManager's L1/L2 write and fallback-load paths
// (torn sets, corrupted fragments, whole-location loss), and the headline
// guarantee — a kill/restart mid-traffic loses no committed move and lands
// byte-identical to an uninterrupted twin, with streams resuming at their
// saved positions. Cluster-mode capture/restore rides the same format.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_server.h"
#include "faults/injector.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/snapshot.h"
#include "server/scenario.h"
#include "server/server.h"

namespace scaddar {
namespace {

// ---------------------------------------------------------------------------
// Snapshot format: checksummed framing + encode/decode round trips.

TEST(SnapshotFormatTest, ChecksummedFramingRejectsTamperedBytes) {
  const std::string document = WrapChecksummed("test-v1", "hello payload");
  const auto ok = UnwrapChecksummed("test-v1", document);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, "hello payload");

  EXPECT_FALSE(UnwrapChecksummed("other-v1", document).ok());
  std::string flipped = document;
  flipped.back() ^= 0x20;  // Last payload byte.
  EXPECT_FALSE(UnwrapChecksummed("test-v1", flipped).ok());
  std::string truncated = document.substr(0, document.size() - 3);
  EXPECT_FALSE(UnwrapChecksummed("test-v1", truncated).ok());
}

TEST(SnapshotFormatTest, ServerSnapshotRoundTrips) {
  ServerSnapshot snapshot;
  snapshot.policy = "scaddar";
  snapshot.oplog = "oplog text";
  snapshot.journal = "journal text";
  snapshot.objects.push_back(
      SnapshotObject{7, 3, 2, 5, 1, {0, 4, 2}});
  snapshot.staged.emplace_back(BlockRef{7, 1}, 9);
  snapshot.streams.push_back(SnapshotStream{42, 7, 2, 1, 10, 3, true, true});
  snapshot.startup_latencies = {1, 2, 2};
  snapshot.round = 123;
  snapshot.next_stream_id = 43;
  snapshot.completed_streams = 5;
  snapshot.total_served = 999;
  snapshot.total_hiccups = 3;

  const std::string document = EncodeServerSnapshot(snapshot);
  const auto decoded = DecodeServerSnapshot(document);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->policy, snapshot.policy);
  EXPECT_EQ(decoded->oplog, snapshot.oplog);
  EXPECT_EQ(decoded->journal, snapshot.journal);
  ASSERT_EQ(decoded->objects.size(), 1u);
  EXPECT_EQ(decoded->objects[0].row, snapshot.objects[0].row);
  EXPECT_EQ(decoded->staged, snapshot.staged);
  ASSERT_EQ(decoded->streams.size(), 1u);
  EXPECT_EQ(decoded->streams[0], snapshot.streams[0]);
  EXPECT_EQ(decoded->startup_latencies, snapshot.startup_latencies);
  EXPECT_EQ(decoded->round, snapshot.round);
  EXPECT_EQ(decoded->total_served, snapshot.total_served);

  // A flipped byte anywhere must fail the document checksum.
  std::string corrupt = document;
  corrupt[corrupt.size() / 3] ^= 0x01;
  EXPECT_FALSE(DecodeServerSnapshot(corrupt).ok());
}

// ---------------------------------------------------------------------------
// CheckpointManager: write levels, fallback load, redundancy.

TEST(CheckpointManagerTest, NewestValidSetWins) {
  CheckpointManager manager;
  ASSERT_TRUE(manager.Write("set one", 1, 10).ok());
  ASSERT_TRUE(manager.Write("set two", 2, 20).ok());
  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, "set two");
  EXPECT_EQ(loaded->info.level, 2);
  EXPECT_EQ(loaded->info.round, 20);
  EXPECT_EQ(loaded->sets_rejected, 0);
  EXPECT_EQ(manager.stats().l1_written, 1);
  EXPECT_EQ(manager.stats().l2_written, 1);
}

TEST(CheckpointManagerTest, EmptyManagerReportsNotFound) {
  CheckpointManager manager;
  EXPECT_EQ(manager.LoadNewestValid().status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(manager.Write("payload", 3, 0).ok());  // Bad level.
}

TEST(CheckpointManagerTest, CorruptedNewestFallsBackToPreviousSet) {
  CheckpointManager manager;
  ASSERT_TRUE(manager.Write("good", 1, 1).ok());
  ASSERT_TRUE(manager.Write("newer", 1, 2).ok());
  // L1 has no redundancy: corrupting its only fragment kills the set.
  // Walk locations newest-first — `CorruptNewestAt` always prefers the
  // newest set present at a location, so the first success hits "newer".
  bool corrupted = false;
  for (int64_t loc = manager.num_locations() - 1; loc >= 0; --loc) {
    if (manager.CorruptNewestAt(loc).ok()) {
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, "good");
  EXPECT_EQ(loaded->sets_rejected, 1);
}

class RedundancyTest
    : public ::testing::TestWithParam<CheckpointRedundancy> {};

TEST_P(RedundancyTest, LevelTwoSurvivesLossOfAnyOneLocation) {
  // Acceptance criterion: an L2 set restores correctly after deletion of
  // one snapshot location — whichever location it is.
  const std::string payload(1000, 'x');
  for (int64_t victim = 0; victim < 4; ++victim) {
    CheckpointManager manager(
        CheckpointOptions{.num_locations = 4, .redundancy = GetParam()});
    ASSERT_TRUE(manager.Write(payload, 2, 7).ok());
    ASSERT_TRUE(manager.DropLocation(victim).ok());
    const auto loaded = manager.LoadNewestValid();
    ASSERT_TRUE(loaded.ok())
        << "victim " << victim << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->payload, payload) << "victim " << victim;
  }
}

TEST_P(RedundancyTest, LevelTwoSurvivesOneCorruptedFragment) {
  const std::string payload(777, 'y');
  CheckpointManager manager(
      CheckpointOptions{.num_locations = 4, .redundancy = GetParam()});
  ASSERT_TRUE(manager.Write(payload, 2, 7).ok());
  bool corrupted = false;
  for (int64_t loc = 0; loc < manager.num_locations() && !corrupted; ++loc) {
    corrupted = manager.CorruptNewestAt(loc).ok();
  }
  ASSERT_TRUE(corrupted);
  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Schemes, RedundancyTest,
                         ::testing::Values(CheckpointRedundancy::kPartner,
                                           CheckpointRedundancy::kXor));

TEST(CheckpointManagerTest, XorRebuildIsCountedAndTrimmed) {
  // An awkward payload size (not divisible by the piece count) exercises
  // the parity trim path.
  const std::string payload(1001, 'z');
  CheckpointManager manager(CheckpointOptions{
      .num_locations = 5, .redundancy = CheckpointRedundancy::kXor});
  ASSERT_TRUE(manager.Write(payload, 2, 1).ok());
  ASSERT_TRUE(manager.DropLocation(2).ok());
  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, payload);
  EXPECT_EQ(loaded->rebuilt_from_parity,
            manager.stats().parity_rebuilds > 0);
}

TEST(CheckpointManagerTest, ParseRedundancyTokens) {
  EXPECT_EQ(ParseCheckpointRedundancy("partner").value(),
            CheckpointRedundancy::kPartner);
  EXPECT_EQ(ParseCheckpointRedundancy("xor").value(),
            CheckpointRedundancy::kXor);
  EXPECT_FALSE(ParseCheckpointRedundancy("raid6").ok());
}

// ---------------------------------------------------------------------------
// Injected snapshot faults: a kill mid-write leaves a torn set the loader
// rejects; injected fragment corruption is caught by checksum.

TEST(SnapshotFaultTest, KillMidWriteLeavesTornSetAndLoaderFallsBack) {
  CheckpointManager manager(CheckpointOptions{
      .num_locations = 4, .redundancy = CheckpointRedundancy::kXor});
  ASSERT_TRUE(manager.Write("stable", 2, 1).ok());

  FaultSchedule schedule;
  // Ordinals count the *injector's* snapshots: the first write above ran
  // without one, so this write is ordinal 0. It dies after its primary
  // fragment: some fragments are durable, the set recorded but incomplete.
  schedule.Add(FaultEvent{.kind = FaultKind::kSnapshotCrash,
                          .move = 0,
                          .snapshot_phase = SnapshotPhase::kPrimaryWritten});
  FaultInjector injector(schedule);
  const auto written = manager.Write("torn", 2, 2, &injector);
  EXPECT_EQ(written.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(injector.snapshot_crashes_fired(), 1);

  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, "stable");
  EXPECT_EQ(loaded->sets_rejected, 1);
}

TEST(SnapshotFaultTest, KillBeforeAnyFragmentLeavesNothingBehind) {
  CheckpointManager manager;
  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kSnapshotCrash,
                          .move = 0,
                          .snapshot_phase = SnapshotPhase::kCaptured});
  FaultInjector injector(schedule);
  EXPECT_EQ(manager.Write("doomed", 1, 1, &injector).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(manager.LoadNewestValid().status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFaultTest, InjectedCorruptionIsCaughtByChecksum) {
  CheckpointManager manager;
  ASSERT_TRUE(manager.Write("good", 1, 1).ok());
  FaultSchedule schedule;
  // Corrupt whatever fragment snapshot ordinal 0 writes, at any location.
  schedule.Add(FaultEvent{.kind = FaultKind::kSnapshotCorrupt,
                          .move = 0,
                          .disk = -1});
  FaultInjector injector(schedule);
  ASSERT_TRUE(manager.Write("silently damaged", 1, 2, &injector).ok());
  EXPECT_EQ(injector.snapshot_corruptions_fired(), 1);
  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, "good");  // The damaged set was rejected.
  EXPECT_EQ(loaded->sets_rejected, 1);
}

// ---------------------------------------------------------------------------
// Server-level kill/restart: the twin-server oracle.

ServerConfig RecoveryConfig(uint64_t seed) {
  ServerConfig config;
  config.initial_disks = 6;
  config.master_seed = seed;
  config.journal_migration = true;
  return config;
}

// Placement fingerprint: every object's full materialized row.
std::map<ObjectId, std::vector<PhysicalDiskId>> Placement(
    const CmServer& server) {
  std::map<ObjectId, std::vector<PhysicalDiskId>> out;
  for (const ObjectId id : server.catalog().object_ids()) {
    const auto row = server.store().LocationsOf(id).value();
    out[id] = std::vector<PhysicalDiskId>(row.begin(), row.end());
  }
  return out;
}

TEST(KillRestartTest, MidMigrationKillLosesNoCommittedMove) {
  // The uninterrupted twin defines the expected final placement; the
  // killed server must converge to the byte-identical state.
  auto twin = std::move(CmServer::Create(RecoveryConfig(0xabc1))).value();
  auto server = std::move(CmServer::Create(RecoveryConfig(0xabc1))).value();
  CheckpointManager manager;

  for (CmServer* s : {twin.get(), server.get()}) {
    ASSERT_TRUE(s->AddObject(1, 300).ok());
    ASSERT_TRUE(s->AddObject(2, 200).ok());
  }
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 3).ok());

  for (CmServer* s : {twin.get(), server.get()}) {
    ASSERT_TRUE(s->ScaleAdd(2).ok());
    for (int i = 0; i < 4; ++i) {
      s->Tick();  // Part-way into the migration.
    }
  }

  // Kill mid-migration. Committed moves newer than the last checkpoint
  // must be replayed from the journal — none may be lost.
  const auto stats = server->KillRestartFromCheckpoint();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->set_id, 0);

  int64_t guard = 0;
  while (!twin->migration().idle()) {
    twin->Tick();
    ASSERT_LT(++guard, 10'000);
  }
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++guard, 10'000);
  }

  EXPECT_EQ(Placement(*server), Placement(*twin));
  EXPECT_EQ(server->store().per_disk_counts(), twin->store().per_disk_counts());
  EXPECT_EQ(server->store().staged_blocks(), 0);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  EXPECT_TRUE(twin->VerifyIntegrity().ok());
}

TEST(KillRestartTest, RepeatedKillsConvergeAcrossScalingChurn) {
  auto twin = std::move(CmServer::Create(RecoveryConfig(0xabc2))).value();
  auto server = std::move(CmServer::Create(RecoveryConfig(0xabc2))).value();
  CheckpointManager manager(CheckpointOptions{
      .num_locations = 4, .redundancy = CheckpointRedundancy::kXor});

  for (CmServer* s : {twin.get(), server.get()}) {
    ASSERT_TRUE(s->AddObject(1, 250).ok());
    ASSERT_TRUE(s->AddObject(2, 150).ok());
    ASSERT_TRUE(s->AddObject(3, 100).ok());
  }
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 4, 12).ok());

  const auto drive = [](CmServer& s, int op) {
    switch (op) {
      case 0:
        ASSERT_TRUE(s.ScaleAdd(2).ok());
        break;
      case 1:
        ASSERT_TRUE(s.ScaleRemove({1}).ok());
        break;
      case 2:
        ASSERT_TRUE(s.RemoveObject(3).ok());
        break;
    }
    for (int i = 0; i < 6; ++i) {
      s.Tick();
    }
  };
  for (int op = 0; op < 3; ++op) {
    drive(*twin, op);
    drive(*server, op);
    const auto stats = server->KillRestartFromCheckpoint();
    ASSERT_TRUE(stats.ok()) << "op " << op << ": "
                            << stats.status().ToString();
  }
  int64_t guard = 0;
  while (!twin->migration().idle() || !server->migration().idle()) {
    twin->Tick();
    server->Tick();
    ASSERT_LT(++guard, 10'000);
  }
  EXPECT_EQ(Placement(*server), Placement(*twin));
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  EXPECT_GT(manager.stats().l2_written, 0);
}

TEST(KillRestartTest, StreamsResumeAtSavedPositions) {
  auto server = std::move(CmServer::Create(RecoveryConfig(0xabc3))).value();
  CheckpointManager manager;
  ASSERT_TRUE(server->AddObject(1, 500).ok());
  ASSERT_TRUE(server->AddObject(2, 400).ok());
  const int64_t stream_a = server->StartStream(1).value();
  const int64_t stream_b = server->StartStream(2).value();
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 5).ok());
  for (int i = 0; i < 7; ++i) {
    server->Tick();
  }
  // Pause lands before the round-10 checkpoint, so the captured cursor for
  // stream B is frozen mid-object.
  ASSERT_TRUE(server->PauseStream(stream_b).ok());
  for (int i = 0; i < 3; ++i) {
    server->Tick();
  }
  server->Tick();  // Round 11: one past the round-10 checkpoint.

  // Capture the stream cursors as of the last checkpoint by re-reading the
  // newest set directly.
  const auto loaded = manager.LoadNewestValid();
  ASSERT_TRUE(loaded.ok());
  const auto snapshot = DecodeServerSnapshot(loaded->payload);
  ASSERT_TRUE(snapshot.ok());
  std::map<int64_t, SnapshotStream> saved;
  for (const SnapshotStream& s : snapshot->streams) {
    saved[s.id] = s;
  }
  ASSERT_TRUE(saved.contains(stream_a));
  ASSERT_TRUE(saved.contains(stream_b));
  const int64_t served_at_capture = snapshot->total_served;

  const auto stats = server->KillRestartFromCheckpoint();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->streams_restored, 2);

  // Both streams survived the restart at their checkpointed positions.
  ASSERT_EQ(server->active_streams(), 2);
  EXPECT_EQ(server->total_served(), served_at_capture);
  for (const Stream& stream : server->streams()) {
    const SnapshotStream& expect = saved.at(stream.id());
    EXPECT_EQ(stream.next_block(), expect.next_block) << stream.id();
    EXPECT_EQ(stream.paused(), expect.paused) << stream.id();
    EXPECT_EQ(stream.hiccups(), expect.hiccups) << stream.id();
  }
  // Serving continues: the unpaused stream advances, the paused one holds.
  const BlockIndex a_before = saved.at(stream_a).next_block;
  const BlockIndex b_before = saved.at(stream_b).next_block;
  server->Tick();
  for (const Stream& stream : server->streams()) {
    if (stream.id() == stream_a) {
      EXPECT_GT(stream.next_block(), a_before);
    } else {
      EXPECT_EQ(stream.next_block(), b_before);
    }
  }
}

TEST(KillRestartTest, MetadataMutationsSurviveViaBarrierCheckpoints) {
  auto server = std::move(CmServer::Create(RecoveryConfig(0xabc4))).value();
  CheckpointManager manager;
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 1000).ok());
  // No periodic set will be due; the barrier after each metadata mutation
  // must still make it durable immediately.
  ASSERT_TRUE(server->AddObject(1, 120).ok());
  ASSERT_TRUE(server->AddObject(2, 80).ok());
  ASSERT_TRUE(server->RemoveObject(2).ok());
  const auto stats = server->KillRestartFromCheckpoint();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(server->catalog().Contains(1));
  EXPECT_FALSE(server->catalog().Contains(2));
  int64_t guard = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++guard, 10'000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST(KillRestartTest, ColdRestoreBuildsAFreshServer) {
  ServerConfig config = RecoveryConfig(0xabc5);
  auto server = std::move(CmServer::Create(config)).value();
  CheckpointManager manager;
  ASSERT_TRUE(server->AddObject(1, 200).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 5).ok());
  for (int i = 0; i < 10; ++i) {
    server->Tick();
  }
  const auto expected = Placement(*server);

  // The original process is gone; a new one restores from the manager.
  // The restart config carries the periodic-checkpoint knob (the original
  // enabled it programmatically; `config_` does not survive the process).
  server.reset();
  config.checkpoint_every = 5;
  const auto restored = CmServer::RestoreFromCheckpoint(config, manager);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(Placement(**restored), expected);
  EXPECT_EQ((*restored)->active_streams(), 1);
  EXPECT_EQ((*restored)->checkpoint_manager(), &manager);
  // Periodic checkpointing keeps running on the restored server.
  const int64_t sets_before = manager.num_sets();
  for (int i = 0; i < 10; ++i) {
    (*restored)->Tick();
  }
  EXPECT_GT(manager.num_sets(), sets_before);
}

TEST(KillRestartTest, RefusedWithoutManagerAndWithRealIoBackend) {
  auto server = std::move(CmServer::Create(RecoveryConfig(0xabc6))).value();
  EXPECT_EQ(server->KillRestartFromCheckpoint().status().code(),
            StatusCode::kFailedPrecondition);
  // The real-I/O engine persists its own layout + journal (PR 8); the
  // checkpoint tier covers the simulated backend only.
  ASSERT_TRUE(server->SelectBackend("mem").ok());
  CheckpointManager manager;
  EXPECT_EQ(server->AttachCheckpointManager(&manager).code(),
            StatusCode::kFailedPrecondition);
}

TEST(KillRestartTest, SnapshotKillPointMarksServerCrashed) {
  auto server = std::move(CmServer::Create(RecoveryConfig(0xabc7))).value();
  CheckpointManager manager;
  ASSERT_TRUE(server->AddObject(1, 150).ok());

  FaultSchedule schedule;
  // The bootstrap set is ordinal 0; the first periodic set (ordinal 1)
  // dies between capture and its primary fragment.
  schedule.Add(FaultEvent{.kind = FaultKind::kSnapshotCrash,
                          .move = 1,
                          .snapshot_phase = SnapshotPhase::kCaptured});
  FaultInjector injector(schedule);
  server->AttachFaultInjector(&injector);
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 2).ok());

  while (!server->crashed()) {
    server->Tick();
  }
  EXPECT_EQ(injector.snapshot_crashes_fired(), 1);
  const int64_t round_when_killed = server->round();
  server->Tick();  // A crashed server ignores ticks.
  EXPECT_EQ(server->round(), round_when_killed);

  // Restart from the bootstrap set; the server rewinds and serves on.
  const auto stats = server->KillRestartFromCheckpoint();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(server->crashed());
  int64_t guard = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++guard, 10'000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST(KillRestartTest, MidReorgKillResumesPendingRedistributionWithoutRetrigger) {
  // The adaptive driver's recovery contract: a kill landing between a
  // self-triggered redistribution and its convergence must RESUME the
  // pending reorganization (replaying from the barrier checkpoint + the
  // journal), not count a fresh trigger — the restored trigger history is
  // the one that was captured, and the CoV watch stays quiet while the
  // resumed migration is in flight.
  ServerConfig config = RecoveryConfig(0xabc8);
  config.initial_disks = 4;
  config.bits = 10;           // Narrow generator: the layout drifts.
  config.governor_bits = 64;  // Budget effectively infinite: CoV-only.
  config.governor_eps = 0.05;
  config.reorg_cov_threshold = 0.35;
  config.reorg_check_every = 2;
  config.auto_reorg = true;
  auto server = std::move(CmServer::Create(config)).value();
  CheckpointManager manager;
  ASSERT_TRUE(server->AddObject(1, 1'200).ok());
  ASSERT_TRUE(server->AddObject(2, 800).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  ASSERT_TRUE(server->EnableCheckpoints(&manager, 1000).ok());

  // Churn on settled layouts until the watch fires; the triggered
  // FullRedistribution's own metadata barrier makes the trigger durable
  // before a single reorg move lands.
  int64_t guard = 0;
  bool triggered = false;
  for (int i = 0; i < 30 && !triggered; ++i) {
    ASSERT_TRUE(server->ScaleAdd(1).ok());
    while (!server->migration().idle()) {
      server->Tick();
      ASSERT_LT(++guard, 100'000);
    }
    for (int tick = 0; tick < 2 && !triggered; ++tick) {
      server->Tick();
      triggered = !server->reorg_triggers().empty();
    }
  }
  ASSERT_TRUE(triggered) << "CoV never crossed the threshold";
  const std::vector<ReorgTrigger> recorded = server->reorg_triggers();
  ASSERT_FALSE(server->migration().idle());  // Mid-reorg, by construction.

  // Kill mid-reorg and restart from the barrier checkpoint.
  const auto stats = server->KillRestartFromCheckpoint();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Resumed, not re-triggered: the restored history is exactly the
  // captured one, and convergence adds nothing to it.
  EXPECT_EQ(server->reorg_triggers(), recorded);
  EXPECT_TRUE(server->reorg_driver().enabled());
  EXPECT_EQ(server->reorg_driver().cov_threshold(),
            config.reorg_cov_threshold);
  ASSERT_FALSE(server->migration().idle());
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++guard, 100'000);
  }
  EXPECT_EQ(server->reorg_triggers(), recorded);
  // And a few settled rounds after convergence stay quiet too: the
  // redistribution restored the balance the threshold asks for.
  for (int i = 0; i < 6; ++i) {
    server->Tick();
  }
  EXPECT_EQ(server->reorg_triggers(), recorded);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

// ---------------------------------------------------------------------------
// Scenario DSL: `checkpoint` + `killrestart` through the interpreter.

TEST(ScenarioCheckpointTest, KillRestartCommandDrivesTheFullPath) {
  auto server =
      std::move(CmServer::Create(RecoveryConfig(0x5ce9a))).value();
  const auto result = RunScenario(*server, R"(
addobject 1 300
stream 1
checkpoint 4 8 xor
tick 9
killrestart
scale add 2
tick 2
killrestart
drain
verify
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->kill_restarts, 2);
  EXPECT_EQ(result->crashes, 2);
  // The scenario-owned manager was detached on exit.
  EXPECT_EQ(server->checkpoint_manager(), nullptr);
}

TEST(ScenarioCheckpointTest, KillRestartWithoutCheckpointIsALineError) {
  auto server =
      std::move(CmServer::Create(RecoveryConfig(0x5ce9b))).value();
  const auto result = RunScenario(*server, "killrestart\n");
  EXPECT_FALSE(result.ok());
}

TEST(ScenarioCheckpointTest, BadCheckpointArgumentsAreLineErrors) {
  auto server =
      std::move(CmServer::Create(RecoveryConfig(0x5ce9c))).value();
  EXPECT_FALSE(RunScenario(*server, "checkpoint 0\n").ok());
  EXPECT_FALSE(RunScenario(*server, "checkpoint 5 10 raid6\n").ok());
}

// ---------------------------------------------------------------------------
// Cluster mode: ShardMap + per-shard state through one checkpoint set.

TEST(ShardMapFromPartsTest, ValidatesAndRestoresRouting) {
  ShardMap original(3);
  original.AddMember();
  ASSERT_TRUE(original.RemoveMember(1).ok());

  const auto restored = ShardMap::FromParts(
      original.seats(), original.next_member(), original.epoch());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->seats(), original.seats());
  EXPECT_EQ(restored->epoch(), original.epoch());
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(restored->MemberOf(key), original.MemberOf(key));
  }
  // Ids stay never-reused: the next handout matches the original's.
  ShardMap grown = *restored;
  EXPECT_EQ(grown.AddMember(), original.next_member());

  EXPECT_FALSE(ShardMap::FromParts({}, 1, 0).ok());
  EXPECT_FALSE(ShardMap::FromParts({0, 0}, 2, 0).ok());
  EXPECT_FALSE(ShardMap::FromParts({0, -2}, 2, 0).ok());
  EXPECT_FALSE(ShardMap::FromParts({0, 5}, 3, 0).ok());
  EXPECT_FALSE(ShardMap::FromParts({0, 1}, 2, -1).ok());
}

ClusterConfig RecoveryClusterConfig() {
  ClusterConfig config;
  config.shard = RecoveryConfig(0xc1a5);
  config.shard.initial_disks = 4;
  config.initial_shards = 3;
  return config;
}

TEST(ClusterCheckpointTest, RestoreRebuildsRoutingOwnersAndShards) {
  const ClusterConfig config = RecoveryClusterConfig();
  auto cluster = std::move(ClusterServer::Create(config)).value();
  for (ObjectId id = 1; id <= 9; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 40 + 10 * id).ok());
  }
  ASSERT_TRUE(cluster->StartStream(2).ok());
  ASSERT_TRUE(cluster->StartStream(5).ok());
  for (int i = 0; i < 6; ++i) {
    cluster->Tick();
  }
  // A membership change mid-flight: some transfers are queued at capture.
  ASSERT_TRUE(cluster->AddServerShard().ok());
  cluster->Tick();

  CheckpointManager manager(CheckpointOptions{
      .num_locations = 4, .redundancy = CheckpointRedundancy::kXor});
  ASSERT_TRUE(cluster->WriteCheckpoint(manager, 2).ok());
  // One snapshot location dies after the write; the XOR set must carry it.
  ASSERT_TRUE(manager.DropLocation(1).ok());

  const auto restored = ClusterServer::RestoreFromCheckpoint(config, manager);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ClusterServer& twin = **restored;
  EXPECT_EQ(twin.round(), cluster->round());
  EXPECT_EQ(twin.num_shards(), cluster->num_shards());
  EXPECT_EQ(twin.map().seats(), cluster->map().seats());
  EXPECT_EQ(twin.objects(), cluster->objects());
  for (const ObjectId id : cluster->objects()) {
    EXPECT_EQ(twin.OwnerOf(id), cluster->OwnerOf(id)) << "object " << id;
  }
  EXPECT_EQ(twin.active_streams(), cluster->active_streams());
  EXPECT_EQ(twin.total_served(), cluster->total_served());
  EXPECT_TRUE(twin.VerifyIntegrity().ok());

  // Both drive to convergence and agree object-for-object.
  int64_t guard = 0;
  while (!cluster->MigrationIdle() || !twin.MigrationIdle()) {
    cluster->Tick();
    twin.Tick();
    ASSERT_LT(++guard, 10'000);
  }
  EXPECT_TRUE(twin.VerifyIntegrity().ok());
  for (const ObjectId id : cluster->objects()) {
    EXPECT_EQ(twin.OwnerOf(id), cluster->OwnerOf(id)) << "object " << id;
  }
}

}  // namespace
}  // namespace scaddar
