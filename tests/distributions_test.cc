#include "random/distributions.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "stats/accumulator.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

std::unique_ptr<Prng> TestPrng(uint64_t seed = 1234) {
  return MakePrng(PrngKind::kSplitMix64, seed);
}

TEST(UniformUint64Test, AlwaysBelowBound) {
  auto prng = TestPrng();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(UniformUint64(*prng, 37), 37u);
  }
}

TEST(UniformUint64Test, BoundOneIsAlwaysZero) {
  auto prng = TestPrng();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(UniformUint64(*prng, 1), 0u);
  }
}

TEST(UniformUint64Test, UniformityChiSquare) {
  auto prng = TestPrng(42);
  std::vector<int64_t> counts(13, 0);
  for (int i = 0; i < 130000; ++i) {
    ++counts[UniformUint64(*prng, 13)];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(UniformUint64Test, NarrowGeneratorWorks) {
  auto prng = MakePrng(PrngKind::kPcg32, 9);
  std::vector<int64_t> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t value = UniformUint64(*prng, 7);
    ASSERT_LT(value, 7u);
    ++counts[value];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(UniformDoubleTest, WithinHalfOpenUnitInterval) {
  auto prng = TestPrng();
  for (int i = 0; i < 10000; ++i) {
    const double u = UniformDouble(*prng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformDoubleTest, MeanNearHalf) {
  auto prng = TestPrng(7);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Add(UniformDouble(*prng));
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(UniformDoubleTest, NarrowGeneratorStillFills53Bits) {
  auto prng = MakePrng(PrngKind::kPcg32, 3);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) {
    const double u = UniformDouble(*prng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc.Add(u);
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(BernoulliTest, ExtremesAreDeterministic) {
  auto prng = TestPrng();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(Bernoulli(*prng, 0.0));
    EXPECT_TRUE(Bernoulli(*prng, 1.0));
    EXPECT_FALSE(Bernoulli(*prng, -0.5));
    EXPECT_TRUE(Bernoulli(*prng, 1.5));
  }
}

TEST(BernoulliTest, FrequencyMatchesProbability) {
  auto prng = TestPrng(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    hits += Bernoulli(*prng, 0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(ExponentialTest, MeanIsOneOverLambda) {
  auto prng = TestPrng(21);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) {
    const double x = ExponentialSample(*prng, 4.0);
    ASSERT_GE(x, 0.0);
    acc.Add(x);
  }
  EXPECT_NEAR(acc.mean(), 0.25, 0.01);
}

TEST(PoissonTest, ZeroMeanIsZero) {
  auto prng = TestPrng();
  EXPECT_EQ(PoissonSample(*prng, 0.0), 0);
}

TEST(PoissonTest, SmallMean) {
  auto prng = TestPrng(31);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Add(static_cast<double>(PoissonSample(*prng, 2.5)));
  }
  EXPECT_NEAR(acc.mean(), 2.5, 0.05);
  EXPECT_NEAR(acc.variance(), 2.5, 0.1);
}

TEST(PoissonTest, LargeMeanNormalApproximation) {
  auto prng = TestPrng(41);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) {
    const int64_t x = PoissonSample(*prng, 200.0);
    ASSERT_GE(x, 0);
    acc.Add(static_cast<double>(x));
  }
  EXPECT_NEAR(acc.mean(), 200.0, 1.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(200.0), 1.0);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  auto prng = TestPrng(51);
  const ZipfDistribution zipf(10, 0.0);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(*prng)];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(ZipfTest, PopularRanksDominate) {
  auto prng = TestPrng(61);
  const ZipfDistribution zipf(100, 0.729);  // Classic VoD skew.
  std::vector<int64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(*prng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  // Rank 0 share should be near 1/H where H is the generalized harmonic sum.
  double h = 0;
  for (int r = 1; r <= 100; ++r) {
    h += 1.0 / std::pow(r, 0.729);
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / 100000.0, 1.0 / h, 0.01);
}

TEST(ZipfTest, SamplesWithinRange) {
  auto prng = TestPrng();
  const ZipfDistribution zipf(5, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const int64_t rank = zipf.Sample(*prng);
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, 5);
  }
}

TEST(SampleWithoutReplacementTest, ProducesDistinctValues) {
  auto prng = TestPrng(71);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<int64_t> sample =
        SampleWithoutReplacement(*prng, 50, 20);
    ASSERT_EQ(sample.size(), 20u);
    const std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutation) {
  auto prng = TestPrng(81);
  const std::vector<int64_t> sample = SampleWithoutReplacement(*prng, 10, 10);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacementTest, EmptySample) {
  auto prng = TestPrng();
  EXPECT_TRUE(SampleWithoutReplacement(*prng, 10, 0).empty());
  EXPECT_TRUE(SampleWithoutReplacement(*prng, 0, 0).empty());
}

TEST(SampleWithoutReplacementTest, EachElementEquallyLikely) {
  auto prng = TestPrng(91);
  std::vector<int64_t> counts(20, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (const int64_t v : SampleWithoutReplacement(*prng, 20, 5)) {
      ++counts[v];
    }
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(ShuffleTest, IsPermutation) {
  auto prng = TestPrng(101);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  Shuffle(*prng, shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(ShuffleTest, FirstPositionUniform) {
  auto prng = TestPrng(111);
  std::vector<int64_t> counts(6, 0);
  for (int trial = 0; trial < 60000; ++trial) {
    std::vector<int> values = {0, 1, 2, 3, 4, 5};
    Shuffle(*prng, values);
    ++counts[values[0]];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

}  // namespace
}  // namespace scaddar
