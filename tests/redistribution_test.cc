#include "core/redistribution.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "random/sequence.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(MovePlanTest, MovementStatsAccounting) {
  MovePlan plan;
  plan.set_blocks_considered(100);
  for (int i = 0; i < 20; ++i) {
    plan.Add(BlockMove{.block = {1, i}});
  }
  const MovementStats stats = plan.ToMovementStats(4, 5);
  EXPECT_EQ(stats.total_blocks, 100);
  EXPECT_EQ(stats.moved_blocks, 20);
  EXPECT_DOUBLE_EQ(stats.moved_fraction, 0.2);
  EXPECT_DOUBLE_EQ(stats.theoretical_fraction, 0.2);
  EXPECT_DOUBLE_EQ(stats.overhead_ratio, 1.0);
}

TEST(PlanOperationTest, MatchesBruteForceDiff) {
  OpLog log = OpLog::Create(4).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Remove({1, 4}).value()).ok());
  const std::vector<uint64_t> x0_a = MakeX0(1, 500);
  const std::vector<uint64_t> x0_b = MakeX0(2, 300);
  const std::vector<ObjectBlocksView> objects = {{10, &x0_a}, {20, &x0_b}};
  const Mapper mapper(&log);
  for (Epoch j = 1; j <= log.num_ops(); ++j) {
    const MovePlan plan = PlanOperation(log, j, objects);
    EXPECT_EQ(plan.blocks_considered(), 800);
    // Brute force: count diffs via the mapper directly.
    std::set<std::pair<ObjectId, BlockIndex>> planned;
    for (const BlockMove& move : plan.moves()) {
      planned.insert({move.block.object, move.block.block});
      EXPECT_EQ(move.from_physical,
                log.physical_disks_at(j - 1)[static_cast<size_t>(
                    move.from_slot)]);
      EXPECT_EQ(move.to_physical,
                log.physical_disks_at(j)[static_cast<size_t>(move.to_slot)]);
      EXPECT_NE(move.from_physical, move.to_physical);
    }
    int64_t expected_moves = 0;
    for (const ObjectBlocksView& view : objects) {
      for (size_t i = 0; i < view.x0->size(); ++i) {
        const uint64_t x0 = (*view.x0)[i];
        const bool moved = mapper.PhysicalAfter(x0, j - 1) !=
                           mapper.PhysicalAfter(x0, j);
        EXPECT_EQ(planned.contains({view.object,
                                    static_cast<BlockIndex>(i)}),
                  moved);
        expected_moves += moved ? 1 : 0;
      }
    }
    EXPECT_EQ(plan.num_moves(), expected_moves);
  }
}

TEST(PlanOperationTest, AdditionMovesOnlyOntoNewDisks) {
  OpLog log = OpLog::Create(5).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(3).value()).ok());
  const std::vector<uint64_t> x0 = MakeX0(3, 5000);
  const MovePlan plan = PlanOperation(log, 1, {{1, &x0}});
  for (const BlockMove& move : plan.moves()) {
    EXPECT_GE(move.to_physical, 5);  // Only new physical ids 5, 6, 7.
    EXPECT_LE(move.to_physical, 7);
  }
  const MovementStats stats = plan.ToMovementStats(5, 8);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.08);  // RO1 within noise.
}

TEST(PlanOperationTest, RemovalMovesExactlyTheEvictedBlocks) {
  OpLog log = OpLog::Create(6).value();
  ASSERT_TRUE(log.Append(ScalingOp::Remove({2}).value()).ok());
  const std::vector<uint64_t> x0 = MakeX0(4, 6000);
  const Mapper mapper(&log);
  const MovePlan plan = PlanOperation(log, 1, {{1, &x0}});
  int64_t on_removed = 0;
  for (size_t i = 0; i < x0.size(); ++i) {
    if (mapper.PhysicalAfter(x0[i], 0) == 2) {
      ++on_removed;
    }
  }
  EXPECT_EQ(plan.num_moves(), on_removed);
  for (const BlockMove& move : plan.moves()) {
    EXPECT_EQ(move.from_physical, 2);
    EXPECT_NE(move.to_physical, 2);
  }
}

TEST(PlanFullRedistributionTest, IdenticalPlacementsNeedNoMoves) {
  OpLog log = OpLog::Create(4).value();
  const std::vector<uint64_t> x0 = MakeX0(5, 1000);
  const std::vector<ObjectBlocksView> views = {{1, &x0}};
  const MovePlan plan = PlanFullRedistribution(log, views, log, views);
  EXPECT_EQ(plan.num_moves(), 0);
  EXPECT_EQ(plan.blocks_considered(), 1000);
}

TEST(PlanFullRedistributionTest, FreshSeedsMoveMostBlocks) {
  const OpLog log = OpLog::Create(8).value();
  const std::vector<uint64_t> old_x0 = MakeX0(6, 4000);
  const std::vector<uint64_t> new_x0 = MakeX0(7, 4000);
  const MovePlan plan = PlanFullRedistribution(log, {{1, &old_x0}}, log,
                                               {{1, &new_x0}});
  // Independent uniform placements agree with probability 1/N = 1/8.
  const double moved_fraction =
      static_cast<double>(plan.num_moves()) / 4000.0;
  EXPECT_NEAR(moved_fraction, 7.0 / 8.0, 0.03);
}

TEST(PlanFullRedistributionTest, TargetsNewDiskSetCompletely) {
  // Old: 4 disks {0,1,2,3}; new log addresses disks {0,1,2,3,4,5}.
  OpLog old_log = OpLog::Create(4).value();
  OpLog new_log =
      OpLog::CreateWithIds({0, 1, 2, 3, 4, 5}).value();
  const std::vector<uint64_t> old_x0 = MakeX0(8, 3000);
  const std::vector<uint64_t> new_x0 = MakeX0(9, 3000);
  const MovePlan plan = PlanFullRedistribution(
      old_log, {{1, &old_x0}}, new_log, {{1, &new_x0}});
  std::set<PhysicalDiskId> destinations;
  for (const BlockMove& move : plan.moves()) {
    destinations.insert(move.to_physical);
    EXPECT_LE(move.to_physical, 5);
    EXPECT_LE(move.from_physical, 3);
  }
  EXPECT_EQ(destinations.size(), 6u);  // All six disks receive blocks.
}

TEST(PlanOperationDeathTest, EpochZeroHasNoOperation) {
  const OpLog log = OpLog::Create(4).value();
  const std::vector<uint64_t> x0 = MakeX0(10, 10);
  EXPECT_DEATH(PlanOperation(log, 1, {{1, &x0}}), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
