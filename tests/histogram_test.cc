#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(HistogramTest, BucketsFill) {
  Histogram hist(0.0, 10.0, 10);
  hist.Add(0.5);
  hist.Add(1.5);
  hist.Add(1.7);
  hist.Add(9.99);
  EXPECT_EQ(hist.total_count(), 4);
  EXPECT_EQ(hist.buckets()[0], 1);
  EXPECT_EQ(hist.buckets()[1], 2);
  EXPECT_EQ(hist.buckets()[9], 1);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram hist(0.0, 1.0, 4);
  hist.Add(-0.1);
  hist.Add(1.0);  // hi is exclusive.
  hist.Add(5.0);
  EXPECT_EQ(hist.underflow(), 1);
  EXPECT_EQ(hist.overflow(), 2);
  EXPECT_EQ(hist.total_count(), 3);
}

TEST(HistogramTest, QuantileOfUniformFill) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    hist.Add(i + 0.5);
  }
  EXPECT_NEAR(hist.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(hist.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(hist.Quantile(0.01), 1.0, 1.5);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram hist(2.0, 4.0, 2);
  EXPECT_EQ(hist.Quantile(0.5), 2.0);
}

TEST(HistogramTest, AsciiRenderingContainsBars) {
  Histogram hist(0.0, 2.0, 2);
  hist.Add(0.5);
  hist.Add(0.6);
  hist.Add(1.5);
  const std::string ascii = hist.ToAscii(10);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_NE(ascii.find('\n'), std::string::npos);
}

TEST(CountTallyTest, AddAndRead) {
  CountTally tally(4);
  tally.Add(0);
  tally.Add(0);
  tally.Add(3, 5);
  EXPECT_EQ(tally.at(0), 2);
  EXPECT_EQ(tally.at(1), 0);
  EXPECT_EQ(tally.at(3), 5);
  EXPECT_EQ(tally.total(), 7);
  EXPECT_EQ(tally.size(), 4);
}

TEST(CountTallyTest, NegativeDeltaAllowedDownToZero) {
  CountTally tally(2);
  tally.Add(1, 3);
  tally.Add(1, -3);
  EXPECT_EQ(tally.at(1), 0);
  EXPECT_EQ(tally.total(), 0);
}

TEST(CountTallyTest, GrowKeepsCounts) {
  CountTally tally(2);
  tally.Add(1, 7);
  tally.Resize(5);
  EXPECT_EQ(tally.size(), 5);
  EXPECT_EQ(tally.at(1), 7);
  EXPECT_EQ(tally.at(4), 0);
}

TEST(CountTallyDeathTest, ShrinkOverNonEmptySlotAborts) {
  CountTally tally(3);
  tally.Add(2);
  EXPECT_DEATH(tally.Resize(2), "SCADDAR_CHECK");
}

TEST(CountTallyDeathTest, OutOfRangeAborts) {
  CountTally tally(3);
  EXPECT_DEATH(tally.Add(3), "SCADDAR_CHECK");
  EXPECT_DEATH(tally.at(-1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
