#include "faults/recovery.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "random/sequence.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

// Builds a mirrored policy, records the pre-failure copy sets, fails
// `slot`, and returns (policy-after, plan).
struct Scenario {
  Scenario(int64_t n0, int64_t blocks, DiskSlot failed_slot)
      : policy(n0) {
    SCADDAR_CHECK(policy.AddObject(1, MakeX0(9, blocks)).ok());
    const MirroredPlacement mirror(&policy);
    for (BlockIndex i = 0; i < blocks; ++i) {
      before_copies[i] = {mirror.PrimaryOf(1, i), mirror.MirrorOf(1, i)};
    }
    failed = policy.log().physical_disks()[static_cast<size_t>(failed_slot)];
    SCADDAR_CHECK(
        policy.ApplyOp(ScalingOp::Remove({failed_slot}).value()).ok());
  }

  ScaddarPolicy policy;
  std::map<BlockIndex, std::set<PhysicalDiskId>> before_copies;
  PhysicalDiskId failed = -1;
};

TEST(RecoveryTest, PreconditionsEnforced) {
  ScaddarPolicy fresh(4);
  EXPECT_EQ(PlanMirrorRecovery(fresh).status().code(),
            StatusCode::kFailedPrecondition);
  ScaddarPolicy added(4);
  ASSERT_TRUE(added.ApplyOp(ScalingOp::Add(1).value()).ok());
  EXPECT_EQ(PlanMirrorRecovery(added).status().code(),
            StatusCode::kFailedPrecondition);
  ScaddarPolicy group(6);
  ASSERT_TRUE(group.ApplyOp(ScalingOp::Remove({0, 1}).value()).ok());
  EXPECT_EQ(PlanMirrorRecovery(group).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, NeverReadsFromTheFailedDisk) {
  Scenario scenario(8, 4000, 3);
  const StatusOr<RecoveryPlan> plan = PlanMirrorRecovery(scenario.policy);
  ASSERT_TRUE(plan.ok());
  for (const RecoveryAction& action : plan->actions) {
    EXPECT_NE(action.read_from, scenario.failed);
    EXPECT_NE(action.write_to, scenario.failed);
    EXPECT_NE(action.read_from, action.write_to);
  }
}

TEST(RecoveryTest, SourcesHeldTheBlockBeforeTheFailure) {
  Scenario scenario(8, 4000, 5);
  const StatusOr<RecoveryPlan> plan = PlanMirrorRecovery(scenario.policy);
  ASSERT_TRUE(plan.ok());
  for (const RecoveryAction& action : plan->actions) {
    EXPECT_TRUE(
        scenario.before_copies[action.block.block].contains(action.read_from))
        << "block " << action.block.block << " read from a disk that never "
        << "held it";
  }
}

TEST(RecoveryTest, ExecutionRestoresFullRedundancy) {
  Scenario scenario(10, 6000, 7);
  const StatusOr<RecoveryPlan> plan = PlanMirrorRecovery(scenario.policy);
  ASSERT_TRUE(plan.ok());
  // Simulate execution: start from surviving copies, apply all writes.
  std::map<BlockIndex, std::set<PhysicalDiskId>> copies;
  for (const auto& [block, replicas] : scenario.before_copies) {
    for (const PhysicalDiskId disk : replicas) {
      if (disk != scenario.failed) {
        copies[block].insert(disk);
      }
    }
  }
  for (const RecoveryAction& action : plan->actions) {
    ASSERT_TRUE(copies[action.block.block].contains(action.read_from));
    copies[action.block.block].insert(action.write_to);
  }
  // Every block must now be present at its post-failure primary AND mirror.
  const MirroredPlacement mirror(&scenario.policy);
  for (const auto& [block, replicas] : copies) {
    EXPECT_TRUE(replicas.contains(mirror.PrimaryOf(1, block)))
        << "block " << block;
    EXPECT_TRUE(replicas.contains(mirror.MirrorOf(1, block)))
        << "block " << block;
  }
}

TEST(RecoveryTest, LossAccountingMatchesPreFailureLayout) {
  Scenario scenario(8, 8000, 2);
  const StatusOr<RecoveryPlan> plan = PlanMirrorRecovery(scenario.policy);
  ASSERT_TRUE(plan.ok());
  // Recount by role using a fresh mirrored view of the pre-failure epoch:
  // primaries lost = blocks whose primary was the failed disk.
  int64_t expected_primaries = 0;
  int64_t expected_mirrors = 0;
  ScaddarPolicy reference(8);
  ASSERT_TRUE(reference.AddObject(1, MakeX0(9, 8000)).ok());
  const MirroredPlacement mirror(&reference);
  for (BlockIndex i = 0; i < 8000; ++i) {
    expected_primaries += mirror.PrimaryOf(1, i) == scenario.failed ? 1 : 0;
    expected_mirrors += mirror.MirrorOf(1, i) == scenario.failed ? 1 : 0;
  }
  EXPECT_EQ(plan->lost_primaries, expected_primaries);
  EXPECT_EQ(plan->lost_mirrors, expected_mirrors);
  // Each block loses at most one copy under a single failure; roughly 2/8
  // of blocks are touched.
  EXPECT_NEAR(static_cast<double>(plan->lost_primaries + plan->lost_mirrors) /
                  8000.0,
              0.25, 0.03);
}

TEST(RecoveryTest, LateObjectsAreSkipped) {
  Scenario scenario(8, 1000, 1);
  // An object ingested after the failure is already fully redundant.
  ASSERT_TRUE(scenario.policy.AddObject(2, MakeX0(10, 500)).ok());
  const StatusOr<RecoveryPlan> plan = PlanMirrorRecovery(scenario.policy);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->blocks_considered, 1000);
  for (const RecoveryAction& action : plan->actions) {
    EXPECT_EQ(action.block.object, 1);
  }
}

TEST(RecoveryTest, TwoDiskArrayRecovers) {
  Scenario scenario(3, 600, 0);  // 3 -> 2 disks; offset becomes 1.
  const StatusOr<RecoveryPlan> plan = PlanMirrorRecovery(scenario.policy);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->num_actions(), 0);
}

}  // namespace
}  // namespace scaddar
