#include "placement/jump_hash_policy.h"

#include <set>

#include <gtest/gtest.h>

#include "random/sequence.h"
#include "stats/chi_square.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(JumpBucketTest, SingleBucket) {
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(JumpBucket(key, 1), 0);
  }
}

TEST(JumpBucketTest, WithinRange) {
  for (uint64_t key = 1; key < 5000; key += 7) {
    const int64_t bucket = JumpBucket(key * 0x9e3779b97f4a7c15ull, 13);
    EXPECT_GE(bucket, 0);
    EXPECT_LT(bucket, 13);
  }
}

TEST(JumpBucketTest, MonotoneConsistency) {
  // The jump hash guarantee: growing n never moves a key between two
  // existing buckets — it either stays or moves to the NEW bucket.
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 1, 64).value();
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = seq.Next();
    for (int64_t n = 1; n < 20; ++n) {
      const int64_t before = JumpBucket(key, n);
      const int64_t after = JumpBucket(key, n + 1);
      EXPECT_TRUE(after == before || after == n);
    }
  }
}

TEST(JumpBucketTest, BalancedDistribution) {
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value();
  std::vector<int64_t> counts(11, 0);
  for (int i = 0; i < 110000; ++i) {
    ++counts[static_cast<size_t>(JumpBucket(seq.Next(), 11))];
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(JumpHashPolicyTest, AddIsOptimal) {
  JumpHashPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 40000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 10);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      EXPECT_GE(after[i], 8);
    }
  }
}

TEST(JumpHashPolicyTest, TailRemovalIsOptimal) {
  JumpHashPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(4, 40000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  // Removing the LAST slot is jump hash's native shrink.
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({7}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 7);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
}

TEST(JumpHashPolicyTest, MiddleRemovalCostsDouble) {
  JumpHashPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(5, 40000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 7);
  // The swap-with-last emulation moves ~2x the minimum — the documented
  // disadvantage vs SCADDAR's clean arbitrary-disk removal.
  EXPECT_GT(stats.overhead_ratio, 1.6);
  EXPECT_LT(stats.overhead_ratio, 2.4);
}

TEST(JumpHashPolicyTest, BucketsTrackLiveSet) {
  JumpHashPolicy policy(6);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({0, 3}).value()).ok());
  const std::set<PhysicalDiskId> buckets(policy.buckets().begin(),
                                         policy.buckets().end());
  const std::set<PhysicalDiskId> live(policy.log().physical_disks().begin(),
                                      policy.log().physical_disks().end());
  EXPECT_EQ(buckets, live);
}

TEST(JumpHashPolicyTest, BalanceAfterMixedOps) {
  JumpHashPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(6, 80000)).ok());
  for (const char* text : {"A2", "R3", "A1", "R0"}) {
    ASSERT_TRUE(policy.ApplyOp(ScalingOp::Parse(text).value()).ok());
  }
  EXPECT_TRUE(ChiSquareUniform(policy.PerDiskCounts()).IsUniform(0.001));
}

TEST(JumpHashPolicyTest, MiddleRemovalDumpsVictimsOnOneDisk) {
  // The transient pathology the comparator bench reports: every block of
  // the removed disk lands on the disk that was swapped into its bucket.
  JumpHashPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(7, 40000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  std::set<PhysicalDiskId> victim_destinations;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] == 2) {
      victim_destinations.insert(after[i]);
    }
  }
  EXPECT_EQ(victim_destinations.size(), 1u);
  EXPECT_EQ(*victim_destinations.begin(), 7);  // The swapped-in last disk.
}

}  // namespace
}  // namespace scaddar
