#include "core/shared_placement.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapper.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

TEST(SharedPlacementTest, CreateValidation) {
  EXPECT_TRUE(SharedPlacement::Create(4).ok());
  EXPECT_FALSE(SharedPlacement::Create(0).ok());
}

TEST(SharedPlacementTest, MatchesMapperAfterEveryOp) {
  SharedPlacement placement = SharedPlacement::Create(6).value();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  for (const char* text : {"A2", "R1", "A1", "R0,4"}) {
    ASSERT_TRUE(placement.ApplyOp(ScalingOp::Parse(text).value()).ok());
    const Mapper mapper(&placement.log());
    for (int i = 0; i < 500; ++i) {
      const uint64_t x0 = seq.Next();
      EXPECT_EQ(placement.Locate(x0), mapper.LocatePhysical(x0));
    }
  }
}

TEST(SharedPlacementTest, SnapshotIsPinnedAcrossOps) {
  SharedPlacement placement = SharedPlacement::Create(4).value();
  const std::shared_ptr<const CompiledLog> before = placement.Snapshot();
  ASSERT_TRUE(placement.ApplyOp(ScalingOp::Add(4).value()).ok());
  EXPECT_EQ(before->current_disks(), 4);          // Old epoch unchanged...
  EXPECT_EQ(placement.Snapshot()->current_disks(), 8);  // ...new published.
}

TEST(SharedPlacementTest, FailedOpPublishesNothing) {
  SharedPlacement placement = SharedPlacement::Create(3).value();
  const std::shared_ptr<const CompiledLog> before = placement.Snapshot();
  EXPECT_FALSE(placement.ApplyOp(ScalingOp::Remove({9}).value()).ok());
  EXPECT_EQ(placement.Snapshot(), before);
}

TEST(SharedPlacementTest, ConcurrentReadersDuringScaling) {
  SharedPlacement placement = SharedPlacement::Create(8).value();
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&placement, &stop, &reads, &violations, t] {
      auto seq = X0Sequence::Create(PrngKind::kSplitMix64,
                                    static_cast<uint64_t>(t) + 1, 64)
                     .value();
      while (!stop.load(std::memory_order_relaxed)) {
        // Pin one snapshot for a consistent batch of lookups.
        const std::shared_ptr<const CompiledLog> snapshot =
            placement.Snapshot();
        for (int i = 0; i < 64; ++i) {
          const PhysicalDiskId disk = snapshot->LocatePhysical(seq.Next());
          if (disk < 0) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Admin thread: churn through scaling operations while readers run.
  for (int op = 0; op < 60; ++op) {
    const ScalingOp scaling = (op % 3 == 2)
                                  ? ScalingOp::Remove({op % 4}).value()
                                  : ScalingOp::Add(1).value();
    ASSERT_TRUE(placement.ApplyOp(scaling).ok());
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(reads.load(), 1000);
  // Final consistency against the synchronous mapper.
  const Mapper mapper(&placement.log());
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 9, 64).value();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x0 = seq.Next();
    EXPECT_EQ(placement.Locate(x0), mapper.LocatePhysical(x0));
  }
}

TEST(SharedPlacementTest, StartEpochSupported) {
  SharedPlacement placement = SharedPlacement::Create(5).value();
  ASSERT_TRUE(placement.ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(placement.ApplyOp(ScalingOp::Remove({1}).value()).ok());
  const Mapper mapper(&placement.log());
  auto seq = X0Sequence::Create(PrngKind::kLcg48, 3, 48).value();
  for (int i = 0; i < 500; ++i) {
    const uint64_t x0 = seq.Next();
    EXPECT_EQ(placement.Locate(x0, /*start_epoch=*/1),
              mapper.PhysicalBetween(x0, 1, 2));
  }
}

}  // namespace
}  // namespace scaddar
