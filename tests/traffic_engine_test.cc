// The traffic engine's contract: deterministic, replayable traces from a
// fixed seed; Zipf popularity skew; diurnal modulation; scheduled flash
// crowds; VCR event generation — plus the scenario DSL hooks that expose
// all of it to script files.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "server/scenario.h"
#include "server/server.h"
#include "server/workload/traffic_engine.h"

namespace scaddar {
namespace {

std::unique_ptr<CmServer> MakeServer() {
  ServerConfig config;
  config.initial_disks = 6;
  config.disk_spec = {.capacity_blocks = 100'000,
                      .bandwidth_blocks_per_round = 6};
  auto server = CmServer::Create(config);
  SCADDAR_CHECK(server.ok());
  return std::move(server).value();
}

TEST(TrafficEngineTest, SameSeedSameTrace) {
  TrafficConfig config;
  config.seed = 42;
  config.arrivals_per_round = 3.0;
  config.seek_probability = 0.1;
  config.pause_probability = 0.05;
  config.resume_probability = 0.5;
  TrafficEngine a(config);
  TrafficEngine b(config);
  const std::vector<ObjectId> objects = {1, 2, 3, 4, 5};
  a.SetObjects(objects);
  b.SetObjects(objects);
  std::vector<Stream> active;
  active.emplace_back(0, 1, 100, 0);
  active.emplace_back(1, 2, 100, 0);
  active.back().Pause();
  for (int64_t round = 0; round < 50; ++round) {
    const RoundTraffic ta = a.NextRound(round, active);
    const RoundTraffic tb = b.NextRound(round, active);
    ASSERT_EQ(ta.arrivals, tb.arrivals) << "round " << round;
    ASSERT_EQ(ta.pauses, tb.pauses) << "round " << round;
    ASSERT_EQ(ta.resumes, tb.resumes) << "round " << round;
    ASSERT_EQ(ta.seeks.size(), tb.seeks.size()) << "round " << round;
    for (size_t i = 0; i < ta.seeks.size(); ++i) {
      ASSERT_EQ(ta.seeks[i].stream_id, tb.seeks[i].stream_id);
      ASSERT_EQ(ta.seeks[i].block, tb.seeks[i].block);
    }
  }
  // A different seed diverges (sanity that the seed actually feeds in).
  config.seed = 43;
  TrafficEngine c(config);
  c.SetObjects(objects);
  int64_t diffs = 0;
  TrafficConfig reseeded = config;
  reseeded.seed = 42;
  TrafficEngine a2(reseeded);
  a2.SetObjects(objects);
  for (int64_t round = 0; round < 50; ++round) {
    if (c.NextRound(round, active).arrivals !=
        a2.NextRound(round, active).arrivals) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(TrafficEngineTest, ZipfSkewsTowardLowRanks) {
  TrafficConfig config;
  config.arrivals_per_round = 20.0;
  config.zipf_theta = 0.729;
  TrafficEngine engine(config);
  std::vector<ObjectId> objects;
  for (ObjectId id = 1; id <= 20; ++id) {
    objects.push_back(id);
  }
  engine.SetObjects(objects);
  std::map<ObjectId, int64_t> counts;
  const std::vector<Stream> none;
  for (int64_t round = 0; round < 500; ++round) {
    for (const ObjectId object : engine.NextRound(round, none).arrivals) {
      ++counts[object];
    }
  }
  // Rank 0 (object 1) must dominate the tail object decisively.
  EXPECT_GT(counts[1], 3 * counts[20]);
}

TEST(TrafficEngineTest, DiurnalCurveModulatesArrivalMean) {
  TrafficConfig config;
  config.arrivals_per_round = 10.0;
  config.diurnal_amplitude = 0.5;
  config.diurnal_period = 100;
  TrafficEngine engine(config);
  engine.SetObjects({1});
  // Peak at a quarter period, trough at three quarters.
  EXPECT_NEAR(engine.ModulatedArrivalMean(25), 15.0, 1e-9);
  EXPECT_NEAR(engine.ModulatedArrivalMean(75), 5.0, 1e-9);
  EXPECT_NEAR(engine.ModulatedArrivalMean(0), 10.0, 1e-9);
}

TEST(TrafficEngineTest, FlashCrowdFiresOnScheduleAtItsRank) {
  TrafficConfig config;
  config.arrivals_per_round = 0.0;  // Isolate the crowd.
  config.flash_crowds.push_back(
      FlashCrowd{.start_round = 10, .duration = 3, .rank = 1, .boost = 7});
  TrafficEngine engine(config);
  engine.SetObjects({5, 6, 7});
  const std::vector<Stream> none;
  for (int64_t round = 0; round < 20; ++round) {
    const RoundTraffic traffic = engine.NextRound(round, none);
    if (round >= 10 && round < 13) {
      ASSERT_EQ(traffic.arrivals.size(), 7u) << "round " << round;
      for (const ObjectId object : traffic.arrivals) {
        EXPECT_EQ(object, 6) << "crowd must target rank 1";
      }
    } else {
      EXPECT_TRUE(traffic.arrivals.empty()) << "round " << round;
    }
  }
}

TEST(TrafficEngineTest, DriveRoundReplaysIdenticallyOnTwinServers) {
  TrafficConfig config;
  config.seed = 7;
  config.arrivals_per_round = 2.0;
  config.zipf_theta = 0.5;
  config.seek_probability = 0.05;
  auto a = MakeServer();
  auto b = MakeServer();
  for (CmServer* server : {a.get(), b.get()}) {
    ASSERT_TRUE(server->AddObject(1, 200).ok());
    ASSERT_TRUE(server->AddObject(2, 300).ok());
  }
  TrafficEngine ea(config);
  TrafficEngine eb(config);
  ea.SetObjects(a->catalog().object_ids());
  eb.SetObjects(b->catalog().object_ids());
  for (int round = 0; round < 100; ++round) {
    const RoundMetrics ma = ea.DriveRound(*a);
    const RoundMetrics mb = eb.DriveRound(*b);
    ASSERT_EQ(ma.requests, mb.requests) << "round " << round;
    ASSERT_EQ(ma.served, mb.served) << "round " << round;
  }
  EXPECT_EQ(a->total_served(), b->total_served());
  EXPECT_EQ(ea.rejected_arrivals(), eb.rejected_arrivals());
  EXPECT_GT(a->total_served(), 0);
}

/// The scenario DSL drives the same machinery: `traffic` settings plus
/// `ticktraffic` produce deterministic, replayable runs.
TEST(TrafficEngineTest, ScenarioHooksAreDeterministic) {
  constexpr const char* kScript = R"(
    addobject 1 300
    addobject 2 200
    addobject 3 150
    traffic seed 99
    traffic arrivals 1.5
    traffic zipf 0.729
    traffic vcr 0.02 0.4 0.05
    traffic flash 20 5 0 4
    ticktraffic 80
  )";
  auto a = MakeServer();
  auto b = MakeServer();
  const auto ra = RunScenario(*a, kScript);
  const auto rb = RunScenario(*b, kScript);
  ASSERT_TRUE(ra.ok()) << ra.status().message();
  ASSERT_TRUE(rb.ok()) << rb.status().message();
  EXPECT_EQ(ra->rounds, 80);
  EXPECT_EQ(ra->streams_started, rb->streams_started);
  EXPECT_EQ(ra->served, rb->served);
  EXPECT_EQ(ra->hiccups, rb->hiccups);
  EXPECT_GT(ra->streams_started, 0);
  EXPECT_GT(ra->served, 0);
  EXPECT_EQ(a->total_served(), b->total_served());
}

TEST(TrafficEngineTest, ScenarioRejectsMalformedTrafficCommands) {
  auto server = MakeServer();
  EXPECT_FALSE(RunScenario(*server, "traffic bogus 1\n").ok());
  EXPECT_FALSE(RunScenario(*server, "traffic zipf not-a-number\n").ok());
  EXPECT_FALSE(RunScenario(*server, "ticktraffic 5\n").ok())
      << "ticktraffic with an empty catalog must fail";
}

}  // namespace
}  // namespace scaddar
