#include "hetero/hetero_array.h"

#include <gtest/gtest.h>

#include "hetero/logical_map.h"
#include "random/sequence.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(LogicalMappingTest, ExpandsWeights) {
  const LogicalMapping mapping =
      LogicalMapping::Create({{0, 1}, {1, 3}, {2, 2}}).value();
  EXPECT_EQ(mapping.num_logical(), 6);
  EXPECT_EQ(mapping.num_physical(), 3);
  EXPECT_EQ(mapping.PhysicalOf(0), 0);
  EXPECT_EQ(mapping.PhysicalOf(1), 1);
  EXPECT_EQ(mapping.PhysicalOf(3), 1);
  EXPECT_EQ(mapping.PhysicalOf(4), 2);
  EXPECT_EQ(mapping.LogicalsOf(1), (std::vector<int64_t>{1, 2, 3}));
}

TEST(LogicalMappingTest, Validation) {
  EXPECT_FALSE(LogicalMapping::Create({}).ok());
  EXPECT_FALSE(LogicalMapping::Create({{0, 0}}).ok());
  EXPECT_FALSE(LogicalMapping::Create({{0, -1}}).ok());
  EXPECT_FALSE(LogicalMapping::Create({{0, 1}, {0, 2}}).ok());
}

TEST(LogicalMappingTest, AggregateLoad) {
  const LogicalMapping mapping =
      LogicalMapping::Create({{10, 2}, {20, 1}}).value();
  const auto load = mapping.AggregateLoad({5, 7, 3});
  EXPECT_EQ(load.at(10), 12);
  EXPECT_EQ(load.at(20), 3);
}

TEST(HeteroPlacementTest, LoadProportionalToWeight) {
  HeteroPlacement placement =
      HeteroPlacement::Create({{0, 1}, {1, 2}, {2, 4}}).value();
  ASSERT_TRUE(placement.AddObject(1, MakeX0(1, 70000)).ok());
  const auto load = placement.PhysicalLoad();
  const std::vector<int64_t> observed = {load.at(0), load.at(1), load.at(2)};
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  EXPECT_TRUE(ChiSquareAgainst(observed, weights).IsUniform(0.001));
}

TEST(HeteroPlacementTest, LocateReturnsPhysicalIds) {
  HeteroPlacement placement =
      HeteroPlacement::Create({{100, 2}, {200, 3}}).value();
  ASSERT_TRUE(placement.AddObject(1, MakeX0(2, 1000)).ok());
  for (BlockIndex i = 0; i < 1000; ++i) {
    const PhysicalDiskId disk = placement.Locate(1, i);
    EXPECT_TRUE(disk == 100 || disk == 200);
  }
}

TEST(HeteroPlacementTest, AddPhysicalDiskReceivesItsShare) {
  HeteroPlacement placement =
      HeteroPlacement::Create({{0, 2}, {1, 2}}).value();
  ASSERT_TRUE(placement.AddObject(1, MakeX0(3, 40000)).ok());
  ASSERT_TRUE(placement.AddPhysicalDisk({2, 4}).ok());
  EXPECT_EQ(placement.total_weight(), 8);
  const auto load = placement.PhysicalLoad();
  // Disk 2 has half the total weight; expect about half the blocks.
  EXPECT_NEAR(static_cast<double>(load.at(2)) / 40000.0, 0.5, 0.03);
}

TEST(HeteroPlacementTest, AddValidation) {
  HeteroPlacement placement = HeteroPlacement::Create({{0, 1}}).value();
  EXPECT_FALSE(placement.AddPhysicalDisk({0, 2}).ok());  // Duplicate id.
  EXPECT_FALSE(placement.AddPhysicalDisk({5, 0}).ok());  // Bad weight.
}

TEST(HeteroPlacementTest, RemovePhysicalDiskEvictsOnlyItsBlocks) {
  HeteroPlacement placement =
      HeteroPlacement::Create({{0, 2}, {1, 3}, {2, 2}}).value();
  ASSERT_TRUE(placement.AddObject(1, MakeX0(4, 30000)).ok());
  std::vector<PhysicalDiskId> before(30000);
  for (BlockIndex i = 0; i < 30000; ++i) {
    before[static_cast<size_t>(i)] = placement.Locate(1, i);
  }
  ASSERT_TRUE(placement.RemovePhysicalDisk(1).ok());
  EXPECT_EQ(placement.physical_disks().size(), 2u);
  for (BlockIndex i = 0; i < 30000; ++i) {
    const PhysicalDiskId now = placement.Locate(1, i);
    EXPECT_NE(now, 1);
    if (before[static_cast<size_t>(i)] != 1) {
      EXPECT_EQ(now, before[static_cast<size_t>(i)])
          << "block " << i << " moved off a surviving disk";
    }
  }
}

TEST(HeteroPlacementTest, RemoveValidation) {
  HeteroPlacement placement = HeteroPlacement::Create({{0, 1}}).value();
  EXPECT_EQ(placement.RemovePhysicalDisk(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(placement.RemovePhysicalDisk(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(HeteroPlacementTest, BalanceSurvivesChurn) {
  HeteroPlacement placement =
      HeteroPlacement::Create({{0, 2}, {1, 2}}).value();
  ASSERT_TRUE(placement.AddObject(1, MakeX0(5, 50000)).ok());
  ASSERT_TRUE(placement.AddPhysicalDisk({2, 3}).ok());
  ASSERT_TRUE(placement.RemovePhysicalDisk(0).ok());
  ASSERT_TRUE(placement.AddPhysicalDisk({3, 1}).ok());
  const auto load = placement.PhysicalLoad();
  const std::vector<int64_t> observed = {load.at(1), load.at(2), load.at(3)};
  const std::vector<double> weights = {2.0, 3.0, 1.0};
  EXPECT_TRUE(ChiSquareAgainst(observed, weights).IsUniform(0.001));
}

}  // namespace
}  // namespace scaddar
