#include "placement/analysis.h"

#include <gtest/gtest.h>

#include "placement/registry.h"
#include "util/intmath.h"

namespace scaddar {
namespace {

// Brute-force residue count over one lcm period: the ground truth for the
// CRT-based closed form.
double BruteForceStayFraction(int64_t a, int64_t b) {
  const uint64_t lcm = static_cast<uint64_t>(a) / Gcd(a, b) *
                       static_cast<uint64_t>(b);
  int64_t stay = 0;
  for (uint64_t r = 0; r < lcm; ++r) {
    if (r % static_cast<uint64_t>(a) == r % static_cast<uint64_t>(b)) {
      ++stay;
    }
  }
  return static_cast<double>(stay) / static_cast<double>(lcm);
}

TEST(ExpectedStayFractionModTest, MatchesBruteForceOverSweep) {
  for (int64_t a = 1; a <= 24; ++a) {
    for (int64_t b = 1; b <= 24; ++b) {
      EXPECT_NEAR(ExpectedStayFractionMod(a, b), BruteForceStayFraction(a, b),
                  1e-12)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(ExpectedStayFractionModTest, KnownValues) {
  EXPECT_DOUBLE_EQ(ExpectedStayFractionMod(8, 9), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(ExpectedStayFractionMod(4, 8), 0.5);
  EXPECT_DOUBLE_EQ(ExpectedStayFractionMod(8, 4), 0.5);
  EXPECT_DOUBLE_EQ(ExpectedStayFractionMod(7, 7), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedMoveFractionMod(8, 9), 8.0 / 9.0);
}

TEST(ExpectedMoveFractionScaddarTest, IsTheoreticalMinimum) {
  EXPECT_DOUBLE_EQ(ExpectedMoveFractionScaddar(8, 10), 0.2);
  EXPECT_DOUBLE_EQ(ExpectedMoveFractionScaddar(10, 8), 0.2);
}

class PolicyVsClosedFormTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(PolicyVsClosedFormTest, ModPolicyMatchesAnalyticPrediction) {
  const auto [n_prev, n_cur] = GetParam();
  const ScalingOp op =
      n_cur > n_prev
          ? ScalingOp::Add(n_cur - n_prev).value()
          : ScalingOp::Remove([&] {
              std::vector<DiskSlot> slots;
              for (int64_t s = 0; s < n_prev - n_cur; ++s) {
                slots.push_back(s);
              }
              return slots;
            }()).value();
  const MovedFractionEstimate estimate = EstimateMovedFraction(
      [&](int64_t trial) {
        PolicyOptions options;
        options.seed = static_cast<uint64_t>(trial) + 1;
        return std::move(MakePolicy("mod", n_prev, options)).value();
      },
      op, /*trials=*/8, /*blocks=*/20000, /*seed=*/0xabcu);
  // Removal renumbering maps low slots away, so the analytic mod formula
  // applies to additions exactly; for removals the surviving-slot shift
  // makes movement at least as large. Check the addition cases tightly.
  if (n_cur > n_prev) {
    EXPECT_TRUE(WithinStdError(estimate.mean,
                               ExpectedMoveFractionMod(n_prev, n_cur),
                               estimate.std_error, 4.0))
        << estimate.mean << " vs " << ExpectedMoveFractionMod(n_prev, n_cur)
        << " +- " << estimate.std_error;
  } else {
    EXPECT_GE(estimate.mean,
              ExpectedMoveFractionScaddar(n_prev, n_cur) - 1e-9);
  }
}

TEST_P(PolicyVsClosedFormTest, ScaddarPolicyAchievesTheMinimum) {
  const auto [n_prev, n_cur] = GetParam();
  const ScalingOp op =
      n_cur > n_prev
          ? ScalingOp::Add(n_cur - n_prev).value()
          : ScalingOp::Remove({0}).value();
  const int64_t effective_cur = n_cur > n_prev ? n_cur : n_prev - 1;
  const MovedFractionEstimate estimate = EstimateMovedFraction(
      [&](int64_t trial) {
        PolicyOptions options;
        options.seed = static_cast<uint64_t>(trial) + 1;
        return std::move(MakePolicy("scaddar", n_prev, options)).value();
      },
      op, /*trials=*/8, /*blocks=*/20000, /*seed=*/0xdefu);
  EXPECT_TRUE(WithinStdError(
      estimate.mean, ExpectedMoveFractionScaddar(n_prev, effective_cur),
      estimate.std_error, 4.0))
      << estimate.mean << " vs "
      << ExpectedMoveFractionScaddar(n_prev, effective_cur) << " +- "
      << estimate.std_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolicyVsClosedFormTest,
    ::testing::Values(std::pair<int64_t, int64_t>{8, 9},
                      std::pair<int64_t, int64_t>{8, 12},
                      std::pair<int64_t, int64_t>{4, 8},
                      std::pair<int64_t, int64_t>{9, 8},
                      std::pair<int64_t, int64_t>{16, 17},
                      std::pair<int64_t, int64_t>{5, 10}));

TEST(EstimateMovedFractionTest, ReportsSaneErrorBars) {
  const MovedFractionEstimate estimate = EstimateMovedFraction(
      [](int64_t trial) {
        PolicyOptions options;
        options.seed = static_cast<uint64_t>(trial) + 7;
        return std::move(MakePolicy("scaddar", 8, options)).value();
      },
      ScalingOp::Add(1).value(), /*trials=*/6, /*blocks=*/5000, 0x77u);
  EXPECT_EQ(estimate.trials, 6);
  EXPECT_EQ(estimate.blocks_per_trial, 5000);
  EXPECT_GT(estimate.mean, 0.05);
  EXPECT_LT(estimate.mean, 0.2);
  EXPECT_GT(estimate.std_error, 0.0);
  EXPECT_LT(estimate.std_error, 0.02);
}

TEST(WithinStdErrorTest, Basics) {
  EXPECT_TRUE(WithinStdError(1.0, 1.0, 0.0, 4.0));
  EXPECT_TRUE(WithinStdError(1.01, 1.0, 0.01, 4.0));
  EXPECT_FALSE(WithinStdError(1.1, 1.0, 0.01, 4.0));
}

}  // namespace
}  // namespace scaddar
