// Property harness for the Section 4.3 bound under the adaptive driver:
// seeded random churn over random (bits, eps) governor configs, checked
// against a *serial* oracle — its own OpLog plus a bare ToleranceGovernor,
// no server machinery. Two properties, per step:
//
//  1. Safety: the governed server's op log never stands outside the ε
//     budget (`WithinBudget` holds after every scaling op and every round).
//  2. Exactness: the server self-triggers a rebase exactly when the
//     oracle's `Consider` flips to kRebaseFirst — same count, same rounds,
//     all kBudget — never early, never late.
//
// The test also runs under the tsan/asan/ubsan smoke harnesses
// (cmake/*_smoke.cmake): the randomized churn is the widest single driver
// of the scaling/migration/reorg paths the suite has.

#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/governor.h"
#include "core/op_log.h"
#include "server/reorg_driver.h"
#include "server/server.h"

namespace scaddar {
namespace {

TEST(GovernorPropertyTest, GovernedChurnMatchesSerialOracleExactly) {
  std::mt19937_64 rng(0x5cadda9001ull);
  int trials_with_triggers = 0;
  for (int trial = 0; trial < 8; ++trial) {
    // Narrow generators so budgets exhaust within the trial; varied eps so
    // the limit lands at different op depths across trials.
    const int bits = 14 + static_cast<int>(rng() % 8);          // [14, 21]
    const double eps =
        0.02 + 0.03 * static_cast<double>(rng() % 8);           // [0.02, 0.23]

    ServerConfig config;
    config.initial_disks = 4;
    config.governor_bits = bits;
    config.governor_eps = eps;
    config.auto_reorg = true;
    auto server = CmServer::Create(config).value();
    for (ObjectId id = 1; id <= 3; ++id) {
      ASSERT_TRUE(server->AddObject(id, 400).ok());
    }

    // The oracle: an op log evolved serially beside the server. A predicted
    // trigger resets it over the same disk count, exactly as the server's
    // FullRedistribution starts a fresh log over the current disks.
    OpLog oracle = OpLog::Create(config.initial_disks).value();
    const ToleranceGovernor governor(bits, eps);
    std::vector<int64_t> predicted_rounds;

    for (int step = 0; step < 24; ++step) {
      const int64_t disks = oracle.current_disks();
      ScalingOp op = ScalingOp::Add(1).value();
      if (disks > 3 && rng() % 2 == 0) {
        op = ScalingOp::Remove(
                 {static_cast<DiskSlot>(rng() % static_cast<uint64_t>(disks))})
                 .value();
      } else {
        op = ScalingOp::Add(1 + static_cast<int64_t>(rng() % 3)).value();
      }

      const bool predict =
          governor.Consider(oracle, op) ==
          ToleranceGovernor::Advice::kRebaseFirst;
      if (predict) {
        oracle = OpLog::Create(disks).value();
        predicted_rounds.push_back(server->round());
      }
      ASSERT_TRUE(oracle.Append(op).ok());

      if (op.is_add()) {
        ASSERT_TRUE(server->ScaleAdd(op.add_count()).ok());
      } else {
        ASSERT_TRUE(server->ScaleRemove(op.removed_slots()).ok());
      }

      // Safety: the governed log is inside the budget after every op.
      EXPECT_TRUE(server->reorg_driver().governor().WithinBudget(
          server->policy().log()))
          << "trial " << trial << " step " << step;
      // Exactness: a trigger fired at this op iff the oracle predicted it.
      ASSERT_EQ(server->reorg_triggers().size(), predicted_rounds.size())
          << "trial " << trial << " step " << step;

      // A few serving rounds between ops; the end-of-round watch must not
      // add spurious triggers (fresh-or-gated logs are always in budget,
      // and the CoV watch is off).
      for (int tick = 0; tick < 3; ++tick) {
        server->Tick();
      }
      EXPECT_TRUE(server->reorg_driver().governor().WithinBudget(
          server->policy().log()));
      ASSERT_EQ(server->reorg_triggers().size(), predicted_rounds.size());
    }

    const std::vector<ReorgTrigger>& triggers = server->reorg_triggers();
    for (size_t i = 0; i < triggers.size(); ++i) {
      EXPECT_EQ(triggers[i].round, predicted_rounds[i]);
      EXPECT_EQ(triggers[i].reason, ReorgReason::kBudget);
      EXPECT_GT(triggers[i].value, 0.0);
      EXPECT_LE(triggers[i].value, 1.0);
    }
    if (!triggers.empty()) {
      ++trials_with_triggers;
    }
  }
  // The harness is vacuous if no trial ever hits the budget.
  EXPECT_GT(trials_with_triggers, 0);
}

TEST(GovernorPropertyTest, DriverCreateRejectsBadConfigs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AdaptiveReorgDriver::Create(0, 0.05, 0.0, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(65, 0.05, 0.0, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, 0.0, 0.0, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, -0.1, 0.0, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, nan, 0.0, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, inf, 0.0, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, 0.05, nan, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, 0.05, -0.5, 16).ok());
  EXPECT_FALSE(AdaptiveReorgDriver::Create(32, 0.05, 0.1, 0).ok());
  const auto driver = AdaptiveReorgDriver::Create(32, 0.05, 0.1, 16);
  ASSERT_TRUE(driver.ok());
  EXPECT_FALSE(driver.value().enabled());  // Starts disabled.
}

TEST(GovernorPropertyTest, ConfigureGovernorKeepsHistoryAndEnablement) {
  ServerConfig config;
  config.initial_disks = 4;
  config.governor_bits = 14;
  config.governor_eps = 0.05;
  config.auto_reorg = true;
  auto server = CmServer::Create(config).value();
  ASSERT_TRUE(server->AddObject(1, 200).ok());
  // Burn the 14-bit budget until at least one trigger lands.
  for (int i = 0; i < 12 && server->reorg_triggers().empty(); ++i) {
    ASSERT_TRUE(server->ScaleAdd(2).ok());
  }
  ASSERT_FALSE(server->reorg_triggers().empty());
  const size_t triggers = server->reorg_triggers().size();

  // Reconfigure wide: history and the enabled flag must carry over.
  ASSERT_TRUE(server->ConfigureGovernor(64, 0.05, 0.25).ok());
  EXPECT_EQ(server->reorg_triggers().size(), triggers);
  EXPECT_TRUE(server->reorg_driver().enabled());
  EXPECT_EQ(server->reorg_driver().governor().bits(), 64);
  EXPECT_EQ(server->reorg_driver().cov_threshold(), 0.25);
  // And the config mirrors the knobs for checkpoint/shard-template reuse.
  EXPECT_EQ(server->config().governor_bits, 64);
  EXPECT_EQ(server->config().reorg_cov_threshold, 0.25);

  EXPECT_FALSE(server->ConfigureGovernor(0, 0.05, 0.0).ok());
  EXPECT_FALSE(
      server
          ->ConfigureGovernor(32, std::numeric_limits<double>::quiet_NaN(),
                              0.0)
          .ok());
}

}  // namespace
}  // namespace scaddar
