#include "server/server.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

ServerConfig SmallConfig() {
  ServerConfig config;
  config.initial_disks = 4;
  config.disk_spec = {.capacity_blocks = 50'000,
                      .bandwidth_blocks_per_round = 8};
  config.master_seed = 2024;
  return config;
}

std::unique_ptr<CmServer> MakeServer(const ServerConfig& config) {
  auto server = CmServer::Create(config);
  SCADDAR_CHECK(server.ok());
  return std::move(server).value();
}

TEST(CmServerTest, CreateValidation) {
  ServerConfig bad = SmallConfig();
  bad.initial_disks = 0;
  EXPECT_FALSE(CmServer::Create(bad).ok());
  bad = SmallConfig();
  bad.bits = 70;
  EXPECT_FALSE(CmServer::Create(bad).ok());
  bad = SmallConfig();
  bad.policy = "bogus";
  EXPECT_FALSE(CmServer::Create(bad).ok());
}

TEST(CmServerTest, BitsWiderThanGeneratorFailAtIngest) {
  ServerConfig config = SmallConfig();
  config.prng_kind = PrngKind::kPcg32;  // 32-bit generator...
  config.bits = 48;                     // ...cannot produce 48-bit X0.
  auto server = MakeServer(config);
  EXPECT_FALSE(server->AddObject(1, 10).ok());
  EXPECT_EQ(server->store().total_blocks(), 0);
  // The failed ingest must leave no trace anywhere.
  EXPECT_FALSE(server->catalog().Contains(1));
  EXPECT_EQ(server->policy().num_objects(), 0);
}

TEST(CmServerTest, AddObjectMaterializesAllBlocks) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 1000).ok());
  EXPECT_EQ(server->store().total_blocks(), 1000);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  // All four disks hold a share.
  for (const PhysicalDiskId id : server->disks().live_ids()) {
    EXPECT_GT(server->store().CountOn(id), 0);
  }
}

TEST(CmServerTest, DuplicateObjectRejected) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 10).ok());
  EXPECT_FALSE(server->AddObject(1, 10).ok());
}

TEST(CmServerTest, RemoveObjectFreesBlocks) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 500).ok());
  ASSERT_TRUE(server->AddObject(2, 300).ok());
  ASSERT_TRUE(server->RemoveObject(1).ok());
  EXPECT_EQ(server->store().total_blocks(), 300);
  EXPECT_FALSE(server->catalog().Contains(1));
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  EXPECT_EQ(server->RemoveObject(1).code(), StatusCode::kNotFound);
}

TEST(CmServerTest, RemoveObjectRefusedWhileStreaming) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 100).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  EXPECT_EQ(server->RemoveObject(1).code(),
            StatusCode::kFailedPrecondition);
  for (int round = 0; round < 100; ++round) {
    server->Tick();
  }
  EXPECT_TRUE(server->RemoveObject(1).ok());
}

TEST(CmServerTest, RemoveObjectDuringMigrationIsSafe) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 800).ok());
  ASSERT_TRUE(server->AddObject(2, 800).ok());
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  // Queue holds moves for object 1; delete it mid-migration.
  ASSERT_TRUE(server->RemoveObject(1).ok());
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 10000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  EXPECT_EQ(server->store().total_blocks(), 800);
}

TEST(CmServerTest, StreamPlaysToCompletionWithoutHiccups) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 50).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  for (int round = 0; round < 50; ++round) {
    server->Tick();
  }
  EXPECT_EQ(server->completed_streams(), 1);
  EXPECT_EQ(server->active_streams(), 0);
  EXPECT_EQ(server->total_hiccups(), 0);
  EXPECT_EQ(server->total_served(), 50);
}

TEST(CmServerTest, AdmissionControlRejectsOverload) {
  ServerConfig config = SmallConfig();
  config.admission_utilization_cap = 0.5;  // 4 disks * 8 bw * 0.5 = 16.
  auto server = MakeServer(config);
  ASSERT_TRUE(server->AddObject(1, 100).ok());
  int64_t admitted = 0;
  int64_t rejected = 0;
  for (int i = 0; i < 20; ++i) {
    if (server->StartStream(1).ok()) {
      ++admitted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(admitted, 16);
  EXPECT_EQ(rejected, 4);
}

TEST(CmServerTest, StartStreamUnknownObjectFails) {
  auto server = MakeServer(SmallConfig());
  EXPECT_EQ(server->StartStream(9).status().code(), StatusCode::kNotFound);
}

TEST(CmServerTest, ScaleAddMigratesOnline) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 2000).ok());
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  EXPECT_GT(server->migration().pending(), 0);
  EXPECT_EQ(server->policy().current_disks(), 6);
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 10000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  // New disks now hold roughly 2/6 of all blocks.
  const int64_t on_new = server->store().CountOn(4) + server->store().CountOn(5);
  EXPECT_NEAR(static_cast<double>(on_new) / 2000.0, 2.0 / 6.0, 0.05);
}

TEST(CmServerTest, ScaleRemoveDrainsAndRetires) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 2000).ok());
  ASSERT_TRUE(server->ScaleRemove({1}).ok());
  // Disk 1 is retiring: still live (it holds blocks) but not a placement
  // target.
  EXPECT_TRUE(server->disks().IsLive(1));
  EXPECT_EQ(server->policy().current_disks(), 3);
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 10000);
  }
  server->Tick();  // One more round to run the retirement check.
  EXPECT_FALSE(server->disks().IsLive(1));
  EXPECT_EQ(server->store().CountOn(1), 0);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST(CmServerTest, ScaleRemoveValidatesSlots) {
  auto server = MakeServer(SmallConfig());
  EXPECT_FALSE(server->ScaleRemove({7}).ok());
  EXPECT_FALSE(server->ScaleRemove({0, 1, 2, 3}).ok());
  EXPECT_EQ(server->policy().current_disks(), 4);
}

TEST(CmServerTest, StreamsKeepPlayingDuringMigration) {
  ServerConfig config = SmallConfig();
  config.admission_utilization_cap = 0.4;
  auto server = MakeServer(config);
  ASSERT_TRUE(server->AddObject(1, 400).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server->StartStream(1).ok());
  }
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  int64_t served = 0;
  for (int round = 0; round < 200; ++round) {
    const RoundMetrics metrics = server->Tick();
    served += metrics.served;
  }
  EXPECT_GT(served, 1000);
  EXPECT_EQ(server->total_hiccups(), 0);  // Low load: no glitches.
}

TEST(CmServerTest, ToleranceGateUsesConfiguredBits) {
  ServerConfig config = SmallConfig();
  config.bits = 16;  // Tiny range: very few ops allowed.
  config.tolerance_eps = 0.05;
  auto server = MakeServer(config);
  const ScalingOp add = ScalingOp::Add(1).value();
  int supported = 0;
  while (!server->WouldExceedTolerance(add) && supported < 50) {
    ASSERT_TRUE(server->ScaleAdd(1).ok());
    ++supported;
  }
  EXPECT_GT(supported, 0);
  EXPECT_LT(supported, 10);  // b=16 with ~4-10 disks exhausts quickly.
}

TEST(CmServerTest, FullRedistributionRestartsPlacement) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 1000).ok());
  ASSERT_TRUE(server->AddObject(2, 500).ok());
  ASSERT_TRUE(server->ScaleAdd(1).ok());
  ASSERT_TRUE(server->FullRedistribution().ok());
  EXPECT_EQ(server->policy().log().num_ops(), 0);  // Fresh epoch 0.
  EXPECT_EQ(server->policy().current_disks(), 5);
  EXPECT_EQ(server->catalog().GetObject(1)->seed_generation, 1);
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 20000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST(CmServerTest, VerifyIntegrityReportsPendingMigration) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 500).ok());
  ASSERT_TRUE(server->ScaleAdd(1).ok());
  EXPECT_EQ(server->VerifyIntegrity().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CmServerTest, MetricsReportRoundState) {
  auto server = MakeServer(SmallConfig());
  ASSERT_TRUE(server->AddObject(1, 100).ok());
  ASSERT_TRUE(server->StartStream(1).ok());
  const RoundMetrics metrics = server->Tick();
  EXPECT_EQ(metrics.round, 0);
  EXPECT_EQ(metrics.active_streams, 1);
  EXPECT_EQ(metrics.requests, 1);
  EXPECT_EQ(metrics.served, 1);
  EXPECT_EQ(metrics.hiccups, 0);
  EXPECT_EQ(server->round(), 1);
}

TEST(CmServerTest, WorksWithEveryRegisteredPolicy) {
  for (const std::string_view name :
       {"scaddar", "naive", "mod", "directory", "jump", "chash"}) {
    ServerConfig config = SmallConfig();
    config.policy = std::string(name);
    auto server = MakeServer(config);
    ASSERT_TRUE(server->AddObject(1, 500).ok()) << name;
    ASSERT_TRUE(server->ScaleAdd(1).ok()) << name;
    int rounds = 0;
    while (!server->migration().idle() && rounds < 20000) {
      server->Tick();
      ++rounds;
    }
    EXPECT_TRUE(server->VerifyIntegrity().ok()) << name;
  }
}

}  // namespace
}  // namespace scaddar
