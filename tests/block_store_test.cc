#include "storage/block_store.h"

#include <gtest/gtest.h>

#include "placement/scaddar_policy.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(BlockStoreTest, PlaceAndLocate) {
  BlockStore store;
  ASSERT_TRUE(store.PlaceObject(1, {0, 1, 2, 0}).ok());
  EXPECT_EQ(store.total_blocks(), 4);
  EXPECT_EQ(*store.LocationOf({1, 0}), 0);
  EXPECT_EQ(*store.LocationOf({1, 2}), 2);
  EXPECT_EQ(store.CountOn(0), 2);
  EXPECT_EQ(store.CountOn(1), 1);
  EXPECT_EQ(store.CountOn(9), 0);
}

TEST(BlockStoreTest, PlaceValidation) {
  BlockStore store;
  EXPECT_FALSE(store.PlaceObject(1, {}).ok());
  ASSERT_TRUE(store.PlaceObject(1, {0}).ok());
  EXPECT_EQ(store.PlaceObject(1, {0}).code(), StatusCode::kAlreadyExists);
}

TEST(BlockStoreTest, LocationErrors) {
  BlockStore store;
  ASSERT_TRUE(store.PlaceObject(1, {0, 1}).ok());
  EXPECT_EQ(store.LocationOf({2, 0}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.LocationOf({1, 2}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store.LocationOf({1, -1}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(BlockStoreTest, DropObject) {
  BlockStore store;
  ASSERT_TRUE(store.PlaceObject(1, {0, 0}).ok());
  ASSERT_TRUE(store.DropObject(1).ok());
  EXPECT_EQ(store.total_blocks(), 0);
  EXPECT_EQ(store.CountOn(0), 0);
  EXPECT_EQ(store.DropObject(1).code(), StatusCode::kNotFound);
}

TEST(BlockStoreTest, ApplyMoveChecksSource) {
  BlockStore store;
  ASSERT_TRUE(store.PlaceObject(1, {0, 1}).ok());
  BlockMove move{.block = {1, 0}, .from_physical = 5, .to_physical = 2};
  EXPECT_EQ(store.ApplyMove(move).code(), StatusCode::kFailedPrecondition);
  move.from_physical = 0;
  ASSERT_TRUE(store.ApplyMove(move).ok());
  EXPECT_EQ(*store.LocationOf({1, 0}), 2);
  EXPECT_EQ(store.CountOn(0), 0);
  EXPECT_EQ(store.CountOn(2), 1);
}

TEST(BlockStoreTest, KeepsDiskArrayOccupancyInSync) {
  DiskArray disks(DiskSpec{.capacity_blocks = 100,
                           .bandwidth_blocks_per_round = 4});
  ASSERT_TRUE(disks.SyncLiveSet({0, 1, 2}).ok());
  BlockStore store(&disks);
  ASSERT_TRUE(store.PlaceObject(1, {0, 0, 1}).ok());
  EXPECT_EQ((*disks.GetDisk(0))->num_blocks(), 2);
  EXPECT_EQ((*disks.GetDisk(1))->num_blocks(), 1);
  ASSERT_TRUE(store.ApplyMove(BlockMove{
      .block = {1, 0}, .from_physical = 0, .to_physical = 2}).ok());
  EXPECT_EQ((*disks.GetDisk(0))->num_blocks(), 1);
  EXPECT_EQ((*disks.GetDisk(2))->num_blocks(), 1);
  ASSERT_TRUE(store.DropObject(1).ok());
  EXPECT_EQ((*disks.GetDisk(2))->num_blocks(), 0);
}

TEST(BlockStoreTest, VerifyAgainstPolicyDetectsDrift) {
  ScaddarPolicy policy(4);
  const std::vector<uint64_t> x0 = MakeX0(1, 100);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  BlockStore store;
  std::vector<PhysicalDiskId> locations;
  for (BlockIndex i = 0; i < 100; ++i) {
    locations.push_back(policy.Locate(1, i));
  }
  ASSERT_TRUE(store.PlaceObject(1, locations).ok());
  EXPECT_TRUE(store.VerifyAgainstPolicy(policy).ok());
  // Scaling without applying the plan makes the store stale.
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  EXPECT_EQ(store.VerifyAgainstPolicy(policy).code(), StatusCode::kInternal);
}

TEST(BlockStoreTest, ApplyPlanConvergesToPolicy) {
  ScaddarPolicy policy(4);
  const std::vector<uint64_t> x0 = MakeX0(2, 2000);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  BlockStore store;
  std::vector<PhysicalDiskId> locations;
  for (BlockIndex i = 0; i < 2000; ++i) {
    locations.push_back(policy.Locate(1, i));
  }
  ASSERT_TRUE(store.PlaceObject(1, locations).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({1}).value()).ok());
  const MovePlan plan = PlanOperation(policy.log(), 1, {{1, &x0}});
  ASSERT_TRUE(store.ApplyPlan(plan).ok());
  EXPECT_TRUE(store.VerifyAgainstPolicy(policy).ok());
}

}  // namespace
}  // namespace scaddar
