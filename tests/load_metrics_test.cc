#include "stats/load_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(LoadMetricsTest, UniformLoad) {
  const LoadMetrics metrics = ComputeLoadMetrics({100, 100, 100, 100});
  EXPECT_EQ(metrics.num_disks, 4);
  EXPECT_EQ(metrics.total_blocks, 400);
  EXPECT_DOUBLE_EQ(metrics.mean, 100.0);
  EXPECT_DOUBLE_EQ(metrics.stddev, 0.0);
  EXPECT_DOUBLE_EQ(metrics.coefficient_of_variation, 0.0);
  EXPECT_EQ(metrics.min_load, 100);
  EXPECT_EQ(metrics.max_load, 100);
  EXPECT_DOUBLE_EQ(metrics.unfairness, 0.0);
}

TEST(LoadMetricsTest, SkewedLoad) {
  const LoadMetrics metrics = ComputeLoadMetrics({50, 150});
  EXPECT_DOUBLE_EQ(metrics.mean, 100.0);
  EXPECT_DOUBLE_EQ(metrics.stddev, 50.0);
  EXPECT_DOUBLE_EQ(metrics.coefficient_of_variation, 0.5);
  EXPECT_DOUBLE_EQ(metrics.unfairness, 2.0);  // 150/50 - 1.
}

TEST(LoadMetricsTest, EmptyDiskGivesInfiniteUnfairness) {
  const LoadMetrics metrics = ComputeLoadMetrics({0, 10});
  EXPECT_TRUE(std::isinf(metrics.unfairness));
}

TEST(LoadMetricsTest, SingleDisk) {
  const LoadMetrics metrics = ComputeLoadMetrics({42});
  EXPECT_EQ(metrics.num_disks, 1);
  EXPECT_DOUBLE_EQ(metrics.coefficient_of_variation, 0.0);
  EXPECT_DOUBLE_EQ(metrics.unfairness, 0.0);
}

TEST(LoadMetricsDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(ComputeLoadMetrics({}), "SCADDAR_CHECK");
}

TEST(LoadMetricsDeathTest, NegativeCountAborts) {
  EXPECT_DEATH(ComputeLoadMetrics({5, -1}), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
