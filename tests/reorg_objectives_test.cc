// Statistical regression tests for the paper's two reorganization
// objectives, over random scaling chains bounded by the Section 4.3
// tolerance:
//   RO1 — move as few blocks as possible: structurally, additions move
//         blocks only onto new disks and removals only off removed disks;
//         quantitatively, the moved fraction tracks Eq. 1's minimum z_j.
//   RO2 — end uniformly distributed: per-disk counts pass a chi-square
//         uniformity test after every operation, including failure-driven
//         single-slot removals.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "placement/analysis.h"
#include "placement/registry.h"
#include "random/distributions.h"
#include "random/sequence.h"
#include "stats/chi_square.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

// b = 32 keeps R0 small enough that tolerance-bounded chains terminate
// quickly; eps is the server default.
constexpr int kBits = 32;
constexpr double kEps = 0.05;
constexpr uint64_t kR0 = (uint64_t{1} << kBits) - 1;
// Per-op false-alarm guards: the movement z-test runs at z = 5 and the
// uniformity test at alpha = 1e-4, both far into the tail so hundreds of
// op applications across seeds stay deterministic-in-practice.
constexpr double kZ = 5.0;
constexpr double kAlpha = 1e-4;

ScalingOp RandomOp(Prng& prng, int64_t current_disks) {
  if (current_disks <= 3 || Bernoulli(prng, 0.6)) {
    return ScalingOp::Add(1 + static_cast<int64_t>(UniformUint64(prng, 3)))
        .value();
  }
  const int64_t max_remove = std::min<int64_t>(current_disks - 2, 3);
  const int64_t count =
      1 + static_cast<int64_t>(
              UniformUint64(prng, static_cast<uint64_t>(max_remove)));
  return ScalingOp::Remove(
             SampleWithoutReplacement(prng, current_disks, count))
      .value();
}

std::unique_ptr<PlacementPolicy> MakeScaddar(int64_t n0, uint64_t seed,
                                             int64_t blocks_per_object) {
  auto policy = std::move(MakePolicy("scaddar", n0)).value();
  for (ObjectId id = 1; id <= 2; ++id) {
    auto seq =
        X0Sequence::Create(PrngKind::kSplitMix64, seed ^ (0xab << id), kBits)
            .value();
    std::vector<uint64_t> x0(static_cast<size_t>(blocks_per_object));
    for (uint64_t& value : x0) {
      value = seq.Next();
    }
    SCADDAR_CHECK(policy->AddObject(id, std::move(x0)).ok());
  }
  return policy;
}

// Applies `op` and checks both objectives on the transition.
void CheckOneOp(PlacementPolicy& policy, const ScalingOp& op) {
  const int64_t n_prev = policy.current_disks();
  const std::vector<PhysicalDiskId> disks_before =
      policy.log().physical_disks();
  const std::vector<int64_t> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(op).ok());
  const int64_t n_cur = policy.current_disks();
  const std::vector<PhysicalDiskId> disks_after =
      policy.log().physical_disks();
  const std::vector<int64_t> after = policy.AssignmentSnapshot();
  ASSERT_EQ(before.size(), after.size());

  // RO1 structural: moves go only where the operation demands. For an
  // addition, a moved block must land on a newly added physical disk; for
  // a removal, a moved block must have lived on a removed physical disk.
  const std::unordered_set<PhysicalDiskId> old_disks(disks_before.begin(),
                                                     disks_before.end());
  const std::unordered_set<PhysicalDiskId> new_disks(disks_after.begin(),
                                                     disks_after.end());
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] == after[i]) {
      continue;
    }
    if (op.is_add()) {
      EXPECT_FALSE(old_disks.contains(after[i]))
          << "addition moved block " << i << " onto pre-existing disk "
          << after[i];
    } else {
      EXPECT_FALSE(new_disks.contains(before[i]))
          << "removal moved block " << i << " off surviving disk "
          << before[i];
    }
  }

  // RO1 quantitative: the moved fraction is a sum of independent per-block
  // indicators with success probability z_j (Eq. 1), so it must sit within
  // kZ binomial standard errors of the theoretical minimum.
  const MovementStats stats =
      CompareAssignments(before, after, n_prev, n_cur);
  const double z_j = stats.theoretical_fraction;
  ASSERT_GT(z_j, 0.0);
  const double std_error =
      std::sqrt(z_j * (1.0 - z_j) /
                static_cast<double>(stats.total_blocks));
  EXPECT_TRUE(WithinStdError(stats.moved_fraction, z_j, std_error, kZ))
      << "moved " << stats.moved_fraction << " vs z_j " << z_j
      << " (std error " << std_error << ") for " << op.ToString();

  // RO2: the post-op distribution over live disks is uniform.
  const ChiSquareResult uniformity =
      ChiSquareUniform(policy.PerDiskCounts());
  EXPECT_TRUE(uniformity.IsUniform(kAlpha))
      << "post-op distribution non-uniform: p = " << uniformity.p_value
      << " after " << op.ToString();
}

class ReorgObjectivesTest : public ::testing::TestWithParam<uint64_t> {};

// Random mixed chains, stopped exactly where Section 4.3 says to rebase:
// the next op would push the remaining random range past R0*eps/(1+eps).
TEST_P(ReorgObjectivesTest, RandomChainsMeetBothObjectivesUntilTolerance) {
  auto prng = MakePrng(PrngKind::kSplitMix64, GetParam());
  auto policy = MakeScaddar(/*n0=*/6, GetParam(), /*blocks_per_object=*/4000);
  int64_t ops_applied = 0;
  for (int step = 0; step < 64; ++step) {
    const ScalingOp op = RandomOp(*prng, policy->current_disks());
    if (policy->log().WouldExceedTolerance(op, kR0, kEps)) {
      break;
    }
    CheckOneOp(*policy, op);
    if (::testing::Test::HasFailure()) {
      return;
    }
    ++ops_applied;
    // The invariant the chain is bounded by must itself keep holding.
    ASSERT_TRUE(policy->log().SatisfiesTolerance(kR0, kEps));
  }
  // The chain must do real work before the bound (or the 64-op guard)
  // stops it.
  EXPECT_GE(ops_applied, 3);
}

// Failure-driven reorganization: disks die one at a time (the Section 5
// failure model — a single-slot removal with no drain time), interleaved
// with capacity adds so the array survives. Both objectives must hold for
// every failure transition.
TEST_P(ReorgObjectivesTest, FailureRemovalsMeetBothObjectives) {
  auto prng = MakePrng(PrngKind::kSplitMix64, GetParam() ^ 0x5e1f);
  auto policy = MakeScaddar(/*n0=*/8, GetParam(), /*blocks_per_object=*/4000);
  int64_t failures = 0;
  for (int step = 0; step < 12; ++step) {
    const bool fail_one = (step % 2) == 0 && policy->current_disks() > 4;
    const ScalingOp op =
        fail_one
            ? ScalingOp::Remove({static_cast<DiskSlot>(UniformUint64(
                                    *prng, static_cast<uint64_t>(
                                               policy->current_disks())))})
                  .value()
            : ScalingOp::Add(1).value();
    if (policy->log().WouldExceedTolerance(op, kR0, kEps)) {
      break;
    }
    CheckOneOp(*policy, op);
    if (::testing::Test::HasFailure()) {
      return;
    }
    failures += fail_one ? 1 : 0;
  }
  EXPECT_GE(failures, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorgObjectivesTest,
                         ::testing::Values(0xa001, 0xa002, 0xa003, 0xa004,
                                           0xa005, 0xa006));

// Monte-Carlo cross-check against the closed form: across independent
// trials SCADDAR's mean moved fraction matches Definition 3.4's expected
// minimum for both operation kinds.
TEST(ReorgObjectivesMonteCarloTest, MeanMovedFractionMatchesClosedForm) {
  const auto factory = [](int64_t trial) {
    PolicyOptions options;
    options.seed = static_cast<uint64_t>(0x90 + trial);
    return std::move(MakePolicy("scaddar", 8, options)).value();
  };
  const struct {
    ScalingOp op;
    int64_t n_cur;
  } cases[] = {
      {ScalingOp::Add(2).value(), 10},
      {ScalingOp::Remove({1, 5}).value(), 6},
  };
  for (const auto& test_case : cases) {
    const MovedFractionEstimate estimate = EstimateMovedFraction(
        factory, test_case.op, /*trials=*/24, /*blocks=*/4000,
        /*seed=*/0xe571);
    const double expected = ExpectedMoveFractionScaddar(8, test_case.n_cur);
    EXPECT_TRUE(WithinStdError(estimate.mean, expected, estimate.std_error,
                               /*z=*/4.0))
        << "mean " << estimate.mean << " vs expected " << expected
        << " (std error " << estimate.std_error << ") for "
        << test_case.op.ToString();
  }
}

}  // namespace
}  // namespace scaddar
