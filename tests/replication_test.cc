#include "faults/replication.h"

#include <set>

#include <gtest/gtest.h>

#include "faults/mirror.h"
#include "random/distributions.h"
#include "random/sequence.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(ReplicaOffsetTest, DistinctWhenDisksSuffice) {
  for (const int64_t n : {3, 4, 7, 10, 16}) {
    for (const int64_t replicas : {2, 3}) {
      if (n < replicas) {
        continue;
      }
      std::set<int64_t> offsets;
      for (int64_t r = 0; r < replicas; ++r) {
        offsets.insert(ReplicatedPlacement::ReplicaOffset(n, replicas, r));
      }
      EXPECT_EQ(static_cast<int64_t>(offsets.size()), replicas)
          << "n=" << n << " R=" << replicas;
    }
  }
}

TEST(ReplicaOffsetTest, PrimaryHasZeroOffset) {
  EXPECT_EQ(ReplicatedPlacement::ReplicaOffset(10, 3, 0), 0);
  EXPECT_EQ(ReplicatedPlacement::ReplicaOffset(10, 3, 1), 3);
  EXPECT_EQ(ReplicatedPlacement::ReplicaOffset(10, 3, 2), 6);
}

TEST(ReplicatedPlacementTest, TwoWayMatchesMirroredPlacement) {
  ScaddarPolicy policy(9);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 1000)).ok());
  const ReplicatedPlacement replicated(&policy, 2);
  const MirroredPlacement mirror(&policy);
  for (BlockIndex i = 0; i < 1000; ++i) {
    EXPECT_EQ(replicated.ReplicaOf(1, i, 0), mirror.PrimaryOf(1, i));
    EXPECT_EQ(replicated.ReplicaOf(1, i, 1), mirror.MirrorOf(1, i));
  }
}

TEST(ReplicatedPlacementTest, ReplicasOnDistinctDisks) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(2, 2000)).ok());
  for (const int64_t replicas : {2, 3, 4}) {
    const ReplicatedPlacement placement(&policy, replicas);
    for (BlockIndex i = 0; i < 2000; ++i) {
      const std::vector<PhysicalDiskId> disks = placement.ReplicasOf(1, i);
      const std::set<PhysicalDiskId> unique(disks.begin(), disks.end());
      EXPECT_EQ(static_cast<int64_t>(unique.size()), replicas) << i;
    }
  }
}

TEST(ReplicatedPlacementTest, SurvivesUpToRMinusOneFailures) {
  ScaddarPolicy policy(9);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 1500)).ok());
  const ReplicatedPlacement placement(&policy, 3);
  EXPECT_EQ(placement.MaxFailuresTolerated(), 2);
  auto prng = MakePrng(PrngKind::kSplitMix64, 7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<int64_t> failed_slots =
        SampleWithoutReplacement(*prng, 9, 2);
    const std::unordered_set<PhysicalDiskId> failed(failed_slots.begin(),
                                                    failed_slots.end());
    for (BlockIndex i = 0; i < 1500; ++i) {
      const StatusOr<PhysicalDiskId> read =
          placement.LocateForRead(1, i, failed);
      ASSERT_TRUE(read.ok()) << "trial " << trial << " block " << i;
      EXPECT_FALSE(failed.contains(*read));
    }
  }
}

TEST(ReplicatedPlacementTest, ThreeFailuresCanLoseTriplicatedBlocks) {
  ScaddarPolicy policy(9);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(4, 3000)).ok());
  const ReplicatedPlacement placement(&policy, 3);
  // Fail an aligned triple {s, s+3, s+6}: blocks whose primary slot is in
  // that coset lose all three replicas.
  const std::unordered_set<PhysicalDiskId> failed = {0, 3, 6};
  int64_t lost = 0;
  for (BlockIndex i = 0; i < 3000; ++i) {
    if (!placement.LocateForRead(1, i, failed).ok()) {
      ++lost;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / 3000.0, 3.0 / 9.0, 0.04);
}

TEST(ReplicatedPlacementTest, ReplicatedLoadBalanced) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(5, 40000)).ok());
  const ReplicatedPlacement placement(&policy, 3);
  const std::vector<int64_t> counts = placement.PerDiskCountsWithReplicas();
  int64_t total = 0;
  for (const int64_t count : counts) {
    total += count;
  }
  EXPECT_EQ(total, 120000);  // Exactly 3x storage.
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(ReplicatedPlacementTest, PriorityReadPrefersLowestHealthyReplica) {
  ScaddarPolicy policy(6);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(6, 200)).ok());
  const ReplicatedPlacement placement(&policy, 3);
  for (BlockIndex i = 0; i < 200; ++i) {
    const PhysicalDiskId primary = placement.ReplicaOf(1, i, 0);
    EXPECT_EQ(*placement.LocateForRead(1, i, {}), primary);
    const PhysicalDiskId second = placement.ReplicaOf(1, i, 1);
    EXPECT_EQ(*placement.LocateForRead(1, i, {primary}), second);
  }
}

TEST(ReplicatedPlacementTest, ScalesWithTheOpLog) {
  ScaddarPolicy policy(6);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(7, 1000)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(3).value()).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({1}).value()).ok());
  const ReplicatedPlacement placement(&policy, 3);
  for (BlockIndex i = 0; i < 1000; ++i) {
    const std::vector<PhysicalDiskId> disks = placement.ReplicasOf(1, i);
    const std::set<PhysicalDiskId> unique(disks.begin(), disks.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(ReplicatedPlacementDeathTest, Validation) {
  ScaddarPolicy policy(4);
  EXPECT_DEATH(ReplicatedPlacement(nullptr, 2), "SCADDAR_CHECK");
  EXPECT_DEATH(ReplicatedPlacement(&policy, 1), "SCADDAR_CHECK");
  EXPECT_DEATH(ReplicatedPlacement::ReplicaOffset(10, 3, 3),
               "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
