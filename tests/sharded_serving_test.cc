// The sharded serving runtime's correctness contract: byte-identical
// results to the serial oracle (`RoundScheduler::RunBatched`) for any shard
// count, any thread interleaving, and any mix of scaling operations and
// migration traffic — plus the router's stability and the epoch/audit
// machinery. The stress test at the bottom runs 8 real worker threads
// under concurrent scale-up and is part of the tsan_smoke target list.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "placement/scaddar_policy.h"
#include "random/sequence.h"
#include "server/migration.h"
#include "server/scheduler.h"
#include "server/server.h"
#include "server/shard_router.h"
#include "server/sharded_scheduler.h"
#include "server/workload/traffic_engine.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

/// Clonable-by-construction serving stack (same idiom as
/// serving_equivalence_test): two instances built with the same arguments
/// are bit-identical, including their stream vectors.
struct Fixture {
  Fixture(int64_t n0, const std::vector<int64_t>& object_blocks,
          int64_t num_streams)
      : policy(n0),
        disks(DiskSpec{.capacity_blocks = 1'000'000,
                       .bandwidth_blocks_per_round = 8}),
        store(&disks) {
    ObjectId id = 1;
    for (const int64_t blocks : object_blocks) {
      SCADDAR_CHECK(
          policy.AddObject(id, MakeX0(static_cast<uint64_t>(id), blocks))
              .ok());
      ++id;
    }
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    std::vector<PhysicalDiskId> locations;
    for (id = 1; id <= static_cast<ObjectId>(object_blocks.size()); ++id) {
      policy.LocateAllBlocks(id, locations);
      SCADDAR_CHECK(store.PlaceObject(id, locations).ok());
    }
    // Streams over the objects round-robin, rates cycling 1..3 so some
    // rounds saturate disks (hiccup-path coverage).
    const int64_t num_objects = static_cast<int64_t>(object_blocks.size());
    for (int64_t s = 0; s < num_streams; ++s) {
      const ObjectId object = 1 + (s % num_objects);
      streams.emplace_back(s, object,
                           object_blocks[static_cast<size_t>(object - 1)],
                           /*start_round=*/0, /*rate=*/1 + (s % 3));
    }
  }

  void Apply(const ScalingOp& op) {
    SCADDAR_CHECK(policy.ApplyOp(op).ok());
    std::vector<PhysicalDiskId> live = policy.log().physical_disks();
    for (const PhysicalDiskId id : disks.live_ids()) {
      if (store.CountOn(id) > 0) {
        live.push_back(id);
      }
    }
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    SCADDAR_CHECK(disks.SyncLiveSet(live).ok());
    migration.EnqueueReconciliation(store, policy);
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
  std::vector<Stream> streams;
};

const std::vector<int64_t> kObjects = {900, 500, 1400};

void ExpectStreamsEqual(const std::vector<Stream>& a,
                        const std::vector<Stream>& b, int round) {
  ASSERT_EQ(a.size(), b.size()) << "round " << round;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].next_block(), b[i].next_block())
        << "round " << round << " stream " << a[i].id();
    ASSERT_EQ(a[i].hiccups(), b[i].hiccups())
        << "round " << round << " stream " << a[i].id();
  }
}

/// The tentpole contract: the sharded scheduler's served/hiccup metrics,
/// leftover budgets, stream progress AND migration-queue evolution are
/// byte-identical to the serial oracle through a scale-up, for 1, 2 and 8
/// shards, with the per-shard audit sampling turned on (and never firing).
TEST(ShardedServingTest, MatchesSerialOracleThroughScaleUp) {
  for (const int shards : {1, 2, 8}) {
    Fixture serial(4, kObjects, 24);
    Fixture sharded(4, kObjects, 24);
    RoundScheduler oracle;
    ShardedScheduler scheduler(shards, /*seed=*/0xfeedull);
    ShardedRunOptions options;
    options.audit_sample_bits = 2;  // ~1/4 of resolves spot-checked.
    ShardedRoundStats stats;
    int64_t audit_checks = 0;
    for (int round = 0; round < 120; ++round) {
      if (round == 15) {
        serial.Apply(ScalingOp::Add(2).value());
        sharded.Apply(ScalingOp::Add(2).value());
        ASSERT_EQ(serial.migration.QueueSnapshot(),
                  sharded.migration.QueueSnapshot());
      }
      std::unordered_map<PhysicalDiskId, int64_t> leftover_serial;
      std::unordered_map<PhysicalDiskId, int64_t> leftover_sharded;
      const RoundServiceResult a =
          oracle.RunBatched(serial.streams, serial.policy, serial.migration,
                            serial.store, serial.disks, &leftover_serial);
      const RoundServiceResult b = scheduler.Run(
          sharded.streams, sharded.policy, sharded.migration, sharded.store,
          sharded.disks, &leftover_sharded, options, &stats);
      ASSERT_EQ(a.requests, b.requests) << "shards=" << shards
                                        << " round " << round;
      ASSERT_EQ(a.served, b.served) << "shards=" << shards
                                    << " round " << round;
      ASSERT_EQ(a.hiccups, b.hiccups) << "shards=" << shards
                                      << " round " << round;
      ASSERT_EQ(leftover_serial, leftover_sharded)
          << "shards=" << shards << " round " << round;
      ExpectStreamsEqual(serial.streams, sharded.streams, round);
      // Spend the identical leftover on migration on both sides: the queue
      // must evolve identically too.
      serial.migration.RunRound(leftover_serial, serial.store, serial.disks,
                                serial.policy);
      sharded.migration.RunRound(leftover_sharded, sharded.store,
                                 sharded.disks, sharded.policy);
      ASSERT_EQ(serial.migration.QueueSnapshot(),
                sharded.migration.QueueSnapshot())
          << "shards=" << shards << " round " << round;
      // The audit never fires: every resolved location agrees with the
      // store's materialized truth, even mid-migration.
      int64_t shard_served = 0;
      for (const ShardStats& shard : stats.shards) {
        audit_checks += shard.audit_checks;
        ASSERT_EQ(shard.audit_failures, 0)
            << "shards=" << shards << " round " << round;
        shard_served += shard.served;
      }
      ASSERT_EQ(shard_served, b.served)
          << "per-shard attribution must partition the round's serves";
    }
    EXPECT_GT(audit_checks, 0) << "audit sampling never ran";
  }
}

/// serialize_shards (the bench's critical-path measurement mode) must not
/// change results — determinism is a property of the algorithm, not of the
/// execution mode.
TEST(ShardedServingTest, SerializedModeIdenticalToParallel) {
  Fixture parallel(4, kObjects, 18);
  Fixture serialized(4, kObjects, 18);
  ShardedScheduler a(6, 1);
  ShardedScheduler b(6, 1);
  ShardedRunOptions serialize;
  serialize.serialize_shards = true;
  for (int round = 0; round < 40; ++round) {
    const RoundServiceResult ra =
        a.Run(parallel.streams, parallel.policy, parallel.migration,
              parallel.store, parallel.disks, nullptr);
    const RoundServiceResult rb =
        b.Run(serialized.streams, serialized.policy, serialized.migration,
              serialized.store, serialized.disks, nullptr, serialize);
    ASSERT_EQ(ra.served, rb.served) << "round " << round;
    ASSERT_EQ(ra.hiccups, rb.hiccups) << "round " << round;
    ExpectStreamsEqual(parallel.streams, serialized.streams, round);
  }
}

TEST(ShardRouterTest, RoutingIsStableAndCached) {
  Fixture fx(4, kObjects, 30);
  ShardRouter router(4, 99);
  EXPECT_TRUE(router.Route(fx.streams));
  EXPECT_EQ(router.rebuilds(), 1);
  // Same population: the cache holds, no rebuild.
  EXPECT_FALSE(router.Route(fx.streams));
  EXPECT_EQ(router.rebuilds(), 1);
  // A stream's shard never changes while it lives.
  const int before = router.ShardOf(7);
  fx.streams.pop_back();
  EXPECT_TRUE(router.Route(fx.streams));
  EXPECT_EQ(router.ShardOf(7), before);
  // The shard lists partition the stream indices exactly.
  std::vector<size_t> seen;
  for (const ServingShard& shard : router.shards()) {
    for (const size_t i : shard.streams) {
      seen.push_back(i);
    }
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), fx.streams.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i);
  }
}

TEST(ShardRouterTest, ShardPrngIsReplayable) {
  ShardRouter a(3, 1234);
  ShardRouter b(3, 1234);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a.shards()[static_cast<size_t>(s)].prng.Next(),
                b.shards()[static_cast<size_t>(s)].prng.Next());
    }
  }
  // Distinct shards draw decorrelated streams.
  EXPECT_NE(ShardRouter(2, 5).shards()[0].prng.Next(),
            ShardRouter(2, 5).shards()[1].prng.Next());
}

ServerConfig ShardedConfig(ServingPath path, int shards = 0) {
  ServerConfig config;
  config.initial_disks = 6;
  config.disk_spec = {.capacity_blocks = 100'000,
                      .bandwidth_blocks_per_round = 6};
  config.serving_path = path;
  config.serving_shards = shards;
  return config;
}

std::unique_ptr<CmServer> MakeServer(const ServerConfig& config) {
  auto server = CmServer::Create(config);
  SCADDAR_CHECK(server.ok());
  return std::move(server).value();
}

/// Full-server twin test: a sharded server and a batch-cursor server fed
/// the same script report identical metrics every round through scaling
/// operations — the `kShardedCursor` Tick path is a drop-in.
TEST(ShardedServingTest, ServerPathMatchesBatchCursorThroughScaling) {
  auto sharded =
      MakeServer(ShardedConfig(ServingPath::kShardedCursor, /*shards=*/4));
  auto batch = MakeServer(ShardedConfig(ServingPath::kBatchCursor));
  for (CmServer* server : {sharded.get(), batch.get()}) {
    ASSERT_TRUE(server->AddObject(1, 400).ok());
    ASSERT_TRUE(server->AddObject(2, 250).ok());
    for (int s = 0; s < 6; ++s) {
      ASSERT_TRUE(server->StartStream(1 + (s % 2)).ok());
    }
  }
  for (int round = 0; round < 300; ++round) {
    if (round == 20) {
      ASSERT_TRUE(sharded->ScaleAdd(2).ok());
      ASSERT_TRUE(batch->ScaleAdd(2).ok());
    }
    if (round == 60) {
      ASSERT_TRUE(sharded->ScaleRemove({3}).ok());
      ASSERT_TRUE(batch->ScaleRemove({3}).ok());
    }
    const RoundMetrics a = sharded->Tick();
    const RoundMetrics b = batch->Tick();
    ASSERT_EQ(a.requests, b.requests) << "round " << round;
    ASSERT_EQ(a.served, b.served) << "round " << round;
    ASSERT_EQ(a.hiccups, b.hiccups) << "round " << round;
    ASSERT_EQ(a.migrated, b.migrated) << "round " << round;
    ASSERT_EQ(a.pending_migration, b.pending_migration) << "round " << round;
  }
  EXPECT_EQ(sharded->total_served(), batch->total_served());
  EXPECT_EQ(sharded->total_hiccups(), batch->total_hiccups());
  EXPECT_GT(sharded->total_served(), 0);
  ASSERT_NE(sharded->sharded_scheduler(), nullptr);
  EXPECT_EQ(sharded->sharded_scheduler()->num_shards(), 4);
  EXPECT_GT(sharded->sharded_scheduler()->epochs_published(), 0u);
}

/// The stress test: 8 real worker shards serving seeded Zipf traffic with
/// VCR churn while the array scales up and migration rounds interleave —
/// raced against a serial store-oracle server fed the identical traffic
/// trace. Identical per-round metrics prove no block serve was lost or
/// duplicated by the concurrency. Runs under TSan via tsan_smoke.
TEST(ShardedServingTest, StressConcurrentScaleUpMatchesOracle) {
  TrafficConfig traffic_config;
  traffic_config.seed = 0x57e55ull;
  traffic_config.arrivals_per_round = 2.0;
  traffic_config.zipf_theta = 0.729;
  traffic_config.pause_probability = 0.02;
  traffic_config.resume_probability = 0.3;
  traffic_config.seek_probability = 0.03;
  traffic_config.flash_crowds.push_back(
      FlashCrowd{.start_round = 40, .duration = 10, .rank = 0, .boost = 3});

  auto sharded =
      MakeServer(ShardedConfig(ServingPath::kShardedCursor, /*shards=*/8));
  auto oracle = MakeServer(ShardedConfig(ServingPath::kStoreScalar));
  for (CmServer* server : {sharded.get(), oracle.get()}) {
    for (ObjectId id = 1; id <= 8; ++id) {
      ASSERT_TRUE(server->AddObject(id, 120 + 40 * id).ok());
    }
  }
  // Twin engines with the same seed fed identically evolving servers emit
  // identical traces (the replayability contract doing double duty).
  TrafficEngine sharded_traffic(traffic_config);
  TrafficEngine oracle_traffic(traffic_config);
  sharded_traffic.SetObjects(sharded->catalog().object_ids());
  oracle_traffic.SetObjects(oracle->catalog().object_ids());

  for (int round = 0; round < 160; ++round) {
    if (round == 30) {
      ASSERT_TRUE(sharded->ScaleAdd(3).ok());
      ASSERT_TRUE(oracle->ScaleAdd(3).ok());
    }
    if (round == 90) {
      ASSERT_TRUE(sharded->ScaleRemove({2}).ok());
      ASSERT_TRUE(oracle->ScaleRemove({2}).ok());
    }
    const RoundMetrics a = sharded_traffic.DriveRound(*sharded);
    const RoundMetrics b = oracle_traffic.DriveRound(*oracle);
    ASSERT_EQ(a.requests, b.requests) << "round " << round;
    ASSERT_EQ(a.served, b.served) << "round " << round;
    ASSERT_EQ(a.hiccups, b.hiccups) << "round " << round;
    ASSERT_EQ(a.migrated, b.migrated) << "round " << round;
  }
  EXPECT_EQ(sharded_traffic.rejected_arrivals(),
            oracle_traffic.rejected_arrivals());
  EXPECT_EQ(sharded->total_served(), oracle->total_served());
  EXPECT_EQ(sharded->total_hiccups(), oracle->total_hiccups());
  EXPECT_GT(sharded->total_served(), 0);
}

}  // namespace
}  // namespace scaddar
