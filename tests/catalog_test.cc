#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

Catalog MakeCatalog() {
  return Catalog(/*master_seed=*/42, PrngKind::kSplitMix64, /*bits=*/64);
}

TEST(CatalogTest, AddAndGet) {
  Catalog catalog = MakeCatalog();
  ASSERT_TRUE(catalog.AddObject(1, 100).ok());
  ASSERT_TRUE(catalog.AddObject(2, 50, 3).ok());
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(3));
  EXPECT_EQ(catalog.num_objects(), 2);
  EXPECT_EQ(catalog.total_blocks(), 150);
  const StatusOr<CmObject> object = catalog.GetObject(2);
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->num_blocks, 50);
  EXPECT_EQ(object->bitrate_weight, 3);
  EXPECT_EQ(object->seed_generation, 0);
}

TEST(CatalogTest, Validation) {
  Catalog catalog = MakeCatalog();
  EXPECT_FALSE(catalog.AddObject(1, 0).ok());
  EXPECT_FALSE(catalog.AddObject(1, -5).ok());
  EXPECT_FALSE(catalog.AddObject(1, 10, 0).ok());
  ASSERT_TRUE(catalog.AddObject(1, 10).ok());
  EXPECT_EQ(catalog.AddObject(1, 10).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.GetObject(9).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.RemoveObject(9).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RemoveUpdatesTotals) {
  Catalog catalog = MakeCatalog();
  ASSERT_TRUE(catalog.AddObject(1, 100).ok());
  ASSERT_TRUE(catalog.AddObject(2, 60).ok());
  ASSERT_TRUE(catalog.RemoveObject(1).ok());
  EXPECT_EQ(catalog.num_objects(), 1);
  EXPECT_EQ(catalog.total_blocks(), 60);
  EXPECT_EQ(catalog.object_ids(), (std::vector<ObjectId>{2}));
}

TEST(CatalogTest, SeedsAreDeterministicAndDistinct) {
  Catalog a = MakeCatalog();
  Catalog b = MakeCatalog();
  ASSERT_TRUE(a.AddObject(1, 10).ok());
  ASSERT_TRUE(a.AddObject(2, 10).ok());
  ASSERT_TRUE(b.AddObject(1, 10).ok());
  EXPECT_EQ(*a.SeedOf(1), *b.SeedOf(1));
  EXPECT_NE(*a.SeedOf(1), *a.SeedOf(2));
}

TEST(CatalogTest, DifferentMasterSeedsDiverge) {
  Catalog a(1, PrngKind::kSplitMix64, 64);
  Catalog b(2, PrngKind::kSplitMix64, 64);
  ASSERT_TRUE(a.AddObject(1, 10).ok());
  ASSERT_TRUE(b.AddObject(1, 10).ok());
  EXPECT_NE(*a.SeedOf(1), *b.SeedOf(1));
}

TEST(CatalogTest, MaterializeX0Deterministic) {
  Catalog catalog = MakeCatalog();
  ASSERT_TRUE(catalog.AddObject(1, 200).ok());
  const auto first = catalog.MaterializeX0(1);
  const auto second = catalog.MaterializeX0(1);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(first->size(), 200u);
}

TEST(CatalogTest, BitsBoundX0Values) {
  Catalog catalog(7, PrngKind::kSplitMix64, 16);
  ASSERT_TRUE(catalog.AddObject(1, 1000).ok());
  EXPECT_EQ(catalog.r0(), 65535u);
  for (const uint64_t x : *catalog.MaterializeX0(1)) {
    EXPECT_LE(x, 65535u);
  }
}

TEST(CatalogTest, GenerationBumpChangesX0) {
  Catalog catalog = MakeCatalog();
  ASSERT_TRUE(catalog.AddObject(1, 100).ok());
  const auto before = catalog.MaterializeX0(1);
  ASSERT_TRUE(catalog.BumpGeneration(1).ok());
  const auto after = catalog.MaterializeX0(1);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_NE(*before, *after);
  EXPECT_EQ(catalog.GetObject(1)->seed_generation, 1);
  EXPECT_EQ(catalog.BumpGeneration(9).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, NarrowGeneratorRejectsWideBits) {
  Catalog catalog(7, PrngKind::kPcg32, 48);  // 48 bits from 32-bit PRNG.
  ASSERT_TRUE(catalog.AddObject(1, 10).ok());
  EXPECT_FALSE(catalog.MaterializeX0(1).ok());
}

}  // namespace
}  // namespace scaddar
