#include "faults/parity.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "random/sequence.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(ParityTest, GroupsPartitionTheObject) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 100)).ok());
  const ParityScheme parity(&policy, 4);
  for (BlockIndex i = 0; i < 100; ++i) {
    const ParityScheme::Group group = parity.GroupOf(1, i);
    EXPECT_EQ(group.members.front(), (i / 4) * 4);
    EXPECT_LE(static_cast<int64_t>(group.members.size()), 4);
    // The block belongs to its own group.
    EXPECT_NE(std::find(group.members.begin(), group.members.end(), i),
              group.members.end());
  }
}

TEST(ParityTest, TailGroupMayBeShort) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(2, 10)).ok());
  const ParityScheme parity(&policy, 4);
  const ParityScheme::Group tail = parity.GroupOf(1, 9);
  EXPECT_EQ(tail.members, (std::vector<BlockIndex>{8, 9}));
}

TEST(ParityTest, ParityAvoidsMemberDisksWhenPossible) {
  ScaddarPolicy policy(16);  // Plenty of disks vs. group size 4.
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 400)).ok());
  const ParityScheme parity(&policy, 4);
  for (BlockIndex i = 0; i < 400; i += 4) {
    const ParityScheme::Group group = parity.GroupOf(1, i);
    for (const BlockIndex member : group.members) {
      EXPECT_NE(policy.Locate(1, member), group.parity_disk)
          << "group of " << i;
    }
  }
}

TEST(ParityTest, HealthyReadCostsOneBlock) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(4, 100)).ok());
  const ParityScheme parity(&policy, 4);
  for (BlockIndex i = 0; i < 100; ++i) {
    const PhysicalDiskId elsewhere = (policy.Locate(1, i) + 1) % 8;
    const StatusOr<int64_t> reads = parity.ReadsToServe(1, i, elsewhere);
    ASSERT_TRUE(reads.ok());
    EXPECT_EQ(*reads, 1);
  }
}

TEST(ParityTest, ReconstructionReadsSurvivorsPlusParity) {
  ScaddarPolicy policy(16);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(5, 400)).ok());
  const ParityScheme parity(&policy, 4);
  int64_t reconstructions = 0;
  for (BlockIndex i = 0; i < 400; ++i) {
    const PhysicalDiskId failed = policy.Locate(1, i);
    if (!parity.IsRecoverable(1, i, failed)) {
      continue;  // Two members collided on the failed disk.
    }
    const StatusOr<int64_t> reads = parity.ReadsToServe(1, i, failed);
    ASSERT_TRUE(reads.ok());
    const auto group_size =
        static_cast<int64_t>(parity.GroupOf(1, i).members.size());
    EXPECT_EQ(*reads, group_size);  // (size-1) survivors + 1 parity.
    ++reconstructions;
  }
  EXPECT_GT(reconstructions, 300);  // Most groups are recoverable.
}

TEST(ParityTest, DoubleCasualtyIsUnrecoverable) {
  // With only 2 disks and group size 4, some group must put two members on
  // the same disk; failing it is unrecoverable.
  ScaddarPolicy policy(2);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(6, 200)).ok());
  const ParityScheme parity(&policy, 4);
  bool found_unrecoverable = false;
  for (BlockIndex i = 0; i < 200 && !found_unrecoverable; ++i) {
    const PhysicalDiskId failed = policy.Locate(1, i);
    if (!parity.IsRecoverable(1, i, failed)) {
      EXPECT_FALSE(parity.ReadsToServe(1, i, failed).ok());
      found_unrecoverable = true;
    }
  }
  EXPECT_TRUE(found_unrecoverable);
}

TEST(ParityTest, StorageOverheadIsInverseGroupSize) {
  ScaddarPolicy policy(8);
  const ParityScheme parity4(&policy, 4);
  const ParityScheme parity8(&policy, 8);
  EXPECT_DOUBLE_EQ(parity4.StorageOverhead(), 0.25);
  EXPECT_DOUBLE_EQ(parity8.StorageOverhead(), 0.125);
}

TEST(ParityDeathTest, GroupSizeValidation) {
  ScaddarPolicy policy(4);
  EXPECT_DEATH(ParityScheme(&policy, 1), "SCADDAR_CHECK");
  EXPECT_DEATH(ParityScheme(nullptr, 4), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
