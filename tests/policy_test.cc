#include "placement/policy.h"

#include <numeric>

#include <gtest/gtest.h>

#include "placement/scaddar_policy.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(PlacementPolicyTest, AddObjectRejectsDuplicates) {
  ScaddarPolicy policy(4);
  EXPECT_TRUE(policy.AddObject(1, MakeX0(1, 10)).ok());
  const Status duplicate = policy.AddObject(1, MakeX0(2, 10));
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
}

TEST(PlacementPolicyTest, CountsObjectsAndBlocks) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 10)).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(2, 25)).ok());
  EXPECT_EQ(policy.num_objects(), 2);
  EXPECT_EQ(policy.total_blocks(), 35);
  EXPECT_EQ(policy.NumBlocksOf(1), 10);
  EXPECT_EQ(policy.NumBlocksOf(2), 25);
}

TEST(PlacementPolicyTest, PerDiskCountsSumToTotal) {
  ScaddarPolicy policy(6);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 300)).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(2, 200)).ok());
  const std::vector<int64_t> counts = policy.PerDiskCounts();
  EXPECT_EQ(counts.size(), 6u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 500);
}

TEST(PlacementPolicyTest, PerDiskCountsTrackScaling) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 400)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  const std::vector<int64_t> counts = policy.PerDiskCounts();
  EXPECT_EQ(counts.size(), 6u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 400);
  // The new disks must actually hold blocks.
  EXPECT_GT(counts[4], 0);
  EXPECT_GT(counts[5], 0);
}

TEST(PlacementPolicyTest, AssignmentSnapshotIsStableOrder) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(7, MakeX0(1, 5)).ok());
  ASSERT_TRUE(policy.AddObject(3, MakeX0(2, 5)).ok());
  const std::vector<PhysicalDiskId> snapshot = policy.AssignmentSnapshot();
  ASSERT_EQ(snapshot.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(snapshot[static_cast<size_t>(i)], policy.Locate(7, i));
    EXPECT_EQ(snapshot[static_cast<size_t>(5 + i)], policy.Locate(3, i));
  }
}

TEST(PlacementPolicyTest, ObjectsViewMatchesRegistration) {
  ScaddarPolicy policy(4);
  const std::vector<uint64_t> x0 = MakeX0(1, 3);
  ASSERT_TRUE(policy.AddObject(42, x0).ok());
  const auto& view = policy.objects_view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].first, 42);
  EXPECT_EQ(view[0].second, x0);
}

TEST(PlacementPolicyTest, ApplyOpValidationDoesNotCorrupt) {
  ScaddarPolicy policy(2);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 50)).ok());
  EXPECT_FALSE(policy.ApplyOp(ScalingOp::Remove({5}).value()).ok());
  EXPECT_EQ(policy.current_disks(), 2);
  EXPECT_EQ(policy.log().num_ops(), 0);
}

TEST(PlacementPolicyTest, RemoveObjectFreesState) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 10)).ok());
  ASSERT_TRUE(policy.AddObject(2, MakeX0(2, 20)).ok());
  ASSERT_TRUE(policy.AddObject(3, MakeX0(3, 30)).ok());
  ASSERT_TRUE(policy.RemoveObject(2).ok());
  EXPECT_EQ(policy.num_objects(), 2);
  EXPECT_EQ(policy.total_blocks(), 40);
  EXPECT_EQ(policy.RemoveObject(2).code(), StatusCode::kNotFound);
  // Remaining objects still resolve, including the reindexed tail.
  EXPECT_NO_FATAL_FAILURE(policy.Locate(1, 0));
  EXPECT_NO_FATAL_FAILURE(policy.Locate(3, 29));
  EXPECT_EQ(policy.epoch_added(3), 0);
}

TEST(PlacementPolicyTest, RemovedIdCanBeReRegistered) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 10)).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(policy.RemoveObject(1).ok());
  ASSERT_TRUE(policy.AddObject(1, MakeX0(9, 5)).ok());
  EXPECT_EQ(policy.NumBlocksOf(1), 5);
  EXPECT_EQ(policy.epoch_added(1), 1);  // Re-registered at the new epoch.
}

TEST(PlacementPolicyDeathTest, LocateUnknownObjectAborts) {
  ScaddarPolicy policy(4);
  EXPECT_DEATH(policy.Locate(99, 0), "SCADDAR_CHECK");
}

TEST(PlacementPolicyDeathTest, LocateOutOfRangeBlockAborts) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(1, 5)).ok());
  EXPECT_DEATH(policy.Locate(1, 5), "SCADDAR_CHECK");
  EXPECT_DEATH(policy.Locate(1, -1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
