#include <gtest/gtest.h>

#include "server/server.h"

namespace scaddar {
namespace {

ServerConfig Config(const char* policy = "scaddar") {
  ServerConfig config;
  config.initial_disks = 5;
  config.policy = policy;
  config.master_seed = 424242;
  return config;
}

std::unique_ptr<CmServer> Make(const ServerConfig& config) {
  return std::move(CmServer::Create(config)).value();
}

void DrainMigration(CmServer& server) {
  int rounds = 0;
  while (!server.migration().idle()) {
    server.Tick();
    SCADDAR_CHECK(++rounds < 100000);
  }
  server.Tick();
}

TEST(SnapshotTest, RoundTripPreservesEveryBlockLocation) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 800).ok());
  ASSERT_TRUE(server->ScaleAdd(2).ok());
  DrainMigration(*server);
  ASSERT_TRUE(server->AddObject(2, 400, 3).ok());  // Registered at epoch 1.
  ASSERT_TRUE(server->ScaleRemove({3}).ok());
  DrainMigration(*server);

  const StatusOr<std::string> snapshot = server->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());
  const auto restored = CmServer::Restore(Config(), *snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ((*restored)->policy().current_disks(),
            server->policy().current_disks());
  EXPECT_EQ((*restored)->policy().log().Serialize(),
            server->policy().log().Serialize());
  for (const ObjectId id : {1, 2}) {
    const int64_t blocks = server->catalog().GetObject(id)->num_blocks;
    for (BlockIndex i = 0; i < blocks; ++i) {
      ASSERT_EQ((*restored)->policy().Locate(id, i),
                server->policy().Locate(id, i))
          << "object " << id << " block " << i;
    }
  }
  EXPECT_TRUE((*restored)->VerifyIntegrity().ok());
  EXPECT_EQ((*restored)->store().total_blocks(),
            server->store().total_blocks());
}

TEST(SnapshotTest, PreservesSeedGenerations) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 300).ok());
  ASSERT_TRUE(server->FullRedistribution().ok());
  DrainMigration(*server);
  ASSERT_EQ(server->catalog().GetObject(1)->seed_generation, 1);

  const auto restored =
      CmServer::Restore(Config(), *server->SaveSnapshot());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->catalog().GetObject(1)->seed_generation, 1);
  for (BlockIndex i = 0; i < 300; ++i) {
    ASSERT_EQ((*restored)->policy().Locate(1, i),
              server->policy().Locate(1, i));
  }
}

TEST(SnapshotTest, SnapshotIsTinyComparedToADirectory) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 100000).ok());
  ASSERT_TRUE(server->ScaleAdd(3).ok());
  DrainMigration(*server);
  const std::string snapshot = *server->SaveSnapshot();
  // The paper's storage argument: metadata is O(objects + ops), not
  // O(blocks). 100k blocks, yet the snapshot stays under 200 bytes.
  EXPECT_LT(snapshot.size(), 200u);
}

TEST(SnapshotTest, RefusesMidMigrationSnapshot) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 500).ok());
  ASSERT_TRUE(server->ScaleAdd(1).ok());
  EXPECT_EQ(server->SaveSnapshot().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, RejectsCorruptedInput) {
  const ServerConfig config = Config();
  EXPECT_FALSE(CmServer::Restore(config, "").ok());
  EXPECT_FALSE(CmServer::Restore(config, "garbage\n").ok());
  EXPECT_FALSE(
      CmServer::Restore(config, "scaddar-snapshot-v1\npolicy=scaddar\n")
          .ok());
  EXPECT_FALSE(CmServer::Restore(config,
                                 "scaddar-snapshot-v1\npolicy=scaddar\n"
                                 "oplog=5\nobject=1,2\n")
                   .ok());
  EXPECT_FALSE(CmServer::Restore(config,
                                 "scaddar-snapshot-v1\npolicy=scaddar\n"
                                 "oplog=5\nunknown=1\n")
                   .ok());
}

TEST(SnapshotTest, RejectsOutOfRangeRegistrationEpoch) {
  const ServerConfig config = Config();
  EXPECT_FALSE(CmServer::Restore(config,
                                 "scaddar-snapshot-v1\npolicy=scaddar\n"
                                 "oplog=5;A1\nobject=1,10,1,0,5\n")
                   .ok());
  EXPECT_FALSE(CmServer::Restore(config,
                                 "scaddar-snapshot-v1\npolicy=scaddar\n"
                                 "oplog=5\nobject=1,10,1,0,-1\n")
                   .ok());
}

TEST(SnapshotTest, RejectsPolicyMismatch) {
  auto server = Make(Config());
  ASSERT_TRUE(server->AddObject(1, 10).ok());
  const std::string snapshot = *server->SaveSnapshot();
  EXPECT_EQ(CmServer::Restore(Config("mod"), snapshot).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, StatefulPoliciesAreUnimplemented) {
  auto server = Make(Config("directory"));
  ASSERT_TRUE(server->AddObject(1, 10).ok());
  const std::string snapshot = *server->SaveSnapshot();
  EXPECT_EQ(
      CmServer::Restore(Config("directory"), snapshot).status().code(),
      StatusCode::kUnimplemented);
}

TEST(SnapshotTest, DeterministicPoliciesAllRoundTrip) {
  for (const char* name : {"scaddar", "naive", "mod", "roundrobin"}) {
    auto server = Make(Config(name));
    ASSERT_TRUE(server->AddObject(1, 300).ok());
    ASSERT_TRUE(server->ScaleAdd(1).ok());
    DrainMigration(*server);
    const auto restored =
        CmServer::Restore(Config(name), *server->SaveSnapshot());
    ASSERT_TRUE(restored.ok()) << name;
    for (BlockIndex i = 0; i < 300; ++i) {
      ASSERT_EQ((*restored)->policy().Locate(1, i),
                server->policy().Locate(1, i))
          << name << " block " << i;
    }
  }
}

}  // namespace
}  // namespace scaddar
