#include "server/location_cursor.h"

#include <gtest/gtest.h>

#include "placement/scaddar_policy.h"
#include "random/sequence.h"
#include "server/migration.h"
#include "storage/block_store.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

constexpr int64_t kBlocks = 2000;

/// Policy + store + migration wired like the server's serving path.
struct Fixture {
  explicit Fixture(int64_t n0 = 4)
      : policy(n0),
        disks(DiskSpec{.capacity_blocks = 1'000'000,
                       .bandwidth_blocks_per_round = 8}),
        store(&disks) {
    SCADDAR_CHECK(policy.AddObject(1, MakeX0(1, kBlocks)).ok());
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    std::vector<PhysicalDiskId> locations;
    for (BlockIndex i = 0; i < kBlocks; ++i) {
      locations.push_back(policy.Locate(1, i));
    }
    SCADDAR_CHECK(store.PlaceObject(1, locations).ok());
  }

  /// Applies an Add op and queues the divergence, like CmServer::ScaleAdd.
  void ScaleAdd(int64_t count) {
    SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(count).value()).ok());
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    migration.EnqueueReconciliation(store, policy);
  }

  void DrainMigration() {
    while (!migration.idle()) {
      std::unordered_map<PhysicalDiskId, int64_t> budget;
      for (const PhysicalDiskId id : disks.live_ids()) {
        budget[id] = 100;
      }
      migration.RunRound(budget, store, disks, policy);
    }
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
};

TEST(LocationCursorTest, MatchesStoreTruthOverFullPlayback) {
  Fixture fx;
  LocationCursor cursor(1, kBlocks);
  for (BlockIndex i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(cursor.Get(i, fx.policy, fx.store, fx.migration),
              *fx.store.LocationOf({1, i}))
        << "block " << i;
  }
}

TEST(LocationCursorTest, SequentialReadsRefillOncePerWindow) {
  Fixture fx;
  LocationCursor cursor(1, kBlocks, /*window=*/128);
  for (BlockIndex i = 0; i < kBlocks; ++i) {
    cursor.Get(i, fx.policy, fx.store, fx.migration);
  }
  EXPECT_EQ(cursor.refills(), (kBlocks + 127) / 128);
}

TEST(LocationCursorTest, ScalingOpMidStreamRedirectsToPostOpLocations) {
  Fixture fx;
  LocationCursor cursor(1, kBlocks, /*window=*/256);
  // Play the first half; the window is warm past the read point.
  for (BlockIndex i = 0; i < kBlocks / 2; ++i) {
    ASSERT_EQ(cursor.Get(i, fx.policy, fx.store, fx.migration),
              *fx.store.LocationOf({1, i}));
  }
  // Scaling op between rounds: the op log revision changes, divergent
  // blocks are queued, and the store starts drifting toward the new AF().
  fx.ScaleAdd(2);
  // Mid-migration the cursor must keep following materialized truth
  // (reads go to where blocks *are*), re-resolving as moves land.
  BlockIndex i = kBlocks / 2;
  for (; i < kBlocks / 2 + 64; ++i) {
    ASSERT_EQ(cursor.Get(i, fx.policy, fx.store, fx.migration),
              *fx.store.LocationOf({1, i}))
        << "mid-migration block " << i;
    std::unordered_map<PhysicalDiskId, int64_t> budget;
    for (const PhysicalDiskId id : fx.disks.live_ids()) {
      budget[id] = 4;
    }
    fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy);
  }
  fx.DrainMigration();
  // Post-migration: store == new AF(), and the cursor serves the post-op
  // locations (which differ from the pre-op placement for some blocks).
  // A twin policy without the op replays where reads *would* have gone.
  ScaddarPolicy pre_op(4);
  SCADDAR_CHECK(pre_op.AddObject(1, MakeX0(1, kBlocks)).ok());
  int64_t redirected = 0;
  for (; i < kBlocks; ++i) {
    const PhysicalDiskId served =
        cursor.Get(i, fx.policy, fx.store, fx.migration);
    ASSERT_EQ(served, fx.policy.Locate(1, i)) << "post-op block " << i;
    if (served != pre_op.Locate(1, i)) {
      ++redirected;
    }
  }
  EXPECT_GT(redirected, 0);
}

TEST(LocationCursorTest, PendingMovesBypassWindowThenDrainRefills) {
  Fixture fx;
  LocationCursor cursor(1, kBlocks, /*window=*/512);
  ASSERT_EQ(cursor.Get(0, fx.policy, fx.store, fx.migration),
            *fx.store.LocationOf({1, 0}));
  const int64_t warm_refills = cursor.refills();
  // Displace block 3 with the divergence queued (the invariant every
  // mutation source upholds).
  const PhysicalDiskId from = *fx.store.LocationOf({1, 3});
  PhysicalDiskId to = from;
  for (const PhysicalDiskId id : fx.disks.live_ids()) {
    if (id != from) {
      to = id;
      break;
    }
  }
  MovePlan plan;
  plan.Add(BlockMove{.block = {1, 3}});
  fx.migration.EnqueuePlan(plan);
  ASSERT_TRUE(fx.store
                  .ApplyMove(BlockMove{.block = {1, 3},
                                       .from_physical = from,
                                       .to_physical = to})
                  .ok());
  // While the object has a pending move the cursor serves the materialized
  // row directly — the stale warm window is bypassed, not churned.
  EXPECT_EQ(cursor.Get(3, fx.policy, fx.store, fx.migration), to);
  EXPECT_EQ(cursor.refills(), warm_refills);
  // Draining moves the block back to its AF() target and bumps the row
  // revision, so the first clean read refills the (now stale) window.
  fx.DrainMigration();
  ASSERT_EQ(fx.migration.pending_for(1), 0);
  EXPECT_EQ(cursor.Get(3, fx.policy, fx.store, fx.migration),
            *fx.store.LocationOf({1, 3}));
  EXPECT_GT(cursor.refills(), warm_refills);
}

TEST(LocationCursorTest, ForeignObjectMovesDoNotEvictCleanWindow) {
  Fixture fx;
  // A second object whose migration traffic must not disturb object 1.
  SCADDAR_CHECK(fx.policy.AddObject(2, MakeX0(2, kBlocks)).ok());
  std::vector<PhysicalDiskId> locations;
  for (BlockIndex i = 0; i < kBlocks; ++i) {
    locations.push_back(fx.policy.Locate(2, i));
  }
  SCADDAR_CHECK(fx.store.PlaceObject(2, locations).ok());

  LocationCursor cursor(1, kBlocks, /*window=*/512);
  cursor.Get(0, fx.policy, fx.store, fx.migration);
  const int64_t warm_refills = cursor.refills();

  // Displace a block of object 2, divergence queued — the shape of another
  // stream's migration round landing a move.
  const PhysicalDiskId from = *fx.store.LocationOf({2, 7});
  PhysicalDiskId to = from;
  for (const PhysicalDiskId id : fx.disks.live_ids()) {
    if (id != from) {
      to = id;
      break;
    }
  }
  MovePlan plan;
  plan.Add(BlockMove{.block = {2, 7}});
  fx.migration.EnqueuePlan(plan);
  ASSERT_TRUE(fx.store
                  .ApplyMove(BlockMove{.block = {2, 7},
                                       .from_physical = from,
                                       .to_physical = to})
                  .ok());

  // The global store revision moved, but object 1's row did not: the warm
  // window survives the row-level check and keeps serving refill-free.
  EXPECT_TRUE(cursor.WindowCovers(10, fx.policy, fx.store));
  EXPECT_EQ(cursor.Get(10, fx.policy, fx.store, fx.migration),
            *fx.store.LocationOf({1, 10}));
  EXPECT_EQ(cursor.refills(), warm_refills);
}

TEST(LocationCursorTest, SeekOutsideWindowRefills) {
  Fixture fx;
  LocationCursor cursor(1, kBlocks, /*window=*/64);
  cursor.Get(0, fx.policy, fx.store, fx.migration);
  EXPECT_TRUE(cursor.WindowCovers(10, fx.policy, fx.store));
  EXPECT_FALSE(cursor.WindowCovers(1000, fx.policy, fx.store));
  EXPECT_EQ(cursor.Get(1000, fx.policy, fx.store, fx.migration),
            *fx.store.LocationOf({1, 1000}));
  // Backward seek (VCR rewind) as well.
  EXPECT_EQ(cursor.Get(5, fx.policy, fx.store, fx.migration),
            *fx.store.LocationOf({1, 5}));
}

}  // namespace
}  // namespace scaddar
