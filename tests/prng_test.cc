#include "random/prng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "random/lcg48.h"
#include "random/pcg32.h"
#include "random/splitmix64.h"
#include "random/xoshiro256.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

class PrngKindTest : public ::testing::TestWithParam<PrngKind> {};

TEST_P(PrngKindTest, SameSeedSameSequence) {
  auto a = MakePrng(GetParam(), 12345);
  auto b = MakePrng(GetParam(), 12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a->Next(), b->Next()) << "at step " << i;
  }
}

TEST_P(PrngKindTest, DifferentSeedsDiverge) {
  auto a = MakePrng(GetParam(), 1);
  auto b = MakePrng(GetParam(), 2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a->Next() != b->Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 95);
}

TEST_P(PrngKindTest, OutputsWithinDeclaredRange) {
  auto prng = MakePrng(GetParam(), 7);
  const uint64_t max = prng->max();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(prng->Next(), max);
  }
}

TEST_P(PrngKindTest, ClonePreservesPosition) {
  auto prng = MakePrng(GetParam(), 99);
  for (int i = 0; i < 57; ++i) {
    prng->Next();
  }
  auto clone = prng->Clone();
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(prng->Next(), clone->Next()) << "at step " << i;
  }
}

TEST_P(PrngKindTest, NameRoundTripsThroughRegistry) {
  auto prng = MakePrng(GetParam(), 0);
  EXPECT_EQ(prng->name(), PrngKindName(GetParam()));
  const StatusOr<PrngKind> parsed = PrngKindFromName(prng->name());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, GetParam());
}

TEST_P(PrngKindTest, ModularProjectionIsRoughlyUniform) {
  // The property the whole paper rests on: X mod N is near-uniform.
  auto prng = MakePrng(GetParam(), 0xfeedull);
  constexpr int kDisks = 16;
  constexpr int kSamples = 160000;
  std::vector<int64_t> counts(kDisks, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[prng->Next() % kDisks];
  }
  const ChiSquareResult result = ChiSquareUniform(counts);
  EXPECT_TRUE(result.IsUniform(0.001))
      << "chi2=" << result.statistic << " p=" << result.p_value;
}

TEST_P(PrngKindTest, NoShortCycleInFirstMillion) {
  auto prng = MakePrng(GetParam(), 424242);
  const uint64_t first = prng->Next();
  const uint64_t second = prng->Next();
  int repeats = 0;
  for (int i = 0; i < 100000; ++i) {
    if (prng->Next() == first && prng->Next() == second) {
      ++repeats;
    }
  }
  EXPECT_EQ(repeats, 0);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, PrngKindTest,
                         ::testing::Values(PrngKind::kSplitMix64,
                                           PrngKind::kXoshiro256,
                                           PrngKind::kLcg48,
                                           PrngKind::kPcg32),
                         [](const auto& info) {
                           return std::string(PrngKindName(info.param));
                         });

TEST(PrngBitsTest, DeclaredWidths) {
  EXPECT_EQ(MakePrng(PrngKind::kSplitMix64, 0)->bits(), 64);
  EXPECT_EQ(MakePrng(PrngKind::kXoshiro256, 0)->bits(), 64);
  EXPECT_EQ(MakePrng(PrngKind::kLcg48, 0)->bits(), 48);
  EXPECT_EQ(MakePrng(PrngKind::kPcg32, 0)->bits(), 32);
}

TEST(PrngFactoryTest, UnknownNameFails) {
  EXPECT_FALSE(PrngKindFromName("mersenne").ok());
  EXPECT_FALSE(PrngKindFromName("").ok());
}

TEST(SplitMix64Test, KnownVector) {
  // Reference values for seed 0 from the public-domain implementation.
  SplitMix64 prng(0);
  EXPECT_EQ(prng.Next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(prng.Next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(prng.Next(), 0x06c45d188009454full);
}

TEST(Mix64Test, ZeroIsNotFixedPoint) { EXPECT_NE(Mix64(0), 0u); }

TEST(Mix64Test, Deterministic) { EXPECT_EQ(Mix64(123), Mix64(123)); }

TEST(Mix64Test, AvalancheSpread) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total_flips +=
        __builtin_popcountll(Mix64(42) ^ Mix64(42 ^ (uint64_t{1} << bit)));
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(MixSeedsTest, OrderMatters) {
  EXPECT_NE(MixSeeds(1, 2), MixSeeds(2, 1));
}

TEST(MixSeedsTest, SensitiveToBothArguments) {
  EXPECT_NE(MixSeeds(1, 2), MixSeeds(1, 3));
  EXPECT_NE(MixSeeds(1, 2), MixSeeds(4, 2));
}

TEST(Lcg48Test, StaysWithin48Bits) {
  Lcg48 prng(0x123456789abcdefull);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.Next(), uint64_t{1} << 48);
  }
}

TEST(Pcg32Test, StaysWithin32Bits) {
  Pcg32 prng(987);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(prng.Next(), 0xffffffffull);
  }
}

TEST(Xoshiro256Test, ZeroSeedIsValid) {
  Xoshiro256 prng(0);
  // Must not get stuck at zero.
  uint64_t nonzero = 0;
  for (int i = 0; i < 10; ++i) {
    nonzero |= prng.Next();
  }
  EXPECT_NE(nonzero, 0u);
}

}  // namespace
}  // namespace scaddar
