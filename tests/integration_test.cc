// End-to-end invariants across the whole stack: placement policies, the
// materialized block store, online migration and the CM server, driven by
// randomized but seed-deterministic operation sequences.

#include <algorithm>

#include <gtest/gtest.h>

#include "placement/registry.h"
#include "random/distributions.h"
#include "random/sequence.h"
#include "server/server.h"
#include "server/workload.h"
#include "stats/load_metrics.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

// Generates a random but valid scaling op for the current disk count.
ScalingOp RandomOp(Prng& prng, int64_t current_disks) {
  const bool add = current_disks <= 2 || Bernoulli(prng, 0.6);
  if (add) {
    return ScalingOp::Add(
               1 + static_cast<int64_t>(UniformUint64(prng, 3)))
        .value();
  }
  const int64_t count = 1 + static_cast<int64_t>(UniformUint64(
                                prng, static_cast<uint64_t>(
                                          std::min<int64_t>(
                                              current_disks - 1, 3))));
  const std::vector<int64_t> slots =
      SampleWithoutReplacement(prng, current_disks, count);
  return ScalingOp::Remove(slots).value();
}

class RandomChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChurnTest, StoreAlwaysConvergesToPolicy) {
  const uint64_t seed = GetParam();
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  auto policy = MakePolicy("scaddar", 6).value();
  const std::vector<uint64_t> x0 = MakeX0(seed, 3000);
  ASSERT_TRUE(policy->AddObject(1, x0).ok());

  BlockStore store;
  std::vector<PhysicalDiskId> locations;
  for (BlockIndex i = 0; i < 3000; ++i) {
    locations.push_back(policy->Locate(1, i));
  }
  ASSERT_TRUE(store.PlaceObject(1, locations).ok());

  for (int step = 0; step < 12; ++step) {
    const ScalingOp op = RandomOp(*prng, policy->current_disks());
    ASSERT_TRUE(policy->ApplyOp(op).ok()) << op.ToString();
    const MovePlan plan =
        PlanOperation(policy->log(), policy->log().num_ops(), {{1, &x0}});
    ASSERT_TRUE(store.ApplyPlan(plan).ok()) << op.ToString();
    ASSERT_TRUE(store.VerifyAgainstPolicy(*policy).ok())
        << "diverged after " << op.ToString();
    // RO1 on every step.
    const MovementStats stats = plan.ToMovementStats(
        policy->log().disks_after(policy->log().num_ops() - 1),
        policy->current_disks());
    EXPECT_LT(stats.overhead_ratio, 1.35) << op.ToString();
  }
}

TEST_P(RandomChurnTest, LoadStaysBalancedUnderChurn) {
  const uint64_t seed = GetParam() ^ 0xabcdef;
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  auto policy = MakePolicy("scaddar", 8).value();
  for (ObjectId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(
        policy->AddObject(id, MakeX0(seed + static_cast<uint64_t>(id), 4000))
            .ok());
  }
  for (int step = 0; step < 8; ++step) {
    const ScalingOp op = RandomOp(*prng, policy->current_disks());
    ASSERT_TRUE(policy->ApplyOp(op).ok());
  }
  const LoadMetrics metrics = ComputeLoadMetrics(policy->PerDiskCounts());
  // 64-bit range: far from exhaustion, CoV stays small.
  EXPECT_LT(metrics.coefficient_of_variation, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurnTest,
                         ::testing::Values(1, 2, 3, 4, 5, 101, 202, 303));

TEST(ServerIntegrationTest, WorkloadDrivenScalingStaysConsistent) {
  ServerConfig config;
  config.initial_disks = 6;
  config.disk_spec = {.capacity_blocks = 100'000,
                      .bandwidth_blocks_per_round = 10};
  config.master_seed = 99;
  // Random placement gives statistical (not deterministic) service
  // guarantees: per-disk demand is ~Binomial(streams, 1/N), so a
  // conservative cap keeps the overload tail (hiccups) small.
  config.admission_utilization_cap = 0.5;
  auto server = std::move(CmServer::Create(config)).value();
  for (ObjectId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(server->AddObject(id, 300).ok());
  }
  WorkloadGenerator workload(31, 0.4, 0.729);
  workload.SetObjects({1, 2, 3, 4, 5});

  int64_t started = 0;
  for (int round = 0; round < 600; ++round) {
    for (const ObjectId id : workload.NextArrivals()) {
      if (server->StartStream(id).ok()) {
        ++started;
      }
    }
    if (round == 100) {
      ASSERT_TRUE(server->ScaleAdd(2).ok());
    }
    if (round == 300) {
      ASSERT_TRUE(server->ScaleRemove({1, 5}).ok());
    }
    server->Tick();
  }
  EXPECT_GT(started, 50);
  EXPECT_GT(server->completed_streams(), 0);
  // Let any remaining migration finish, then verify global consistency.
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 50000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  // Hiccup rate must stay in the statistical-overload tail, not collapse
  // into systematic starvation (the scale-down at round 300 transiently
  // over-commits streams admitted against the larger array).
  EXPECT_LT(static_cast<double>(server->total_hiccups()),
            0.03 * static_cast<double>(server->total_served()) + 5);
}

TEST(ServerIntegrationTest, ToleranceDrivenFullRedistribution) {
  // Drive a 32-bit server past its Lemma 4.3 budget, rebase, and keep
  // scaling — placement must stay consistent throughout.
  ServerConfig config;
  config.initial_disks = 8;
  config.bits = 32;
  config.tolerance_eps = 0.05;
  config.master_seed = 7;
  auto server = std::move(CmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 2000).ok());

  int rebases = 0;
  for (int i = 0; i < 12; ++i) {
    const ScalingOp op = ScalingOp::Add(1).value();
    if (server->WouldExceedTolerance(op)) {
      ASSERT_TRUE(server->FullRedistribution().ok());
      ++rebases;
      EXPECT_EQ(server->policy().log().num_ops(), 0);
    }
    ASSERT_TRUE(server->ScaleAdd(1).ok());
  }
  EXPECT_GE(rebases, 1);  // b=32 cannot absorb 12 ops without rebasing.
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 100000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
  EXPECT_EQ(server->policy().current_disks(), 20);
}

TEST(ServerIntegrationTest, AllPoliciesSurviveChurnWithStreams) {
  for (const std::string_view name : {"scaddar", "directory", "jump"}) {
    ServerConfig config;
    config.initial_disks = 5;
    config.policy = std::string(name);
    config.master_seed = 55;
    auto server = std::move(CmServer::Create(config)).value();
    ASSERT_TRUE(server->AddObject(1, 500).ok());
    ASSERT_TRUE(server->StartStream(1).ok());
    ASSERT_TRUE(server->ScaleAdd(1).ok());
    for (int round = 0; round < 100; ++round) {
      server->Tick();
    }
    ASSERT_TRUE(server->ScaleRemove({2}).ok());
    int rounds = 0;
    while (!server->migration().idle()) {
      server->Tick();
      ASSERT_LT(++rounds, 50000) << name;
    }
    server->Tick();
    EXPECT_TRUE(server->VerifyIntegrity().ok()) << name;
  }
}

}  // namespace
}  // namespace scaddar
