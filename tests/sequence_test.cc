#include "random/sequence.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(X0SequenceTest, CreateRejectsBadBits) {
  EXPECT_FALSE(X0Sequence::Create(PrngKind::kSplitMix64, 1, 0).ok());
  EXPECT_FALSE(X0Sequence::Create(PrngKind::kSplitMix64, 1, 65).ok());
  // 33 bits from a 32-bit generator is invalid.
  EXPECT_FALSE(X0Sequence::Create(PrngKind::kPcg32, 1, 33).ok());
  EXPECT_TRUE(X0Sequence::Create(PrngKind::kPcg32, 1, 32).ok());
}

TEST(X0SequenceTest, DeterministicAcrossInstances) {
  auto a = X0Sequence::Create(PrngKind::kSplitMix64, 777, 64);
  auto b = X0Sequence::Create(PrngKind::kSplitMix64, 777, 64);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(a->Next(), b->Next());
  }
}

TEST(X0SequenceTest, MaskingToRequestedBits) {
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 20);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->max_value(), (uint64_t{1} << 20) - 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(seq->Next(), seq->max_value());
  }
}

TEST(X0SequenceTest, ResetRestartsStream) {
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 55, 64);
  ASSERT_TRUE(seq.ok());
  const uint64_t first = seq->Next();
  seq->Next();
  seq->Next();
  seq->Reset();
  EXPECT_EQ(seq->Next(), first);
}

TEST(X0SequenceTest, MaterializeMatchesIteration) {
  auto seq = X0Sequence::Create(PrngKind::kPcg32, 99, 32);
  ASSERT_TRUE(seq.ok());
  const std::vector<uint64_t> values = seq->Materialize(100);
  ASSERT_EQ(values.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(seq->Next(), values[static_cast<size_t>(i)]) << i;
  }
}

TEST(X0SequenceTest, MaterializeDoesNotDisturbIteration) {
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64);
  ASSERT_TRUE(seq.ok());
  const uint64_t first = seq->Next();
  const std::vector<uint64_t> values = seq->Materialize(10);
  EXPECT_EQ(values[0], first);  // Materialize starts from the beginning...
  EXPECT_EQ(seq->Next(), values[1]);  // ...while iteration continues.
}

TEST(X0SequenceTest, CopyPreservesPosition) {
  auto seq = X0Sequence::Create(PrngKind::kLcg48, 5, 48);
  ASSERT_TRUE(seq.ok());
  seq->Next();
  seq->Next();
  X0Sequence copy = *seq;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(copy.Next(), seq->Next());
  }
}

TEST(X0SequenceTest, SeedChangesStream) {
  auto a = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64);
  auto b = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->Next(), b->Next());
}

TEST(CounterSequenceTest, PureFunctionOfIndex) {
  const CounterSequence seq(42, 64);
  EXPECT_EQ(seq.At(17), seq.At(17));
  EXPECT_NE(seq.At(17), seq.At(18));
}

TEST(CounterSequenceTest, RespectsBitMask) {
  const CounterSequence seq(42, 16);
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_LE(seq.At(i), (uint64_t{1} << 16) - 1);
  }
}

TEST(CounterSequenceTest, SeedSensitivity) {
  const CounterSequence a(1, 64);
  const CounterSequence b(2, 64);
  EXPECT_NE(a.At(0), b.At(0));
}

TEST(CounterSequenceDeathTest, NegativeIndexAborts) {
  const CounterSequence seq(1, 64);
  EXPECT_DEATH(seq.At(-1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
