#include "server/migration.h"

#include <gtest/gtest.h>

#include "placement/scaddar_policy.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

struct Fixture {
  Fixture(int64_t n0, int64_t blocks)
      : policy(n0),
        disks(DiskSpec{.capacity_blocks = 1'000'000,
                       .bandwidth_blocks_per_round = 8}),
        store(&disks) {
    SCADDAR_CHECK(policy.AddObject(1, MakeX0(1, blocks)).ok());
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    std::vector<PhysicalDiskId> locations;
    for (BlockIndex i = 0; i < blocks; ++i) {
      locations.push_back(policy.Locate(1, i));
    }
    SCADDAR_CHECK(store.PlaceObject(1, locations).ok());
  }

  std::unordered_map<PhysicalDiskId, int64_t> Budget(int64_t per_disk) {
    std::unordered_map<PhysicalDiskId, int64_t> budget;
    for (const PhysicalDiskId id : disks.live_ids()) {
      budget[id] = per_disk;
    }
    return budget;
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
};

TEST(MigrationTest, ReconciliationFindsExactDivergence) {
  Fixture fx(4, 2000);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  int64_t divergent = 0;
  for (BlockIndex i = 0; i < 2000; ++i) {
    if (*fx.store.LocationOf({1, i}) != fx.policy.Locate(1, i)) {
      ++divergent;
    }
  }
  EXPECT_EQ(fx.migration.pending(), divergent);
  EXPECT_GT(divergent, 0);
}

TEST(MigrationTest, RunRoundRespectsBudget) {
  Fixture fx(4, 4000);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  auto budget = fx.Budget(2);
  const int64_t moved =
      fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy);
  // Every move consumes a unit at the destination (the single new disk has
  // budget 2), so at most 2 transfers can land there this round.
  EXPECT_LE(moved, 2);
  EXPECT_GT(moved, 0);
}

TEST(MigrationTest, ConvergesOverRounds) {
  Fixture fx(4, 3000);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  int rounds = 0;
  while (!fx.migration.idle()) {
    auto budget = fx.Budget(50);
    fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy);
    ASSERT_LT(++rounds, 1000) << "migration failed to converge";
  }
  EXPECT_TRUE(fx.store.VerifyAgainstPolicy(fx.policy).ok());
  EXPECT_GT(fx.migration.total_moved(), 0);
}

TEST(MigrationTest, ZeroBudgetMakesNoProgress) {
  Fixture fx(4, 1000);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  const int64_t pending_before = fx.migration.pending();
  auto budget = fx.Budget(0);
  EXPECT_EQ(fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy), 0);
  EXPECT_EQ(fx.migration.pending(), pending_before);
}

TEST(MigrationTest, StaleEntriesRetireForFree) {
  Fixture fx(4, 1000);
  // Enqueue blocks that are already at their targets.
  MovePlan noop_plan;
  for (BlockIndex i = 0; i < 100; ++i) {
    noop_plan.Add(BlockMove{.block = {1, i}});
  }
  fx.migration.EnqueuePlan(noop_plan);
  EXPECT_EQ(fx.migration.pending(), 100);
  auto budget = fx.Budget(0);  // No bandwidth needed for stale entries.
  EXPECT_EQ(fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy), 0);
  EXPECT_TRUE(fx.migration.idle());
}

TEST(MigrationTest, EnqueuePlanDrivesTheSameConvergence) {
  Fixture fx(4, 1500);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  const std::vector<uint64_t>& x0 = fx.policy.objects_view()[0].second;
  const MovePlan plan = PlanOperation(fx.policy.log(), 1, {{1, &x0}});
  fx.migration.EnqueuePlan(plan);
  EXPECT_EQ(fx.migration.pending(), plan.num_moves());
  while (!fx.migration.idle()) {
    auto budget = fx.Budget(100);
    fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy);
  }
  EXPECT_TRUE(fx.store.VerifyAgainstPolicy(fx.policy).ok());
  EXPECT_EQ(fx.migration.total_moved(), plan.num_moves());
}

TEST(MigrationTest, DeletedObjectEntriesAreDroppedGracefully) {
  Fixture fx(4, 500);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  ASSERT_GT(fx.migration.pending(), 0);
  // Remove the object from both layers; queued refs become dangling.
  ASSERT_TRUE(fx.store.DropObject(1).ok());
  ASSERT_TRUE(fx.policy.RemoveObject(1).ok());
  auto budget = fx.Budget(100);
  EXPECT_EQ(fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy), 0);
  EXPECT_TRUE(fx.migration.idle());
}

TEST(MigrationTest, OverlappingOpsConvergeToLatestTargets) {
  Fixture fx(4, 2000);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  // Second op lands while the first migration is still pending.
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Remove({1}).value()).ok());
  std::vector<PhysicalDiskId> live = fx.policy.log().physical_disks();
  live.push_back(1);  // Disk 1 is retiring but still holds blocks.
  ASSERT_TRUE(fx.disks.SyncLiveSet(live).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  int rounds = 0;
  while (!fx.migration.idle()) {
    auto budget = fx.Budget(50);
    budget[1] = 50;  // The retiring disk can still move blocks out.
    fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy);
    ASSERT_LT(++rounds, 1000);
  }
  EXPECT_TRUE(fx.store.VerifyAgainstPolicy(fx.policy).ok());
  EXPECT_EQ(fx.store.CountOn(1), 0);  // Retiring disk fully drained.
}

TEST(MigrationTest, TransferCountersChargedToBothEnds) {
  Fixture fx(2, 500);
  ASSERT_TRUE(fx.policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(fx.disks.SyncLiveSet(fx.policy.log().physical_disks()).ok());
  fx.migration.EnqueueReconciliation(fx.store, fx.policy);
  while (!fx.migration.idle()) {
    auto budget = fx.Budget(100);
    fx.migration.RunRound(budget, fx.store, fx.disks, fx.policy);
  }
  const int64_t moved = fx.migration.total_moved();
  int64_t charged = 0;
  for (const PhysicalDiskId id : fx.disks.live_ids()) {
    charged += (*fx.disks.GetDisk(id))->migration_transfers();
  }
  EXPECT_EQ(charged, 2 * moved);
}

}  // namespace
}  // namespace scaddar
