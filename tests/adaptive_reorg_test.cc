// The adaptive reorganization driver's server-level contract.
//
//  - Twin equivalence: a server that self-triggers rebases (budget gate
//    before each scaling op) lands byte-identical — placement, per-disk
//    counts, stream cursors, serving totals — to a twin with the driver
//    disabled that is handed a manual FullRedistribution at exactly the
//    recorded trigger points. Auto mode is a scheduler, not a new
//    mechanism.
//  - CoV watch: under a deliberately narrow generator the ungoverned
//    layout drifts; the end-of-round watch catches the drift on a settled
//    layout, schedules a reorganization under live traffic, and the
//    layout converges back below the threshold with zero dropped streams.
//  - Tightened-governor overrun: enabling a narrow governor over an
//    already-long op log trips the end-of-round budget check exactly once
//    (the rebase resets the log).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "stats/load_metrics.h"
#include "server/server.h"

namespace scaddar {
namespace {

std::map<ObjectId, std::vector<PhysicalDiskId>> Placement(
    const CmServer& server) {
  std::map<ObjectId, std::vector<PhysicalDiskId>> out;
  for (const ObjectId id : server.catalog().object_ids()) {
    const auto row = server.store().LocationsOf(id).value();
    out[id] = std::vector<PhysicalDiskId>(row.begin(), row.end());
  }
  return out;
}

void Drain(CmServer& server) {
  int64_t guard = 0;
  while (!server.migration().idle()) {
    server.Tick();
    ASSERT_LT(++guard, 10'000);
  }
}

TEST(AdaptiveReorgTest, AutoTriggersMatchManualRedistributionTwin) {
  ServerConfig config;
  config.initial_disks = 4;
  config.master_seed = 0xfeed01;
  config.governor_bits = 12;  // Narrow: the eps budget dies mid-churn.
  config.governor_eps = 0.05;
  auto auto_server = std::move(CmServer::Create(config)).value();
  auto_server->SetAutoReorg(true);

  ServerConfig twin_config = config;
  twin_config.auto_reorg = false;
  auto twin = std::move(CmServer::Create(twin_config)).value();

  for (CmServer* s : {auto_server.get(), twin.get()}) {
    ASSERT_TRUE(s->AddObject(1, 300).ok());
    ASSERT_TRUE(s->AddObject(2, 200).ok());
    ASSERT_TRUE(s->StartStream(1).ok());
    ASSERT_TRUE(s->StartStream(2).ok());
  }

  // Lockstep churn. When the governed server rebased before an op (its
  // trigger count grew), the twin is handed the same rebase manually at
  // the same round — `FullRedistribution`'s fresh seeds depend only on
  // (master_seed, round), so the two reshuffles are identical.
  const std::vector<ScalingOp> churn = {
      ScalingOp::Add(2).value(),    ScalingOp::Remove({1}).value(),
      ScalingOp::Add(3).value(),    ScalingOp::Remove({0, 4}).value(),
      ScalingOp::Add(2).value(),    ScalingOp::Remove({2}).value(),
      ScalingOp::Add(1).value(),
  };
  for (const ScalingOp& op : churn) {
    ASSERT_EQ(auto_server->round(), twin->round());
    const size_t triggers_before = auto_server->reorg_triggers().size();
    if (op.is_add()) {
      ASSERT_TRUE(auto_server->ScaleAdd(op.add_count()).ok());
    } else {
      ASSERT_TRUE(auto_server->ScaleRemove(op.removed_slots()).ok());
    }
    if (auto_server->reorg_triggers().size() > triggers_before) {
      ASSERT_TRUE(twin->FullRedistribution().ok());
    }
    if (op.is_add()) {
      ASSERT_TRUE(twin->ScaleAdd(op.add_count()).ok());
    } else {
      ASSERT_TRUE(twin->ScaleRemove(op.removed_slots()).ok());
    }
    for (int i = 0; i < 3; ++i) {
      auto_server->Tick();
      twin->Tick();
    }
  }
  // The harness is vacuous unless the budget actually tripped.
  ASSERT_FALSE(auto_server->reorg_triggers().empty());
  for (const ReorgTrigger& trigger : auto_server->reorg_triggers()) {
    EXPECT_EQ(trigger.reason, ReorgReason::kBudget);
  }
  EXPECT_TRUE(twin->reorg_triggers().empty());

  Drain(*auto_server);
  Drain(*twin);
  EXPECT_EQ(Placement(*auto_server), Placement(*twin));
  EXPECT_EQ(auto_server->store().per_disk_counts(),
            twin->store().per_disk_counts());
  EXPECT_EQ(auto_server->total_served(), twin->total_served());
  EXPECT_EQ(auto_server->round(), twin->round());
  ASSERT_EQ(auto_server->streams().size(), twin->streams().size());
  for (size_t i = 0; i < auto_server->streams().size(); ++i) {
    EXPECT_EQ(auto_server->streams()[i].next_block(),
              twin->streams()[i].next_block());
  }
  EXPECT_TRUE(auto_server->VerifyIntegrity().ok());
  EXPECT_TRUE(twin->VerifyIntegrity().ok());
}

double SettledCov(CmServer& server) {
  const auto& per_disk = server.store().per_disk_counts();
  std::vector<int64_t> counts;
  for (const PhysicalDiskId id : server.policy().log().physical_disks()) {
    const auto it = per_disk.find(id);
    counts.push_back(it == per_disk.end() ? 0 : it->second);
  }
  return ComputeLoadMetrics(counts).coefficient_of_variation;
}

TEST(AdaptiveReorgTest, CovWatchRestoresBalanceWithZeroDroppedStreams) {
  ServerConfig config;
  config.initial_disks = 4;
  config.master_seed = 0xfeed02;
  config.bits = 10;          // Narrow placement generator: layout drifts.
  config.governor_bits = 64; // Budget effectively infinite: CoV-only test.
  config.governor_eps = 0.05;
  config.reorg_cov_threshold = 0.35;
  config.reorg_check_every = 2;
  config.auto_reorg = true;
  auto server = std::move(CmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 1'200).ok());
  ASSERT_TRUE(server->AddObject(2, 800).ok());
  const int64_t stream_a = server->StartStream(1).value();
  const int64_t stream_b = server->StartStream(2).value();
  (void)stream_a;
  (void)stream_b;

  // Churn under the narrow generator until the watch fires. Every op's
  // migration is drained first: the watch only judges settled layouts.
  bool triggered = false;
  for (int i = 0; i < 30 && !triggered; ++i) {
    ASSERT_TRUE(server->ScaleAdd(1).ok());
    Drain(*server);
    for (int tick = 0; tick < 2; ++tick) {
      server->Tick();  // Land on a check_every boundary post-drain.
    }
    triggered = !server->reorg_triggers().empty();
  }
  ASSERT_TRUE(triggered) << "CoV never crossed the threshold";
  const ReorgTrigger trigger = server->reorg_triggers().front();
  EXPECT_EQ(trigger.reason, ReorgReason::kCov);
  EXPECT_GT(trigger.value, config.reorg_cov_threshold);

  // The triggered reorganization converges under traffic and restores the
  // balance the threshold asks for.
  Drain(*server);
  EXPECT_LT(SettledCov(*server), config.reorg_cov_threshold);
  // Zero dropped sessions: both streams are still live (objects are long
  // enough that neither finished) and serving continued every round.
  EXPECT_EQ(server->active_streams(), 2);
  EXPECT_GT(server->total_served(), 0);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST(AdaptiveReorgTest, TightenedGovernorTripsEndOfRoundOverrunOnce) {
  ServerConfig config;
  config.initial_disks = 4;
  config.master_seed = 0xfeed03;
  auto server = std::move(CmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 150).ok());
  // Grow an op log too long for a 12-bit governor, ungoverned.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server->ScaleAdd(2).ok());
  }
  ASSERT_TRUE(server->ConfigureGovernor(12, 0.05, 0.0).ok());
  server->SetAutoReorg(true);
  ASSERT_FALSE(server->reorg_driver().governor().WithinBudget(
      server->policy().log()));

  server->Tick();
  ASSERT_EQ(server->reorg_triggers().size(), 1u);
  EXPECT_EQ(server->reorg_triggers().front().reason, ReorgReason::kBudget);
  EXPECT_EQ(server->reorg_triggers().front().round, server->round());
  // The rebase reset the log: in budget again, and no re-fire next rounds.
  EXPECT_TRUE(server->reorg_driver().governor().WithinBudget(
      server->policy().log()));
  for (int i = 0; i < 4; ++i) {
    server->Tick();
  }
  EXPECT_EQ(server->reorg_triggers().size(), 1u);
}

}  // namespace
}  // namespace scaddar
