// Tests for the epoch-publication primitives the sharded serving runtime
// coordinates through: RevisionCounter (acquire/release change detection),
// SeqLock and Published<T> (readers never block the writer, and never
// observe a torn value).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/epoch.h"

namespace scaddar {
namespace {

TEST(RevisionCounterTest, BumpAndLoad) {
  RevisionCounter counter;
  EXPECT_EQ(counter.Load(), 0);
  counter.Bump();
  counter.Bump();
  EXPECT_EQ(counter.Load(), 2);
}

TEST(RevisionCounterTest, CopySnapshotsValue) {
  RevisionCounter counter(41);
  counter.Bump();
  const RevisionCounter copy(counter);
  EXPECT_EQ(copy.Load(), 42);
  RevisionCounter assigned;
  assigned = counter;
  EXPECT_EQ(assigned.Load(), 42);
  // The copy is independent: bumping the original does not move it.
  counter.Bump();
  EXPECT_EQ(copy.Load(), 42);
}

/// The acquire/release contract: a reader that observes the bumped revision
/// also observes the data write that preceded the bump. TSan-verifiable
/// (this test is in the tsan_smoke target list).
TEST(RevisionCounterTest, BumpPublishesPrecedingWrites) {
  RevisionCounter revision;
  int64_t payload = 0;  // Deliberately plain: the counter is the only fence.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (revision.Load() < 1) {
      // Spin until the bump is visible.
    }
    // Acquire on Load pairs with release on Bump: the payload write
    // happened-before.
    EXPECT_EQ(payload, 7);
    done.store(true);
  });
  payload = 7;
  revision.Bump();
  reader.join();
  EXPECT_TRUE(done.load());
}

TEST(SeqLockTest, SequenceParity) {
  SeqLock lock;
  EXPECT_EQ(lock.sequence(), 0u);
  const uint64_t inflight = lock.WriteBegin();
  EXPECT_EQ(inflight % 2, 1u) << "in-flight sequence must be odd";
  lock.WriteEnd();
  EXPECT_EQ(lock.sequence(), 2u);
}

TEST(SeqLockTest, ReadRetryDetectsOverlappingWrite) {
  SeqLock lock;
  const uint64_t token = lock.ReadBegin();
  EXPECT_FALSE(lock.ReadRetry(token));
  lock.WriteBegin();
  lock.WriteEnd();
  EXPECT_TRUE(lock.ReadRetry(token));
}

/// Readers hammering a Published value while a writer replaces it must only
/// ever see fully published states — the value is a pair that is torn iff
/// its halves disagree.
TEST(PublishedTest, ConcurrentReadersNeverObserveTornValue) {
  struct Pair {
    int64_t a = 0;
    int64_t b = 0;
  };
  Published<Pair> published(Pair{0, 0});
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Pair value = published.Read();
        if (value.a != -value.b) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (int64_t i = 1; i <= 20000; ++i) {
    published.Publish(Pair{i, -i});
  }
  stop.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(published.sequence(), 2u * 20000u);
  const Pair last = published.Read();
  EXPECT_EQ(last.a, 20000);
  EXPECT_EQ(last.b, -20000);
}

}  // namespace
}  // namespace scaddar
