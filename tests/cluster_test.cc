// The cluster layer's correctness contract: the shared jump-hash ShardMap
// (renumbering stability, delta-set minimality, small-catalog balance), the
// bandwidth-budgeted CrossShardMigrator state machine, and ClusterServer's
// scaling operations — objects and their live streams follow the routing
// across AddServerShard / RemoveServerShard with conservation invariants
// checked end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster_server.h"
#include "cluster/cross_shard_migrator.h"
#include "placement/shard_map.h"

namespace scaddar {
namespace {

// ---------------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, InitialSeatingIsIdentity) {
  const ShardMap map(4);
  EXPECT_EQ(map.num_seats(), 4);
  EXPECT_EQ(map.epoch(), 0);
  EXPECT_EQ(map.seats(), (std::vector<int>{0, 1, 2, 3}));
  for (uint64_t key = 0; key < 1000; ++key) {
    const int member = map.MemberOf(key);
    EXPECT_GE(member, 0);
    EXPECT_LT(member, 4);
  }
}

TEST(ShardMapTest, AddMemberMovesOnlyTheMinimalDelta) {
  ShardMap before(4);
  ShardMap after = before;
  const int added = after.AddMember();
  EXPECT_EQ(added, 4);
  EXPECT_EQ(after.epoch(), 1);

  std::vector<uint64_t> keys(20'000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint64_t>(i) * 2'654'435'761ull + 1;
  }
  const std::vector<uint64_t> changed = ChangedKeys(before, after, keys);
  // Every moved key lands on the new member — a pure add displaces nothing
  // between the old members.
  for (const uint64_t key : changed) {
    EXPECT_EQ(after.MemberOf(key), added);
  }
  // And the delta is the jump-hash minimum, ~1/(N+1) = 20% (loose band).
  const double fraction =
      static_cast<double>(changed.size()) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.17);
  EXPECT_LT(fraction, 0.23);
}

TEST(ShardMapTest, RemoveKeepsSurvivingSeatsStable) {
  ShardMap before(5);
  ShardMap after = before;
  ASSERT_TRUE(after.RemoveMember(2).ok());
  EXPECT_EQ(after.num_seats(), 4);
  EXPECT_FALSE(after.HasMember(2));
  // Swap-with-last: member 4 took over seat 2.
  EXPECT_EQ(after.seats(), (std::vector<int>{0, 1, 4, 3}));

  std::vector<uint64_t> keys(20'000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint64_t>(i) * 11'400'714'819'323'198'485ull + 7;
  }
  int64_t moved = 0;
  for (const uint64_t key : keys) {
    const int was = before.MemberOf(key);
    const int now = after.MemberOf(key);
    EXPECT_NE(now, 2);
    if (was == now) {
      continue;
    }
    ++moved;
    // Only keys leaving the removed member or the renumbered tail member
    // may move; members 0, 1 and 3 keep every key they had.
    EXPECT_TRUE(was == 2 || was == 4) << "member " << was << " lost a key";
  }
  // Arbitrary removal costs ~2/N = 40% movement (the swap-with-last price;
  // loose band).
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.30);
  EXPECT_LT(fraction, 0.50);
}

TEST(ShardMapTest, RemoveRejectsAbsentAndLastMember) {
  ShardMap map(2);
  EXPECT_FALSE(map.RemoveMember(7).ok());
  ASSERT_TRUE(map.RemoveMember(0).ok());
  EXPECT_FALSE(map.RemoveMember(1).ok());  // Last member stays.
  EXPECT_EQ(map.num_seats(), 1);
  // Member ids are never reused, even after removals.
  EXPECT_EQ(map.AddMember(), 2);
  EXPECT_EQ(map.AddMember(), 3);
}

TEST(ShardMapTest, BalancedAtSmallKeyCounts) {
  const ShardMap map(4);
  std::vector<int64_t> per_member(4, 0);
  for (uint64_t key = 1; key <= 64; ++key) {
    ++per_member[static_cast<size_t>(map.MemberOf(key))];
  }
  // 64 keys over 4 members: every member gets a real share (jump hash's
  // low-variance guarantee at catalog sizes where Zipf skew bites hardest).
  for (const int64_t count : per_member) {
    EXPECT_GE(count, 8);
    EXPECT_LE(count, 26);
  }
}

// ---------------------------------------------------------------------------
// CrossShardMigrator

TEST(CrossShardMigratorTest, CopiesUnderBudgetThenCommits) {
  CrossShardMigrator migrator;
  migrator.Enqueue(ObjectTransfer{.object = 1, .from = 0, .to = 1,
                                  .num_blocks = 10});
  EXPECT_TRUE(migrator.HasTransfer(1));
  EXPECT_EQ(migrator.pending_blocks(), 10);

  CrossShardRound round = migrator.AdvanceRound(4);
  EXPECT_EQ(round.blocks_copied, 4);
  EXPECT_TRUE(round.ready_to_commit.empty());
  round = migrator.AdvanceRound(4);
  EXPECT_EQ(migrator.pending_blocks(), 2);
  round = migrator.AdvanceRound(4);
  EXPECT_EQ(round.blocks_copied, 2);
  ASSERT_EQ(round.ready_to_commit.size(), 1u);
  EXPECT_EQ(round.ready_to_commit[0].object, 1);
  EXPECT_TRUE(migrator.idle());
  EXPECT_EQ(migrator.total_blocks_copied(), 10);
  EXPECT_EQ(migrator.total_commits(), 1);
}

TEST(CrossShardMigratorTest, BudgetsArePerShardNotGlobal) {
  CrossShardMigrator migrator;
  // Disjoint pairs copy concurrently at full budget...
  migrator.Enqueue(ObjectTransfer{.object = 1, .from = 0, .to = 1,
                                  .num_blocks = 8});
  migrator.Enqueue(ObjectTransfer{.object = 2, .from = 2, .to = 3,
                                  .num_blocks = 8});
  CrossShardRound round = migrator.AdvanceRound(8);
  EXPECT_EQ(round.blocks_copied, 16);
  EXPECT_EQ(round.ready_to_commit.size(), 2u);

  // ...but transfers sharing a sender split its budget in queue order.
  migrator.Enqueue(ObjectTransfer{.object = 3, .from = 0, .to = 1,
                                  .num_blocks = 8});
  migrator.Enqueue(ObjectTransfer{.object = 4, .from = 0, .to = 2,
                                  .num_blocks = 8});
  round = migrator.AdvanceRound(8);
  EXPECT_EQ(round.blocks_copied, 8);
  ASSERT_EQ(round.ready_to_commit.size(), 1u);
  EXPECT_EQ(round.ready_to_commit[0].object, 3);
  round = migrator.AdvanceRound(8);
  ASSERT_EQ(round.ready_to_commit.size(), 1u);
  EXPECT_EQ(round.ready_to_commit[0].object, 4);
}

TEST(CrossShardMigratorTest, RetargetResetsProgressAndCancelsHomecoming) {
  CrossShardMigrator migrator;
  migrator.Enqueue(ObjectTransfer{.object = 9, .from = 0, .to = 1,
                                  .num_blocks = 10});
  migrator.AdvanceRound(4);
  EXPECT_EQ(migrator.pending_blocks(), 6);

  migrator.Retarget(9, 2);  // Newer scaling op reroutes the object.
  EXPECT_EQ(migrator.TargetOf(9), 2);
  EXPECT_EQ(migrator.pending_blocks(), 10);  // Staged bytes were for shard 1.
  EXPECT_EQ(migrator.retargets(), 1);

  migrator.Retarget(9, 0);  // ...and a later op routes it back home.
  EXPECT_FALSE(migrator.HasTransfer(9));
  EXPECT_TRUE(migrator.idle());
  EXPECT_EQ(migrator.retargets(), 2);
}

// ---------------------------------------------------------------------------
// ClusterServer

ClusterConfig SmallCluster(int shards) {
  ClusterConfig config;
  config.shard.initial_disks = 4;
  config.shard.disk_spec = {.capacity_blocks = 100'000,
                            .bandwidth_blocks_per_round = 8};
  config.initial_shards = shards;
  config.cross_shard_budget = 64;
  return config;
}

void DrainCluster(ClusterServer& cluster) {
  int64_t guard = 0;
  while (!cluster.MigrationIdle()) {
    cluster.Tick();
    ASSERT_LT(++guard, 100'000) << "cluster drain did not converge";
  }
}

TEST(ClusterServerTest, RoutesObjectsAndConservesTheCatalog) {
  auto cluster = ClusterServer::Create(SmallCluster(4)).value();
  for (ObjectId id = 1; id <= 40; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 240).ok());
  }
  EXPECT_EQ(cluster->num_objects(), 40);
  int64_t across_shards = 0;
  for (const int member : cluster->members()) {
    across_shards += cluster->shard(member)->catalog().num_objects();
  }
  EXPECT_EQ(across_shards, 40);
  for (ObjectId id = 1; id <= 40; ++id) {
    EXPECT_EQ(cluster->OwnerOf(id),
              cluster->map().MemberOf(static_cast<uint64_t>(id)));
  }
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());

  EXPECT_FALSE(cluster->AddObject(1, 240).ok());     // Duplicate.
  EXPECT_FALSE(cluster->RemoveObject(999).ok());     // Absent.
  ASSERT_TRUE(cluster->RemoveObject(1).ok());
  EXPECT_EQ(cluster->OwnerOf(1), -1);
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());
}

TEST(ClusterServerTest, AddShardMigratesExactlyTheDeltaSet) {
  auto cluster = ClusterServer::Create(SmallCluster(3)).value();
  std::vector<uint64_t> keys;
  for (ObjectId id = 1; id <= 60; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 240).ok());
    keys.push_back(static_cast<uint64_t>(id));
  }
  const ShardMap before = cluster->map();

  const auto member = cluster->AddServerShard();
  ASSERT_TRUE(member.ok());
  const std::vector<uint64_t> expected_delta =
      ChangedKeys(before, cluster->map(), keys);
  ASSERT_FALSE(expected_delta.empty());

  // Every queued transfer targets the new shard and the queue is exactly
  // the delta set, in catalog order.
  const std::vector<ObjectTransfer> queued =
      cluster->migrator().QueueSnapshot();
  ASSERT_EQ(queued.size(), expected_delta.size());
  for (size_t i = 0; i < queued.size(); ++i) {
    EXPECT_EQ(static_cast<uint64_t>(queued[i].object), expected_delta[i]);
    EXPECT_EQ(queued[i].to, member.value());
  }

  DrainCluster(*cluster);
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());
  for (ObjectId id = 1; id <= 60; ++id) {
    EXPECT_EQ(cluster->OwnerOf(id),
              cluster->map().MemberOf(static_cast<uint64_t>(id)));
  }
  EXPECT_EQ(cluster->shard(member.value())->catalog().num_objects(),
            static_cast<int64_t>(expected_delta.size()));
  // Interconnect cost: exactly the moved objects' blocks, no more.
  EXPECT_EQ(cluster->migrator().total_blocks_copied(),
            static_cast<int64_t>(expected_delta.size()) * 240);
}

TEST(ClusterServerTest, StreamsFollowTheirObjectAcrossShards) {
  auto cluster = ClusterServer::Create(SmallCluster(2)).value();
  for (ObjectId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 240).ok());
  }
  // A couple of live sessions per object, one of them paused.
  for (ObjectId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(cluster->StartStream(id).ok());
  }
  const auto paused_id = cluster->StartStream(7);
  ASSERT_TRUE(paused_id.ok());
  ASSERT_TRUE(cluster->PauseStream(paused_id.value()).ok());
  for (int i = 0; i < 5; ++i) {
    cluster->Tick();
  }
  const int64_t streams_before = cluster->active_streams();

  const auto member = cluster->AddServerShard();
  ASSERT_TRUE(member.ok());
  DrainCluster(*cluster);

  // No session was lost (admission has ample headroom here): every stream
  // now lives on its object's current owner, paused state preserved.
  EXPECT_EQ(cluster->active_streams() + cluster->completed_streams(),
            streams_before);
  EXPECT_EQ(cluster->handoff_rejects(), 0);
  for (const int shard_member : cluster->members()) {
    for (const Stream& stream : cluster->shard(shard_member)->streams()) {
      EXPECT_EQ(cluster->OwnerOf(stream.object()), shard_member);
    }
  }
  int64_t paused_count = 0;
  for (const int shard_member : cluster->members()) {
    for (const Stream& stream : cluster->shard(shard_member)->streams()) {
      paused_count += stream.paused() ? 1 : 0;
    }
  }
  EXPECT_EQ(paused_count, 1);
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());
}

TEST(ClusterServerTest, RemoveShardEvacuatesAndRetiresIt) {
  auto cluster = ClusterServer::Create(SmallCluster(3)).value();
  for (ObjectId id = 1; id <= 45; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 240).ok());
  }
  for (ObjectId id = 1; id <= 45; id += 3) {
    ASSERT_TRUE(cluster->StartStream(id).ok());
  }
  const int64_t streams_before = cluster->active_streams();
  ASSERT_GT(cluster->shard(1)->catalog().num_objects(), 0);

  ASSERT_TRUE(cluster->RemoveServerShard(1).ok());
  EXPECT_FALSE(cluster->map().HasMember(1));
  EXPECT_NE(cluster->shard(1), nullptr);  // Still serving while evacuating.
  DrainCluster(*cluster);

  EXPECT_EQ(cluster->shard(1), nullptr);  // Drained and destroyed.
  EXPECT_EQ(cluster->num_shards(), 2);
  EXPECT_EQ(cluster->active_streams() + cluster->completed_streams(),
            streams_before);
  EXPECT_EQ(cluster->handoff_rejects(), 0);
  for (ObjectId id = 1; id <= 45; ++id) {
    EXPECT_NE(cluster->OwnerOf(id), 1);
    EXPECT_EQ(cluster->OwnerOf(id),
              cluster->map().MemberOf(static_cast<uint64_t>(id)));
  }
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());

  EXPECT_FALSE(cluster->RemoveServerShard(1).ok());  // Already gone.
}

TEST(ClusterServerTest, OverlappingScaleOpsRetargetToTheLatestRouting) {
  auto cluster = ClusterServer::Create(SmallCluster(3)).value();
  for (ObjectId id = 1; id <= 60; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 240).ok());
  }
  // Add a shard, then remove it again before a single copy-round runs: every
  // queued transfer must retarget, and transfers pointed back home cancel.
  const auto member = cluster->AddServerShard();
  ASSERT_TRUE(member.ok());
  ASSERT_GT(cluster->migrator().pending_transfers(), 0);
  ASSERT_TRUE(cluster->RemoveServerShard(member.value()).ok());
  EXPECT_GT(cluster->migrator().retargets(), 0);

  DrainCluster(*cluster);
  EXPECT_EQ(cluster->shard(member.value()), nullptr);
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());
  for (ObjectId id = 1; id <= 60; ++id) {
    EXPECT_EQ(cluster->OwnerOf(id),
              cluster->map().MemberOf(static_cast<uint64_t>(id)));
  }
}

TEST(ClusterServerTest, SerializedAndPooledRoundsAreIdentical) {
  auto pooled = ClusterServer::Create(SmallCluster(4)).value();
  auto serialized = ClusterServer::Create(SmallCluster(4)).value();
  for (ObjectId id = 1; id <= 32; ++id) {
    ASSERT_TRUE(pooled->AddObject(id, 240).ok());
    ASSERT_TRUE(serialized->AddObject(id, 240).ok());
  }
  for (ObjectId id = 1; id <= 32; id += 2) {
    ASSERT_TRUE(pooled->StartStream(id).ok());
    ASSERT_TRUE(serialized->StartStream(id).ok());
  }
  ASSERT_TRUE(pooled->AddServerShard().ok());
  ASSERT_TRUE(serialized->AddServerShard().ok());

  for (int round = 0; round < 40; ++round) {
    const ClusterRoundMetrics a = pooled->Tick();
    ClusterTickTiming timing;
    const ClusterRoundMetrics b = serialized->TickSerialized(&timing);
    ASSERT_EQ(timing.shard_ns.size(),
              static_cast<size_t>(serialized->num_shards()));
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.hiccups, b.hiccups);
    EXPECT_EQ(a.migrated, b.migrated);
    EXPECT_EQ(a.cross_shard_blocks, b.cross_shard_blocks);
    EXPECT_EQ(a.cross_shard_commits, b.cross_shard_commits);
    EXPECT_EQ(a.pending_transfers, b.pending_transfers);
  }
  EXPECT_EQ(pooled->total_served(), serialized->total_served());
  EXPECT_EQ(pooled->StartupLatencies(), serialized->StartupLatencies());
  EXPECT_TRUE(pooled->VerifyIntegrity().ok());
  EXPECT_TRUE(serialized->VerifyIntegrity().ok());
}

TEST(ClusterServerTest, PublishesTheEpochWorkersValidate) {
  auto cluster = ClusterServer::Create(SmallCluster(2)).value();
  ASSERT_TRUE(cluster->AddObject(1, 240).ok());
  cluster->Tick();
  const ClusterEpoch epoch = cluster->PublishedEpoch();
  EXPECT_EQ(epoch.round, 0);
  EXPECT_EQ(epoch.map_epoch, 0);
  EXPECT_EQ(epoch.num_shards, 2);
  ASSERT_TRUE(cluster->AddServerShard().ok());
  cluster->Tick();
  const ClusterEpoch next = cluster->PublishedEpoch();
  EXPECT_EQ(next.round, 1);
  EXPECT_EQ(next.map_epoch, 1);
  EXPECT_EQ(next.num_shards, 3);
}

TEST(ClusterServerTest, PerShardDiskScalingStaysOnline) {
  auto cluster = ClusterServer::Create(SmallCluster(2)).value();
  for (ObjectId id = 1; id <= 16; ++id) {
    ASSERT_TRUE(cluster->AddObject(id, 240).ok());
  }
  ASSERT_TRUE(cluster->ScaleAddDisks(0, 2).ok());
  ASSERT_TRUE(cluster->ScaleRemoveDisks(1, {0}).ok());
  EXPECT_FALSE(cluster->ScaleAddDisks(9, 2).ok());  // No such shard.
  DrainCluster(*cluster);
  EXPECT_TRUE(cluster->VerifyIntegrity().ok());
  EXPECT_EQ(cluster->shard(0)->disks().num_live(), 6);
  EXPECT_EQ(cluster->shard(1)->disks().num_live(), 3);
}

}  // namespace
}  // namespace scaddar
