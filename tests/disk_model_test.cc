#include "storage/disk_model.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(DiskModelTest, ServiceTimeComposition) {
  // 10k rpm -> half rotation = 3 ms; 512 KB at 40 MB/s = 12.5 ms;
  // plus 5 ms seek = 20.5 ms.
  const double ms = BlockServiceTimeMs(Year2001Disk(), RoundParameters{});
  EXPECT_NEAR(ms, 5.0 + 3.0 + 12.5, 0.01);
}

TEST(DiskModelTest, BlocksPerRoundFloorsServiceBudget) {
  // 1000 ms / 20.5 ms = 48.8 -> 48 blocks per round.
  const StatusOr<int64_t> blocks =
      BlocksPerRound(Year2001Disk(), RoundParameters{});
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(*blocks, 48);
}

TEST(DiskModelTest, BiggerBlocksFewerRetrievals) {
  RoundParameters small{.round_seconds = 1.0, .block_kb = 256};
  RoundParameters large{.round_seconds = 1.0, .block_kb = 2048};
  const int64_t many = *BlocksPerRound(Year2001Disk(), small);
  const int64_t few = *BlocksPerRound(Year2001Disk(), large);
  EXPECT_GT(many, few);
}

TEST(DiskModelTest, ModernDiskIsSeekBound) {
  // On a modern drive the transfer of 512 KB costs ~2 ms while seek+half
  // rotation costs ~12 ms: random placement pays mostly mechanics.
  const DiskParameters modern = ModernDisk();
  const RoundParameters round{};
  const double total = BlockServiceTimeMs(modern, round);
  const double transfer_ms = 512.0 / (modern.transfer_mb_per_s * 1024.0) *
                             1000.0;
  EXPECT_LT(transfer_ms, 0.25 * total);
}

TEST(DiskModelTest, NewerGenerationsServeMoreStreams) {
  // Section 1's premise: newer disks have more bandwidth and capacity.
  const RoundParameters round{};
  const int64_t vintage = *BlocksPerRound(VintageDisk(), round);
  const int64_t y2001 = *BlocksPerRound(Year2001Disk(), round);
  const int64_t modern = *BlocksPerRound(ModernDisk(), round);
  EXPECT_LT(vintage, y2001);
  EXPECT_LT(y2001, modern);
  EXPECT_LT(CapacityBlocks(VintageDisk(), round),
            CapacityBlocks(ModernDisk(), round));
}

TEST(DiskModelTest, MakeDiskSpecBundlesBoth) {
  const StatusOr<DiskSpec> spec =
      MakeDiskSpec(Year2001Disk(), RoundParameters{});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->bandwidth_blocks_per_round, 48);
  EXPECT_EQ(spec->capacity_blocks, 73LL * 1024 * 1024 / 512);
}

TEST(DiskModelTest, ImpossibleRoundRejected) {
  RoundParameters tiny{.round_seconds = 0.01, .block_kb = 8192};
  EXPECT_EQ(BlocksPerRound(VintageDisk(), tiny).status().code(),
            StatusCode::kFailedPrecondition);
  RoundParameters invalid{.round_seconds = 0.0, .block_kb = 512};
  EXPECT_EQ(BlocksPerRound(VintageDisk(), invalid).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiskModelTest, ShorterRoundsServeFewerBlocks) {
  RoundParameters half{.round_seconds = 0.5, .block_kb = 512};
  EXPECT_EQ(*BlocksPerRound(Year2001Disk(), half), 24);
}

}  // namespace
}  // namespace scaddar
