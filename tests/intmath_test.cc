#include "util/intmath.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(DivModTest, BasicIdentity) {
  const QuotRem qr = DivMod(41, 6);
  EXPECT_EQ(qr.quot, 6u);
  EXPECT_EQ(qr.rem, 5u);
  EXPECT_EQ(qr.quot * 6 + qr.rem, 41u);
}

TEST(DivModTest, ZeroNumerator) {
  const QuotRem qr = DivMod(0, 7);
  EXPECT_EQ(qr, (QuotRem{0, 0}));
}

TEST(DivModTest, LargeValues) {
  const uint64_t x = std::numeric_limits<uint64_t>::max();
  const QuotRem qr = DivMod(x, 10);
  EXPECT_EQ(qr.quot * 10 + qr.rem, x);
  EXPECT_LT(qr.rem, 10u);
}

class DivModPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DivModPropertyTest, ReconstructsInput) {
  const uint64_t n = GetParam();
  for (uint64_t x = 0; x < 1000; x += 7) {
    const QuotRem qr = DivMod(x, n);
    EXPECT_EQ(qr.quot * n + qr.rem, x);
    EXPECT_LT(qr.rem, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, DivModPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 64, 1000));

TEST(SaturatingProductTest, StartsAtOne) {
  SaturatingProduct product;
  EXPECT_FALSE(product.saturated());
  EXPECT_EQ(static_cast<uint64_t>(product.value()), 1u);
}

TEST(SaturatingProductTest, Multiplies) {
  SaturatingProduct product;
  product.MultiplyBy(6);
  product.MultiplyBy(7);
  EXPECT_EQ(static_cast<uint64_t>(product.value()), 42u);
  EXPECT_TRUE(product.LessEq(42));
  EXPECT_FALSE(product.LessEq(41));
}

TEST(SaturatingProductTest, SaturatesAndStaysSaturated) {
  SaturatingProduct product;
  for (int i = 0; i < 10; ++i) {
    product.MultiplyBy(std::numeric_limits<uint64_t>::max());
  }
  EXPECT_TRUE(product.saturated());
  EXPECT_FALSE(product.LessEq(~static_cast<unsigned __int128>(0) - 1));
  // Multiplying further is a no-op, not UB.
  product.MultiplyBy(2);
  EXPECT_TRUE(product.saturated());
}

TEST(SaturatingProductTest, ExactlyAtBoundaryIsNotSaturated) {
  SaturatingProduct product;
  product.MultiplyBy(uint64_t{1} << 63);
  product.MultiplyBy(uint64_t{1} << 63);
  product.MultiplyBy(4);  // 2^130 > 2^128 - 1 -> saturates.
  EXPECT_TRUE(product.saturated());

  SaturatingProduct fits;
  fits.MultiplyBy(uint64_t{1} << 62);
  fits.MultiplyBy(uint64_t{1} << 62);  // 2^124 fits in 128 bits.
  EXPECT_FALSE(fits.saturated());
}

TEST(FloorLog2Test, PowersOfTwo) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 63), 63);
}

TEST(FloorLog2Test, NonPowers) {
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(std::numeric_limits<uint64_t>::max()), 63);
}

TEST(CeilLog2Test, Values) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(Log2Test, MatchesIntegerLogOnPowers) {
  EXPECT_DOUBLE_EQ(Log2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2(16.0), 4.0);
  EXPECT_NEAR(Log2(100.0), 6.643856, 1e-6);
}

TEST(GcdTest, Values) {
  EXPECT_EQ(Gcd(0, 0), 0u);
  EXPECT_EQ(Gcd(0, 9), 9u);
  EXPECT_EQ(Gcd(9, 0), 9u);
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(17, 13), 1u);
  EXPECT_EQ(Gcd(48, 36), 12u);
}

TEST(SaturatingArithmeticTest, Mul) {
  EXPECT_EQ(SaturatingMul(6, 7), 42u);
  EXPECT_EQ(SaturatingMul(0, std::numeric_limits<uint64_t>::max()), 0u);
  EXPECT_EQ(SaturatingMul(uint64_t{1} << 40, uint64_t{1} << 40),
            std::numeric_limits<uint64_t>::max());
}

TEST(SaturatingArithmeticTest, Add) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3u);
  EXPECT_EQ(SaturatingAdd(std::numeric_limits<uint64_t>::max(), 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(SaturatingArithmeticTest, Pow) {
  EXPECT_EQ(SaturatingPow(2, 10), 1024u);
  EXPECT_EQ(SaturatingPow(10, 0), 1u);
  EXPECT_EQ(SaturatingPow(0, 5), 0u);
  EXPECT_EQ(SaturatingPow(2, 64), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(SaturatingPow(16, 16), std::numeric_limits<uint64_t>::max());
}

TEST(MaxRandomForBitsTest, Values) {
  EXPECT_EQ(MaxRandomForBits(1), 1u);
  EXPECT_EQ(MaxRandomForBits(8), 255u);
  EXPECT_EQ(MaxRandomForBits(32), 0xffffffffull);
  EXPECT_EQ(MaxRandomForBits(48), (uint64_t{1} << 48) - 1);
  EXPECT_EQ(MaxRandomForBits(64), std::numeric_limits<uint64_t>::max());
}

TEST(MaxRandomForBitsDeathTest, RejectsOutOfRange) {
  EXPECT_DEATH(MaxRandomForBits(0), "SCADDAR_CHECK");
  EXPECT_DEATH(MaxRandomForBits(65), "SCADDAR_CHECK");
}

TEST(FastDiv64Test, EdgeDivisorsExactOverEdgeDividends) {
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  const std::vector<uint64_t> divisors = {
      1,       2,        3,          5,          7,          10,
      11,      63,       64,         65,         100,        641,
      1 << 16, (1 << 16) + 1, (uint64_t{1} << 32) - 1, uint64_t{1} << 32,
      (uint64_t{1} << 32) + 1, 4294967291ull /* prime */, uint64_t{1} << 63,
      (uint64_t{1} << 63) + 1, kMax - 1, kMax};
  std::vector<uint64_t> dividends = {0, 1, 2, 3, 63, 64, 65, 1000000007ull};
  for (const uint64_t d : divisors) {
    // Dividends around every divisor's multiples catch off-by-one magic.
    dividends.push_back(d - 1);
    dividends.push_back(d);
    dividends.push_back(d + 1);
    dividends.push_back(kMax);
    dividends.push_back(kMax - 1);
  }
  for (const uint64_t d : divisors) {
    const FastDiv64 div(d);
    EXPECT_EQ(div.divisor(), d);
    for (const uint64_t x : dividends) {
      ASSERT_EQ(div.Div(x), x / d) << "x=" << x << " d=" << d;
      ASSERT_EQ(div.Mod(x), x % d) << "x=" << x << " d=" << d;
      const QuotRem qr = div.DivMod(x);
      ASSERT_EQ(qr.quot, x / d);
      ASSERT_EQ(qr.rem, x % d);
    }
  }
}

TEST(FastDiv64Test, RandomizedExactness) {
  // SplitMix64-style scramble: deterministic pseudo-random 64-bit pairs.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < 200000; ++i) {
    const uint64_t d = next() | 1u;  // Odd, so never a power of two.
    const uint64_t x = next();
    const FastDiv64 div(d);
    ASSERT_EQ(div.Div(x), x / d) << "x=" << x << " d=" << d;
  }
  for (int shift = 0; shift < 64; ++shift) {
    const FastDiv64 div(uint64_t{1} << shift);
    for (int i = 0; i < 100; ++i) {
      const uint64_t x = next();
      ASSERT_EQ(div.Div(x), x >> shift);
    }
  }
  // Small divisors (disk counts) against random dividends — the hot case.
  for (uint64_t d = 1; d <= 300; ++d) {
    const FastDiv64 div(d);
    for (int i = 0; i < 500; ++i) {
      const uint64_t x = next();
      ASSERT_EQ(div.Div(x), x / d) << "x=" << x << " d=" << d;
    }
  }
}

TEST(FastDiv64Test, DefaultDividesByOne) {
  const FastDiv64 div;
  EXPECT_EQ(div.divisor(), 1u);
  EXPECT_EQ(div.Div(12345), 12345u);
  EXPECT_EQ(div.Mod(12345), 0u);
}

TEST(FastDiv64DeathTest, RejectsZeroDivisor) {
  EXPECT_DEATH(FastDiv64(0), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
