#include "core/compiled_log.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/mapper.h"
#include "random/distributions.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

TEST(CompiledLogTest, EmptyLogIsIdentityModN) {
  const OpLog log = OpLog::Create(5).value();
  const CompiledLog compiled(log);
  EXPECT_EQ(compiled.num_ops(), 0);
  EXPECT_EQ(compiled.current_disks(), 5);
  for (uint64_t x0 = 0; x0 < 200; ++x0) {
    EXPECT_EQ(compiled.FinalX(x0), x0);
    EXPECT_EQ(compiled.LocateSlot(x0), static_cast<DiskSlot>(x0 % 5));
  }
}

TEST(CompiledLogTest, MatchesMapperOnFixedLog) {
  OpLog log = OpLog::Create(4).value();
  for (const char* text : {"A2", "R1,4", "A1", "R0", "A3"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x0 = seq.Next();
    ASSERT_EQ(compiled.FinalX(x0), mapper.XAfter(x0, log.num_ops()));
    ASSERT_EQ(compiled.LocateSlot(x0), mapper.LocateSlot(x0));
    ASSERT_EQ(compiled.LocatePhysical(x0), mapper.LocatePhysical(x0));
  }
}

TEST(CompiledLogTest, MatchesMapperWithStartEpochs) {
  OpLog log = OpLog::Create(6).value();
  for (const char* text : {"A1", "R2", "A2", "R0,3"}) {
    ASSERT_TRUE(log.Append(ScalingOp::Parse(text).value()).ok());
  }
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kXoshiro256, 2, 64).value();
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x0 = seq.Next();
    for (Epoch from = 0; from <= log.num_ops(); ++from) {
      ASSERT_EQ(compiled.FinalX(x0, from),
                mapper.XBetween(x0, from, log.num_ops()));
      ASSERT_EQ(compiled.LocatePhysical(x0, from),
                mapper.PhysicalBetween(x0, from, log.num_ops()));
    }
  }
}

class CompiledLogRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompiledLogRandomTest, EquivalentToMapperUnderRandomChurn) {
  auto prng = MakePrng(PrngKind::kSplitMix64, GetParam());
  OpLog log = OpLog::Create(8).value();
  for (int step = 0; step < 15; ++step) {
    const int64_t n = log.current_disks();
    if (n <= 2 || Bernoulli(*prng, 0.6)) {
      ASSERT_TRUE(log.Append(ScalingOp::Add(1 + static_cast<int64_t>(
                                                   UniformUint64(*prng, 3)))
                                 .value())
                      .ok());
    } else {
      const std::vector<int64_t> slots = SampleWithoutReplacement(
          *prng, n, 1 + static_cast<int64_t>(UniformUint64(
                            *prng, static_cast<uint64_t>(
                                       std::min<int64_t>(n - 1, 2)))));
      ASSERT_TRUE(log.Append(ScalingOp::Remove(slots).value()).ok());
    }
  }
  const Mapper mapper(&log);
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, GetParam() + 99, 64)
                 .value();
  for (int i = 0; i < 3000; ++i) {
    const uint64_t x0 = seq.Next();
    ASSERT_EQ(compiled.FinalX(x0), mapper.XAfter(x0, log.num_ops()));
    ASSERT_EQ(compiled.LocatePhysical(x0), mapper.LocatePhysical(x0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledLogRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(CompiledLogTest, SnapshotIsImmutable) {
  OpLog log = OpLog::Create(4).value();
  const CompiledLog compiled(log);
  // Appending to the log after compilation must not affect the snapshot.
  ASSERT_TRUE(log.Append(ScalingOp::Add(4).value()).ok());
  EXPECT_EQ(compiled.num_ops(), 0);
  EXPECT_EQ(compiled.current_disks(), 4);
  EXPECT_EQ(compiled.LocateSlot(7), 3);
}

TEST(CompiledLogDeathTest, StartEpochOutOfRangeAborts) {
  const OpLog log = OpLog::Create(4).value();
  const CompiledLog compiled(log);
  EXPECT_DEATH(compiled.FinalX(0, 1), "SCADDAR_CHECK");
  EXPECT_DEATH(compiled.FinalX(0, -1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
