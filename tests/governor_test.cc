#include "core/governor.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(GovernorTest, AdvisesProceedWithHeadroom) {
  const ToleranceGovernor governor(64, 0.01);
  const OpLog log = OpLog::Create(16).value();
  EXPECT_TRUE(governor.WithinBudget(log));
  EXPECT_EQ(governor.Consider(log, ScalingOp::Add(4).value()),
            ToleranceGovernor::Advice::kProceed);
}

TEST(GovernorTest, AdvisesRebaseAtTheEdge) {
  const ToleranceGovernor governor(16, 0.05);
  OpLog log = OpLog::Create(8).value();
  // Burn the tiny 16-bit budget.
  int rebases_advised = 0;
  for (int i = 0; i < 10; ++i) {
    const ScalingOp op = ScalingOp::Add(1).value();
    if (governor.Consider(log, op) ==
        ToleranceGovernor::Advice::kRebaseFirst) {
      ++rebases_advised;
      break;
    }
    ASSERT_TRUE(log.Append(op).ok());
  }
  EXPECT_EQ(rebases_advised, 1);
  EXPECT_TRUE(governor.WithinBudget(log));  // Advice kept us inside.
}

TEST(GovernorTest, BudgetConsumedIsMonotoneGauge) {
  const ToleranceGovernor governor(32, 0.05);
  OpLog log = OpLog::Create(8).value();
  double previous = governor.BudgetConsumed(log);
  EXPECT_GT(previous, 0.0);
  EXPECT_LT(previous, 0.5);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
    const double current = governor.BudgetConsumed(log);
    EXPECT_GE(current, previous);
    previous = current;
  }
  EXPECT_EQ(governor.BudgetConsumed(log), 1.0);  // Exhausted and clamped.
}

TEST(GovernorTest, EstimatedOpsLeftMatchesActualCapacity) {
  const ToleranceGovernor governor(32, 0.05);
  OpLog log = OpLog::Create(8).value();
  const int64_t estimate = governor.EstimatedOpsLeft(log, 8);
  // Drive to exhaustion with constant-ish 8 disks (add 1 / remove 1).
  int64_t actual = 0;
  while (true) {
    const ScalingOp op = (actual % 2 == 0) ? ScalingOp::Add(1).value()
                                           : ScalingOp::Remove({0}).value();
    if (governor.Consider(log, op) ==
        ToleranceGovernor::Advice::kRebaseFirst) {
      break;
    }
    ASSERT_TRUE(log.Append(op).ok());
    ++actual;
  }
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(estimate),
              2.0);
  EXPECT_EQ(governor.EstimatedOpsLeft(log, 8), 0);
}

TEST(GovernorTest, AccessorsRoundTrip) {
  const ToleranceGovernor governor(48, 0.02);
  EXPECT_EQ(governor.bits(), 48);
  EXPECT_DOUBLE_EQ(governor.eps(), 0.02);
  EXPECT_EQ(governor.r0(), (uint64_t{1} << 48) - 1);
}

TEST(GovernorDeathTest, Validation) {
  EXPECT_DEATH(ToleranceGovernor(0, 0.05), "SCADDAR_CHECK");
  EXPECT_DEATH(ToleranceGovernor(64, 0.0), "SCADDAR_CHECK");
  const ToleranceGovernor governor(64, 0.05);
  const OpLog log = OpLog::Create(4).value();
  EXPECT_DEATH(governor.EstimatedOpsLeft(log, 1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
