#include "stats/movement.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(TheoreticalMoveFractionTest, PaperEquationOne) {
  // Addition: (Nj - Nj-1) / Nj.
  EXPECT_DOUBLE_EQ(TheoreticalMoveFraction(4, 5), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(TheoreticalMoveFraction(5, 6), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(TheoreticalMoveFraction(10, 15), 5.0 / 15.0);
  // Removal: (Nj-1 - Nj) / Nj-1.
  EXPECT_DOUBLE_EQ(TheoreticalMoveFraction(6, 5), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(TheoreticalMoveFraction(10, 5), 0.5);
  // No change.
  EXPECT_DOUBLE_EQ(TheoreticalMoveFraction(7, 7), 0.0);
}

TEST(CompareAssignmentsTest, CountsMoves) {
  const std::vector<int64_t> before = {0, 1, 2, 3, 0, 1};
  const std::vector<int64_t> after = {0, 1, 4, 3, 4, 1};
  const MovementStats stats = CompareAssignments(before, after, 4, 5);
  EXPECT_EQ(stats.total_blocks, 6);
  EXPECT_EQ(stats.moved_blocks, 2);
  EXPECT_DOUBLE_EQ(stats.moved_fraction, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(stats.theoretical_fraction, 0.2);
  EXPECT_NEAR(stats.overhead_ratio, (2.0 / 6.0) / 0.2, 1e-12);
}

TEST(CompareAssignmentsTest, NoMovement) {
  const std::vector<int64_t> same = {1, 2, 3};
  const MovementStats stats = CompareAssignments(same, same, 4, 5);
  EXPECT_EQ(stats.moved_blocks, 0);
  EXPECT_DOUBLE_EQ(stats.overhead_ratio, 0.0);
}

TEST(CompareAssignmentsTest, SameDiskCountWithMovementIsInfiniteOverhead) {
  const std::vector<int64_t> before = {0, 1};
  const std::vector<int64_t> after = {1, 0};
  const MovementStats stats = CompareAssignments(before, after, 4, 4);
  EXPECT_TRUE(std::isinf(stats.overhead_ratio));
}

TEST(CompareAssignmentsTest, EmptyAssignments) {
  const MovementStats stats = CompareAssignments({}, {}, 4, 5);
  EXPECT_EQ(stats.total_blocks, 0);
  EXPECT_DOUBLE_EQ(stats.moved_fraction, 0.0);
}

TEST(CompareAssignmentsDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(CompareAssignments({1}, {1, 2}, 4, 5), "SCADDAR_CHECK");
}

TEST(TheoreticalMoveFractionDeathTest, NonPositiveCountsAbort) {
  EXPECT_DEATH(TheoreticalMoveFraction(0, 5), "SCADDAR_CHECK");
  EXPECT_DEATH(TheoreticalMoveFraction(5, 0), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
