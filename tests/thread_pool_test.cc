#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ScheduledTasksAllRun) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      touched[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 0);
  // Fewer elements than workers: chunks never exceed the range.
  pool.ParallelFor(0, 2, [&](int64_t lo, int64_t hi) {
    sum.fetch_add(hi - lo);
  });
  EXPECT_EQ(sum.load(), 2);
}

TEST(ThreadPoolTest, ParallelForIsReusable) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(0, 97, [&](int64_t lo, int64_t hi) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 20 * 97);
}

TEST(ThreadPoolTest, ParallelForChunksAreDeterministic) {
  // Chunk boundaries depend only on (range, workers) — the planner's
  // byte-identical merge relies on this.
  ThreadPool pool(4);
  for (int round = 0; round < 2; ++round) {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> seen;
    pool.ParallelFor(0, 103, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      seen.emplace_back(lo, hi);
    });
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0], (std::pair<int64_t, int64_t>{0, 26}));
    EXPECT_EQ(seen[1], (std::pair<int64_t, int64_t>{26, 52}));
    EXPECT_EQ(seen[2], (std::pair<int64_t, int64_t>{52, 78}));
    EXPECT_EQ(seen[3], (std::pair<int64_t, int64_t>{78, 103}));
  }
}

}  // namespace
}  // namespace scaddar
