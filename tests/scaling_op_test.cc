#include "core/scaling_op.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

TEST(ScalingOpTest, AddBasics) {
  const StatusOr<ScalingOp> op = ScalingOp::Add(3);
  ASSERT_TRUE(op.ok());
  EXPECT_TRUE(op->is_add());
  EXPECT_FALSE(op->is_remove());
  EXPECT_EQ(op->add_count(), 3);
  EXPECT_EQ(op->delta(), 3);
}

TEST(ScalingOpTest, AddRejectsNonPositive) {
  EXPECT_FALSE(ScalingOp::Add(0).ok());
  EXPECT_FALSE(ScalingOp::Add(-2).ok());
}

TEST(ScalingOpTest, RemoveSortsSlots) {
  const StatusOr<ScalingOp> op = ScalingOp::Remove({5, 1, 3});
  ASSERT_TRUE(op.ok());
  EXPECT_TRUE(op->is_remove());
  EXPECT_EQ(op->removed_slots(), (std::vector<DiskSlot>{1, 3, 5}));
  EXPECT_EQ(op->delta(), -3);
}

TEST(ScalingOpTest, RemoveRejectsBadInput) {
  EXPECT_FALSE(ScalingOp::Remove({}).ok());
  EXPECT_FALSE(ScalingOp::Remove({1, 1}).ok());
  EXPECT_FALSE(ScalingOp::Remove({-1}).ok());
}

TEST(ScalingOpTest, RemovesMembership) {
  const ScalingOp op = ScalingOp::Remove({2, 4}).value();
  EXPECT_TRUE(op.Removes(2));
  EXPECT_TRUE(op.Removes(4));
  EXPECT_FALSE(op.Removes(0));
  EXPECT_FALSE(op.Removes(3));
  EXPECT_FALSE(op.Removes(5));
}

TEST(ScalingOpTest, NewSlotCompaction) {
  // Removing slots {1, 4} from 0..5: survivors 0,2,3,5 -> 0,1,2,3.
  const ScalingOp op = ScalingOp::Remove({1, 4}).value();
  EXPECT_EQ(op.NewSlot(0), 0);
  EXPECT_EQ(op.NewSlot(2), 1);
  EXPECT_EQ(op.NewSlot(3), 2);
  EXPECT_EQ(op.NewSlot(5), 3);
}

TEST(ScalingOpTest, PaperNewSlotExample) {
  // Section 4.2.1: "if disk 1 were removed from the disk set 0,1,2,3 and
  // r = 2 then new(r) should become 1".
  const ScalingOp op = ScalingOp::Remove({1}).value();
  EXPECT_EQ(op.NewSlot(2), 1);
  // And the removal example: disks 0..5, remove disk 4, new(5) == 4.
  const ScalingOp remove4 = ScalingOp::Remove({4}).value();
  EXPECT_EQ(remove4.NewSlot(5), 4);
}

TEST(ScalingOpTest, OldSlotInvertsNewSlot) {
  const ScalingOp op = ScalingOp::Remove({0, 3, 4, 9}).value();
  for (const DiskSlot survivor : {1, 2, 5, 6, 7, 8, 10, 11}) {
    EXPECT_EQ(op.OldSlot(op.NewSlot(survivor)), survivor);
  }
}

class NewSlotPropertyTest
    : public ::testing::TestWithParam<std::vector<DiskSlot>> {};

TEST_P(NewSlotPropertyTest, CompactionIsOrderPreservingBijection) {
  const ScalingOp op = ScalingOp::Remove(GetParam()).value();
  constexpr DiskSlot kN = 32;
  DiskSlot expected_new = 0;
  for (DiskSlot slot = 0; slot < kN; ++slot) {
    if (op.Removes(slot)) {
      continue;
    }
    EXPECT_EQ(op.NewSlot(slot), expected_new);
    EXPECT_EQ(op.OldSlot(expected_new), slot);
    ++expected_new;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RemovalSets, NewSlotPropertyTest,
    ::testing::Values(std::vector<DiskSlot>{0},
                      std::vector<DiskSlot>{31},
                      std::vector<DiskSlot>{0, 1, 2, 3},
                      std::vector<DiskSlot>{5, 10, 15, 20, 25},
                      std::vector<DiskSlot>{1, 3, 5, 7, 9, 11},
                      std::vector<DiskSlot>{0, 31},
                      std::vector<DiskSlot>{16}));

TEST(ScalingOpTest, ToStringForms) {
  EXPECT_EQ(ScalingOp::Add(7).value().ToString(), "A7");
  EXPECT_EQ(ScalingOp::Remove({3, 1}).value().ToString(), "R1,3");
}

TEST(ScalingOpTest, ParseRoundTrip) {
  for (const char* text : {"A1", "A99", "R0", "R1,3,5", "R42"}) {
    const StatusOr<ScalingOp> op = ScalingOp::Parse(text);
    ASSERT_TRUE(op.ok()) << text;
    EXPECT_EQ(op->ToString(), text);
  }
}

TEST(ScalingOpTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ScalingOp::Parse("").ok());
  EXPECT_FALSE(ScalingOp::Parse("X3").ok());
  EXPECT_FALSE(ScalingOp::Parse("A").ok());
  EXPECT_FALSE(ScalingOp::Parse("A1x").ok());
  EXPECT_FALSE(ScalingOp::Parse("R").ok());
  EXPECT_FALSE(ScalingOp::Parse("R1,").ok());
  EXPECT_FALSE(ScalingOp::Parse("R1,,2").ok());
  EXPECT_FALSE(ScalingOp::Parse("A0").ok());
  EXPECT_FALSE(ScalingOp::Parse("R2,2").ok());
}

TEST(ScalingOpTest, Equality) {
  EXPECT_EQ(ScalingOp::Add(2).value(), ScalingOp::Add(2).value());
  EXPECT_FALSE(ScalingOp::Add(2).value() == ScalingOp::Add(3).value());
  EXPECT_EQ(ScalingOp::Remove({1, 2}).value(),
            ScalingOp::Remove({2, 1}).value());
}

TEST(ScalingOpDeathTest, WrongKindAccessorsAbort) {
  const ScalingOp add = ScalingOp::Add(1).value();
  const ScalingOp remove = ScalingOp::Remove({0}).value();
  EXPECT_DEATH(add.removed_slots(), "SCADDAR_CHECK");
  EXPECT_DEATH(remove.add_count(), "SCADDAR_CHECK");
  EXPECT_DEATH(add.Removes(0), "SCADDAR_CHECK");
  EXPECT_DEATH(remove.NewSlot(0), "SCADDAR_CHECK");  // Slot 0 is removed.
}

}  // namespace
}  // namespace scaddar
