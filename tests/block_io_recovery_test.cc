// Real-bytes coverage above the backend seam: the BlockIoEngine's image
// lifecycle (place / move / staged-copy / crash-restart), the acceptance
// oracle — a file-backed server is content-identical to the simulated
// default through scale-up and migration — and the headline recovery
// guarantee on real media: a crash mid-staged-copy rolls back torn bytes
// and converges to byte-identical block images.

#include "storage/block_io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "faults/injector.h"
#include "server/server.h"
#include "storage/block_store.h"
#include "storage/move_journal.h"
#include "storage/storage_backend.h"

namespace scaddar {
namespace {

std::string TempDir() {
  std::string templ = ::testing::TempDir() + "scaddar_io_XXXXXX";
  char* made = ::mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

std::unique_ptr<BlockIoEngine> MakeEngine(const std::string& spec) {
  BlockIoEngine::Options options;
  options.spec = spec;
  options.block_bytes = 4096;
  options.queue_depth = 16;
  options.content_seed = 0xfeedface;
  auto engine = BlockIoEngine::Create(options);
  SCADDAR_CHECK(engine.ok());
  return std::move(engine).value();
}

/// Every authoritative block image of `object` re-read and verified
/// against its canonical form.
void ExpectImagesIntact(BlockIoEngine& engine, ObjectId object,
                        int64_t num_blocks) {
  for (int64_t block = 0; block < num_blocks; ++block) {
    const BlockRef ref{object, block};
    const auto image = engine.ReadImage(ref);
    ASSERT_TRUE(image.ok()) << "object " << object << " block " << block
                            << ": " << image.status().ToString();
    EXPECT_TRUE(BlockIoEngine::CheckImage(ref, engine.content_seed(),
                                          image->data(),
                                          static_cast<int64_t>(image->size())))
        << "object " << object << " block " << block << " bytes corrupt";
  }
}

TEST(BlockIoEngineTest, PlaceReadVerify) {
  auto engine = MakeEngine("file:" + TempDir());
  const std::vector<PhysicalDiskId> locations = {0, 1, 2, 1, 0, 3};
  ASSERT_TRUE(engine->PlaceObject(7, locations).ok());
  EXPECT_EQ(engine->stats().blocks_placed, 6);
  ExpectImagesIntact(*engine, 7, 6);
  // A wrong ref must not validate against another block's bytes.
  const auto image = engine->ReadImage({7, 0});
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(BlockIoEngine::CheckImage({7, 1}, engine->content_seed(),
                                         image->data(),
                                         static_cast<int64_t>(image->size())));
}

TEST(BlockIoEngineTest, ApplyMoveRelocatesIntactBytes) {
  auto engine = MakeEngine("file:" + TempDir());
  const std::vector<PhysicalDiskId> locations = {0, 0, 0};
  ASSERT_TRUE(engine->PlaceObject(1, locations).ok());
  ASSERT_TRUE(engine->ApplyMove({1, 1}, 0, 5).ok());
  EXPECT_EQ(engine->stats().moves_applied, 1);
  ExpectImagesIntact(*engine, 1, 3);
}

TEST(BlockIoEngineTest, StagedCopyFlowCommits) {
  auto engine = MakeEngine("file:" + TempDir());
  const std::vector<PhysicalDiskId> locations = {0, 1};
  ASSERT_TRUE(engine->PlaceObject(1, locations).ok());
  ASSERT_TRUE(engine->StageCopy({1, 0}, 0, 3).ok());
  EXPECT_EQ(engine->pending_copies(), 1);
  // No bytes have moved yet: the staged image cannot validate.
  ASSERT_TRUE(engine->ValidateStagedImage({1, 0}).ok());
  EXPECT_FALSE(*engine->ValidateStagedImage({1, 0}));
  std::vector<BlockRef> failed;
  ASSERT_TRUE(engine->FinishMigrationRound(&failed).ok());
  EXPECT_TRUE(failed.empty());
  EXPECT_EQ(engine->pending_copies(), 0);
  EXPECT_TRUE(*engine->ValidateStagedImage({1, 0}));
  ASSERT_TRUE(engine->CommitStaged({1, 0}, 0, 3).ok());
  ExpectImagesIntact(*engine, 1, 2);
}

TEST(BlockIoEngineTest, CrashRestartKeepsDurableImages) {
  const std::string dir = TempDir();
  auto engine = MakeEngine("file:" + dir);
  const std::vector<PhysicalDiskId> locations = {0, 1, 2, 3};
  ASSERT_TRUE(engine->PlaceObject(9, locations).ok());
  ASSERT_TRUE(engine->SimulateCrashRestart().ok());
  // Layout survived its serialize/restore round trip; bytes survived the
  // close/reopen of every disk.
  ExpectImagesIntact(*engine, 9, 4);
}

TEST(BlockIoEngineTest, CrashRestartDiscardsQueuedStagedBytes) {
  auto engine = MakeEngine("file:" + TempDir());
  const std::vector<PhysicalDiskId> locations = {0};
  ASSERT_TRUE(engine->PlaceObject(1, locations).ok());
  ASSERT_TRUE(engine->StageCopy({1, 0}, 0, 2).ok());
  ASSERT_TRUE(engine->SimulateCrashRestart().ok());
  // The queued copy's bytes never reached the medium; the staged slot
  // survives in the layout but its image must fail validation.
  EXPECT_EQ(engine->pending_copies(), 0);
  ASSERT_TRUE(engine->ValidateStagedImage({1, 0}).ok());
  EXPECT_FALSE(*engine->ValidateStagedImage({1, 0}));
  ExpectImagesIntact(*engine, 1, 1);  // The authoritative copy is fine.
}

// ---------------------------------------------------------------------------
// Recovery on real bytes: MoveJournal::Recover must refuse to roll a
// kCopied entry forward when the staged image is torn.

TEST(MoveJournalRealBytesTest, RecoverReleasesTornCopy) {
  auto engine = MakeEngine("file:" + TempDir());
  BlockStore store;
  store.AttachIoEngine(engine.get());
  ASSERT_TRUE(store.PlaceObject(1, {0, 1}).ok());

  // Protocol violation on purpose: log kCopied *without* executing the
  // batched copy (the natural executor only marks after
  // FinishMigrationRound). A crash between the mark and the medium is
  // exactly the torn window Recover must detect.
  MoveJournal journal;
  const int64_t id = journal.Begin({1, 0}, 0, 3);
  ASSERT_TRUE(store.StageCopy({1, 0}, 3).ok());
  journal.MarkCopied(id);
  ASSERT_TRUE(engine->SimulateCrashRestart().ok());  // Bytes vanish.

  const auto stats = journal.Recover(store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->torn_copies_released, 1);
  EXPECT_EQ(stats->rolled_forward, 0);
  EXPECT_EQ(store.staged_blocks(), 0);
  EXPECT_EQ(*store.LocationOf({1, 0}), 0);  // Still at the source.
  ExpectImagesIntact(*engine, 1, 2);        // Source bytes untouched.
}

TEST(MoveJournalRealBytesTest, RecoverRollsForwardDurableCopy) {
  auto engine = MakeEngine("file:" + TempDir());
  BlockStore store;
  store.AttachIoEngine(engine.get());
  ASSERT_TRUE(store.PlaceObject(1, {0, 1}).ok());

  MoveJournal journal;
  const int64_t id = journal.Begin({1, 0}, 0, 3);
  ASSERT_TRUE(store.StageCopy({1, 0}, 3).ok());
  std::vector<BlockRef> failed;
  ASSERT_TRUE(engine->FinishMigrationRound(&failed).ok());
  ASSERT_TRUE(failed.empty());
  journal.MarkCopied(id);  // Bytes are durable; the flip was lost.
  ASSERT_TRUE(engine->SimulateCrashRestart().ok());

  const auto stats = journal.Recover(store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rolled_forward, 1);
  EXPECT_EQ(stats->torn_copies_released, 0);
  EXPECT_EQ(*store.LocationOf({1, 0}), 3);  // Flip completed.
  ExpectImagesIntact(*engine, 1, 2);
}

// ---------------------------------------------------------------------------
// Server-level acceptance: file backend vs. simulated backend.

ServerConfig IoConfig() {
  ServerConfig config;
  config.initial_disks = 4;
  config.disk_spec = {.capacity_blocks = 50'000,
                      .bandwidth_blocks_per_round = 8};
  config.master_seed = 7701;
  return config;
}

/// Drives one server through the shared script: ingest, stream, scale up
/// mid-playback, then run until playback and migration both finish.
void DriveServer(CmServer& server) {
  ASSERT_TRUE(server.AddObject(1, 120).ok());
  ASSERT_TRUE(server.AddObject(2, 80).ok());
  ASSERT_TRUE(server.StartStream(1).ok());
  ASSERT_TRUE(server.StartStream(2).ok());
  for (int round = 0; round < 10; ++round) {
    server.Tick();
  }
  ASSERT_TRUE(server.ScaleAdd(2).ok());
  int rounds = 0;
  while (!server.migration().idle() || server.active_streams() > 0) {
    server.Tick();
    ASSERT_LT(++rounds, 10'000);
  }
  ASSERT_TRUE(server.VerifyIntegrity().ok());
}

TEST(FileBackendServerTest, ContentIdenticalToSimulatedBackend) {
  auto sim = CmServer::Create(IoConfig());
  ASSERT_TRUE(sim.ok());

  ServerConfig file_config = IoConfig();
  file_config.storage_backend = "file:" + TempDir();
  file_config.io_queue_depth = 16;
  auto file = CmServer::Create(file_config);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_NE((*file)->io_engine(), nullptr);

  DriveServer(**sim);
  DriveServer(**file);

  // Identical serving history and placement...
  EXPECT_EQ((*sim)->total_served(), (*file)->total_served());
  EXPECT_EQ((*sim)->total_hiccups(), (*file)->total_hiccups());
  EXPECT_EQ((*sim)->completed_streams(), (*file)->completed_streams());
  ASSERT_EQ((*sim)->store().total_blocks(), (*file)->store().total_blocks());
  for (const ObjectId object : (*sim)->catalog().object_ids()) {
    const auto obj = (*sim)->catalog().GetObject(object);
    ASSERT_TRUE(obj.ok());
    for (int64_t block = 0; block < obj->num_blocks; ++block) {
      EXPECT_EQ(*(*sim)->store().LocationOf({object, block}),
                *(*file)->store().LocationOf({object, block}))
          << "object " << object << " block " << block;
    }
  }

  // ...and every file-backed block image reads back byte-identical to its
  // canonical form (the round-trip read-back acceptance check).
  BlockIoEngine& engine = *(*file)->io_engine();
  EXPECT_GT(engine.stats().serve_reads, 0);
  EXPECT_EQ(engine.stats().serve_errors, 0);
  for (const ObjectId object : (*file)->catalog().object_ids()) {
    const auto obj = (*file)->catalog().GetObject(object);
    ASSERT_TRUE(obj.ok());
    ExpectImagesIntact(engine, object, obj->num_blocks);
  }
}

TEST(FileBackendServerTest, UringSpecServesIdentically) {
  // On kernels without io_uring this exercises the documented sync
  // fallback through the same spec — either way the scenario must hold.
  ServerConfig config = IoConfig();
  config.storage_backend = "uring:" + TempDir();
  config.io_queue_depth = 16;
  auto server = CmServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  DriveServer(**server);
  BlockIoEngine& engine = *(*server)->io_engine();
  EXPECT_EQ(engine.stats().serve_errors, 0);
  for (const ObjectId object : (*server)->catalog().object_ids()) {
    const auto obj = (*server)->catalog().GetObject(object);
    ASSERT_TRUE(obj.ok());
    ExpectImagesIntact(engine, object, obj->num_blocks);
  }
}

// ---------------------------------------------------------------------------
// Crash matrix on real media: tear the server down mid-staged-copy on each
// backend scheme; recovery must restore byte-identical images. The uring
// rows demand the real ring (skipped on kernels without io_uring) so the
// matrix never silently degrades into a second copy of the sync rows.

void CrashAtPhaseRecoversBytes(const std::string& scheme, MovePhase phase) {
  ServerConfig config = IoConfig();
  config.storage_backend = scheme + ":" + TempDir();
  auto server_or = CmServer::Create(config);
  ASSERT_TRUE(server_or.ok());
  CmServer& server = **server_or;
  ASSERT_TRUE(server.AddObject(1, 200).ok());
  ASSERT_TRUE(server.AddObject(2, 150).ok());

  FaultSchedule schedule;
  schedule.Add(
      FaultEvent{.kind = FaultKind::kCrash, .round = -1, .move = 5,
                 .phase = phase});
  FaultInjector injector(schedule);
  server.AttachFaultInjector(&injector);

  ASSERT_TRUE(server.ScaleAdd(2).ok());
  int rounds = 0;
  bool crashed_once = false;
  while (!server.migration().idle() || server.crashed()) {
    if (server.crashed()) {
      crashed_once = true;
      const auto stats = server.SimulateCrashRestart();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    server.Tick();
    ASSERT_LT(++rounds, 20'000);
  }
  EXPECT_TRUE(crashed_once);
  ASSERT_TRUE(server.VerifyIntegrity().ok());
  BlockIoEngine& engine = *server.io_engine();
  for (const ObjectId object : server.catalog().object_ids()) {
    const auto obj = server.catalog().GetObject(object);
    ASSERT_TRUE(obj.ok());
    ExpectImagesIntact(engine, object, obj->num_blocks);
  }
}

TEST(FileBackendCrashTest, CrashAtCopyStagedRecoversBytes) {
  CrashAtPhaseRecoversBytes("file", MovePhase::kCopyStaged);
}

TEST(FileBackendCrashTest, CrashAtCopyLoggedRecoversBytes) {
  CrashAtPhaseRecoversBytes("file", MovePhase::kCopyLogged);
}

TEST(FileBackendCrashTest, CrashAtLocationFlippedRecoversBytes) {
  CrashAtPhaseRecoversBytes("file", MovePhase::kLocationFlipped);
}

#define SCADDAR_REQUIRE_URING()                                   \
  do {                                                            \
    if (!UringAvailable()) {                                      \
      GTEST_SKIP() << "io_uring unavailable on this kernel";      \
    }                                                             \
  } while (false)

TEST(UringBackendCrashTest, CrashAtCopyStagedRecoversBytes) {
  SCADDAR_REQUIRE_URING();
  CrashAtPhaseRecoversBytes("uring", MovePhase::kCopyStaged);
}

TEST(UringBackendCrashTest, CrashAtCopyLoggedRecoversBytes) {
  SCADDAR_REQUIRE_URING();
  CrashAtPhaseRecoversBytes("uring", MovePhase::kCopyLogged);
}

TEST(UringBackendCrashTest, CrashAtLocationFlippedRecoversBytes) {
  SCADDAR_REQUIRE_URING();
  CrashAtPhaseRecoversBytes("uring", MovePhase::kLocationFlipped);
}

// ---------------------------------------------------------------------------
// Backend fault injection end-to-end: seeded EIO under migration load.

TEST(FileBackendFaultTest, InjectedEioRetriesToConvergence) {
  ServerConfig config = IoConfig();
  config.storage_backend = "file:" + TempDir();
  auto server_or = CmServer::Create(config);
  ASSERT_TRUE(server_or.ok());
  CmServer& server = **server_or;
  ASSERT_TRUE(server.AddObject(1, 300).ok());

  FaultSchedule schedule;
  schedule.Add(FaultEvent{.kind = FaultKind::kBackendError,
                          .round = -1,
                          .disk = -1,
                          .probability = 0.2,
                          .backend = BackendFaultKind::kEio});
  FaultInjector injector(schedule);
  server.AttachFaultInjector(&injector);

  ASSERT_TRUE(server.ScaleAdd(2).ok());
  int rounds = 0;
  while (!server.migration().idle()) {
    server.Tick();
    ASSERT_LT(++rounds, 50'000);
  }
  server.AttachFaultInjector(nullptr);
  EXPECT_GT(injector.backend_faults_fired(), 0);
  EXPECT_GT(server.io_engine()->backend().stats().injected_eio, 0);
  ASSERT_TRUE(server.VerifyIntegrity().ok());
  for (const ObjectId object : server.catalog().object_ids()) {
    const auto obj = server.catalog().GetObject(object);
    ASSERT_TRUE(obj.ok());
    ExpectImagesIntact(*server.io_engine(), object, obj->num_blocks);
  }
}

}  // namespace
}  // namespace scaddar
