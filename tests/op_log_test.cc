#include "core/op_log.h"

#include <gtest/gtest.h>

namespace scaddar {
namespace {

OpLog MakeLog(int64_t n0) { return OpLog::Create(n0).value(); }

TEST(OpLogTest, CreateValidation) {
  EXPECT_TRUE(OpLog::Create(1).ok());
  EXPECT_FALSE(OpLog::Create(0).ok());
  EXPECT_FALSE(OpLog::Create(-3).ok());
}

TEST(OpLogTest, InitialState) {
  const OpLog log = MakeLog(4);
  EXPECT_EQ(log.num_ops(), 0);
  EXPECT_EQ(log.initial_disks(), 4);
  EXPECT_EQ(log.current_disks(), 4);
  EXPECT_EQ(log.disks_after(0), 4);
  EXPECT_EQ(log.physical_disks(), (std::vector<PhysicalDiskId>{0, 1, 2, 3}));
  EXPECT_EQ(log.next_physical_id(), 4);
  EXPECT_EQ(static_cast<uint64_t>(log.pi().value()), 4u);
}

TEST(OpLogTest, AddGrowsCountsAndIds) {
  OpLog log = MakeLog(4);
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());
  EXPECT_EQ(log.num_ops(), 1);
  EXPECT_EQ(log.current_disks(), 6);
  EXPECT_EQ(log.physical_disks(),
            (std::vector<PhysicalDiskId>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(log.next_physical_id(), 6);
  EXPECT_EQ(static_cast<uint64_t>(log.pi().value()), 24u);  // 4 * 6.
}

TEST(OpLogTest, RemoveCompactsPhysicalIds) {
  OpLog log = MakeLog(6);
  ASSERT_TRUE(log.Append(ScalingOp::Remove({1, 4}).value()).ok());
  EXPECT_EQ(log.current_disks(), 4);
  EXPECT_EQ(log.physical_disks(), (std::vector<PhysicalDiskId>{0, 2, 3, 5}));
  // Physical ids are never reused by later additions.
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  EXPECT_EQ(log.physical_disks(),
            (std::vector<PhysicalDiskId>{0, 2, 3, 5, 6}));
}

TEST(OpLogTest, RemoveValidation) {
  OpLog log = MakeLog(3);
  // Slot beyond N-1.
  EXPECT_FALSE(log.Append(ScalingOp::Remove({3}).value()).ok());
  // Removing everything.
  EXPECT_FALSE(log.Append(ScalingOp::Remove({0, 1, 2}).value()).ok());
  // Failed appends must not corrupt the log.
  EXPECT_EQ(log.num_ops(), 0);
  EXPECT_EQ(log.current_disks(), 3);
  EXPECT_TRUE(log.Append(ScalingOp::Remove({0, 1}).value()).ok());
  EXPECT_EQ(log.current_disks(), 1);
}

TEST(OpLogTest, DisksAfterHistory) {
  OpLog log = MakeLog(4);
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Remove({0}).value()).ok());
  EXPECT_EQ(log.disks_after(0), 4);
  EXPECT_EQ(log.disks_after(1), 5);
  EXPECT_EQ(log.disks_after(2), 7);
  EXPECT_EQ(log.disks_after(3), 6);
  EXPECT_EQ(log.op(1), ScalingOp::Add(1).value());
  EXPECT_EQ(log.op(3), ScalingOp::Remove({0}).value());
}

TEST(OpLogTest, PhysicalHistoryPerEpoch) {
  OpLog log = MakeLog(3);
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());       // 0 1 2 3
  ASSERT_TRUE(log.Append(ScalingOp::Remove({1}).value()).ok());  // 0 2 3
  EXPECT_EQ(log.physical_disks_at(0), (std::vector<PhysicalDiskId>{0, 1, 2}));
  EXPECT_EQ(log.physical_disks_at(1),
            (std::vector<PhysicalDiskId>{0, 1, 2, 3}));
  EXPECT_EQ(log.physical_disks_at(2), (std::vector<PhysicalDiskId>{0, 2, 3}));
}

TEST(OpLogTest, RevisionBumpsOnAppendOnly) {
  OpLog log = MakeLog(4);
  EXPECT_EQ(log.revision(), 0);
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  EXPECT_EQ(log.revision(), 1);
  // A rejected append leaves the revision untouched.
  EXPECT_FALSE(log.Append(ScalingOp::Remove({99}).value()).ok());
  EXPECT_EQ(log.revision(), 1);
  ASSERT_TRUE(log.Append(ScalingOp::Remove({0}).value()).ok());
  EXPECT_EQ(log.revision(), 2);
  // Copies carry the counter; the copy and original then advance alone.
  OpLog copy = log;
  EXPECT_EQ(copy.revision(), 2);
  ASSERT_TRUE(copy.Append(ScalingOp::Add(2).value()).ok());
  EXPECT_EQ(copy.revision(), 3);
  EXPECT_EQ(log.revision(), 2);
}

TEST(OpLogTest, PiTracksProductOfCounts) {
  OpLog log = MakeLog(4);                                        // Pi = 4
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());       // * 5
  ASSERT_TRUE(log.Append(ScalingOp::Remove({0}).value()).ok());  // * 4
  ASSERT_TRUE(log.Append(ScalingOp::Add(2).value()).ok());       // * 6
  EXPECT_EQ(static_cast<uint64_t>(log.pi().value()), 4u * 5u * 4u * 6u);
}

TEST(OpLogTest, ToleranceGate) {
  // b = 16 -> R0 = 65535, eps = 0.05 -> limit = 65535 * 0.05/1.05 = 3120.7.
  const uint64_t r0 = 65535;
  OpLog log = MakeLog(8);  // Pi = 8.
  EXPECT_TRUE(log.SatisfiesTolerance(r0, 0.05));
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());  // Pi = 72.
  EXPECT_TRUE(log.SatisfiesTolerance(r0, 0.05));
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());  // Pi = 720.
  EXPECT_TRUE(log.SatisfiesTolerance(r0, 0.05));
  // Next add would give Pi = 720 * 11 = 7920 > 3120 -> must be predicted.
  EXPECT_TRUE(log.WouldExceedTolerance(ScalingOp::Add(1).value(), r0, 0.05));
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  EXPECT_FALSE(log.SatisfiesTolerance(r0, 0.05));
}

TEST(OpLogTest, WouldExceedMatchesActualAppend) {
  const uint64_t r0 = (uint64_t{1} << 32) - 1;
  OpLog log = MakeLog(8);
  for (int i = 0; i < 12; ++i) {
    const ScalingOp op = ScalingOp::Add(1).value();
    const bool predicted = log.WouldExceedTolerance(op, r0, 0.05);
    ASSERT_TRUE(log.Append(op).ok());
    EXPECT_EQ(!log.SatisfiesTolerance(r0, 0.05), predicted) << "op " << i;
  }
}

TEST(OpLogTest, SerializeRoundTrip) {
  OpLog log = MakeLog(5);
  ASSERT_TRUE(log.Append(ScalingOp::Add(3).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Remove({2, 6}).value()).ok());
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  const std::string text = log.Serialize();
  EXPECT_EQ(text, "5;A3;R2,6;A1");
  const StatusOr<OpLog> parsed = OpLog::Deserialize(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, log);
  EXPECT_EQ(parsed->physical_disks(), log.physical_disks());
}

TEST(OpLogTest, SerializeRoundTripWithCustomIds) {
  OpLog log = OpLog::CreateWithIds({7, 3, 11}).value();
  ASSERT_TRUE(log.Append(ScalingOp::Add(1).value()).ok());
  const std::string text = log.Serialize();
  EXPECT_EQ(text, "@7,3,11;A1");
  const StatusOr<OpLog> parsed = OpLog::Deserialize(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->physical_disks(),
            (std::vector<PhysicalDiskId>{7, 3, 11, 12}));
}

TEST(OpLogTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(OpLog::Deserialize("").ok());
  EXPECT_FALSE(OpLog::Deserialize("abc").ok());
  EXPECT_FALSE(OpLog::Deserialize("0").ok());
  EXPECT_FALSE(OpLog::Deserialize("4;Z9").ok());
  EXPECT_FALSE(OpLog::Deserialize("4;A").ok());
  EXPECT_FALSE(OpLog::Deserialize("2;R5").ok());  // Slot out of range.
  EXPECT_FALSE(OpLog::Deserialize("@1,1").ok());  // Duplicate ids.
  EXPECT_FALSE(OpLog::Deserialize("@-2").ok());   // Negative id.
}

TEST(OpLogTest, CreateWithIdsValidation) {
  EXPECT_TRUE(OpLog::CreateWithIds({0, 1, 2}).ok());
  EXPECT_TRUE(OpLog::CreateWithIds({5}).ok());
  EXPECT_FALSE(OpLog::CreateWithIds({}).ok());
  EXPECT_FALSE(OpLog::CreateWithIds({1, 1}).ok());
  EXPECT_FALSE(OpLog::CreateWithIds({-1}).ok());
}

TEST(OpLogTest, CreateWithIdsNextIdAboveMax) {
  const OpLog log = OpLog::CreateWithIds({9, 2, 4}).value();
  EXPECT_EQ(log.next_physical_id(), 10);
  EXPECT_EQ(log.initial_disks(), 3);
}

TEST(OpLogDeathTest, OutOfRangeEpochAborts) {
  const OpLog log = MakeLog(2);
  EXPECT_DEATH(log.disks_after(1), "SCADDAR_CHECK");
  EXPECT_DEATH(log.op(1), "SCADDAR_CHECK");
  EXPECT_DEATH(log.physical_disks_at(-1), "SCADDAR_CHECK");
}

}  // namespace
}  // namespace scaddar
