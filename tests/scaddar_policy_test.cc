#include "placement/scaddar_policy.h"

#include <gtest/gtest.h>

#include "core/mapper.h"
#include "random/sequence.h"
#include "stats/chi_square.h"
#include "stats/load_metrics.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

std::vector<uint64_t> MakeX0(uint64_t seed, int64_t n) {
  return X0Sequence::Create(PrngKind::kSplitMix64, seed, 64)
      .value()
      .Materialize(n);
}

TEST(ScaddarPolicyTest, MatchesMapperExactly) {
  ScaddarPolicy policy(5);
  const std::vector<uint64_t> x0 = MakeX0(1, 1000);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({3}).value()).ok());
  const Mapper mapper(&policy.log());
  for (size_t i = 0; i < x0.size(); ++i) {
    const auto block = static_cast<BlockIndex>(i);
    EXPECT_EQ(policy.Locate(1, block), mapper.LocatePhysical(x0[i]));
    EXPECT_EQ(policy.LocateSlot(1, block), mapper.LocateSlot(x0[i]));
  }
}

TEST(ScaddarPolicyTest, InitialPlacementIsModN) {
  ScaddarPolicy policy(7);
  const std::vector<uint64_t> x0 = MakeX0(2, 100);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(policy.LocateSlot(1, static_cast<BlockIndex>(i)),
              static_cast<DiskSlot>(x0[i] % 7));
  }
}

TEST(ScaddarPolicyTest, MovementIsMinimalAcrossAdd) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(3, 20000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(2).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 10);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
  // Movers went only to the new disks.
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      EXPECT_GE(after[i], 8);
    }
  }
}

TEST(ScaddarPolicyTest, MovementIsMinimalAcrossRemove) {
  ScaddarPolicy policy(8);
  ASSERT_TRUE(policy.AddObject(1, MakeX0(4, 20000)).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Remove({2, 5}).value()).ok());
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  const MovementStats stats = CompareAssignments(before, after, 8, 6);
  EXPECT_NEAR(stats.overhead_ratio, 1.0, 0.05);
  for (size_t i = 0; i < before.size(); ++i) {
    const bool was_on_removed = before[i] == 2 || before[i] == 5;
    EXPECT_EQ(before[i] != after[i], was_on_removed);
  }
}

TEST(ScaddarPolicyTest, LoadBalancedAfterMixedOps) {
  ScaddarPolicy policy(8);
  for (ObjectId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(
        policy.AddObject(id, MakeX0(static_cast<uint64_t>(id), 2000)).ok());
  }
  for (const char* text : {"A2", "R3", "A1", "R0,7"}) {
    ASSERT_TRUE(policy.ApplyOp(ScalingOp::Parse(text).value()).ok());
  }
  const std::vector<int64_t> counts = policy.PerDiskCounts();
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
  EXPECT_LT(ComputeLoadMetrics(counts).coefficient_of_variation, 0.05);
}

TEST(ScaddarPolicyTest, DeterministicAcrossInstances) {
  const auto build = [] {
    auto policy = std::make_unique<ScaddarPolicy>(6);
    SCADDAR_CHECK(policy->AddObject(1, MakeX0(5, 500)).ok());
    SCADDAR_CHECK(policy->ApplyOp(ScalingOp::Add(1).value()).ok());
    SCADDAR_CHECK(policy->ApplyOp(ScalingOp::Remove({0}).value()).ok());
    return policy;
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a->AssignmentSnapshot(), b->AssignmentSnapshot());
}

TEST(ScaddarPolicyTest, ObjectAddedAfterScalingUsesCurrentEpoch) {
  ScaddarPolicy policy(4);
  ASSERT_TRUE(policy.ApplyOp(ScalingOp::Add(4).value()).ok());
  const std::vector<uint64_t> x0 = MakeX0(6, 8000);
  ASSERT_TRUE(policy.AddObject(1, x0).ok());
  // The new object spreads over all 8 disks, including the added ones.
  const std::vector<int64_t> counts = policy.PerDiskCounts();
  ASSERT_EQ(counts.size(), 8u);
  for (const int64_t count : counts) {
    EXPECT_GT(count, 0);
  }
  EXPECT_TRUE(ChiSquareUniform(counts).IsUniform(0.001));
}

TEST(ScaddarPolicyTest, NameIsStable) {
  ScaddarPolicy policy(2);
  EXPECT_EQ(policy.name(), "scaddar");
}

}  // namespace
}  // namespace scaddar
