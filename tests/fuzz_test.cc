// Randomized (but seed-deterministic) robustness tests: random op logs
// round-trip serialization, random churn keeps every cross-layer invariant,
// and the servers stay internally consistent under a random driver.

#include <gtest/gtest.h>

#include "core/compiled_log.h"
#include "core/mapper.h"
#include "faults/injector.h"
#include "random/distributions.h"
#include "random/sequence.h"
#include "server/ha_server.h"
#include "server/server.h"

namespace scaddar {
namespace {

ScalingOp RandomOp(Prng& prng, int64_t current_disks) {
  if (current_disks <= 2 || Bernoulli(prng, 0.65)) {
    return ScalingOp::Add(
               1 + static_cast<int64_t>(UniformUint64(prng, 4)))
        .value();
  }
  const int64_t max_remove = std::min<int64_t>(current_disks - 1, 3);
  const int64_t count =
      1 + static_cast<int64_t>(
              UniformUint64(prng, static_cast<uint64_t>(max_remove)));
  return ScalingOp::Remove(SampleWithoutReplacement(prng, current_disks,
                                                    count))
      .value();
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, OpLogSerializationRoundTripsUnderChurn) {
  auto prng = MakePrng(PrngKind::kSplitMix64, GetParam());
  OpLog log = OpLog::Create(
                  1 + static_cast<int64_t>(UniformUint64(*prng, 16)))
                  .value();
  for (int step = 0; step < 25; ++step) {
    ASSERT_TRUE(log.Append(RandomOp(*prng, log.current_disks())).ok());
    const StatusOr<OpLog> parsed = OpLog::Deserialize(log.Serialize());
    ASSERT_TRUE(parsed.ok()) << log.Serialize();
    ASSERT_EQ(*parsed, log);
    ASSERT_EQ(parsed->physical_disks(), log.physical_disks());
    ASSERT_EQ(static_cast<uint64_t>(parsed->pi().value()),
              static_cast<uint64_t>(log.pi().value()));
  }
}

TEST_P(FuzzTest, CompiledAndReplayedAFNeverDisagree) {
  auto prng = MakePrng(PrngKind::kSplitMix64, GetParam() ^ 0x11);
  OpLog log = OpLog::Create(6).value();
  auto seq =
      X0Sequence::Create(PrngKind::kXoshiro256, GetParam(), 64).value();
  for (int step = 0; step < 20; ++step) {
    ASSERT_TRUE(log.Append(RandomOp(*prng, log.current_disks())).ok());
    const Mapper mapper(&log);
    const CompiledLog compiled(log);
    for (int i = 0; i < 200; ++i) {
      const uint64_t x0 = seq.Next();
      ASSERT_EQ(compiled.LocatePhysical(x0), mapper.LocatePhysical(x0));
    }
  }
}

TEST_P(FuzzTest, ServerSurvivesRandomDriver) {
  const uint64_t seed = GetParam() ^ 0x22;
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  ServerConfig config;
  config.initial_disks = 6;
  config.master_seed = seed;
  config.admission_utilization_cap = 0.6;
  auto server = std::move(CmServer::Create(config)).value();
  ObjectId next_object = 1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->AddObject(next_object++, 200).ok());
  }
  for (int round = 0; round < 400; ++round) {
    const double dice = UniformDouble(*prng);
    if (dice < 0.03 && server->catalog().num_objects() < 12) {
      ASSERT_TRUE(server
                      ->AddObject(next_object++,
                                  50 + static_cast<int64_t>(
                                           UniformUint64(*prng, 300)))
                      .ok());
    } else if (dice < 0.05 && server->catalog().num_objects() > 1) {
      // Remove a random object if idle (ignore refusals for streaming
      // objects — that path is exercised too).
      const auto& ids = server->catalog().object_ids();
      const ObjectId victim = ids[static_cast<size_t>(
          UniformUint64(*prng, ids.size()))];
      const Status status = server->RemoveObject(victim);
      ASSERT_TRUE(status.ok() ||
                  status.code() == StatusCode::kFailedPrecondition);
    } else if (dice < 0.08) {
      const ScalingOp op = RandomOp(*prng, server->policy().current_disks());
      if (op.is_add()) {
        ASSERT_TRUE(server->ScaleAdd(op.add_count()).ok());
      } else if (server->policy().current_disks() -
                     static_cast<int64_t>(op.removed_slots().size()) >=
                 2) {
        ASSERT_TRUE(server->ScaleRemove(op.removed_slots()).ok());
      }
    } else if (dice < 0.25) {
      const auto& ids = server->catalog().object_ids();
      const ObjectId object = ids[static_cast<size_t>(
          UniformUint64(*prng, ids.size()))];
      (void)server->StartStream(object);  // Admission may refuse.
    }
    const RoundMetrics metrics = server->Tick();
    // Per-round invariants.
    ASSERT_GE(metrics.served, 0);
    ASSERT_EQ(metrics.requests, metrics.served + metrics.hiccups);
    ASSERT_EQ(server->store().total_blocks(),
              server->catalog().total_blocks());
  }
  // Let everything settle and verify global consistency.
  int rounds = 0;
  while (!server->migration().idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 100000);
  }
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST_P(FuzzTest, HaServerNeverLosesDataUnderSingleFailures) {
  const uint64_t seed = GetParam() ^ 0x33;
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  HaServerConfig config;
  config.base.initial_disks = 8;
  config.base.master_seed = seed;
  config.replicas = 2;
  auto server = std::move(HaCmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 1000).ok());
  (void)server->StartStream(1);
  for (int round = 0; round < 300; ++round) {
    const double dice = UniformDouble(*prng);
    if (dice < 0.01) {
      // Fail a random live disk, but only when fully repaired (single
      // overlapping failure — the 2-way guarantee).
      if (server->repairs_idle()) {
        const std::vector<PhysicalDiskId>& live =
            server->policy().log().physical_disks();
        const PhysicalDiskId victim = live[static_cast<size_t>(
            UniformUint64(*prng, live.size()))];
        if (static_cast<int64_t>(live.size()) > 3) {
          ASSERT_TRUE(server->FailDisk(victim).ok());
        }
      }
    } else if (dice < 0.02) {
      ASSERT_TRUE(server->ScaleAdd(1).ok());
    }
    server->Tick();
    ASSERT_EQ(server->UnreadableBlocks(), 0);
  }
  int rounds = 0;
  while (!server->repairs_idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 100000);
  }
  EXPECT_TRUE(server->VerifyRedundancy().ok());
}

TEST_P(FuzzTest, ServerNeverLosesBlocksUnderRandomFaultSchedules) {
  const uint64_t seed = GetParam() ^ 0x44;
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  ServerConfig config;
  config.initial_disks = 6;
  config.master_seed = seed;
  config.journal_migration = true;
  auto server = std::move(CmServer::Create(config)).value();
  ObjectId next_object = 1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->AddObject(next_object++, 250).ok());
  }
  RandomScheduleOptions schedule_options;
  schedule_options.crashes = 6;
  schedule_options.max_crash_move = 64;
  schedule_options.transient_probability = 0.05;
  FaultInjector injector(FaultSchedule::Random(seed, schedule_options), seed);
  server->AttachFaultInjector(&injector);
  int64_t recoveries = 0;
  for (int round = 0; round < 300; ++round) {
    const double dice = UniformDouble(*prng);
    if (server->crashed()) {
      // The dead process loses its volatile state; restart and recover.
      ASSERT_TRUE(server->SimulateCrashRestart().ok());
      ++recoveries;
    } else if (dice < 0.04) {
      const ScalingOp op = RandomOp(*prng, server->policy().current_disks());
      if (op.is_add()) {
        ASSERT_TRUE(server->ScaleAdd(op.add_count()).ok());
      } else if (server->policy().current_disks() -
                     static_cast<int64_t>(op.removed_slots().size()) >=
                 2) {
        ASSERT_TRUE(server->ScaleRemove(op.removed_slots()).ok());
      }
    } else if (dice < 0.2) {
      (void)server->StartStream(1 + static_cast<ObjectId>(
                                        UniformUint64(*prng, 3)));
    }
    server->Tick();
    // No block is ever lost or duplicated, crashed or not: the durable
    // store always carries exactly the cataloged block population.
    ASSERT_EQ(server->store().total_blocks(),
              server->catalog().total_blocks());
  }
  // Drain to convergence through any remaining crash events.
  int rounds = 0;
  while (!server->migration().idle() || server->crashed()) {
    if (server->crashed()) {
      ASSERT_TRUE(server->SimulateCrashRestart().ok());
      ++recoveries;
    }
    server->Tick();
    ASSERT_LT(++rounds, 100000);
  }
  EXPECT_EQ(recoveries, injector.crashes_fired());
  EXPECT_EQ(server->store().staged_blocks(), 0);
  EXPECT_TRUE(server->VerifyIntegrity().ok());
}

TEST_P(FuzzTest, HaServerSurvivesRandomFaultSchedules) {
  const uint64_t seed = GetParam() ^ 0x55;
  HaServerConfig config;
  config.base.initial_disks = 10;
  config.base.master_seed = seed;
  config.replicas = 2;
  auto server = std::move(HaCmServer::Create(config)).value();
  ASSERT_TRUE(server->AddObject(1, 800).ok());
  (void)server->StartStream(1);
  // Scheduled disk deaths (spaced wider than a rebuild takes, preserving
  // the single-overlapping-failure guarantee) plus transient read/transfer
  // errors that the retry/backoff path must absorb.
  RandomScheduleOptions schedule_options;
  schedule_options.crashes = 0;
  schedule_options.disk_failures = 2;
  schedule_options.max_round = 100;
  schedule_options.failure_spacing = 400;
  schedule_options.max_disk_id = config.base.initial_disks;
  schedule_options.transient_probability = 0.02;
  FaultInjector injector(FaultSchedule::Random(seed, schedule_options), seed);
  server->AttachFaultInjector(&injector);
  for (int round = 0; round < 900; ++round) {
    server->Tick();
    ASSERT_EQ(server->UnreadableBlocks(), 0);
  }
  int rounds = 0;
  while (!server->repairs_idle()) {
    server->Tick();
    ASSERT_LT(++rounds, 100000);
  }
  EXPECT_EQ(injector.disk_failures_fired(), 2);
  EXPECT_TRUE(server->VerifyRedundancy().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(0xf001, 0xf002, 0xf003, 0xf004,
                                           0xf005, 0xf006));

}  // namespace
}  // namespace scaddar
