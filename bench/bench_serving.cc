// EXP-S (extension) — the serving path under REMAP chain depth: scheduler
// round throughput (requests/s) and p50/p99 round latency for the batched
// cursor path vs. the scalar per-block Locate path, at op-log depths
// 0 / 8 / 32. This isolates what the batch engine buys on the *request*
// path: per-block chain replays vs. windowed batch prefetch.
//
// Usage: bench_serving [--smoke]
//   --smoke   tiny sizes, no BENCH_serving.json (CI wiring check only).
// The full run writes BENCH_serving.json to the working directory.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "placement/scaddar_policy.h"
#include "server/location_cursor.h"
#include "server/migration.h"
#include "server/scheduler.h"
#include "storage/block_store.h"

namespace scaddar {
namespace {

struct Sizes {
  int64_t objects = 24;
  int64_t blocks_each = 20'000;
  int64_t streams = 128;
  int64_t rounds = 400;
  // Untimed rounds first, so the cold start (every window filling at
  // once in round 0) doesn't masquerade as steady-state cost. Recurring
  // refills *are* steady-state and stay inside the timed horizon.
  int64_t warmup_rounds = 64;
  // Each path is measured this many times on a fresh fixture and the
  // fastest repetition wins — rounds are microseconds long, so a single
  // pass is at the mercy of scheduler jitter.
  int64_t repetitions = 3;
};

struct PathResult {
  int64_t requests = 0;
  int64_t served = 0;
  bench::RoundTiming timing;

  double RequestsPerSecond() const {
    return timing.total_seconds > 0
               ? static_cast<double>(requests) / timing.total_seconds
               : 0;
  }
};

/// Policy with `ops` single-disk additions applied, store materialized to
/// AF() (idle migration: all serving paths route identically), and a fixed
/// stream population that never finishes inside the horizon.
struct Fixture {
  Fixture(int64_t ops, const Sizes& sizes)
      : policy(8),
        disks(DiskSpec{.capacity_blocks = 10'000'000,
                       .bandwidth_blocks_per_round = 64}),
        store(&disks) {
    const auto x0s = bench::MakeObjects(0x5e71ull, sizes.objects,
                                        sizes.blocks_each,
                                        PrngKind::kSplitMix64, 64);
    for (ObjectId id = 1; id <= sizes.objects; ++id) {
      SCADDAR_CHECK(
          policy.AddObject(id, x0s[static_cast<size_t>(id - 1)]).ok());
    }
    for (int64_t j = 0; j < ops; ++j) {
      SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
    }
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    std::vector<PhysicalDiskId> locations;
    for (ObjectId id = 1; id <= sizes.objects; ++id) {
      policy.LocateAllBlocks(id, locations);
      SCADDAR_CHECK(store.PlaceObject(id, locations).ok());
    }
    for (int64_t s = 0; s < sizes.streams; ++s) {
      const ObjectId object = 1 + s % sizes.objects;
      streams.emplace_back(s, object, sizes.blocks_each, 0);
      // Stagger starting offsets so requests spread over the objects.
      streams.back().SeekTo((s * 977) % (sizes.blocks_each / 2));
    }
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
  RoundScheduler scheduler;
  std::vector<Stream> streams;
};

template <typename RoundFn>
PathResult Measure(Fixture& fx, const Sizes& sizes, RoundFn&& run_round) {
  PathResult result;
  result.timing = bench::MeasureRounds(
      sizes.warmup_rounds, sizes.rounds, [&] { return run_round(fx); },
      [&](const RoundServiceResult& service) {
        result.requests += service.requests;
        result.served += service.served;
      });
  return result;
}

template <typename RoundFn>
PathResult MeasureBest(int64_t ops, const Sizes& sizes, RoundFn&& run_round) {
  return bench::BestOf(
      sizes.repetitions,
      [&] {
        Fixture fx(ops, sizes);
        return Measure(fx, sizes, run_round);
      },
      [](const PathResult& result) { return result.timing.total_seconds; });
}

PathResult MeasureBatched(int64_t ops, const Sizes& sizes) {
  return MeasureBest(ops, sizes, [](Fixture& f) {
    return f.scheduler.RunBatched(f.streams, f.policy, f.migration, f.store,
                                  f.disks, nullptr);
  });
}

PathResult MeasureScalar(int64_t ops, const Sizes& sizes) {
  return MeasureBest(ops, sizes, [](Fixture& f) {
    return f.scheduler.RunScalarLocate(f.streams, f.policy, f.disks, nullptr);
  });
}

PathResult MeasureStore(int64_t ops, const Sizes& sizes) {
  return MeasureBest(ops, sizes, [](Fixture& f) {
    return f.scheduler.Run(f.streams, f.store, f.disks, nullptr);
  });
}

void AppendPathJson(bench::BenchJson& json, const char* name,
                    const PathResult& result) {
  json.Path(name,
            {{"requests", static_cast<double>(result.requests), 0},
             {"seconds", result.timing.total_seconds, 6},
             {"requests_per_second", result.RequestsPerSecond(), 0},
             {"p50_us", result.timing.p50_us, 2},
             {"p99_us", result.timing.p99_us, 2}});
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  using namespace scaddar;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::PrintHeader("EXP-S",
                     "serving path: batched cursors vs. scalar Locate");
  Sizes sizes;
  if (smoke) {
    sizes = Sizes{.objects = 4, .blocks_each = 600, .streams = 8,
                  .rounds = 20};
  }
  std::printf("%-6s %-12s %-14s %-12s %-12s %-10s\n", "ops", "path",
              "requests/s", "p50-us", "p99-us", "speedup");
  bench::BenchJson json("bench_serving");
  for (const int64_t ops : {0, 8, 32}) {
    const PathResult batched = MeasureBatched(ops, sizes);
    const PathResult scalar = MeasureScalar(ops, sizes);
    const PathResult store = MeasureStore(ops, sizes);
    const double speedup =
        scalar.timing.total_seconds > 0 && batched.timing.total_seconds > 0
            ? scalar.timing.total_seconds / batched.timing.total_seconds
            : 0;
    std::printf("%-6lld %-12s %-14.0f %-12.2f %-12.2f %-10s\n",
                static_cast<long long>(ops), "batch",
                batched.RequestsPerSecond(), batched.timing.p50_us,
                batched.timing.p99_us, "");
    std::printf("%-6lld %-12s %-14.0f %-12.2f %-12.2f %-10.2f\n",
                static_cast<long long>(ops), "scalar",
                scalar.RequestsPerSecond(), scalar.timing.p50_us,
                scalar.timing.p99_us, speedup);
    std::printf("%-6lld %-12s %-14.0f %-12.2f %-12.2f %-10s\n",
                static_cast<long long>(ops), "store",
                store.RequestsPerSecond(), store.timing.p50_us,
                store.timing.p99_us, "");
    json.BeginTier(ops);
    json.TierMetric("speedup_batch_vs_scalar", speedup);
    AppendPathJson(json, "batch", batched);
    AppendPathJson(json, "scalar", scalar);
    AppendPathJson(json, "store", store);
    json.EndTier();
  }
  bench::PrintRule();
  std::printf(
      "Expected shape: the scalar path replays the object's REMAP chain per\n"
      "request, so its cost grows with op-log depth; the batched path pays\n"
      "one windowed batch refill per %lld requests and stays flat. The\n"
      "store path (hash lookup per request) sits between them and is depth-\n"
      "independent, but unlike the cursor it cannot serve from a compiled\n"
      "placement snapshot when the store is clean.\n",
      static_cast<long long>(LocationCursor::kDefaultWindow));
  if (!smoke) {
    SCADDAR_CHECK(json.WriteFile("BENCH_serving.json"));
    std::printf("wrote BENCH_serving.json\n");
  }
  return 0;
}
