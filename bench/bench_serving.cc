// EXP-S (extension) — the serving path under REMAP chain depth: scheduler
// round throughput (requests/s) and p50/p99 round latency for the batched
// cursor path vs. the scalar per-block Locate path, at op-log depths
// 0 / 8 / 32. This isolates what the batch engine buys on the *request*
// path: per-block chain replays vs. windowed batch prefetch.
//
// Usage: bench_serving [--smoke]
//   --smoke   tiny sizes, no BENCH_serving.json (CI wiring check only).
// The full run writes BENCH_serving.json to the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "placement/scaddar_policy.h"
#include "server/location_cursor.h"
#include "server/migration.h"
#include "server/scheduler.h"
#include "storage/block_store.h"

namespace scaddar {
namespace {

struct Sizes {
  int64_t objects = 24;
  int64_t blocks_each = 20'000;
  int64_t streams = 128;
  int64_t rounds = 400;
  // Untimed rounds first, so the cold start (every window filling at
  // once in round 0) doesn't masquerade as steady-state cost. Recurring
  // refills *are* steady-state and stay inside the timed horizon.
  int64_t warmup_rounds = 64;
  // Each path is measured this many times on a fresh fixture and the
  // fastest repetition wins — rounds are microseconds long, so a single
  // pass is at the mercy of scheduler jitter.
  int64_t repetitions = 3;
};

struct PathResult {
  int64_t requests = 0;
  int64_t served = 0;
  double total_seconds = 0;
  double p50_us = 0;
  double p99_us = 0;

  double RequestsPerSecond() const {
    return total_seconds > 0 ? static_cast<double>(requests) / total_seconds
                             : 0;
  }
};

/// Policy with `ops` single-disk additions applied, store materialized to
/// AF() (idle migration: all serving paths route identically), and a fixed
/// stream population that never finishes inside the horizon.
struct Fixture {
  Fixture(int64_t ops, const Sizes& sizes)
      : policy(8),
        disks(DiskSpec{.capacity_blocks = 10'000'000,
                       .bandwidth_blocks_per_round = 64}),
        store(&disks) {
    const auto x0s = bench::MakeObjects(0x5e71ull, sizes.objects,
                                        sizes.blocks_each,
                                        PrngKind::kSplitMix64, 64);
    for (ObjectId id = 1; id <= sizes.objects; ++id) {
      SCADDAR_CHECK(
          policy.AddObject(id, x0s[static_cast<size_t>(id - 1)]).ok());
    }
    for (int64_t j = 0; j < ops; ++j) {
      SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
    }
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    std::vector<PhysicalDiskId> locations;
    for (ObjectId id = 1; id <= sizes.objects; ++id) {
      policy.LocateAllBlocks(id, locations);
      SCADDAR_CHECK(store.PlaceObject(id, locations).ok());
    }
    for (int64_t s = 0; s < sizes.streams; ++s) {
      const ObjectId object = 1 + s % sizes.objects;
      streams.emplace_back(s, object, sizes.blocks_each, 0);
      // Stagger starting offsets so requests spread over the objects.
      streams.back().SeekTo((s * 977) % (sizes.blocks_each / 2));
    }
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
  RoundScheduler scheduler;
  std::vector<Stream> streams;
};

template <typename RoundFn>
PathResult Measure(Fixture& fx, const Sizes& sizes, RoundFn&& run_round) {
  for (int64_t round = 0; round < sizes.warmup_rounds; ++round) {
    run_round(fx);
  }
  const int64_t rounds = sizes.rounds;
  PathResult result;
  std::vector<double> round_us;
  round_us.reserve(static_cast<size_t>(rounds));
  for (int64_t round = 0; round < rounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    const RoundServiceResult service = run_round(fx);
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    round_us.push_back(us);
    result.requests += service.requests;
    result.served += service.served;
    result.total_seconds += us * 1e-6;
  }
  std::sort(round_us.begin(), round_us.end());
  const auto percentile = [&](double p) {
    const auto index = static_cast<size_t>(
        p * static_cast<double>(round_us.size() - 1));
    return round_us[index];
  };
  result.p50_us = percentile(0.50);
  result.p99_us = percentile(0.99);
  return result;
}

template <typename RoundFn>
PathResult MeasureBest(int64_t ops, const Sizes& sizes, RoundFn&& run_round) {
  PathResult best;
  for (int64_t rep = 0; rep < sizes.repetitions; ++rep) {
    Fixture fx(ops, sizes);
    const PathResult result = Measure(fx, sizes, run_round);
    if (rep == 0 || result.total_seconds < best.total_seconds) {
      best = result;
    }
  }
  return best;
}

PathResult MeasureBatched(int64_t ops, const Sizes& sizes) {
  return MeasureBest(ops, sizes, [](Fixture& f) {
    return f.scheduler.RunBatched(f.streams, f.policy, f.migration, f.store,
                                  f.disks, nullptr);
  });
}

PathResult MeasureScalar(int64_t ops, const Sizes& sizes) {
  return MeasureBest(ops, sizes, [](Fixture& f) {
    return f.scheduler.RunScalarLocate(f.streams, f.policy, f.disks, nullptr);
  });
}

PathResult MeasureStore(int64_t ops, const Sizes& sizes) {
  return MeasureBest(ops, sizes, [](Fixture& f) {
    return f.scheduler.Run(f.streams, f.store, f.disks, nullptr);
  });
}

void AppendPathJson(std::string& json, const char* name,
                    const PathResult& result, bool last) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"requests\": %lld, \"seconds\": %.6f, "
                "\"requests_per_second\": %.0f, \"p50_us\": %.2f, "
                "\"p99_us\": %.2f}%s\n",
                name, static_cast<long long>(result.requests),
                result.total_seconds, result.RequestsPerSecond(),
                result.p50_us, result.p99_us, last ? "" : ",");
  json += buffer;
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  using namespace scaddar;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bench::PrintHeader("EXP-S",
                     "serving path: batched cursors vs. scalar Locate");
  Sizes sizes;
  if (smoke) {
    sizes = Sizes{.objects = 4, .blocks_each = 600, .streams = 8,
                  .rounds = 20};
  }
  std::printf("%-6s %-12s %-14s %-12s %-12s %-10s\n", "ops", "path",
              "requests/s", "p50-us", "p99-us", "speedup");
  std::string json = "{\n  \"experiment\": \"bench_serving\",\n  \"tiers\": [\n";
  const std::vector<int64_t> tiers = {0, 8, 32};
  for (size_t t = 0; t < tiers.size(); ++t) {
    const int64_t ops = tiers[t];
    const PathResult batched = MeasureBatched(ops, sizes);
    const PathResult scalar = MeasureScalar(ops, sizes);
    const PathResult store = MeasureStore(ops, sizes);
    const double speedup =
        scalar.total_seconds > 0 && batched.total_seconds > 0
            ? scalar.total_seconds / batched.total_seconds
            : 0;
    std::printf("%-6lld %-12s %-14.0f %-12.2f %-12.2f %-10s\n",
                static_cast<long long>(ops), "batch",
                batched.RequestsPerSecond(), batched.p50_us, batched.p99_us,
                "");
    std::printf("%-6lld %-12s %-14.0f %-12.2f %-12.2f %-10.2f\n",
                static_cast<long long>(ops), "scalar",
                scalar.RequestsPerSecond(), scalar.p50_us, scalar.p99_us,
                speedup);
    std::printf("%-6lld %-12s %-14.0f %-12.2f %-12.2f %-10s\n",
                static_cast<long long>(ops), "store",
                store.RequestsPerSecond(), store.p50_us, store.p99_us, "");
    char head[128];
    std::snprintf(head, sizeof(head),
                  "    {\"ops\": %lld, \"speedup_batch_vs_scalar\": %.2f,\n",
                  static_cast<long long>(ops), speedup);
    json += head;
    json += "     \"paths\": {\n";
    AppendPathJson(json, "batch", batched, false);
    AppendPathJson(json, "scalar", scalar, false);
    AppendPathJson(json, "store", store, true);
    json += "     }}";
    json += (t + 1 < tiers.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  bench::PrintRule();
  std::printf(
      "Expected shape: the scalar path replays the object's REMAP chain per\n"
      "request, so its cost grows with op-log depth; the batched path pays\n"
      "one windowed batch refill per %lld requests and stays flat. The\n"
      "store path (hash lookup per request) sits between them and is depth-\n"
      "independent, but unlike the cursor it cannot serve from a compiled\n"
      "placement snapshot when the store is clean.\n",
      static_cast<long long>(LocationCursor::kDefaultWindow));
  if (!smoke) {
    std::FILE* out = std::fopen("BENCH_serving.json", "w");
    SCADDAR_CHECK(out != nullptr);
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_serving.json\n");
  }
  return 0;
}
