// EXP-CL (extension) — scale-out cluster serving: jump-hash routed server
// shards with coordinated scaling and cross-shard migration.
//
// Three questions, one per tier block:
//  1. Throughput scaling — aggregate model round throughput at 1/2/4/8
//     server shards, offered load scaled with capacity. "Model" follows the
//     repo convention for hardware-dependent figures: shards are
//     independent servers, so one cluster round costs the slowest shard's
//     tick plus the serial tail (merge + cross-shard pump); each shard is
//     timed unpolluted via `TickSerialized` and the median round's critical
//     path is scaled to the horizon. A host with >= N free cores would see
//     the model number on the wall clock.
//  2. Migration cost — blocks copied between shards after `AddServerShard`
//     (jump-hash delta, expected ~1/(N+1) of the catalog) vs. the naive
//     rehash-everything baseline (`id mod N` routing, which strands
//     ~N/(N+1) of all objects on the wrong shard after a grow).
//  3. Scale-out under fire — a Zipf flash crowd slams the cluster exactly
//     when a shard is added: hiccup rate, startup-latency p50/p99/p999 and
//     handed-off-session rejects while the evacuation runs under the
//     interconnect budget.
//
// Usage: bench_cluster [--smoke] [--json-only]
//   --smoke      tiny sizes, no BENCH_cluster.json (CI wiring check).
//   --json-only  suppress the console tables, still write the JSON.
// The full run writes BENCH_cluster.json to the working directory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster_server.h"
#include "server/workload/traffic_engine.h"
#include "stats/percentile.h"

namespace scaddar {
namespace {

struct Sizes {
  // Tier 1: throughput scaling.
  int64_t objects_per_shard = 8;
  int64_t blocks_each = 20'000;
  int64_t streams_per_shard = 96;
  int64_t rounds = 200;
  int64_t warmup_rounds = 32;
  int64_t repetitions = 3;
  // Tier 2: migration cost.
  int64_t catalog_objects = 128;
  int64_t catalog_blocks = 2'000;
  // Tier 3: scale-out under fire.
  int64_t fire_rounds = 400;
  int64_t fire_objects = 24;
  int64_t fire_blocks = 4'000;
};

ClusterConfig BaseConfig() {
  ClusterConfig config;
  config.shard.initial_disks = 8;
  config.shard.disk_spec = {.capacity_blocks = 10'000'000,
                            .bandwidth_blocks_per_round = 16};
  config.cross_shard_budget = 256;
  return config;
}

// --- Tier 1: throughput scaling -----------------------------------------

struct ScalingResult {
  int shards = 1;
  int64_t requests = 0;
  double model_seconds = 0;

  double ModelRps() const {
    return model_seconds > 0 ? static_cast<double>(requests) / model_seconds
                             : 0;
  }
};

/// One model pass: a cluster of `shards` serving a steady population sized
/// to its capacity, every round timed shard-serialized.
ScalingResult MeasureScalingOnce(int shards, const Sizes& sizes) {
  ScalingResult result;
  result.shards = shards;
  ClusterConfig config = BaseConfig();
  config.initial_shards = shards;
  // Streams must admit on their object's shard, and the jump hash spreads
  // objects binomially, not exactly evenly: leave the admission cap
  // headroom above the worst per-shard imbalance at these catalog sizes.
  config.shard.disk_spec.bandwidth_blocks_per_round = 32;
  auto cluster = ClusterServer::Create(config).value();
  const int64_t objects = sizes.objects_per_shard * shards;
  for (ObjectId id = 1; id <= objects; ++id) {
    SCADDAR_CHECK(cluster->AddObject(id, sizes.blocks_each).ok());
  }
  const int64_t streams = sizes.streams_per_shard * shards;
  for (int64_t s = 0; s < streams; ++s) {
    const ObjectId object = 1 + s % objects;
    const auto id = cluster->StartStream(object);
    SCADDAR_CHECK(id.ok());
    // Spread positions so the horizon never finishes a stream.
    SCADDAR_CHECK(
        cluster->SeekStream(id.value(), (s * 977) % (sizes.blocks_each / 2))
            .ok());
  }
  for (int64_t i = 0; i < sizes.warmup_rounds; ++i) {
    cluster->TickSerialized(nullptr);
  }
  std::vector<int64_t> round_ns;
  round_ns.reserve(static_cast<size_t>(sizes.rounds));
  ClusterTickTiming timing;
  for (int64_t i = 0; i < sizes.rounds; ++i) {
    const ClusterRoundMetrics metrics = cluster->TickSerialized(&timing);
    result.requests += metrics.requests;
    int64_t slowest = 0;
    for (const int64_t ns : timing.shard_ns) {
      slowest = std::max(slowest, ns);
    }
    round_ns.push_back(slowest + timing.serial_ns);
  }
  // Median round's critical path scaled to the horizon — the same
  // preemption-robust model clock as bench_serving_mt.
  std::sort(round_ns.begin(), round_ns.end());
  result.model_seconds = static_cast<double>(round_ns[round_ns.size() / 2]) *
                         1e-9 * static_cast<double>(sizes.rounds);
  return result;
}

std::vector<ScalingResult> MeasureScaling(const std::vector<int>& counts,
                                          const Sizes& sizes) {
  std::vector<ScalingResult> results(counts.size());
  // Interleave repetitions so a slow patch on a shared host degrades every
  // tier's candidate equally; fastest rep per tier wins.
  for (int64_t rep = 0; rep < sizes.repetitions; ++rep) {
    for (size_t t = 0; t < counts.size(); ++t) {
      const ScalingResult candidate = MeasureScalingOnce(counts[t], sizes);
      if (rep == 0 || candidate.model_seconds < results[t].model_seconds) {
        results[t] = candidate;
      }
    }
  }
  return results;
}

// --- Tier 2: migration cost vs naive rehash -----------------------------

struct MigrationCost {
  int64_t moved_objects = 0;
  int64_t moved_blocks = 0;
  int64_t naive_moved_objects = 0;
  int64_t rounds_to_drain = 0;
  double moved_fraction = 0;
  double naive_fraction = 0;
};

MigrationCost MeasureMigrationCost(const Sizes& sizes) {
  constexpr int kShards = 4;
  ClusterConfig config = BaseConfig();
  config.initial_shards = kShards;
  auto cluster = ClusterServer::Create(config).value();
  for (ObjectId id = 1; id <= sizes.catalog_objects; ++id) {
    SCADDAR_CHECK(cluster->AddObject(id, sizes.catalog_blocks).ok());
  }
  SCADDAR_CHECK(cluster->AddServerShard().ok());
  MigrationCost cost;
  cost.moved_objects = cluster->migrator().pending_transfers();
  while (!cluster->MigrationIdle()) {
    cluster->Tick();
    ++cost.rounds_to_drain;
    SCADDAR_CHECK(cost.rounds_to_drain < 1'000'000);
  }
  SCADDAR_CHECK(cluster->VerifyIntegrity().ok());
  cost.moved_blocks = cluster->migrator().total_blocks_copied();
  // The naive baseline: route by `id mod N`. Growing N to N+1 reroutes
  // every object whose residue changes — nearly the whole catalog.
  for (ObjectId id = 1; id <= sizes.catalog_objects; ++id) {
    if (id % kShards != id % (kShards + 1)) {
      ++cost.naive_moved_objects;
    }
  }
  cost.moved_fraction = static_cast<double>(cost.moved_objects) /
                        static_cast<double>(sizes.catalog_objects);
  cost.naive_fraction = static_cast<double>(cost.naive_moved_objects) /
                        static_cast<double>(sizes.catalog_objects);
  return cost;
}

// --- Tier 3: scale-out under a flash crowd ------------------------------

struct FireResult {
  int64_t requests = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
  int64_t cross_shard_blocks = 0;
  int64_t handoff_rejects = 0;
  int64_t rounds_to_idle = 0;  // From the add to cluster-wide idleness.
  int64_t startup_p50 = 0;
  int64_t startup_p99 = 0;
  int64_t startup_p999 = 0;

  double HiccupRate() const {
    return requests > 0
               ? static_cast<double>(hiccups) / static_cast<double>(requests)
               : 0;
  }
};

FireResult RunScaleOutUnderFire(const Sizes& sizes) {
  ClusterConfig config = BaseConfig();
  config.initial_shards = 2;
  config.cross_shard_budget = 64;  // A deliberately narrow interconnect.
  auto cluster = ClusterServer::Create(config).value();
  for (ObjectId id = 1; id <= sizes.fire_objects; ++id) {
    SCADDAR_CHECK(cluster->AddObject(id, sizes.fire_blocks).ok());
  }
  const int64_t add_round = sizes.fire_rounds / 4;
  TrafficConfig traffic_config;
  traffic_config.seed = 0xc1f5ull;
  traffic_config.arrivals_per_round = 2.0;
  traffic_config.zipf_theta = 0.729;
  traffic_config.seek_probability = 0.02;
  // The premiere lands exactly when the third shard comes up: arrivals
  // spike onto the Zipf head while its blocks may be mid-evacuation.
  traffic_config.flash_crowds.push_back(
      FlashCrowd{.start_round = add_round,
                 .duration = sizes.fire_rounds / 10,
                 .rank = 0,
                 .boost = 6});
  TrafficEngine traffic(traffic_config);
  traffic.SetObjects(cluster->objects());

  FireResult result;
  bool was_idle_after_add = false;
  for (int64_t round = 0; round < sizes.fire_rounds; ++round) {
    if (round == add_round) {
      SCADDAR_CHECK(cluster->AddServerShard().ok());
    }
    const ClusterRoundMetrics metrics = cluster->DriveRound(traffic);
    result.requests += metrics.requests;
    result.served += metrics.served;
    result.hiccups += metrics.hiccups;
    result.cross_shard_blocks += metrics.cross_shard_blocks;
    if (round >= add_round && !was_idle_after_add) {
      ++result.rounds_to_idle;
      was_idle_after_add = cluster->MigrationIdle();
    }
  }
  SCADDAR_CHECK(cluster->VerifyIntegrity().ok());
  result.handoff_rejects = cluster->handoff_rejects();
  const std::vector<int64_t> latencies = cluster->StartupLatencies();
  result.startup_p50 = PercentileOf(latencies, 0.50);
  result.startup_p99 = PercentileOf(latencies, 0.99);
  result.startup_p999 = PercentileOf(latencies, 0.999);
  return result;
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  using namespace scaddar;
  bool smoke = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    }
  }
  Sizes sizes;
  if (smoke) {
    sizes = Sizes{.objects_per_shard = 3,
                  .blocks_each = 600,
                  .streams_per_shard = 8,
                  .rounds = 10,
                  .warmup_rounds = 3,
                  .repetitions = 1,
                  .catalog_objects = 24,
                  .catalog_blocks = 120,
                  .fire_rounds = 60,
                  .fire_objects = 8,
                  .fire_blocks = 400};
  }

  if (!json_only) {
    bench::PrintHeader("EXP-CL",
                       "cluster serving: shards, scaling and migration cost");
    std::printf("%-7s %-9s %-13s %-13s %-9s\n", "shards", "streams",
                "requests", "model-req/s", "speedup");
  }
  bench::BenchJson json("bench_cluster");
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const std::vector<ScalingResult> scaling =
      MeasureScaling(shard_counts, sizes);
  double base_rps = 0;
  double speedup8 = 0;
  for (const ScalingResult& result : scaling) {
    if (result.shards == 1) {
      base_rps = result.ModelRps();
    }
    const double speedup = base_rps > 0 ? result.ModelRps() / base_rps : 0;
    if (result.shards == 8) {
      speedup8 = speedup;
    }
    if (!json_only) {
      std::printf("%-7d %-9lld %-13lld %-13.0f %-9.2f\n", result.shards,
                  static_cast<long long>(sizes.streams_per_shard *
                                         result.shards),
                  static_cast<long long>(result.requests), result.ModelRps(),
                  speedup);
    }
    json.BeginTier(result.shards);
    json.TierMetric("model_speedup_vs_1", speedup);
    json.Path("model",
              {{"requests", static_cast<double>(result.requests), 0},
               {"seconds", result.model_seconds, 6},
               {"requests_per_second", result.ModelRps(), 0}});
    json.EndTier();
  }

  const MigrationCost cost = MeasureMigrationCost(sizes);
  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "AddServerShard on a 4-shard cluster (%lld objects):\n"
        "  jump-hash delta: %lld objects moved (%.1f%%), %lld blocks,\n"
        "  drained in %lld rounds; naive mod-N rehash would move %lld\n"
        "  objects (%.1f%%) — %.1fx the interconnect traffic.\n",
        static_cast<long long>(sizes.catalog_objects),
        static_cast<long long>(cost.moved_objects),
        100.0 * cost.moved_fraction,
        static_cast<long long>(cost.moved_blocks),
        static_cast<long long>(cost.rounds_to_drain),
        static_cast<long long>(cost.naive_moved_objects),
        100.0 * cost.naive_fraction,
        cost.moved_objects > 0
            ? static_cast<double>(cost.naive_moved_objects) /
                  static_cast<double>(cost.moved_objects)
            : 0);
  }
  json.BeginTier(0);
  json.TierLabel("scenario", "migration_cost_add_shard");
  json.TierMetric("moved_objects", static_cast<double>(cost.moved_objects),
                  0);
  json.TierMetric("moved_fraction", cost.moved_fraction, 4);
  json.TierMetric("moved_blocks", static_cast<double>(cost.moved_blocks), 0);
  json.TierMetric("naive_moved_objects",
                  static_cast<double>(cost.naive_moved_objects), 0);
  json.TierMetric("naive_fraction", cost.naive_fraction, 4);
  json.TierMetric("rounds_to_drain",
                  static_cast<double>(cost.rounds_to_drain), 0);
  json.EndTier();

  const FireResult fire = RunScaleOutUnderFire(sizes);
  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Zipf flash crowd during AddServerShard (2 -> 3 shards):\n"
        "  requests=%lld served=%lld hiccup-rate=%.4f\n"
        "  cross-shard-blocks=%lld handoff-rejects=%lld idle-after=%lld"
        " rounds\n"
        "  startup latency p50/p99/p999 = %lld/%lld/%lld rounds\n",
        static_cast<long long>(fire.requests),
        static_cast<long long>(fire.served), fire.HiccupRate(),
        static_cast<long long>(fire.cross_shard_blocks),
        static_cast<long long>(fire.handoff_rejects),
        static_cast<long long>(fire.rounds_to_idle),
        static_cast<long long>(fire.startup_p50),
        static_cast<long long>(fire.startup_p99),
        static_cast<long long>(fire.startup_p999));
    bench::PrintRule();
    std::printf(
        "Expected shape: model throughput scales near-linearly with shards\n"
        "(the serial tail is a metric merge, not work proportional to\n"
        "catalog size); the add-shard delta stays near 1/(N+1) of objects\n"
        "while mod-N rehash strands ~N/(N+1); the flash crowd's hiccups\n"
        "stay bounded because the source shard keeps serving every stream\n"
        "until its object's copy commits.\n");
  }
  json.BeginTier(0);
  json.TierLabel("scenario", "zipf_flash_crowd_add_shard");
  json.TierMetric("hiccup_rate", fire.HiccupRate(), 4);
  json.TierMetric("requests", static_cast<double>(fire.requests), 0);
  json.TierMetric("served", static_cast<double>(fire.served), 0);
  json.TierMetric("cross_shard_blocks",
                  static_cast<double>(fire.cross_shard_blocks), 0);
  json.TierMetric("handoff_rejects",
                  static_cast<double>(fire.handoff_rejects), 0);
  json.TierMetric("rounds_to_idle",
                  static_cast<double>(fire.rounds_to_idle), 0);
  json.TierMetric("startup_p50", static_cast<double>(fire.startup_p50), 0);
  json.TierMetric("startup_p99", static_cast<double>(fire.startup_p99), 0);
  json.TierMetric("startup_p999", static_cast<double>(fire.startup_p999), 0);
  json.EndTier();

  if (!smoke) {
    SCADDAR_CHECK(json.WriteFile("BENCH_cluster.json"));
    if (!json_only) {
      std::printf("wrote BENCH_cluster.json\n");
    }
  }
  if (speedup8 < 3.0 && !smoke) {
    std::fprintf(stderr,
                 "WARNING: 8-shard model speedup %.2fx below the 3x target\n",
                 speedup8);
  }
  return 0;
}
