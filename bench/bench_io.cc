// EXP-IO (extension) — real-I/O backends: io_uring submission rings vs.
// the portable sync backend behind the StorageBackend seam.
//
// Two questions, one per tier block:
//  1. Raw backend throughput — blocks/second written and read back through
//     each file-backed backend at queue depths 1/8/32, same disk files,
//     same 4 KiB block images. The io_uring backend's claim is amortized
//     submission (one `io_uring_enter` per batch per disk, fixed buffers);
//     the sync backend pays a handoff per batch to per-disk workers. The
//     acceptance target: uring >= 2x sync at QD >= 8.
//  2. Served-round latency — a file-backed CmServer's per-round Tick cost
//     (p50/p99) and served-block throughput on each backend, quiet vs.
//     with a scale-up migration running. This is the number the serving
//     path actually feels: every delivered block becomes a real read, every
//     migration round a batched copy + flush.
//
// Usage: bench_io [--smoke] [--json-only] [--dir=<path>]
//   --smoke      tiny sizes, no BENCH_io.json (CI wiring check).
//   --json-only  suppress the console tables, still write the JSON.
//   --dir=<path> where the backing disk files live (default
//                ./bench_io_disks; put it on a real filesystem to measure
//                real media, tmpfs measures the software stack).
// The full run writes BENCH_io.json to the working directory.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "server/server.h"
#include "storage/block_io.h"
#include "storage/storage_backend.h"

namespace scaddar {
namespace {

constexpr int64_t kBlockBytes = 4096;

struct Sizes {
  int64_t raw_disks = 4;
  int64_t raw_blocks = 16'384;   // Total blocks per pass (64 MiB).
  int64_t raw_batch = 256;       // In-flight ops between drains.
  int64_t objects = 8;
  int64_t blocks_each = 2'000;
  int64_t streams = 64;
  int64_t rounds = 120;
  int64_t warmup_rounds = 16;
};

// --- Tier 1: raw backend throughput --------------------------------------

struct RawResult {
  double write_seconds = 0;
  double read_seconds = 0;
  int64_t blocks = 0;
  int64_t submit_batches = 0;

  double WriteBps() const {
    return write_seconds > 0
               ? static_cast<double>(blocks) / write_seconds
               : 0;
  }
  double ReadBps() const {
    return read_seconds > 0 ? static_cast<double>(blocks) / read_seconds : 0;
  }
};

/// Writes then reads back `sizes.raw_blocks` block images striped over
/// `sizes.raw_disks` disks, `sizes.raw_batch` ops in flight between
/// drains, timing each direction.
RawResult RunRawPass(StorageBackend& backend, const Sizes& sizes) {
  RawResult result;
  result.blocks = sizes.raw_blocks;
  for (int64_t disk = 0; disk < sizes.raw_disks; ++disk) {
    SCADDAR_CHECK(backend.OpenDisk(disk).ok());
  }
  const int64_t arena_blocks = sizes.raw_batch;
  std::byte* arena = static_cast<std::byte*>(std::aligned_alloc(
      4096, static_cast<size_t>(arena_blocks * kBlockBytes)));
  SCADDAR_CHECK(arena != nullptr);
  SCADDAR_CHECK(backend.RegisterBufferArena(arena, arena_blocks).ok());
  for (int64_t i = 0; i < arena_blocks; ++i) {
    BlockIoEngine::FillImage(BlockRef{1, i}, /*seed=*/0xb10c,
                             arena + i * kBlockBytes, kBlockBytes);
  }

  std::vector<IoCompletion> done;
  const auto run_pass = [&](bool write) {
    return bench::TimeSeconds([&] {
      int64_t issued = 0;
      while (issued < sizes.raw_blocks) {
        const int64_t batch =
            std::min(arena_blocks, sizes.raw_blocks - issued);
        for (int64_t i = 0; i < batch; ++i) {
          const int64_t op = issued + i;
          const PhysicalDiskId disk = op % sizes.raw_disks;
          const int64_t slot = op / sizes.raw_disks;
          std::byte* buf = arena + i * kBlockBytes;
          if (write) {
            SCADDAR_CHECK(backend.EnqueueWrite(disk, slot, buf).ok());
          } else {
            SCADDAR_CHECK(backend.EnqueueRead(disk, slot, buf).ok());
          }
        }
        done.clear();
        SCADDAR_CHECK(backend.DrainCompletions(done).ok());
        SCADDAR_CHECK(static_cast<int64_t>(done.size()) == batch);
        issued += batch;
      }
      if (write) {
        for (int64_t disk = 0; disk < sizes.raw_disks; ++disk) {
          SCADDAR_CHECK(backend.Flush(disk).ok());
        }
      }
    });
  };
  result.write_seconds = run_pass(/*write=*/true);
  result.read_seconds = run_pass(/*write=*/false);
  result.submit_batches = backend.stats().submit_batches;
  for (int64_t disk = 0; disk < sizes.raw_disks; ++disk) {
    SCADDAR_CHECK(backend.CloseDisk(disk).ok());
  }
  std::free(arena);
  return result;
}

// --- Tier 2: served-round latency ----------------------------------------

struct ServingResult {
  bench::RoundTiming quiet;
  bench::RoundTiming migrating;
  int64_t quiet_served = 0;
  int64_t migrating_served = 0;

  static double Bps(const bench::RoundTiming& timing, int64_t served) {
    return timing.total_seconds > 0
               ? static_cast<double>(served) / timing.total_seconds
               : 0;
  }
};

/// One file-backed server: steady-state rounds timed, then the same
/// streams timed again with a 2-disk scale-up migration in flight.
ServingResult RunServing(const std::string& spec, const Sizes& sizes) {
  ServerConfig config;
  config.initial_disks = 8;
  config.disk_spec = {.capacity_blocks = 10'000'000,
                      .bandwidth_blocks_per_round = 32};
  config.master_seed = 4242;
  config.storage_backend = spec;
  config.io_queue_depth = 32;
  auto server_or = CmServer::Create(config);
  SCADDAR_CHECK(server_or.ok());
  CmServer& server = **server_or;
  for (int64_t id = 1; id <= sizes.objects; ++id) {
    SCADDAR_CHECK(server.AddObject(id, sizes.blocks_each).ok());
  }
  for (int64_t s = 0; s < sizes.streams; ++s) {
    // Streams finish and restart across the measurement; reattach lazily.
    if (!server.StartStream(1 + s % sizes.objects).ok()) {
      break;
    }
  }
  ServingResult result;
  int64_t served_before = server.total_served();
  const auto tick_round = [&] {
    if (server.active_streams() < sizes.streams) {
      (void)server.StartStream(1 + server.total_served() % sizes.objects);
    }
    server.Tick();
    return 0;
  };
  result.quiet = bench::MeasureRounds(sizes.warmup_rounds, sizes.rounds,
                                      tick_round, [](int) {});
  result.quiet_served = server.total_served() - served_before;

  SCADDAR_CHECK(server.ScaleAdd(2).ok());
  served_before = server.total_served();
  result.migrating = bench::MeasureRounds(/*warmup_rounds=*/0, sizes.rounds,
                                          tick_round, [](int) {});
  result.migrating_served = server.total_served() - served_before;
  return result;
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  using namespace scaddar;
  bool smoke = false;
  bool json_only = false;
  std::string dir = "bench_io_disks";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    }
  }
  Sizes sizes;
  if (smoke) {
    sizes = Sizes{.raw_disks = 2,
                  .raw_blocks = 256,
                  .raw_batch = 64,
                  .objects = 3,
                  .blocks_each = 200,
                  .streams = 8,
                  .rounds = 12,
                  .warmup_rounds = 3};
  }
  MakeDirectories(dir);
  const bool uring = UringAvailable();

  if (!json_only) {
    bench::PrintHeader("EXP-IO",
                       "real-I/O backends: io_uring vs. sync file, per-disk "
                       "queue depth");
    if (!uring) {
      std::printf("note: io_uring unavailable on this kernel/sandbox; the\n"
                  "      uring path is skipped and only sync is measured.\n");
    }
    std::printf("%-8s %-4s %-14s %-14s %-9s\n", "backend", "qd", "write-bl/s",
                "read-bl/s", "batches");
  }
  bench::BenchJson json("bench_io");

  const std::vector<int> depths = {1, 8, 32};
  double sync_read_qd8 = 0;
  double uring_read_qd8 = 0;
  for (const int qd : depths) {
    json.BeginTier(sizes.raw_blocks);
    char scenario[32];
    std::snprintf(scenario, sizeof(scenario), "raw_qd%d", qd);
    json.TierLabel("scenario", scenario);
    json.TierMetric("queue_depth", qd, 0);
    for (const char* kind : {"sync", "uring"}) {
      const bool is_uring = std::strcmp(kind, "uring") == 0;
      if (is_uring && !uring) {
        continue;
      }
      BackendOptions options;
      options.block_bytes = kBlockBytes;
      options.queue_depth = qd;
      const std::string spec = std::string(is_uring ? "uring:" : "file:") +
                               dir + "/raw_" + kind;
      auto backend = MakeStorageBackend(spec, options);
      SCADDAR_CHECK(backend.ok());
      const RawResult result = RunRawPass(**backend, sizes);
      if (!json_only) {
        std::printf("%-8s %-4d %-14.0f %-14.0f %-9lld\n", kind, qd,
                    result.WriteBps(), result.ReadBps(),
                    static_cast<long long>(result.submit_batches));
      }
      if (qd == 8) {
        (is_uring ? uring_read_qd8 : sync_read_qd8) = result.ReadBps();
      }
      json.Path(kind,
                {{"write_blocks_per_second", result.WriteBps(), 0},
                 {"read_blocks_per_second", result.ReadBps(), 0},
                 {"submit_batches",
                  static_cast<double>(result.submit_batches), 0}});
    }
    json.EndTier();
  }

  if (!json_only) {
    bench::PrintRule();
    std::printf("%-8s %-11s %-11s %-11s %-13s\n", "backend", "phase",
                "p50-us", "p99-us", "served-bl/s");
  }
  for (const char* kind : {"sync", "uring"}) {
    const bool is_uring = std::strcmp(kind, "uring") == 0;
    if (is_uring && !uring) {
      continue;
    }
    const std::string spec = std::string(is_uring ? "uring:" : "file:") +
                             dir + "/serving_" + kind;
    const ServingResult result = RunServing(spec, sizes);
    const double quiet_bps =
        ServingResult::Bps(result.quiet, result.quiet_served);
    const double migrating_bps =
        ServingResult::Bps(result.migrating, result.migrating_served);
    if (!json_only) {
      std::printf("%-8s %-11s %-11.1f %-11.1f %-13.0f\n", kind, "quiet",
                  result.quiet.p50_us, result.quiet.p99_us, quiet_bps);
      std::printf("%-8s %-11s %-11.1f %-11.1f %-13.0f\n", kind, "migrating",
                  result.migrating.p50_us, result.migrating.p99_us,
                  migrating_bps);
    }
    json.BeginTier(sizes.rounds);
    json.TierLabel("scenario", "served_rounds");
    json.Path(kind, {{"quiet_p50_us", result.quiet.p50_us, 1},
                     {"quiet_p99_us", result.quiet.p99_us, 1},
                     {"quiet_served_blocks_per_second", quiet_bps, 0},
                     {"migrating_p50_us", result.migrating.p50_us, 1},
                     {"migrating_p99_us", result.migrating.p99_us, 1},
                     {"migrating_served_blocks_per_second", migrating_bps,
                      0}});
    json.EndTier();
  }

  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Expected shape: at QD >= 8 the uring backend amortizes one\n"
        "submission per batch per disk against the sync backend's worker\n"
        "handoffs — the target is >= 2x read throughput. Served-round p99\n"
        "stays flat under migration because a round's reads and a round's\n"
        "staged copies each go down as one batch per disk.\n");
  }
  if (!smoke) {
    SCADDAR_CHECK(json.WriteFile("BENCH_io.json"));
    if (!json_only) {
      std::printf("wrote BENCH_io.json\n");
    }
    if (uring && sync_read_qd8 > 0 &&
        uring_read_qd8 < 2.0 * sync_read_qd8) {
      std::fprintf(stderr,
                   "WARNING: uring read throughput %.0f bl/s below the 2x "
                   "sync target (%.0f bl/s) at QD 8\n",
                   uring_read_qd8, sync_read_qd8);
    }
  }
  return 0;
}
