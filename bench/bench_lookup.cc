// EXP-E — AO1: the cost of the access function AF(). Google-benchmark
// timings of a single block lookup as the op log grows, against the
// directory baseline's O(1) hash lookup and the comparators. The paper's
// claim: AF() is "a series of inexpensive mod and div functions" — tens of
// nanoseconds even after many operations, no directory required.
//
// Also two ablations:
//  - CompiledLog vs. Mapper: the precompiled renumbering tables vs. the
//    binary-search replay;
//  - concurrency (Appendix A's argument): SCADDAR's AF() is stateless and
//    scales linearly with reader threads, while a centralized directory
//    serializes behind a mutex.

// Usage: bench_lookup [--json-only] [google-benchmark flags]
// After the google-benchmark suite, the binary measures the 4096-block
// batch lookup with the SIMD backend pinned on vs. off (plus the per-call
// loop) and writes BENCH_lookup.json (schema shared with
// BENCH_serving.json; see bench_util.h). --json-only skips the suite.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <mutex>
#include <span>

#include "bench/bench_util.h"
#include "core/compiled_log.h"
#include "core/mapper.h"
#include "placement/registry.h"
#include "random/sequence.h"
#include "util/simd.h"

namespace scaddar {
namespace {

OpLog LogWithOps(int64_t n0, int64_t ops) {
  OpLog log = OpLog::Create(n0).value();
  for (int64_t j = 0; j < ops; ++j) {
    // Mixed churn: two adds, then a removal.
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  return log;
}

void BM_ScaddarAF(benchmark::State& state) {
  const OpLog log = LogWithOps(8, state.range(0));
  const Mapper mapper(&log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.LocatePhysical(x0[i++ & 4095]));
  }
  state.SetLabel("ops=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ScaddarAF)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32)->Arg(64);

void BM_PolicyLocate(benchmark::State& state, const char* name) {
  auto policy = MakePolicy(name, 8).value();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value();
  SCADDAR_CHECK(policy->AddObject(1, seq.Materialize(4096)).ok());
  for (int64_t j = 0; j < 8; ++j) {
    SCADDAR_CHECK(policy->ApplyOp(ScalingOp::Add(1).value()).ok());
  }
  BlockIndex i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->Locate(1, i++ & 4095));
  }
}
BENCHMARK_CAPTURE(BM_PolicyLocate, scaddar, "scaddar");
BENCHMARK_CAPTURE(BM_PolicyLocate, naive, "naive");
BENCHMARK_CAPTURE(BM_PolicyLocate, mod, "mod");
BENCHMARK_CAPTURE(BM_PolicyLocate, directory, "directory");
BENCHMARK_CAPTURE(BM_PolicyLocate, roundrobin, "roundrobin");
BENCHMARK_CAPTURE(BM_PolicyLocate, jump, "jump");
BENCHMARK_CAPTURE(BM_PolicyLocate, chash, "chash");

void BM_CompiledAF(benchmark::State& state) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < state.range(0); ++j) {
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 5, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.LocatePhysical(x0[i++ & 4095]));
  }
  state.SetLabel("ops=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompiledAF)->Arg(0)->Arg(8)->Arg(32)->Arg(64);

// Step-major batch lookup over a 4096-block span: same answers as
// BM_CompiledAF but the outer loop walks compiled steps, so per-step
// parameters stay in registers across the span. Throughput is reported in
// blocks/sec (items_per_second); compare against BM_ScaddarAF /
// BM_CompiledAF at the same ops count for the batch speedup.
void BM_CompiledAFBatch(benchmark::State& state) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < state.range(0); ++j) {
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 5, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  std::vector<PhysicalDiskId> out(x0.size());
  for (auto _ : state) {
    compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                 std::span<PhysicalDiskId>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(x0.size()));
  state.SetLabel("ops=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompiledAFBatch)->Arg(0)->Arg(8)->Arg(32)->Arg(64);

// --- Concurrency ablation (Appendix A's directory-bottleneck claim). ---

// A centralized directory as a real server would run it: every lookup
// takes the directory lock, because concurrent scaling operations mutate
// the same table.
class LockedDirectory {
 public:
  explicit LockedDirectory(std::vector<PhysicalDiskId> entries)
      : entries_(std::move(entries)) {}

  PhysicalDiskId Locate(size_t block) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_[block];
  }

 private:
  mutable std::mutex mu_;
  std::vector<PhysicalDiskId> entries_;
};

void BM_ConcurrentScaddarAF(benchmark::State& state) {
  static const OpLog* log = [] {
    auto* created = new OpLog(OpLog::Create(8).value());
    for (int j = 0; j < 8; ++j) {
      SCADDAR_CHECK(created->Append(ScalingOp::Add(1).value()).ok());
    }
    return created;
  }();
  static const CompiledLog* compiled = new CompiledLog(*log);
  auto seq = X0Sequence::Create(
                 PrngKind::kSplitMix64,
                 static_cast<uint64_t>(state.thread_index()) + 1, 64)
                 .value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->LocatePhysical(x0[i++ & 4095]));
  }
}
BENCHMARK(BM_ConcurrentScaddarAF)->Threads(1)->Threads(4)->Threads(8);

void BM_ConcurrentLockedDirectory(benchmark::State& state) {
  static const LockedDirectory* directory = [] {
    auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 9, 64).value();
    std::vector<PhysicalDiskId> entries;
    for (const uint64_t x : seq.Materialize(4096)) {
      entries.push_back(static_cast<PhysicalDiskId>(x % 16));
    }
    return new LockedDirectory(std::move(entries));
  }();
  size_t i = static_cast<size_t>(state.thread_index()) * 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory->Locate(i++ & 4095));
  }
}
BENCHMARK(BM_ConcurrentLockedDirectory)->Threads(1)->Threads(4)->Threads(8);

// --- BENCH_lookup.json: SIMD vs. scalar vs. per-call AF() lookups. ---

struct LookupResult {
  int64_t blocks = 0;
  double seconds = 0;

  double BlocksPerSecond() const {
    return seconds > 0 ? static_cast<double>(blocks) / seconds : 0;
  }
};

/// Best-of-5 of `passes` runs of `work()` over a span of `span_blocks`
/// blocks (one warmup pass first).
template <typename WorkFn>
LookupResult MeasureLookup(int64_t span_blocks, int64_t passes,
                           WorkFn&& work) {
  const auto one_rep = [&] {
    LookupResult result;
    result.blocks = span_blocks * passes;
    result.seconds = bench::TimeSeconds([&] {
      for (int64_t p = 0; p < passes; ++p) {
        work();
      }
    });
    return result;
  };
  work();
  return bench::BestOf(5, one_rep,
                       [](const LookupResult& r) { return r.seconds; });
}

void WriteLookupJson() {
  const SimdLevel simd_level = DetectedSimdLevel();
  const std::string level_name(SimdLevelName(simd_level));
  constexpr int64_t kSpan = 4096;
  constexpr int64_t kPasses = 256;
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 5, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(kSpan);
  std::vector<PhysicalDiskId> out(x0.size());
  bench::PrintRule();
  std::printf("%lld-block span lookups: batch (%s/scalar) vs. per-call\n",
              static_cast<long long>(kSpan), level_name.c_str());
  std::printf("%-6s %-10s %-16s %-10s\n", "ops", "path", "blocks/s",
              "speedup");
  bench::BenchJson json("bench_lookup");
  for (const int64_t ops : {0, 8, 32, 64}) {
    const OpLog log = LogWithOps(8, ops);
    const CompiledLog compiled(log);
    const auto batch_pass = [&] {
      compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                   std::span<PhysicalDiskId>(out));
      benchmark::DoNotOptimize(out.data());
    };
    SetActiveSimdLevel(simd_level);
    const LookupResult simd = MeasureLookup(kSpan, kPasses, batch_pass);
    SetActiveSimdLevel(SimdLevel::kScalar);
    const LookupResult scalar = MeasureLookup(kSpan, kPasses, batch_pass);
    ResetActiveSimdLevel();
    const LookupResult per_call = MeasureLookup(kSpan, kPasses, [&] {
      for (size_t i = 0; i < x0.size(); ++i) {
        out[i] = compiled.LocatePhysical(x0[i]);
      }
      benchmark::DoNotOptimize(out.data());
    });
    const double speedup =
        simd.seconds > 0 ? scalar.seconds / simd.seconds : 0;
    std::printf("%-6lld %-10s %-16.0f %-10s\n",
                static_cast<long long>(ops), level_name.c_str(),
                simd.BlocksPerSecond(), "");
    std::printf("%-6lld %-10s %-16.0f %-10.2f\n",
                static_cast<long long>(ops), "scalar",
                scalar.BlocksPerSecond(), speedup);
    std::printf("%-6lld %-10s %-16.0f %-10s\n",
                static_cast<long long>(ops), "per-call",
                per_call.BlocksPerSecond(), "");
    json.BeginTier(ops);
    json.TierLabel("simd_level", SimdLevelName(simd_level));
    json.TierMetric("speedup_simd_vs_scalar", speedup);
    const auto path = [&](const char* name, const LookupResult& result) {
      json.Path(name,
                {{"blocks", static_cast<double>(result.blocks), 0},
                 {"seconds", result.seconds, 6},
                 {"blocks_per_second", result.BlocksPerSecond(), 0}});
    };
    path("simd", simd);
    path("scalar", scalar);
    path("per_call", per_call);
    json.EndTier();
  }
  SCADDAR_CHECK(json.WriteFile("BENCH_lookup.json"));
  std::printf("wrote BENCH_lookup.json\n");
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool json_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (!json_only) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  scaddar::WriteLookupJson();
  return 0;
}
