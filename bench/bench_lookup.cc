// EXP-E — AO1: the cost of the access function AF(). Google-benchmark
// timings of a single block lookup as the op log grows, against the
// directory baseline's O(1) hash lookup and the comparators. The paper's
// claim: AF() is "a series of inexpensive mod and div functions" — tens of
// nanoseconds even after many operations, no directory required.
//
// Also two ablations:
//  - CompiledLog vs. Mapper: the precompiled renumbering tables vs. the
//    binary-search replay;
//  - concurrency (Appendix A's argument): SCADDAR's AF() is stateless and
//    scales linearly with reader threads, while a centralized directory
//    serializes behind a mutex.

#include <benchmark/benchmark.h>

#include <mutex>
#include <span>

#include "core/compiled_log.h"
#include "core/mapper.h"
#include "placement/registry.h"
#include "random/sequence.h"

namespace scaddar {
namespace {

OpLog LogWithOps(int64_t n0, int64_t ops) {
  OpLog log = OpLog::Create(n0).value();
  for (int64_t j = 0; j < ops; ++j) {
    // Mixed churn: two adds, then a removal.
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  return log;
}

void BM_ScaddarAF(benchmark::State& state) {
  const OpLog log = LogWithOps(8, state.range(0));
  const Mapper mapper(&log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.LocatePhysical(x0[i++ & 4095]));
  }
  state.SetLabel("ops=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ScaddarAF)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32)->Arg(64);

void BM_PolicyLocate(benchmark::State& state, const char* name) {
  auto policy = MakePolicy(name, 8).value();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value();
  SCADDAR_CHECK(policy->AddObject(1, seq.Materialize(4096)).ok());
  for (int64_t j = 0; j < 8; ++j) {
    SCADDAR_CHECK(policy->ApplyOp(ScalingOp::Add(1).value()).ok());
  }
  BlockIndex i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->Locate(1, i++ & 4095));
  }
}
BENCHMARK_CAPTURE(BM_PolicyLocate, scaddar, "scaddar");
BENCHMARK_CAPTURE(BM_PolicyLocate, naive, "naive");
BENCHMARK_CAPTURE(BM_PolicyLocate, mod, "mod");
BENCHMARK_CAPTURE(BM_PolicyLocate, directory, "directory");
BENCHMARK_CAPTURE(BM_PolicyLocate, roundrobin, "roundrobin");
BENCHMARK_CAPTURE(BM_PolicyLocate, jump, "jump");
BENCHMARK_CAPTURE(BM_PolicyLocate, chash, "chash");

void BM_CompiledAF(benchmark::State& state) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < state.range(0); ++j) {
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 5, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.LocatePhysical(x0[i++ & 4095]));
  }
  state.SetLabel("ops=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompiledAF)->Arg(0)->Arg(8)->Arg(32)->Arg(64);

// Step-major batch lookup over a 4096-block span: same answers as
// BM_CompiledAF but the outer loop walks compiled steps, so per-step
// parameters stay in registers across the span. Throughput is reported in
// blocks/sec (items_per_second); compare against BM_ScaddarAF /
// BM_CompiledAF at the same ops count for the batch speedup.
void BM_CompiledAFBatch(benchmark::State& state) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < state.range(0); ++j) {
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  const CompiledLog compiled(log);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 5, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  std::vector<PhysicalDiskId> out(x0.size());
  for (auto _ : state) {
    compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                 std::span<PhysicalDiskId>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(x0.size()));
  state.SetLabel("ops=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompiledAFBatch)->Arg(0)->Arg(8)->Arg(32)->Arg(64);

// --- Concurrency ablation (Appendix A's directory-bottleneck claim). ---

// A centralized directory as a real server would run it: every lookup
// takes the directory lock, because concurrent scaling operations mutate
// the same table.
class LockedDirectory {
 public:
  explicit LockedDirectory(std::vector<PhysicalDiskId> entries)
      : entries_(std::move(entries)) {}

  PhysicalDiskId Locate(size_t block) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_[block];
  }

 private:
  mutable std::mutex mu_;
  std::vector<PhysicalDiskId> entries_;
};

void BM_ConcurrentScaddarAF(benchmark::State& state) {
  static const OpLog* log = [] {
    auto* created = new OpLog(OpLog::Create(8).value());
    for (int j = 0; j < 8; ++j) {
      SCADDAR_CHECK(created->Append(ScalingOp::Add(1).value()).ok());
    }
    return created;
  }();
  static const CompiledLog* compiled = new CompiledLog(*log);
  auto seq = X0Sequence::Create(
                 PrngKind::kSplitMix64,
                 static_cast<uint64_t>(state.thread_index()) + 1, 64)
                 .value();
  const std::vector<uint64_t> x0 = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->LocatePhysical(x0[i++ & 4095]));
  }
}
BENCHMARK(BM_ConcurrentScaddarAF)->Threads(1)->Threads(4)->Threads(8);

void BM_ConcurrentLockedDirectory(benchmark::State& state) {
  static const LockedDirectory* directory = [] {
    auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 9, 64).value();
    std::vector<PhysicalDiskId> entries;
    for (const uint64_t x : seq.Materialize(4096)) {
      entries.push_back(static_cast<PhysicalDiskId>(x % 16));
    }
    return new LockedDirectory(std::move(entries));
  }();
  size_t i = static_cast<size_t>(state.thread_index()) * 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory->Locate(i++ & 4095));
  }
}
BENCHMARK(BM_ConcurrentLockedDirectory)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace scaddar

BENCHMARK_MAIN();
