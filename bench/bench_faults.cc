// EXP-I (extension) — Section 6 fault tolerance: mirroring at offset
// f(Nj) = Nj/2 and single-parity groups. Reports storage overhead, load
// balance of the replicated layout, post-failure read amplification and
// unrecoverable fractions.

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "faults/mirror.h"
#include "faults/parity.h"
#include "faults/recovery.h"
#include "faults/replication.h"
#include "random/distributions.h"
#include "stats/load_metrics.h"

namespace scaddar {
namespace {

constexpr int64_t kBlocks = 60000;
constexpr int64_t kDisks = 10;

void MirrorPanel(const ScaddarPolicy& policy) {
  const MirroredPlacement mirror(&policy);
  std::printf("\n--- mirroring, f(N) = N/2 (Section 6) ---\n");
  const std::vector<int64_t> counts = mirror.PerDiskCountsWithMirrors();
  const LoadMetrics metrics = ComputeLoadMetrics(counts);
  std::printf("storage overhead: 2.00x   replicated-load CoV: %.5f\n",
              metrics.coefficient_of_variation);
  // Fail each disk in turn; all blocks must stay readable and the read
  // load of the failed disk must fold onto its mirror partner only.
  int64_t unreadable = 0;
  for (PhysicalDiskId failed = 0; failed < kDisks; ++failed) {
    const std::unordered_set<PhysicalDiskId> failures = {failed};
    for (BlockIndex i = 0; i < kBlocks; ++i) {
      if (!mirror.LocateForRead(1, i, failures).ok()) {
        ++unreadable;
      }
    }
  }
  std::printf("single-disk failures: %lld/%lld unreadable blocks "
              "(expect 0)\n",
              static_cast<long long>(unreadable),
              static_cast<long long>(kDisks * kBlocks));
}

void ParityPanel(const ScaddarPolicy& policy) {
  std::printf("\n--- single-parity groups (Section 6, \"less required "
              "storage\") ---\n");
  std::printf("%-8s %-10s %-14s %-14s %-16s\n", "group", "overhead",
              "recoverable", "avg-reads", "reads-healthy");
  for (const int64_t group_size : {2, 4, 8}) {
    const ParityScheme parity(&policy, group_size);
    int64_t recoverable = 0;
    int64_t reconstruction_reads = 0;
    for (BlockIndex i = 0; i < kBlocks; ++i) {
      const PhysicalDiskId failed = policy.Locate(1, i);
      if (parity.IsRecoverable(1, i, failed)) {
        ++recoverable;
        reconstruction_reads += *parity.ReadsToServe(1, i, failed);
      }
    }
    std::printf("%-8lld %-10.3f %-14.4f %-14.2f %-16d\n",
                static_cast<long long>(group_size),
                parity.StorageOverhead(),
                static_cast<double>(recoverable) /
                    static_cast<double>(kBlocks),
                recoverable == 0
                    ? 0.0
                    : static_cast<double>(reconstruction_reads) /
                          static_cast<double>(recoverable),
                1);
  }
}

void ReplicationPanel(const ScaddarPolicy& policy) {
  std::printf("\n--- R-way replication (offset family, extension) ---\n");
  std::printf("%-4s %-10s %-10s %-14s %-20s\n", "R", "storage",
              "load-CoV", "tolerates", "lost@2 failures");
  auto prng = MakePrng(PrngKind::kSplitMix64, 0x2fa11ull);
  for (const int64_t replicas : {2, 3, 4}) {
    const ReplicatedPlacement placement(&policy, replicas);
    const LoadMetrics metrics =
        ComputeLoadMetrics(placement.PerDiskCountsWithReplicas());
    // Random double failures: fraction of blocks with no healthy replica.
    int64_t lost = 0;
    int64_t tested = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const std::vector<int64_t> failed_slots =
          SampleWithoutReplacement(*prng, kDisks, 2);
      const std::unordered_set<PhysicalDiskId> failed(failed_slots.begin(),
                                                      failed_slots.end());
      for (BlockIndex i = 0; i < kBlocks; i += 10) {
        ++tested;
        lost += placement.LocateForRead(1, i, failed).ok() ? 0 : 1;
      }
    }
    std::printf("%-4lld %-10.2f %-10.5f %-14lld %-20.5f\n",
                static_cast<long long>(replicas),
                static_cast<double>(replicas), metrics.coefficient_of_variation,
                static_cast<long long>(placement.MaxFailuresTolerated()),
                static_cast<double>(lost) / static_cast<double>(tested));
  }
}

void RecoveryPanel() {
  std::printf("\n--- mirror recovery after an unplanned single failure ---\n");
  ScaddarPolicy policy(kDisks);
  const auto objects =
      bench::MakeObjects(0xfbu, 1, kBlocks, PrngKind::kSplitMix64, 64);
  SCADDAR_CHECK(policy.AddObject(1, objects[0]).ok());
  // The failure is modelled as a SCADDAR removal of the failed slot.
  SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Remove({4}).value()).ok());
  const RecoveryPlan plan = PlanMirrorRecovery(policy).value();
  std::printf("blocks: %lld, copies on failed disk: %lld primaries + %lld "
              "mirrors\n",
              static_cast<long long>(plan.blocks_considered),
              static_cast<long long>(plan.lost_primaries),
              static_cast<long long>(plan.lost_mirrors));
  std::printf("recovery actions: %lld transfers (%.2f per lost copy), of "
              "which %lld are offset-induced relocations of surviving "
              "copies\n",
              static_cast<long long>(plan.num_actions()),
              static_cast<double>(plan.num_actions()) /
                  static_cast<double>(plan.lost_primaries +
                                      plan.lost_mirrors),
              static_cast<long long>(plan.relocations));
  std::printf(
      "note: fixed-offset mirroring (f(N)=N/2) re-aims MIRROR copies when\n"
      "N changes, so recovery traffic exceeds the lost-copy minimum — the\n"
      "price of directory-free mirrors, quantified here.\n");
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-I", "fault tolerance: mirroring vs. parity (Section 6)");
  scaddar::ScaddarPolicy policy(scaddar::kDisks);
  const auto objects = scaddar::bench::MakeObjects(
      0xfau, 1, scaddar::kBlocks, scaddar::PrngKind::kSplitMix64, 64);
  SCADDAR_CHECK(policy.AddObject(1, objects[0]).ok());
  scaddar::MirrorPanel(policy);
  scaddar::ParityPanel(policy);
  scaddar::ReplicationPanel(policy);
  scaddar::RecoveryPanel();
  scaddar::bench::PrintRule();
  std::printf(
      "Expected shape: mirroring keeps every block readable through any\n"
      "single failure at 2x storage; parity cuts overhead to 1/g at the\n"
      "price of g reads per reconstruction and a small unrecoverable\n"
      "fraction when two group members collide on one disk (shrinks as\n"
      "disks >> group size).\n");
  return 0;
}
