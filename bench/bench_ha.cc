// EXP-I2 (extension) — the HA server end to end: repair time after an
// unplanned failure as a function of disk bandwidth and replica count, and
// the data-loss table for overlapping failures. Section 6's "data
// mirroring may be a simple solution with SCADDAR", operationalized.

#include <cstdio>
#include <cmath>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "server/ha_server.h"

namespace scaddar {
namespace {

constexpr int64_t kBlocks = 20000;

std::unique_ptr<HaCmServer> Build(int64_t disks, int64_t replicas,
                                  int64_t bandwidth) {
  HaServerConfig config;
  config.base.initial_disks = disks;
  config.base.disk_spec = {.capacity_blocks = 500'000,
                           .bandwidth_blocks_per_round = bandwidth};
  config.base.master_seed = 0xdeadull;
  config.replicas = replicas;
  auto server = std::move(HaCmServer::Create(config)).value();
  SCADDAR_CHECK(server->AddObject(1, kBlocks).ok());
  return server;
}

void RepairTimePanel() {
  std::printf("\n--- repair time after one failure (10 disks, %lld blocks, "
              "20 streams) ---\n",
              static_cast<long long>(kBlocks));
  std::printf("%-4s %-12s %-14s %-14s %-12s %-10s\n", "R", "disk-bw",
              "repair-rounds", "copies-moved", "degraded", "hiccups");
  for (const int64_t replicas : {2, 3}) {
    for (const int64_t bandwidth : {8, 16, 32}) {
      auto server = Build(10, replicas, bandwidth);
      for (int s = 0; s < 20; ++s) {
        (void)server->StartStream(1);
      }
      for (int round = 0; round < 10; ++round) {
        server->Tick();
      }
      SCADDAR_CHECK(server->FailDisk(3).ok());
      int64_t rounds = 0;
      int64_t degraded = 0;
      int64_t hiccups = 0;
      while (!server->repairs_idle() && rounds < 100000) {
        const HaRoundMetrics metrics = server->Tick();
        degraded += metrics.served_degraded;
        hiccups += metrics.hiccups;
        ++rounds;
      }
      std::printf("%-4lld %-12lld %-14lld %-14lld %-12lld %-10lld\n",
                  static_cast<long long>(replicas),
                  static_cast<long long>(bandwidth),
                  static_cast<long long>(rounds),
                  static_cast<long long>(server->total_repaired()),
                  static_cast<long long>(degraded),
                  static_cast<long long>(hiccups));
    }
  }
}

void DataLossPanel() {
  // Replica offsets at N=10: R=2 -> {0, 5}; R=3 -> {0, 3, 6}. Failing a
  // full offset coset before any repair is the adversarial case; failing
  // the same number of unrelated disks loses nothing.
  struct Case {
    int64_t replicas;
    std::vector<PhysicalDiskId> failed;
    const char* label;
  };
  const std::vector<Case> cases = {
      {2, {0}, "single disk"},
      {2, {0, 1}, "two unrelated disks"},
      {2, {0, 5}, "a mirror PAIR (0, 0+N/2)"},
      {3, {0, 3}, "two of a triple"},
      {3, {0, 1, 2}, "three unrelated disks"},
      {3, {0, 3, 6}, "a full replica TRIPLE"},
  };
  std::printf("\n--- overlapping failures before any repair (10 disks) ---\n");
  std::printf("%-4s %-28s %-18s\n", "R", "failure set", "unreadable blocks");
  for (const Case& c : cases) {
    auto server = Build(10, c.replicas, 16);
    for (const PhysicalDiskId disk : c.failed) {
      SCADDAR_CHECK(server->FailDisk(disk).ok());
    }
    std::printf("%-4lld %-28s %-18lld\n",
                static_cast<long long>(c.replicas), c.label,
                static_cast<long long>(server->UnreadableBlocks()));
  }
}

// Popularity-aware partial replication: with Zipf popularity, replicating
// only the hottest objects buys most of the availability at a fraction of
// the storage — mirror budget goes where the requests are.
void PartialReplicationPanel() {
  constexpr int64_t kObjects = 10;
  constexpr int64_t kBlocksPerObject = 2000;
  constexpr double kTheta = 0.729;  // Classic VoD skew.
  // Zipf request share of rank i.
  double harmonic = 0.0;
  std::vector<double> share(static_cast<size_t>(kObjects));
  for (int64_t i = 0; i < kObjects; ++i) {
    share[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), kTheta);
    harmonic += share[static_cast<size_t>(i)];
  }
  for (double& s : share) {
    s /= harmonic;
  }
  std::printf("\n--- popularity-aware partial replication "
              "(10 objects, Zipf %.3f, 10 disks) ---\n",
              kTheta);
  std::printf("%-14s %-10s %-22s %-22s\n", "replicated", "storage",
              "blocks-at-risk", "requests-at-risk");
  for (const int64_t hot : {0, 2, 5, 10}) {
    HaServerConfig config;
    config.base.initial_disks = 10;
    config.base.master_seed = 0x909ull;
    config.replicas = 2;
    auto server = std::move(HaCmServer::Create(config)).value();
    for (ObjectId id = 0; id < kObjects; ++id) {
      SCADDAR_CHECK(server
                        ->AddObject(id, kBlocksPerObject, 1,
                                    id < hot ? 2 : 1)
                        .ok());
    }
    SCADDAR_CHECK(server->FailDisk(4).ok());
    const int64_t lost = server->UnreadableBlocks();
    // Requests-at-risk: weight each object's lost fraction by popularity.
    double requests_at_risk = 0.0;
    for (ObjectId id = 0; id < kObjects; ++id) {
      if (id >= hot) {
        // Unreplicated object: ~1/10 of its blocks were on the dead disk.
        requests_at_risk += share[static_cast<size_t>(id)] * 0.1;
      }
    }
    const double storage =
        1.0 + static_cast<double>(hot) / static_cast<double>(kObjects);
    std::printf("top %-10lld %-10.2f %-22lld %-22.4f\n",
                static_cast<long long>(hot), storage,
                static_cast<long long>(lost), requests_at_risk);
  }
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-I2", "HA server: online repair and data-loss envelope");
  scaddar::RepairTimePanel();
  scaddar::DataLossPanel();
  scaddar::PartialReplicationPanel();
  scaddar::bench::PrintRule();
  std::printf(
      "Expected shape: repair rounds scale ~1/bandwidth; R=3 repairs move\n"
      "~1.7x the copies of R=2 (more offsets re-aim). Degraded serves and\n"
      "hiccups appear only when bandwidth is tight: the failed disk's\n"
      "read share folds onto its offset partners until repair completes.\n"
      "Without repair, data is lost only when a FULL replica coset fails\n"
      "(the mirror pair / triple rows); the same number of unrelated\n"
      "failures loses nothing.\n");
  return 0;
}
