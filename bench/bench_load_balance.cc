// EXP-A — Section 5's experiment: coefficient of variation of blocks per
// disk after successive scaling operations. Paper setting: 20 objects,
// b = 32, eps = 5%, average ~8 disks, 8 scaling operations; SCADDAR's CoV
// grows slightly with each operation (shrinking random range) while the
// complete-redistribution baseline stays flat; the naive scheme degrades
// fastest. The op at which Lemma 4.3 recommends full redistribution is
// marked with '*'.
//
// Usage: bench_load_balance [--json-only]
//   --json-only  suppress the console table, still write the JSON.
// Every run writes BENCH_load_balance.json to the working directory.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/bounds.h"
#include "placement/registry.h"
#include "stats/load_metrics.h"
#include "util/intmath.h"

namespace scaddar {
namespace {

constexpr int kBits = 32;
constexpr double kEps = 0.05;
constexpr int64_t kNumObjects = 20;     // Paper: "20 different objects".
constexpr int64_t kBlocksPerObject = 5000;
constexpr int64_t kInitialDisks = 8;    // Paper: average of 8 disks.
constexpr int kOps = 10;                // Paper threshold is ~8; overshoot.

void Run(bool json_only) {
  const std::vector<std::vector<uint64_t>> objects = bench::MakeObjects(
      0x5ec5aull, kNumObjects, kBlocksPerObject, PrngKind::kPcg32, kBits);
  const std::vector<std::string_view> policies = {"scaddar", "naive", "mod",
                                                  "directory"};
  if (!json_only) {
    std::printf("setting: %lld objects x %lld blocks, b=%d, eps=%.0f%%, "
                "N0=%lld, +1 disk per op\n\n",
                static_cast<long long>(kNumObjects),
                static_cast<long long>(kBlocksPerObject), kBits, kEps * 100,
                static_cast<long long>(kInitialDisks));
    std::printf("%-4s %-6s", "op", "disks");
    for (const std::string_view name : policies) {
      std::printf("  %12.*s", static_cast<int>(name.size()), name.data());
    }
    std::printf("  lemma4.3\n");
  }

  std::vector<std::unique_ptr<PlacementPolicy>> instances;
  for (const std::string_view name : policies) {
    auto policy = MakePolicy(name, kInitialDisks).value();
    for (ObjectId id = 0; id < kNumObjects; ++id) {
      SCADDAR_CHECK(
          policy->AddObject(id, objects[static_cast<size_t>(id)]).ok());
    }
    instances.push_back(std::move(policy));
  }
  const uint64_t r0 = MaxRandomForBits(kBits);
  bench::BenchJson json("bench_load_balance");
  for (int op = 0; op <= kOps; ++op) {
    double apply_seconds = 0;
    if (op > 0) {
      apply_seconds = bench::TimeSeconds([&] {
        for (auto& policy : instances) {
          SCADDAR_CHECK(policy->ApplyOp(ScalingOp::Add(1).value()).ok());
        }
      });
    }
    if (!json_only) {
      std::printf("%-4d %-6lld", op,
                  static_cast<long long>(instances[0]->current_disks()));
    }
    json.BeginTier(op);
    json.TierMetric("disks",
                    static_cast<double>(instances[0]->current_disks()), 0);
    json.TierMetric("apply_all_us", apply_seconds * 1e6, 1);
    const bool ok = instances[0]->log().SatisfiesTolerance(r0, kEps);
    json.TierLabel("lemma_4_3", ok ? "ok" : "redistribute-all");
    for (size_t p = 0; p < policies.size(); ++p) {
      const LoadMetrics metrics =
          ComputeLoadMetrics(instances[p]->PerDiskCounts());
      if (!json_only) {
        std::printf("  %12.5f", metrics.coefficient_of_variation);
      }
      json.Path(std::string(policies[p]).c_str(),
                {{"cov", metrics.coefficient_of_variation, 5},
                 {"stddev", metrics.stddev, 3}});
    }
    json.EndTier();
    if (!json_only) {
      std::printf("  %s\n", ok ? "ok" : "* redistribute-all recommended");
    }
  }
  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Expected shape (paper, Section 5): SCADDAR's CoV grows slowly with\n"
        "each op (shrinking range) and crosses the recommended-"
        "redistribution\n"
        "threshold near op %lld; 'mod' and 'directory' (full/true fresh\n"
        "randomness) stay flat; 'naive' degrades fastest.\n",
        static_cast<long long>(RuleOfThumbMaxOps(kBits, kEps, 8.0)));
  }
  SCADDAR_CHECK(json.WriteFile("BENCH_load_balance.json"));
  if (!json_only) {
    std::printf("wrote BENCH_load_balance.json\n");
  }
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    }
  }
  if (!json_only) {
    scaddar::bench::PrintHeader(
        "EXP-A", "CoV of blocks/disk vs. scaling operations (Section 5)");
  }
  scaddar::Run(json_only);
  return 0;
}
