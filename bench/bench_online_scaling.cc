// EXP-H (extension) — online scaling on the CM server simulation: hiccup
// rate and migration completion time as a function of the bandwidth
// headroom left for reorganization. This exercises the paper's core
// motivation: scaling without taking the server down.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "server/server.h"
#include "server/workload.h"

namespace scaddar {
namespace {

struct Outcome {
  int64_t migration_rounds = -1;  // -1: did not finish in the horizon.
  int64_t served = 0;
  int64_t hiccups = 0;
  int64_t moved = 0;
  double wall_seconds = 0;
};

Outcome RunScenario(double utilization_cap, int64_t extra_budget,
                    ServingPath path = ServingPath::kBatchCursor) {
  ServerConfig config;
  config.initial_disks = 8;
  config.disk_spec = {.capacity_blocks = 500'000,
                      .bandwidth_blocks_per_round = 10};
  config.master_seed = 0xbeefull;
  config.admission_utilization_cap = utilization_cap;
  config.migration_extra_budget = extra_budget;
  config.serving_path = path;
  auto server = std::move(CmServer::Create(config)).value();
  for (ObjectId id = 1; id <= 10; ++id) {
    SCADDAR_CHECK(server->AddObject(id, 2000).ok());
  }
  // Fill to the admission cap so leftover bandwidth is scarce.
  WorkloadGenerator workload(17, 50.0, 0.729);
  workload.SetObjects({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (const ObjectId id : workload.NextArrivals()) {
    (void)server->StartStream(id);  // Admission decides.
  }
  while (server->StartStream(1).ok()) {
  }
  // Warm up, then scale online.
  for (int round = 0; round < 20; ++round) {
    server->Tick();
  }
  SCADDAR_CHECK(server->ScaleAdd(2).ok());
  Outcome outcome;
  constexpr int kHorizon = 4000;
  int round = 0;
  const bench::RoundTiming timing = bench::MeasureRounds(
      /*warmup_rounds=*/0, kHorizon,
      [&] {
        const RoundMetrics metrics = server->Tick();
        // Keep the stream population topped up (VoD arrivals continue).
        while (server->StartStream(1 + round % 10).ok()) {
        }
        ++round;
        return metrics;
      },
      [&](const RoundMetrics& metrics) {
        outcome.served += metrics.served;
        outcome.hiccups += metrics.hiccups;
        if (metrics.pending_migration == 0 && outcome.migration_rounds < 0) {
          outcome.migration_rounds = round;
        }
      });
  outcome.wall_seconds = timing.total_seconds;
  outcome.moved = server->migration().total_moved();
  return outcome;
}

/// Batch tier: the same scaling scenario under each serving-path
/// implementation. Served/hiccup counts must be identical (the paths are
/// equivalent); wall time is where they differ.
void RunServingTiers() {
  bench::PrintRule();
  std::printf("%-14s %-12s %-12s %-12s %-12s\n", "serving-path", "served",
              "hiccups", "wall-s", "speedup");
  const Outcome oracle =
      RunScenario(0.7, 0, ServingPath::kStoreScalar);
  for (const auto& [name, path] :
       std::initializer_list<std::pair<const char*, ServingPath>>{
           {"store-scalar", ServingPath::kStoreScalar},
           {"batch-cursor", ServingPath::kBatchCursor}}) {
    const Outcome outcome =
        path == ServingPath::kStoreScalar ? oracle
                                          : RunScenario(0.7, 0, path);
    SCADDAR_CHECK(outcome.served == oracle.served &&
                  outcome.hiccups == oracle.hiccups);
    std::printf("%-14s %-12lld %-12lld %-12.3f %-12.2f\n", name,
                static_cast<long long>(outcome.served),
                static_cast<long long>(outcome.hiccups),
                outcome.wall_seconds,
                outcome.wall_seconds > 0
                    ? oracle.wall_seconds / outcome.wall_seconds
                    : 0.0);
  }
  std::printf(
      "Identical served/hiccup counts by construction (checked); the\n"
      "batched cursor path buys its speedup without changing a single\n"
      "scheduling decision.\n");
}

void Run() {
  std::printf("%-12s %-12s %-16s %-12s %-12s %-12s\n", "admit-cap",
              "extra-bw", "migr-rounds", "served", "hiccups",
              "hiccup-rate");
  for (const double cap : {0.5, 0.7, 0.9}) {
    for (const int64_t extra : {int64_t{0}, int64_t{2}}) {
      const Outcome outcome = RunScenario(cap, extra);
      std::printf("%-12.2f %-12lld %-16lld %-12lld %-12lld %-12.6f\n", cap,
                  static_cast<long long>(extra),
                  static_cast<long long>(outcome.migration_rounds),
                  static_cast<long long>(outcome.served),
                  static_cast<long long>(outcome.hiccups),
                  outcome.served == 0
                      ? 0.0
                      : static_cast<double>(outcome.hiccups) /
                            static_cast<double>(outcome.served));
    }
  }
  bench::PrintRule();
  std::printf(
      "Expected shape: lower admission caps leave more leftover bandwidth,\n"
      "so migration finishes in fewer rounds, and extra migration budget\n"
      "shortens it further. Hiccups are governed by the utilization\n"
      "headroom (random placement gives statistical guarantees: per-disk\n"
      "demand is ~Binomial(streams, 1/N), so a 0.9 cap has a fat overload\n"
      "tail) — compare rows with equal caps to see that the background\n"
      "migration itself adds virtually no hiccups: the server never goes\n"
      "down for reorganization.\n");
  RunServingTiers();
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-H", "online scaling: migration time vs. service headroom");
  scaddar::Run();
  return 0;
}
