// EXP-MT (extension) — the thread-per-core sharded serving runtime:
// aggregate round throughput at 1/2/4/8 shards on uniform traffic, p50/p99
// round latency, and a Zipf + flash-crowd scenario with hiccup rate and
// per-disk served-load CoV while a scale-up migration runs concurrently.
//
// Two throughput figures per shard count:
//  - "wall"  — real worker threads on this host. On a machine with fewer
//    cores than shards this measures the host, not the design.
//  - "model" — the critical path of the two-phase round: the slowest
//    shard's resolve time (shards run one-at-a-time on the calling thread
//    so each is timed unpolluted) plus the serial commit. This is the
//    round time a machine with >= N free cores would see, in keeping with
//    the repo's every-bench-number-is-a-model-number convention for
//    hardware-dependent figures.
//
// Usage: bench_serving_mt [--smoke] [--json-only]
//   --smoke      tiny sizes, no BENCH_serving_mt.json (CI wiring check).
//   --json-only  suppress the console tables, still write the JSON.
// The full run writes BENCH_serving_mt.json to the working directory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "placement/scaddar_policy.h"
#include "server/migration.h"
#include "server/server.h"
#include "server/sharded_scheduler.h"
#include "server/workload/traffic_engine.h"
#include "stats/load_metrics.h"
#include "stats/percentile.h"
#include "storage/block_store.h"

namespace scaddar {
namespace {

struct Sizes {
  int64_t objects = 24;
  int64_t blocks_each = 20'000;
  int64_t streams = 1024;
  int64_t rounds = 300;
  int64_t warmup_rounds = 48;
  int64_t repetitions = 3;
  // Zipf scale-up scenario.
  int64_t scenario_rounds = 400;
  int64_t scenario_objects = 16;
  int64_t scenario_blocks = 4'000;
};

/// Same fixture discipline as bench_serving: ops applied, store == AF(),
/// stream population that never finishes inside the horizon.
struct Fixture {
  explicit Fixture(const Sizes& sizes)
      : policy(8),
        disks(DiskSpec{.capacity_blocks = 10'000'000,
                       .bandwidth_blocks_per_round = 64}),
        store(&disks) {
    const auto x0s = bench::MakeObjects(0x5e71ull, sizes.objects,
                                        sizes.blocks_each,
                                        PrngKind::kSplitMix64, 64);
    for (ObjectId id = 1; id <= sizes.objects; ++id) {
      SCADDAR_CHECK(
          policy.AddObject(id, x0s[static_cast<size_t>(id - 1)]).ok());
    }
    // 8 -> 32 disks: a farm sized so the steady-state population (1024
    // rate-1 streams vs 32*64 blocks/round of budget) serves hiccup-free at
    // ~50% utilization — saturation behavior belongs to the scenario tier.
    for (int64_t j = 0; j < 24; ++j) {
      SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
    }
    SCADDAR_CHECK(disks.SyncLiveSet(policy.log().physical_disks()).ok());
    std::vector<PhysicalDiskId> locations;
    for (ObjectId id = 1; id <= sizes.objects; ++id) {
      policy.LocateAllBlocks(id, locations);
      SCADDAR_CHECK(store.PlaceObject(id, locations).ok());
    }
    for (int64_t s = 0; s < sizes.streams; ++s) {
      const ObjectId object = 1 + s % sizes.objects;
      streams.emplace_back(s, object, sizes.blocks_each, 0);
      streams.back().SeekTo((s * 977) % (sizes.blocks_each / 2));
    }
  }

  ScaddarPolicy policy;
  DiskArray disks;
  BlockStore store;
  MigrationExecutor migration;
  std::vector<Stream> streams;
};

struct ShardResult {
  int shards = 1;
  int64_t requests = 0;
  // Median per-round critical path (max shard resolve + commit) scaled to
  // the full horizon. The median — not the sum — is the model: rounds are
  // single-digit microseconds, so one scheduler preemption inside any
  // round would otherwise dominate the whole measurement on a busy host.
  double model_seconds = 0;
  bench::RoundTiming wall;   // Real threads.

  double WallRps() const {
    return wall.total_seconds > 0
               ? static_cast<double>(requests) / wall.total_seconds
               : 0;
  }
  double ModelRps() const {
    return model_seconds > 0
               ? static_cast<double>(requests) / model_seconds
               : 0;
  }
};

/// One model pass: shards run serialized so each shard's resolve time is
/// its own critical path, not this host's core contention.
ShardResult MeasureModelOnce(int shards, const Sizes& sizes) {
  ShardResult result;
  result.shards = shards;
  Fixture fx(sizes);
  ShardedScheduler scheduler(shards, 0xbe9cull);
  ShardedRunOptions options;
  options.serialize_shards = true;
  ShardedRoundStats stats;
  const auto round = [&] {
    return scheduler.Run(fx.streams, fx.policy, fx.migration, fx.store,
                         fx.disks, nullptr, options, &stats);
  };
  std::vector<double> round_model;
  round_model.reserve(static_cast<size_t>(sizes.rounds));
  bench::MeasureRounds(sizes.warmup_rounds, sizes.rounds, round,
                       [&](const RoundServiceResult& service) {
                         result.requests += service.requests;
                         double slowest = 0;
                         for (const ShardStats& shard : stats.shards) {
                           slowest = std::max(slowest, shard.seconds);
                         }
                         round_model.push_back(slowest +
                                               stats.commit_seconds);
                       });
  std::sort(round_model.begin(), round_model.end());
  result.model_seconds =
      round_model[round_model.size() / 2] * static_cast<double>(sizes.rounds);
  return result;
}

/// One wall pass: real worker threads, one per shard.
bench::RoundTiming MeasureWallOnce(int shards, const Sizes& sizes) {
  Fixture fx(sizes);
  ShardedScheduler scheduler(shards, 0xbe9cull);
  const auto round = [&] {
    return scheduler.Run(fx.streams, fx.policy, fx.migration, fx.store,
                         fx.disks, nullptr);
  };
  return bench::MeasureRounds(sizes.warmup_rounds, sizes.rounds, round,
                              [](const RoundServiceResult&) {});
}

/// Measures every shard count, interleaving the repetitions — rep 0 of all
/// shard counts, then rep 1, ... — so a slow patch on a shared host (CPU
/// steal, frequency dips) degrades every tier's candidate equally instead
/// of sinking whichever tier it happened to overlap. Best (fastest) rep
/// per tier wins; wall passes run as a second interleaved block so their
/// thread oversubscription never pollutes a model pass.
std::vector<ShardResult> MeasureAllShardCounts(const std::vector<int>& counts,
                                               const Sizes& sizes) {
  std::vector<ShardResult> results(counts.size());
  for (int64_t rep = 0; rep < sizes.repetitions; ++rep) {
    for (size_t t = 0; t < counts.size(); ++t) {
      ShardResult candidate = MeasureModelOnce(counts[t], sizes);
      if (rep == 0 ||
          candidate.model_seconds < results[t].model_seconds) {
        candidate.wall = results[t].wall;
        results[t] = candidate;
      }
    }
  }
  for (int64_t rep = 0; rep < sizes.repetitions; ++rep) {
    for (size_t t = 0; t < counts.size(); ++t) {
      const bench::RoundTiming wall = MeasureWallOnce(counts[t], sizes);
      if (rep == 0 || wall.total_seconds < results[t].wall.total_seconds) {
        results[t].wall = wall;
      }
    }
  }
  return results;
}

/// The concurrent-reorganization scenario: 8 shards serving Zipf traffic
/// with a flash crowd while the array scales up mid-run and migration
/// spends the leftover bandwidth every round.
struct ScenarioResultMt {
  int64_t requests = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
  int64_t migrated = 0;
  int64_t streams_peak = 0;
  double served_cov = 0;  // Per-disk served-request CoV over the run.
  // Startup latency (rounds from arrival to first delivered block) of the
  // serving round loop, nearest-rank percentiles.
  int64_t startup_p50 = 0;
  int64_t startup_p99 = 0;
  int64_t startup_p999 = 0;

  double HiccupRate() const {
    return requests > 0
               ? static_cast<double>(hiccups) / static_cast<double>(requests)
               : 0;
  }
};

ScenarioResultMt RunZipfScaleUpScenario(const Sizes& sizes, int shards) {
  ServerConfig config;
  config.initial_disks = 8;
  config.disk_spec = {.capacity_blocks = 1'000'000,
                      .bandwidth_blocks_per_round = 16};
  config.serving_path = ServingPath::kShardedCursor;
  config.serving_shards = shards;
  auto server_or = CmServer::Create(config);
  SCADDAR_CHECK(server_or.ok());
  CmServer& server = **server_or;
  for (ObjectId id = 1; id <= sizes.scenario_objects; ++id) {
    SCADDAR_CHECK(server.AddObject(id, sizes.scenario_blocks).ok());
  }
  TrafficConfig traffic_config;
  traffic_config.seed = 0x21bfull;
  traffic_config.arrivals_per_round = 1.5;
  traffic_config.zipf_theta = 0.729;
  traffic_config.seek_probability = 0.02;
  traffic_config.flash_crowds.push_back(
      FlashCrowd{.start_round = sizes.scenario_rounds / 4,
                 .duration = sizes.scenario_rounds / 10,
                 .rank = 0,
                 .boost = 4});
  TrafficEngine traffic(traffic_config);
  traffic.SetObjects(server.catalog().object_ids());

  ScenarioResultMt result;
  for (int64_t round = 0; round < sizes.scenario_rounds; ++round) {
    // Scale up right as the flash crowd peaks: serving, migration and the
    // crowd all compete for the same disks.
    if (round == sizes.scenario_rounds / 4) {
      SCADDAR_CHECK(server.ScaleAdd(4).ok());
    }
    const RoundMetrics metrics = traffic.DriveRound(server);
    result.requests += metrics.requests;
    result.served += metrics.served;
    result.hiccups += metrics.hiccups;
    result.migrated += metrics.migrated;
    result.streams_peak = std::max(result.streams_peak,
                                   metrics.active_streams);
  }
  std::vector<int64_t> served_per_disk;
  for (const PhysicalDiskId id : server.disks().live_ids()) {
    served_per_disk.push_back(
        server.disks().GetDisk(id).value()->served_requests());
  }
  result.served_cov =
      ComputeLoadMetrics(served_per_disk).coefficient_of_variation;
  result.startup_p50 = PercentileOf(server.startup_latencies(), 0.50);
  result.startup_p99 = PercentileOf(server.startup_latencies(), 0.99);
  result.startup_p999 = PercentileOf(server.startup_latencies(), 0.999);
  return result;
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  using namespace scaddar;
  bool smoke = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    }
  }
  Sizes sizes;
  if (smoke) {
    sizes = Sizes{.objects = 4,
                  .blocks_each = 600,
                  .streams = 16,
                  .rounds = 12,
                  .warmup_rounds = 4,
                  .repetitions = 1,
                  .scenario_rounds = 40,
                  .scenario_objects = 4,
                  .scenario_blocks = 300};
  }
  if (!json_only) {
    bench::PrintHeader("EXP-MT",
                       "sharded serving runtime: throughput vs. shards");
    std::printf("%-7s %-13s %-13s %-9s %-10s %-10s\n", "shards",
                "model-req/s", "wall-req/s", "speedup", "p50-us", "p99-us");
  }
  bench::BenchJson json("bench_serving_mt");
  double base_model_rps = 0;
  double speedup8 = 0;
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const std::vector<ShardResult> results =
      MeasureAllShardCounts(shard_counts, sizes);
  for (size_t t = 0; t < shard_counts.size(); ++t) {
    const int shards = shard_counts[t];
    const ShardResult& result = results[t];
    if (shards == 1) {
      base_model_rps = result.ModelRps();
    }
    const double speedup =
        base_model_rps > 0 ? result.ModelRps() / base_model_rps : 0;
    if (shards == 8) {
      speedup8 = speedup;
    }
    if (!json_only) {
      std::printf("%-7d %-13.0f %-13.0f %-9.2f %-10.2f %-10.2f\n", shards,
                  result.ModelRps(), result.WallRps(), speedup,
                  result.wall.p50_us, result.wall.p99_us);
    }
    json.BeginTier(shards);
    json.TierMetric("model_speedup_vs_1", speedup);
    json.Path("model",
              {{"requests", static_cast<double>(result.requests), 0},
               {"seconds", result.model_seconds, 6},
               {"requests_per_second", result.ModelRps(), 0}});
    json.Path("wall",
              {{"requests", static_cast<double>(result.requests), 0},
               {"seconds", result.wall.total_seconds, 6},
               {"requests_per_second", result.WallRps(), 0},
               {"p50_us", result.wall.p50_us, 2},
               {"p99_us", result.wall.p99_us, 2}});
    json.EndTier();
  }

  const ScenarioResultMt scenario = RunZipfScaleUpScenario(sizes, 8);
  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Zipf + flash crowd + concurrent scale-up (8 shards):\n"
        "  requests=%lld served=%lld hiccup-rate=%.4f migrated=%lld\n"
        "  peak-streams=%lld per-disk served CoV=%.4f\n"
        "  startup latency p50/p99/p999 = %lld/%lld/%lld rounds\n",
        static_cast<long long>(scenario.requests),
        static_cast<long long>(scenario.served), scenario.HiccupRate(),
        static_cast<long long>(scenario.migrated),
        static_cast<long long>(scenario.streams_peak), scenario.served_cov,
        static_cast<long long>(scenario.startup_p50),
        static_cast<long long>(scenario.startup_p99),
        static_cast<long long>(scenario.startup_p999));
    bench::PrintRule();
    std::printf(
        "Expected shape: model throughput scales with shards until the\n"
        "serial commit dominates (Amdahl); wall throughput tracks it only\n"
        "when the host has as many free cores as shards. The scale-up\n"
        "scenario's served CoV stays moderate because random placement\n"
        "spreads the Zipf head across disks while migration fills the new\n"
        "ones with leftover bandwidth.\n");
  }
  // One scenario tier rides along in the same document (ops = 0 marks it;
  // the label tells readers what it is).
  json.BeginTier(0);
  json.TierLabel("scenario", "zipf_flash_crowd_scale_up");
  json.TierMetric("hiccup_rate", scenario.HiccupRate(), 4);
  json.TierMetric("served_cov", scenario.served_cov, 4);
  json.TierMetric("requests", static_cast<double>(scenario.requests), 0);
  json.TierMetric("served", static_cast<double>(scenario.served), 0);
  json.TierMetric("migrated", static_cast<double>(scenario.migrated), 0);
  json.TierMetric("peak_streams",
                  static_cast<double>(scenario.streams_peak), 0);
  json.TierMetric("startup_p50", static_cast<double>(scenario.startup_p50),
                  0);
  json.TierMetric("startup_p99", static_cast<double>(scenario.startup_p99),
                  0);
  json.TierMetric("startup_p999",
                  static_cast<double>(scenario.startup_p999), 0);
  json.EndTier();
  if (!smoke) {
    SCADDAR_CHECK(json.WriteFile("BENCH_serving_mt.json"));
    if (!json_only) {
      std::printf("wrote BENCH_serving_mt.json\n");
    }
  }
  if (speedup8 < 3.0 && !smoke) {
    std::fprintf(stderr,
                 "WARNING: 8-shard model speedup %.2fx below the 3x target\n",
                 speedup8);
  }
  return 0;
}
