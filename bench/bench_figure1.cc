// FIG1 — reproduces the paper's Figure 1 exactly: 44 blocks (X0 = 0..43)
// on 4 disks, then two successive 1-disk additions under the *naive*
// remapping (Eq. 2), showing that the second added disk draws blocks only
// from disks 1, 3 and 4. A SCADDAR panel follows for contrast, plus a
// quantitative source-disk census with random 64-bit X0.

#include <cstdio>
#include <numeric>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "placement/naive_policy.h"
#include "placement/scaddar_policy.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

template <typename Policy>
void PrintLayout(const Policy& policy, const char* caption) {
  std::printf("%s\n", caption);
  const int64_t disks = policy.current_disks();
  for (DiskSlot disk = 0; disk < disks; ++disk) {
    std::printf("  Disk %lld:", static_cast<long long>(disk));
    for (BlockIndex i = 0; i < 44; ++i) {
      if (policy.LocateSlot(1, i) == disk) {
        std::printf(" %2lld", static_cast<long long>(i));
      }
    }
    std::printf("\n");
  }
}

template <typename Policy>
void RunPanel(const char* name) {
  std::vector<uint64_t> x0(44);
  std::iota(x0.begin(), x0.end(), 0);
  Policy policy(4);
  SCADDAR_CHECK(policy.AddObject(1, x0).ok());
  std::printf("\n--- %s placement ---\n", name);
  PrintLayout(policy, "(a) initial state, N0 = 4:");
  SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  std::vector<DiskSlot> mid(44);
  for (BlockIndex i = 0; i < 44; ++i) {
    mid[static_cast<size_t>(i)] = policy.LocateSlot(1, i);
  }
  PrintLayout(policy, "(b) after 1st 1-disk add, N1 = 5:");
  SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
  PrintLayout(policy, "(c) after 2nd 1-disk add, N2 = 6:");
  std::set<DiskSlot> sources;
  for (BlockIndex i = 0; i < 44; ++i) {
    if (policy.LocateSlot(1, i) == 5) {
      sources.insert(mid[static_cast<size_t>(i)]);
    }
  }
  std::printf("  source disks feeding the 2nd new disk: {");
  bool first = true;
  for (const DiskSlot source : sources) {
    std::printf("%s%lld", first ? "" : ", ",
                static_cast<long long>(source));
    first = false;
  }
  std::printf("}\n");
}

void SourceCensus() {
  std::printf(
      "\n--- source-disk census of blocks moved by op 2 (random X0, "
      "200000 blocks) ---\n");
  std::printf("%-10s", "policy");
  for (int disk = 0; disk < 5; ++disk) {
    std::printf("  from-disk%-2d", disk);
  }
  std::printf("  chi2-p\n");
  const std::vector<std::vector<uint64_t>> objects =
      bench::MakeObjects(0x5caddaull, 1, 200000, PrngKind::kSplitMix64, 64);
  const auto run = [&](auto policy, const char* name) {
    SCADDAR_CHECK(policy.AddObject(1, objects[0]).ok());
    SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
    std::vector<DiskSlot> mid(200000);
    for (BlockIndex i = 0; i < 200000; ++i) {
      mid[static_cast<size_t>(i)] = policy.LocateSlot(1, i);
    }
    SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
    std::vector<int64_t> counts(5, 0);
    for (BlockIndex i = 0; i < 200000; ++i) {
      if (policy.LocateSlot(1, i) == 5) {
        ++counts[static_cast<size_t>(mid[static_cast<size_t>(i)])];
      }
    }
    std::printf("%-10s", name);
    for (const int64_t count : counts) {
      std::printf("  %10lld", static_cast<long long>(count));
    }
    std::printf("  %6.4f\n", ChiSquareUniform(counts).p_value);
  };
  run(NaivePolicy(4), "naive");
  run(ScaddarPolicy(4), "scaddar");
  std::printf(
      "\nExpected shape (paper): naive feeds the new disk from a biased\n"
      "subset (zero contribution from disks 0 and 2 -> p ~ 0); SCADDAR\n"
      "draws uniformly from every disk (p >> 0).\n");
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "FIG1", "naive remapping skew after two disk additions (Figure 1)");
  scaddar::RunPanel<scaddar::NaivePolicy>("naive (Eq. 2)");
  scaddar::RunPanel<scaddar::ScaddarPolicy>("SCADDAR (Eq. 3/5)");
  std::printf(
      "\nNote: Figure 1 uses toy X0 values 0..43 (the paper: \"their\n"
      "ordering is not significant\"). SCADDAR draws fresh randomness from\n"
      "the quotient X div N, which tiny X0 values do not have, so the toy\n"
      "panel underfills the 2nd new disk; the census below uses real\n"
      "64-bit X0 and shows SCADDAR's uniform draw vs. naive's bias.\n");
  scaddar::SourceCensus();
  return 0;
}
