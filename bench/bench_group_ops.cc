// EXP-K (ablation) — why the paper defines scaling on disk *groups*
// (Definition 3.3): growing by k disks in ONE group operation consumes a
// single division of the random range and moves each block at most once,
// while k single-disk operations consume k divisions and re-touch blocks.
// This quantifies the design choice DESIGN.md calls out.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/bounds.h"
#include "placement/scaddar_policy.h"
#include "stats/load_metrics.h"
#include "stats/movement.h"
#include "util/intmath.h"

namespace scaddar {
namespace {

constexpr int64_t kBlocks = 150000;
constexpr int64_t kInitialDisks = 8;
constexpr int kBits = 32;
constexpr double kEps = 0.05;

struct Outcome {
  double moved_fraction = 0.0;
  double pi = 0.0;
  int64_t future_single_adds = 0;  // Ops left before the Lemma 4.3 gate.
  double cov = 0.0;
};

Outcome Grow(int64_t disks_to_add, bool as_group) {
  ScaddarPolicy policy(kInitialDisks);
  const auto objects = bench::MakeObjects(0x96f5ull, 1, kBlocks,
                                          PrngKind::kPcg32, kBits);
  SCADDAR_CHECK(policy.AddObject(1, objects[0]).ok());
  const std::vector<PhysicalDiskId> before = policy.AssignmentSnapshot();
  if (as_group) {
    SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(disks_to_add).value()).ok());
  } else {
    for (int64_t i = 0; i < disks_to_add; ++i) {
      SCADDAR_CHECK(policy.ApplyOp(ScalingOp::Add(1).value()).ok());
    }
  }
  const std::vector<PhysicalDiskId> after = policy.AssignmentSnapshot();
  Outcome outcome;
  int64_t moved = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    moved += before[i] != after[i] ? 1 : 0;
  }
  outcome.moved_fraction =
      static_cast<double>(moved) / static_cast<double>(kBlocks);
  outcome.pi = static_cast<double>(policy.log().pi().value());
  // How many more single-disk additions fit under the tolerance gate?
  const uint64_t r0 = MaxRandomForBits(kBits);
  OpLog probe = policy.log();
  while (!probe.WouldExceedTolerance(ScalingOp::Add(1).value(), r0, kEps)) {
    SCADDAR_CHECK(probe.Append(ScalingOp::Add(1).value()).ok());
    ++outcome.future_single_adds;
  }
  outcome.cov =
      ComputeLoadMetrics(policy.PerDiskCounts()).coefficient_of_variation;
  return outcome;
}

void Run() {
  std::printf("grow N0=%lld by k disks (b=%d, eps=%.0f%%, %lld blocks)\n\n",
              static_cast<long long>(kInitialDisks), kBits, kEps * 100,
              static_cast<long long>(kBlocks));
  std::printf("%-4s %-10s %-10s %-8s %-14s %-12s %-10s\n", "k", "strategy",
              "moved", "z_min", "Pi_k", "future-ops", "CoV");
  for (const int64_t k : {2, 4, 8}) {
    const double z = TheoreticalMoveFraction(kInitialDisks,
                                             kInitialDisks + k);
    for (const bool as_group : {true, false}) {
      const Outcome outcome = Grow(k, as_group);
      std::printf("%-4lld %-10s %-10.4f %-8.4f %-14.4g %-12lld %-10.5f\n",
                  static_cast<long long>(k), as_group ? "1 group" : "k ops",
                  outcome.moved_fraction, z, outcome.pi,
                  static_cast<long long>(outcome.future_single_adds),
                  outcome.cov);
    }
  }
  bench::PrintRule();
  std::printf(
      "Expected shape: both strategies move ~z_min of the blocks (repeat\n"
      "hops are rare for pure additions), but the group op consumes ONE\n"
      "division of the random range where k single adds consume k: Pi_k\n"
      "differs by orders of magnitude and the remaining operation budget\n"
      "(future-ops) shrinks accordingly — at k=8 the op-at-a-time strategy\n"
      "exhausts the b=32 budget entirely. Scale in groups.\n");
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-K", "one k-disk group vs. k single-disk operations (ablation)");
  scaddar::Run();
  return 0;
}
