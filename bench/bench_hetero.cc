// EXP-J (extension) — Section 6 future work: SCADDAR over heterogeneous
// physical disks via the logical-disk mapping of [18]. Verifies that
// per-physical-disk load tracks bandwidth weights through a sequence of
// heterogeneous add/remove operations.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hetero/hetero_array.h"
#include "stats/chi_square.h"

namespace scaddar {
namespace {

constexpr int64_t kBlocks = 120000;

void PrintLoad(const HeteroPlacement& placement, const char* caption) {
  std::printf("\n%s\n", caption);
  std::printf("%-8s %-8s %-10s %-10s %-10s\n", "disk", "weight", "blocks",
              "share", "expected");
  const auto load = placement.PhysicalLoad();
  int64_t total = 0;
  for (const auto& [id, count] : load) {
    total += count;
  }
  std::vector<int64_t> observed;
  std::vector<double> weights;
  for (const HeteroDisk& disk : placement.physical_disks()) {
    const int64_t count = load.at(disk.id);
    observed.push_back(count);
    weights.push_back(static_cast<double>(disk.weight));
    std::printf("%-8lld %-8lld %-10lld %-10.4f %-10.4f\n",
                static_cast<long long>(disk.id),
                static_cast<long long>(disk.weight),
                static_cast<long long>(count),
                static_cast<double>(count) / static_cast<double>(total),
                static_cast<double>(disk.weight) /
                    static_cast<double>(placement.total_weight()));
  }
  const ChiSquareResult chi = ChiSquareAgainst(observed, weights);
  std::printf("weight-proportionality chi2 p-value: %.4f (p >= 0.01 means "
              "proportional)\n",
              chi.p_value);
}

void Run() {
  // A mixed farm: one legacy 1x disk, two 2x disks, one fast 4x disk.
  HeteroPlacement placement =
      HeteroPlacement::Create({{0, 1}, {1, 2}, {2, 2}, {3, 4}}).value();
  const auto objects =
      bench::MakeObjects(0x7e7e, 1, kBlocks, PrngKind::kSplitMix64, 64);
  SCADDAR_CHECK(placement.AddObject(1, objects[0]).ok());
  PrintLoad(placement, "--- initial farm {1x, 2x, 2x, 4x} ---");

  SCADDAR_CHECK(placement.AddPhysicalDisk({4, 6}).ok());
  PrintLoad(placement, "--- after adding a 6x next-generation disk ---");

  SCADDAR_CHECK(placement.RemovePhysicalDisk(0).ok());
  PrintLoad(placement, "--- after retiring the legacy 1x disk ---");

  bench::PrintRule();
  std::printf(
      "Expected shape: every panel's per-disk share matches weight/total\n"
      "(chi2 p >= 0.01); scaling a heterogeneous disk is just a logical\n"
      "disk-group operation, so SCADDAR's minimal-movement property\n"
      "carries over unchanged.\n");
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-J", "SCADDAR on heterogeneous disks via logical mapping");
  scaddar::Run();
  return 0;
}
