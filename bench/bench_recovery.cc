// EXP-REC (extension) — multi-level checkpoint/restart economics: what a
// checkpoint set costs to write, and what it buys at restart time.
//
// Three numbers per state size, one path each:
//  1. checkpoint — wall cost of writing one L1 (single local copy) and one
//     L2 (redundant) set of the full server state, and the fragment bytes
//     the set occupies across the snapshot-location farm.
//  2. restore — cold restart from the newest checkpoint set
//     (`RestoreFromCheckpoint`): snapshot rows land directly in the store;
//     only the journal suffix replays.
//  3. replay — the pre-checkpoint restart path (`SaveSnapshot`/`Restore`):
//     every block's placement recomputed through the full remap chain of
//     the op log. This is what a restart costs without checkpoints.
//
// The acceptance target: restore_blocks_per_second beats
// replay_blocks_per_second at every tier, and the gap widens with op-log
// depth (replay is O(blocks x ops); restore is O(blocks + ops)). Each
// tier also restores an XOR L2 set after losing one snapshot location —
// correctness is asserted, and the parity-rebuild cost is reported.
//
// Usage: bench_recovery [--smoke] [--json-only]
//   --smoke      tiny sizes, no BENCH_recovery.json (CI wiring check).
//   --json-only  suppress the console tables, still write the JSON.
// The full run writes BENCH_recovery.json to the working directory.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "recovery/checkpoint_manager.h"
#include "server/server.h"

namespace scaddar {
namespace {

struct Sizes {
  int64_t objects = 0;
  int64_t blocks_each = 0;
  int64_t scaling_ops = 0;  // Op-log depth driven by online scale-ups.
};

ServerConfig RecoveryConfig() {
  ServerConfig config;
  config.initial_disks = 8;
  // High per-disk bandwidth so each tier's migrations drain in a handful
  // of rounds — the bench measures restart cost, not migration time.
  config.disk_spec = {.capacity_blocks = 2'000'000,
                      .bandwidth_blocks_per_round = 4096};
  config.master_seed = 0x5ec0bell;
  config.journal_migration = true;
  return config;
}

/// Placement fingerprint: every object's full materialized row.
std::map<ObjectId, std::vector<PhysicalDiskId>> Placement(
    const CmServer& server) {
  std::map<ObjectId, std::vector<PhysicalDiskId>> out;
  for (const ObjectId id : server.catalog().object_ids()) {
    const auto row = server.store().LocationsOf(id).value();
    out[id] = std::vector<PhysicalDiskId>(row.begin(), row.end());
  }
  return out;
}

/// Builds one tier's server: ingest, a few streams, then `scaling_ops`
/// online scale-ups with serving rounds in between, drained at the end so
/// the replay comparator (`SaveSnapshot` needs an idle migration) runs on
/// the same state.
std::unique_ptr<CmServer> BuildState(const Sizes& sizes) {
  auto server = std::move(CmServer::Create(RecoveryConfig())).value();
  for (int64_t id = 1; id <= sizes.objects; ++id) {
    SCADDAR_CHECK(server->AddObject(id, sizes.blocks_each).ok());
  }
  for (int64_t id = 1; id <= std::min<int64_t>(sizes.objects, 16); ++id) {
    SCADDAR_CHECK(server->StartStream(id).ok());
  }
  for (int64_t op = 0; op < sizes.scaling_ops; ++op) {
    SCADDAR_CHECK(server->ScaleAdd(1).ok());
    for (int i = 0; i < 2; ++i) {
      server->Tick();
    }
  }
  int64_t guard = 0;
  while (!server->migration().idle()) {
    server->Tick();
    SCADDAR_CHECK(++guard < 200'000);
  }
  return server;
}

struct TierResult {
  Sizes sizes;
  int64_t total_blocks = 0;
  int64_t oplog_ops = 0;
  double l1_seconds = 0;
  double l2_seconds = 0;
  int64_t set_bytes = 0;          // Fragment bytes of one L2 XOR set.
  double restore_seconds = 0;
  double replay_seconds = 0;
  double degraded_seconds = 0;    // Restore after losing one location.

  double CheckpointBps() const {
    return l2_seconds > 0 ? static_cast<double>(total_blocks) / l2_seconds
                          : 0;
  }
  double RestoreBps() const {
    return restore_seconds > 0
               ? static_cast<double>(total_blocks) / restore_seconds
               : 0;
  }
  double ReplayBps() const {
    return replay_seconds > 0
               ? static_cast<double>(total_blocks) / replay_seconds
               : 0;
  }
  double Speedup() const {
    return restore_seconds > 0 ? replay_seconds / restore_seconds : 0;
  }
};

TierResult RunTier(const Sizes& sizes) {
  TierResult result;
  result.sizes = sizes;
  auto server = BuildState(sizes);
  result.total_blocks = server->store().total_blocks();
  result.oplog_ops = server->policy().log().num_ops();
  const auto expected = Placement(*server);
  const ServerConfig config = server->config();

  // --- Path 1: checkpoint write cost (best of 3 per level). ---------------
  CheckpointManager manager(CheckpointOptions{
      .num_locations = 4, .redundancy = CheckpointRedundancy::kXor});
  SCADDAR_CHECK(server->AttachCheckpointManager(&manager).ok());
  const auto time_write = [&](int level) {
    return bench::BestOf(
        3,
        [&] {
          return bench::TimeSeconds(
              [&] { SCADDAR_CHECK(server->WriteCheckpoint(level).ok()); });
        },
        [](double seconds) { return seconds; });
  };
  result.l1_seconds = time_write(1);
  const int64_t bytes_before_l2 = manager.stats().bytes_written;
  result.l2_seconds = time_write(2);
  result.set_bytes =
      (manager.stats().bytes_written - bytes_before_l2) / 3;  // Per set.

  // --- Path 3 input: the op-log replay document, same state. --------------
  const std::string replay_document =
      std::move(server->SaveSnapshot()).value();
  SCADDAR_CHECK(server->AttachCheckpointManager(nullptr).ok());
  server.reset();  // The process is gone; only manager + document survive.

  // --- Path 2: cold restore from the newest checkpoint set. ---------------
  std::unique_ptr<CmServer> restored;
  result.restore_seconds = bench::TimeSeconds([&] {
    restored =
        std::move(CmServer::RestoreFromCheckpoint(config, manager)).value();
  });
  SCADDAR_CHECK(Placement(*restored) == expected);
  SCADDAR_CHECK(restored->AttachCheckpointManager(nullptr).ok());

  // --- Path 3: full op-log replay (the no-checkpoint restart). ------------
  std::unique_ptr<CmServer> replayed;
  result.replay_seconds = bench::TimeSeconds([&] {
    replayed =
        std::move(CmServer::Restore(config, replay_document)).value();
  });
  SCADDAR_CHECK(Placement(*replayed) == expected);

  // --- Degraded restore: one snapshot location is gone. -------------------
  SCADDAR_CHECK(manager.DropLocation(0).ok());
  std::unique_ptr<CmServer> degraded;
  result.degraded_seconds = bench::TimeSeconds([&] {
    degraded =
        std::move(CmServer::RestoreFromCheckpoint(config, manager)).value();
  });
  SCADDAR_CHECK(Placement(*degraded) == expected);
  return result;
}

void PrintTier(const TierResult& result) {
  std::printf(
      "%6lld objects x %5lld blocks  (%9lld blocks, %3lld ops)\n",
      static_cast<long long>(result.sizes.objects),
      static_cast<long long>(result.sizes.blocks_each),
      static_cast<long long>(result.total_blocks),
      static_cast<long long>(result.oplog_ops));
  std::printf(
      "  checkpoint  L1 %8.2f ms   L2(xor) %8.2f ms   set %8.2f MiB\n",
      result.l1_seconds * 1e3, result.l2_seconds * 1e3,
      static_cast<double>(result.set_bytes) / (1024.0 * 1024.0));
  std::printf(
      "  restart     restore %8.2f ms   replay %8.2f ms   degraded %8.2f ms\n",
      result.restore_seconds * 1e3, result.replay_seconds * 1e3,
      result.degraded_seconds * 1e3);
  std::printf(
      "  throughput  restore %12.0f blk/s   replay %12.0f blk/s   "
      "speedup %5.1fx\n",
      result.RestoreBps(), result.ReplayBps(), result.Speedup());
  bench::PrintRule();
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool smoke = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  using scaddar::Sizes;
  std::vector<Sizes> tiers;
  if (smoke) {
    tiers.push_back(Sizes{8, 64, 2});
  } else {
    // Op-log depth scales with state size: replay walks the remap chain
    // per block (O(blocks x ops)), restore decodes rows (O(blocks)), so
    // the depth axis is what separates the two restart paths. A server
    // that has scaled dozens of times is exactly the one that needs
    // checkpoints.
    tiers.push_back(Sizes{64, 512, 48});
    tiers.push_back(Sizes{128, 1'024, 64});
    tiers.push_back(Sizes{256, 2'048, 96});
  }

  if (!json_only) {
    scaddar::bench::PrintHeader(
        "EXP-REC", "checkpoint cost vs. restart time vs. op-log replay");
  }
  scaddar::bench::BenchJson json("recovery");
  for (const Sizes& sizes : tiers) {
    const scaddar::TierResult result = scaddar::RunTier(sizes);
    if (!json_only) {
      scaddar::PrintTier(result);
    }
    json.BeginTier(result.oplog_ops);
    json.TierMetric("objects", static_cast<double>(sizes.objects), 0);
    json.TierMetric("blocks", static_cast<double>(result.total_blocks), 0);
    json.TierMetric("set_mib",
                    static_cast<double>(result.set_bytes) / (1024.0 * 1024.0),
                    2);
    json.TierMetric("restore_speedup_vs_replay", result.Speedup(), 2);
    json.Path("checkpoint",
              {{"l1_ms", result.l1_seconds * 1e3, 3},
               {"l2_ms", result.l2_seconds * 1e3, 3},
               {"checkpoint_blocks_per_second", result.CheckpointBps(), 0}});
    json.Path("restore",
              {{"ms", result.restore_seconds * 1e3, 3},
               {"restore_blocks_per_second", result.RestoreBps(), 0}});
    json.Path("replay",
              {{"ms", result.replay_seconds * 1e3, 3},
               {"replay_blocks_per_second", result.ReplayBps(), 0}});
    json.Path("degraded_restore",
              {{"ms", result.degraded_seconds * 1e3, 3}});
    json.EndTier();
  }

  if (!smoke) {
    if (!json.WriteFile("BENCH_recovery.json")) {
      std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
      return 1;
    }
    if (!json_only) {
      std::printf("wrote BENCH_recovery.json\n");
    }
  }
  return 0;
}
