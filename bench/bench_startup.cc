// EXP-N (extension) — stream startup latency: random vs. constrained
// placement. Section 1 credits random placement with "no need for
// synchronous access cycles" and "a single traffic pattern". With
// round-robin striping, all streams sweep the disks in lockstep, so a new
// stream can only begin when the retrieval phase matching its object's
// first block has a free service slot; with random placement any round
// works — admission is by aggregate load alone.
//
// Usage: bench_startup [--json-only]
//   --json-only  suppress the console table, still write the JSON.
// Every run writes BENCH_startup.json to the working directory.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "random/distributions.h"
#include "random/prng.h"
#include "stats/accumulator.h"
#include "stats/histogram.h"
#include "util/status.h"

namespace scaddar {
namespace {

constexpr int64_t kDisks = 12;
constexpr int64_t kBandwidthPerDisk = 6;   // Streams one disk feeds/round.
constexpr int64_t kStreamLength = 600;     // Rounds per stream.
constexpr int64_t kRounds = 30000;

struct LatencyResult {
  double mean = 0.0;
  double p95 = 0.0;
  int64_t started = 0;
};

// Round-robin striping: a stream admitted at round t reading an object
// with stripe offset o occupies retrieval phase (o - t) mod N forever;
// each phase holds at most `kBandwidthPerDisk` concurrent streams. Waiting
// rotates the stream's phase, so the startup delay is the distance to the
// first phase with a free slot.
LatencyResult SimulateRoundRobin(double arrivals_per_round, uint64_t seed) {
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  std::vector<std::vector<int64_t>> phase_end_rounds(
      static_cast<size_t>(kDisks));
  Accumulator latency;
  Histogram histogram(0, static_cast<double>(kDisks) + 1, 64);
  for (int64_t t = 0; t < kRounds; ++t) {
    const int64_t arrivals = PoissonSample(*prng, arrivals_per_round);
    for (int64_t a = 0; a < arrivals; ++a) {
      const auto offset =
          static_cast<int64_t>(UniformUint64(*prng, kDisks));
      // Find the smallest wait w >= 0 whose phase has a free slot.
      int64_t wait = -1;
      for (int64_t w = 0; w < kDisks; ++w) {
        auto& phase = phase_end_rounds[static_cast<size_t>(
            ((offset - t - w) % kDisks + kDisks) % kDisks)];
        // Purge completed streams.
        std::erase_if(phase,
                      [t, w](int64_t end) { return end <= t + w; });
        if (static_cast<int64_t>(phase.size()) < kBandwidthPerDisk) {
          phase.push_back(t + w + kStreamLength);
          wait = w;
          break;
        }
      }
      if (wait < 0) {
        continue;  // All phases full: rejected (counted via `started`).
      }
      latency.Add(static_cast<double>(wait));
      histogram.Add(static_cast<double>(wait));
    }
  }
  return LatencyResult{latency.mean(), histogram.Quantile(0.95),
                       latency.count()};
}

// Random placement: no phases — a stream starts immediately whenever the
// aggregate committed load allows.
LatencyResult SimulateRandom(double arrivals_per_round, uint64_t seed) {
  auto prng = MakePrng(PrngKind::kSplitMix64, seed + 1);
  std::vector<int64_t> end_rounds;
  Accumulator latency;
  int64_t queued_waits = 0;
  for (int64_t t = 0; t < kRounds; ++t) {
    std::erase_if(end_rounds, [t](int64_t end) { return end <= t; });
    const int64_t arrivals = PoissonSample(*prng, arrivals_per_round);
    for (int64_t a = 0; a < arrivals; ++a) {
      if (static_cast<int64_t>(end_rounds.size()) <
          kDisks * kBandwidthPerDisk) {
        end_rounds.push_back(t + kStreamLength);
        latency.Add(0.0);
      } else {
        ++queued_waits;  // Capacity-rejected; same for both schemes.
      }
    }
  }
  return LatencyResult{latency.mean(), 0.0, latency.count()};
}

void Run(bool json_only) {
  if (!json_only) {
    std::printf("%lld disks x %lld streams/disk, %lld-round streams\n\n",
                static_cast<long long>(kDisks),
                static_cast<long long>(kBandwidthPerDisk),
                static_cast<long long>(kStreamLength));
    std::printf("%-12s %-12s %-14s %-14s %-14s\n", "utilization",
                "arrivals/rd", "rr-mean-wait", "rr-p95-wait", "random-wait");
  }
  const double capacity_per_round =
      static_cast<double>(kDisks * kBandwidthPerDisk) /
      static_cast<double>(kStreamLength);
  bench::BenchJson json("bench_startup");
  int64_t tier = 0;
  for (const double utilization : {0.5, 0.7, 0.9, 0.98}) {
    const double arrivals = utilization * capacity_per_round;
    LatencyResult rr;
    const double rr_seconds = bench::TimeSeconds(
        [&] { rr = SimulateRoundRobin(arrivals, 0x5107ull); });
    LatencyResult random;
    const double random_seconds = bench::TimeSeconds(
        [&] { random = SimulateRandom(arrivals, 0x5107ull); });
    if (!json_only) {
      std::printf("%-12.2f %-12.3f %-14.3f %-14.3f %-14.3f\n", utilization,
                  arrivals, rr.mean, rr.p95, random.mean);
    }
    json.BeginTier(tier++);
    json.TierMetric("utilization", utilization);
    json.TierMetric("arrivals_per_round", arrivals, 3);
    json.Path("roundrobin",
              {{"mean_wait_rounds", rr.mean, 3},
               {"p95_wait_rounds", rr.p95, 3},
               {"streams_started", static_cast<double>(rr.started), 0},
               {"sim_us", rr_seconds * 1e6, 1}});
    json.Path("random",
              {{"mean_wait_rounds", random.mean, 3},
               {"p95_wait_rounds", random.p95, 3},
               {"streams_started", static_cast<double>(random.started), 0},
               {"sim_us", random_seconds * 1e6, 1}});
    json.EndTier();
  }
  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Expected shape: with round-robin striping the mean startup wait\n"
        "grows with utilization (a stream must catch a retrieval phase with\n"
        "a free slot; p95 approaches the disk count near saturation), while\n"
        "random placement starts every admitted stream immediately at any\n"
        "utilization — Section 1's 'no synchronous access cycles' benefit.\n");
  }
  SCADDAR_CHECK(json.WriteFile("BENCH_startup.json"));
  if (!json_only) {
    std::printf("wrote BENCH_startup.json\n");
  }
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    }
  }
  if (!json_only) {
    scaddar::bench::PrintHeader(
        "EXP-N", "stream startup latency: random vs. constrained placement");
  }
  scaddar::Run(json_only);
  return 0;
}
