#ifndef SCADDAR_BENCH_BENCH_UTIL_H_
#define SCADDAR_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses. Each bench binary
// regenerates one table/figure from the paper (see DESIGN.md's
// per-experiment index) as deterministic, seed-fixed console tables, and
// the perf-tracking benches additionally emit a `BENCH_*.json` in one
// standardized schema (`BenchJson`) so the per-PR perf trajectory is
// machine-readable.

#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "random/sequence.h"

namespace scaddar::bench {

inline void PrintHeader(const std::string& experiment_id,
                        const std::string& title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------\n");
}

/// Deterministic per-object X0 streams for the experiments (the paper's
/// Section 5 setting uses 20 objects; callers pick counts and sizes).
inline std::vector<std::vector<uint64_t>> MakeObjects(uint64_t master_seed,
                                                      int64_t num_objects,
                                                      int64_t blocks_each,
                                                      PrngKind kind,
                                                      int bits) {
  std::vector<std::vector<uint64_t>> objects;
  objects.reserve(static_cast<size_t>(num_objects));
  for (int64_t m = 0; m < num_objects; ++m) {
    objects.push_back(
        X0Sequence::Create(kind, master_seed + static_cast<uint64_t>(m) * 7919,
                           bits)
            .value()
            .Materialize(blocks_each));
  }
  return objects;
}

// --- Timing -------------------------------------------------------------

/// Wall-clock seconds of one `work()` call.
template <typename Fn>
double TimeSeconds(Fn&& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Per-round wall-time aggregate of one measurement (warmup excluded).
struct RoundTiming {
  int64_t rounds = 0;
  double total_seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// The timing loop shared by the wall-clock benches: runs `round()`
/// `warmup_rounds` times untimed first — so cold-start effects (e.g. every
/// cursor window filling at once in round 0) don't masquerade as
/// steady-state cost — then `timed_rounds` times with per-round timing.
/// Each timed round's return value is handed to `observe` *outside* the
/// timed window, so accumulation cost never pollutes the measurement.
template <typename RoundFn, typename ObserveFn>
RoundTiming MeasureRounds(int64_t warmup_rounds, int64_t timed_rounds,
                          RoundFn&& round, ObserveFn&& observe) {
  for (int64_t i = 0; i < warmup_rounds; ++i) {
    round();
  }
  RoundTiming timing;
  timing.rounds = timed_rounds;
  std::vector<double> round_us;
  round_us.reserve(static_cast<size_t>(timed_rounds));
  for (int64_t i = 0; i < timed_rounds; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto result = round();
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    round_us.push_back(us);
    timing.total_seconds += us * 1e-6;
    observe(std::move(result));
  }
  std::sort(round_us.begin(), round_us.end());
  const auto percentile = [&](double p) {
    const auto index =
        static_cast<size_t>(p * static_cast<double>(round_us.size() - 1));
    return round_us[index];
  };
  if (!round_us.empty()) {
    timing.p50_us = percentile(0.50);
    timing.p99_us = percentile(0.99);
  }
  return timing;
}

/// Best-of-R: repeats `measure()` and keeps the result with the smallest
/// `seconds(result)`. Rounds are microseconds long, so a single repetition
/// is at the mercy of scheduler jitter; the minimum is the least-disturbed
/// run.
template <typename MeasureFn, typename SecondsFn>
auto BestOf(int64_t repetitions, MeasureFn&& measure, SecondsFn&& seconds) {
  auto best = measure();
  for (int64_t rep = 1; rep < repetitions; ++rep) {
    auto candidate = measure();
    if (seconds(candidate) < seconds(best)) {
      best = std::move(candidate);
    }
  }
  return best;
}

// --- Host metadata ------------------------------------------------------

/// What machine a BENCH_*.json came from. Perf numbers are only comparable
/// within one host (and one governor setting); the regression checker warns
/// when a baseline and a candidate disagree here.
struct HostInfo {
  std::string cpu_model;   // /proc/cpuinfo "model name" (first core).
  int64_t cores = 0;       // Online processors.
  std::string governor;    // cpu0's cpufreq governor ("unknown" without
                           // cpufreq, e.g. in containers).
  std::string kernel;      // uname -r.
};

/// First line of `path` matching `key:`, value part only; "" when absent.
inline std::string ReadTaggedLine(const char* path, std::string_view key) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) {
    return "";
  }
  char line[512];
  std::string value;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    std::string_view view(line);
    if (!view.starts_with(key)) {
      continue;
    }
    const size_t colon = view.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    view = view.substr(colon + 1);
    while (!view.empty() && (view.front() == ' ' || view.front() == '\t')) {
      view.remove_prefix(1);
    }
    while (!view.empty() && (view.back() == '\n' || view.back() == ' ')) {
      view.remove_suffix(1);
    }
    value = std::string(view);
    break;
  }
  std::fclose(file);
  return value;
}

/// Whole first line of `path`, trimmed; "" when unreadable.
inline std::string ReadFirstLine(const char* path) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) {
    return "";
  }
  char line[256];
  std::string value;
  if (std::fgets(line, sizeof(line), file) != nullptr) {
    value = line;
    while (!value.empty() &&
           (value.back() == '\n' || value.back() == ' ')) {
      value.pop_back();
    }
  }
  std::fclose(file);
  return value;
}

inline HostInfo QueryHost() {
  HostInfo host;
  host.cpu_model = ReadTaggedLine("/proc/cpuinfo", "model name");
  if (host.cpu_model.empty()) {
    host.cpu_model = "unknown";
  }
  host.cores = static_cast<int64_t>(sysconf(_SC_NPROCESSORS_ONLN));
  host.governor = ReadFirstLine(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (host.governor.empty()) {
    host.governor = "unknown";
  }
  utsname names{};
  host.kernel = uname(&names) == 0 ? names.release : "unknown";
  return host;
}

// --- Standardized BENCH_*.json ------------------------------------------

/// One numeric field of a `BenchJson` tier or path object. `decimals == 0`
/// prints a rounded integer, anything else a fixed-point double.
struct JsonMetric {
  const char* key;
  double value;
  int decimals;
};

/// Builds the standardized bench JSON document shared by `bench_serving`,
/// `bench_remap_throughput` and `bench_lookup`:
///
/// ```json
/// {
///   "experiment": "<name>",
///   "tiers": [
///     {"ops": N, "<tier metric>": ..., "<tier label>": "...",
///      "paths": {
///       "<path>": {"<metric>": ..., ...},
///       ...
///      }},
///     ...
///   ]
/// }
/// ```
///
/// One tier per workload point (op-log depth), one path per implementation
/// being compared (batch/scalar/store, simd/scalar, ...). Call order:
/// `BeginTier`, then tier metrics/labels, then `Path` per path, `EndTier`;
/// finally `Finish`/`WriteFile`.
class BenchJson {
 public:
  explicit BenchJson(const char* experiment) {
    const HostInfo host = QueryHost();
    json_ = "{\n  \"experiment\": \"";
    json_ += experiment;
    json_ += "\",\n  \"host\": {\"cpu\": \"";
    json_ += host.cpu_model;
    json_ += "\", \"cores\": ";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(host.cores));
    json_ += buffer;
    json_ += ", \"governor\": \"";
    json_ += host.governor;
    json_ += "\", \"kernel\": \"";
    json_ += host.kernel;
    json_ += "\"},\n  \"tiers\": [\n";
  }

  void BeginTier(int64_t ops) {
    if (!first_tier_) {
      json_ += ",\n";
    }
    first_tier_ = false;
    paths_open_ = false;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "    {\"ops\": %lld",
                  static_cast<long long>(ops));
    json_ += buffer;
  }

  void TierMetric(const char* key, double value, int decimals = 2) {
    json_ += ",\n     \"";
    json_ += key;
    json_ += "\": ";
    AppendNumber(value, decimals);
  }

  void TierLabel(const char* key, std::string_view value) {
    json_ += ",\n     \"";
    json_ += key;
    json_ += "\": \"";
    json_.append(value);
    json_ += "\"";
  }

  void Path(const char* name, std::initializer_list<JsonMetric> metrics) {
    json_ += paths_open_ ? ",\n" : ",\n     \"paths\": {\n";
    paths_open_ = true;
    json_ += "      \"";
    json_ += name;
    json_ += "\": {";
    bool first = true;
    for (const JsonMetric& metric : metrics) {
      if (!first) {
        json_ += ", ";
      }
      first = false;
      json_ += "\"";
      json_ += metric.key;
      json_ += "\": ";
      AppendNumber(metric.value, metric.decimals);
    }
    json_ += "}";
  }

  void EndTier() {
    if (paths_open_) {
      json_ += "\n     }";
    }
    json_ += "}";
  }

  std::string Finish() const { return json_ + "\n  ]\n}\n"; }

  /// Writes the completed document; returns false on I/O failure.
  bool WriteFile(const char* path) const {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      return false;
    }
    const std::string document = Finish();
    const bool ok =
        std::fwrite(document.data(), 1, document.size(), out) ==
        document.size();
    return std::fclose(out) == 0 && ok;
  }

 private:
  void AppendNumber(double value, int decimals) {
    char buffer[48];
    if (decimals == 0) {
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(value < 0 ? value - 0.5
                                                     : value + 0.5));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    }
    json_ += buffer;
  }

  std::string json_;
  bool first_tier_ = true;
  bool paths_open_ = false;
};

}  // namespace scaddar::bench

#endif  // SCADDAR_BENCH_BENCH_UTIL_H_
