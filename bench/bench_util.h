#ifndef SCADDAR_BENCH_BENCH_UTIL_H_
#define SCADDAR_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses. Each bench binary
// regenerates one table/figure from the paper (see DESIGN.md's
// per-experiment index) as deterministic, seed-fixed console tables.

#include <cstdio>
#include <string>
#include <vector>

#include "random/sequence.h"

namespace scaddar::bench {

inline void PrintHeader(const std::string& experiment_id,
                        const std::string& title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------\n");
}

/// Deterministic per-object X0 streams for the experiments (the paper's
/// Section 5 setting uses 20 objects; callers pick counts and sizes).
inline std::vector<std::vector<uint64_t>> MakeObjects(uint64_t master_seed,
                                                      int64_t num_objects,
                                                      int64_t blocks_each,
                                                      PrngKind kind,
                                                      int bits) {
  std::vector<std::vector<uint64_t>> objects;
  objects.reserve(static_cast<size_t>(num_objects));
  for (int64_t m = 0; m < num_objects; ++m) {
    objects.push_back(
        X0Sequence::Create(kind, master_seed + static_cast<uint64_t>(m) * 7919,
                           bits)
            .value()
            .Materialize(blocks_each));
  }
  return objects;
}

}  // namespace scaddar::bench

#endif  // SCADDAR_BENCH_BENCH_UTIL_H_
