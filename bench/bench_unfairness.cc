// EXP-B / EXP-C — Section 4.3: the shrinking random range.
//   (1) Rule-of-thumb table: max supported ops k for (b, eps, avg disks),
//       reproducing the paper's worked example (b=64, eps=1%, 16 disks
//       -> k = 13) and the Section 5 setting (b=32, eps=5%, 8 disks -> 8).
//   (2) Lemma 4.3 in action: walk an op log, print Pi_k, the guaranteed
//       range R_k, the predicted unfairness bound f(R_k, N_k) and the
//       *measured* unfairness from an actual placement.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/bounds.h"
#include "core/mapper.h"
#include "stats/load_metrics.h"
#include "util/intmath.h"

namespace scaddar {
namespace {

void RuleOfThumbTable() {
  std::printf("\n--- EXP-C: rule-of-thumb max operations "
              "k+1 <= (b - log2(1/eps)) / log2(avg disks) ---\n");
  std::printf("%-6s %-8s", "bits", "eps");
  for (const int disks : {4, 8, 16, 32, 64}) {
    std::printf("  avg=%-4d", disks);
  }
  std::printf("\n");
  for (const int bits : {32, 48, 64}) {
    for (const double eps : {0.05, 0.01, 0.001}) {
      std::printf("%-6d %-8.3f", bits, eps);
      for (const int disks : {4, 8, 16, 32, 64}) {
        std::printf("  %-8lld",
                    static_cast<long long>(RuleOfThumbMaxOps(
                        bits, eps, static_cast<double>(disks))));
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper check: b=64, eps=1%%, 16 disks -> k = %lld "
              "(paper says 13)\n",
              static_cast<long long>(RuleOfThumbMaxOps(64, 0.01, 16.0)));
  std::printf("paper check: b=32, eps=5%%, 8 disks  -> k = %lld "
              "(paper says ~8)\n",
              static_cast<long long>(RuleOfThumbMaxOps(32, 0.05, 8.0)));
}

void LemmaWalk() {
  constexpr int kBits = 32;
  constexpr double kEps = 0.05;
  const uint64_t r0 = MaxRandomForBits(kBits);
  std::printf("\n--- EXP-B: Lemma 4.3 walk (b=%d, eps=%.0f%%, N0=8, +1 disk "
              "per op) ---\n",
              kBits, kEps * 100);
  std::printf("%-4s %-6s %-14s %-12s %-12s %-12s %-6s\n", "op", "disks",
              "Pi_k", "R_k", "bound f", "measured", "gate");

  OpLog log = OpLog::Create(8).value();
  const std::vector<std::vector<uint64_t>> objects =
      bench::MakeObjects(0xfa1aull, 20, 5000, PrngKind::kPcg32, kBits);
  for (int op = 0; op <= 10; ++op) {
    if (op > 0) {
      SCADDAR_CHECK(log.Append(ScalingOp::Add(1).value()).ok());
    }
    const Mapper mapper(&log);
    std::vector<int64_t> counts(static_cast<size_t>(log.current_disks()), 0);
    for (const std::vector<uint64_t>& x0 : objects) {
      for (const uint64_t x : x0) {
        ++counts[static_cast<size_t>(mapper.LocateSlot(x))];
      }
    }
    const LoadMetrics metrics = ComputeLoadMetrics(counts);
    const uint64_t range = RangeAfter(r0, log, log.num_ops());
    const double bound = UnfairnessAfter(r0, log);
    std::printf("%-4d %-6lld %-14.4g %-12llu %-12.4g %-12.4f %-6s\n", op,
                static_cast<long long>(log.current_disks()),
                static_cast<double>(log.pi().value()),
                static_cast<unsigned long long>(range), bound,
                metrics.unfairness,
                log.SatisfiesTolerance(r0, kEps) ? "ok" : "STOP");
  }
  bench::PrintRule();
  std::printf(
      "Expected shape: Pi_k grows geometrically; the guaranteed range R_k\n"
      "shrinks by ~N per op; the gate flips to STOP around op 8 (the\n"
      "paper's Section 5 threshold), after which the paper recommends a\n"
      "full redistribution.\n");
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-B/EXP-C", "range shrinkage, unfairness bound and rule of thumb "
      "(Section 4.3)");
  scaddar::RuleOfThumbTable();
  scaddar::LemmaWalk();
  return 0;
}
