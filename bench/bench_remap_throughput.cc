// EXP-F — RF() throughput: how fast a whole redistribution plan can be
// computed. Planning is pure computation (the actual I/O is the
// migration's job), so this measures blocks/second of REMAP-chain
// evaluation plus the raw single-step REMAP primitives.
//
// Three tiers are measured (docs/batch_engine.md explains how to read
// them):
//  - *Mapper variants: the scalar reference — one Mapper replay per block
//    per epoch (the pre-batch-engine planner);
//  - default variants: the step-major CompiledLog batch kernels on one
//    thread;
//  - *Parallel variants: the batch kernels sharded across a ThreadPool
//    (on a single-core host these show pool overhead, not speedup).
//
// Usage: bench_remap_throughput [--json-only] [google-benchmark flags]
// After the google-benchmark suite, the binary measures the batch kernel
// with the SIMD backend pinned on vs. off and writes BENCH_remap.json
// (schema shared with BENCH_serving.json; see bench_util.h). --json-only
// skips the google-benchmark suite.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "bench/bench_util.h"
#include "core/compiled_log.h"
#include "core/redistribution.h"
#include "random/sequence.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace scaddar {
namespace {

void BM_RemapAddStep(benchmark::State& state) {
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  const std::vector<uint64_t> x = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemapAdd(x[i++ & 4095], 8, 9));
  }
}
BENCHMARK(BM_RemapAddStep);

void BM_RemapRemoveStep(benchmark::State& state) {
  const ScalingOp op = ScalingOp::Remove({3}).value();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value();
  const std::vector<uint64_t> x = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemapRemove(x[i++ & 4095], 8, 7, op));
  }
}
BENCHMARK(BM_RemapRemoveStep);

// Batch-kernel planner (the default PlanOperation path), single thread.
void BM_PlanOperation(benchmark::State& state) {
  const int64_t blocks = state.range(0);
  OpLog log = OpLog::Create(8).value();
  SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(blocks);
  for (auto _ : state) {
    const MovePlan plan = PlanOperation(log, 1, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_PlanOperation)->Arg(10000)->Arg(100000)->Arg(1000000);

// Scalar reference: one Mapper replay per block per epoch.
void BM_PlanOperationMapper(benchmark::State& state) {
  const int64_t blocks = state.range(0);
  OpLog log = OpLog::Create(8).value();
  SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(blocks);
  for (auto _ : state) {
    const MovePlan plan = PlanOperationScalar(log, 1, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_PlanOperationMapper)->Arg(10000)->Arg(100000)->Arg(1000000);

// Sharded planner on a persistent pool at 1M blocks. Thread count is the
// benchmark argument; near-linear scaling needs as many physical cores.
void BM_PlanOperationParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  OpLog log = OpLog::Create(8).value();
  SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(1000000);
  ThreadPool pool(threads);
  ParallelPlanOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    const MovePlan plan = PlanOperation(log, 1, {{1, &x0}}, options);
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_PlanOperationParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

OpLog LongAddHistory(int64_t ops) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < ops; ++j) {
    SCADDAR_CHECK(log.Append(ScalingOp::Add(1).value()).ok());
  }
  return log;
}

void BM_PlanAfterLongHistory(benchmark::State& state) {
  const int64_t ops = state.range(0);
  const OpLog log = LongAddHistory(ops);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 4, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(100000);
  for (auto _ : state) {
    const MovePlan plan = PlanOperation(log, ops, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  state.SetLabel("ops=" + std::to_string(ops));
}
BENCHMARK(BM_PlanAfterLongHistory)->Arg(1)->Arg(8)->Arg(32);

void BM_PlanAfterLongHistoryMapper(benchmark::State& state) {
  const int64_t ops = state.range(0);
  const OpLog log = LongAddHistory(ops);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 4, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(100000);
  for (auto _ : state) {
    const MovePlan plan = PlanOperationScalar(log, ops, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  state.SetLabel("ops=" + std::to_string(ops));
}
BENCHMARK(BM_PlanAfterLongHistoryMapper)->Arg(1)->Arg(8)->Arg(32);

// --- BENCH_remap.json: SIMD vs. scalar batch-kernel throughput. ---

/// Mixed-churn log matching bench_lookup's shape: two adds, then a removal.
OpLog MixedHistory(int64_t ops) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < ops; ++j) {
    const ScalingOp op = (j % 3 == 2)
                             ? ScalingOp::Remove({j % log.current_disks()})
                                   .value()
                             : ScalingOp::Add(1).value();
    SCADDAR_CHECK(log.Append(op).ok());
  }
  return log;
}

struct KernelResult {
  int64_t blocks = 0;
  double seconds = 0;

  double BlocksPerSecond() const {
    return seconds > 0 ? static_cast<double>(blocks) / seconds : 0;
  }
};

/// Best-of-5 single pass of LocatePhysicalBatch over `x0` with the
/// dispatched backend pinned to `level` (one warmup pass first).
KernelResult MeasureKernel(const CompiledLog& compiled,
                           const std::vector<uint64_t>& x0, SimdLevel level) {
  SetActiveSimdLevel(level);
  std::vector<PhysicalDiskId> out(x0.size());
  const auto one_pass = [&] {
    KernelResult result;
    result.blocks = static_cast<int64_t>(x0.size());
    result.seconds = bench::TimeSeconds([&] {
      compiled.LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                   std::span<PhysicalDiskId>(out));
    });
    benchmark::DoNotOptimize(out.data());
    return result;
  };
  one_pass();
  const KernelResult best = bench::BestOf(
      5, one_pass, [](const KernelResult& r) { return r.seconds; });
  ResetActiveSimdLevel();
  return best;
}

void WriteRemapJson() {
  // On non-AVX2 hosts the "simd" path dispatches to the scalar backend
  // (speedup ~1.0); the tier records which level actually ran.
  const SimdLevel simd_level = DetectedSimdLevel();
  const std::string level_name(SimdLevelName(simd_level));
  constexpr int64_t kBlocks = 1'000'000;
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 4, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(kBlocks);
  bench::PrintRule();
  std::printf("batch kernel, %lld blocks: %s vs. scalar\n",
              static_cast<long long>(kBlocks), level_name.c_str());
  std::printf("%-6s %-8s %-10s %-16s %-16s %-10s\n", "ops", "history",
              "backend", "blocks/s", "seconds", "speedup");
  bench::BenchJson json("bench_remap_throughput");
  struct Tier {
    int64_t ops;
    const char* history;
  };
  for (const Tier tier : {Tier{1, "adds"}, Tier{8, "adds"}, Tier{32, "adds"},
                          Tier{32, "mixed"}}) {
    const OpLog log = std::strcmp(tier.history, "adds") == 0
                          ? LongAddHistory(tier.ops)
                          : MixedHistory(tier.ops);
    const CompiledLog compiled(log);
    const KernelResult simd = MeasureKernel(compiled, x0, simd_level);
    const KernelResult scalar =
        MeasureKernel(compiled, x0, SimdLevel::kScalar);
    const double speedup =
        simd.seconds > 0 ? scalar.seconds / simd.seconds : 0;
    std::printf("%-6lld %-8s %-10s %-16.0f %-16.6f %-10s\n",
                static_cast<long long>(tier.ops), tier.history,
                level_name.c_str(), simd.BlocksPerSecond(), simd.seconds,
                "");
    std::printf("%-6lld %-8s %-10s %-16.0f %-16.6f %-10.2f\n",
                static_cast<long long>(tier.ops), tier.history, "scalar",
                scalar.BlocksPerSecond(), scalar.seconds, speedup);
    json.BeginTier(tier.ops);
    json.TierLabel("history", tier.history);
    json.TierLabel("simd_level", SimdLevelName(simd_level));
    json.TierMetric("speedup_simd_vs_scalar", speedup);
    json.Path("simd", {{"blocks", static_cast<double>(simd.blocks), 0},
                       {"seconds", simd.seconds, 6},
                       {"blocks_per_second", simd.BlocksPerSecond(), 0}});
    json.Path("scalar",
              {{"blocks", static_cast<double>(scalar.blocks), 0},
               {"seconds", scalar.seconds, 6},
               {"blocks_per_second", scalar.BlocksPerSecond(), 0}});
    json.EndTier();
  }
  SCADDAR_CHECK(json.WriteFile("BENCH_remap.json"));
  std::printf("wrote BENCH_remap.json\n");
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool json_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (!json_only) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  scaddar::WriteRemapJson();
  return 0;
}
