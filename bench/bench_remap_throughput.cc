// EXP-F — RF() throughput: how fast a whole redistribution plan can be
// computed. Planning is pure computation (the actual I/O is the
// migration's job), so this measures blocks/second of REMAP-chain
// evaluation plus the raw single-step REMAP primitives.
//
// Three tiers are measured (docs/batch_engine.md explains how to read
// them):
//  - *Mapper variants: the scalar reference — one Mapper replay per block
//    per epoch (the pre-batch-engine planner);
//  - default variants: the step-major CompiledLog batch kernels on one
//    thread;
//  - *Parallel variants: the batch kernels sharded across a ThreadPool
//    (on a single-core host these show pool overhead, not speedup).

#include <benchmark/benchmark.h>

#include "core/redistribution.h"
#include "random/sequence.h"
#include "util/thread_pool.h"

namespace scaddar {
namespace {

void BM_RemapAddStep(benchmark::State& state) {
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 1, 64).value();
  const std::vector<uint64_t> x = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemapAdd(x[i++ & 4095], 8, 9));
  }
}
BENCHMARK(BM_RemapAddStep);

void BM_RemapRemoveStep(benchmark::State& state) {
  const ScalingOp op = ScalingOp::Remove({3}).value();
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 2, 64).value();
  const std::vector<uint64_t> x = seq.Materialize(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemapRemove(x[i++ & 4095], 8, 7, op));
  }
}
BENCHMARK(BM_RemapRemoveStep);

// Batch-kernel planner (the default PlanOperation path), single thread.
void BM_PlanOperation(benchmark::State& state) {
  const int64_t blocks = state.range(0);
  OpLog log = OpLog::Create(8).value();
  SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(blocks);
  for (auto _ : state) {
    const MovePlan plan = PlanOperation(log, 1, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_PlanOperation)->Arg(10000)->Arg(100000)->Arg(1000000);

// Scalar reference: one Mapper replay per block per epoch.
void BM_PlanOperationMapper(benchmark::State& state) {
  const int64_t blocks = state.range(0);
  OpLog log = OpLog::Create(8).value();
  SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(blocks);
  for (auto _ : state) {
    const MovePlan plan = PlanOperationScalar(log, 1, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_PlanOperationMapper)->Arg(10000)->Arg(100000)->Arg(1000000);

// Sharded planner on a persistent pool at 1M blocks. Thread count is the
// benchmark argument; near-linear scaling needs as many physical cores.
void BM_PlanOperationParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  OpLog log = OpLog::Create(8).value();
  SCADDAR_CHECK(log.Append(ScalingOp::Add(2).value()).ok());
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 3, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(1000000);
  ThreadPool pool(threads);
  ParallelPlanOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    const MovePlan plan = PlanOperation(log, 1, {{1, &x0}}, options);
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_PlanOperationParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

OpLog LongAddHistory(int64_t ops) {
  OpLog log = OpLog::Create(8).value();
  for (int64_t j = 0; j < ops; ++j) {
    SCADDAR_CHECK(log.Append(ScalingOp::Add(1).value()).ok());
  }
  return log;
}

void BM_PlanAfterLongHistory(benchmark::State& state) {
  const int64_t ops = state.range(0);
  const OpLog log = LongAddHistory(ops);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 4, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(100000);
  for (auto _ : state) {
    const MovePlan plan = PlanOperation(log, ops, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  state.SetLabel("ops=" + std::to_string(ops));
}
BENCHMARK(BM_PlanAfterLongHistory)->Arg(1)->Arg(8)->Arg(32);

void BM_PlanAfterLongHistoryMapper(benchmark::State& state) {
  const int64_t ops = state.range(0);
  const OpLog log = LongAddHistory(ops);
  auto seq = X0Sequence::Create(PrngKind::kSplitMix64, 4, 64).value();
  const std::vector<uint64_t> x0 = seq.Materialize(100000);
  for (auto _ : state) {
    const MovePlan plan = PlanOperationScalar(log, ops, {{1, &x0}});
    benchmark::DoNotOptimize(plan.num_moves());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  state.SetLabel("ops=" + std::to_string(ops));
}
BENCHMARK(BM_PlanAfterLongHistoryMapper)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace scaddar

BENCHMARK_MAIN();
