// EXP-G (extension) — the full comparator matrix: SCADDAR (governed by the
// Section 4.3 ε budget, ungoverned, and at full 64-bit width) against the
// stateless comparators (jump consistent hash, consistent-hash ring,
// round-hashing, segment placement) and the O(B) directory oracle, over a
// mixed add/remove churn at >= 1M blocks.
//
// Four figures of merit per policy, the EXP-G matrix:
//  - moved_blocks / movement_overhead: cumulative blocks moved over the
//    churn vs. the theoretical minimum (Σ theoretical_fraction x B).
//  - final_cov / final_unfairness: load balance after the churn (the
//    paper's RO2 metrics).
//  - lookup_blocks_per_second: batch AF() resolution speed over the whole
//    object (the serving path's per-round cost driver).
//  - time_to_rebalance_rounds: modeled rounds to converge each op's moves
//    with 4 blocks/round/disk of migration bandwidth —
//    Σ ceil(moved_op / (4 x disks_after)). A policy that moves little but
//    concentrates moves on one disk rebalances no faster than one that
//    moves more across all spindles; this metric is where that shows.
//
// The governed-vs-ungoverned pair is the tentpole's headline: scaddar_b20
// runs a deliberately narrow 20-bit generator so the ε = 0.05 budget is
// exhausted mid-churn. Ungoverned, its CoV and unfairness degrade past
// every comparator; governed, a `ToleranceGovernor` consults the op log
// before each op and rebases (fresh seeds, empty log — the adaptive
// driver's `FullRedistribution`) exactly when the next op would violate
// the bound, paying full-reshuffle movement to restore SCADDAR-grade
// balance. `rebases` counts those triggers.
//
// Usage: bench_comparators [--smoke] [--json-only]
//   --smoke      tiny sizes, no BENCH_comparators.json (CI wiring check).
//   --json-only  suppress the console tables, still write the JSON.
// The full run writes BENCH_comparators.json to the working directory.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/governor.h"
#include "placement/registry.h"
#include "stats/load_metrics.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

constexpr int64_t kInitialDisks = 16;
constexpr uint64_t kSeed = 0xc0de5caddaull;
constexpr double kEps = 0.05;
constexpr int kNarrowBits = 20;
// Migration bandwidth model for time_to_rebalance: blocks any one disk
// moves per round (matches the default DiskSpec's bandwidth headroom).
constexpr int64_t kMoveBandwidth = 4;

// A realistic mixed churn on N0=16: grow, retire interior groups, grow.
// Disk count trajectory: 16 20 19 21 19 25 24 26 24 28 27 30 29.
const std::vector<const char*> kChurn = {"A4", "R3",  "A2", "R0,5",
                                         "A6", "R11", "A2", "R2,7",
                                         "A4", "R1",  "A3", "R6"};

struct RunResult {
  int64_t moved_blocks = 0;
  double min_required = 0.0;
  double final_cov = 0.0;
  double final_unfairness = 0.0;
  double lookup_blocks_per_second = 0.0;
  int64_t time_to_rebalance_rounds = 0;
  int64_t rebases = 0;
};

int64_t RoundsFor(int64_t moved, int64_t disks) {
  const int64_t per_round = kMoveBandwidth * disks;
  return (moved + per_round - 1) / per_round;
}

/// Batch-lookup throughput over the whole object, best of 3.
double MeasureLookup(const PlacementPolicy& policy, int64_t blocks) {
  std::vector<PhysicalDiskId> locations;
  const double seconds = bench::BestOf(
      3,
      [&] {
        return bench::TimeSeconds(
            [&] { policy.LocateAllBlocks(1, locations); });
      },
      [](double s) { return s; });
  return static_cast<double>(blocks) / seconds;
}

/// One policy through the churn. When `governor` is non-null, every op is
/// gated the way `CmServer::MaybeRebaseBeforeOp` gates it: advice of
/// kRebaseFirst triggers a rebase — fresh policy over the same disks, fresh
/// X0 at a bumped generation — whose movement and convergence time are
/// charged to the run (no free lunch: governed balance costs reshuffles).
RunResult RunChurn(std::string_view name, int64_t blocks, int bits,
                   const ToleranceGovernor* governor) {
  RunResult result;
  PolicyOptions options;
  options.seed = kSeed ^ 0xd15c5ull;
  std::unique_ptr<PlacementPolicy> policy =
      MakePolicy(name, kInitialDisks, options).value();
  int64_t generation = 0;
  const auto materialize = [&] {
    return bench::MakeObjects(kSeed + static_cast<uint64_t>(generation) *
                                          0x9e3779b97f4a7c15ull,
                              1, blocks, PrngKind::kSplitMix64, bits)[0];
  };
  SCADDAR_CHECK(policy->AddObject(1, materialize()).ok());
  for (const char* text : kChurn) {
    const ScalingOp op = ScalingOp::Parse(text).value();
    if (governor != nullptr &&
        governor->Consider(policy->log(), op) ==
            ToleranceGovernor::Advice::kRebaseFirst) {
      // Rebase first: the op becomes affordable on the fresh, empty log.
      const std::vector<PhysicalDiskId> before = policy->AssignmentSnapshot();
      std::unique_ptr<PlacementPolicy> fresh =
          MakePolicyWithDisks(name, policy->log().physical_disks(), options)
              .value();
      ++generation;
      SCADDAR_CHECK(fresh->AddObject(1, materialize()).ok());
      policy = std::move(fresh);
      const MovementStats stats =
          CompareAssignments(before, policy->AssignmentSnapshot(),
                             policy->current_disks(),
                             policy->current_disks());
      result.moved_blocks += stats.moved_blocks;
      result.time_to_rebalance_rounds +=
          RoundsFor(stats.moved_blocks, policy->current_disks());
      ++result.rebases;
    }
    const int64_t n_prev = policy->current_disks();
    const std::vector<PhysicalDiskId> before = policy->AssignmentSnapshot();
    SCADDAR_CHECK(policy->ApplyOp(op).ok());
    const MovementStats stats = CompareAssignments(
        before, policy->AssignmentSnapshot(), n_prev,
        policy->current_disks());
    result.moved_blocks += stats.moved_blocks;
    result.min_required +=
        stats.theoretical_fraction * static_cast<double>(blocks);
    result.time_to_rebalance_rounds +=
        RoundsFor(stats.moved_blocks, policy->current_disks());
  }
  const LoadMetrics metrics = ComputeLoadMetrics(policy->PerDiskCounts());
  result.final_cov = metrics.coefficient_of_variation;
  // An empty disk makes the measured unfairness infinite; clamp for JSON.
  result.final_unfairness = std::isfinite(metrics.unfairness)
                                ? std::min(metrics.unfairness, 999.0)
                                : 999.0;
  result.lookup_blocks_per_second = MeasureLookup(*policy, blocks);
  return result;
}

void Run(bool smoke, bool json_only) {
  const int64_t blocks = smoke ? 32'768 : 1'048'576;
  const ToleranceGovernor governor(kNarrowBits, kEps);

  struct Entry {
    const char* label;
    std::string_view policy;
    int bits;
    const ToleranceGovernor* governor;
  };
  const std::vector<Entry> entries = {
      {"scaddar", "scaddar", 64, nullptr},
      {"scaddar_b20", "scaddar", kNarrowBits, nullptr},
      {"scaddar_b20_governed", "scaddar", kNarrowBits, &governor},
      {"jump", "jump", 64, nullptr},
      {"chash", "chash", 64, nullptr},
      {"roundhash", "roundhash", 64, nullptr},
      {"segment", "segment", 64, nullptr},
      {"directory", "directory", 64, nullptr},
  };

  if (!json_only) {
    std::printf("churn on N0=%lld:", static_cast<long long>(kInitialDisks));
    for (const char* op : kChurn) {
      std::printf(" %s", op);
    }
    std::printf("  (%lld blocks; governed pair: b=%d, eps=%.2f)\n\n",
                static_cast<long long>(blocks), kNarrowBits, kEps);
    std::printf("%-22s %-12s %-10s %-10s %-10s %-14s %-10s %-8s\n",
                "policy", "moved", "overhead", "CoV", "unfair",
                "lookup-blk/s", "rebal-rds", "rebases");
  }

  bench::BenchJson json("comparators");
  json.BeginTier(static_cast<int64_t>(kChurn.size()));
  json.TierMetric("blocks", static_cast<double>(blocks), 0);
  json.TierMetric("initial_disks", static_cast<double>(kInitialDisks), 0);
  json.TierLabel("churn", "mixed-add-remove");
  for (const Entry& entry : entries) {
    const RunResult result =
        RunChurn(entry.policy, blocks, entry.bits, entry.governor);
    const double overhead =
        result.min_required > 0
            ? static_cast<double>(result.moved_blocks) / result.min_required
            : 0.0;
    if (!json_only) {
      std::printf(
          "%-22s %-12lld %-10.2f %-10.5f %-10.3f %-14.3g %-10lld %-8lld\n",
          entry.label, static_cast<long long>(result.moved_blocks), overhead,
          result.final_cov, result.final_unfairness,
          result.lookup_blocks_per_second,
          static_cast<long long>(result.time_to_rebalance_rounds),
          static_cast<long long>(result.rebases));
    }
    json.Path(entry.label,
              {{"moved_blocks", static_cast<double>(result.moved_blocks), 0},
               {"movement_overhead", overhead, 3},
               {"final_cov", result.final_cov, 5},
               {"final_unfairness", result.final_unfairness, 4},
               {"lookup_blocks_per_second", result.lookup_blocks_per_second,
                0},
               {"time_to_rebalance_rounds",
                static_cast<double>(result.time_to_rebalance_rounds), 0},
               {"rebases", static_cast<double>(result.rebases), 0}});
  }
  json.EndTier();

  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Expected shape: scaddar tracks directory's ~1x movement with\n"
        "O(ops) state; scaddar_b20 ungoverned degrades (CoV/unfairness\n"
        "worst in the table) once the 20-bit budget is spent; the governed\n"
        "twin pays rebase reshuffles to stay at SCADDAR-grade balance.\n"
        "jump/roundhash move more under interior removals; segment moves\n"
        "minimally with exact shares; chash balances worst of the\n"
        "stateless group.\n");
  }
  if (!smoke) {
    SCADDAR_CHECK(json.WriteFile("BENCH_comparators.json"));
    if (!json_only) {
      std::printf("\nwrote BENCH_comparators.json\n");
    }
  }
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool smoke = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    }
  }
  if (!json_only) {
    scaddar::bench::PrintHeader(
        "EXP-G",
        "comparator matrix: governed/ungoverned SCADDAR vs. stateless "
        "placements");
  }
  scaddar::Run(smoke, json_only);
  return 0;
}
