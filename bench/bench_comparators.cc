// EXP-G (extension) — SCADDAR vs. the modern stateless comparators (jump
// consistent hash, consistent-hash ring) and the paper-era baselines over a
// mixed add/remove churn: cumulative movement overhead and final balance.
// This is the ablation the calibration notes ask for ("consistent hashing,
// jump hash, CRUSH cover this space").

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "placement/registry.h"
#include "stats/load_metrics.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

constexpr int64_t kBlocks = 150000;
constexpr int64_t kInitialDisks = 10;

// A realistic churn: grow, retire odd disks, grow again.
const std::vector<const char*> kChurn = {"A2", "R3",  "A1", "R0,5",
                                         "A3", "R11", "A1", "R2"};

void Run() {
  std::printf("churn on N0=%lld: ", static_cast<long long>(kInitialDisks));
  for (const char* op : kChurn) {
    std::printf("%s ", op);
  }
  std::printf(" (%lld blocks)\n\n", static_cast<long long>(kBlocks));
  std::printf("%-12s %-14s %-14s %-12s %-12s %-10s\n", "policy",
              "moved-total", "min-required", "overhead", "final-CoV",
              "state");
  const std::vector<std::vector<uint64_t>> objects =
      bench::MakeObjects(0xc0deull, 1, kBlocks, PrngKind::kSplitMix64, 64);
  for (const std::string_view name : KnownPolicyNames()) {
    auto policy = MakePolicy(name, kInitialDisks).value();
    SCADDAR_CHECK(policy->AddObject(1, objects[0]).ok());
    int64_t moved_total = 0;
    double min_required = 0.0;
    for (const char* text : kChurn) {
      const ScalingOp op = ScalingOp::Parse(text).value();
      const int64_t n_prev = policy->current_disks();
      const std::vector<PhysicalDiskId> before =
          policy->AssignmentSnapshot();
      SCADDAR_CHECK(policy->ApplyOp(op).ok());
      const std::vector<PhysicalDiskId> after = policy->AssignmentSnapshot();
      const MovementStats stats = CompareAssignments(
          before, after, n_prev, policy->current_disks());
      moved_total += stats.moved_blocks;
      min_required +=
          stats.theoretical_fraction * static_cast<double>(kBlocks);
    }
    const LoadMetrics metrics = ComputeLoadMetrics(policy->PerDiskCounts());
    const char* state = name == "directory" ? "O(B) directory"
                        : name == "chash"   ? "O(N*vnodes) ring"
                                            : "O(ops) log";
    std::printf("%-12.*s %-14lld %-14.0f %-12.2f %-12.5f %-10s\n",
                static_cast<int>(name.size()), name.data(),
                static_cast<long long>(moved_total), min_required,
                static_cast<double>(moved_total) / min_required,
                metrics.coefficient_of_variation, state);
  }
  bench::PrintRule();
  std::printf(
      "Expected shape: scaddar matches directory's ~1.0x movement with\n"
      "O(ops) state (the paper's point); jump pays ~1.5-2x under middle\n"
      "removals; chash moves minimally but balances worse (CoV ~10x\n"
      "scaddar's); mod/roundrobin move orders of magnitude more.\n");
}

}  // namespace
}  // namespace scaddar

int main() {
  scaddar::bench::PrintHeader(
      "EXP-G", "SCADDAR vs. jump hash / consistent hashing under churn");
  scaddar::Run();
  return 0;
}
