// EXP-D — RO1: measured moved fraction vs. the theoretical minimum z_j
// (Definition 3.4 Eq. 1) for disk additions and removals, across all
// placement policies. SCADDAR, directory, jump (additions) and chash sit
// at overhead ~1.0x; mod and roundrobin move nearly everything.
//
// Usage: bench_movement [--json-only]
//   --json-only  suppress the console tables, still write the JSON.
// Every run writes BENCH_movement.json to the working directory.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "placement/analysis.h"
#include "placement/registry.h"
#include "stats/movement.h"

namespace scaddar {
namespace {

constexpr int64_t kBlocks = 200000;

struct Scenario {
  const char* label;
  int64_t n0;
  const char* op;
};

void Run(bool json_only) {
  const std::vector<Scenario> scenarios = {
      {"add 1 disk to 8", 8, "A1"},
      {"add 4 disks to 8", 8, "A4"},
      {"add 1 disk to 32", 32, "A1"},
      {"remove 1 of 8 (middle)", 8, "R3"},
      {"remove 1 of 8 (last)", 8, "R7"},
      {"remove 4 of 16", 16, "R2,7,9,14"},
  };
  if (!json_only) {
    std::printf("%-26s %-8s", "scenario", "z_j");
    for (const std::string_view name : KnownPolicyNames()) {
      std::printf(" %10.*s", static_cast<int>(name.size()), name.data());
    }
    std::printf("\n");
    std::printf("%-26s %-8s", "", "");
    for (size_t i = 0; i < KnownPolicyNames().size(); ++i) {
      std::printf(" %10s", "overhead");
    }
    std::printf("\n");
  }

  bench::BenchJson json("bench_movement");
  int64_t tier = 0;
  for (const Scenario& scenario : scenarios) {
    const ScalingOp op = ScalingOp::Parse(scenario.op).value();
    const int64_t n_cur = scenario.n0 + op.delta();
    const double z_j = TheoreticalMoveFraction(scenario.n0, n_cur);
    if (!json_only) {
      std::printf("%-26s %-8.4f", scenario.label, z_j);
    }
    json.BeginTier(tier++);
    json.TierLabel("scenario", scenario.label);
    json.TierMetric("z_j", z_j, 4);
    for (const std::string_view name : KnownPolicyNames()) {
      auto policy = MakePolicy(name, scenario.n0).value();
      const std::vector<std::vector<uint64_t>> objects = bench::MakeObjects(
          0x30feull, 1, kBlocks, PrngKind::kSplitMix64, 64);
      SCADDAR_CHECK(policy->AddObject(1, objects[0]).ok());
      const std::vector<PhysicalDiskId> before = policy->AssignmentSnapshot();
      const double apply_seconds =
          bench::TimeSeconds([&] { SCADDAR_CHECK(policy->ApplyOp(op).ok()); });
      const std::vector<PhysicalDiskId> after = policy->AssignmentSnapshot();
      const MovementStats stats =
          CompareAssignments(before, after, scenario.n0, n_cur);
      if (!json_only) {
        std::printf(" %9.2fx", stats.overhead_ratio);
      }
      json.Path(std::string(name).c_str(),
                {{"overhead_ratio", stats.overhead_ratio, 3},
                 {"moved_fraction", stats.moved_fraction, 4},
                 {"apply_us", apply_seconds * 1e6, 1}});
    }
    json.EndTier();
    if (!json_only) {
      std::printf("\n");
    }
  }
  if (!json_only) {
    bench::PrintRule();
    // EXP-M closure: measured vs. closed-form movement for the analytic
    // policies (scaddar: z_j; mod/roundrobin: 1 - min*gcd/(a*b) by CRT).
    std::printf("\nanalytic cross-check (moved fraction, additions):\n");
    std::printf("%-16s %-10s %-10s %-12s %-12s\n", "transition", "z_j",
                "mod-analytic", "mod-measured", "scaddar-meas");
  }
  for (const auto& [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {8, 9}, {8, 12}, {4, 8}, {16, 17}}) {
    const ScalingOp op = ScalingOp::Add(b - a).value();
    const auto measure = [&](const char* name) {
      return EstimateMovedFraction(
                 [&, policy_name = name](int64_t trial) {
                   PolicyOptions options;
                   options.seed = static_cast<uint64_t>(trial) + 3;
                   return std::move(MakePolicy(policy_name, a, options))
                       .value();
                 },
                 op, /*trials=*/4, /*blocks=*/50000, 0x117u)
          .mean;
    };
    const double mod_measured = measure("mod");
    const double scaddar_measured = measure("scaddar");
    if (!json_only) {
      std::printf("%2lld -> %-10lld %-10.4f %-10.4f %-12.4f %-12.4f\n",
                  static_cast<long long>(a), static_cast<long long>(b),
                  TheoreticalMoveFraction(a, b),
                  ExpectedMoveFractionMod(a, b), mod_measured,
                  scaddar_measured);
    }
    json.BeginTier(tier++);
    json.TierLabel("scenario", "analytic cross-check");
    json.TierMetric("n0", static_cast<double>(a), 0);
    json.TierMetric("n1", static_cast<double>(b), 0);
    json.TierMetric("z_j", TheoreticalMoveFraction(a, b), 4);
    json.TierMetric("mod_analytic", ExpectedMoveFractionMod(a, b), 4);
    json.Path("mod", {{"moved_fraction", mod_measured, 4}});
    json.Path("scaddar", {{"moved_fraction", scaddar_measured, 4}});
    json.EndTier();
  }
  if (!json_only) {
    bench::PrintRule();
    std::printf(
        "Expected shape: scaddar/directory ~1.0x everywhere (RO1 optimal);\n"
        "naive ~1.0x (it satisfies RO1, only RO2 breaks); jump ~1.0x on adds\n"
        "and tail removals but ~2x on middle removals; chash ~1.0x with ring\n"
        "noise; mod and roundrobin pay 5-10x (near-total reshuffles).\n");
  }
  SCADDAR_CHECK(json.WriteFile("BENCH_movement.json"));
  if (!json_only) {
    std::printf("wrote BENCH_movement.json\n");
  }
}

}  // namespace
}  // namespace scaddar

int main(int argc, char** argv) {
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    }
  }
  if (!json_only) {
    scaddar::bench::PrintHeader(
        "EXP-D", "block movement vs. theoretical minimum z_j (RO1)");
  }
  scaddar::Run(json_only);
  return 0;
}
