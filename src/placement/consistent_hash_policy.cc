#include "placement/consistent_hash_policy.h"

#include <algorithm>

#include "random/splitmix64.h"

namespace scaddar {

ConsistentHashPolicy::ConsistentHashPolicy(int64_t n0, int64_t vnodes)
    : PlacementPolicy(n0), vnodes_(vnodes) {
  SCADDAR_CHECK(vnodes > 0);
  for (const PhysicalDiskId disk : log().physical_disks_at(0)) {
    InsertDisk(disk);
  }
}

ConsistentHashPolicy::ConsistentHashPolicy(OpLog initial_log, int64_t vnodes)
    : PlacementPolicy(std::move(initial_log)), vnodes_(vnodes) {
  SCADDAR_CHECK(vnodes > 0);
  for (const PhysicalDiskId disk : log().physical_disks_at(0)) {
    InsertDisk(disk);
  }
}

void ConsistentHashPolicy::InsertDisk(PhysicalDiskId disk) {
  for (int64_t replica = 0; replica < vnodes_; ++replica) {
    const uint64_t hash =
        MixSeeds(static_cast<uint64_t>(disk), static_cast<uint64_t>(replica));
    const RingPoint point{hash, disk};
    ring_.insert(std::upper_bound(ring_.begin(), ring_.end(), point), point);
  }
}

void ConsistentHashPolicy::EraseDisk(PhysicalDiskId disk) {
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [disk](const RingPoint& point) {
                               return point.disk == disk;
                             }),
              ring_.end());
}

Status ConsistentHashPolicy::OnOp(const ScalingOp& op) {
  const Epoch j = log().num_ops();
  if (op.is_add()) {
    const std::vector<PhysicalDiskId>& now = log().physical_disks_at(j);
    const int64_t n_prev = log().disks_after(j - 1);
    for (size_t i = static_cast<size_t>(n_prev); i < now.size(); ++i) {
      InsertDisk(now[i]);
    }
    return OkStatus();
  }
  const std::vector<PhysicalDiskId>& before = log().physical_disks_at(j - 1);
  for (const DiskSlot slot : op.removed_slots()) {
    EraseDisk(before[static_cast<size_t>(slot)]);
  }
  return OkStatus();
}

PhysicalDiskId ConsistentHashPolicy::Locate(ObjectId object,
                                            BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  SCADDAR_CHECK(!ring_.empty());
  const uint64_t key = Mix64(x0[static_cast<size_t>(block)] ^
                             0x436f6e486173686bull);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingPoint& point, uint64_t k) { return point.hash < k; });
  if (it == ring_.end()) {
    it = ring_.begin();  // Wrap around the ring.
  }
  return it->disk;
}

}  // namespace scaddar
