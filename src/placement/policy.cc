#include "placement/policy.h"

#include <algorithm>

namespace scaddar {

PlacementPolicy::PlacementPolicy(int64_t n0)
    : log_(std::move(OpLog::Create(n0).value())) {}

PlacementPolicy::PlacementPolicy(OpLog initial_log)
    : log_(std::move(initial_log)) {
  SCADDAR_CHECK(log_.num_ops() == 0);
}

Status PlacementPolicy::AddObject(ObjectId id, std::vector<uint64_t> x0) {
  if (object_index_.contains(id)) {
    return AlreadyExistsError("object already registered");
  }
  object_index_[id] = objects_.size();
  total_blocks_ += static_cast<int64_t>(x0.size());
  objects_.emplace_back(id, std::move(x0));
  added_epoch_.push_back(log_.num_ops());
  return OnObjectAdded(id);
}

Status PlacementPolicy::ApplyOp(const ScalingOp& op) {
  SCADDAR_RETURN_IF_ERROR(log_.Append(op));
  return OnOp(op);
}

void PlacementPolicy::LocateAllBlocks(ObjectId object,
                                      std::vector<PhysicalDiskId>& out) const {
  const size_t blocks = x0_of(object).size();
  out.resize(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    out[i] = Locate(object, static_cast<BlockIndex>(i));
  }
}

void PlacementPolicy::LocateRange(ObjectId object, BlockIndex begin,
                                  BlockIndex end,
                                  std::span<PhysicalDiskId> out) const {
  const auto blocks = static_cast<BlockIndex>(x0_of(object).size());
  SCADDAR_CHECK(begin >= 0 && begin <= end && end <= blocks);
  SCADDAR_CHECK(static_cast<BlockIndex>(out.size()) == end - begin);
  for (BlockIndex i = begin; i < end; ++i) {
    out[static_cast<size_t>(i - begin)] = Locate(object, i);
  }
}

void PlacementPolicy::LocateMany(ObjectId object,
                                 std::span<const BlockIndex> blocks,
                                 std::span<PhysicalDiskId> out) const {
  SCADDAR_CHECK(blocks.size() == out.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    out[i] = Locate(object, blocks[i]);
  }
}

Status PlacementPolicy::OnObjectAdded(ObjectId /*id*/) { return OkStatus(); }

Status PlacementPolicy::OnObjectRemoved(ObjectId /*id*/) {
  return OkStatus();
}

Status PlacementPolicy::RemoveObject(ObjectId id) {
  const auto it = object_index_.find(id);
  if (it == object_index_.end()) {
    return NotFoundError("object not registered");
  }
  SCADDAR_RETURN_IF_ERROR(OnObjectRemoved(id));
  const size_t index = it->second;
  total_blocks_ -= static_cast<int64_t>(objects_[index].second.size());
  objects_.erase(objects_.begin() + static_cast<ptrdiff_t>(index));
  added_epoch_.erase(added_epoch_.begin() + static_cast<ptrdiff_t>(index));
  object_index_.erase(it);
  // Reindex the tail.
  for (size_t i = index; i < objects_.size(); ++i) {
    object_index_[objects_[i].first] = i;
  }
  return OkStatus();
}

const std::vector<uint64_t>& PlacementPolicy::x0_of(ObjectId id) const {
  const auto it = object_index_.find(id);
  SCADDAR_CHECK(it != object_index_.end());
  return objects_[it->second].second;
}

int64_t PlacementPolicy::NumBlocksOf(ObjectId id) const {
  return static_cast<int64_t>(x0_of(id).size());
}

Epoch PlacementPolicy::epoch_added(ObjectId id) const {
  const auto it = object_index_.find(id);
  SCADDAR_CHECK(it != object_index_.end());
  return added_epoch_[it->second];
}

std::vector<int64_t> PlacementPolicy::PerDiskCounts() const {
  const std::vector<PhysicalDiskId>& physical = log_.physical_disks();
  std::unordered_map<PhysicalDiskId, size_t> position;
  position.reserve(physical.size());
  for (size_t i = 0; i < physical.size(); ++i) {
    position[physical[i]] = i;
  }
  std::vector<int64_t> counts(physical.size(), 0);
  for (const auto& [id, x0] : objects_) {
    for (size_t i = 0; i < x0.size(); ++i) {
      const PhysicalDiskId disk = Locate(id, static_cast<BlockIndex>(i));
      const auto it = position.find(disk);
      SCADDAR_CHECK(it != position.end());
      ++counts[it->second];
    }
  }
  return counts;
}

std::vector<PhysicalDiskId> PlacementPolicy::AssignmentSnapshot() const {
  std::vector<PhysicalDiskId> snapshot;
  snapshot.reserve(static_cast<size_t>(total_blocks_));
  for (const auto& [id, x0] : objects_) {
    for (size_t i = 0; i < x0.size(); ++i) {
      snapshot.push_back(Locate(id, static_cast<BlockIndex>(i)));
    }
  }
  return snapshot;
}

}  // namespace scaddar
