#include "placement/mod_policy.h"

namespace scaddar {

PhysicalDiskId ModPolicy::Locate(ObjectId object, BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  const auto slot = static_cast<DiskSlot>(
      x0[static_cast<size_t>(block)] %
      static_cast<uint64_t>(log().current_disks()));
  return log().physical_disks()[static_cast<size_t>(slot)];
}

Status ModPolicy::OnOp(const ScalingOp& /*op*/) { return OkStatus(); }

}  // namespace scaddar
