#ifndef SCADDAR_PLACEMENT_NAIVE_POLICY_H_
#define SCADDAR_PLACEMENT_NAIVE_POLICY_H_

#include "placement/policy.h"

namespace scaddar {

/// Section 4.1's naive scheme (Eq. 2), kept as a baseline. Each operation
/// re-uses the block's original random number `X0` instead of drawing fresh
/// randomness, so RO1 and AO1 hold but RO2 breaks from the second operation
/// on (Figure 1: the second added disk receives blocks only from a subset of
/// the old disks). Like SCADDAR it is stateless beyond the op log.
class NaivePolicy final : public PlacementPolicy {
 public:
  explicit NaivePolicy(int64_t n0) : PlacementPolicy(n0) {}
  explicit NaivePolicy(OpLog initial_log)
      : PlacementPolicy(std::move(initial_log)) {}

  std::string_view name() const override { return "naive"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  /// Logical slot after replaying all operations with Eq. 2 semantics.
  DiskSlot LocateSlot(ObjectId object, BlockIndex block) const;

 protected:
  Status OnOp(const ScalingOp& op) override;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_NAIVE_POLICY_H_
