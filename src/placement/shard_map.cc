#include "placement/shard_map.h"

#include <algorithm>

#include "placement/jump_hash_policy.h"
#include "util/status.h"

namespace scaddar {

ShardMap::ShardMap(int initial_members) {
  const int count = std::max(initial_members, 1);
  seats_.resize(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    seats_[static_cast<size_t>(s)] = s;
  }
  next_member_ = count;
}

StatusOr<ShardMap> ShardMap::FromParts(std::vector<int> seats,
                                       int next_member, int64_t epoch) {
  if (seats.empty()) {
    return InvalidArgumentError("shard map needs at least one seat");
  }
  if (epoch < 0) {
    return InvalidArgumentError("shard-map epoch must be >= 0");
  }
  std::vector<int> sorted = seats;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() < 0 ||
      std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return InvalidArgumentError("seat members must be distinct and >= 0");
  }
  if (sorted.back() >= next_member) {
    return InvalidArgumentError(
        "next_member must exceed every seated member id");
  }
  ShardMap map(1);
  map.seats_ = std::move(seats);
  map.next_member_ = next_member;
  map.epoch_ = epoch;
  return map;
}

int ShardMap::MemberOf(uint64_t key) const {
  const int64_t seat =
      JumpBucket(key, static_cast<int64_t>(seats_.size()));
  return seats_[static_cast<size_t>(seat)];
}

int ShardMap::SeatOf(int member) const {
  for (size_t s = 0; s < seats_.size(); ++s) {
    if (seats_[s] == member) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

int ShardMap::AddMember() {
  const int member = next_member_++;
  seats_.push_back(member);
  ++epoch_;
  return member;
}

Status ShardMap::RemoveMember(int member) {
  const int seat = SeatOf(member);
  if (seat < 0) {
    return InvalidArgumentError("no such shard-map member");
  }
  if (seats_.size() == 1) {
    return InvalidArgumentError("cannot remove the last member");
  }
  // Swap-with-last: the tail seat's member takes over the vacated seat,
  // then jump hash shrinks from the tail as it natively supports.
  seats_[static_cast<size_t>(seat)] = seats_.back();
  seats_.pop_back();
  ++epoch_;
  return OkStatus();
}

std::vector<uint64_t> ChangedKeys(const ShardMap& before,
                                  const ShardMap& after,
                                  const std::vector<uint64_t>& keys) {
  std::vector<uint64_t> changed;
  for (const uint64_t key : keys) {
    if (before.MemberOf(key) != after.MemberOf(key)) {
      changed.push_back(key);
    }
  }
  return changed;
}

}  // namespace scaddar
