#ifndef SCADDAR_PLACEMENT_SCADDAR_POLICY_H_
#define SCADDAR_PLACEMENT_SCADDAR_POLICY_H_

#include <memory>

#include "core/compiled_log.h"
#include "core/mapper.h"
#include "placement/policy.h"

namespace scaddar {

/// The paper's contribution as a placement policy. Completely stateless
/// beyond the shared op log: `Locate` replays the REMAP chain from the
/// block's `X0` (AO1), and scaling operations need no per-block bookkeeping.
///
/// Lookups run against a cached `CompiledLog` of the op log rather than a
/// fresh `Mapper` replay: the cache is rebuilt lazily whenever
/// `OpLog::revision()` says the log moved on (ops are rare, lookups are
/// millions/sec), and `LocateAllBlocks` feeds whole objects through the
/// step-major batch kernels.
///
/// Objects are epoch-aware: one registered after `j` scaling operations
/// starts its chain at epoch `j` (initial placement `X0 mod N_j`), so late
/// objects neither replay history that predates them nor burn random range
/// on it.
class ScaddarPolicy final : public PlacementPolicy {
 public:
  explicit ScaddarPolicy(int64_t n0) : PlacementPolicy(n0) {}
  explicit ScaddarPolicy(OpLog initial_log)
      : PlacementPolicy(std::move(initial_log)) {}

  std::string_view name() const override { return "scaddar"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  void LocateAllBlocks(ObjectId object,
                       std::vector<PhysicalDiskId>& out) const override;

  void LocateRange(ObjectId object, BlockIndex begin, BlockIndex end,
                   std::span<PhysicalDiskId> out) const override;

  void LocateMany(ObjectId object, std::span<const BlockIndex> blocks,
                  std::span<PhysicalDiskId> out) const override;

  /// Rebuilds the compiled-log cache if stale; afterwards concurrent batch
  /// lookups only read it (sharded reconciliation calls this before fanning
  /// out across the thread pool).
  void PrepareForBatch() const override { compiled(); }

  /// Logical slot variant (exposed for tests and the Figure 1 walkthrough).
  DiskSlot LocateSlot(ObjectId object, BlockIndex block) const;

  /// Batch slot variant: one step-major pass over the whole object. The HA
  /// server derives every replica's target from these primary slots, so one
  /// chain evaluation serves R replicas.
  void LocateAllSlots(ObjectId object, std::vector<DiskSlot>& out) const;

 protected:
  Status OnOp(const ScalingOp& op) override;

 private:
  /// The compiled snapshot of `log()`, rebuilt iff the log's revision
  /// advanced since the last call.
  const CompiledLog& compiled() const;

  mutable std::unique_ptr<CompiledLog> compiled_;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_SCADDAR_POLICY_H_
