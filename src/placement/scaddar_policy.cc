#include "placement/scaddar_policy.h"

#include <span>

namespace scaddar {

const CompiledLog& ScaddarPolicy::compiled() const {
  if (compiled_ == nullptr ||
      compiled_->source_revision() != log().revision()) {
    compiled_ = std::make_unique<CompiledLog>(log());
  }
  return *compiled_;
}

PhysicalDiskId ScaddarPolicy::Locate(ObjectId object,
                                     BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  return compiled().LocatePhysical(x0[static_cast<size_t>(block)],
                                   epoch_added(object));
}

void ScaddarPolicy::LocateAllBlocks(ObjectId object,
                                    std::vector<PhysicalDiskId>& out) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  out.resize(x0.size());
  compiled().LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                 std::span<PhysicalDiskId>(out),
                                 epoch_added(object));
}

DiskSlot ScaddarPolicy::LocateSlot(ObjectId object, BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  return compiled().LocateSlot(x0[static_cast<size_t>(block)],
                               epoch_added(object));
}

Status ScaddarPolicy::OnOp(const ScalingOp& /*op*/) {
  // SCADDAR needs no per-block state: the op log is the whole RF() record.
  // The compiled-log cache self-invalidates via OpLog::revision().
  return OkStatus();
}

}  // namespace scaddar
