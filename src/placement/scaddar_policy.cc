#include "placement/scaddar_policy.h"

#include <span>

namespace scaddar {

const CompiledLog& ScaddarPolicy::compiled() const {
  if (compiled_ == nullptr ||
      compiled_->source_revision() != log().revision()) {
    compiled_ = std::make_unique<CompiledLog>(log());
  }
  return *compiled_;
}

PhysicalDiskId ScaddarPolicy::Locate(ObjectId object,
                                     BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  return compiled().LocatePhysical(x0[static_cast<size_t>(block)],
                                   epoch_added(object));
}

void ScaddarPolicy::LocateAllBlocks(ObjectId object,
                                    std::vector<PhysicalDiskId>& out) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  out.resize(x0.size());
  compiled().LocatePhysicalBatch(std::span<const uint64_t>(x0),
                                 std::span<PhysicalDiskId>(out),
                                 epoch_added(object));
}

void ScaddarPolicy::LocateRange(ObjectId object, BlockIndex begin,
                                BlockIndex end,
                                std::span<PhysicalDiskId> out) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  const auto blocks = static_cast<BlockIndex>(x0.size());
  SCADDAR_CHECK(begin >= 0 && begin <= end && end <= blocks);
  SCADDAR_CHECK(static_cast<BlockIndex>(out.size()) == end - begin);
  compiled().LocatePhysicalBatch(
      std::span<const uint64_t>(x0).subspan(static_cast<size_t>(begin),
                                            static_cast<size_t>(end - begin)),
      out, epoch_added(object));
}

void ScaddarPolicy::LocateMany(ObjectId object,
                               std::span<const BlockIndex> blocks,
                               std::span<PhysicalDiskId> out) const {
  SCADDAR_CHECK(blocks.size() == out.size());
  const std::vector<uint64_t>& x0 = x0_of(object);
  std::vector<uint64_t> gathered(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    SCADDAR_CHECK(blocks[i] >= 0 &&
                  blocks[i] < static_cast<BlockIndex>(x0.size()));
    gathered[i] = x0[static_cast<size_t>(blocks[i])];
  }
  compiled().LocatePhysicalBatch(std::span<const uint64_t>(gathered), out,
                                 epoch_added(object));
}

void ScaddarPolicy::LocateAllSlots(ObjectId object,
                                   std::vector<DiskSlot>& out) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  out.resize(x0.size());
  compiled().LocateSlotBatch(std::span<const uint64_t>(x0),
                             std::span<DiskSlot>(out), epoch_added(object));
}

DiskSlot ScaddarPolicy::LocateSlot(ObjectId object, BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  return compiled().LocateSlot(x0[static_cast<size_t>(block)],
                               epoch_added(object));
}

Status ScaddarPolicy::OnOp(const ScalingOp& /*op*/) {
  // SCADDAR needs no per-block state: the op log is the whole RF() record.
  // The compiled-log cache self-invalidates via OpLog::revision().
  return OkStatus();
}

}  // namespace scaddar
