#include "placement/scaddar_policy.h"

namespace scaddar {

PhysicalDiskId ScaddarPolicy::Locate(ObjectId object,
                                     BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  const Mapper mapper(&log());
  return mapper.PhysicalBetween(x0[static_cast<size_t>(block)],
                                epoch_added(object), log().num_ops());
}

DiskSlot ScaddarPolicy::LocateSlot(ObjectId object, BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  const Mapper mapper(&log());
  return mapper.SlotBetween(x0[static_cast<size_t>(block)],
                            epoch_added(object), log().num_ops());
}

Status ScaddarPolicy::OnOp(const ScalingOp& /*op*/) {
  // SCADDAR needs no per-block state: the op log is the whole RF() record.
  return OkStatus();
}

}  // namespace scaddar
