#ifndef SCADDAR_PLACEMENT_MOD_POLICY_H_
#define SCADDAR_PLACEMENT_MOD_POLICY_H_

#include "placement/policy.h"

namespace scaddar {

/// The "complete redistribution" baseline from Appendix A:
/// `RF() = AF() = (X0 mod Nj)`. Randomness is perfect after every operation
/// (each epoch is a fresh initial state) but RO1 is violated badly — almost
/// every block moves on every scaling operation.
class ModPolicy final : public PlacementPolicy {
 public:
  explicit ModPolicy(int64_t n0) : PlacementPolicy(n0) {}
  explicit ModPolicy(OpLog initial_log)
      : PlacementPolicy(std::move(initial_log)) {}

  std::string_view name() const override { return "mod"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

 protected:
  Status OnOp(const ScalingOp& op) override;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_MOD_POLICY_H_
