#ifndef SCADDAR_PLACEMENT_ROUND_HASHING_POLICY_H_
#define SCADDAR_PLACEMENT_ROUND_HASHING_POLICY_H_

#include <vector>

#include "placement/policy.h"

namespace scaddar {

/// The doubling-rounds bucket scheme at the heart of Round-Hashing (Grossi
/// & Versari 2018), in its whole-bucket (linear-hashing) form: with `n`
/// buckets and level `L = floor(log2 n)`, a key first hashes into the `2^L`
/// parent positions and re-hashes into `2^(L+1)` positions when its parent
/// is below the split frontier `n - 2^L`. Lookup is O(1) pure arithmetic —
/// two masks, no loop, no per-key state — which is the property the paper
/// contributes over jump hash's O(log n) iteration.
///
/// Trade-offs the comparator bench (EXP-G) quantifies: splits move whole
/// half-buckets, so an addition moves *less* than the minimal uniform
/// fraction and the load between split and unsplit buckets spreads by up to
/// 2x until the round completes (Round-Hashing proper refines this with
/// fractional splits; this is the frontier structure underneath). Arbitrary
/// removals use the same swap-with-last emulation as `JumpHashPolicy`.
class RoundHashingPolicy final : public PlacementPolicy {
 public:
  explicit RoundHashingPolicy(int64_t n0);
  explicit RoundHashingPolicy(OpLog initial_log);

  std::string_view name() const override { return "roundhash"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  /// Position of `key` among `num_buckets` via the split frontier; exposed
  /// for tests.
  static int64_t RoundBucket(uint64_t key, int64_t num_buckets);

  /// Bucket order (position -> physical id); exposed for tests.
  const std::vector<PhysicalDiskId>& buckets() const { return buckets_; }

 protected:
  Status OnOp(const ScalingOp& op) override;

 private:
  std::vector<PhysicalDiskId> buckets_;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_ROUND_HASHING_POLICY_H_
