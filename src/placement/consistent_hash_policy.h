#ifndef SCADDAR_PLACEMENT_CONSISTENT_HASH_POLICY_H_
#define SCADDAR_PLACEMENT_CONSISTENT_HASH_POLICY_H_

#include <cstdint>
#include <vector>

#include "placement/policy.h"

namespace scaddar {

/// Classic consistent hashing (Karger et al. 1997) with virtual nodes — the
/// second modern comparator. Each disk owns `vnodes` pseudo-random points on
/// a 64-bit ring; a block lives on the disk owning the first point at or
/// after the block's hashed key. Movement on add/remove is minimal and
/// affects only ring neighbours, but load balance is noisier than SCADDAR's:
/// the per-disk share has relative stddev ~ 1/sqrt(vnodes).
class ConsistentHashPolicy final : public PlacementPolicy {
 public:
  /// `vnodes` > 0 (checked).
  ConsistentHashPolicy(int64_t n0, int64_t vnodes);
  ConsistentHashPolicy(OpLog initial_log, int64_t vnodes);

  std::string_view name() const override { return "chash"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  int64_t vnodes() const { return vnodes_; }
  int64_t ring_size() const { return static_cast<int64_t>(ring_.size()); }

 protected:
  Status OnOp(const ScalingOp& op) override;

 private:
  struct RingPoint {
    uint64_t hash;
    PhysicalDiskId disk;
    friend bool operator<(const RingPoint& a, const RingPoint& b) {
      return a.hash < b.hash || (a.hash == b.hash && a.disk < b.disk);
    }
  };

  void InsertDisk(PhysicalDiskId disk);
  void EraseDisk(PhysicalDiskId disk);

  int64_t vnodes_;
  std::vector<RingPoint> ring_;  // Sorted by (hash, disk).
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_CONSISTENT_HASH_POLICY_H_
