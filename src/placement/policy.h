#ifndef SCADDAR_PLACEMENT_POLICY_H_
#define SCADDAR_PLACEMENT_POLICY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/op_log.h"
#include "core/scaling_op.h"
#include "core/types.h"
#include "util/statusor.h"

namespace scaddar {

/// A placement policy is a concrete (RF(), AF()) pair: it decides where
/// every block of every registered object lives, and how blocks relocate
/// when the disk array scales. SCADDAR is one policy; the paper's
/// alternatives (naive remap, complete redistribution, directory
/// bookkeeping, round-robin striping) and the modern comparators (jump
/// hash, consistent hashing) implement the same interface so the benches
/// can run them side by side.
///
/// All policies share the scaling history (an `OpLog`) and the registered
/// objects' `X0` streams; subclasses add whatever per-policy state their
/// `AF()` needs (SCADDAR: none; directory: every block's location).
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  PlacementPolicy(const PlacementPolicy&) = delete;
  PlacementPolicy& operator=(const PlacementPolicy&) = delete;

  /// Stable policy name ("scaddar", "naive", ...).
  virtual std::string_view name() const = 0;

  /// Registers an object and its per-block random numbers. Fails on
  /// duplicate ids. Objects must be registered in the same order across
  /// policies for movement comparisons to be meaningful.
  Status AddObject(ObjectId id, std::vector<uint64_t> x0);

  /// Deletes an object (its blocks simply stop existing — freeing space
  /// needs no relocation under any policy). NotFound if absent.
  Status RemoveObject(ObjectId id);

  /// Applies scaling operation `j = log().num_ops() + 1` (Definition 3.3),
  /// relocating blocks per the policy's redistribution function.
  Status ApplyOp(const ScalingOp& op);

  /// The access function `AF()`: the physical disk currently holding
  /// `block` of `object` (which must be registered; checked).
  virtual PhysicalDiskId Locate(ObjectId object, BlockIndex block) const = 0;

  /// Batch `AF()`: fills `out` with the physical disk of every block of
  /// `object` (resized to the object's block count). The default loops over
  /// `Locate`; policies with a batch fast path (SCADDAR's step-major
  /// compiled kernels) override it so bulk consumers — reconciliation,
  /// snapshots, planners — pay one virtual call per object, not per block.
  virtual void LocateAllBlocks(ObjectId object,
                               std::vector<PhysicalDiskId>& out) const;

  /// Batch `AF()` over the contiguous block range `[begin, end)` of
  /// `object` (`out.size()` must equal `end - begin`; bounds checked). The
  /// serving-path cursors prefetch their sliding windows through this —
  /// policies with batch kernels resolve the whole window against one
  /// pinned snapshot.
  virtual void LocateRange(ObjectId object, BlockIndex begin, BlockIndex end,
                           std::span<PhysicalDiskId> out) const;

  /// Batch `AF()` over an arbitrary set of block indices of one object
  /// (sizes must match; indices bounds-checked). The migration executor
  /// resolves a round's queued blocks per object through this.
  virtual void LocateMany(ObjectId object, std::span<const BlockIndex> blocks,
                          std::span<PhysicalDiskId> out) const;

  /// Hook for batch consumers that fan work out across threads: brings any
  /// lazily built lookup state (SCADDAR's compiled-log cache) up to date on
  /// the calling thread so concurrent `Locate*` calls are read-only.
  virtual void PrepareForBatch() const {}

  /// Scaling history (shared semantics across policies).
  const OpLog& log() const { return log_; }
  int64_t current_disks() const { return log_.current_disks(); }

  /// Total registered blocks across all objects.
  int64_t total_blocks() const { return total_blocks_; }

  /// Number of registered objects.
  int64_t num_objects() const { return static_cast<int64_t>(objects_.size()); }

  /// Per-disk block counts, indexed like `log().physical_disks()` (i.e. by
  /// live-disk position). O(total blocks) — calls Locate for every block.
  std::vector<int64_t> PerDiskCounts() const;

  /// Physical disk of every block in deterministic (registration order,
  /// block index) order; two snapshots from different epochs diff into
  /// movement stats.
  std::vector<PhysicalDiskId> AssignmentSnapshot() const;

  /// Registered objects (id, X0 values) in registration order — read-only
  /// enumeration for migration and verification layers.
  const std::vector<std::pair<ObjectId, std::vector<uint64_t>>>&
  objects_view() const {
    return objects_;
  }

  /// Number of blocks of a registered object (checked).
  int64_t NumBlocksOf(ObjectId id) const;

  /// Epoch at which the object was registered (checked). Epoch-aware
  /// policies (SCADDAR, naive) start the object's remap chain there: an
  /// object written after `j` scaling operations is initially placed as
  /// `X0 mod N_j` and has no earlier history — this both matches how a
  /// real server ingests new content and avoids burning random range on
  /// operations that predate the object.
  Epoch epoch_added(ObjectId id) const;

 protected:
  /// `n0` disks before any scaling operations (must be > 0; checked).
  explicit PlacementPolicy(int64_t n0);

  /// Starts from an explicit epoch-0 log (no operations yet; checked) —
  /// used to rebuild placement over an existing array's physical ids after
  /// a full redistribution.
  explicit PlacementPolicy(OpLog initial_log);

  /// Hook: called after an object's X0 vector is stored.
  virtual Status OnObjectAdded(ObjectId id);

  /// Hook: called before an object's state is dropped.
  virtual Status OnObjectRemoved(ObjectId id);

  /// Hook: called after `op` was validated and appended to the log; the
  /// pre-op state is `log().physical_disks_at(log().num_ops() - 1)`.
  virtual Status OnOp(const ScalingOp& op) = 0;

  /// X0 values of a registered object (checked).
  const std::vector<uint64_t>& x0_of(ObjectId id) const;

  /// Registered objects in registration order.
  const std::vector<std::pair<ObjectId, std::vector<uint64_t>>>& objects()
      const {
    return objects_;
  }

 private:
  OpLog log_;
  std::vector<std::pair<ObjectId, std::vector<uint64_t>>> objects_;
  std::vector<Epoch> added_epoch_;  // Parallel to objects_.
  std::unordered_map<ObjectId, size_t> object_index_;
  int64_t total_blocks_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_POLICY_H_
