#include "placement/jump_hash_policy.h"

#include <algorithm>

#include "random/splitmix64.h"

namespace scaddar {

int64_t JumpBucket(uint64_t key, int64_t num_buckets) {
  SCADDAR_DCHECK(num_buckets > 0);
  int64_t bucket = -1;
  int64_t next = 0;
  while (next < num_buckets) {
    bucket = next;
    key = key * 2862933555777941757ull + 1;
    next = static_cast<int64_t>(
        static_cast<double>(bucket + 1) *
        (static_cast<double>(int64_t{1} << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return bucket;
}

JumpHashPolicy::JumpHashPolicy(int64_t n0) : PlacementPolicy(n0) {
  buckets_ = log().physical_disks_at(0);
}

JumpHashPolicy::JumpHashPolicy(OpLog initial_log)
    : PlacementPolicy(std::move(initial_log)) {
  buckets_ = log().physical_disks_at(0);
}

Status JumpHashPolicy::OnOp(const ScalingOp& op) {
  const Epoch j = log().num_ops();
  if (op.is_add()) {
    // New physical ids occupy the tail of the epoch's slot table; jump hash
    // grows naturally at the tail.
    const std::vector<PhysicalDiskId>& now = log().physical_disks_at(j);
    const int64_t n_prev = log().disks_after(j - 1);
    for (size_t i = static_cast<size_t>(n_prev); i < now.size(); ++i) {
      buckets_.push_back(now[i]);
    }
    return OkStatus();
  }
  const std::vector<PhysicalDiskId>& before = log().physical_disks_at(j - 1);
  for (const DiskSlot slot : op.removed_slots()) {
    const PhysicalDiskId removed = before[static_cast<size_t>(slot)];
    const auto it = std::find(buckets_.begin(), buckets_.end(), removed);
    SCADDAR_CHECK(it != buckets_.end());
    *it = buckets_.back();  // Swap-with-last, then shrink from the tail.
    buckets_.pop_back();
  }
  return OkStatus();
}

PhysicalDiskId JumpHashPolicy::Locate(ObjectId object,
                                      BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  const uint64_t key = Mix64(x0[static_cast<size_t>(block)]);
  const int64_t bucket =
      JumpBucket(key, static_cast<int64_t>(buckets_.size()));
  return buckets_[static_cast<size_t>(bucket)];
}

}  // namespace scaddar
