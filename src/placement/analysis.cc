#include "placement/analysis.h"

#include <algorithm>
#include <cmath>

#include "random/sequence.h"
#include "stats/accumulator.h"
#include "stats/movement.h"
#include "util/intmath.h"

namespace scaddar {

double ExpectedStayFractionMod(int64_t n_prev, int64_t n_cur) {
  SCADDAR_CHECK(n_prev > 0 && n_cur > 0);
  const auto a = static_cast<uint64_t>(n_prev);
  const auto b = static_cast<uint64_t>(n_cur);
  const uint64_t g = Gcd(a, b);
  return static_cast<double>(std::min(a, b)) * static_cast<double>(g) /
         (static_cast<double>(a) * static_cast<double>(b));
}

double ExpectedMoveFractionMod(int64_t n_prev, int64_t n_cur) {
  return 1.0 - ExpectedStayFractionMod(n_prev, n_cur);
}

double ExpectedMoveFractionRoundRobin(int64_t n_prev, int64_t n_cur) {
  // Stripe position o+i is (effectively) uniform over residues for long
  // objects, so the CRT argument is identical to the mod policy's.
  return ExpectedMoveFractionMod(n_prev, n_cur);
}

double ExpectedMoveFractionScaddar(int64_t n_prev, int64_t n_cur) {
  return TheoreticalMoveFraction(n_prev, n_cur);
}

MovedFractionEstimate EstimateMovedFraction(
    const std::function<std::unique_ptr<PlacementPolicy>(int64_t trial)>&
        factory,
    const ScalingOp& op, int64_t trials, int64_t blocks, uint64_t seed) {
  SCADDAR_CHECK(trials >= 2);
  SCADDAR_CHECK(blocks >= 1);
  Accumulator fractions;
  for (int64_t trial = 0; trial < trials; ++trial) {
    std::unique_ptr<PlacementPolicy> policy = factory(trial);
    SCADDAR_CHECK(policy != nullptr);
    const std::vector<uint64_t> x0 =
        X0Sequence::Create(PrngKind::kSplitMix64,
                           seed + static_cast<uint64_t>(trial) * 1000003ull,
                           64)
            .value()
            .Materialize(blocks);
    SCADDAR_CHECK(policy->AddObject(1, x0).ok());
    const std::vector<PhysicalDiskId> before = policy->AssignmentSnapshot();
    SCADDAR_CHECK(policy->ApplyOp(op).ok());
    const std::vector<PhysicalDiskId> after = policy->AssignmentSnapshot();
    int64_t moved = 0;
    for (size_t i = 0; i < before.size(); ++i) {
      moved += before[i] != after[i] ? 1 : 0;
    }
    fractions.Add(static_cast<double>(moved) / static_cast<double>(blocks));
  }
  MovedFractionEstimate estimate;
  estimate.mean = fractions.mean();
  estimate.std_error = std::sqrt(fractions.sample_variance() /
                                 static_cast<double>(trials));
  estimate.trials = trials;
  estimate.blocks_per_trial = blocks;
  return estimate;
}

bool WithinStdError(double observed, double expected, double std_error,
                    double z) {
  // Guard the degenerate zero-variance case (deterministic policies).
  const double tolerance = std::max(z * std_error, 1e-9);
  return std::abs(observed - expected) <= tolerance;
}

}  // namespace scaddar
