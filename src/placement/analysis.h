#ifndef SCADDAR_PLACEMENT_ANALYSIS_H_
#define SCADDAR_PLACEMENT_ANALYSIS_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "core/scaling_op.h"
#include "placement/policy.h"
#include "util/statusor.h"

namespace scaddar {

/// Closed-form movement analysis for the placement policies, used to
/// validate the simulator against first principles (EXP-M) and to size
/// reorganizations without running one.

/// Fraction of blocks that *stay* under complete re-hashing
/// `X mod a -> X mod b` for uniform X (Appendix A's baseline): by CRT the
/// residue pair (X mod a, X mod b) is equal for exactly `min(a, b)` of the
/// `lcm(a, b)` joint residues, so
///   stay = min(a,b) * gcd(a,b) / (a * b).
/// Both counts must be positive (checked).
double ExpectedStayFractionMod(int64_t n_prev, int64_t n_cur);

/// Expected *moved* fraction of the mod policy: 1 - ExpectedStayFractionMod.
double ExpectedMoveFractionMod(int64_t n_prev, int64_t n_cur);

/// Round-robin striping moves a block iff its stripe index changes residue,
/// which for long objects follows the same CRT count as the mod policy.
double ExpectedMoveFractionRoundRobin(int64_t n_prev, int64_t n_cur);

/// SCADDAR (and the directory baseline) achieve the Definition 3.4 minimum
/// `z_j` in expectation.
double ExpectedMoveFractionScaddar(int64_t n_prev, int64_t n_cur);

/// Monte-Carlo estimate of a policy's moved fraction for one operation.
struct MovedFractionEstimate {
  double mean = 0.0;
  double std_error = 0.0;
  int64_t trials = 0;
  int64_t blocks_per_trial = 0;
};

/// Runs `trials` independent experiments (fresh policy + `blocks` random
/// X0 each, seeds derived from `seed`), applies `op`, and reports the
/// across-trial mean and standard error of the moved fraction. The factory
/// receives the trial index and must return a policy with `n0` disks.
MovedFractionEstimate EstimateMovedFraction(
    const std::function<std::unique_ptr<PlacementPolicy>(int64_t trial)>&
        factory,
    const ScalingOp& op, int64_t trials, int64_t blocks, uint64_t seed);

/// Two-sided z-test helper: is `observed` within `z` standard errors of
/// `expected`? (The benches use z = 4: false alarms ~1e-4.)
bool WithinStdError(double observed, double expected, double std_error,
                    double z);

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_ANALYSIS_H_
