#ifndef SCADDAR_PLACEMENT_ROUND_ROBIN_POLICY_H_
#define SCADDAR_PLACEMENT_ROUND_ROBIN_POLICY_H_

#include <unordered_map>

#include "placement/policy.h"

namespace scaddar {

/// The constrained-placement baseline the paper's Section 1/2 argues
/// against: classic round-robin striping ([2], [8]). Block `i` of an object
/// with stripe offset `o` lives on slot `(o + i) mod Nj`. Retrieval needs no
/// directory, but when the disk count changes *almost every block moves* —
/// the re-striping cost that motivates randomized placement.
class RoundRobinPolicy final : public PlacementPolicy {
 public:
  explicit RoundRobinPolicy(int64_t n0) : PlacementPolicy(n0) {}
  explicit RoundRobinPolicy(OpLog initial_log)
      : PlacementPolicy(std::move(initial_log)) {}

  std::string_view name() const override { return "roundrobin"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

 protected:
  Status OnObjectAdded(ObjectId id) override;
  Status OnOp(const ScalingOp& op) override;

 private:
  // First-block stripe offset per object (spreads object starts evenly).
  std::unordered_map<ObjectId, int64_t> offsets_;
  int64_t next_offset_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_ROUND_ROBIN_POLICY_H_
