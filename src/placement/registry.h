#ifndef SCADDAR_PLACEMENT_REGISTRY_H_
#define SCADDAR_PLACEMENT_REGISTRY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "placement/policy.h"
#include "util/statusor.h"

namespace scaddar {

/// Knobs for stochastic / parameterized policies.
struct PolicyOptions {
  uint64_t seed = 0x5caddab10c5ull;  // Fresh randomness (directory policy).
  int64_t vnodes = 64;               // Virtual nodes (consistent hashing).
};

/// Creates a policy by name: "scaddar", "naive", "mod", "directory",
/// "roundrobin", "jump", "chash", "roundhash" or "segment". `n0` is the
/// initial disk count.
StatusOr<std::unique_ptr<PlacementPolicy>> MakePolicy(
    std::string_view name, int64_t n0, const PolicyOptions& options = {});

/// As `MakePolicy`, but epoch 0 addresses the given existing physical disks
/// (full-redistribution restarts).
StatusOr<std::unique_ptr<PlacementPolicy>> MakePolicyWithDisks(
    std::string_view name, std::vector<PhysicalDiskId> disks,
    const PolicyOptions& options = {});

/// All registered policy names, in canonical bench order.
std::vector<std::string_view> KnownPolicyNames();

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_REGISTRY_H_
