#include "placement/segment_policy.h"

#include <algorithm>

#include "random/splitmix64.h"

namespace scaddar {

namespace {

using Width = unsigned __int128;  // Widths: the full space is 2^64.

constexpr Width kTotalSpace = Width{1} << 64;

/// A piece of the hash space during a rebalance: `owner == -1` marks space
/// released by a donor, waiting for a receiver.
struct Piece {
  uint64_t start = 0;
  Width width = 0;
  PhysicalDiskId owner = -1;
};

/// Exact target share per owner: `total/n` each, the remainder spread one
/// unit at a time over the lowest physical ids. Deterministic, and within
/// one unit of perfectly uniform.
std::vector<Width> TargetShares(size_t n) {
  const Width base = kTotalSpace / n;
  const uint64_t rem = static_cast<uint64_t>(kTotalSpace % n);
  std::vector<Width> targets(n, base);
  for (uint64_t i = 0; i < rem; ++i) {
    ++targets[static_cast<size_t>(i)];
  }
  return targets;
}

}  // namespace

SegmentPolicy::SegmentPolicy(int64_t n0) : PlacementPolicy(n0) {
  BuildEqual(log().physical_disks_at(0));
}

SegmentPolicy::SegmentPolicy(OpLog initial_log)
    : PlacementPolicy(std::move(initial_log)) {
  BuildEqual(log().physical_disks_at(0));
}

void SegmentPolicy::BuildEqual(const std::vector<PhysicalDiskId>& owners) {
  std::vector<PhysicalDiskId> sorted = owners;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<Width> targets = TargetShares(sorted.size());
  segments_.clear();
  uint64_t start = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    segments_.push_back(Segment{start, sorted[i]});
    start += static_cast<uint64_t>(targets[i]);  // mod 2^64: wraps to 0 last.
  }
}

Status SegmentPolicy::OnOp(const ScalingOp& op) {
  RebalanceTo(log().physical_disks());
  return OkStatus();
}

void SegmentPolicy::RebalanceTo(const std::vector<PhysicalDiskId>& owners) {
  std::vector<PhysicalDiskId> sorted = owners;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<Width> targets = TargetShares(sorted.size());
  const auto index_of = [&](PhysicalDiskId disk) -> int64_t {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), disk);
    if (it == sorted.end() || *it != disk) {
      return -1;  // Not a live owner: its segments are fully released.
    }
    return it - sorted.begin();
  };

  // Current share per live owner.
  const size_t count = segments_.size();
  std::vector<Width> share(sorted.size(), 0);
  for (size_t i = 0; i < count; ++i) {
    const Width width =
        count == 1 ? kTotalSpace
                   : Width{(i + 1 < count ? segments_[i + 1].start : 0) -
                           segments_[i].start};
    const int64_t owner = index_of(segments_[i].owner);
    if (owner >= 0) {
      share[static_cast<size_t>(owner)] += width;
    }
  }

  // Donors release exactly their surplus; receivers take exactly their
  // deficit. The totals match (both sides sum to total - sum(min(share,
  // target))), so every released unit finds a receiver.
  std::vector<Width> release(sorted.size(), 0);
  std::vector<Width> deficit(sorted.size(), 0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (share[i] > targets[i]) {
      release[i] = share[i] - targets[i];
    } else {
      deficit[i] = targets[i] - share[i];
    }
  }

  // Pass 1, address order: split each donor segment into a kept low part
  // and a released high part until the donor's surplus is gone.
  std::vector<Piece> pieces;
  pieces.reserve(count + sorted.size());
  for (size_t i = 0; i < count; ++i) {
    const Width width =
        count == 1 ? kTotalSpace
                   : Width{(i + 1 < count ? segments_[i + 1].start : 0) -
                           segments_[i].start};
    const uint64_t start = segments_[i].start;
    const int64_t owner = index_of(segments_[i].owner);
    if (owner < 0) {
      pieces.push_back(Piece{start, width, -1});
      continue;
    }
    Width& to_release = release[static_cast<size_t>(owner)];
    const Width released = std::min(width, to_release);
    const Width kept = width - released;
    if (kept > 0) {
      pieces.push_back(Piece{start, kept, segments_[i].owner});
    }
    if (released > 0) {
      pieces.push_back(
          Piece{start + static_cast<uint64_t>(kept), released, -1});
      to_release -= released;
    }
  }

  // Pass 2: hand released pieces to receivers, lowest physical id first,
  // splitting pieces at deficit boundaries.
  std::vector<Segment> rebuilt;
  rebuilt.reserve(pieces.size());
  size_t receiver = 0;
  for (const Piece& piece : pieces) {
    if (piece.owner >= 0) {
      rebuilt.push_back(Segment{piece.start, piece.owner});
      continue;
    }
    uint64_t start = piece.start;
    Width width = piece.width;
    while (width > 0) {
      while (receiver < sorted.size() && deficit[receiver] == 0) {
        ++receiver;
      }
      SCADDAR_CHECK(receiver < sorted.size());
      const Width taken = std::min(width, deficit[receiver]);
      rebuilt.push_back(Segment{start, sorted[receiver]});
      deficit[receiver] -= taken;
      start += static_cast<uint64_t>(taken);
      width -= taken;
    }
  }
  SCADDAR_CHECK(!rebuilt.empty() && rebuilt.front().start == 0);

  // Merge adjacent same-owner runs to hold the table at the fragmentation
  // floor.
  segments_.clear();
  for (const Segment& segment : rebuilt) {
    if (!segments_.empty() && segments_.back().owner == segment.owner) {
      continue;
    }
    segments_.push_back(segment);
  }
}

PhysicalDiskId SegmentPolicy::OwnerOfPoint(uint64_t key) const {
  // Last segment whose start <= key; the table always starts at 0.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](uint64_t k, const Segment& s) { return k < s.start; });
  SCADDAR_DCHECK(it != segments_.begin());
  return (it - 1)->owner;
}

PhysicalDiskId SegmentPolicy::Locate(ObjectId object,
                                     BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  return OwnerOfPoint(Mix64(x0[static_cast<size_t>(block)]));
}

}  // namespace scaddar
