#ifndef SCADDAR_PLACEMENT_SHARD_MAP_H_
#define SCADDAR_PLACEMENT_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "util/statusor.h"

namespace scaddar {

/// The shared key->shard router core: Lamping & Veach's jump consistent
/// hash over a dynamic *seat* table. Both shard routers in the tree sit on
/// top of it — the serving runtime's stream->worker-shard router
/// (`server/shard_router`) and the cluster layer's object->server-shard
/// router (`cluster/cluster_server`).
///
/// Seats vs. members: jump hash maps a key to seat `JumpBucket(key,
/// num_seats)`; each seat is occupied by a *member* (a stable shard
/// identity that survives renumbering). Growing appends a seat — exactly
/// the minimal ~1/(N+1) of keys jump to it, nothing else moves. Jump hash
/// natively shrinks only from the tail, so removing an arbitrary member
/// uses the same swap-with-last trick as `JumpHashPolicy`: the last seat's
/// member takes over the vacated seat and the seat count drops by one. Keys
/// on the vacated seat land on the swapped-in member, keys on the former
/// last seat redistribute uniformly — roughly twice the minimal movement,
/// the known price of arbitrary removal under jump hash (EXP-G quantifies
/// it against SCADDAR's clean removal at the disk layer; `bench_cluster`
/// does the same at the shard layer).
///
/// `epoch()` counts applied membership changes — the "cluster epoch" the
/// routing is defined over; callers publish it alongside round state so
/// concurrent readers can assert they routed against the epoch they think
/// they did.
class ShardMap {
 public:
  /// Seats 0..`initial_members`-1 occupied by members 0..n-1 (clamped to
  /// >= 1). Member ids above that are handed out by `AddMember`.
  explicit ShardMap(int initial_members);

  /// Rebuilds a map from checkpointed parts. `seats` must be non-empty with
  /// distinct non-negative members, all below `next_member` (ids are never
  /// reused, so every seated member predates the next handout); `epoch` must
  /// be >= 0.
  static StatusOr<ShardMap> FromParts(std::vector<int> seats, int next_member,
                                      int64_t epoch);

  /// The member owning `key` at the current epoch.
  int MemberOf(uint64_t key) const;

  /// Appends a seat; returns the new member's id (stable for its lifetime,
  /// never reused).
  int AddMember();

  /// Removes `member` via swap-with-last; InvalidArgument if absent or if
  /// it is the last remaining member.
  Status RemoveMember(int member);

  int num_seats() const { return static_cast<int>(seats_.size()); }

  /// seat -> member id occupying it.
  const std::vector<int>& seats() const { return seats_; }

  /// Membership changes applied so far (the routing epoch).
  int64_t epoch() const { return epoch_; }

  /// The id `AddMember` will hand out next (checkpointed so ids stay
  /// never-reused across a restart).
  int next_member() const { return next_member_; }

  bool HasMember(int member) const { return SeatOf(member) >= 0; }

  /// Seat occupied by `member`, or -1.
  int SeatOf(int member) const;

 private:
  std::vector<int> seats_;
  int next_member_ = 0;
  int64_t epoch_ = 0;
};

/// Keys from `keys` whose member differs between `before` and `after` —
/// the delta set a membership change obliges the caller to migrate. Order
/// follows `keys`.
std::vector<uint64_t> ChangedKeys(const ShardMap& before,
                                  const ShardMap& after,
                                  const std::vector<uint64_t>& keys);

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_SHARD_MAP_H_
