#ifndef SCADDAR_PLACEMENT_SEGMENT_POLICY_H_
#define SCADDAR_PLACEMENT_SEGMENT_POLICY_H_

#include <cstdint>
#include <vector>

#include "placement/policy.h"

namespace scaddar {

/// ASURA-style segment placement (Ishikawa 2013): the 64-bit hash space is
/// partitioned into contiguous segments, each owned by one disk, and a key
/// lands on the owner of the segment containing its hash. Every scaling
/// operation rebalances the segment table to *exact* per-disk targets
/// (total/2^64 within one unit), carving only the surplus: additions take
/// precisely a 1/(n+1) slice from the existing disks, removals hand the
/// departed disk's segments to whoever is under target — so movement is
/// minimal and uniformity is exact by construction, at any churn depth.
///
/// The trade-off the comparator bench (EXP-G) quantifies: the table itself.
/// Lookup is O(log S) binary search and S (the segment count) grows with
/// churn — each operation can split O(n) segments — where SCADDAR's state
/// is O(ops) and jump/round-hashing carry O(n). Adjacent same-owner
/// segments are merged after every rebalance to keep S at the fragmentation
/// floor, but unlike SCADDAR the table can never *shrink* back to O(1) per
/// disk without a full reshuffle.
class SegmentPolicy final : public PlacementPolicy {
 public:
  explicit SegmentPolicy(int64_t n0);
  explicit SegmentPolicy(OpLog initial_log);

  std::string_view name() const override { return "segment"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  /// Segments in the current table — the state-size axis of EXP-G.
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }

  /// Owner of the segment containing hash point `key`; exposed for tests.
  PhysicalDiskId OwnerOfPoint(uint64_t key) const;

 protected:
  Status OnOp(const ScalingOp& op) override;

 private:
  /// One contiguous slice [start, next segment's start) of the hash space.
  /// The table always starts at 0 and covers the full 2^64 range.
  struct Segment {
    uint64_t start = 0;
    PhysicalDiskId owner = 0;
  };

  /// Rebalances the table onto `owners` (ascending physical ids): every
  /// owner ends at its exact target share, donors release only surplus,
  /// receivers take only deficit. Segments owned by disks absent from
  /// `owners` are treated as fully released.
  void RebalanceTo(const std::vector<PhysicalDiskId>& owners);

  /// Equal partition of the table across `owners` (initial construction).
  void BuildEqual(const std::vector<PhysicalDiskId>& owners);

  std::vector<Segment> segments_;  // Sorted by start; segments_[0].start==0.
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_SEGMENT_POLICY_H_
