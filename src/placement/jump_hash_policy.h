#ifndef SCADDAR_PLACEMENT_JUMP_HASH_POLICY_H_
#define SCADDAR_PLACEMENT_JUMP_HASH_POLICY_H_

#include <vector>

#include "placement/policy.h"

namespace scaddar {

/// Lamping & Veach's jump consistent hash (2014) — a modern stateless
/// comparator for SCADDAR (the ideas the paper pioneered were later covered
/// by this family). `JumpBucket(key, n)` maps a key to one of `n` buckets
/// such that growing `n` moves exactly the minimal fraction of keys.
int64_t JumpBucket(uint64_t key, int64_t num_buckets);

/// Placement policy over jump hash. Additions are optimal (minimal movement,
/// uniform). Jump hash natively supports only shrinking from the *tail*, so
/// an arbitrary-disk removal is emulated with the swap-with-last trick:
/// the last bucket's disk takes over the removed bucket position. The final
/// distribution stays uniform, but roughly *twice* the minimal number of
/// blocks move, and the removed disk's blocks all land on a single disk —
/// exactly the behaviours the comparator bench (EXP-G) quantifies against
/// SCADDAR's clean removal.
class JumpHashPolicy final : public PlacementPolicy {
 public:
  explicit JumpHashPolicy(int64_t n0);
  explicit JumpHashPolicy(OpLog initial_log);

  std::string_view name() const override { return "jump"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  /// Bucket order (position -> physical id); exposed for tests.
  const std::vector<PhysicalDiskId>& buckets() const { return buckets_; }

 protected:
  Status OnOp(const ScalingOp& op) override;

 private:
  std::vector<PhysicalDiskId> buckets_;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_JUMP_HASH_POLICY_H_
