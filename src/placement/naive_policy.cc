#include "placement/naive_policy.h"

#include "core/remap.h"

namespace scaddar {

DiskSlot NaivePolicy::LocateSlot(ObjectId object, BlockIndex block) const {
  const std::vector<uint64_t>& x0_vec = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0_vec.size()));
  const uint64_t x0 = x0_vec[static_cast<size_t>(block)];
  const Epoch start = epoch_added(object);
  DiskSlot slot = static_cast<DiskSlot>(
      x0 % static_cast<uint64_t>(log().disks_after(start)));
  for (Epoch j = start + 1; j <= log().num_ops(); ++j) {
    const ScalingOp& op = log().op(j);
    const int64_t n_prev = log().disks_after(j - 1);
    const int64_t n_cur = log().disks_after(j);
    slot = op.is_add() ? NaiveAddSlot(x0, slot, n_prev, n_cur)
                       : NaiveRemoveSlot(x0, slot, n_prev, n_cur, op);
  }
  return slot;
}

PhysicalDiskId NaivePolicy::Locate(ObjectId object, BlockIndex block) const {
  const DiskSlot slot = LocateSlot(object, block);
  return log().physical_disks()[static_cast<size_t>(slot)];
}

Status NaivePolicy::OnOp(const ScalingOp& /*op*/) { return OkStatus(); }

}  // namespace scaddar
