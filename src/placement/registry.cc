#include "placement/registry.h"

#include "placement/consistent_hash_policy.h"
#include "placement/directory_policy.h"
#include "placement/jump_hash_policy.h"
#include "placement/mod_policy.h"
#include "placement/naive_policy.h"
#include "placement/round_hashing_policy.h"
#include "placement/round_robin_policy.h"
#include "placement/scaddar_policy.h"
#include "placement/segment_policy.h"

namespace scaddar {

StatusOr<std::unique_ptr<PlacementPolicy>> MakePolicy(
    std::string_view name, int64_t n0, const PolicyOptions& options) {
  if (n0 <= 0) {
    return InvalidArgumentError("initial disk count must be positive");
  }
  if (name == "scaddar") {
    return std::unique_ptr<PlacementPolicy>(new ScaddarPolicy(n0));
  }
  if (name == "naive") {
    return std::unique_ptr<PlacementPolicy>(new NaivePolicy(n0));
  }
  if (name == "mod") {
    return std::unique_ptr<PlacementPolicy>(new ModPolicy(n0));
  }
  if (name == "directory") {
    return std::unique_ptr<PlacementPolicy>(
        new DirectoryPolicy(n0, options.seed));
  }
  if (name == "roundrobin") {
    return std::unique_ptr<PlacementPolicy>(new RoundRobinPolicy(n0));
  }
  if (name == "jump") {
    return std::unique_ptr<PlacementPolicy>(new JumpHashPolicy(n0));
  }
  if (name == "chash") {
    return std::unique_ptr<PlacementPolicy>(
        new ConsistentHashPolicy(n0, options.vnodes));
  }
  if (name == "roundhash") {
    return std::unique_ptr<PlacementPolicy>(new RoundHashingPolicy(n0));
  }
  if (name == "segment") {
    return std::unique_ptr<PlacementPolicy>(new SegmentPolicy(n0));
  }
  return NotFoundError("unknown placement policy");
}

StatusOr<std::unique_ptr<PlacementPolicy>> MakePolicyWithDisks(
    std::string_view name, std::vector<PhysicalDiskId> disks,
    const PolicyOptions& options) {
  SCADDAR_ASSIGN_OR_RETURN(OpLog log,
                           OpLog::CreateWithIds(std::move(disks)));
  if (name == "scaddar") {
    return std::unique_ptr<PlacementPolicy>(new ScaddarPolicy(std::move(log)));
  }
  if (name == "naive") {
    return std::unique_ptr<PlacementPolicy>(new NaivePolicy(std::move(log)));
  }
  if (name == "mod") {
    return std::unique_ptr<PlacementPolicy>(new ModPolicy(std::move(log)));
  }
  if (name == "directory") {
    return std::unique_ptr<PlacementPolicy>(
        new DirectoryPolicy(std::move(log), options.seed));
  }
  if (name == "roundrobin") {
    return std::unique_ptr<PlacementPolicy>(
        new RoundRobinPolicy(std::move(log)));
  }
  if (name == "jump") {
    return std::unique_ptr<PlacementPolicy>(
        new JumpHashPolicy(std::move(log)));
  }
  if (name == "chash") {
    return std::unique_ptr<PlacementPolicy>(
        new ConsistentHashPolicy(std::move(log), options.vnodes));
  }
  if (name == "roundhash") {
    return std::unique_ptr<PlacementPolicy>(
        new RoundHashingPolicy(std::move(log)));
  }
  if (name == "segment") {
    return std::unique_ptr<PlacementPolicy>(new SegmentPolicy(std::move(log)));
  }
  return NotFoundError("unknown placement policy");
}

std::vector<std::string_view> KnownPolicyNames() {
  return {"scaddar", "naive", "mod", "directory", "roundrobin", "jump",
          "chash", "roundhash", "segment"};
}

}  // namespace scaddar
