#ifndef SCADDAR_PLACEMENT_DIRECTORY_POLICY_H_
#define SCADDAR_PLACEMENT_DIRECTORY_POLICY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "placement/policy.h"
#include "random/prng.h"

namespace scaddar {

/// Appendix A's directory ("book-keeping") approach: remember every block's
/// physical disk explicitly and, on each scaling operation, move the minimum
/// set of blocks using *fresh* true randomness from an internal generator.
///
/// This is the gold standard for both RO1 (exactly minimal movement, in
/// expectation) and RO2 (perfect uniformity forever — no range shrinkage),
/// at the cost the paper rejects: O(total blocks) directory state, directory
/// updates on every operation, and a potential concurrency bottleneck in a
/// real server. The benches use it as the quality reference SCADDAR is
/// measured against.
class DirectoryPolicy final : public PlacementPolicy {
 public:
  /// `seed` drives the fresh randomness used for relocations.
  DirectoryPolicy(int64_t n0, uint64_t seed);
  DirectoryPolicy(OpLog initial_log, uint64_t seed);

  std::string_view name() const override { return "directory"; }

  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const override;

  /// Directory entries held (== total blocks): the storage-cost metric the
  /// paper contrasts with the op log.
  int64_t directory_entries() const;

 protected:
  Status OnObjectAdded(ObjectId id) override;
  Status OnObjectRemoved(ObjectId id) override;
  Status OnOp(const ScalingOp& op) override;

 private:
  std::unique_ptr<Prng> prng_;
  // Directory: per object, each block's physical disk id.
  std::unordered_map<ObjectId, std::vector<PhysicalDiskId>> directory_;
};

}  // namespace scaddar

#endif  // SCADDAR_PLACEMENT_DIRECTORY_POLICY_H_
