#include "placement/round_hashing_policy.h"

#include <algorithm>
#include <bit>

#include "random/splitmix64.h"

namespace scaddar {

int64_t RoundHashingPolicy::RoundBucket(uint64_t key, int64_t num_buckets) {
  SCADDAR_DCHECK(num_buckets > 0);
  const uint64_t n = static_cast<uint64_t>(num_buckets);
  // Level L: 2^L <= n < 2^(L+1). The split frontier s = n - 2^L marks how
  // many parent buckets have already split into their high images.
  const int level = std::bit_width(n) - 1;
  const uint64_t parent_mask = (uint64_t{1} << level) - 1;
  uint64_t pos = key & parent_mask;
  if (pos < n - (parent_mask + 1)) {
    // Parent already split: re-hash into the doubled round. The result is
    // either `pos` or `pos + 2^L`, and the latter is < n exactly because
    // pos is below the frontier.
    pos = key & ((parent_mask << 1) | 1);
  }
  return static_cast<int64_t>(pos);
}

RoundHashingPolicy::RoundHashingPolicy(int64_t n0) : PlacementPolicy(n0) {
  buckets_ = log().physical_disks_at(0);
}

RoundHashingPolicy::RoundHashingPolicy(OpLog initial_log)
    : PlacementPolicy(std::move(initial_log)) {
  buckets_ = log().physical_disks_at(0);
}

Status RoundHashingPolicy::OnOp(const ScalingOp& op) {
  const Epoch j = log().num_ops();
  if (op.is_add()) {
    // New physical ids take the tail positions: each one is the high image
    // of the parent at the current frontier, so only that parent's keys
    // re-hash.
    const std::vector<PhysicalDiskId>& now = log().physical_disks_at(j);
    const int64_t n_prev = log().disks_after(j - 1);
    for (size_t i = static_cast<size_t>(n_prev); i < now.size(); ++i) {
      buckets_.push_back(now[i]);
    }
    return OkStatus();
  }
  const std::vector<PhysicalDiskId>& before = log().physical_disks_at(j - 1);
  for (const DiskSlot slot : op.removed_slots()) {
    const PhysicalDiskId removed = before[static_cast<size_t>(slot)];
    const auto it = std::find(buckets_.begin(), buckets_.end(), removed);
    SCADDAR_CHECK(it != buckets_.end());
    *it = buckets_.back();  // Swap-with-last, then shrink from the tail.
    buckets_.pop_back();
  }
  return OkStatus();
}

PhysicalDiskId RoundHashingPolicy::Locate(ObjectId object,
                                          BlockIndex block) const {
  const std::vector<uint64_t>& x0 = x0_of(object);
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0.size()));
  const uint64_t key = Mix64(x0[static_cast<size_t>(block)]);
  const int64_t bucket =
      RoundBucket(key, static_cast<int64_t>(buckets_.size()));
  return buckets_[static_cast<size_t>(bucket)];
}

}  // namespace scaddar
