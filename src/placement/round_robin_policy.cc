#include "placement/round_robin_policy.h"

namespace scaddar {

Status RoundRobinPolicy::OnObjectAdded(ObjectId id) {
  offsets_[id] = next_offset_++;
  return OkStatus();
}

Status RoundRobinPolicy::OnOp(const ScalingOp& /*op*/) {
  // Re-striping is implicit: Locate always stripes over the current count.
  return OkStatus();
}

PhysicalDiskId RoundRobinPolicy::Locate(ObjectId object,
                                        BlockIndex block) const {
  const auto it = offsets_.find(object);
  SCADDAR_CHECK(it != offsets_.end());
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(x0_of(object).size()));
  const int64_t n = current_disks();
  const int64_t slot = (it->second + block) % n;
  return log().physical_disks()[static_cast<size_t>(slot)];
}

}  // namespace scaddar
