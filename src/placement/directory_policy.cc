#include "placement/directory_policy.h"

#include <algorithm>

#include "random/distributions.h"

namespace scaddar {

DirectoryPolicy::DirectoryPolicy(int64_t n0, uint64_t seed)
    : PlacementPolicy(n0), prng_(MakePrng(PrngKind::kSplitMix64, seed)) {}

DirectoryPolicy::DirectoryPolicy(OpLog initial_log, uint64_t seed)
    : PlacementPolicy(std::move(initial_log)),
      prng_(MakePrng(PrngKind::kSplitMix64, seed)) {}

Status DirectoryPolicy::OnObjectAdded(ObjectId id) {
  // Initial placement matches every other policy: X0 mod N over the
  // *current* live disks (new objects are written under the current epoch).
  const std::vector<uint64_t>& x0 = x0_of(id);
  const std::vector<PhysicalDiskId>& physical = log().physical_disks();
  std::vector<PhysicalDiskId>& entries = directory_[id];
  entries.reserve(x0.size());
  const auto n = static_cast<uint64_t>(log().current_disks());
  for (const uint64_t x : x0) {
    entries.push_back(physical[static_cast<size_t>(x % n)]);
  }
  return OkStatus();
}

Status DirectoryPolicy::OnObjectRemoved(ObjectId id) {
  directory_.erase(id);
  return OkStatus();
}

Status DirectoryPolicy::OnOp(const ScalingOp& op) {
  const Epoch j = log().num_ops();
  const int64_t n_prev = log().disks_after(j - 1);
  const int64_t n_cur = log().disks_after(j);
  if (op.is_add()) {
    // Move each block independently with probability z = (Ncur-Nprev)/Ncur
    // onto a uniformly chosen new disk: minimal expected movement, perfectly
    // uniform result.
    const double z = static_cast<double>(n_cur - n_prev) /
                     static_cast<double>(n_cur);
    const std::vector<PhysicalDiskId>& physical = log().physical_disks_at(j);
    for (auto& [id, entries] : directory_) {
      for (PhysicalDiskId& disk : entries) {
        if (Bernoulli(*prng_, z)) {
          const auto pick = static_cast<int64_t>(UniformUint64(
              *prng_, static_cast<uint64_t>(op.add_count())));
          disk = physical[static_cast<size_t>(n_prev + pick)];
        }
      }
    }
    return OkStatus();
  }
  // Removal: only blocks on removed physical disks move, each to a
  // uniformly chosen survivor.
  const std::vector<PhysicalDiskId>& before = log().physical_disks_at(j - 1);
  std::vector<PhysicalDiskId> removed_physical;
  removed_physical.reserve(op.removed_slots().size());
  for (const DiskSlot slot : op.removed_slots()) {
    removed_physical.push_back(before[static_cast<size_t>(slot)]);
  }
  std::sort(removed_physical.begin(), removed_physical.end());
  const std::vector<PhysicalDiskId>& survivors = log().physical_disks_at(j);
  for (auto& [id, entries] : directory_) {
    for (PhysicalDiskId& disk : entries) {
      if (std::binary_search(removed_physical.begin(), removed_physical.end(),
                             disk)) {
        const auto pick = UniformUint64(
            *prng_, static_cast<uint64_t>(survivors.size()));
        disk = survivors[static_cast<size_t>(pick)];
      }
    }
  }
  return OkStatus();
}

PhysicalDiskId DirectoryPolicy::Locate(ObjectId object,
                                       BlockIndex block) const {
  const auto it = directory_.find(object);
  SCADDAR_CHECK(it != directory_.end());
  SCADDAR_CHECK(block >= 0 &&
                block < static_cast<BlockIndex>(it->second.size()));
  return it->second[static_cast<size_t>(block)];
}

int64_t DirectoryPolicy::directory_entries() const {
  int64_t total = 0;
  for (const auto& [id, entries] : directory_) {
    total += static_cast<int64_t>(entries.size());
  }
  return total;
}

}  // namespace scaddar
