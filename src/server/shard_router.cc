#include "server/shard_router.h"

#include <algorithm>

#include "util/status.h"

namespace scaddar {

ShardRouter::ShardRouter(int num_shards, uint64_t seed)
    : map_(num_shards) {
  const int count = map_.num_seats();
  shards_.resize(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    shards_[static_cast<size_t>(s)].shard = s;
    // Golden-ratio stride keeps per-shard seeds decorrelated even for
    // adjacent shard numbers (the finalizer's mixing does the rest).
    shards_[static_cast<size_t>(s)].prng.state =
        seed ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(s + 1));
  }
}

int ShardRouter::ShardOf(int64_t stream_id) const {
  return map_.MemberOf(static_cast<uint64_t>(stream_id));
}

bool ShardRouter::Route(const std::vector<Stream>& streams) {
  // Steady-state fast path: the population is unchanged (same ids in the
  // same positions), so the cached shard lists are still exact.
  if (streams.size() == routed_ids_.size()) {
    bool unchanged = true;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].id() != routed_ids_[i]) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      return false;
    }
  }
  routed_ids_.resize(streams.size());
  shard_of_index_.resize(streams.size());
  for (ServingShard& shard : shards_) {
    shard.streams.clear();
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    const int64_t id = streams[i].id();
    const int shard = ShardOf(id);
    routed_ids_[i] = id;
    shard_of_index_[i] = shard;
    shards_[static_cast<size_t>(shard)].streams.push_back(i);
  }
  ++rebuilds_;
  return true;
}

}  // namespace scaddar
