#include "server/migration.h"

namespace scaddar {

void MigrationExecutor::EnqueuePlan(const MovePlan& plan) {
  for (const BlockMove& move : plan.moves()) {
    queue_.push_back(move.block);
  }
}

void MigrationExecutor::EnqueueReconciliation(const BlockStore& store,
                                              const PlacementPolicy& policy) {
  // Targets come from the per-object batch AF(): under SCADDAR that is one
  // compiled step-major pass per object instead of a virtual call plus a
  // full chain replay per block.
  std::vector<PhysicalDiskId> targets;
  for (const auto& [id, x0] : policy.objects_view()) {
    policy.LocateAllBlocks(id, targets);
    for (size_t i = 0; i < x0.size(); ++i) {
      const BlockRef ref{id, static_cast<BlockIndex>(i)};
      const StatusOr<PhysicalDiskId> current = store.LocationOf(ref);
      SCADDAR_CHECK(current.ok());
      if (*current != targets[i]) {
        queue_.push_back(ref);
      }
    }
  }
}

int64_t MigrationExecutor::RunRound(
    std::unordered_map<PhysicalDiskId, int64_t>& leftover, BlockStore& store,
    DiskArray& disks, const PlacementPolicy& policy) {
  int64_t moved = 0;
  // One pass over the queue: move what bandwidth permits, requeue the rest
  // in order.
  size_t remaining = queue_.size();
  while (remaining-- > 0) {
    const BlockRef ref = queue_.front();
    queue_.pop_front();
    const StatusOr<PhysicalDiskId> current = store.LocationOf(ref);
    if (!current.ok()) {
      continue;  // Object deleted while its move was queued.
    }
    const PhysicalDiskId target = policy.Locate(ref.object, ref.block);
    if (*current == target) {
      continue;  // Already in place (duplicate or superseded entry).
    }
    auto src = leftover.find(*current);
    auto dst = leftover.find(target);
    if (src == leftover.end() || dst == leftover.end() || src->second <= 0 ||
        dst->second <= 0) {
      queue_.push_back(ref);  // No bandwidth this round; retry later.
      continue;
    }
    --src->second;
    --dst->second;
    const Status applied = store.ApplyMove(BlockMove{
        .block = ref,
        .from_slot = 0,
        .to_slot = 0,
        .from_physical = *current,
        .to_physical = target,
    });
    SCADDAR_CHECK(applied.ok());
    disks.GetDisk(*current).value()->RecordMigrationTransfers(1);
    disks.GetDisk(target).value()->RecordMigrationTransfers(1);
    ++moved;
    ++total_moved_;
  }
  return moved;
}

}  // namespace scaddar
