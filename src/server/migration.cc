#include "server/migration.h"

#include <algorithm>

#include "faults/injector.h"
#include "storage/block_io.h"
#include "storage/move_journal.h"
#include "util/thread_pool.h"

namespace scaddar {

void MigrationExecutor::PushRef(BlockRef ref) {
  queue_.push_back(ref);
  ++pending_per_object_[ref.object];
}

BlockRef MigrationExecutor::PopFront() {
  const BlockRef ref = queue_.front();
  queue_.pop_front();
  const auto it = pending_per_object_.find(ref.object);
  SCADDAR_CHECK(it != pending_per_object_.end());
  if (--it->second == 0) {
    pending_per_object_.erase(it);
  }
  return ref;
}

int64_t MigrationExecutor::pending_for(ObjectId object) const {
  const auto it = pending_per_object_.find(object);
  return it == pending_per_object_.end() ? 0 : it->second;
}

std::vector<BlockRef> MigrationExecutor::QueueSnapshot() const {
  return std::vector<BlockRef>(queue_.begin(), queue_.end());
}

void MigrationExecutor::Reset() {
  queue_.clear();
  pending_per_object_.clear();
  crashed_ = false;
}

void MigrationExecutor::EnqueuePlan(const MovePlan& plan) {
  for (const BlockMove& move : plan.moves()) {
    PushRef(move.block);
  }
}

namespace {

/// One object's slice of the flattened (object, block) scan space.
struct ScanEntry {
  ObjectId object = 0;
  int64_t blocks = 0;
  int64_t offset = 0;  // Flattened index of this object's block 0.
};

/// Appends every block in flattened range [lo, hi) whose store row disagrees
/// with the batch AF() to `out`. Read-only over store/policy, so shards can
/// run it concurrently; scanning contiguous flattened ranges in order keeps
/// the merged result identical to a single [0, total) scan.
void ScanRange(const std::vector<ScanEntry>& entries, int64_t lo, int64_t hi,
               const BlockStore& store, const PlacementPolicy& policy,
               std::vector<BlockRef>& out) {
  // First entry overlapping `lo`.
  auto it = std::upper_bound(
      entries.begin(), entries.end(), lo,
      [](int64_t v, const ScanEntry& e) { return v < e.offset; });
  SCADDAR_CHECK(it != entries.begin());
  --it;
  std::vector<PhysicalDiskId> targets;
  for (; it != entries.end() && it->offset < hi; ++it) {
    const BlockIndex begin =
        static_cast<BlockIndex>(std::max<int64_t>(lo - it->offset, 0));
    const BlockIndex end =
        static_cast<BlockIndex>(std::min<int64_t>(hi - it->offset, it->blocks));
    if (begin >= end) {
      continue;
    }
    targets.resize(static_cast<size_t>(end - begin));
    policy.LocateRange(it->object, begin, end,
                       std::span<PhysicalDiskId>(targets));
    const StatusOr<std::span<const PhysicalDiskId>> row =
        store.LocationsOf(it->object);
    SCADDAR_CHECK(row.ok());
    for (BlockIndex i = begin; i < end; ++i) {
      if ((*row)[static_cast<size_t>(i)] !=
          targets[static_cast<size_t>(i - begin)]) {
        out.push_back(BlockRef{it->object, i});
      }
    }
  }
}

}  // namespace

void MigrationExecutor::EnqueueReconciliation(
    const BlockStore& store, const PlacementPolicy& policy,
    const ParallelPlanOptions& options) {
  std::vector<ScanEntry> entries;
  entries.reserve(policy.objects_view().size());
  int64_t total = 0;
  for (const auto& [id, x0] : policy.objects_view()) {
    entries.push_back(
        ScanEntry{id, static_cast<int64_t>(x0.size()), total});
    total += static_cast<int64_t>(x0.size());
  }
  if (total == 0) {
    return;
  }
  policy.PrepareForBatch();

  const int threads =
      options.pool != nullptr ? options.pool->num_threads()
                              : options.num_threads;
  if (threads <= 1 || total < options.min_blocks_to_shard) {
    std::vector<BlockRef> divergent;
    ScanRange(entries, 0, total, store, policy, divergent);
    for (const BlockRef ref : divergent) {
      PushRef(ref);
    }
    return;
  }

  // Contiguous flattened shards, one per worker, merged in shard order —
  // identical to the serial scan for any thread count (the PR-1 planner
  // discipline).
  const int64_t chunk = (total + threads - 1) / threads;
  std::vector<std::vector<BlockRef>> shards(static_cast<size_t>(threads));
  auto scan_shard = [&](int t) {
    const int64_t lo = static_cast<int64_t>(t) * chunk;
    const int64_t hi = std::min<int64_t>(lo + chunk, total);
    if (lo < hi) {
      ScanRange(entries, lo, hi, store, policy,
                shards[static_cast<size_t>(t)]);
    }
  };
  if (options.pool != nullptr) {
    options.pool->ParallelFor(0, threads, [&](int64_t lo, int64_t hi) {
      for (int64_t t = lo; t < hi; ++t) {
        scan_shard(static_cast<int>(t));
      }
    });
  } else {
    ThreadPool transient(threads);
    transient.ParallelFor(0, threads, [&](int64_t lo, int64_t hi) {
      for (int64_t t = lo; t < hi; ++t) {
        scan_shard(static_cast<int>(t));
      }
    });
  }
  for (const std::vector<BlockRef>& shard : shards) {
    for (const BlockRef ref : shard) {
      PushRef(ref);
    }
  }
}

int64_t MigrationExecutor::RunRound(
    std::unordered_map<PhysicalDiskId, int64_t>& leftover, BlockStore& store,
    DiskArray& disks, const PlacementPolicy& policy) {
  if (crashed_) {
    return 0;  // The process is "dead" until SimulateCrashRestart.
  }
  const size_t round_items = queue_.size();
  if (round_items == 0) {
    return 0;
  }
  FaultInjector* const injector = disks.fault_injector();

  // Dequeue this round's entries; bandwidth-starved ones requeue behind any
  // entries enqueued mid-round, exactly like the scalar single pass.
  std::vector<BlockRef> items;
  items.reserve(round_items);
  for (size_t i = 0; i < round_items; ++i) {
    items.push_back(PopFront());
  }

  // Group by object once: store rows are stable spans for the whole round
  // (moves mutate entries in place), so current locations are read from the
  // live row at decision time and duplicate queue entries observe earlier
  // moves of the same round just as the scalar pass does.
  std::unordered_map<ObjectId, std::span<const PhysicalDiskId>> rows;
  constexpr size_t kSkipped = static_cast<size_t>(-1);
  std::vector<size_t> item_slot(items.size(), 0);
  std::vector<std::span<const PhysicalDiskId>> item_row(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const BlockRef ref = items[i];
    const auto [it, inserted] = rows.try_emplace(ref.object);
    if (inserted) {
      const StatusOr<std::span<const PhysicalDiskId>> row =
          store.LocationsOf(ref.object);
      // Object deleted while its moves were queued: every entry skips.
      it->second = row.ok() ? *row : std::span<const PhysicalDiskId>();
    }
    if (it->second.empty() || ref.block < 0 ||
        ref.block >= static_cast<BlockIndex>(it->second.size())) {
      item_slot[i] = kSkipped;  // Mirrors the scalar LocationOf error path.
      continue;
    }
    item_row[i] = it->second;
  }

  // Batch-resolve targets for items [first, end): one step-major pass per
  // object. Re-invoked mid-round by the epoch guard when a scaling op lands
  // while the round is executing — the remaining items re-plan against the
  // new epoch's AF() so no move chases a stale target.
  std::vector<PhysicalDiskId> item_target(items.size(), 0);
  const auto resolve_targets = [&](size_t first) {
    policy.PrepareForBatch();
    std::unordered_map<ObjectId,
                       std::pair<std::vector<BlockIndex>, std::vector<size_t>>>
        groups;
    for (size_t i = first; i < items.size(); ++i) {
      if (item_slot[i] == kSkipped) {
        continue;
      }
      auto& [blocks, indices] = groups[items[i].object];
      blocks.push_back(items[i].block);
      indices.push_back(i);
    }
    std::vector<PhysicalDiskId> targets;
    for (auto& [object, group] : groups) {
      auto& [blocks, indices] = group;
      targets.resize(blocks.size());
      policy.LocateMany(object, std::span<const BlockIndex>(blocks),
                        std::span<PhysicalDiskId>(targets));
      for (size_t k = 0; k < indices.size(); ++k) {
        item_target[indices[k]] = targets[k];
      }
    }
  };
  int64_t epoch_revision = policy.log().revision();
  resolve_targets(0);

  // An injected crash abandons the round: only durably-written state (the
  // journal and the store) survives; queued work is rebuilt by the
  // post-restart reconciliation scan.
  const auto crash_at = [&](MovePhase phase) {
    if (injector != nullptr && injector->CrashAt(phase)) {
      crashed_ = true;
      return true;
    }
    return false;
  };

  // Two-phase (engine) rounds stage every move first and commit after the
  // engine lands the round's copies in one batched submission per disk.
  struct StagedMove {
    int64_t entry = 0;
    BlockRef ref;
    PhysicalDiskId from = 0;
    PhysicalDiskId to = 0;
    int64_t ordinal = -1;  // Injector move ordinal at stage time.
  };
  std::vector<StagedMove> staged_moves;

  // Spend bandwidth in queue order with the precomputed targets.
  int64_t moved = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (item_slot[i] == kSkipped) {
      continue;
    }
    const BlockRef ref = items[i];
    const PhysicalDiskId current = item_row[i][static_cast<size_t>(ref.block)];
    if (current == item_target[i]) {
      continue;  // Already in place (duplicate or superseded entry).
    }
    if (injector != nullptr) {
      injector->BeginMove();  // May fire a hook that applies a scaling op.
    }
    // Epoch guard: if a scaling operation was applied since the round's
    // targets were resolved (a hook racing the round, or any reentrant
    // caller), re-plan the remaining items against the new epoch.
    if (policy.log().revision() != epoch_revision) {
      epoch_revision = policy.log().revision();
      resolve_targets(i);
      if (current == item_target[i]) {
        continue;  // The new epoch wants this block where it already is.
      }
    }
    const PhysicalDiskId target = item_target[i];
    auto src = leftover.find(current);
    auto dst = leftover.find(target);
    if (src == leftover.end() || dst == leftover.end() || src->second <= 0 ||
        dst->second <= 0) {
      PushRef(ref);  // No bandwidth this round; retry later.
      continue;
    }
    --src->second;
    --dst->second;
    if (injector != nullptr && injector->FailTransfer(current, target)) {
      // Transient I/O error: the attempt burned its bandwidth; re-queue the
      // block and retry in a later round (the executor's backoff).
      disks.GetDisk(current).value()->RecordTransientError();
      disks.GetDisk(target).value()->RecordTransientError();
      ++transient_errors_;
      PushRef(ref);
      continue;
    }
    if (journal_ == nullptr) {
      const Status applied = store.ApplyMove(BlockMove{
          .block = ref,
          .from_slot = 0,
          .to_slot = 0,
          .from_physical = current,
          .to_physical = target,
      });
      SCADDAR_CHECK(applied.ok());
    } else if (io_ != nullptr) {
      // Two-phase stage pass: log the intent and allocate the staged slot;
      // the bytes move (and the copied/commit records follow) after the
      // loop, once the engine has pushed the whole round's copies down.
      const int64_t entry = journal_->Begin(ref, current, target);
      if (crash_at(MovePhase::kIntentLogged)) {
        return moved;
      }
      const Status staged = store.StageCopy(ref, target);
      if (!staged.ok() && staged.code() == StatusCode::kUnavailable) {
        // The backend refused the stage (disk open failure and friends):
        // transient, like a failed transfer — close the intent and retry.
        journal_->MarkAborted(entry);
        disks.GetDisk(current).value()->RecordTransientError();
        disks.GetDisk(target).value()->RecordTransientError();
        ++transient_errors_;
        PushRef(ref);
        continue;
      }
      SCADDAR_CHECK(staged.ok());
      if (crash_at(MovePhase::kCopyStaged)) {
        return moved;
      }
      staged_moves.push_back(StagedMove{
          entry, ref, current, target,
          injector != nullptr ? injector->current_move() : -1});
      continue;  // Transfers are recorded when the copy lands.
    } else {
      // The write-ahead protocol. Each `crash_at` is the boundary right
      // after a durable write; dying at any of them leaves a state
      // `MoveJournal::Recover` replays to the same final placement.
      const int64_t entry = journal_->Begin(ref, current, target);
      if (crash_at(MovePhase::kIntentLogged)) {
        return moved;
      }
      SCADDAR_CHECK(store.StageCopy(ref, target).ok());
      if (crash_at(MovePhase::kCopyStaged)) {
        return moved;
      }
      journal_->MarkCopied(entry);
      if (crash_at(MovePhase::kCopyLogged)) {
        return moved;
      }
      SCADDAR_CHECK(store.CommitStagedMove(ref, current, target).ok());
      if (crash_at(MovePhase::kLocationFlipped)) {
        return moved;
      }
      journal_->MarkCommitted(entry);
      if (crash_at(MovePhase::kCommitLogged)) {
        return moved;
      }
    }
    disks.GetDisk(current).value()->RecordMigrationTransfers(1);
    disks.GetDisk(target).value()->RecordMigrationTransfers(1);
    ++moved;
    ++total_moved_;
  }

  // Two-phase commit pass: land the round's staged copies — batched source
  // reads, batched target writes (one submission per disk each), one flush
  // per touched disk — then walk the stage order. Copies the backend failed
  // abort and re-queue; intact ones complete the write-ahead protocol,
  // where "copied" now genuinely means durable bytes.
  if (io_ != nullptr && !staged_moves.empty()) {
    std::vector<BlockRef> failed;
    SCADDAR_CHECK(io_->FinishMigrationRound(&failed).ok());
    const auto copy_failed = [&failed](BlockRef ref) {
      return std::find(failed.begin(), failed.end(), ref) != failed.end();
    };
    for (const StagedMove& m : staged_moves) {
      if (injector != nullptr) {
        // Crash events name moves by ordinal; point the injector back at
        // this move for the commit-side phase boundaries.
        injector->ResumeMove(m.ordinal);
      }
      if (copy_failed(m.ref)) {
        SCADDAR_CHECK(store.AbortStagedCopy(m.ref).ok());
        journal_->MarkAborted(m.entry);
        disks.GetDisk(m.from).value()->RecordTransientError();
        disks.GetDisk(m.to).value()->RecordTransientError();
        ++transient_errors_;
        PushRef(m.ref);
        continue;
      }
      journal_->MarkCopied(m.entry);
      if (crash_at(MovePhase::kCopyLogged)) {
        return moved;
      }
      SCADDAR_CHECK(store.CommitStagedMove(m.ref, m.from, m.to).ok());
      if (crash_at(MovePhase::kLocationFlipped)) {
        return moved;
      }
      journal_->MarkCommitted(m.entry);
      if (crash_at(MovePhase::kCommitLogged)) {
        return moved;
      }
      disks.GetDisk(m.from).value()->RecordMigrationTransfers(1);
      disks.GetDisk(m.to).value()->RecordMigrationTransfers(1);
      ++moved;
      ++total_moved_;
    }
  }
  return moved;
}

int64_t MigrationExecutor::RunRoundScalar(
    std::unordered_map<PhysicalDiskId, int64_t>& leftover, BlockStore& store,
    DiskArray& disks, const PlacementPolicy& policy) {
  int64_t moved = 0;
  // One pass over the queue: move what bandwidth permits, requeue the rest
  // in order.
  size_t remaining = queue_.size();
  while (remaining-- > 0) {
    const BlockRef ref = PopFront();
    const StatusOr<PhysicalDiskId> current = store.LocationOf(ref);
    if (!current.ok()) {
      continue;  // Object deleted while its move was queued.
    }
    const PhysicalDiskId target = policy.Locate(ref.object, ref.block);
    if (*current == target) {
      continue;  // Already in place (duplicate or superseded entry).
    }
    auto src = leftover.find(*current);
    auto dst = leftover.find(target);
    if (src == leftover.end() || dst == leftover.end() || src->second <= 0 ||
        dst->second <= 0) {
      PushRef(ref);  // No bandwidth this round; retry later.
      continue;
    }
    --src->second;
    --dst->second;
    const Status applied = store.ApplyMove(BlockMove{
        .block = ref,
        .from_slot = 0,
        .to_slot = 0,
        .from_physical = *current,
        .to_physical = target,
    });
    SCADDAR_CHECK(applied.ok());
    disks.GetDisk(*current).value()->RecordMigrationTransfers(1);
    disks.GetDisk(target).value()->RecordMigrationTransfers(1);
    ++moved;
    ++total_moved_;
  }
  return moved;
}

}  // namespace scaddar
