#include "server/location_cursor.h"

#include <algorithm>

#include "server/migration.h"

namespace scaddar {

LocationCursor::LocationCursor(ObjectId object, int64_t num_blocks,
                               int64_t window)
    : object_(object),
      num_blocks_(num_blocks),
      window_size_(std::max<int64_t>(window, 1)) {
  SCADDAR_CHECK(num_blocks > 0);
}

bool LocationCursor::WindowCovers(BlockIndex block,
                                  const PlacementPolicy& policy,
                                  const BlockStore& store) const {
  if (block < window_start_ ||
      block >= window_start_ + static_cast<BlockIndex>(window_.size())) {
    return false;
  }
  if (policy_revision_ != policy.log().revision()) {
    return false;
  }
  // Global store compare first (the idle common case); on a miss, the
  // window is still good if *this object's* row is untouched — foreign
  // objects' migration moves must not evict a clean window.
  return store_revision_ == store.mutation_revision() ||
         row_revision_ == store.RowRevision(object_);
}

PhysicalDiskId LocationCursor::Get(BlockIndex block,
                                   const PlacementPolicy& policy,
                                   const BlockStore& store,
                                   const MigrationExecutor& migration) {
  SCADDAR_CHECK(block >= 0 && block < num_blocks_);
  if (migration.pending_for(object_) != 0) {
    // The object's locations are volatile mid-migration: any round may land
    // a move, so a cached window would be invalidated every round. Serve
    // from the materialized row directly and keep the window out of it.
    const StatusOr<std::span<const PhysicalDiskId>> row =
        store.LocationsOf(object_);
    SCADDAR_CHECK(row.ok());
    return (*row)[static_cast<size_t>(block)];
  }
  if (!WindowCovers(block, policy, store)) {
    Refill(block, policy, store);
  } else {
    // Re-arm the cheap global compare: the row check just proved this
    // window survived whatever moved the global counter.
    store_revision_ = store.mutation_revision();
  }
  return window_[static_cast<size_t>(block - window_start_)];
}

void LocationCursor::Refill(BlockIndex start, const PlacementPolicy& policy,
                            const BlockStore& store) {
  const BlockIndex end = std::min(start + window_size_, num_blocks_);
  window_.resize(static_cast<size_t>(end - start));
  window_start_ = start;
  // Only reached with no pending moves for the object, which means the
  // store already agrees with AF() for it — the placement batch kernel
  // *is* the materialized truth, with no per-block hash lookups.
  policy.LocateRange(object_, start, end, std::span<PhysicalDiskId>(window_));
  policy_revision_ = policy.log().revision();
  store_revision_ = store.mutation_revision();
  row_revision_ = store.RowRevision(object_);
  ++refills_;
}

}  // namespace scaddar
