#ifndef SCADDAR_SERVER_LOCATION_CURSOR_H_
#define SCADDAR_SERVER_LOCATION_CURSOR_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "placement/policy.h"
#include "storage/block_store.h"

namespace scaddar {

class MigrationExecutor;

/// Per-stream sliding window over one object's *serving* locations — the
/// batch engine pushed onto the request path. A stream consumes its blocks
/// in order; instead of resolving each one with a per-block lookup, the
/// cursor prefetches the next `window` locations in a single batch call and
/// serves subsequent requests from the window with a few integer compares.
///
/// Correctness contract: `Get(i)` always equals `store.LocationOf({object,
/// i})` — reads route to the disk that *materially* holds the block, which
/// is what keeps the server serving mid-reorganization. Two serving modes:
///
///  - **Windowed fast path** — when the migration executor has no pending
///    moves for the object, the store agrees with `AF()` (every divergence
///    an op creates is immediately enqueued), so the window comes from
///    `PlacementPolicy::LocateRange`: one pinned compiled-snapshot batch
///    pass per `window` requests, no per-block hash lookups at all.
///  - **Store-row bypass** — while moves are pending for the object its
///    locations are volatile (any round may land a move), so caching them
///    would invalidate every round. `Get` instead reads the store's
///    materialized row directly (one hash lookup per request) and leaves
///    the window untouched; the moment the object drains, serving snaps
///    back to the windowed path.
///
/// Invalidation is revision-based, the same contract the compiled-log cache
/// uses: the cursor remembers `OpLog::revision()`,
/// `BlockStore::mutation_revision()` and `BlockStore::RowRevision(object)`
/// at refill time. A window is valid while the policy revision matches and
/// the store is unchanged — either globally (one compare, the common idle
/// case) or, when the global counter moved, for this object's row
/// specifically (so other objects' migration traffic never evicts a clean
/// window). A scaling op bumps the policy revision and redirects the very
/// next read to post-op locations.
class LocationCursor {
 public:
  static constexpr int64_t kDefaultWindow = 256;

  LocationCursor(ObjectId object, int64_t num_blocks,
                 int64_t window = kDefaultWindow);

  /// Serving location of `block` (bounds-checked against the object).
  /// Reads the store row directly while the object has pending moves;
  /// otherwise serves from the window, refilling it if `block` falls
  /// outside it or a relevant revision moved since the last refill.
  PhysicalDiskId Get(BlockIndex block, const PlacementPolicy& policy,
                     const BlockStore& store,
                     const MigrationExecutor& migration);

  ObjectId object() const { return object_; }

  /// True iff `block` would be served from the current window without a
  /// refill, assuming no pending moves for the object (exposed for tests).
  bool WindowCovers(BlockIndex block, const PlacementPolicy& policy,
                    const BlockStore& store) const;

  int64_t refills() const { return refills_; }

 private:
  void Refill(BlockIndex start, const PlacementPolicy& policy,
              const BlockStore& store);

  ObjectId object_;
  int64_t num_blocks_;
  int64_t window_size_;
  BlockIndex window_start_ = 0;
  std::vector<PhysicalDiskId> window_;  // Empty until the first refill.
  int64_t policy_revision_ = -1;
  int64_t store_revision_ = -1;
  int64_t row_revision_ = -1;
  int64_t refills_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_LOCATION_CURSOR_H_
