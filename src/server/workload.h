#ifndef SCADDAR_SERVER_WORKLOAD_H_
#define SCADDAR_SERVER_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "random/distributions.h"
#include "random/prng.h"

namespace scaddar {

/// Video-on-demand request generator: Poisson stream arrivals with
/// Zipf-distributed object popularity — the access pattern the RIO-style
/// random placement literature assumes. Deterministic given the seed.
class WorkloadGenerator {
 public:
  /// `arrivals_per_round` >= 0; `zipf_theta` >= 0 (0 = uniform popularity).
  WorkloadGenerator(uint64_t seed, double arrivals_per_round,
                    double zipf_theta);

  /// Registers the objects clients may request; index order is popularity
  /// rank (first = most popular). Must be called before `NextArrivals`.
  void SetObjects(std::vector<ObjectId> objects);

  /// Objects requested by newly arriving clients this round.
  std::vector<ObjectId> NextArrivals();

  double arrivals_per_round() const { return arrivals_per_round_; }

 private:
  std::unique_ptr<Prng> prng_;
  double arrivals_per_round_;
  double zipf_theta_;
  std::vector<ObjectId> objects_;
  std::unique_ptr<ZipfDistribution> popularity_;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_WORKLOAD_H_
