#ifndef SCADDAR_SERVER_SERVER_H_
#define SCADDAR_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/scaling_op.h"
#include "placement/policy.h"
#include "placement/registry.h"
#include "server/admission.h"
#include "server/config.h"
#include "server/migration.h"
#include "server/reorg_driver.h"
#include "server/scheduler.h"
#include "server/sharded_scheduler.h"
#include "server/stream.h"
#include "storage/block_store.h"
#include "storage/catalog.h"
#include "storage/disk_array.h"
#include "storage/move_journal.h"
#include "util/statusor.h"

namespace scaddar {

class BlockIoEngine;
class CheckpointManager;
class FaultInjector;
struct ServerSnapshot;

/// What a checkpoint restart found and rebuilt.
struct CheckpointRestoreStats {
  int64_t set_id = 0;          // Checkpoint set the restore loaded.
  int level = 0;               // Its level (1 or 2).
  int64_t snapshot_round = 0;  // Server round at capture.
  int64_t sets_rejected = 0;   // Newer sets skipped as torn/corrupt.
  bool rebuilt_from_parity = false;
  int64_t streams_restored = 0;
  /// Committed journal entries newer than the snapshot that were re-applied
  /// to the restored rows — the "journal wins" half of reconciliation.
  int64_t committed_replayed = 0;
  JournalRecoveryStats journal;  // In-flight move resolution.
};

/// A stream's playback state captured when its object migrates to another
/// server shard: everything the destination needs to resume the session
/// (the rate is re-derived from the object's bitrate weight, which travels
/// with the object).
struct StreamHandoff {
  ObjectId object = 0;
  BlockIndex next_block = 0;
  bool paused = false;
};

/// Per-round server metrics.
struct RoundMetrics {
  int64_t round = 0;
  int64_t active_streams = 0;
  int64_t requests = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
  int64_t migrated = 0;
  int64_t pending_migration = 0;
  int64_t retiring_disks = 0;
};

/// The simulated continuous media server the paper motivates: random
/// placement for load balancing, a placement policy (SCADDAR by default) for
/// block location, and *online* disk scaling — streams keep playing while a
/// background migration drains/fills disks with leftover bandwidth.
///
/// The server owns four cooperating layers:
///  - `Catalog`: per-object seeds (the only per-object persistent state);
///  - `PlacementPolicy`: where blocks *should* be (AF);
///  - `BlockStore` + `DiskArray`: where blocks *are*, and the hardware;
///  - `MigrationExecutor`: converges the two after scaling operations.
class CmServer {
 public:
  /// Builds an idle server with `config.initial_disks` empty disks.
  static StatusOr<std::unique_ptr<CmServer>> Create(
      const ServerConfig& config);

  CmServer(const CmServer&) = delete;
  CmServer& operator=(const CmServer&) = delete;
  ~CmServer();

  /// Ingests a new CM object: derives its seed, materializes `X0`, places
  /// its blocks per the policy and writes them to the store.
  Status AddObject(ObjectId id, int64_t num_blocks,
                   int64_t bitrate_weight = 1);

  /// Deletes an object and frees its blocks. Refused while any active
  /// stream is playing it (FailedPrecondition).
  Status RemoveObject(ObjectId id);

  /// Scaling operation: adds a group of `count` disks (online). Newly added
  /// disks start empty; the migration executor fills them in the
  /// background.
  Status ScaleAdd(int64_t count);

  /// Scaling operation: removes the disk group at the given current-epoch
  /// slots (online). The physical disks keep serving reads until drained,
  /// then retire.
  Status ScaleRemove(std::vector<DiskSlot> slots);

  /// True iff appending `op` would break the Lemma 4.3 tolerance for this
  /// server's `b` and `eps` — callers should then `FullRedistribution()`
  /// instead (the paper's recommendation).
  bool WouldExceedTolerance(const ScalingOp& op) const;

  /// The paper's fallback once the random range is exhausted: every object
  /// gets a fresh seed generation and placement restarts from an empty op
  /// log over the current disks. Blocks migrate online like any other
  /// reorganization.
  Status FullRedistribution();

  // --- Adaptive self-triggered reorganization. --------------------------
  /// Replaces the adaptive driver's governor and CoV threshold (validated;
  /// InvalidArgument on non-finite or out-of-range values). The enabled
  /// flag and trigger history carry over. Mirrors the knobs into `config()`
  /// so checkpoint restores and cluster shard templates see them.
  Status ConfigureGovernor(int bits, double eps, double cov_threshold);

  /// Turns the adaptive driver on or off. While on, the server rebases
  /// (full redistribution) before any scaling op that would break the ε
  /// budget, and at end of round when the budget is already spent or the
  /// live per-disk CoV drifts past the configured threshold.
  void SetAutoReorg(bool enabled);

  const AdaptiveReorgDriver& reorg_driver() const { return reorg_; }

  /// Every reorganization the driver has triggered, in round order
  /// (checkpointed; survives kill-restarts).
  const std::vector<ReorgTrigger>& reorg_triggers() const {
    return reorg_.triggers();
  }

  /// Starts a playback stream if admission control allows it; returns the
  /// stream id or ResourceExhausted.
  StatusOr<int64_t> StartStream(ObjectId object);

  /// Runs one scheduling round: serve streams, spend leftover bandwidth on
  /// migration, retire drained disks, drop finished streams.
  RoundMetrics Tick();

  /// Detaches every active stream playing `object` and returns their
  /// playback states, in stream-vector order. The streams vanish from this
  /// server (they count as neither completed nor hiccuped further); the
  /// cluster layer re-attaches them on the shard the object migrated to.
  std::vector<StreamHandoff> DetachStreamsFor(ObjectId object);

  // --- VCR controls (Section 1 motivation #4). ---
  Status PauseStream(int64_t stream_id);
  Status ResumeStream(int64_t stream_id);
  /// Jumps the stream to `block` (clamped into the object's range).
  Status SeekStream(int64_t stream_id, BlockIndex block);

  // --- Persistence. -----------------------------------------------------
  /// Serializes the server's durable metadata — policy name, op log and
  /// the catalog (ids, sizes, weights, seed generations, registration
  /// epochs). This is *all* the state a SCADDAR server persists: block
  /// locations are recomputed, never stored. Requires an idle migration
  /// (a snapshot mid-reorganization would not capture materialized
  /// locations). Restores via `Restore`.
  StatusOr<std::string> SaveSnapshot() const;

  /// Rebuilds a server from `SaveSnapshot` output. The placement is
  /// replayed deterministically (objects registered at their recorded
  /// epochs, interleaved with the op log), so every block lands exactly
  /// where it was before the snapshot. Only deterministic policies
  /// ("scaddar", "naive", "mod", "roundrobin") are restorable; the
  /// directory and ring policies carry RNG state and report
  /// Unimplemented. `config` supplies the hardware/simulation knobs; its
  /// policy/bits/prng/master_seed must match the snapshot's semantics.
  static StatusOr<std::unique_ptr<CmServer>> Restore(
      const ServerConfig& config, std::string_view snapshot);

  /// Verifies that the materialized store matches AF() (meaningful when no
  /// migration is pending — otherwise reports FailedPrecondition).
  Status VerifyIntegrity() const;

  // --- Multi-level checkpoint/restart (src/recovery). -------------------
  /// Attaches (or detaches, with null) the checkpoint manager. The caller
  /// owns it — its locations are the durable state that survives a
  /// kill/restart. Attachment forces the move journal on (checkpoint
  /// restart replays the WAL over snapshot rows) and is refused while a
  /// real-I/O engine is selected: the engine persists its own layout and
  /// journal; checkpointing covers the metadata-simulation tier.
  Status AttachCheckpointManager(CheckpointManager* manager);

  /// Attaches `manager` and turns on periodic checkpoints: an L1 set every
  /// `every` rounds, upgraded to an L2 redundant set every `level2_every`
  /// rounds (0 = never). Writes a bootstrap set immediately so a restart
  /// is possible before the first interval elapses.
  Status EnableCheckpoints(CheckpointManager* manager, int64_t every,
                           int64_t level2_every = 0);

  /// Captures the full serving state — policy metadata, op log, journal
  /// text, materialized rows, staged copies, stream cursors and counters.
  /// Unlike `SaveSnapshot`, valid mid-migration: rows + staged + journal
  /// describe the in-between state exactly.
  ServerSnapshot CaptureState() const;

  /// Encodes the current state and writes one checkpoint set at `level`.
  /// On success the journal's committed prefix is compacted (the set now
  /// covers it). An injected snapshot-phase kill marks the server crashed
  /// and returns Unavailable.
  Status WriteCheckpoint(int level);

  /// Simulates a process kill and restarts *in place* from the newest valid
  /// checkpoint set plus the surviving journal text. Everything volatile
  /// dies (streams, migration queue, round counters — the restored server
  /// rewinds to the snapshot round with streams at their saved positions);
  /// committed moves newer than the snapshot are replayed from the journal,
  /// so no committed placement is ever lost.
  StatusOr<CheckpointRestoreStats> KillRestartFromCheckpoint();

  /// Builds a fresh server from the newest valid set in `manager` (which
  /// stays attached, so checkpointing continues). `config` supplies the
  /// knobs and must match the snapshot's semantics, as with `Restore`.
  static StatusOr<std::unique_ptr<CmServer>> RestoreFromCheckpoint(
      const ServerConfig& config, CheckpointManager& manager,
      CheckpointRestoreStats* stats = nullptr);

  /// Builds a fresh server from one encoded snapshot document (the
  /// journal embedded in the document is the WAL). The cluster layer uses
  /// this to restore member shards out of a cluster set.
  static StatusOr<std::unique_ptr<CmServer>> FromSnapshotDocument(
      const ServerConfig& config, std::string_view document,
      CheckpointRestoreStats* stats = nullptr);

  /// The attached checkpoint manager, or null.
  CheckpointManager* checkpoint_manager() const { return checkpoint_; }

  // --- Real block I/O. --------------------------------------------------
  /// Switches the storage backend (`MakeStorageBackend` spec; "sim" drops
  /// back to pure simulation). Only legal while the store is empty — block
  /// images are written at ingest, so an established farm cannot change
  /// media under itself. `queue_depth` <= 0 keeps the config value. A real
  /// backend forces the move journal on (real bytes only move under the
  /// WAL protocol) and binds the backend fault hook to whatever fault
  /// injector is attached, now or later.
  Status SelectBackend(std::string_view spec, int queue_depth = 0);

  /// The real-I/O engine, or null when the backend is "sim".
  BlockIoEngine* io_engine() const { return io_engine_.get(); }

  // --- Fault injection & crash recovery. --------------------------------
  /// Attaches (or detaches, with null) the fault engine; it reaches every
  /// hook site through the disk array. The caller owns the injector.
  void AttachFaultInjector(FaultInjector* injector) {
    disks_.set_fault_injector(injector);
  }

  /// True after an injected crash killed the server — mid-round (migration
  /// crash points) or mid-checkpoint (snapshot-phase kill points). A
  /// crashed server ignores `Tick` until `SimulateCrashRestart` or
  /// `KillRestartFromCheckpoint`.
  bool crashed() const { return migration_.crashed() || snapshot_crashed_; }

  /// Simulates a process crash + restart. Volatile state dies: the
  /// migration queue, active streams and round budgets are dropped.
  /// Durable state survives: the store (disk contents), the move journal
  /// (round-tripped through its text form, proving the serialized WAL
  /// carries everything recovery needs), and the policy/catalog metadata.
  /// Recovery then (1) replays the journal so every in-flight move is
  /// fully applied or fully undone, (2) recomputes the retiring-disk set
  /// from store occupancy vs. the placement live set, and (3) re-seeds the
  /// migration queue with a reconciliation scan. Returns what the journal
  /// replay found. Callable at any point, crashed or not.
  StatusOr<JournalRecoveryStats> SimulateCrashRestart();

  // --- Accessors -----------------------------------------------------
  const ServerConfig& config() const { return config_; }
  const Catalog& catalog() const { return catalog_; }
  Catalog& catalog() { return catalog_; }
  const PlacementPolicy& policy() const { return *policy_; }
  const BlockStore& store() const { return store_; }
  const DiskArray& disks() const { return disks_; }
  DiskArray& disks() { return disks_; }
  const MigrationExecutor& migration() const { return migration_; }
  const MoveJournal& journal() const { return journal_; }

  /// The sharded serving runtime, if any Tick has used it (null before the
  /// first `ServingPath::kShardedCursor` round). Exposed for benches and
  /// tests that read per-shard stats.
  const ShardedScheduler* sharded_scheduler() const {
    return sharded_scheduler_.get();
  }

  /// Per-round stats of the last sharded Tick (empty shards vector if the
  /// sharded path has not run).
  const ShardedRoundStats& last_sharded_round() const {
    return last_sharded_round_;
  }
  const std::vector<Stream>& streams() const { return streams_; }
  const AdmissionController& admission() const { return admission_; }

  int64_t round() const { return round_; }
  int64_t active_streams() const {
    return static_cast<int64_t>(streams_.size());
  }

  /// Active streams playing `object` — O(1) via a refcount maintained by
  /// `StartStream`/`Tick` (this is what makes `RemoveObject` O(1) in the
  /// stream count).
  int64_t ActiveStreamsFor(ObjectId object) const;

  /// Aggregate committed stream bandwidth (sum of rates, blocks/round).
  int64_t ActiveLoad() const;

  /// Startup latency (rounds from `StartStream` to the first delivered
  /// block) of every stream that has started playback, in start order.
  /// `Tick` appends an entry the round a stream's first block lands; the
  /// percentile reports (p99/p999) in the benches and scenario summaries
  /// read this. A stream that seeks before its first delivery registers
  /// with the latency observed at its new position.
  const std::vector<int64_t>& startup_latencies() const {
    return startup_latencies_;
  }
  int64_t completed_streams() const { return completed_streams_; }
  int64_t total_hiccups() const { return total_hiccups_; }
  int64_t total_served() const { return total_served_; }

  /// Aggregate bandwidth of the *placement-live* disks (excludes retiring
  /// disks, whose bandwidth is transitional).
  int64_t PlacementBandwidth() const;

 private:
  explicit CmServer(const ServerConfig& config);

  /// Rebuilds the disk array's live set as policy disks plus still-draining
  /// retiring disks.
  Status SyncDisks();

  /// Rebuilds this (freshly reset) server from a decoded snapshot plus the
  /// surviving journal text (`live_journal` wins over the snapshot for
  /// moves that progressed after the capture).
  Status LoadFromState(const ServerSnapshot& snapshot,
                       std::string_view live_journal,
                       CheckpointRestoreStats* stats);

  /// End-of-round checkpoint cadence (`checkpoint_every` /
  /// `checkpoint_level2_every`); tolerates injected snapshot kills.
  void MaybeCheckpoint();

  /// Metadata mutations (ingest, scaling) are not journaled — an immediate
  /// L1 set after each one is what makes them durable. No-op when no
  /// manager is attached.
  Status MetadataBarrier();

  /// Sharding options for reconciliation scans, from the config knob.
  ParallelPlanOptions ReconcileOptions() const;

  /// Builds the adaptive driver from config knobs (governor_bits/eps fall
  /// back to bits/tolerance_eps when 0).
  static StatusOr<AdaptiveReorgDriver> BuildReorgDriver(
      const ServerConfig& config);

  /// Budget gate before a scaling op: if the driver is on and `op` would
  /// break the ε budget, record a trigger and rebase first (the rebase
  /// resets the op log, making `op` affordable). Physical-id order is
  /// preserved across the rebase, so removal slot numbers stay valid.
  Status MaybeRebaseBeforeOp(const ScalingOp& op);

  /// End-of-round driver check: budget overrun first (a tightened or newly
  /// enabled governor can stand outside budget with no op in sight), then
  /// the paced CoV evaluation over the live per-disk counts.
  void MaybeAutoReorgOnRound();

  ServerConfig config_;
  Catalog catalog_;
  std::unique_ptr<PlacementPolicy> policy_;
  DiskArray disks_;
  std::unique_ptr<BlockIoEngine> io_engine_;  // Null when backend == "sim".
  BlockStore store_;
  RoundScheduler scheduler_;
  std::unique_ptr<ShardedScheduler> sharded_scheduler_;  // Lazy.
  ShardedRoundStats last_sharded_round_;
  MigrationExecutor migration_;
  AdaptiveReorgDriver reorg_;
  MoveJournal journal_;
  CheckpointManager* checkpoint_ = nullptr;  // Not owned; may be null.
  bool snapshot_crashed_ = false;  // Injected kill inside a checkpoint write.
  AdmissionController admission_;
  std::vector<Stream> streams_;
  std::unordered_map<ObjectId, int64_t> streams_per_object_;
  std::vector<PhysicalDiskId> retiring_;
  std::vector<int64_t> startup_latencies_;

  int64_t round_ = 0;
  int64_t next_stream_id_ = 0;
  int64_t completed_streams_ = 0;
  int64_t total_hiccups_ = 0;
  int64_t total_served_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_SERVER_H_
