#include "server/stream.h"

#include <algorithm>

namespace scaddar {

void Stream::SeekTo(BlockIndex block) {
  next_block_ = std::clamp<BlockIndex>(block, 0, num_blocks_);
}

void Stream::RestoreProgress(BlockIndex next_block, int64_t hiccups,
                             bool paused, bool playback_started) {
  next_block_ = std::clamp<BlockIndex>(next_block, 0, num_blocks_);
  hiccups_ = hiccups;
  paused_ = paused;
  playback_started_ = playback_started;
}

}  // namespace scaddar
