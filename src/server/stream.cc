#include "server/stream.h"

#include <algorithm>

namespace scaddar {

void Stream::SeekTo(BlockIndex block) {
  next_block_ = std::clamp<BlockIndex>(block, 0, num_blocks_);
}

}  // namespace scaddar
