#include "server/workload.h"

#include "util/status.h"

namespace scaddar {

WorkloadGenerator::WorkloadGenerator(uint64_t seed, double arrivals_per_round,
                                     double zipf_theta)
    : prng_(MakePrng(PrngKind::kSplitMix64, seed)),
      arrivals_per_round_(arrivals_per_round),
      zipf_theta_(zipf_theta) {
  SCADDAR_CHECK(arrivals_per_round >= 0.0);
  SCADDAR_CHECK(zipf_theta >= 0.0);
}

void WorkloadGenerator::SetObjects(std::vector<ObjectId> objects) {
  SCADDAR_CHECK(!objects.empty());
  objects_ = std::move(objects);
  popularity_ = std::make_unique<ZipfDistribution>(
      static_cast<int64_t>(objects_.size()), zipf_theta_);
}

std::vector<ObjectId> WorkloadGenerator::NextArrivals() {
  SCADDAR_CHECK(popularity_ != nullptr);
  const int64_t count = PoissonSample(*prng_, arrivals_per_round_);
  std::vector<ObjectId> arrivals;
  arrivals.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const int64_t rank = popularity_->Sample(*prng_);
    arrivals.push_back(objects_[static_cast<size_t>(rank)]);
  }
  return arrivals;
}

}  // namespace scaddar
