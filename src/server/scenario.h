#ifndef SCADDAR_SERVER_SCENARIO_H_
#define SCADDAR_SERVER_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/server.h"
#include "util/statusor.h"

namespace scaddar {

/// Aggregate outcome of a scenario run. The startup percentiles
/// (nearest-rank, in rounds from `stream` to first delivered block) cover
/// every stream that began playback during the run; 0 when none did.
struct ScenarioResult {
  int64_t lines_executed = 0;
  int64_t rounds = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
  int64_t migrated = 0;
  int64_t streams_started = 0;
  int64_t streams_rejected = 0;
  int64_t crashes = 0;
  int64_t kill_restarts = 0;  // `killrestart` commands (also in crashes).
  /// Reorganizations the adaptive driver triggered on its own (budget or
  /// CoV) across the run — the count of `reorg_triggers()` at the end.
  int64_t auto_reorg_triggers = 0;
  int64_t startup_p50 = 0;
  int64_t startup_p99 = 0;
  int64_t startup_p999 = 0;
};

/// Drives a `CmServer` from a small line-oriented script — the repeatable
/// experiment format used by operators and the test suite. Commands
/// (one per line; `#` starts a comment; blank lines ignored):
///
///   addobject <id> <blocks> [weight]     ingest an object
///   removeobject <id>                    delete an object
///   stream <object-id>                   start a stream (admission may
///                                        reject; counted, not an error)
///   pause <stream-id> | resume <stream-id> | seek <stream-id> <block>
///   scale add <count>                    online disk-group addition
///   scale remove <slot>[,<slot>...]      online disk-group removal
///   rebase                               full redistribution
///   governor <bits> <eps> [cov]          configure the adaptive driver's
///                                        governor (generator width, ε
///                                        budget) and optionally the CoV
///                                        drift threshold; at most one
///                                        declaration per scenario
///   autoreorg on|off                     enable/disable self-triggered
///                                        reorganization (budget gate on
///                                        scaling ops + end-of-round watch)
///   backend <spec> [queue-depth]         select the storage backend
///                                        ("sim", "mem", "file:<dir>",
///                                        "uring:<dir>"); only legal while
///                                        the store is empty
///   tick <rounds>                        run scheduling rounds
///   drain                                tick until migration idle
///   crash                                kill the process and restart it
///                                        (journal recovery; streams die)
///   checkpoint <every> [level2-every] [redundancy]
///                                        attach a checkpoint manager (owned
///                                        by the scenario run) and write an
///                                        L1 set every <every> rounds,
///                                        upgraded to a redundant L2 set
///                                        every [level2-every] rounds;
///                                        [redundancy] is partner|xor
///   killrestart                          kill the process and restart from
///                                        the newest valid checkpoint set
///                                        (streams resume at their saved
///                                        positions; requires `checkpoint`)
///   verify                               assert store matches AF()
///
/// Traffic-engine hooks (seeded, replayable synthetic load — see
/// `server/workload/traffic_engine.h`):
///
///   traffic seed <n>                     engine seed (default fixed)
///   traffic arrivals <mean>              Poisson arrivals per round
///   traffic zipf <theta>                 popularity skew (0 = uniform)
///   traffic diurnal <amplitude> <period> sinusoidal load modulation
///   traffic vcr <pause> <resume> <seek>  per-stream event probabilities
///   traffic flash <start> <dur> <rank> <boost>   schedule a flash crowd
///   ticktraffic <rounds>                 run rounds driven by the engine
///                                        (arrivals + VCR events + Tick)
///
/// `traffic` settings take effect at the next `ticktraffic`, which
/// (re)builds the engine over the catalog's objects in registration order
/// (= popularity rank). Changing settings between `ticktraffic` runs starts
/// a fresh deterministic trace.
///
/// Execution stops at the first failing command; the error names the line.
StatusOr<ScenarioResult> RunScenario(CmServer& server,
                                     std::string_view script);

}  // namespace scaddar

#endif  // SCADDAR_SERVER_SCENARIO_H_
