#include "server/reorg_driver.h"

#include <cmath>

namespace scaddar {

AdaptiveReorgDriver::AdaptiveReorgDriver()
    : AdaptiveReorgDriver(64, 0.05, 0.0, 16) {}

AdaptiveReorgDriver::AdaptiveReorgDriver(int bits, double eps,
                                         double cov_threshold,
                                         int64_t check_every)
    : governor_(bits, eps),
      cov_threshold_(cov_threshold),
      check_every_(check_every) {}

StatusOr<AdaptiveReorgDriver> AdaptiveReorgDriver::Create(
    int bits, double eps, double cov_threshold, int64_t check_every) {
  if (bits < 1 || bits > 64) {
    return InvalidArgumentError("governor bits must be in [1, 64]");
  }
  // `ParseDouble` accepts "nan"/"inf" spellings, so the range checks here
  // must be explicit about finiteness.
  if (!std::isfinite(eps) || eps <= 0.0) {
    return InvalidArgumentError(
        "governor eps must be finite and positive");
  }
  if (!std::isfinite(cov_threshold) || cov_threshold < 0.0) {
    return InvalidArgumentError(
        "CoV threshold must be finite and non-negative");
  }
  if (check_every < 1) {
    return InvalidArgumentError("CoV check interval must be >= 1 round");
  }
  return AdaptiveReorgDriver(bits, eps, cov_threshold, check_every);
}

}  // namespace scaddar
