#include "server/ha_server.h"

#include <algorithm>

#include "faults/injector.h"

namespace scaddar {

HaCmServer::HaCmServer(const HaServerConfig& config)
    : config_(config),
      catalog_(config.base.master_seed, config.base.prng_kind,
               config.base.bits),
      disks_(config.base.disk_spec),
      admission_(config.base.admission_utilization_cap) {}

StatusOr<std::unique_ptr<HaCmServer>> HaCmServer::Create(
    const HaServerConfig& config) {
  if (config.replicas < 2) {
    return InvalidArgumentError("HA server needs >= 2 replicas");
  }
  if (config.base.initial_disks < config.replicas) {
    return InvalidArgumentError(
        "need at least as many disks as replicas");
  }
  std::unique_ptr<HaCmServer> server(new HaCmServer(config));
  server->policy_ =
      std::make_unique<ScaddarPolicy>(config.base.initial_disks);
  server->replication_ = std::make_unique<ReplicatedPlacement>(
      server->policy_.get(), config.replicas);
  SCADDAR_RETURN_IF_ERROR(
      server->disks_.SyncLiveSet(server->policy_->log().physical_disks()));
  return server;
}

PhysicalDiskId HaCmServer::TargetOf(BlockRef ref, int64_t replica) const {
  const auto replicas =
      static_cast<int64_t>(copies_.at(ref.object).size());
  SCADDAR_DCHECK(replica >= 0 && replica < replicas);
  const int64_t n = policy_->current_disks();
  const DiskSlot primary = policy_->LocateSlot(ref.object, ref.block);
  const int64_t offset =
      replicas >= 2
          ? ReplicatedPlacement::ReplicaOffset(n, replicas, replica)
          : 0;
  const DiskSlot slot = (primary + offset) % n;
  return policy_->log().physical_disks()[static_cast<size_t>(slot)];
}

void HaCmServer::TargetsOf(
    ObjectId id, int64_t replicas,
    std::vector<std::vector<PhysicalDiskId>>& out) const {
  const int64_t n = policy_->current_disks();
  const std::vector<PhysicalDiskId>& physical =
      policy_->log().physical_disks();
  std::vector<DiskSlot> slots;
  policy_->LocateAllSlots(id, slots);
  out.assign(static_cast<size_t>(replicas), {});
  for (int64_t r = 0; r < replicas; ++r) {
    const int64_t offset =
        replicas >= 2
            ? ReplicatedPlacement::ReplicaOffset(n, replicas, r)
            : 0;
    std::vector<PhysicalDiskId>& row = out[static_cast<size_t>(r)];
    row.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      row[i] = physical[static_cast<size_t>((slots[i] + offset) % n)];
    }
  }
}

StatusOr<PhysicalDiskId> HaCmServer::CopyLocation(BlockRef ref,
                                                  int64_t replica) const {
  const auto it = copies_.find(ref.object);
  if (it == copies_.end()) {
    return NotFoundError("object not materialized");
  }
  if (replica < 0 ||
      replica >= static_cast<int64_t>(it->second.size())) {
    return OutOfRangeError("replica index out of range");
  }
  const std::vector<PhysicalDiskId>& locations =
      it->second[static_cast<size_t>(replica)];
  if (ref.block < 0 ||
      ref.block >= static_cast<BlockIndex>(locations.size())) {
    return OutOfRangeError("block index out of range");
  }
  return locations[static_cast<size_t>(ref.block)];
}

Status HaCmServer::AddObject(ObjectId id, int64_t num_blocks,
                             int64_t bitrate_weight, int64_t replicas) {
  if (replicas == 0) {
    replicas = config_.replicas;
  }
  if (replicas < 1 || replicas > policy_->current_disks()) {
    return InvalidArgumentError(
        "replica count must be in [1, current disks]");
  }
  SCADDAR_RETURN_IF_ERROR(catalog_.AddObject(id, num_blocks, bitrate_weight));
  SCADDAR_ASSIGN_OR_RETURN(std::vector<uint64_t> x0,
                           catalog_.MaterializeX0(id));
  SCADDAR_RETURN_IF_ERROR(policy_->AddObject(id, std::move(x0)));
  // Resolve all copies' targets in one batch pass, then charge occupancy
  // with one counter update per disk instead of per block.
  std::vector<std::vector<PhysicalDiskId>>& object_copies = copies_[id];
  TargetsOf(id, replicas, object_copies);
  std::unordered_map<PhysicalDiskId, int64_t> added;
  for (const std::vector<PhysicalDiskId>& locations : object_copies) {
    for (const PhysicalDiskId disk : locations) {
      ++added[disk];
    }
  }
  for (const auto& [disk, count] : added) {
    disks_.GetDisk(disk).value()->AddBlocks(count);
  }
  return OkStatus();
}

StatusOr<int64_t> HaCmServer::StartStream(ObjectId object) {
  SCADDAR_ASSIGN_OR_RETURN(const CmObject meta, catalog_.GetObject(object));
  int64_t active_load = 0;
  for (const Stream& stream : streams_) {
    active_load += stream.rate();
  }
  int64_t live_bandwidth = 0;
  for (const PhysicalDiskId id : policy_->log().physical_disks()) {
    live_bandwidth +=
        disks_.GetDisk(id).value()->spec().bandwidth_blocks_per_round;
  }
  if (!admission_.Admit(active_load, meta.bitrate_weight, live_bandwidth)) {
    return ResourceExhaustedError("admission control rejected the stream");
  }
  const int64_t id = next_stream_id_++;
  streams_.emplace_back(id, object, meta.num_blocks, round_,
                        meta.bitrate_weight);
  return id;
}

Status HaCmServer::ScaleAdd(int64_t count) {
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op, ScalingOp::Add(count));
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  SCADDAR_RETURN_IF_ERROR(
      disks_.SyncLiveSet(policy_->log().physical_disks()));
  EnqueueReconciliation();
  return OkStatus();
}

Status HaCmServer::FailDisk(PhysicalDiskId disk) {
  if (failed_.contains(disk)) {
    return FailedPreconditionError("disk already failed");
  }
  const std::vector<PhysicalDiskId>& live = policy_->log().physical_disks();
  const auto it = std::find(live.begin(), live.end(), disk);
  if (it == live.end()) {
    return NotFoundError("disk is not part of the placement");
  }
  if (static_cast<int64_t>(live.size()) - 1 < config_.replicas) {
    return FailedPreconditionError(
        "failing this disk would leave fewer disks than replicas");
  }
  const auto slot = static_cast<DiskSlot>(it - live.begin());
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op, ScalingOp::Remove({slot}));
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  failed_.insert(disk);
  // The dead disk's occupancy is gone with it; reset the counter so the
  // array can retire it.
  std::vector<PhysicalDiskId> still_live = policy_->log().physical_disks();
  SimDisk* dead = disks_.GetDisk(disk).value();
  dead->RemoveBlocks(dead->num_blocks());
  SCADDAR_RETURN_IF_ERROR(disks_.SyncLiveSet(still_live));
  EnqueueReconciliation();
  return OkStatus();
}

void HaCmServer::EnqueueReconciliation() {
  std::vector<std::vector<PhysicalDiskId>> targets;
  for (const auto& [id, object_copies] : copies_) {
    const auto replicas = static_cast<int64_t>(object_copies.size());
    TargetsOf(id, replicas, targets);
    for (int64_t r = 0; r < replicas; ++r) {
      const std::vector<PhysicalDiskId>& locations =
          object_copies[static_cast<size_t>(r)];
      const std::vector<PhysicalDiskId>& target_row =
          targets[static_cast<size_t>(r)];
      for (size_t i = 0; i < locations.size(); ++i) {
        if (locations[i] != target_row[i] ||
            failed_.contains(locations[i])) {
          repair_queue_.push_back(
              CopyRef{BlockRef{id, static_cast<BlockIndex>(i)}, r});
        }
      }
    }
  }
}

StatusOr<PhysicalDiskId> HaCmServer::HealthySource(BlockRef ref) const {
  const auto it = copies_.find(ref.object);
  SCADDAR_CHECK(it != copies_.end());
  for (const std::vector<PhysicalDiskId>& locations : it->second) {
    const PhysicalDiskId disk = locations[static_cast<size_t>(ref.block)];
    if (!failed_.contains(disk)) {
      return disk;
    }
  }
  return NotFoundError("no healthy copy of the block survives");
}

HaRoundMetrics HaCmServer::Tick() {
  HaRoundMetrics metrics;
  metrics.round = round_;
  metrics.active_streams = active_streams();

  FaultInjector* const injector = disks_.fault_injector();
  if (injector != nullptr) {
    injector->BeginRound(round_);
    // Consume unplanned failures scheduled for this round. A refusal
    // (unknown disk, already dead, too few survivors) means the scheduled
    // failure hit nothing — tolerated, the schedule is random.
    for (const PhysicalDiskId disk : injector->TakeDiskFailures()) {
      if (FailDisk(disk).ok()) {
        ++metrics.disks_failed;
      }
    }
  }

  // Per-disk bandwidth budgets (failed disks serve nothing).
  std::unordered_map<PhysicalDiskId, int64_t> budget;
  for (const PhysicalDiskId id : disks_.live_ids()) {
    if (!failed_.contains(id)) {
      budget[id] =
          disks_.GetDisk(id).value()->spec().bandwidth_blocks_per_round;
    }
  }

  // --- Serve streams, falling back across replicas. ---------------------
  for (Stream& stream : streams_) {
    if (stream.finished() || stream.paused()) {
      continue;
    }
    // One copy-table lookup per stream, not per request.
    const auto& object_copies = copies_.at(stream.object());
    const auto replicas = static_cast<int64_t>(object_copies.size());
    for (int64_t k = 0; k < stream.rate() && !stream.finished(); ++k) {
      ++metrics.requests;
      const BlockRef ref = stream.NextBlockRef();
      // Try copies in replica-priority order; a copy is readable if its
      // *materialized* disk is healthy and has budget left.
      bool served = false;
      bool degraded = false;
      for (int64_t r = 0; r < replicas; ++r) {
        const PhysicalDiskId disk =
            object_copies[static_cast<size_t>(r)]
                         [static_cast<size_t>(ref.block)];
        if (failed_.contains(disk)) {
          degraded = true;
          continue;
        }
        if (injector != nullptr && injector->FailRead(disk)) {
          // Transient read error: degrade to the next replica this round.
          disks_.GetDisk(disk).value()->RecordTransientError();
          ++metrics.transient_errors;
          ++total_transient_errors_;
          degraded = true;
          continue;
        }
        const auto it = budget.find(disk);
        if (it == budget.end() || it->second <= 0) {
          continue;  // Busy disk; try the next replica.
        }
        --it->second;
        disks_.GetDisk(disk).value()->RecordServedRequests(1);
        stream.DeliverBlock();
        ++metrics.served;
        metrics.served_degraded += (degraded || r > 0) ? 1 : 0;
        served = true;
        break;
      }
      if (!served) {
        stream.RecordHiccup();
        ++metrics.hiccups;
        break;
      }
    }
  }
  total_served_ += metrics.served;
  total_hiccups_ += metrics.hiccups;

  // --- Spend leftover bandwidth on repairs. ------------------------------
  size_t remaining = repair_queue_.size();
  while (remaining-- > 0) {
    const CopyRef item = repair_queue_.front();
    repair_queue_.pop_front();
    if (item.not_before_round > round_) {
      repair_queue_.push_back(item);  // Still backing off; no budget spent.
      continue;
    }
    std::vector<PhysicalDiskId>& locations =
        copies_.at(item.block.object)[static_cast<size_t>(item.replica)];
    PhysicalDiskId& current =
        locations[static_cast<size_t>(item.block.block)];
    const PhysicalDiskId target = TargetOf(item.block, item.replica);
    if (current == target && !failed_.contains(current)) {
      continue;  // Already repaired (duplicate entry).
    }
    const StatusOr<PhysicalDiskId> source = HealthySource(item.block);
    if (!source.ok()) {
      continue;  // Data loss: nothing to copy from. Counted elsewhere.
    }
    auto src_budget = budget.find(*source);
    auto dst_budget = budget.find(target);
    if (src_budget == budget.end() || dst_budget == budget.end() ||
        src_budget->second <= 0 || dst_budget->second <= 0) {
      repair_queue_.push_back(item);
      continue;
    }
    --src_budget->second;
    --dst_budget->second;
    if (injector != nullptr && injector->FailTransfer(*source, target)) {
      // Transient transfer error: the attempt burned its bandwidth; retry
      // after a capped exponential backoff.
      disks_.GetDisk(*source).value()->RecordTransientError();
      disks_.GetDisk(target).value()->RecordTransientError();
      ++metrics.transient_errors;
      ++total_transient_errors_;
      CopyRef retry = item;
      ++retry.attempts;
      retry.not_before_round = round_ + backoff_.DelayFor(retry.attempts);
      repair_queue_.push_back(retry);
      ++metrics.deferred_repairs;
      continue;
    }
    if (!failed_.contains(current)) {
      disks_.GetDisk(current).value()->RemoveBlocks(1);
    }
    disks_.GetDisk(target).value()->AddBlocks(1);
    disks_.GetDisk(*source).value()->RecordMigrationTransfers(1);
    disks_.GetDisk(target).value()->RecordMigrationTransfers(1);
    current = target;
    ++metrics.repaired;
    ++total_repaired_;
  }
  metrics.pending_repairs = pending_repairs();

  // --- Reap finished streams; retire drained failed disks. --------------
  const auto finished = std::remove_if(
      streams_.begin(), streams_.end(),
      [](const Stream& stream) { return stream.finished(); });
  streams_.erase(finished, streams_.end());

  ++round_;
  return metrics;
}

StatusOr<int64_t> HaCmServer::ReplicasOf(ObjectId id) const {
  const auto it = copies_.find(id);
  if (it == copies_.end()) {
    return NotFoundError("object not materialized");
  }
  return static_cast<int64_t>(it->second.size());
}

Status HaCmServer::VerifyRedundancy() const {
  if (!repairs_idle()) {
    return FailedPreconditionError("repairs pending");
  }
  std::vector<std::vector<PhysicalDiskId>> targets;
  for (const auto& [id, object_copies] : copies_) {
    const auto replicas = static_cast<int64_t>(object_copies.size());
    TargetsOf(id, replicas, targets);
    for (int64_t r = 0; r < replicas; ++r) {
      const std::vector<PhysicalDiskId>& locations =
          object_copies[static_cast<size_t>(r)];
      const std::vector<PhysicalDiskId>& target_row =
          targets[static_cast<size_t>(r)];
      for (size_t i = 0; i < locations.size(); ++i) {
        if (locations[i] != target_row[i]) {
          return InternalError("copy not at its replication target");
        }
        if (failed_.contains(locations[i])) {
          return InternalError("copy marked as residing on a failed disk");
        }
      }
    }
  }
  return OkStatus();
}

int64_t HaCmServer::UnreadableBlocks() const {
  int64_t unreadable = 0;
  for (const auto& [id, object_copies] : copies_) {
    const size_t blocks = object_copies.front().size();
    for (size_t i = 0; i < blocks; ++i) {
      bool healthy = false;
      for (const std::vector<PhysicalDiskId>& locations : object_copies) {
        if (!failed_.contains(locations[i])) {
          healthy = true;
          break;
        }
      }
      unreadable += healthy ? 0 : 1;
    }
  }
  return unreadable;
}

}  // namespace scaddar
