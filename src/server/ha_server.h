#ifndef SCADDAR_SERVER_HA_SERVER_H_
#define SCADDAR_SERVER_HA_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "faults/recovery.h"
#include "faults/replication.h"
#include "placement/scaddar_policy.h"
#include "server/admission.h"
#include "server/config.h"
#include "server/stream.h"
#include "storage/catalog.h"
#include "storage/disk_array.h"
#include "util/statusor.h"

namespace scaddar {

class FaultInjector;

/// Configuration of the high-availability server.
struct HaServerConfig {
  ServerConfig base;      // Policy field is ignored: SCADDAR + replication.
  int64_t replicas = 2;   // Copies per block (>= 2).
};

/// Round metrics for the HA server.
struct HaRoundMetrics {
  int64_t round = 0;
  int64_t active_streams = 0;
  int64_t requests = 0;
  int64_t served = 0;
  int64_t served_degraded = 0;  // Served from a non-primary replica.
  int64_t hiccups = 0;
  int64_t repaired = 0;         // Copies (re)materialized this round.
  int64_t pending_repairs = 0;
  int64_t disks_failed = 0;      // Injected unplanned failures this round.
  int64_t transient_errors = 0;  // Injected I/O errors hit this round.
  int64_t deferred_repairs = 0;  // Repairs pushed out by retry backoff.
};

/// Section 6 made operational: a continuous media server that keeps every
/// block R-way replicated at count-derived offsets, survives *unplanned*
/// disk failures with zero data loss (any R−1 concurrent failures), and
/// re-protects online — repair traffic rides the bandwidth left over after
/// stream service, exactly like scaling migrations do.
///
/// Differences from `CmServer`: a failed disk disappears immediately (no
/// draining — it is dead); reads fall back to the healthiest-priority
/// replica; and the migration queue tracks (replica, block) *copies*,
/// whose bytes are sourced from any surviving copy.
class HaCmServer {
 public:
  static StatusOr<std::unique_ptr<HaCmServer>> Create(
      const HaServerConfig& config);

  HaCmServer(const HaCmServer&) = delete;
  HaCmServer& operator=(const HaCmServer&) = delete;

  /// Ingests an object and materializes its copies. `replicas == 0` uses
  /// the server default; `replicas == 1` stores a single, unprotected copy
  /// (popularity-aware partial replication: spend the mirror budget on hot
  /// objects only); values above the default are allowed up to the disk
  /// count.
  Status AddObject(ObjectId id, int64_t num_blocks,
                   int64_t bitrate_weight = 1, int64_t replicas = 0);

  /// The replica count of a registered object.
  StatusOr<int64_t> ReplicasOf(ObjectId id) const;

  /// Starts a stream (admission by committed load on *live* bandwidth).
  StatusOr<int64_t> StartStream(ObjectId object);

  /// Adds a disk group online; replicas rebalance in the background.
  Status ScaleAdd(int64_t count);

  /// Unplanned failure: the disk stops serving instantly, its slot is
  /// removed from placement, every lost copy is queued for re-protection
  /// from surviving replicas. Fails if the disk is unknown/already dead,
  /// or if losing it would drop below `replicas` live disks.
  Status FailDisk(PhysicalDiskId disk);

  /// One scheduling round: serve streams (replica fallback on failures),
  /// then spend leftover bandwidth on repairs/rebalancing.
  HaRoundMetrics Tick();

  /// OK iff every copy of every block is materialized at its target disk
  /// (meaningful when no repairs are pending).
  Status VerifyRedundancy() const;

  /// Number of blocks with zero healthy copies (data loss; 0 unless more
  /// than R−1 overlapping failures occurred).
  int64_t UnreadableBlocks() const;

  /// Attaches (or detaches, with null) the fault engine. Each `Tick` then
  /// consumes scheduled unplanned disk failures, degrades reads hit by
  /// transient errors to the next replica, and retries refused repair
  /// transfers with capped exponential backoff. The caller owns the
  /// injector.
  void AttachFaultInjector(FaultInjector* injector) {
    disks_.set_fault_injector(injector);
  }

  // --- Accessors ---------------------------------------------------------
  const ScaddarPolicy& policy() const { return *policy_; }
  const ReplicatedPlacement& replication() const { return *replication_; }
  const std::unordered_set<PhysicalDiskId>& failed_disks() const {
    return failed_;
  }
  int64_t pending_repairs() const {
    return static_cast<int64_t>(repair_queue_.size());
  }
  bool repairs_idle() const { return repair_queue_.empty(); }
  int64_t round() const { return round_; }
  int64_t active_streams() const {
    return static_cast<int64_t>(streams_.size());
  }
  int64_t total_hiccups() const { return total_hiccups_; }
  int64_t total_served() const { return total_served_; }
  int64_t total_repaired() const { return total_repaired_; }
  int64_t total_transient_errors() const { return total_transient_errors_; }
  const Catalog& catalog() const { return catalog_; }

  /// Where copy `r` of the block currently *is* (materialized truth).
  StatusOr<PhysicalDiskId> CopyLocation(BlockRef ref, int64_t replica) const;

 private:
  explicit HaCmServer(const HaServerConfig& config);

  struct CopyRef {
    BlockRef block;
    int64_t replica;
    int64_t attempts = 0;          // Transfers refused by injected errors.
    int64_t not_before_round = 0;  // Backoff: hold the retry until then.
  };

  /// Queues every copy whose materialized location diverges from its
  /// replication target.
  void EnqueueReconciliation();

  /// The disk that should hold copy `r` of the block now.
  PhysicalDiskId TargetOf(BlockRef ref, int64_t replica) const;

  /// Batch form of `TargetOf`: one slot-batch pass over the object plus a
  /// per-replica offset rotation fills `out[r][i]` for every copy `r` of
  /// every block `i`. Equivalent to calling `TargetOf` per copy.
  void TargetsOf(ObjectId id, int64_t replicas,
                 std::vector<std::vector<PhysicalDiskId>>& out) const;

  /// A healthy disk currently holding *some* copy of the block, or error.
  StatusOr<PhysicalDiskId> HealthySource(BlockRef ref) const;

  HaServerConfig config_;
  Catalog catalog_;
  std::unique_ptr<ScaddarPolicy> policy_;
  std::unique_ptr<ReplicatedPlacement> replication_;
  DiskArray disks_;
  // copies_[id][replica][block] = physical disk currently holding it.
  // copies_[id].size() is the object's replica count (may differ per
  // object under partial replication).
  std::unordered_map<ObjectId, std::vector<std::vector<PhysicalDiskId>>>
      copies_;
  AdmissionController admission_;
  std::vector<Stream> streams_;
  std::unordered_set<PhysicalDiskId> failed_;
  std::deque<CopyRef> repair_queue_;
  RetryBackoff backoff_;

  int64_t round_ = 0;
  int64_t next_stream_id_ = 0;
  int64_t total_hiccups_ = 0;
  int64_t total_served_ = 0;
  int64_t total_repaired_ = 0;
  int64_t total_transient_errors_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_HA_SERVER_H_
