#ifndef SCADDAR_SERVER_MIGRATION_H_
#define SCADDAR_SERVER_MIGRATION_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/redistribution.h"
#include "core/types.h"
#include "placement/policy.h"
#include "storage/block_store.h"
#include "storage/disk_array.h"

namespace scaddar {

class BlockIoEngine;
class FaultInjector;
class MoveJournal;

/// Executes block redistribution *online*, using only bandwidth left over
/// after stream service (Section 1: scaling must not interrupt the CM
/// server). The queue holds block references, not (source, destination)
/// pairs: at execution time each block is moved from wherever it currently
/// is to the placement layer's *latest* target, so overlapping scaling
/// operations and full redistributions compose correctly — stale queue
/// entries become no-ops instead of moving blocks to outdated locations.
///
/// Both ends of the executor run through the batch engine: reconciliation
/// scans resolve targets with one step-major pass per object and can shard
/// the scan across a thread pool (byte-identical queue for any thread
/// count, like the PR-1 planners), and `RunRound` resolves each round's
/// targets with one batch pass per queued object instead of a chain replay
/// per block. `RunRoundScalar` keeps the original per-block implementation
/// as the equivalence oracle.
///
/// With a `MoveJournal` attached, every transfer runs the crash-consistent
/// write-ahead protocol (intent -> stage -> copied -> flip -> commit), and
/// the fault injector hanging off the `DiskArray` can kill the executor at
/// any phase boundary or fail individual transfers. Without a journal the
/// behavior is byte-identical to the pre-journal executor.
class MigrationExecutor {
 public:
  MigrationExecutor() = default;

  /// Attaches (or detaches, with null) the write-ahead journal. Journaled
  /// moves survive crashes: `MoveJournal::Recover` replays the journal
  /// against the store to a state where every move is fully applied or
  /// fully undone, and a reconciliation scan re-queues the undone ones.
  void AttachJournal(MoveJournal* journal) { journal_ = journal; }
  MoveJournal* journal() const { return journal_; }

  /// Attaches the real-I/O engine (requires a journal). Journaled rounds
  /// then run two-phase: every move stages first, the engine lands the
  /// whole round's copies in one batched submission per disk
  /// (`BlockIoEngine::FinishMigrationRound`), and only copies that landed
  /// intact are marked copied and committed. Copies the backend failed
  /// (injected EIO, short write) are aborted and re-queued as transient
  /// errors — the real-I/O analogue of `FaultInjector::FailTransfer`.
  void AttachIoEngine(BlockIoEngine* io) { io_ = io; }
  BlockIoEngine* io_engine() const { return io_; }

  /// True after an injected crash killed a round mid-move. A crashed
  /// executor refuses further rounds until `Reset` — the in-memory process
  /// is dead; only `CmServer::SimulateCrashRestart` revives it.
  bool crashed() const { return crashed_; }

  /// Drops all volatile state (queue, per-object counts, crash latch) —
  /// exactly what a process restart loses. Durable state (journal, store)
  /// is untouched; callers re-seed the queue with a reconciliation scan.
  void Reset();

  /// Queues every block of an RF() plan.
  void EnqueuePlan(const MovePlan& plan);

  /// Queues every block whose materialized location diverges from
  /// `policy.Locate` — reconciliation after one or more scaling operations.
  /// Targets come from the per-object batch AF(); with `options` requesting
  /// threads the flattened (object, block) scan is cut into contiguous
  /// shards compared concurrently and merged in shard order, so the queue
  /// is byte-identical to the serial scan for any thread count.
  void EnqueueReconciliation(const BlockStore& store,
                             const PlacementPolicy& policy,
                             const ParallelPlanOptions& options = {});

  /// Spends leftover bandwidth: each transfer consumes one unit on the
  /// source and one on the destination disk (per-destination in-flight
  /// moves are bounded by that disk's remaining budget, so bandwidth
  /// accounting stays exact). Returns blocks moved this round. Blocks
  /// already at their current target retire from the queue for free.
  /// Targets for the whole round resolve in one batch pass per queued
  /// object; decisions are made in queue order against the live store row,
  /// so the moves are identical to `RunRoundScalar`'s.
  int64_t RunRound(std::unordered_map<PhysicalDiskId, int64_t>& leftover,
                   BlockStore& store, DiskArray& disks,
                   const PlacementPolicy& policy);

  /// The original per-block implementation (one store hash lookup plus one
  /// virtual `Locate` chain replay per queued block per round), retained as
  /// the equivalence oracle for `RunRound` and the bench baseline.
  int64_t RunRoundScalar(
      std::unordered_map<PhysicalDiskId, int64_t>& leftover,
      BlockStore& store, DiskArray& disks, const PlacementPolicy& policy);

  int64_t pending() const { return static_cast<int64_t>(queue_.size()); }

  /// Queued entries referencing `object` — O(1). The serving-path cursors
  /// use this to pick their refill source: zero pending moves for an object
  /// means its store row agrees with AF().
  int64_t pending_for(ObjectId object) const;

  bool idle() const { return queue_.empty(); }
  int64_t total_moved() const { return total_moved_; }

  /// Transfers refused by injected transient errors (each burned its round
  /// bandwidth and was re-queued — retry in a later round is the backoff).
  int64_t transient_errors() const { return transient_errors_; }

  /// The queue contents in order (test introspection for the sharding and
  /// equivalence proofs).
  std::vector<BlockRef> QueueSnapshot() const;

 private:
  void PushRef(BlockRef ref);
  BlockRef PopFront();

  std::deque<BlockRef> queue_;
  std::unordered_map<ObjectId, int64_t> pending_per_object_;
  MoveJournal* journal_ = nullptr;  // Not owned; may be null.
  BlockIoEngine* io_ = nullptr;     // Not owned; may be null.
  bool crashed_ = false;
  int64_t total_moved_ = 0;
  int64_t transient_errors_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_MIGRATION_H_
