#ifndef SCADDAR_SERVER_MIGRATION_H_
#define SCADDAR_SERVER_MIGRATION_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/redistribution.h"
#include "core/types.h"
#include "placement/policy.h"
#include "storage/block_store.h"
#include "storage/disk_array.h"

namespace scaddar {

/// Executes block redistribution *online*, using only bandwidth left over
/// after stream service (Section 1: scaling must not interrupt the CM
/// server). The queue holds block references, not (source, destination)
/// pairs: at execution time each block is moved from wherever it currently
/// is to the placement layer's *latest* target, so overlapping scaling
/// operations and full redistributions compose correctly — stale queue
/// entries become no-ops instead of moving blocks to outdated locations.
class MigrationExecutor {
 public:
  MigrationExecutor() = default;

  /// Queues every block of an RF() plan.
  void EnqueuePlan(const MovePlan& plan);

  /// Queues every block whose materialized location diverges from
  /// `policy.Locate` — reconciliation after one or more scaling operations.
  void EnqueueReconciliation(const BlockStore& store,
                             const PlacementPolicy& policy);

  /// Spends leftover bandwidth: each transfer consumes one unit on the
  /// source and one on the destination disk. Returns blocks moved this
  /// round. Blocks already at their current target retire from the queue
  /// for free.
  int64_t RunRound(std::unordered_map<PhysicalDiskId, int64_t>& leftover,
                   BlockStore& store, DiskArray& disks,
                   const PlacementPolicy& policy);

  int64_t pending() const { return static_cast<int64_t>(queue_.size()); }
  bool idle() const { return queue_.empty(); }
  int64_t total_moved() const { return total_moved_; }

 private:
  std::deque<BlockRef> queue_;
  int64_t total_moved_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_MIGRATION_H_
