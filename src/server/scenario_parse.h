#ifndef SCADDAR_SERVER_SCENARIO_PARSE_H_
#define SCADDAR_SERVER_SCENARIO_PARSE_H_

#include <charconv>
#include <string>
#include <string_view>
#include <vector>

#include "storage/disk.h"
#include "util/statusor.h"

namespace scaddar::scenario {

/// Lexing/parsing helpers shared by the single-server and cluster scenario
/// interpreters — one definition so both DSLs tokenize and diagnose lines
/// identically.

inline std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

inline StatusOr<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer");
  }
  return value;
}

inline StatusOr<double> ParseDouble(std::string_view token) {
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed number");
  }
  return value;
}

inline StatusOr<std::vector<DiskSlot>> ParseSlotList(std::string_view token) {
  std::vector<DiskSlot> slots;
  while (!token.empty()) {
    const size_t comma = token.find(',');
    SCADDAR_ASSIGN_OR_RETURN(const int64_t slot,
                             ParseInt(token.substr(0, comma)));
    slots.push_back(slot);
    if (comma == std::string_view::npos) {
      break;
    }
    token = token.substr(comma + 1);
  }
  return slots;
}

inline Status LineError(int64_t line_number, std::string_view message) {
  return InvalidArgumentError("line " + std::to_string(line_number) + ": " +
                              std::string(message));
}

}  // namespace scaddar::scenario

#endif  // SCADDAR_SERVER_SCENARIO_PARSE_H_
