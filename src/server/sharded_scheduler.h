#ifndef SCADDAR_SERVER_SHARDED_SCHEDULER_H_
#define SCADDAR_SERVER_SHARDED_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "server/scheduler.h"
#include "server/shard_router.h"
#include "util/epoch.h"
#include "util/thread_pool.h"

namespace scaddar {

/// Per-round introspection of a sharded round (benchmarking/tests): how the
/// work split, what each phase cost, and the audit outcome. Filled only when
/// a caller passes it in — the production Tick path pays nothing for it.
struct ShardedRoundStats {
  std::vector<ShardStats> shards;  // Per-shard resolve-phase stats.
  double resolve_seconds = 0;      // Wall time of the whole resolve phase.
  double commit_seconds = 0;       // Wall time of the serial commit phase.
  bool routed = false;             // Whether the router rebuilt this round.
};

/// Tuning/testing knobs for `ShardedScheduler::Run`.
struct ShardedRunOptions {
  /// Run the resolve phase on the calling thread, one shard at a time,
  /// instead of fanning out across the pool. Used by the scalability bench
  /// to measure each shard's critical path unpolluted by host core count
  /// (per-shard `ShardStats::seconds` is exact either way, but on a machine
  /// with fewer cores than shards the parallel wall time measures the
  /// host, not the design).
  bool serialize_shards = false;

  /// When > 0, each shard spot-checks roughly 1 / 2^audit_sample_bits of
  /// its resolved locations against the store's materialized row (sampled
  /// by the shard's private PRNG, so shards never contend). A failed check
  /// means a stale window survived invalidation — the lost/duplicate-serve
  /// bug class — and is counted in `ShardStats::audit_failures`.
  int audit_sample_bits = 0;
};

/// The thread-per-core serving runtime: one scheduling round fanned out
/// across N stream shards. Byte-identical to `RoundScheduler::RunBatched` —
/// same served/hiccup metrics, same stream progress, same leftover budgets,
/// for any shard count and any thread interleaving — which is what lets the
/// serial path stay as the oracle.
///
/// A round runs in two phases:
///
///  1. **Resolve (parallel, lock-free).** Streams are partitioned across
///     shards by jump consistent hash on the stream id (`ShardRouter`).
///     Each worker walks only its shard's streams and resolves the round's
///     block locations through the per-stream `LocationCursor`s its shard
///     owns, writing into a disjoint slice of a flat scratch array. All
///     shared state (policy, store, migration queue) is read-only during
///     the phase — `PlacementPolicy::PrepareForBatch` is called first so
///     even the compiled-log cache is warm — and the round context arrives
///     through a `SeqLock`-published epoch the workers validate, so readers
///     never block on writers and a mid-round mutation is a checked bug.
///  2. **Commit (serial, deterministic).** The coordinator walks streams in
///     id order — the exact order the serial scheduler uses — applying
///     per-disk budget accounting to the pre-resolved locations. Budget
///     contention (who hiccups when a disk saturates) is resolved by the
///     same FIFO discipline as the serial path, which is why the metrics
///     are identical rather than merely statistically equivalent. The
///     commit is a few array ops per request; the cache-missing work
///     (cursor windows, batch refills, store-row bypass hashing) all
///     happened in phase 1.
///
/// Cross-shard coordination — scaling ops, migration rounds, revision bumps
/// — happens between rounds, while workers are quiesced at the fork/join
/// barrier; the epoch publication makes that hand-off explicit and
/// assertable rather than implicit in the pool's synchronization.
class ShardedScheduler {
 public:
  /// `num_shards` >= 1 (one worker thread per shard is spawned lazily on
  /// the first parallel round). `seed` feeds the per-shard PRNGs.
  explicit ShardedScheduler(int num_shards, uint64_t seed = 0x5ca99edull);

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Attaches (or detaches, with null) the real-I/O engine. Serve reads are
  /// queued during the *serial commit* phase only — the engine is not
  /// thread-safe, and the parallel resolve phase must stay read-only — so
  /// the per-shard parallelism is untouched and a whole round's reads still
  /// go down in one batched submission per disk.
  void set_io_engine(BlockIoEngine* io) { io_ = io; }

  /// One scheduling round over `streams`; drop-in equivalent of
  /// `RoundScheduler::RunBatched` (same contract, same results).
  RoundServiceResult Run(
      std::vector<Stream>& streams, const PlacementPolicy& policy,
      const MigrationExecutor& migration, const BlockStore& store,
      DiskArray& disks,
      std::unordered_map<PhysicalDiskId, int64_t>* leftover,
      const ShardedRunOptions& options = {},
      ShardedRoundStats* stats = nullptr);

  int num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }

  /// Completed epoch publications (two sequence steps each).
  uint64_t epochs_published() const { return epoch_.sequence() / 2; }

 private:
  /// The epoch descriptor workers validate: which round they are serving
  /// and the revisions the coordinator saw when it published. Small and
  /// trivially copyable, as `Published` requires.
  struct RoundEpoch {
    int64_t round = 0;
    int64_t policy_revision = 0;
    int64_t store_revision = 0;
  };

  /// Phase 1 for one shard: resolve every owned stream's round locations
  /// into the scratch slices. Runs concurrently with other shards.
  void ResolveShard(ServingShard& shard, const PlacementPolicy& policy,
                    const MigrationExecutor& migration,
                    const BlockStore& store, uint64_t epoch_token,
                    const RoundEpoch& expected,
                    const ShardedRunOptions& options);

  ShardRouter router_;
  BlockIoEngine* io_ = nullptr;       // Not owned; may be null.
  std::unique_ptr<ThreadPool> pool_;  // Lazy: only parallel rounds need it.
  Published<RoundEpoch> epoch_;
  int64_t round_ = 0;

  // Flat per-round scratch, indexed by stream position: stream `i`'s
  // resolved locations live in `resolved_[offset_[i], offset_[i] +
  // resolved_count_[i])`. Offsets stride by each stream's rate and are
  // rebuilt only when the router reroutes; shards write disjoint slices.
  std::vector<PhysicalDiskId> resolved_;
  std::vector<int64_t> offset_;
  std::vector<int32_t> resolved_count_;

  // Dense per-disk budget array reused across rounds (commit phase). The
  // per-disk served counts are the delta against `budget_template_`.
  std::vector<int64_t> budget_;

  // Live-disk cache keyed on `DiskArray::generation()`: the id list, the
  // resolved `SimDisk` pointers (stable — the array never erases disks) and
  // a prefilled budget template (`kNotLive` holes, per-round bandwidth at
  // live ids). Rebuilt only when a scaling op changes the live set, so the
  // steady-state commit does no hashing and no allocation.
  const DiskArray* disks_cache_key_ = nullptr;
  uint64_t disks_generation_ = 0;
  std::vector<PhysicalDiskId> live_;
  std::vector<SimDisk*> live_disks_;
  std::vector<int64_t> budget_template_;
  PhysicalDiskId max_disk_id_ = 0;

  // Mutable cursor access happens through the shard that owns the stream;
  // the const stream vector reference workers get is a lie we confine here.
  std::vector<Stream>* round_streams_ = nullptr;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_SHARDED_SCHEDULER_H_
