#ifndef SCADDAR_SERVER_REORG_DRIVER_H_
#define SCADDAR_SERVER_REORG_DRIVER_H_

#include <cstdint>
#include <vector>

#include "core/governor.h"
#include "core/op_log.h"
#include "core/scaling_op.h"
#include "util/statusor.h"

namespace scaddar {

/// The adaptive placement driver's configuration + memory: a
/// `ToleranceGovernor` for the Section 4.3 ε budget, a CoV drift threshold
/// for live load imbalance, and the history of every reorganization the
/// driver has triggered. `CmServer` owns one, consults it before every
/// scaling operation and at end of round, and calls `FullRedistribution`
/// when the driver says to — so the paper's "keep track of Π_k and find out
/// whether the next operation will lead to a violation" finally *acts*
/// instead of just advising.
///
/// The driver itself is deliberately passive (no server pointer): decisions
/// are pure functions of the op log and the measured CoV, which is what
/// makes the property-test oracle (`governor_property_test`) and the
/// twin-server equivalence test exact.
class AdaptiveReorgDriver {
 public:
  /// Disabled driver with the library defaults (b=64, ε=0.05) — the state a
  /// server has before any `governor`/`autoreorg` configuration.
  AdaptiveReorgDriver();

  /// Validates and builds: `bits` in [1, 64]; `eps` finite and > 0;
  /// `cov_threshold` finite and >= 0 (0 = no CoV watch); `check_every` >= 1
  /// rounds between CoV evaluations. Starts disabled.
  static StatusOr<AdaptiveReorgDriver> Create(int bits, double eps,
                                              double cov_threshold,
                                              int64_t check_every);

  /// Whether the driver may trigger reorganizations.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  const ToleranceGovernor& governor() const { return governor_; }
  double cov_threshold() const { return cov_threshold_; }
  int64_t check_every() const { return check_every_; }

  /// True iff the driver is on and appending `op` to `log` would break the
  /// ε budget — the caller must rebase *first*, which resets the log and
  /// makes the op affordable again. This fires exactly when the serial
  /// `OpLog::WouldExceedTolerance` oracle flips.
  bool WantsRebaseBeforeOp(const OpLog& log, const ScalingOp& op) const {
    return enabled_ &&
           governor_.Consider(log, op) ==
               ToleranceGovernor::Advice::kRebaseFirst;
  }

  /// True iff the driver is on and `log` already stands outside the budget
  /// (possible when the governor is tightened, or enabled, mid-life).
  bool BudgetExceeded(const OpLog& log) const {
    return enabled_ && !governor_.WithinBudget(log);
  }

  /// True iff the end-of-round CoV evaluation is due at `round`.
  bool CovCheckDue(int64_t round) const {
    return enabled_ && cov_threshold_ > 0.0 && round % check_every_ == 0;
  }

  /// True iff a measured CoV calls for a reorganization.
  bool CovExceeded(double cov) const {
    return enabled_ && cov_threshold_ > 0.0 && cov > cov_threshold_;
  }

  // --- Trigger history (surfaced in ScenarioResult, checkpointed). --------
  void RecordTrigger(int64_t round, ReorgReason reason, double value) {
    triggers_.push_back(ReorgTrigger{round, reason, value});
  }
  const std::vector<ReorgTrigger>& triggers() const { return triggers_; }
  void RestoreTriggers(std::vector<ReorgTrigger> triggers) {
    triggers_ = std::move(triggers);
  }

 private:
  AdaptiveReorgDriver(int bits, double eps, double cov_threshold,
                      int64_t check_every);

  ToleranceGovernor governor_;
  double cov_threshold_ = 0.0;
  int64_t check_every_ = 16;
  bool enabled_ = false;
  std::vector<ReorgTrigger> triggers_;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_REORG_DRIVER_H_
