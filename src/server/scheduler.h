#ifndef SCADDAR_SERVER_SCHEDULER_H_
#define SCADDAR_SERVER_SCHEDULER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "server/stream.h"
#include "storage/block_store.h"
#include "storage/disk_array.h"

namespace scaddar {

/// Outcome of one scheduling round.
struct RoundServiceResult {
  int64_t requests = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
};

/// Round-based retrieval scheduler. Each active stream requests its next
/// block; the request is routed to the disk that *materially* holds the
/// block (the block store — not the placement target, which may differ
/// mid-migration). A disk serves at most its per-round bandwidth; overflow
/// requests hiccup and the stream retries next round.
///
/// `leftover` (if non-null) receives each live disk's unused bandwidth,
/// which the migration executor spends afterwards — this is how online
/// reorganization shares the array with normal service.
class RoundScheduler {
 public:
  RoundServiceResult Run(
      std::vector<Stream>& streams, const BlockStore& store, DiskArray& disks,
      std::unordered_map<PhysicalDiskId, int64_t>* leftover) const;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_SCHEDULER_H_
