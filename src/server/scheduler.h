#ifndef SCADDAR_SERVER_SCHEDULER_H_
#define SCADDAR_SERVER_SCHEDULER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "placement/policy.h"
#include "server/migration.h"
#include "server/stream.h"
#include "storage/block_store.h"
#include "storage/disk_array.h"

namespace scaddar {

class BlockIoEngine;

/// Outcome of one scheduling round.
struct RoundServiceResult {
  int64_t requests = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
};

/// Round-based retrieval scheduler. Each active stream requests its next
/// block; the request is routed to the disk that *materially* holds the
/// block (the block store — not the placement target, which may differ
/// mid-migration). A disk serves at most its per-round bandwidth; overflow
/// requests hiccup and the stream retries next round.
///
/// `leftover` (if non-null) receives each live disk's unused bandwidth,
/// which the migration executor spends afterwards — this is how online
/// reorganization shares the array with normal service.
///
/// Three paths compute the same rounds:
///  - `RunBatched` — the production path: streams consume locations from
///    their `LocationCursor` sliding windows (batch-prefetched, revision-
///    invalidated), per-disk budgets live in a dense array indexed by
///    physical id, and served-request counters flush once per disk per
///    round.
///  - `Run` — per-block store hash lookups; the original implementation,
///    kept as the materialized-truth oracle for the equivalence tests.
///  - `RunScalarLocate` — per-block virtual `policy.Locate` chain
///    evaluation; the baseline `bench_serving` measures the batch path
///    against. Routing equals the other two only while no migration is
///    pending (store == AF); use it for measurement, not for serving.
class RoundScheduler {
 public:
  /// Attaches (or detaches, with null) the real-I/O engine. With an engine
  /// attached, every delivered block also queues a physical serve read
  /// (`BlockIoEngine::EnqueueServeRead`) against the disk that served it;
  /// the server drains the round's reads with `FinishServeRound` after the
  /// scheduler returns, so submission overlaps the migration phase.
  void set_io_engine(BlockIoEngine* io) { io_ = io; }

  RoundServiceResult Run(
      std::vector<Stream>& streams, const BlockStore& store, DiskArray& disks,
      std::unordered_map<PhysicalDiskId, int64_t>* leftover) const;

  RoundServiceResult RunBatched(
      std::vector<Stream>& streams, const PlacementPolicy& policy,
      const MigrationExecutor& migration, const BlockStore& store,
      DiskArray& disks,
      std::unordered_map<PhysicalDiskId, int64_t>* leftover) const;

  RoundServiceResult RunScalarLocate(
      std::vector<Stream>& streams, const PlacementPolicy& policy,
      DiskArray& disks,
      std::unordered_map<PhysicalDiskId, int64_t>* leftover) const;

 private:
  BlockIoEngine* io_ = nullptr;  // Not owned; may be null.
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_SCHEDULER_H_
