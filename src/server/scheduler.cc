#include "server/scheduler.h"

#include <algorithm>

#include "storage/block_io.h"

namespace scaddar {

namespace {

/// Sentinel marking a physical id with no live disk in the dense budget
/// array (budgets are never negative for live disks).
constexpr int64_t kNotLive = -1;

}  // namespace

RoundServiceResult RoundScheduler::Run(
    std::vector<Stream>& streams, const BlockStore& store, DiskArray& disks,
    std::unordered_map<PhysicalDiskId, int64_t>* leftover) const {
  RoundServiceResult result;
  // Initialize per-disk budgets from live bandwidth.
  std::unordered_map<PhysicalDiskId, int64_t> budget;
  for (const PhysicalDiskId id : disks.live_ids()) {
    budget[id] = disks.GetDisk(id).value()->spec().bandwidth_blocks_per_round;
  }
  // Streams are served in id order (FIFO fairness); a disk whose budget is
  // exhausted hiccups the remaining requests routed to it.
  for (Stream& stream : streams) {
    if (stream.finished() || stream.paused()) {
      continue;
    }
    // A stream needs `rate()` consecutive blocks per round; the first
    // shortfall is a hiccup and the stream stalls for the rest of the
    // round (partial delivery of a multi-rate frame is useless).
    for (int64_t r = 0; r < stream.rate() && !stream.finished(); ++r) {
      ++result.requests;
      const StatusOr<PhysicalDiskId> location =
          store.LocationOf(stream.NextBlockRef());
      SCADDAR_CHECK(location.ok());
      const auto it = budget.find(*location);
      // A block can transiently sit on a retiring disk; such disks are
      // still in the live set until drained, so a missing budget entry
      // means the store and the array disagree — a real bug.
      SCADDAR_CHECK(it != budget.end());
      if (it->second > 0) {
        --it->second;
        if (io_ != nullptr) {
          SCADDAR_CHECK(
              io_->EnqueueServeRead(stream.NextBlockRef(), *location).ok());
        }
        stream.DeliverBlock();
        disks.GetDisk(*location).value()->RecordServedRequests(1);
        ++result.served;
      } else {
        stream.RecordHiccup();
        ++result.hiccups;
        break;
      }
    }
  }
  if (leftover != nullptr) {
    *leftover = std::move(budget);
  }
  return result;
}

RoundServiceResult RoundScheduler::RunBatched(
    std::vector<Stream>& streams, const PlacementPolicy& policy,
    const MigrationExecutor& migration, const BlockStore& store,
    DiskArray& disks,
    std::unordered_map<PhysicalDiskId, int64_t>* leftover) const {
  RoundServiceResult result;
  // Physical ids are small dense integers (monotonic, never reused), so the
  // per-round budget and served counters live in flat arrays: one indexed
  // load per request instead of a hash lookup.
  const std::vector<PhysicalDiskId> live = disks.live_ids();
  PhysicalDiskId max_id = 0;
  for (const PhysicalDiskId id : live) {
    max_id = std::max(max_id, id);
  }
  std::vector<int64_t> budget(static_cast<size_t>(max_id + 1), kNotLive);
  std::vector<int64_t> served_on(static_cast<size_t>(max_id + 1), 0);
  for (const PhysicalDiskId id : live) {
    budget[static_cast<size_t>(id)] =
        disks.GetDisk(id).value()->spec().bandwidth_blocks_per_round;
  }
  for (Stream& stream : streams) {
    if (stream.finished() || stream.paused()) {
      continue;
    }
    LocationCursor& cursor = stream.cursor();
    for (int64_t r = 0; r < stream.rate() && !stream.finished(); ++r) {
      ++result.requests;
      const PhysicalDiskId location =
          cursor.Get(stream.next_block(), policy, store, migration);
      // Same invariant as the scalar path: the serving disk must be in the
      // live set (possibly retiring, but not yet drained).
      SCADDAR_CHECK(location >= 0 && location <= max_id &&
                    budget[static_cast<size_t>(location)] != kNotLive);
      int64_t& remaining = budget[static_cast<size_t>(location)];
      if (remaining > 0) {
        --remaining;
        if (io_ != nullptr) {
          SCADDAR_CHECK(
              io_->EnqueueServeRead(stream.NextBlockRef(), location).ok());
        }
        stream.DeliverBlock();
        ++served_on[static_cast<size_t>(location)];
        ++result.served;
      } else {
        stream.RecordHiccup();
        ++result.hiccups;
        break;
      }
    }
  }
  for (const PhysicalDiskId id : live) {
    const int64_t served = served_on[static_cast<size_t>(id)];
    if (served > 0) {
      disks.GetDisk(id).value()->RecordServedRequests(served);
    }
  }
  if (leftover != nullptr) {
    leftover->clear();
    for (const PhysicalDiskId id : live) {
      (*leftover)[id] = budget[static_cast<size_t>(id)];
    }
  }
  return result;
}

RoundServiceResult RoundScheduler::RunScalarLocate(
    std::vector<Stream>& streams, const PlacementPolicy& policy,
    DiskArray& disks,
    std::unordered_map<PhysicalDiskId, int64_t>* leftover) const {
  RoundServiceResult result;
  std::unordered_map<PhysicalDiskId, int64_t> budget;
  for (const PhysicalDiskId id : disks.live_ids()) {
    budget[id] = disks.GetDisk(id).value()->spec().bandwidth_blocks_per_round;
  }
  for (Stream& stream : streams) {
    if (stream.finished() || stream.paused()) {
      continue;
    }
    for (int64_t r = 0; r < stream.rate() && !stream.finished(); ++r) {
      ++result.requests;
      const PhysicalDiskId location =
          policy.Locate(stream.object(), stream.next_block());
      const auto it = budget.find(location);
      SCADDAR_CHECK(it != budget.end());
      if (it->second > 0) {
        --it->second;
        if (io_ != nullptr) {
          SCADDAR_CHECK(
              io_->EnqueueServeRead(stream.NextBlockRef(), location).ok());
        }
        stream.DeliverBlock();
        disks.GetDisk(location).value()->RecordServedRequests(1);
        ++result.served;
      } else {
        stream.RecordHiccup();
        ++result.hiccups;
        break;
      }
    }
  }
  if (leftover != nullptr) {
    *leftover = std::move(budget);
  }
  return result;
}

}  // namespace scaddar
