#include "server/scheduler.h"

namespace scaddar {

RoundServiceResult RoundScheduler::Run(
    std::vector<Stream>& streams, const BlockStore& store, DiskArray& disks,
    std::unordered_map<PhysicalDiskId, int64_t>* leftover) const {
  RoundServiceResult result;
  // Initialize per-disk budgets from live bandwidth.
  std::unordered_map<PhysicalDiskId, int64_t> budget;
  for (const PhysicalDiskId id : disks.live_ids()) {
    budget[id] = disks.GetDisk(id).value()->spec().bandwidth_blocks_per_round;
  }
  // Streams are served in id order (FIFO fairness); a disk whose budget is
  // exhausted hiccups the remaining requests routed to it.
  for (Stream& stream : streams) {
    if (stream.finished() || stream.paused()) {
      continue;
    }
    // A stream needs `rate()` consecutive blocks per round; the first
    // shortfall is a hiccup and the stream stalls for the rest of the
    // round (partial delivery of a multi-rate frame is useless).
    for (int64_t r = 0; r < stream.rate() && !stream.finished(); ++r) {
      ++result.requests;
      const StatusOr<PhysicalDiskId> location =
          store.LocationOf(stream.NextBlockRef());
      SCADDAR_CHECK(location.ok());
      const auto it = budget.find(*location);
      // A block can transiently sit on a retiring disk; such disks are
      // still in the live set until drained, so a missing budget entry
      // means the store and the array disagree — a real bug.
      SCADDAR_CHECK(it != budget.end());
      if (it->second > 0) {
        --it->second;
        stream.DeliverBlock();
        disks.GetDisk(*location).value()->RecordServedRequests(1);
        ++result.served;
      } else {
        stream.RecordHiccup();
        ++result.hiccups;
        break;
      }
    }
  }
  if (leftover != nullptr) {
    *leftover = std::move(budget);
  }
  return result;
}

}  // namespace scaddar
