#include "server/server.h"

#include <algorithm>
#include <charconv>
#include <optional>
#include <thread>

#include "faults/injector.h"
#include "storage/block_io.h"

namespace scaddar {

namespace {

StatusOr<int64_t> ParseSnapshotInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in snapshot");
  }
  return value;
}

}  // namespace

CmServer::CmServer(const ServerConfig& config)
    : config_(config),
      catalog_(config.master_seed, config.prng_kind, config.bits),
      disks_(config.disk_spec),
      store_(&disks_),
      admission_(config.admission_utilization_cap),
      next_stream_id_(config.first_stream_id) {}

CmServer::~CmServer() = default;

StatusOr<std::unique_ptr<CmServer>> CmServer::Create(
    const ServerConfig& config) {
  if (config.initial_disks <= 0) {
    return InvalidArgumentError("server needs at least one disk");
  }
  if (config.bits < 1 || config.bits > 64) {
    return InvalidArgumentError("bits must be in [1, 64]");
  }
  std::unique_ptr<CmServer> server(new CmServer(config));
  PolicyOptions options;
  options.seed = config.master_seed ^ 0xd15c5ull;
  SCADDAR_ASSIGN_OR_RETURN(
      server->policy_,
      MakePolicy(config.policy, config.initial_disks, options));
  SCADDAR_RETURN_IF_ERROR(server->SyncDisks());
  if (config.journal_migration) {
    server->migration_.AttachJournal(&server->journal_);
  }
  if (config.storage_backend != "sim") {
    SCADDAR_RETURN_IF_ERROR(server->SelectBackend(config.storage_backend,
                                                  config.io_queue_depth));
  }
  return server;
}

Status CmServer::SelectBackend(std::string_view spec, int queue_depth) {
  if (store_.total_blocks() > 0 || store_.staged_blocks() > 0) {
    return FailedPreconditionError(
        "backend can only change while the store is empty");
  }
  if (spec == "sim") {
    store_.AttachIoEngine(nullptr);
    migration_.AttachIoEngine(nullptr);
    scheduler_.set_io_engine(nullptr);
    if (sharded_scheduler_ != nullptr) {
      sharded_scheduler_->set_io_engine(nullptr);
    }
    io_engine_.reset();
    config_.storage_backend = "sim";
    return OkStatus();
  }
  BlockIoEngine::Options options;
  options.spec = std::string(spec);
  options.block_bytes = config_.io_block_bytes;
  options.queue_depth =
      queue_depth > 0 ? queue_depth : config_.io_queue_depth;
  options.content_seed = config_.master_seed ^ 0xb10cb17e5ull;
  SCADDAR_ASSIGN_OR_RETURN(io_engine_, BlockIoEngine::Create(options));
  // Route backend faults through the attached injector (looked up per op,
  // so AttachFaultInjector works in either order with backend selection).
  io_engine_->backend().set_fault_hook(
      [this](PhysicalDiskId disk, IoOp op) -> IoFault {
        (void)op;
        FaultInjector* const injector = disks_.fault_injector();
        if (injector == nullptr) {
          return IoFault::kNone;
        }
        const std::optional<BackendFaultKind> fault =
            injector->NextBackendFault(disk);
        if (!fault.has_value()) {
          return IoFault::kNone;
        }
        return *fault == BackendFaultKind::kEio ? IoFault::kEio
                                                : IoFault::kShort;
      });
  store_.AttachIoEngine(io_engine_.get());
  migration_.AttachIoEngine(io_engine_.get());
  scheduler_.set_io_engine(io_engine_.get());
  if (sharded_scheduler_ != nullptr) {
    sharded_scheduler_->set_io_engine(io_engine_.get());
  }
  // Real bytes only move under the WAL protocol: the two-phase round needs
  // journal ids to abort failed copies, and recovery needs the journal to
  // validate staged images.
  config_.storage_backend = std::string(spec);
  config_.io_queue_depth = options.queue_depth;
  config_.journal_migration = true;
  migration_.AttachJournal(&journal_);
  return OkStatus();
}

Status CmServer::SyncDisks() {
  std::vector<PhysicalDiskId> live = policy_->log().physical_disks();
  for (const PhysicalDiskId id : retiring_) {
    live.push_back(id);
  }
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  return disks_.SyncLiveSet(live);
}

Status CmServer::AddObject(ObjectId id, int64_t num_blocks,
                           int64_t bitrate_weight) {
  SCADDAR_RETURN_IF_ERROR(
      catalog_.AddObject(id, num_blocks, bitrate_weight));
  // Unwind the catalog if any later layer refuses, so a failed ingest
  // leaves no trace (e.g. bits wider than the generator supports).
  StatusOr<std::vector<uint64_t>> x0 = catalog_.MaterializeX0(id);
  if (!x0.ok()) {
    SCADDAR_CHECK(catalog_.RemoveObject(id).ok());
    return x0.status();
  }
  const Status registered = policy_->AddObject(id, std::move(x0).value());
  if (!registered.ok()) {
    SCADDAR_CHECK(catalog_.RemoveObject(id).ok());
    return registered;
  }
  // One batch pass resolves the whole initial placement.
  std::vector<PhysicalDiskId> locations;
  policy_->LocateAllBlocks(id, locations);
  const Status placed = store_.PlaceObject(id, locations);
  if (!placed.ok()) {
    SCADDAR_CHECK(policy_->RemoveObject(id).ok());
    SCADDAR_CHECK(catalog_.RemoveObject(id).ok());
  }
  return placed;
}

Status CmServer::RemoveObject(ObjectId id) {
  if (!catalog_.Contains(id)) {
    return NotFoundError("object not in catalog");
  }
  if (ActiveStreamsFor(id) > 0) {
    return FailedPreconditionError(
        "object has active streams; stop them first");
  }
  SCADDAR_RETURN_IF_ERROR(policy_->RemoveObject(id));
  SCADDAR_RETURN_IF_ERROR(store_.DropObject(id));
  return catalog_.RemoveObject(id);
}

Status CmServer::ScaleAdd(int64_t count) {
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op, ScalingOp::Add(count));
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  SCADDAR_RETURN_IF_ERROR(SyncDisks());
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return OkStatus();
}

Status CmServer::ScaleRemove(std::vector<DiskSlot> slots) {
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op,
                           ScalingOp::Remove(std::move(slots)));
  // Resolve the physical disks being retired *before* the op renumbers
  // slots; they keep serving until the migration drains them.
  const std::vector<PhysicalDiskId>& before =
      policy_->log().physical_disks();
  std::vector<PhysicalDiskId> retiring_now;
  for (const DiskSlot slot : op.removed_slots()) {
    if (slot >= static_cast<DiskSlot>(before.size())) {
      return InvalidArgumentError("removal names a slot beyond N_{j-1}");
    }
    retiring_now.push_back(before[static_cast<size_t>(slot)]);
  }
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  for (const PhysicalDiskId id : retiring_now) {
    retiring_.push_back(id);
  }
  SCADDAR_RETURN_IF_ERROR(SyncDisks());
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return OkStatus();
}

bool CmServer::WouldExceedTolerance(const ScalingOp& op) const {
  return policy_->log().WouldExceedTolerance(op, catalog_.r0(),
                                             config_.tolerance_eps);
}

Status CmServer::FullRedistribution() {
  // 1. Fresh seeds for every object.
  for (const ObjectId id : catalog_.object_ids()) {
    SCADDAR_RETURN_IF_ERROR(catalog_.BumpGeneration(id));
  }
  // 2. Fresh placement over the current live disks (retiring disks are
  //    already draining and must not receive new placements).
  PolicyOptions options;
  options.seed = config_.master_seed ^ 0xd15c5ull ^
                 static_cast<uint64_t>(round_ + 1);
  SCADDAR_ASSIGN_OR_RETURN(
      std::unique_ptr<PlacementPolicy> fresh,
      MakePolicyWithDisks(config_.policy, policy_->log().physical_disks(),
                          options));
  for (const ObjectId id : catalog_.object_ids()) {
    SCADDAR_ASSIGN_OR_RETURN(std::vector<uint64_t> x0,
                             catalog_.MaterializeX0(id));
    SCADDAR_RETURN_IF_ERROR(fresh->AddObject(id, std::move(x0)));
  }
  policy_ = std::move(fresh);
  // 3. Converge materialized state onto the new placement, online.
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return OkStatus();
}

StatusOr<int64_t> CmServer::StartStream(ObjectId object) {
  SCADDAR_ASSIGN_OR_RETURN(const CmObject meta, catalog_.GetObject(object));
  if (!admission_.Admit(ActiveLoad(), meta.bitrate_weight,
                        PlacementBandwidth())) {
    return ResourceExhaustedError("admission control rejected the stream");
  }
  const int64_t id = next_stream_id_++;
  streams_.emplace_back(id, object, meta.num_blocks, round_,
                        meta.bitrate_weight);
  ++streams_per_object_[object];
  return id;
}

int64_t CmServer::ActiveStreamsFor(ObjectId object) const {
  const auto it = streams_per_object_.find(object);
  return it == streams_per_object_.end() ? 0 : it->second;
}

std::vector<StreamHandoff> CmServer::DetachStreamsFor(ObjectId object) {
  std::vector<StreamHandoff> handoffs;
  for (const Stream& stream : streams_) {
    if (stream.object() != object || stream.finished()) {
      continue;
    }
    handoffs.push_back(StreamHandoff{object, stream.next_block(),
                                     stream.paused()});
  }
  const auto detached = std::remove_if(
      streams_.begin(), streams_.end(), [object](const Stream& stream) {
        return stream.object() == object;
      });
  if (detached != streams_.end()) {
    streams_.erase(detached, streams_.end());
    streams_per_object_.erase(object);
  }
  return handoffs;
}

ParallelPlanOptions CmServer::ReconcileOptions() const {
  ParallelPlanOptions options;
  options.num_threads = config_.reconcile_threads;
  return options;
}

int64_t CmServer::ActiveLoad() const {
  int64_t load = 0;
  for (const Stream& stream : streams_) {
    load += stream.rate();
  }
  return load;
}

RoundMetrics CmServer::Tick() {
  RoundMetrics metrics;
  metrics.round = round_;
  metrics.active_streams = active_streams();
  if (migration_.crashed()) {
    return metrics;  // Dead process; only SimulateCrashRestart revives it.
  }
  if (FaultInjector* const injector = disks_.fault_injector()) {
    injector->BeginRound(round_);
  }

  std::unordered_map<PhysicalDiskId, int64_t> leftover;
  RoundServiceResult service;
  switch (config_.serving_path) {
    case ServingPath::kBatchCursor:
      service = scheduler_.RunBatched(streams_, *policy_, migration_, store_,
                                      disks_, &leftover);
      break;
    case ServingPath::kStoreScalar:
      service = scheduler_.Run(streams_, store_, disks_, &leftover);
      break;
    case ServingPath::kPolicyScalar:
      service = scheduler_.RunScalarLocate(streams_, *policy_, disks_,
                                           &leftover);
      break;
    case ServingPath::kShardedCursor: {
      if (sharded_scheduler_ == nullptr) {
        int shards = config_.serving_shards;
        if (shards <= 0) {
          shards = static_cast<int>(std::thread::hardware_concurrency());
        }
        sharded_scheduler_ = std::make_unique<ShardedScheduler>(
            std::max(shards, 1), config_.master_seed ^ 0x5aa2dull);
        sharded_scheduler_->set_io_engine(io_engine_.get());
      }
      service = sharded_scheduler_->Run(streams_, *policy_, migration_,
                                        store_, disks_, &leftover,
                                        ShardedRunOptions{},
                                        &last_sharded_round_);
      break;
    }
  }
  metrics.requests = service.requests;
  metrics.served = service.served;
  metrics.hiccups = service.hiccups;
  total_served_ += service.served;
  total_hiccups_ += service.hiccups;

  // Land the round's physical serve reads: one batched submission per disk,
  // verified against the canonical images as the completions drain.
  if (io_engine_ != nullptr) {
    SCADDAR_CHECK(io_engine_->FinishServeRound().ok());
  }

  if (config_.migration_extra_budget > 0) {
    for (auto& [id, budget] : leftover) {
      budget += config_.migration_extra_budget;
    }
  }
  metrics.migrated = migration_.RunRound(leftover, store_, disks_, *policy_);
  metrics.pending_migration = migration_.pending();
  if (migration_.crashed()) {
    return metrics;  // Died mid-round; the rest of the round never ran.
  }

  // Retire drained disks.
  if (!retiring_.empty()) {
    std::vector<PhysicalDiskId> still_draining;
    for (const PhysicalDiskId id : retiring_) {
      if (store_.CountOn(id) > 0) {
        still_draining.push_back(id);
      }
    }
    if (still_draining.size() != retiring_.size()) {
      retiring_ = std::move(still_draining);
      SCADDAR_CHECK(SyncDisks().ok());
    }
  }
  metrics.retiring_disks = static_cast<int64_t>(retiring_.size());

  // Startup-latency observation: a stream whose playback position first
  // leaves block 0 this round got its first delivery now. Pure bookkeeping
  // after the serving paths ran, so every path records identically.
  for (Stream& stream : streams_) {
    if (!stream.playback_started() && stream.next_block() > 0) {
      stream.MarkPlaybackStarted();
      startup_latencies_.push_back(round_ - stream.start_round());
    }
  }

  // Drop finished streams (refcounts first: remove_if leaves moved-from
  // values in the tail, so the objects must be read before compaction).
  for (const Stream& stream : streams_) {
    if (!stream.finished()) {
      continue;
    }
    const auto count = streams_per_object_.find(stream.object());
    SCADDAR_CHECK(count != streams_per_object_.end());
    if (--count->second == 0) {
      streams_per_object_.erase(count);
    }
  }
  const auto finished = std::remove_if(
      streams_.begin(), streams_.end(),
      [](const Stream& stream) { return stream.finished(); });
  completed_streams_ += streams_.end() - finished;
  streams_.erase(finished, streams_.end());

  ++round_;
  return metrics;
}

Status CmServer::PauseStream(int64_t stream_id) {
  for (Stream& stream : streams_) {
    if (stream.id() == stream_id) {
      stream.Pause();
      return OkStatus();
    }
  }
  return NotFoundError("no active stream with that id");
}

Status CmServer::ResumeStream(int64_t stream_id) {
  for (Stream& stream : streams_) {
    if (stream.id() == stream_id) {
      stream.Resume();
      return OkStatus();
    }
  }
  return NotFoundError("no active stream with that id");
}

Status CmServer::SeekStream(int64_t stream_id, BlockIndex block) {
  for (Stream& stream : streams_) {
    if (stream.id() == stream_id) {
      stream.SeekTo(block);
      return OkStatus();
    }
  }
  return NotFoundError("no active stream with that id");
}

StatusOr<std::string> CmServer::SaveSnapshot() const {
  if (!migration_.idle()) {
    return FailedPreconditionError(
        "cannot snapshot while a migration is pending");
  }
  std::string out = "scaddar-snapshot-v1\n";
  out += "policy=";
  out += policy_->name();
  out += "\noplog=";
  out += policy_->log().Serialize();
  out += '\n';
  for (const ObjectId id : catalog_.object_ids()) {
    const CmObject object = catalog_.GetObject(id).value();
    out += "object=" + std::to_string(object.id) + ',' +
           std::to_string(object.num_blocks) + ',' +
           std::to_string(object.bitrate_weight) + ',' +
           std::to_string(object.seed_generation) + ',' +
           std::to_string(policy_->epoch_added(id)) + '\n';
  }
  return out;
}

StatusOr<std::unique_ptr<CmServer>> CmServer::Restore(
    const ServerConfig& config, std::string_view snapshot) {
  // --- Parse -----------------------------------------------------------
  struct ObjectRecord {
    ObjectId id;
    int64_t num_blocks;
    int64_t weight;
    int64_t generation;
    Epoch epoch;
  };
  std::string policy_name;
  std::string oplog_text;
  std::vector<ObjectRecord> records;
  bool header_seen = false;
  std::string_view rest = snapshot;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    const std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    if (line.empty()) {
      continue;
    }
    if (!header_seen) {
      if (line != "scaddar-snapshot-v1") {
        return InvalidArgumentError("unrecognized snapshot header");
      }
      header_seen = true;
      continue;
    }
    if (line.starts_with("policy=")) {
      policy_name = std::string(line.substr(7));
    } else if (line.starts_with("oplog=")) {
      oplog_text = std::string(line.substr(6));
    } else if (line.starts_with("object=")) {
      std::string_view body = line.substr(7);
      int64_t fields[5];
      for (int f = 0; f < 5; ++f) {
        const size_t comma = body.find(',');
        if ((f < 4) == (comma == std::string_view::npos)) {
          return InvalidArgumentError("malformed object record");
        }
        SCADDAR_ASSIGN_OR_RETURN(fields[f],
                                 ParseSnapshotInt(body.substr(0, comma)));
        body = comma == std::string_view::npos ? std::string_view()
                                               : body.substr(comma + 1);
      }
      records.push_back(ObjectRecord{fields[0], fields[1], fields[2],
                                     fields[3], fields[4]});
    } else {
      return InvalidArgumentError("unrecognized snapshot line");
    }
  }
  if (!header_seen || policy_name.empty() || oplog_text.empty()) {
    return InvalidArgumentError("incomplete snapshot");
  }
  if (policy_name != config.policy) {
    return InvalidArgumentError("snapshot policy differs from config");
  }
  if (policy_name != "scaddar" && policy_name != "naive" &&
      policy_name != "mod" && policy_name != "roundrobin") {
    return UnimplementedError(
        "only deterministic policies can be restored from metadata");
  }
  SCADDAR_ASSIGN_OR_RETURN(const OpLog script,
                           OpLog::Deserialize(oplog_text));
  for (const ObjectRecord& record : records) {
    if (record.epoch < 0 || record.epoch > script.num_ops()) {
      return InvalidArgumentError(
          "object registration epoch outside the op log");
    }
  }

  // --- Rebuild ---------------------------------------------------------
  std::unique_ptr<CmServer> server(new CmServer(config));
  PolicyOptions options;
  options.seed = config.master_seed ^ 0xd15c5ull;
  SCADDAR_ASSIGN_OR_RETURN(
      server->policy_,
      MakePolicyWithDisks(config.policy, script.physical_disks_at(0),
                          options));
  // Interleave object registrations with op replay so every object's
  // remap chain starts at its recorded epoch.
  for (Epoch j = 0; j <= script.num_ops(); ++j) {
    for (const ObjectRecord& record : records) {
      if (record.epoch != j) {
        continue;
      }
      SCADDAR_RETURN_IF_ERROR(server->catalog_.AddObject(
          record.id, record.num_blocks, record.weight));
      SCADDAR_RETURN_IF_ERROR(
          server->catalog_.SetGeneration(record.id, record.generation));
      SCADDAR_ASSIGN_OR_RETURN(std::vector<uint64_t> x0,
                               server->catalog_.MaterializeX0(record.id));
      SCADDAR_RETURN_IF_ERROR(
          server->policy_->AddObject(record.id, std::move(x0)));
    }
    if (j < script.num_ops()) {
      SCADDAR_RETURN_IF_ERROR(server->policy_->ApplyOp(script.op(j + 1)));
    }
  }
  SCADDAR_RETURN_IF_ERROR(server->SyncDisks());
  if (config.storage_backend != "sim") {
    SCADDAR_RETURN_IF_ERROR(server->SelectBackend(config.storage_backend,
                                                  config.io_queue_depth));
  }
  // Materialize the store from AF() — valid because the snapshot was
  // taken with an idle migration (store == placement).
  std::vector<PhysicalDiskId> locations;
  for (const ObjectId id : server->catalog_.object_ids()) {
    server->policy_->LocateAllBlocks(id, locations);
    SCADDAR_RETURN_IF_ERROR(server->store_.PlaceObject(id, locations));
  }
  if (config.journal_migration) {
    server->migration_.AttachJournal(&server->journal_);
  }
  return server;
}

StatusOr<JournalRecoveryStats> CmServer::SimulateCrashRestart() {
  // Volatile state dies with the process: the migration queue, the active
  // streams and this round's budgets.
  migration_.Reset();
  streams_.clear();
  streams_per_object_.clear();
  // The engine crashes first: queued-but-unsubmitted staged copies vanish
  // (their bytes never reached the medium), the slot layout round-trips
  // through its serialized form, and every disk reopens through the
  // backend. Recovery below then validates each journaled staged image
  // before trusting it — this is where torn copies are caught.
  if (io_engine_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_engine_->SimulateCrashRestart());
  }
  // The journal is the durable WAL a real server would fsync: round-trip it
  // through its text form so recovery provably runs off the serialized
  // bytes alone.
  SCADDAR_ASSIGN_OR_RETURN(journal_,
                           MoveJournal::Deserialize(journal_.Serialize()));
  SCADDAR_ASSIGN_OR_RETURN(const JournalRecoveryStats stats,
                           journal_.Recover(store_));
  journal_.Compact();
  // Recompute the retiring set from durable state: a disk still holding
  // blocks but absent from the placement live set is mid-drain.
  retiring_.clear();
  const std::vector<PhysicalDiskId>& live = policy_->log().physical_disks();
  for (const auto& [disk, count] : store_.per_disk_counts()) {
    if (count > 0 &&
        std::find(live.begin(), live.end(), disk) == live.end()) {
      retiring_.push_back(disk);
    }
  }
  std::sort(retiring_.begin(), retiring_.end());
  SCADDAR_RETURN_IF_ERROR(SyncDisks());
  // Re-seed the migration queue: the divergence scan re-discovers every
  // block AF() wants elsewhere, including moves whose journal intents were
  // discarded — idempotent re-execution instead of replaying stale plans.
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return stats;
}

Status CmServer::VerifyIntegrity() const {
  if (!migration_.idle()) {
    return FailedPreconditionError(
        "migration in progress; store may lag AF()");
  }
  return store_.VerifyAgainstPolicy(*policy_);
}

int64_t CmServer::PlacementBandwidth() const {
  int64_t total = 0;
  for (const PhysicalDiskId id : policy_->log().physical_disks()) {
    const StatusOr<const SimDisk*> disk = disks_.GetDisk(id);
    SCADDAR_CHECK(disk.ok());
    total += (*disk)->spec().bandwidth_blocks_per_round;
  }
  return total;
}

}  // namespace scaddar
