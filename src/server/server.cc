#include "server/server.h"

#include <algorithm>
#include <charconv>
#include <optional>
#include <thread>

#include "faults/injector.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/snapshot.h"
#include "stats/load_metrics.h"
#include "storage/block_io.h"

namespace scaddar {

namespace {

StatusOr<int64_t> ParseSnapshotInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in snapshot");
  }
  return value;
}

}  // namespace

CmServer::CmServer(const ServerConfig& config)
    : config_(config),
      catalog_(config.master_seed, config.prng_kind, config.bits),
      disks_(config.disk_spec),
      store_(&disks_),
      admission_(config.admission_utilization_cap),
      next_stream_id_(config.first_stream_id) {}

CmServer::~CmServer() = default;

StatusOr<std::unique_ptr<CmServer>> CmServer::Create(
    const ServerConfig& config) {
  if (config.initial_disks <= 0) {
    return InvalidArgumentError("server needs at least one disk");
  }
  if (config.bits < 1 || config.bits > 64) {
    return InvalidArgumentError("bits must be in [1, 64]");
  }
  std::unique_ptr<CmServer> server(new CmServer(config));
  SCADDAR_ASSIGN_OR_RETURN(server->reorg_, BuildReorgDriver(config));
  server->reorg_.set_enabled(config.auto_reorg);
  PolicyOptions options;
  options.seed = config.master_seed ^ 0xd15c5ull;
  SCADDAR_ASSIGN_OR_RETURN(
      server->policy_,
      MakePolicy(config.policy, config.initial_disks, options));
  SCADDAR_RETURN_IF_ERROR(server->SyncDisks());
  if (config.journal_migration) {
    server->migration_.AttachJournal(&server->journal_);
  }
  if (config.storage_backend != "sim") {
    SCADDAR_RETURN_IF_ERROR(server->SelectBackend(config.storage_backend,
                                                  config.io_queue_depth));
  }
  return server;
}

Status CmServer::SelectBackend(std::string_view spec, int queue_depth) {
  if (store_.total_blocks() > 0 || store_.staged_blocks() > 0) {
    return FailedPreconditionError(
        "backend can only change while the store is empty");
  }
  if (spec != "sim" && checkpoint_ != nullptr) {
    return FailedPreconditionError(
        "checkpointing covers the simulated tier; detach the checkpoint "
        "manager before selecting a real backend");
  }
  if (spec == "sim") {
    store_.AttachIoEngine(nullptr);
    migration_.AttachIoEngine(nullptr);
    scheduler_.set_io_engine(nullptr);
    if (sharded_scheduler_ != nullptr) {
      sharded_scheduler_->set_io_engine(nullptr);
    }
    io_engine_.reset();
    config_.storage_backend = "sim";
    return OkStatus();
  }
  BlockIoEngine::Options options;
  options.spec = std::string(spec);
  options.block_bytes = config_.io_block_bytes;
  options.queue_depth =
      queue_depth > 0 ? queue_depth : config_.io_queue_depth;
  options.content_seed = config_.master_seed ^ 0xb10cb17e5ull;
  SCADDAR_ASSIGN_OR_RETURN(io_engine_, BlockIoEngine::Create(options));
  // Route backend faults through the attached injector (looked up per op,
  // so AttachFaultInjector works in either order with backend selection).
  io_engine_->backend().set_fault_hook(
      [this](PhysicalDiskId disk, IoOp op) -> IoFault {
        (void)op;
        FaultInjector* const injector = disks_.fault_injector();
        if (injector == nullptr) {
          return IoFault::kNone;
        }
        const std::optional<BackendFaultKind> fault =
            injector->NextBackendFault(disk);
        if (!fault.has_value()) {
          return IoFault::kNone;
        }
        return *fault == BackendFaultKind::kEio ? IoFault::kEio
                                                : IoFault::kShort;
      });
  store_.AttachIoEngine(io_engine_.get());
  migration_.AttachIoEngine(io_engine_.get());
  scheduler_.set_io_engine(io_engine_.get());
  if (sharded_scheduler_ != nullptr) {
    sharded_scheduler_->set_io_engine(io_engine_.get());
  }
  // Real bytes only move under the WAL protocol: the two-phase round needs
  // journal ids to abort failed copies, and recovery needs the journal to
  // validate staged images.
  config_.storage_backend = std::string(spec);
  config_.io_queue_depth = options.queue_depth;
  config_.journal_migration = true;
  migration_.AttachJournal(&journal_);
  return OkStatus();
}

Status CmServer::SyncDisks() {
  std::vector<PhysicalDiskId> live = policy_->log().physical_disks();
  for (const PhysicalDiskId id : retiring_) {
    live.push_back(id);
  }
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  return disks_.SyncLiveSet(live);
}

Status CmServer::AddObject(ObjectId id, int64_t num_blocks,
                           int64_t bitrate_weight) {
  SCADDAR_RETURN_IF_ERROR(
      catalog_.AddObject(id, num_blocks, bitrate_weight));
  // Unwind the catalog if any later layer refuses, so a failed ingest
  // leaves no trace (e.g. bits wider than the generator supports).
  StatusOr<std::vector<uint64_t>> x0 = catalog_.MaterializeX0(id);
  if (!x0.ok()) {
    SCADDAR_CHECK(catalog_.RemoveObject(id).ok());
    return x0.status();
  }
  const Status registered = policy_->AddObject(id, std::move(x0).value());
  if (!registered.ok()) {
    SCADDAR_CHECK(catalog_.RemoveObject(id).ok());
    return registered;
  }
  // One batch pass resolves the whole initial placement.
  std::vector<PhysicalDiskId> locations;
  policy_->LocateAllBlocks(id, locations);
  const Status placed = store_.PlaceObject(id, locations);
  if (!placed.ok()) {
    SCADDAR_CHECK(policy_->RemoveObject(id).ok());
    SCADDAR_CHECK(catalog_.RemoveObject(id).ok());
    return placed;
  }
  return MetadataBarrier();
}

Status CmServer::RemoveObject(ObjectId id) {
  if (!catalog_.Contains(id)) {
    return NotFoundError("object not in catalog");
  }
  if (ActiveStreamsFor(id) > 0) {
    return FailedPreconditionError(
        "object has active streams; stop them first");
  }
  SCADDAR_RETURN_IF_ERROR(policy_->RemoveObject(id));
  SCADDAR_RETURN_IF_ERROR(store_.DropObject(id));
  SCADDAR_RETURN_IF_ERROR(catalog_.RemoveObject(id));
  return MetadataBarrier();
}

Status CmServer::ScaleAdd(int64_t count) {
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op, ScalingOp::Add(count));
  SCADDAR_RETURN_IF_ERROR(MaybeRebaseBeforeOp(op));
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  SCADDAR_RETURN_IF_ERROR(SyncDisks());
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return MetadataBarrier();
}

Status CmServer::ScaleRemove(std::vector<DiskSlot> slots) {
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op,
                           ScalingOp::Remove(std::move(slots)));
  // A rebase here is safe for the slot numbers below: the fresh policy's
  // epoch 0 addresses the same physical disks in the same order.
  SCADDAR_RETURN_IF_ERROR(MaybeRebaseBeforeOp(op));
  // Resolve the physical disks being retired *before* the op renumbers
  // slots; they keep serving until the migration drains them.
  const std::vector<PhysicalDiskId>& before =
      policy_->log().physical_disks();
  std::vector<PhysicalDiskId> retiring_now;
  for (const DiskSlot slot : op.removed_slots()) {
    if (slot >= static_cast<DiskSlot>(before.size())) {
      return InvalidArgumentError("removal names a slot beyond N_{j-1}");
    }
    retiring_now.push_back(before[static_cast<size_t>(slot)]);
  }
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  for (const PhysicalDiskId id : retiring_now) {
    retiring_.push_back(id);
  }
  SCADDAR_RETURN_IF_ERROR(SyncDisks());
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return MetadataBarrier();
}

bool CmServer::WouldExceedTolerance(const ScalingOp& op) const {
  return policy_->log().WouldExceedTolerance(op, catalog_.r0(),
                                             config_.tolerance_eps);
}

Status CmServer::FullRedistribution() {
  // 1. Fresh seeds for every object.
  for (const ObjectId id : catalog_.object_ids()) {
    SCADDAR_RETURN_IF_ERROR(catalog_.BumpGeneration(id));
  }
  // 2. Fresh placement over the current live disks (retiring disks are
  //    already draining and must not receive new placements).
  PolicyOptions options;
  options.seed = config_.master_seed ^ 0xd15c5ull ^
                 static_cast<uint64_t>(round_ + 1);
  SCADDAR_ASSIGN_OR_RETURN(
      std::unique_ptr<PlacementPolicy> fresh,
      MakePolicyWithDisks(config_.policy, policy_->log().physical_disks(),
                          options));
  for (const ObjectId id : catalog_.object_ids()) {
    SCADDAR_ASSIGN_OR_RETURN(std::vector<uint64_t> x0,
                             catalog_.MaterializeX0(id));
    SCADDAR_RETURN_IF_ERROR(fresh->AddObject(id, std::move(x0)));
  }
  policy_ = std::move(fresh);
  // 3. Converge materialized state onto the new placement, online.
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return MetadataBarrier();
}

StatusOr<int64_t> CmServer::StartStream(ObjectId object) {
  SCADDAR_ASSIGN_OR_RETURN(const CmObject meta, catalog_.GetObject(object));
  if (!admission_.Admit(ActiveLoad(), meta.bitrate_weight,
                        PlacementBandwidth())) {
    return ResourceExhaustedError("admission control rejected the stream");
  }
  const int64_t id = next_stream_id_++;
  streams_.emplace_back(id, object, meta.num_blocks, round_,
                        meta.bitrate_weight);
  ++streams_per_object_[object];
  return id;
}

int64_t CmServer::ActiveStreamsFor(ObjectId object) const {
  const auto it = streams_per_object_.find(object);
  return it == streams_per_object_.end() ? 0 : it->second;
}

std::vector<StreamHandoff> CmServer::DetachStreamsFor(ObjectId object) {
  std::vector<StreamHandoff> handoffs;
  for (const Stream& stream : streams_) {
    if (stream.object() != object || stream.finished()) {
      continue;
    }
    handoffs.push_back(StreamHandoff{object, stream.next_block(),
                                     stream.paused()});
  }
  const auto detached = std::remove_if(
      streams_.begin(), streams_.end(), [object](const Stream& stream) {
        return stream.object() == object;
      });
  if (detached != streams_.end()) {
    streams_.erase(detached, streams_.end());
    streams_per_object_.erase(object);
  }
  return handoffs;
}

ParallelPlanOptions CmServer::ReconcileOptions() const {
  ParallelPlanOptions options;
  options.num_threads = config_.reconcile_threads;
  return options;
}

int64_t CmServer::ActiveLoad() const {
  int64_t load = 0;
  for (const Stream& stream : streams_) {
    load += stream.rate();
  }
  return load;
}

RoundMetrics CmServer::Tick() {
  RoundMetrics metrics;
  metrics.round = round_;
  metrics.active_streams = active_streams();
  if (crashed()) {
    return metrics;  // Dead process until a restart path revives it.
  }
  if (FaultInjector* const injector = disks_.fault_injector()) {
    injector->BeginRound(round_);
  }

  std::unordered_map<PhysicalDiskId, int64_t> leftover;
  RoundServiceResult service;
  switch (config_.serving_path) {
    case ServingPath::kBatchCursor:
      service = scheduler_.RunBatched(streams_, *policy_, migration_, store_,
                                      disks_, &leftover);
      break;
    case ServingPath::kStoreScalar:
      service = scheduler_.Run(streams_, store_, disks_, &leftover);
      break;
    case ServingPath::kPolicyScalar:
      service = scheduler_.RunScalarLocate(streams_, *policy_, disks_,
                                           &leftover);
      break;
    case ServingPath::kShardedCursor: {
      if (sharded_scheduler_ == nullptr) {
        int shards = config_.serving_shards;
        if (shards <= 0) {
          shards = static_cast<int>(std::thread::hardware_concurrency());
        }
        sharded_scheduler_ = std::make_unique<ShardedScheduler>(
            std::max(shards, 1), config_.master_seed ^ 0x5aa2dull);
        sharded_scheduler_->set_io_engine(io_engine_.get());
      }
      service = sharded_scheduler_->Run(streams_, *policy_, migration_,
                                        store_, disks_, &leftover,
                                        ShardedRunOptions{},
                                        &last_sharded_round_);
      break;
    }
  }
  metrics.requests = service.requests;
  metrics.served = service.served;
  metrics.hiccups = service.hiccups;
  total_served_ += service.served;
  total_hiccups_ += service.hiccups;

  // Land the round's physical serve reads: one batched submission per disk,
  // verified against the canonical images as the completions drain.
  if (io_engine_ != nullptr) {
    SCADDAR_CHECK(io_engine_->FinishServeRound().ok());
  }

  if (config_.migration_extra_budget > 0) {
    for (auto& [id, budget] : leftover) {
      budget += config_.migration_extra_budget;
    }
  }
  metrics.migrated = migration_.RunRound(leftover, store_, disks_, *policy_);
  metrics.pending_migration = migration_.pending();
  if (migration_.crashed()) {
    return metrics;  // Died mid-round; the rest of the round never ran.
  }

  // Retire drained disks.
  if (!retiring_.empty()) {
    std::vector<PhysicalDiskId> still_draining;
    for (const PhysicalDiskId id : retiring_) {
      if (store_.CountOn(id) > 0) {
        still_draining.push_back(id);
      }
    }
    if (still_draining.size() != retiring_.size()) {
      retiring_ = std::move(still_draining);
      SCADDAR_CHECK(SyncDisks().ok());
    }
  }
  metrics.retiring_disks = static_cast<int64_t>(retiring_.size());

  // Startup-latency observation: a stream whose playback position first
  // leaves block 0 this round got its first delivery now. Pure bookkeeping
  // after the serving paths ran, so every path records identically.
  for (Stream& stream : streams_) {
    if (!stream.playback_started() && stream.next_block() > 0) {
      stream.MarkPlaybackStarted();
      startup_latencies_.push_back(round_ - stream.start_round());
    }
  }

  // Drop finished streams (refcounts first: remove_if leaves moved-from
  // values in the tail, so the objects must be read before compaction).
  for (const Stream& stream : streams_) {
    if (!stream.finished()) {
      continue;
    }
    const auto count = streams_per_object_.find(stream.object());
    SCADDAR_CHECK(count != streams_per_object_.end());
    if (--count->second == 0) {
      streams_per_object_.erase(count);
    }
  }
  const auto finished = std::remove_if(
      streams_.begin(), streams_.end(),
      [](const Stream& stream) { return stream.finished(); });
  completed_streams_ += streams_.end() - finished;
  streams_.erase(finished, streams_.end());

  ++round_;
  MaybeCheckpoint();
  // Adaptive driver check last, after the round is fully accounted and any
  // due checkpoint covers the pre-reorg state — a kill between the
  // checkpoint and the triggered reorg loses only the trigger, never a
  // committed move. The recorded round is the post-increment value, so a
  // twin server can replay the trigger by issuing a manual
  // FullRedistribution after the Tick whose round() matches.
  MaybeAutoReorgOnRound();
  return metrics;
}

StatusOr<AdaptiveReorgDriver> CmServer::BuildReorgDriver(
    const ServerConfig& config) {
  const int bits =
      config.governor_bits > 0 ? config.governor_bits : config.bits;
  const double eps =
      config.governor_eps > 0.0 ? config.governor_eps : config.tolerance_eps;
  return AdaptiveReorgDriver::Create(bits, eps, config.reorg_cov_threshold,
                                     config.reorg_check_every);
}

Status CmServer::ConfigureGovernor(int bits, double eps,
                                   double cov_threshold) {
  SCADDAR_ASSIGN_OR_RETURN(
      AdaptiveReorgDriver driver,
      AdaptiveReorgDriver::Create(bits, eps, cov_threshold,
                                  config_.reorg_check_every));
  driver.set_enabled(reorg_.enabled());
  driver.RestoreTriggers(reorg_.triggers());
  reorg_ = std::move(driver);
  config_.governor_bits = bits;
  config_.governor_eps = eps;
  config_.reorg_cov_threshold = cov_threshold;
  return OkStatus();
}

void CmServer::SetAutoReorg(bool enabled) {
  reorg_.set_enabled(enabled);
  config_.auto_reorg = enabled;
}

Status CmServer::MaybeRebaseBeforeOp(const ScalingOp& op) {
  if (!reorg_.WantsRebaseBeforeOp(policy_->log(), op)) {
    return OkStatus();
  }
  reorg_.RecordTrigger(round_, ReorgReason::kBudget,
                       reorg_.governor().BudgetConsumed(policy_->log()));
  return FullRedistribution();
}

void CmServer::MaybeAutoReorgOnRound() {
  if (!reorg_.enabled() || crashed()) {
    return;
  }
  // Budget overrun: possible when the governor was tightened (or turned on)
  // over an already-long op log. The rebase resets the log, so this cannot
  // re-fire next round.
  if (reorg_.BudgetExceeded(policy_->log())) {
    reorg_.RecordTrigger(round_, ReorgReason::kBudget,
                         reorg_.governor().BudgetConsumed(policy_->log()));
    const Status status = FullRedistribution();
    SCADDAR_CHECK(status.ok() || status.code() == StatusCode::kUnavailable);
    return;
  }
  if (!reorg_.CovCheckDue(round_)) {
    return;
  }
  // Only judge a settled layout: mid-migration or mid-drain counts reflect
  // a reorganization already underway (this is also what keeps a restarted
  // server from re-triggering a reorg it is resuming).
  if (!migration_.idle() || !retiring_.empty() || store_.total_blocks() <= 0) {
    return;
  }
  const std::unordered_map<PhysicalDiskId, int64_t>& per_disk =
      store_.per_disk_counts();
  std::vector<int64_t> counts;
  for (const PhysicalDiskId id : policy_->log().physical_disks()) {
    const auto it = per_disk.find(id);
    counts.push_back(it == per_disk.end() ? 0 : it->second);
  }
  if (counts.empty()) {
    return;
  }
  const LoadMetrics metrics = ComputeLoadMetrics(counts);
  if (!reorg_.CovExceeded(metrics.coefficient_of_variation)) {
    return;
  }
  reorg_.RecordTrigger(round_, ReorgReason::kCov,
                       metrics.coefficient_of_variation);
  const Status status = FullRedistribution();
  SCADDAR_CHECK(status.ok() || status.code() == StatusCode::kUnavailable);
}

Status CmServer::PauseStream(int64_t stream_id) {
  for (Stream& stream : streams_) {
    if (stream.id() == stream_id) {
      stream.Pause();
      return OkStatus();
    }
  }
  return NotFoundError("no active stream with that id");
}

Status CmServer::ResumeStream(int64_t stream_id) {
  for (Stream& stream : streams_) {
    if (stream.id() == stream_id) {
      stream.Resume();
      return OkStatus();
    }
  }
  return NotFoundError("no active stream with that id");
}

Status CmServer::SeekStream(int64_t stream_id, BlockIndex block) {
  for (Stream& stream : streams_) {
    if (stream.id() == stream_id) {
      stream.SeekTo(block);
      return OkStatus();
    }
  }
  return NotFoundError("no active stream with that id");
}

StatusOr<std::string> CmServer::SaveSnapshot() const {
  if (!migration_.idle()) {
    return FailedPreconditionError(
        "cannot snapshot while a migration is pending");
  }
  std::string out = "scaddar-snapshot-v1\n";
  out += "policy=";
  out += policy_->name();
  out += "\noplog=";
  out += policy_->log().Serialize();
  out += '\n';
  for (const ObjectId id : catalog_.object_ids()) {
    const CmObject object = catalog_.GetObject(id).value();
    out += "object=" + std::to_string(object.id) + ',' +
           std::to_string(object.num_blocks) + ',' +
           std::to_string(object.bitrate_weight) + ',' +
           std::to_string(object.seed_generation) + ',' +
           std::to_string(policy_->epoch_added(id)) + '\n';
  }
  return out;
}

StatusOr<std::unique_ptr<CmServer>> CmServer::Restore(
    const ServerConfig& config, std::string_view snapshot) {
  // --- Parse -----------------------------------------------------------
  struct ObjectRecord {
    ObjectId id;
    int64_t num_blocks;
    int64_t weight;
    int64_t generation;
    Epoch epoch;
  };
  std::string policy_name;
  std::string oplog_text;
  std::vector<ObjectRecord> records;
  bool header_seen = false;
  std::string_view rest = snapshot;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    const std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    if (line.empty()) {
      continue;
    }
    if (!header_seen) {
      if (line != "scaddar-snapshot-v1") {
        return InvalidArgumentError("unrecognized snapshot header");
      }
      header_seen = true;
      continue;
    }
    if (line.starts_with("policy=")) {
      policy_name = std::string(line.substr(7));
    } else if (line.starts_with("oplog=")) {
      oplog_text = std::string(line.substr(6));
    } else if (line.starts_with("object=")) {
      std::string_view body = line.substr(7);
      int64_t fields[5];
      for (int f = 0; f < 5; ++f) {
        const size_t comma = body.find(',');
        if ((f < 4) == (comma == std::string_view::npos)) {
          return InvalidArgumentError("malformed object record");
        }
        SCADDAR_ASSIGN_OR_RETURN(fields[f],
                                 ParseSnapshotInt(body.substr(0, comma)));
        body = comma == std::string_view::npos ? std::string_view()
                                               : body.substr(comma + 1);
      }
      records.push_back(ObjectRecord{fields[0], fields[1], fields[2],
                                     fields[3], fields[4]});
    } else {
      return InvalidArgumentError("unrecognized snapshot line");
    }
  }
  if (!header_seen || policy_name.empty() || oplog_text.empty()) {
    return InvalidArgumentError("incomplete snapshot");
  }
  if (policy_name != config.policy) {
    return InvalidArgumentError("snapshot policy differs from config");
  }
  if (policy_name != "scaddar" && policy_name != "naive" &&
      policy_name != "mod" && policy_name != "roundrobin") {
    return UnimplementedError(
        "only deterministic policies can be restored from metadata");
  }
  SCADDAR_ASSIGN_OR_RETURN(const OpLog script,
                           OpLog::Deserialize(oplog_text));
  for (const ObjectRecord& record : records) {
    if (record.epoch < 0 || record.epoch > script.num_ops()) {
      return InvalidArgumentError(
          "object registration epoch outside the op log");
    }
  }

  // --- Rebuild ---------------------------------------------------------
  std::unique_ptr<CmServer> server(new CmServer(config));
  PolicyOptions options;
  options.seed = config.master_seed ^ 0xd15c5ull;
  SCADDAR_ASSIGN_OR_RETURN(
      server->policy_,
      MakePolicyWithDisks(config.policy, script.physical_disks_at(0),
                          options));
  // Interleave object registrations with op replay so every object's
  // remap chain starts at its recorded epoch.
  for (Epoch j = 0; j <= script.num_ops(); ++j) {
    for (const ObjectRecord& record : records) {
      if (record.epoch != j) {
        continue;
      }
      SCADDAR_RETURN_IF_ERROR(server->catalog_.AddObject(
          record.id, record.num_blocks, record.weight));
      SCADDAR_RETURN_IF_ERROR(
          server->catalog_.SetGeneration(record.id, record.generation));
      SCADDAR_ASSIGN_OR_RETURN(std::vector<uint64_t> x0,
                               server->catalog_.MaterializeX0(record.id));
      SCADDAR_RETURN_IF_ERROR(
          server->policy_->AddObject(record.id, std::move(x0)));
    }
    if (j < script.num_ops()) {
      SCADDAR_RETURN_IF_ERROR(server->policy_->ApplyOp(script.op(j + 1)));
    }
  }
  SCADDAR_RETURN_IF_ERROR(server->SyncDisks());
  if (config.storage_backend != "sim") {
    SCADDAR_RETURN_IF_ERROR(server->SelectBackend(config.storage_backend,
                                                  config.io_queue_depth));
  }
  // Materialize the store from AF() — valid because the snapshot was
  // taken with an idle migration (store == placement).
  std::vector<PhysicalDiskId> locations;
  for (const ObjectId id : server->catalog_.object_ids()) {
    server->policy_->LocateAllBlocks(id, locations);
    SCADDAR_RETURN_IF_ERROR(server->store_.PlaceObject(id, locations));
  }
  if (config.journal_migration) {
    server->migration_.AttachJournal(&server->journal_);
  }
  return server;
}

StatusOr<JournalRecoveryStats> CmServer::SimulateCrashRestart() {
  // Volatile state dies with the process: the migration queue, the active
  // streams and this round's budgets.
  migration_.Reset();
  snapshot_crashed_ = false;
  streams_.clear();
  streams_per_object_.clear();
  // The engine crashes first: queued-but-unsubmitted staged copies vanish
  // (their bytes never reached the medium), the slot layout round-trips
  // through its serialized form, and every disk reopens through the
  // backend. Recovery below then validates each journaled staged image
  // before trusting it — this is where torn copies are caught.
  if (io_engine_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_engine_->SimulateCrashRestart());
  }
  // The journal is the durable WAL a real server would fsync: round-trip it
  // through its text form so recovery provably runs off the serialized
  // bytes alone.
  SCADDAR_ASSIGN_OR_RETURN(journal_,
                           MoveJournal::Deserialize(journal_.Serialize()));
  SCADDAR_ASSIGN_OR_RETURN(const JournalRecoveryStats stats,
                           journal_.Recover(store_));
  journal_.Compact();
  // Recompute the retiring set from durable state: a disk still holding
  // blocks but absent from the placement live set is mid-drain.
  retiring_.clear();
  const std::vector<PhysicalDiskId>& live = policy_->log().physical_disks();
  for (const auto& [disk, count] : store_.per_disk_counts()) {
    if (count > 0 &&
        std::find(live.begin(), live.end(), disk) == live.end()) {
      retiring_.push_back(disk);
    }
  }
  std::sort(retiring_.begin(), retiring_.end());
  SCADDAR_RETURN_IF_ERROR(SyncDisks());
  // Re-seed the migration queue: the divergence scan re-discovers every
  // block AF() wants elsewhere, including moves whose journal intents were
  // discarded — idempotent re-execution instead of replaying stale plans.
  migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  return stats;
}

Status CmServer::AttachCheckpointManager(CheckpointManager* manager) {
  if (manager == nullptr) {
    checkpoint_ = nullptr;
    return OkStatus();
  }
  if (io_engine_ != nullptr) {
    return FailedPreconditionError(
        "checkpointing covers the simulated tier; the real-I/O engine "
        "persists its own layout and journal");
  }
  checkpoint_ = manager;
  // Checkpoint restart replays the WAL over snapshot rows; every move must
  // journal or committed placements could be lost.
  config_.journal_migration = true;
  migration_.AttachJournal(&journal_);
  return OkStatus();
}

Status CmServer::EnableCheckpoints(CheckpointManager* manager, int64_t every,
                                   int64_t level2_every) {
  if (manager == nullptr || every <= 0 || level2_every < 0) {
    return InvalidArgumentError(
        "checkpointing needs a manager and a positive interval");
  }
  SCADDAR_RETURN_IF_ERROR(AttachCheckpointManager(manager));
  config_.checkpoint_every = every;
  config_.checkpoint_level2_every = level2_every;
  // Bootstrap set: a restart is possible before the first interval elapses.
  return WriteCheckpoint(level2_every > 0 ? 2 : 1);
}

ServerSnapshot CmServer::CaptureState() const {
  ServerSnapshot snapshot;
  snapshot.policy = std::string(policy_->name());
  snapshot.oplog = policy_->log().Serialize();
  snapshot.journal = journal_.Serialize();
  for (const ObjectId id : catalog_.object_ids()) {
    const CmObject object = catalog_.GetObject(id).value();
    SnapshotObject record;
    record.id = object.id;
    record.num_blocks = object.num_blocks;
    record.weight = object.bitrate_weight;
    record.generation = object.seed_generation;
    record.epoch_added = policy_->epoch_added(id);
    const std::span<const PhysicalDiskId> row =
        store_.LocationsOf(id).value();
    record.row.assign(row.begin(), row.end());
    snapshot.objects.push_back(std::move(record));
  }
  snapshot.staged = store_.StagedCopies();
  for (const Stream& stream : streams_) {
    snapshot.streams.push_back(SnapshotStream{
        stream.id(), stream.object(), stream.next_block(), stream.rate(),
        stream.start_round(), stream.hiccups(), stream.paused(),
        stream.playback_started()});
  }
  snapshot.startup_latencies = startup_latencies_;
  snapshot.round = round_;
  snapshot.next_stream_id = next_stream_id_;
  snapshot.completed_streams = completed_streams_;
  snapshot.total_served = total_served_;
  snapshot.total_hiccups = total_hiccups_;
  // Quiescent capture: nothing pending, staged or draining means the rows
  // above provably equal AF() — restore can skip the divergence rescan.
  snapshot.converged =
      migration_.idle() && snapshot.staged.empty() && retiring_.empty();
  snapshot.governor_bits = reorg_.governor().bits();
  snapshot.governor_eps = reorg_.governor().eps();
  snapshot.reorg_cov_threshold = reorg_.cov_threshold();
  snapshot.reorg_check_every = reorg_.check_every();
  snapshot.auto_reorg = reorg_.enabled();
  snapshot.reorg_triggers = reorg_.triggers();
  return snapshot;
}

Status CmServer::WriteCheckpoint(int level) {
  if (checkpoint_ == nullptr) {
    return FailedPreconditionError("no checkpoint manager attached");
  }
  const std::string document = EncodeServerSnapshot(CaptureState());
  const StatusOr<CheckpointSetInfo> written =
      checkpoint_->Write(document, level, round_, disks_.fault_injector());
  if (!written.ok()) {
    if (written.status().code() == StatusCode::kUnavailable) {
      snapshot_crashed_ = true;  // Injected kill mid-write: process is dead.
    }
    return written.status();
  }
  // The set covers every committed move; the journal's committed prefix is
  // dead weight from here on (this is what keeps restart-from-checkpoint
  // cheaper than full replay: the retained journal suffix stays short).
  journal_.Compact();
  return OkStatus();
}

Status CmServer::MetadataBarrier() {
  if (checkpoint_ == nullptr) {
    return OkStatus();
  }
  // Metadata mutations bypass the move journal, so the mutation is durable
  // only once a set covers it. A kill inside the barrier correctly loses
  // the mutation — the caller sees Unavailable, and restart rewinds to the
  // state before it.
  return WriteCheckpoint(1);
}

void CmServer::MaybeCheckpoint() {
  if (checkpoint_ == nullptr || config_.checkpoint_every <= 0) {
    return;
  }
  int level = 0;
  if (config_.checkpoint_level2_every > 0 &&
      round_ % config_.checkpoint_level2_every == 0) {
    level = 2;
  } else if (round_ % config_.checkpoint_every == 0) {
    level = 1;
  }
  if (level == 0) {
    return;
  }
  const Status status = WriteCheckpoint(level);
  // Unavailable = injected snapshot kill; the server is now crashed and the
  // chaos harness restarts it. Anything else is a programmer error.
  SCADDAR_CHECK(status.ok() || status.code() == StatusCode::kUnavailable);
}

Status CmServer::LoadFromState(const ServerSnapshot& snapshot,
                               std::string_view live_journal,
                               CheckpointRestoreStats* stats) {
  if (config_.storage_backend != "sim") {
    return FailedPreconditionError(
        "checkpoint restore covers the simulated tier only");
  }
  if (snapshot.policy != config_.policy) {
    return InvalidArgumentError("snapshot policy differs from config");
  }
  if (snapshot.policy != "scaddar" && snapshot.policy != "naive" &&
      snapshot.policy != "mod" && snapshot.policy != "roundrobin") {
    return UnimplementedError(
        "only deterministic policies can be restored from a checkpoint");
  }
  SCADDAR_ASSIGN_OR_RETURN(const OpLog script,
                           OpLog::Deserialize(snapshot.oplog));
  for (const SnapshotObject& record : snapshot.objects) {
    if (record.epoch_added < 0 || record.epoch_added > script.num_ops()) {
      return InvalidArgumentError(
          "object registration epoch outside the op log");
    }
    if (static_cast<int64_t>(record.row.size()) != record.num_blocks) {
      return InvalidArgumentError("snapshot row length != object size");
    }
  }

  // Policy + catalog: registrations interleaved with op replay, exactly as
  // `Restore` — the policy must say where blocks *should* be so the
  // reconciliation scan below can finish any interrupted reorganization.
  PolicyOptions options;
  options.seed = config_.master_seed ^ 0xd15c5ull;
  SCADDAR_ASSIGN_OR_RETURN(
      policy_, MakePolicyWithDisks(config_.policy,
                                   script.physical_disks_at(0), options));
  for (Epoch j = 0; j <= script.num_ops(); ++j) {
    for (const SnapshotObject& record : snapshot.objects) {
      if (record.epoch_added != j) {
        continue;
      }
      SCADDAR_RETURN_IF_ERROR(
          catalog_.AddObject(record.id, record.num_blocks, record.weight));
      SCADDAR_RETURN_IF_ERROR(
          catalog_.SetGeneration(record.id, record.generation));
      SCADDAR_ASSIGN_OR_RETURN(std::vector<uint64_t> x0,
                               catalog_.MaterializeX0(record.id));
      SCADDAR_RETURN_IF_ERROR(policy_->AddObject(record.id, std::move(x0)));
    }
    if (j < script.num_ops()) {
      SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(script.op(j + 1)));
    }
  }

  // The surviving WAL, not the snapshot's embedded copy, is authoritative
  // for everything that moved after the capture.
  SCADDAR_ASSIGN_OR_RETURN(journal_, MoveJournal::Deserialize(live_journal));
  // An empty WAL on top of a quiescent capture proves no move finished, and
  // none was in flight, after the rows were taken.
  const bool quiescent = snapshot.converged && snapshot.staged.empty() &&
                         journal_.entries().empty();

  // Every disk the rows, stages or journal reference must exist before
  // placement — disks absent from the placement live set are mid-drain.
  // Membership goes through a dense bitmap: the scan visits one entry per
  // block, so sorting the reference union would dominate large restores.
  const std::vector<PhysicalDiskId>& live = policy_->log().physical_disks();
  PhysicalDiskId max_live = -1;
  for (const PhysicalDiskId disk : live) {
    max_live = std::max(max_live, disk);
  }
  std::vector<char> is_live(static_cast<size_t>(max_live + 1), 0);
  for (const PhysicalDiskId disk : live) {
    is_live[static_cast<size_t>(disk)] = 1;
  }
  std::vector<PhysicalDiskId> missing;
  const auto note_missing = [&](PhysicalDiskId disk) {
    if (disk < 0 || disk > max_live || !is_live[static_cast<size_t>(disk)]) {
      missing.push_back(disk);
    }
  };
  for (const SnapshotObject& record : snapshot.objects) {
    for (const PhysicalDiskId disk : record.row) {
      note_missing(disk);
    }
  }
  for (const auto& [ref, disk] : snapshot.staged) {
    note_missing(disk);
  }
  for (const JournalEntry& entry : journal_.entries()) {
    note_missing(entry.from);
    note_missing(entry.to);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  retiring_.insert(retiring_.end(), missing.begin(), missing.end());
  SCADDAR_RETURN_IF_ERROR(SyncDisks());

  // Materialize rows *directly* from the snapshot — no per-block remap
  // chain walk. This is the restart-speed win over `Restore`, and the only
  // correct source mid-migration (the policy's AF() may disagree with
  // where blocks physically were).
  for (const SnapshotObject& record : snapshot.objects) {
    SCADDAR_RETURN_IF_ERROR(store_.PlaceObject(record.id, record.row));
  }
  for (const auto& [ref, disk] : snapshot.staged) {
    SCADDAR_RETURN_IF_ERROR(store_.StageCopy(ref, disk));
  }

  // Journal-wins reconciliation, pass 1: entries that *finished* after the
  // capture describe state newer than the snapshot rows. Replaying them in
  // log order re-applies every committed move (nothing committed is ever
  // lost) and re-creates durable stages the snapshot predates.
  for (const JournalEntry& entry : journal_.entries()) {
    const StatusOr<PhysicalDiskId> location = store_.LocationOf(entry.block);
    if (!location.ok()) {
      continue;  // Object dropped after this entry; nothing to re-apply.
    }
    if (entry.phase == JournalPhase::kCommitted) {
      if (*location == entry.to) {
        continue;  // Already reflected in the snapshot rows.
      }
      if (*location != entry.from) {
        return InternalError(
            "checkpoint replay: committed move from an unexpected disk");
      }
      const StatusOr<PhysicalDiskId> staged =
          store_.StagedTarget(entry.block);
      if (staged.ok() && *staged == entry.to) {
        SCADDAR_RETURN_IF_ERROR(
            store_.CommitStagedMove(entry.block, entry.from, entry.to));
      } else {
        BlockMove move;
        move.block = entry.block;
        move.from_physical = entry.from;
        move.to_physical = entry.to;
        SCADDAR_RETURN_IF_ERROR(store_.ApplyMove(move));
      }
      if (stats != nullptr) {
        ++stats->committed_replayed;
      }
    } else if (entry.phase == JournalPhase::kCopied) {
      // The copied record proves durable staged bytes; re-create the stage
      // if the snapshot predates it so `Recover` can roll it forward.
      const StatusOr<PhysicalDiskId> staged =
          store_.StagedTarget(entry.block);
      if (*location == entry.from && !staged.ok()) {
        SCADDAR_RETURN_IF_ERROR(store_.StageCopy(entry.block, entry.to));
      }
    } else if (entry.phase == JournalPhase::kAborted) {
      // Abort landed after the capture: release the captured stage.
      const StatusOr<PhysicalDiskId> staged =
          store_.StagedTarget(entry.block);
      if (staged.ok() && *staged == entry.to) {
        SCADDAR_RETURN_IF_ERROR(store_.AbortStagedCopy(entry.block));
      }
    }
  }
  // Pass 2: the standard crash protocol resolves what was *in flight* —
  // intents discard, validated copies roll forward, orphan stages release.
  SCADDAR_ASSIGN_OR_RETURN(const JournalRecoveryStats journal_stats,
                           journal_.Recover(store_));
  journal_.Compact();
  if (stats != nullptr) {
    stats->journal = journal_stats;
  }

  // Re-derive the retiring set from what actually holds blocks now (a disk
  // fully drained between capture and kill retires here).
  retiring_.clear();
  for (const auto& [disk, count] : store_.per_disk_counts()) {
    if (count > 0 &&
        std::find(live.begin(), live.end(), disk) == live.end()) {
      retiring_.push_back(disk);
    }
  }
  std::sort(retiring_.begin(), retiring_.end());
  SCADDAR_RETURN_IF_ERROR(SyncDisks());

  // Streams resume at their saved positions; serving counters carry over so
  // metric continuity is assertable across the restart.
  for (const SnapshotStream& record : snapshot.streams) {
    SCADDAR_ASSIGN_OR_RETURN(const CmObject meta,
                             catalog_.GetObject(record.object));
    streams_.emplace_back(record.id, record.object, meta.num_blocks,
                          record.start_round, record.rate);
    streams_.back().RestoreProgress(record.next_block, record.hiccups,
                                    record.paused, record.playback_started);
    ++streams_per_object_[record.object];
  }
  startup_latencies_ = snapshot.startup_latencies;
  round_ = snapshot.round;
  next_stream_id_ = snapshot.next_stream_id;
  completed_streams_ = snapshot.completed_streams;
  total_served_ = snapshot.total_served;
  total_hiccups_ = snapshot.total_hiccups;

  // The adaptive driver — governor parameters, enablement and trigger
  // history — is part of the durable state: a kill-restart must *resume* a
  // pending reorganization (the reconciliation below) without re-counting
  // it as a new trigger. Pre-driver documents (bits == 0) keep the
  // config-built driver.
  if (snapshot.governor_bits > 0) {
    SCADDAR_ASSIGN_OR_RETURN(
        reorg_, AdaptiveReorgDriver::Create(
                    snapshot.governor_bits, snapshot.governor_eps,
                    snapshot.reorg_cov_threshold, snapshot.reorg_check_every));
    reorg_.set_enabled(snapshot.auto_reorg);
    reorg_.RestoreTriggers(snapshot.reorg_triggers);
    config_.governor_bits = snapshot.governor_bits;
    config_.governor_eps = snapshot.governor_eps;
    config_.reorg_cov_threshold = snapshot.reorg_cov_threshold;
    config_.reorg_check_every = snapshot.reorg_check_every;
    config_.auto_reorg = snapshot.auto_reorg;
  }
  if (stats != nullptr) {
    stats->streams_restored = static_cast<int64_t>(streams_.size());
  }

  if (config_.journal_migration) {
    migration_.AttachJournal(&journal_);
  }
  // Any reorganization the kill interrupted resumes here: the divergence
  // scan re-discovers every block AF() wants elsewhere. A quiescent capture
  // with an empty WAL skips it — the rows landed exactly where AF() wants
  // them, and rescanning every block would cost what replay costs. This is
  // the common case that keeps checkpoint restart cheaper than replay.
  if (!quiescent || !retiring_.empty()) {
    migration_.EnqueueReconciliation(store_, *policy_, ReconcileOptions());
  }
  return OkStatus();
}

StatusOr<CheckpointRestoreStats> CmServer::KillRestartFromCheckpoint() {
  if (checkpoint_ == nullptr) {
    return FailedPreconditionError("no checkpoint manager attached");
  }
  // What survives the kill: the checkpoint locations (inside the manager)
  // and the journal's serialized WAL. Everything else dies below.
  const std::string live_journal = journal_.Serialize();
  SCADDAR_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                           checkpoint_->LoadNewestValid());
  SCADDAR_ASSIGN_OR_RETURN(const ServerSnapshot snapshot,
                           DecodeServerSnapshot(loaded.payload));

  // Rebuild in place from empty — the same members a fresh server starts
  // with, minus the attachments that survive (injector, manager).
  FaultInjector* const injector = disks_.fault_injector();
  catalog_ = Catalog(config_.master_seed, config_.prng_kind, config_.bits);
  policy_.reset();
  disks_ = DiskArray(config_.disk_spec);
  disks_.set_fault_injector(injector);
  store_ = BlockStore(&disks_);
  journal_ = MoveJournal();
  migration_.Reset();
  migration_.AttachJournal(&journal_);
  SCADDAR_ASSIGN_OR_RETURN(reorg_, BuildReorgDriver(config_));
  reorg_.set_enabled(config_.auto_reorg);
  sharded_scheduler_.reset();
  last_sharded_round_ = ShardedRoundStats{};
  streams_.clear();
  streams_per_object_.clear();
  retiring_.clear();
  startup_latencies_.clear();
  round_ = 0;
  next_stream_id_ = config_.first_stream_id;
  completed_streams_ = 0;
  total_hiccups_ = 0;
  total_served_ = 0;
  snapshot_crashed_ = false;

  CheckpointRestoreStats stats;
  stats.set_id = loaded.info.id;
  stats.level = loaded.info.level;
  stats.snapshot_round = loaded.info.round;
  stats.sets_rejected = loaded.sets_rejected;
  stats.rebuilt_from_parity = loaded.rebuilt_from_parity;
  SCADDAR_RETURN_IF_ERROR(LoadFromState(snapshot, live_journal, &stats));
  return stats;
}

StatusOr<std::unique_ptr<CmServer>> CmServer::FromSnapshotDocument(
    const ServerConfig& config, std::string_view document,
    CheckpointRestoreStats* stats) {
  SCADDAR_ASSIGN_OR_RETURN(const ServerSnapshot snapshot,
                           DecodeServerSnapshot(document));
  std::unique_ptr<CmServer> server(new CmServer(config));
  // The embedded journal is the WAL here: a cold restore has no newer text.
  SCADDAR_RETURN_IF_ERROR(
      server->LoadFromState(snapshot, snapshot.journal, stats));
  return server;
}

StatusOr<std::unique_ptr<CmServer>> CmServer::RestoreFromCheckpoint(
    const ServerConfig& config, CheckpointManager& manager,
    CheckpointRestoreStats* stats) {
  SCADDAR_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                           manager.LoadNewestValid());
  CheckpointRestoreStats local;
  CheckpointRestoreStats* const out = stats != nullptr ? stats : &local;
  out->set_id = loaded.info.id;
  out->level = loaded.info.level;
  out->snapshot_round = loaded.info.round;
  out->sets_rejected = loaded.sets_rejected;
  out->rebuilt_from_parity = loaded.rebuilt_from_parity;
  SCADDAR_ASSIGN_OR_RETURN(std::unique_ptr<CmServer> server,
                           FromSnapshotDocument(config, loaded.payload, out));
  // The manager stays attached: checkpointing continues across restarts.
  SCADDAR_RETURN_IF_ERROR(server->AttachCheckpointManager(&manager));
  return server;
}

Status CmServer::VerifyIntegrity() const {
  if (!migration_.idle()) {
    return FailedPreconditionError(
        "migration in progress; store may lag AF()");
  }
  return store_.VerifyAgainstPolicy(*policy_);
}

int64_t CmServer::PlacementBandwidth() const {
  int64_t total = 0;
  for (const PhysicalDiskId id : policy_->log().physical_disks()) {
    const StatusOr<const SimDisk*> disk = disks_.GetDisk(id);
    SCADDAR_CHECK(disk.ok());
    total += (*disk)->spec().bandwidth_blocks_per_round;
  }
  return total;
}

}  // namespace scaddar
