#include "server/scenario.h"

#include <memory>
#include <vector>

#include "recovery/checkpoint_manager.h"
#include "server/scenario_parse.h"
#include "server/workload/traffic_engine.h"
#include "stats/percentile.h"

namespace scaddar {

using scenario::LineError;
using scenario::ParseDouble;
using scenario::ParseInt;
using scenario::ParseSlotList;
using scenario::Tokenize;

StatusOr<ScenarioResult> RunScenario(CmServer& server,
                                     std::string_view script) {
  ScenarioResult result;
  int64_t line_number = 0;
  // Traffic-engine state: settings accumulate into `traffic_config`; the
  // engine itself is (re)built lazily by `ticktraffic`, over the catalog's
  // objects in registration order.
  TrafficConfig traffic_config;
  std::unique_ptr<TrafficEngine> traffic;
  // Checkpoint manager created by the `checkpoint` command. It lives in
  // this scope, so the guard detaches it from the server on every exit
  // path (success or line error) — the server must not keep a dangling
  // pointer once the scenario run ends.
  std::unique_ptr<CheckpointManager> checkpoint;
  // `governor` is a declaration, not a runtime action: one per scenario,
  // so a script's ε semantics cannot silently change partway through.
  bool governor_declared = false;
  struct DetachGuard {
    CmServer& server;
    ~DetachGuard() {
      SCADDAR_CHECK(server.AttachCheckpointManager(nullptr).ok());
    }
  } detach_guard{server};
  std::string_view rest = script;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    ++result.lines_executed;
    const std::string_view command = tokens[0];

    const auto tick_once = [&] {
      const RoundMetrics metrics = server.Tick();
      ++result.rounds;
      result.served += metrics.served;
      result.hiccups += metrics.hiccups;
      result.migrated += metrics.migrated;
    };

    if (command == "addobject" && (tokens.size() == 3 || tokens.size() == 4)) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t blocks, ParseInt(tokens[2]));
      int64_t weight = 1;
      if (tokens.size() == 4) {
        SCADDAR_ASSIGN_OR_RETURN(weight, ParseInt(tokens[3]));
      }
      const Status status = server.AddObject(id, blocks, weight);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "removeobject" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      const Status status = server.RemoveObject(id);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "stream" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t object, ParseInt(tokens[1]));
      const StatusOr<int64_t> id = server.StartStream(object);
      if (id.ok()) {
        ++result.streams_started;
      } else if (id.status().code() == StatusCode::kResourceExhausted) {
        ++result.streams_rejected;
      } else {
        return LineError(line_number, id.status().message());
      }
    } else if (command == "pause" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      const Status status = server.PauseStream(id);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "resume" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      const Status status = server.ResumeStream(id);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "seek" && tokens.size() == 3) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t block, ParseInt(tokens[2]));
      const Status status = server.SeekStream(id, block);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "scale" && tokens.size() == 3 &&
               tokens[1] == "add") {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t count, ParseInt(tokens[2]));
      const Status status = server.ScaleAdd(count);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "scale" && tokens.size() == 3 &&
               tokens[1] == "remove") {
      SCADDAR_ASSIGN_OR_RETURN(const std::vector<DiskSlot> slots,
                               ParseSlotList(tokens[2]));
      const Status status = server.ScaleRemove(slots);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "rebase" && tokens.size() == 1) {
      const Status status = server.FullRedistribution();
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "governor" &&
               (tokens.size() == 3 || tokens.size() == 4)) {
      if (governor_declared) {
        return LineError(line_number, "duplicate governor declaration");
      }
      SCADDAR_ASSIGN_OR_RETURN(const int64_t bits, ParseInt(tokens[1]));
      if (bits < 1 || bits > 64) {
        return LineError(line_number, "governor bits must be in [1, 64]");
      }
      SCADDAR_ASSIGN_OR_RETURN(const double eps, ParseDouble(tokens[2]));
      // Omitted CoV keeps whatever threshold the server already has.
      double cov = server.reorg_driver().cov_threshold();
      if (tokens.size() == 4) {
        SCADDAR_ASSIGN_OR_RETURN(cov, ParseDouble(tokens[3]));
      }
      const Status status =
          server.ConfigureGovernor(static_cast<int>(bits), eps, cov);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
      governor_declared = true;
    } else if (command == "autoreorg" && tokens.size() == 2) {
      if (tokens[1] == "on") {
        server.SetAutoReorg(true);
      } else if (tokens[1] == "off") {
        server.SetAutoReorg(false);
      } else {
        return LineError(line_number, "autoreorg takes on|off");
      }
    } else if (command == "tick" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t rounds, ParseInt(tokens[1]));
      if (rounds < 0) {
        return LineError(line_number, "tick count must be >= 0");
      }
      for (int64_t i = 0; i < rounds; ++i) {
        tick_once();
      }
    } else if (command == "drain" && tokens.size() == 1) {
      int64_t guard = 0;
      while (!server.migration().idle()) {
        tick_once();
        if (++guard > 1'000'000) {
          return LineError(line_number, "drain did not converge");
        }
      }
    } else if (command == "traffic" && tokens.size() >= 3) {
      const std::string_view key = tokens[1];
      // Any settings change invalidates the running engine; the next
      // `ticktraffic` rebuilds it (a fresh deterministic trace).
      traffic.reset();
      if (key == "seed" && tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(const int64_t seed, ParseInt(tokens[2]));
        traffic_config.seed = static_cast<uint64_t>(seed);
      } else if (key == "arrivals" && tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.arrivals_per_round,
                                 ParseDouble(tokens[2]));
      } else if (key == "zipf" && tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.zipf_theta,
                                 ParseDouble(tokens[2]));
      } else if (key == "diurnal" && tokens.size() == 4) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.diurnal_amplitude,
                                 ParseDouble(tokens[2]));
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.diurnal_period,
                                 ParseInt(tokens[3]));
      } else if (key == "vcr" && tokens.size() == 5) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.pause_probability,
                                 ParseDouble(tokens[2]));
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.resume_probability,
                                 ParseDouble(tokens[3]));
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.seek_probability,
                                 ParseDouble(tokens[4]));
      } else if (key == "flash" && tokens.size() == 6) {
        FlashCrowd crowd;
        SCADDAR_ASSIGN_OR_RETURN(crowd.start_round, ParseInt(tokens[2]));
        SCADDAR_ASSIGN_OR_RETURN(crowd.duration, ParseInt(tokens[3]));
        SCADDAR_ASSIGN_OR_RETURN(crowd.rank, ParseInt(tokens[4]));
        SCADDAR_ASSIGN_OR_RETURN(crowd.boost, ParseInt(tokens[5]));
        traffic_config.flash_crowds.push_back(crowd);
      } else {
        return LineError(line_number, "unrecognized traffic setting");
      }
    } else if (command == "ticktraffic" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t rounds, ParseInt(tokens[1]));
      if (rounds < 0) {
        return LineError(line_number, "ticktraffic count must be >= 0");
      }
      if (traffic == nullptr) {
        std::vector<ObjectId> objects = server.catalog().object_ids();
        if (objects.empty()) {
          return LineError(line_number,
                           "ticktraffic needs at least one object");
        }
        traffic = std::make_unique<TrafficEngine>(traffic_config);
        traffic->SetObjects(std::move(objects));
      }
      for (int64_t i = 0; i < rounds; ++i) {
        const RoundTraffic round_traffic =
            traffic->NextRound(server.round(), server.streams());
        for (const ObjectId object : round_traffic.arrivals) {
          const StatusOr<int64_t> id = server.StartStream(object);
          if (id.ok()) {
            ++result.streams_started;
          } else if (id.status().code() ==
                     StatusCode::kResourceExhausted) {
            ++result.streams_rejected;
          } else {
            return LineError(line_number, id.status().message());
          }
        }
        for (const int64_t id : round_traffic.pauses) {
          SCADDAR_CHECK(server.PauseStream(id).ok());
        }
        for (const int64_t id : round_traffic.resumes) {
          SCADDAR_CHECK(server.ResumeStream(id).ok());
        }
        for (const SeekEvent& seek : round_traffic.seeks) {
          SCADDAR_CHECK(server.SeekStream(seek.stream_id, seek.block).ok());
        }
        tick_once();
      }
    } else if (command == "backend" &&
               (tokens.size() == 2 || tokens.size() == 3)) {
      int64_t queue_depth = 0;
      if (tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(queue_depth, ParseInt(tokens[2]));
      }
      const Status status =
          server.SelectBackend(tokens[1], static_cast<int>(queue_depth));
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "crash" && tokens.size() == 1) {
      const StatusOr<JournalRecoveryStats> stats =
          server.SimulateCrashRestart();
      if (!stats.ok()) {
        return LineError(line_number, stats.status().message());
      }
      ++result.crashes;
    } else if (command == "checkpoint" && tokens.size() >= 2 &&
               tokens.size() <= 4) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t every, ParseInt(tokens[1]));
      int64_t level2_every = 0;
      if (tokens.size() >= 3) {
        SCADDAR_ASSIGN_OR_RETURN(level2_every, ParseInt(tokens[2]));
      }
      CheckpointOptions options;
      options.num_locations = server.config().checkpoint_locations;
      const std::string_view redundancy_token =
          tokens.size() == 4 ? tokens[3]
                             : std::string_view(
                                   server.config().checkpoint_redundancy);
      const StatusOr<CheckpointRedundancy> redundancy =
          ParseCheckpointRedundancy(redundancy_token);
      if (!redundancy.ok()) {
        return LineError(line_number, redundancy.status().message());
      }
      options.redundancy = *redundancy;
      checkpoint = std::make_unique<CheckpointManager>(options);
      const Status status =
          server.EnableCheckpoints(checkpoint.get(), every, level2_every);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "killrestart" && tokens.size() == 1) {
      const StatusOr<CheckpointRestoreStats> stats =
          server.KillRestartFromCheckpoint();
      if (!stats.ok()) {
        return LineError(line_number, stats.status().message());
      }
      ++result.crashes;
      ++result.kill_restarts;
    } else if (command == "verify" && tokens.size() == 1) {
      const Status status = server.VerifyIntegrity();
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else {
      return LineError(line_number, "unrecognized command");
    }
  }
  result.startup_p50 = PercentileOf(server.startup_latencies(), 0.50);
  result.startup_p99 = PercentileOf(server.startup_latencies(), 0.99);
  result.startup_p999 = PercentileOf(server.startup_latencies(), 0.999);
  result.auto_reorg_triggers =
      static_cast<int64_t>(server.reorg_triggers().size());
  return result;
}

}  // namespace scaddar
