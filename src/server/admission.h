#ifndef SCADDAR_SERVER_ADMISSION_H_
#define SCADDAR_SERVER_ADMISSION_H_

#include <cstdint>

namespace scaddar {

/// Bandwidth-based admission control: a stream consumes `rate` blocks per
/// round, so the server can commit at most `utilization_cap *
/// total_bandwidth` blocks/round of aggregate stream load (the headroom
/// absorbs load imbalance and reorganization traffic). Statistical rather
/// than deterministic admission is the price/benefit of random placement
/// (Section 2).
class AdmissionController {
 public:
  /// `utilization_cap` in (0, 1] (checked).
  explicit AdmissionController(double utilization_cap);

  /// Decides whether a stream of `stream_rate` blocks/round fits on top of
  /// the currently committed `active_load`; updates counters.
  bool Admit(int64_t active_load, int64_t stream_rate,
             int64_t total_bandwidth);

  /// The largest committed load (blocks/round) the controller allows.
  int64_t CapacityFor(int64_t total_bandwidth) const;

  int64_t admitted() const { return admitted_; }
  int64_t rejected() const { return rejected_; }
  double utilization_cap() const { return utilization_cap_; }

 private:
  double utilization_cap_;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_ADMISSION_H_
