#include "server/admission.h"

#include <cmath>

#include "util/status.h"

namespace scaddar {

AdmissionController::AdmissionController(double utilization_cap)
    : utilization_cap_(utilization_cap) {
  SCADDAR_CHECK(utilization_cap > 0.0 && utilization_cap <= 1.0);
}

int64_t AdmissionController::CapacityFor(int64_t total_bandwidth) const {
  return static_cast<int64_t>(
      std::floor(utilization_cap_ * static_cast<double>(total_bandwidth)));
}

bool AdmissionController::Admit(int64_t active_load, int64_t stream_rate,
                                int64_t total_bandwidth) {
  SCADDAR_CHECK(stream_rate >= 1);
  if (active_load + stream_rate <= CapacityFor(total_bandwidth)) {
    ++admitted_;
    return true;
  }
  ++rejected_;
  return false;
}

}  // namespace scaddar
