#include "server/workload/traffic_engine.h"

#include <cmath>
#include <utility>

#include "util/status.h"

namespace scaddar {

TrafficEngine::TrafficEngine(const TrafficConfig& config)
    : config_(config),
      prng_(MakePrng(PrngKind::kSplitMix64, config.seed)) {
  SCADDAR_CHECK(config.arrivals_per_round >= 0.0);
  SCADDAR_CHECK(config.zipf_theta >= 0.0);
  SCADDAR_CHECK(config.diurnal_amplitude >= 0.0 &&
                config.diurnal_amplitude < 1.0);
  if (config.diurnal_amplitude > 0.0) {
    SCADDAR_CHECK(config.diurnal_period > 0);
  }
  for (const FlashCrowd& crowd : config.flash_crowds) {
    SCADDAR_CHECK(crowd.duration >= 0 && crowd.boost >= 0 &&
                  crowd.rank >= 0);
  }
  SCADDAR_CHECK(config.pause_probability >= 0.0 &&
                config.pause_probability <= 1.0);
  SCADDAR_CHECK(config.resume_probability >= 0.0 &&
                config.resume_probability <= 1.0);
  SCADDAR_CHECK(config.seek_probability >= 0.0 &&
                config.seek_probability <= 1.0);
}

void TrafficEngine::SetObjects(std::vector<ObjectId> objects) {
  SCADDAR_CHECK(!objects.empty());
  objects_ = std::move(objects);
  popularity_ = std::make_unique<ZipfDistribution>(
      static_cast<int64_t>(objects_.size()), config_.zipf_theta);
}

double TrafficEngine::ModulatedArrivalMean(int64_t round) const {
  double mean = config_.arrivals_per_round;
  if (config_.diurnal_amplitude > 0.0) {
    constexpr double kTau = 6.283185307179586;
    mean *= 1.0 + config_.diurnal_amplitude *
                      std::sin(kTau * static_cast<double>(round) /
                               static_cast<double>(config_.diurnal_period));
  }
  return mean;
}

RoundTraffic TrafficEngine::NextRound(int64_t round,
                                      const std::vector<Stream>& active) {
  std::vector<const Stream*> view;
  view.reserve(active.size());
  for (const Stream& stream : active) {
    view.push_back(&stream);
  }
  return NextRound(round, view);
}

RoundTraffic TrafficEngine::NextRound(
    int64_t round, const std::vector<const Stream*>& active) {
  SCADDAR_CHECK(popularity_ != nullptr);
  RoundTraffic traffic;
  traffic.round = round;

  // Background arrivals: Poisson around the diurnally modulated mean,
  // objects drawn by Zipf rank.
  const int64_t background = PoissonSample(*prng_, ModulatedArrivalMean(round));
  traffic.arrivals.reserve(static_cast<size_t>(background));
  for (int64_t i = 0; i < background; ++i) {
    const int64_t rank = popularity_->Sample(*prng_);
    traffic.arrivals.push_back(objects_[static_cast<size_t>(rank)]);
  }

  // Flash crowds: a deterministic burst aimed at one rank. The *count* is
  // exact (the premiere starts on schedule whatever the dice say); only
  // which background clients it displaces is random.
  for (const FlashCrowd& crowd : config_.flash_crowds) {
    if (round < crowd.start_round || round >= crowd.start_round + crowd.duration) {
      continue;
    }
    const size_t rank = static_cast<size_t>(
        std::min(crowd.rank,
                 static_cast<int64_t>(objects_.size()) - 1));
    for (int64_t i = 0; i < crowd.boost; ++i) {
      traffic.arrivals.push_back(objects_[rank]);
    }
  }

  // VCR events, rolled per active stream in view order (deterministic).
  for (const Stream* stream : active) {
    if (stream->finished()) {
      continue;
    }
    if (stream->paused()) {
      if (Bernoulli(*prng_, config_.resume_probability)) {
        traffic.resumes.push_back(stream->id());
      }
      continue;
    }
    if (config_.pause_probability > 0.0 &&
        Bernoulli(*prng_, config_.pause_probability)) {
      traffic.pauses.push_back(stream->id());
      continue;
    }
    if (config_.seek_probability > 0.0 &&
        Bernoulli(*prng_, config_.seek_probability)) {
      traffic.seeks.push_back(SeekEvent{
          stream->id(),
          static_cast<BlockIndex>(UniformUint64(
              *prng_, static_cast<uint64_t>(stream->num_blocks())))});
    }
  }
  return traffic;
}

RoundMetrics TrafficEngine::DriveRound(CmServer& server) {
  const RoundTraffic traffic = NextRound(server.round(), server.streams());
  for (const ObjectId object : traffic.arrivals) {
    if (!server.StartStream(object).ok()) {
      ++rejected_arrivals_;
    }
  }
  for (const int64_t id : traffic.pauses) {
    SCADDAR_CHECK(server.PauseStream(id).ok());
  }
  for (const int64_t id : traffic.resumes) {
    SCADDAR_CHECK(server.ResumeStream(id).ok());
  }
  for (const SeekEvent& seek : traffic.seeks) {
    SCADDAR_CHECK(server.SeekStream(seek.stream_id, seek.block).ok());
  }
  return server.Tick();
}

}  // namespace scaddar
