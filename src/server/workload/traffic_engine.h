#ifndef SCADDAR_SERVER_WORKLOAD_TRAFFIC_ENGINE_H_
#define SCADDAR_SERVER_WORKLOAD_TRAFFIC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "random/distributions.h"
#include "random/prng.h"
#include "server/server.h"

namespace scaddar {

/// One flash crowd: for `duration` rounds starting at `start_round`,
/// `boost` extra clients per round all request the object at popularity
/// rank `rank` — the "everyone tunes into the premiere" burst that a
/// load-balanced random placement is supposed to absorb and a skewed one
/// is not.
struct FlashCrowd {
  int64_t start_round = 0;
  int64_t duration = 0;
  int64_t rank = 0;
  int64_t boost = 0;
};

/// Knobs for the traffic engine. Every field has a quiet default so tests
/// can enable exactly the effect under study.
struct TrafficConfig {
  /// Master seed: two engines with equal configs fed the same server
  /// evolution emit identical traffic (the replayability contract).
  uint64_t seed = 0x7aff1cull;

  /// Mean new-stream arrivals per round before modulation (Poisson).
  double arrivals_per_round = 1.0;

  /// Object popularity skew (0 = uniform; ~0.729 = classic VoD Zipf).
  double zipf_theta = 0.729;

  /// Diurnal load curve: the arrival mean is scaled by
  /// `1 + amplitude * sin(2*pi * round / period)` — the day/night swing of
  /// a VoD service compressed to simulation rounds. `amplitude` in [0, 1);
  /// 0 disables. `period` must be > 0 when amplitude is set.
  double diurnal_amplitude = 0.0;
  int64_t diurnal_period = 1440;

  /// Scheduled flash crowds (may overlap; boosts add).
  std::vector<FlashCrowd> flash_crowds;

  /// Per-active-stream, per-round probabilities of VCR events. A paused
  /// stream rolls only `resume_probability`; a playing stream rolls pause
  /// then seek.
  double pause_probability = 0.0;
  double resume_probability = 0.0;
  double seek_probability = 0.0;
};

/// The VCR/seek half of a round's traffic, keyed by stream id.
struct SeekEvent {
  int64_t stream_id = 0;
  BlockIndex block = 0;
};

/// Everything the engine decided for one round. Deterministic given the
/// config seed and the (round, active-stream) inputs, so a scenario that
/// records its config can be replayed bit-for-bit.
struct RoundTraffic {
  int64_t round = 0;
  std::vector<ObjectId> arrivals;     // New stream requests (by object).
  std::vector<int64_t> pauses;        // Stream ids to pause.
  std::vector<int64_t> resumes;       // Stream ids to resume.
  std::vector<SeekEvent> seeks;       // Streams jumping position.
};

/// Seeded, replayable traffic generator for the serving benches and the
/// sharded-runtime stress tests: Zipf object popularity, a diurnal load
/// curve, scheduled flash crowds and per-stream VCR events (pause / resume
/// / random seek), all drawn from one private PRNG so a `(config, server
/// history)` pair maps to exactly one traffic trace.
///
/// The existing `WorkloadGenerator` stays as the minimal Poisson+Zipf
/// arrival source; this engine layers the time-varying and interactive
/// effects the paper's Section 1 motivates (VCR operations are motivation
/// #4 for random placement) on top of the same distributions.
class TrafficEngine {
 public:
  explicit TrafficEngine(const TrafficConfig& config);

  /// Registers the requestable objects; index order is popularity rank
  /// (first = most popular). Must be called before generating traffic.
  /// Resets the popularity CDF, not the PRNG (arrival streams stay
  /// deterministic across catalog growth).
  void SetObjects(std::vector<ObjectId> objects);

  /// Decides the round's traffic from the current active-stream view.
  /// Pure sampling: does not touch the server.
  RoundTraffic NextRound(int64_t round, const std::vector<Stream>& active);

  /// Pointer-view overload for callers whose active streams don't live in
  /// one vector (the cluster layer concatenates its shards' stream vectors
  /// in seat order). Same draws in the same order: a 1-shard cluster view
  /// replays bit-for-bit against the vector overload.
  RoundTraffic NextRound(int64_t round,
                         const std::vector<const Stream*>& active);

  /// Convenience driver: generates traffic for the server's current round,
  /// applies it (arrivals through admission control — rejects are counted,
  /// not fatal — then VCR events), runs `server.Tick()` and returns its
  /// metrics.
  RoundMetrics DriveRound(CmServer& server);

  /// Arrivals rejected by admission control across all `DriveRound` calls.
  int64_t rejected_arrivals() const { return rejected_arrivals_; }

  /// Counts a rejected arrival on behalf of an external driver (the
  /// cluster's `DriveRound` lives above this layer and applies arrivals
  /// itself).
  void RecordRejectedArrival() { ++rejected_arrivals_; }

  const TrafficConfig& config() const { return config_; }

  /// The arrival mean after diurnal modulation at `round` (flash-crowd
  /// boosts are separate, deterministic adds). Exposed for tests.
  double ModulatedArrivalMean(int64_t round) const;

 private:
  TrafficConfig config_;
  std::unique_ptr<Prng> prng_;
  std::vector<ObjectId> objects_;
  std::unique_ptr<ZipfDistribution> popularity_;
  int64_t rejected_arrivals_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_WORKLOAD_TRAFFIC_ENGINE_H_
