#ifndef SCADDAR_SERVER_STREAM_H_
#define SCADDAR_SERVER_STREAM_H_

#include <cstdint>

#include "core/types.h"
#include "server/location_cursor.h"

namespace scaddar {

/// One client playback session. A stream consumes its object's blocks in
/// order, one per round; a round in which the scheduled disk could not
/// deliver the block is a *hiccup* (the display glitch CM servers exist to
/// avoid) and the stream stalls at the same block.
///
/// Sequential consumption is what makes the batch serving path work: each
/// stream owns a `LocationCursor` whose prefetched window the scheduler
/// reads instead of resolving every block individually.
class Stream {
 public:
  /// `rate` is the stream's bandwidth in blocks per round (>= 1): a
  /// double-rate object consumes two blocks every round. Defaults to 1.
  Stream(int64_t id, ObjectId object, int64_t num_blocks, int64_t start_round,
         int64_t rate = 1)
      : id_(id),
        object_(object),
        num_blocks_(num_blocks),
        start_round_(start_round),
        rate_(rate),
        cursor_(object, num_blocks) {}

  int64_t id() const { return id_; }
  ObjectId object() const { return object_; }
  int64_t start_round() const { return start_round_; }

  bool finished() const { return next_block_ >= num_blocks_; }
  BlockIndex next_block() const { return next_block_; }
  BlockRef NextBlockRef() const { return BlockRef{object_, next_block_}; }

  /// The block was delivered this round; advance playback.
  void DeliverBlock() { ++next_block_; }

  /// `n` consecutive blocks delivered this round — equivalent to calling
  /// `DeliverBlock` `n` times. Lets a batched commit touch the stream once
  /// per round instead of once per block.
  void DeliverBlocks(int64_t n) { next_block_ += n; }

  /// The block was not delivered; stall and count the glitch.
  void RecordHiccup() { ++hiccups_; }

  int64_t hiccups() const { return hiccups_; }

  /// Startup-latency observation: true once the server has noted the
  /// stream's first delivered block (`CmServer::Tick` flips it and records
  /// `round - start_round` as the stream's startup latency). Pure
  /// bookkeeping — never read by any serving path.
  bool playback_started() const { return playback_started_; }
  void MarkPlaybackStarted() { playback_started_ = true; }

  // --- VCR-style operations (Section 1: "interactive applications or
  // VCR-style operations on CM streams" are exactly what random placement
  // supports and constrained striping does not). ---

  /// Paused streams consume no blocks and no bandwidth.
  bool paused() const { return paused_; }
  void Pause() { paused_ = true; }
  void Resume() { paused_ = false; }

  /// Jumps playback to `block` (clamped to [0, num_blocks]); a seek to
  /// `num_blocks` ends the stream.
  void SeekTo(BlockIndex block);

  /// Reattaches a checkpoint-restored stream at its saved position: cursor,
  /// pause state and per-stream counters as of the snapshot.
  void RestoreProgress(BlockIndex next_block, int64_t hiccups, bool paused,
                       bool playback_started);

  int64_t num_blocks() const { return num_blocks_; }

  /// Blocks this stream must receive per round to avoid a hiccup.
  int64_t rate() const { return rate_; }

  /// The stream's prefetch window over its object's serving locations.
  LocationCursor& cursor() { return cursor_; }
  const LocationCursor& cursor() const { return cursor_; }

 private:
  int64_t id_;
  ObjectId object_;
  int64_t num_blocks_;
  int64_t start_round_;
  int64_t rate_;
  BlockIndex next_block_ = 0;
  int64_t hiccups_ = 0;
  bool paused_ = false;
  bool playback_started_ = false;
  LocationCursor cursor_;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_STREAM_H_
