#ifndef SCADDAR_SERVER_CONFIG_H_
#define SCADDAR_SERVER_CONFIG_H_

#include <cstdint>
#include <string>

#include "random/prng.h"
#include "storage/disk.h"

namespace scaddar {

/// How the round scheduler resolves each stream request to a disk.
enum class ServingPath {
  /// Production path: per-stream `LocationCursor` prefetch windows filled
  /// by the batch engine and invalidated by revision compares.
  kBatchCursor,
  /// Original per-block store hash lookups (the materialized-truth oracle).
  kStoreScalar,
  /// Per-block virtual `Locate` chain replays. Valid only while no
  /// migration is pending; exists as the bench baseline.
  kPolicyScalar,
  /// Thread-per-core sharded runtime: streams are partitioned across
  /// worker shards (jump-hash on the stream id) that resolve locations in
  /// parallel with no locks, then a serial commit applies budgets in the
  /// oracle's order — byte-identical results to `kBatchCursor` for any
  /// shard count.
  kShardedCursor,
};

/// Configuration of the simulated continuous media server. The simulation
/// is round-based: one round is the playback time of one block, each active
/// stream consumes one block per round, and each disk retrieves
/// `bandwidth_blocks_per_round` blocks per round.
struct ServerConfig {
  /// Disks before any scaling operations (the paper's N0).
  int64_t initial_disks = 8;

  /// Hardware model for newly added disks.
  DiskSpec disk_spec = {.capacity_blocks = 200'000,
                        .bandwidth_blocks_per_round = 8};

  /// Placement policy name from the registry ("scaddar", "directory", ...).
  std::string policy = "scaddar";

  /// Pseudo-random generator family and bit width `b` for `p_r(s_m)`.
  PrngKind prng_kind = PrngKind::kSplitMix64;
  int bits = 64;

  /// Master seed; per-object seeds derive from it.
  uint64_t master_seed = 0x5caddae0'0b10c5ull;

  /// Lemma 4.3 tolerance: the largest acceptable unfairness coefficient.
  double tolerance_eps = 0.05;

  /// Fraction of aggregate disk bandwidth admission control may commit to
  /// streams; the rest is headroom for seeks and reorganization.
  double admission_utilization_cap = 0.85;

  /// Upper bound on migration transfers charged to any single disk per
  /// round *in addition to* leftover service bandwidth (0 = only leftover).
  int64_t migration_extra_budget = 0;

  /// Serving-path implementation the scheduler uses each Tick.
  ServingPath serving_path = ServingPath::kBatchCursor;

  /// Worker shards for `ServingPath::kShardedCursor` (ignored otherwise).
  /// 0 = one shard per hardware core.
  int serving_shards = 0;

  /// First stream id this server hands out (ids count up from here). The
  /// cluster layer gives each server shard a disjoint id range so stream
  /// ids are cluster-unique and carry their shard in the high bits; a bare
  /// server keeps the default 0.
  int64_t first_stream_id = 0;

  /// Worker threads for reconciliation scans after scaling operations
  /// (1 = serial; the queue is byte-identical for any value).
  int reconcile_threads = 1;

  /// Run every migration transfer through the crash-consistent write-ahead
  /// move journal (intent -> copy -> commit). Off by default: the journal
  /// only matters when crashes are possible (fault-injection runs), and the
  /// plain path is the established bench baseline.
  bool journal_migration = false;

  /// Storage backend spec for real block I/O (`MakeStorageBackend` syntax):
  /// "sim" (default) keeps the pure simulation — no `BlockIoEngine`, no
  /// bytes move, byte-identical to the pre-backend server. "mem",
  /// "file:<dir>" and "uring:<dir>" attach an engine: every served block
  /// issues a physical read and every migration round lands its copies
  /// through batched backend submissions. A non-"sim" backend forces
  /// `journal_migration` on — real bytes move only under the WAL protocol.
  std::string storage_backend = "sim";

  /// Per-disk submission-queue depth for real backends (io_uring ring
  /// entries; auto-submit high-water mark for the sync backend).
  int io_queue_depth = 32;

  /// Block-image size in bytes for real backends; must be a positive
  /// multiple of 4096 (the O_DIRECT sector alignment).
  int64_t io_block_bytes = 4096;

  // --- Multi-level checkpoint/restart (src/recovery). Effective only once
  // a CheckpointManager is attached (`CmServer::EnableCheckpoints`) — the
  // manager is owned outside the server, like the fault injector. ---

  /// Write an L1 (single local copy) checkpoint set every this many rounds
  /// (0 = no periodic checkpoints).
  int64_t checkpoint_every = 0;

  /// Write an L2 (redundant) set every this many rounds instead of the L1
  /// due that round (0 = L1 only). Should be a multiple of
  /// `checkpoint_every` to align with the L1 cadence.
  int64_t checkpoint_level2_every = 0;

  /// L2 redundancy scheme: "partner" (two full copies) or "xor"
  /// (N-1 data fragments + parity across all snapshot locations).
  std::string checkpoint_redundancy = "partner";

  /// Independent snapshot locations the manager spreads sets across.
  int64_t checkpoint_locations = 4;

  // --- Adaptive self-triggered reorganization (src/server/reorg_driver).
  // The driver watches the Section 4.3 ε budget before every scaling op
  // and the live per-disk CoV at end of round, and schedules a full
  // redistribution as a background migration job when either is
  // threatened. ---

  /// Master switch for the adaptive placement driver.
  bool auto_reorg = false;

  /// Governor generator width `b` for the budget watch (0 = use `bits`).
  int governor_bits = 0;

  /// Governor unfairness budget ε (0 = use `tolerance_eps`).
  double governor_eps = 0.0;

  /// CoV drift threshold that triggers a reorganization (0 = budget watch
  /// only, no CoV watch).
  double reorg_cov_threshold = 0.0;

  /// Rounds between CoV evaluations (CoV is O(disks) per check, but a
  /// triggered reorg is expensive — this knob paces how eagerly drift is
  /// noticed).
  int64_t reorg_check_every = 16;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_CONFIG_H_
