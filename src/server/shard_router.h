#ifndef SCADDAR_SERVER_SHARD_ROUTER_H_
#define SCADDAR_SERVER_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "placement/shard_map.h"
#include "random/splitmix64.h"
#include "server/stream.h"

namespace scaddar {

/// Per-shard accumulators for one serving round. Each worker writes only its
/// own shard's struct during the parallel phase — no shared counters, no
/// locks, no false sharing worth caring about at per-round granularity (the
/// structs are merged once per round by the coordinator).
struct ShardStats {
  int64_t streams = 0;        // Active streams this shard resolved.
  int64_t resolved = 0;       // Block locations resolved (window or bypass).
  int64_t bypass_reads = 0;   // Resolved via the store-row bypass.
  int64_t served = 0;         // Attributed back by the commit phase.
  int64_t hiccups = 0;        // Attributed back by the commit phase.
  int64_t audit_checks = 0;   // Spot-checks this shard's PRNG sampled.
  int64_t audit_failures = 0; // Spot-checks that disagreed with the store.
  double seconds = 0;         // Wall time of this shard's resolve phase.
};

/// A copyable, counter-based SplitMix64-family generator for shard-local
/// randomness (the `Prng` class hierarchy is deliberately non-copyable, and
/// shards live in vectors). Counter-based means the stream is a pure
/// function of `(seed, i)` — replayable and order-independent.
struct ShardPrng {
  uint64_t state = 0;
  uint64_t Next() { return Mix64(state++); }
};

/// One serving shard: the stream indices it owns, its private PRNG (for
/// shard-local randomized decisions — e.g. audit sampling — without
/// contending on a shared generator) and its stats block. `streams` holds
/// indices into the server's stream vector; the shards partition it, so
/// workers touch disjoint `Stream` objects (and thereby disjoint
/// `LocationCursor`s — each shard owns its cursor pool by owning its
/// streams).
struct ServingShard {
  int shard = 0;
  std::vector<size_t> streams;
  ShardPrng prng;
  ShardStats stats;
};

/// Routes streams to shards over the shared `ShardMap` jump-hash core (the
/// same router the cluster layer uses for objects and the placement layer
/// uses for blocks): stable — a stream stays on its shard for its whole
/// life regardless of churn around it — and uniform, so shards stay
/// balanced without any rebalancing machinery. The serving shard count is
/// fixed for the scheduler's lifetime, so the map's seats stay the identity
/// permutation and `ShardOf` is exactly `JumpBucket(id, num_shards)`.
///
/// The routing table is rebuilt only when the stream population changes
/// (`Route` revalidates the cached ids with one linear compare pass); in
/// steady state a round pays O(streams) loads, not O(streams) hashes.
class ShardRouter {
 public:
  /// `num_shards` >= 1 (clamped); `seed` derives each shard's private PRNG.
  ShardRouter(int num_shards, uint64_t seed);

  /// Ensures the shard lists match `streams` (same ids, same order),
  /// rebuilding them if the population changed. Returns true iff a rebuild
  /// happened (exposed for tests and stats).
  bool Route(const std::vector<Stream>& streams);

  /// Shard owning stream `id`.
  int ShardOf(int64_t stream_id) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::vector<ServingShard>& shards() { return shards_; }
  const std::vector<ServingShard>& shards() const { return shards_; }

  /// stream index (position in the routed vector) -> owning shard; parallel
  /// to the routed stream vector. The commit phase uses it to attribute
  /// served/hiccup counts back to shards.
  const std::vector<int>& shard_of_index() const { return shard_of_index_; }

  int64_t rebuilds() const { return rebuilds_; }

 private:
  ShardMap map_;
  std::vector<ServingShard> shards_;
  std::vector<int64_t> routed_ids_;   // Cache key: ids in vector order.
  std::vector<int> shard_of_index_;
  int64_t rebuilds_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_SERVER_SHARD_ROUTER_H_
