#include "server/sharded_scheduler.h"

#include <algorithm>
#include <chrono>

#include "storage/block_io.h"
#include "util/status.h"

namespace scaddar {

namespace {

/// Same sentinel as the serial scheduler: a physical id with no live disk.
constexpr int64_t kNotLive = -1;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ShardedScheduler::ShardedScheduler(int num_shards, uint64_t seed)
    : router_(num_shards, seed) {}

void ShardedScheduler::ResolveShard(ServingShard& shard,
                                    const PlacementPolicy& policy,
                                    const MigrationExecutor& migration,
                                    const BlockStore& store,
                                    uint64_t epoch_token,
                                    const RoundEpoch& expected,
                                    const ShardedRunOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  // Validate the published epoch before touching any shared state: the
  // coordinator's publication is the happens-before edge that makes the
  // policy/store revisions (and the data behind them) visible to this
  // worker. A mismatch means a writer ran while workers were live.
  const RoundEpoch seen = epoch_.Read();
  SCADDAR_CHECK(seen.round == expected.round);
  SCADDAR_CHECK(seen.policy_revision == expected.policy_revision);
  SCADDAR_CHECK(seen.store_revision == expected.store_revision);

  const uint64_t audit_mask =
      options.audit_sample_bits > 0
          ? ((uint64_t{1} << options.audit_sample_bits) - 1)
          : ~uint64_t{0};
  ShardStats& stats = shard.stats;
  for (const size_t i : shard.streams) {
    Stream& stream = (*round_streams_)[i];
    if (stream.finished() || stream.paused()) {
      resolved_count_[i] = 0;
      continue;
    }
    ++stats.streams;
    // Resolve the whole round's worth of locations up front. The serial
    // oracle stops calling the cursor after a hiccup; resolving the tail
    // anyway is harmless — `Get` is a pure read of the serving state, so
    // the values the commit phase consumes are identical either way.
    const int32_t count = static_cast<int32_t>(
        std::min(stream.rate(), stream.num_blocks() - stream.next_block()));
    const BlockIndex first = stream.next_block();
    LocationCursor& cursor = stream.cursor();
    PhysicalDiskId* slots = resolved_.data() + offset_[i];
    for (int32_t k = 0; k < count; ++k) {
      slots[k] = cursor.Get(first + k, policy, store, migration);
    }
    resolved_count_[i] = count;
    stats.resolved += count;
    if (migration.pending_for(stream.object()) != 0) {
      stats.bypass_reads += count;
    }
    if (options.audit_sample_bits > 0) {
      // Shard-local spot check: sample resolved locations with this shard's
      // private PRNG and compare against the store's materialized truth. A
      // disagreement is a stale window that survived invalidation.
      for (int32_t k = 0; k < count; ++k) {
        if ((shard.prng.Next() & audit_mask) != 0) {
          continue;
        }
        ++stats.audit_checks;
        const StatusOr<PhysicalDiskId> truth =
            store.LocationOf(BlockRef{stream.object(), first + k});
        if (!truth.ok() || *truth != slots[k]) {
          ++stats.audit_failures;
        }
      }
    }
  }
  // No publication may have overlapped the resolve: the sequence token
  // pinned at fan-out must still be current (and even).
  SCADDAR_CHECK(epoch_.sequence() == epoch_token);
  stats.seconds = SecondsSince(start);
}

RoundServiceResult ShardedScheduler::Run(
    std::vector<Stream>& streams, const PlacementPolicy& policy,
    const MigrationExecutor& migration, const BlockStore& store,
    DiskArray& disks, std::unordered_map<PhysicalDiskId, int64_t>* leftover,
    const ShardedRunOptions& options, ShardedRoundStats* stats) {
  RoundServiceResult result;

  // --- Coordinator: route, size the scratch, publish the epoch. ---------
  const bool rerouted = router_.Route(streams);
  if (rerouted || offset_.size() != streams.size()) {
    // Offsets stride by each stream's (immutable) rate, so they only need
    // rebuilding when the population changes — the same condition that
    // rebuilds the routing table.
    offset_.resize(streams.size());
    int64_t total = 0;
    for (size_t i = 0; i < streams.size(); ++i) {
      offset_[i] = total;
      total += streams[i].rate();
    }
    resolved_.resize(static_cast<size_t>(total));
  }
  resolved_count_.assign(streams.size(), 0);
  for (ServingShard& shard : router_.shards()) {
    shard.stats = ShardStats{};
  }

  // Warm the policy's lazily built lookup state on this thread so the
  // workers' `Locate*` calls are read-only.
  policy.PrepareForBatch();

  ++round_;
  RoundEpoch epoch;
  epoch.round = round_;
  epoch.policy_revision = policy.log().revision();
  epoch.store_revision = store.mutation_revision();
  epoch_.Publish(epoch);
  const uint64_t token = epoch_.sequence();
  round_streams_ = &streams;

  // --- Phase 1: parallel lock-free resolve, one worker per shard. -------
  const auto resolve_start = std::chrono::steady_clock::now();
  std::vector<ServingShard>& shards = router_.shards();
  const int n = router_.num_shards();
  if (n > 1 && !options.serialize_shards) {
    if (!pool_) {
      pool_ = std::make_unique<ThreadPool>(n);
    }
    pool_->ParallelFor(0, n, [&](int64_t begin, int64_t end) {
      for (int64_t s = begin; s < end; ++s) {
        ResolveShard(shards[static_cast<size_t>(s)], policy, migration, store,
                     token, epoch, options);
      }
    });
  } else {
    for (ServingShard& shard : shards) {
      ResolveShard(shard, policy, migration, store, token, epoch, options);
    }
  }
  const double resolve_seconds = SecondsSince(resolve_start);
  round_streams_ = nullptr;

  // --- Phase 2: serial deterministic commit (mirrors `RunBatched`). -----
  // Streams are walked in vector order with the same per-disk budget
  // accounting and the same hiccup-break discipline as the serial
  // scheduler, so budget contention resolves identically: same served/
  // hiccup counts, same stream progress, same leftover — for any shard
  // count and any phase-1 interleaving.
  const auto commit_start = std::chrono::steady_clock::now();
  if (disks_cache_key_ != &disks || disks_generation_ != disks.generation()) {
    live_ = disks.live_ids();
    live_disks_.clear();
    live_disks_.reserve(live_.size());
    max_disk_id_ = 0;
    for (const PhysicalDiskId id : live_) {
      max_disk_id_ = std::max(max_disk_id_, id);
      live_disks_.push_back(disks.GetDisk(id).value());
    }
    budget_template_.assign(static_cast<size_t>(max_disk_id_ + 1), kNotLive);
    for (size_t d = 0; d < live_.size(); ++d) {
      budget_template_[static_cast<size_t>(live_[d])] =
          live_disks_[d]->spec().bandwidth_blocks_per_round;
    }
    disks_generation_ = disks.generation();
    disks_cache_key_ = &disks;
  }
  const PhysicalDiskId max_id = max_disk_id_;
  budget_ = budget_template_;
  const std::vector<int>& shard_of = router_.shard_of_index();
  // A large stream population spills L1, and the walk below touches each
  // Stream exactly once — prefetching a few iterations ahead hides that
  // per-stream miss behind the budget arithmetic.
  constexpr size_t kPrefetchAhead = 8;
  for (size_t i = 0; i < streams.size(); ++i) {
    if (i + kPrefetchAhead < streams.size()) {
      __builtin_prefetch(&streams[i + kPrefetchAhead], 1 /*write*/);
    }
    // `count` doubles as the liveness flag: the resolve phase writes 0 for
    // finished/paused streams and otherwise min(rate, blocks left), so the
    // serial oracle's `r < rate && !finished` loop runs exactly `count`
    // iterations when no hiccup strikes — re-deriving that from stream
    // state here would just re-touch the cold Stream cachelines.
    const int32_t count = resolved_count_[i];
    if (count == 0) {
      continue;
    }
    const PhysicalDiskId* slots = resolved_.data() + offset_[i];
    int32_t k = 0;
    bool hiccup = false;
    for (; k < count; ++k) {
      const PhysicalDiskId location = slots[k];
      SCADDAR_CHECK(location >= 0 && location <= max_id &&
                    budget_[static_cast<size_t>(location)] != kNotLive);
      int64_t& remaining = budget_[static_cast<size_t>(location)];
      if (remaining > 0) {
        --remaining;
      } else {
        hiccup = true;
        break;
      }
    }
    // Stream state and counters update once per stream, not per block —
    // the hiccup-breaking attempt counts as a request (FIFO discipline:
    // the stream asked, the disk was out of budget), same accounting as
    // the serial path's per-iteration increments, batched.
    Stream& stream = streams[i];
    if (io_ != nullptr && k > 0) {
      const BlockIndex first = stream.next_block();
      for (int32_t b = 0; b < k; ++b) {
        SCADDAR_CHECK(
            io_->EnqueueServeRead(BlockRef{stream.object(), first + b},
                                  slots[b])
                .ok());
      }
    }
    stream.DeliverBlocks(k);
    ShardStats& owner = shards[static_cast<size_t>(shard_of[i])].stats;
    result.requests += k + (hiccup ? 1 : 0);
    result.served += k;
    owner.served += k;
    if (hiccup) {
      stream.RecordHiccup();
      ++result.hiccups;
      ++owner.hiccups;
    }
  }
  // Per-disk served counts fall out of the budget delta (hiccups never
  // decrement), so the hot loop needs no served[] side array at all.
  for (size_t d = 0; d < live_.size(); ++d) {
    const size_t id = static_cast<size_t>(live_[d]);
    const int64_t served = budget_template_[id] - budget_[id];
    if (served > 0) {
      live_disks_[d]->RecordServedRequests(served);
    }
  }
  if (leftover != nullptr) {
    leftover->clear();
    for (const PhysicalDiskId id : live_) {
      (*leftover)[id] = budget_[static_cast<size_t>(id)];
    }
  }
  if (stats != nullptr) {
    // Snapshot the commit clock before copying the introspection stats out:
    // the copy is observer overhead the stats-free production path never
    // pays, so it must not inflate the commit-phase figure.
    stats->commit_seconds = SecondsSince(commit_start);
    stats->shards.clear();
    stats->shards.reserve(shards.size());
    for (const ServingShard& shard : shards) {
      stats->shards.push_back(shard.stats);
    }
    stats->resolve_seconds = resolve_seconds;
    stats->routed = rerouted;
  }
  return result;
}

}  // namespace scaddar
